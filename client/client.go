// Package client is the typed Go client for the protemp control
// plane's v1 HTTP API. Every method takes a context, decodes through
// the shared wire structs of the api package, and maps non-2xx
// responses onto sentinel errors (ErrNotFound, ErrOverloaded, …) so
// callers branch with errors.Is instead of comparing status codes.
//
// The cluster proxy inside the server uses this same client to forward
// requests between nodes — the option WithForwarded marks outgoing
// requests with the single-hop header — so the public client surface
// and the intra-cluster wire protocol are one and the same.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"protemp/api"
)

// Sentinel errors a failed call wraps; match with errors.Is. The full
// server message and status ride along in the *APIError also in the
// chain.
var (
	// ErrNotFound maps 404: unknown session, table, job or trace.
	ErrNotFound = errors.New("client: not found")
	// ErrBadRequest maps 400: the server rejected the request body or
	// parameters.
	ErrBadRequest = errors.New("client: bad request")
	// ErrConflict maps 409: the resource is not in a state that admits
	// the call (e.g. results of a still-running fleet job).
	ErrConflict = errors.New("client: conflict")
	// ErrOverloaded maps 429: the server is shedding load; honor
	// APIError.RetryAfter before retrying.
	ErrOverloaded = errors.New("client: overloaded")
	// ErrUnavailable maps 503: the server (or the session's owner node)
	// is draining or unreachable.
	ErrUnavailable = errors.New("client: unavailable")
	// ErrServer maps any other 5xx.
	ErrServer = errors.New("client: server error")
)

// APIError carries the HTTP detail of a failed call: find it in the
// error chain with errors.As.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error body.
	Message string
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Unwrap maps the status onto the package sentinel.
func (e *APIError) Unwrap() error {
	switch {
	case e.Status == http.StatusNotFound:
		return ErrNotFound
	case e.Status == http.StatusBadRequest:
		return ErrBadRequest
	case e.Status == http.StatusConflict:
		return ErrConflict
	case e.Status == http.StatusTooManyRequests:
		return ErrOverloaded
	case e.Status == http.StatusServiceUnavailable:
		return ErrUnavailable
	case e.Status >= 500:
		return ErrServer
	}
	return nil
}

// Client talks to one protemp-serve node. It is safe for concurrent
// use.
type Client struct {
	base      string
	http      *http.Client
	forwarded bool
	retries   int
	backoff   time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). Streaming methods require a transport without a
// whole-response timeout; bound individual calls with contexts instead.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithForwarded marks every outgoing request with api.HeaderForwarded:
// the receiving node serves it locally instead of re-proxying. Only
// cluster peers forwarding on behalf of a client should set this.
func WithForwarded() Option {
	return func(c *Client) { c.forwarded = true }
}

// WithRetry retries idempotent calls (GET and DELETE — never a POST,
// which may have advanced a session) up to attempts extra times with
// linearly growing backoff on transport errors and 5xx responses.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *Client) {
		c.retries = attempts
		c.backoff = backoff
	}
}

// New builds a client for the node at baseURL (scheme required, e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: http.DefaultClient}
	for _, o := range opts {
		if o != nil {
			o(c)
		}
	}
	return c, nil
}

// BaseURL returns the node address the client was built for.
func (c *Client) BaseURL() string { return c.base }

// newRequest assembles one request with the client's standing headers.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.forwarded {
		req.Header.Set(api.HeaderForwarded, "1")
	}
	return req, nil
}

// idempotent reports whether a method is safe to retry.
func idempotent(method string) bool {
	return method == http.MethodGet || method == http.MethodDelete
}

// do runs one request, retrying idempotent methods per WithRetry. The
// body, when non-nil, must be a *bytes.Reader so retries can rewind.
func (c *Client) do(ctx context.Context, method, path string, body *bytes.Reader) (*http.Response, error) {
	attempts := 1
	if c.retries > 0 && idempotent(method) {
		attempts += c.retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(time.Duration(i) * c.backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var rd io.Reader
		if body != nil {
			body.Seek(0, io.SeekStart)
			rd = body
		}
		req, err := c.newRequest(ctx, method, path, rd)
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 && i+1 < attempts {
			resp.Body.Close()
			lastErr = &APIError{Status: resp.StatusCode, Message: http.StatusText(resp.StatusCode)}
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("client: %s %s: %w", method, path, lastErr)
}

// checkStatus converts a non-2xx response into an *APIError (wrapping
// the matching sentinel) and drains/closes the body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode < 300 {
		return nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var wire api.Error
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if jerr := json.Unmarshal(body, &wire); jerr == nil && wire.Message != "" {
		apiErr.Message = wire.Message
	} else {
		apiErr.Message = strings.TrimSpace(string(body))
	}
	if apiErr.Message == "" {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	return apiErr
}

// callJSON runs one JSON round trip: marshal in (nil = empty body),
// decode out (nil = discard).
func (c *Client) callJSON(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	if err := checkStatus(resp); err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Healthz reports the node's liveness and cluster membership.
func (c *Client) Healthz(ctx context.Context) (api.Health, error) {
	var out api.Health
	err := c.callJSON(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Optimize solves one Phase-2 design point.
func (c *Client) Optimize(ctx context.Context, req api.OptimizeRequest) (api.Assignment, error) {
	var out api.Assignment
	err := c.callJSON(ctx, http.MethodPost, "/v1/optimize", req, &out)
	return out, err
}

// GenerateTable generates (or fetches from the server's cache/store) a
// Phase-1 table.
func (c *Client) GenerateTable(ctx context.Context, req api.TablesRequest) (api.TablesResponse, error) {
	var out api.TablesResponse
	err := c.callJSON(ctx, http.MethodPost, "/v1/tables", req, &out)
	return out, err
}

// TableRaw fetches one stored table by its content-addressed key as
// the versioned binary envelope (tablestore format). The caller owns
// the returned body. A node that neither holds nor can produce the
// table returns ErrNotFound.
func (c *Client) TableRaw(ctx context.Context, key string) (io.ReadCloser, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/tables/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// CreateSession opens a control session.
func (c *Client) CreateSession(ctx context.Context, req api.SessionCreateRequest) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := c.callJSON(ctx, http.MethodPost, "/v1/sessions", req, &out)
	return out, err
}

// Session fetches one session's stats.
func (c *Client) Session(ctx context.Context, id string) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := c.callJSON(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Step drives one DFS-window decision.
func (c *Client) Step(ctx context.Context, id string, req api.StepRequest) (api.StepResponse, error) {
	var out api.StepResponse
	err := c.callJSON(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/step", req, &out)
	return out, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.callJSON(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Stream drives a server-side co-simulated control loop, invoking fn
// once per NDJSON window line as it arrives, and returns the closing
// summary. A non-nil error from fn aborts the stream and is returned
// verbatim. An in-band server error line surfaces as an *APIError.
func (c *Client) Stream(ctx context.Context, id string, req api.StreamRequest, fn func(api.StreamWindow) error) (api.StreamSummaryBody, error) {
	var sum api.StreamSummaryBody
	resp, err := c.StreamRaw(ctx, id, req)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	sawSummary := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Dispatch on the line shape: a summary line closes the stream,
		// an error line aborts it, anything else is a window.
		var probe struct {
			Summary *api.StreamSummaryBody `json:"summary"`
			Error   string                 `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return sum, fmt.Errorf("client: bad stream line: %w", err)
		}
		switch {
		case probe.Error != "":
			return sum, &APIError{Status: http.StatusInternalServerError, Message: probe.Error}
		case probe.Summary != nil:
			sum = *probe.Summary
			sawSummary = true
		default:
			var win api.StreamWindow
			if err := json.Unmarshal(line, &win); err != nil {
				return sum, fmt.Errorf("client: bad stream window: %w", err)
			}
			if fn != nil {
				if err := fn(win); err != nil {
					return sum, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, fmt.Errorf("client: stream read: %w", err)
	}
	if !sawSummary {
		return sum, fmt.Errorf("client: stream ended without a summary line")
	}
	return sum, nil
}

// StreamRaw opens the NDJSON stream and returns the raw response for
// callers that relay the bytes untouched (the cluster proxy). The
// caller owns resp.Body. Non-2xx statuses are already mapped to an
// error.
func (c *Client) StreamRaw(ctx context.Context, id string, req api.StreamRequest) (*http.Response, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: marshal request: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/stream", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// FleetSubmit submits an asynchronous batch evaluation; poll the
// returned job id.
func (c *Client) FleetSubmit(ctx context.Context, req api.FleetSubmitRequest) (api.FleetJobStatus, error) {
	var out api.FleetJobStatus
	err := c.callJSON(ctx, http.MethodPost, "/v1/fleet", req, &out)
	return out, err
}

// FleetStatus fetches one job's progress.
func (c *Client) FleetStatus(ctx context.Context, id string) (api.FleetJobStatus, error) {
	var out api.FleetJobStatus
	err := c.callJSON(ctx, http.MethodGet, "/v1/fleet/"+url.PathEscape(id), nil, &out)
	return out, err
}

// FleetResults fetches a finished job's full results; a still-running
// job returns ErrConflict.
func (c *Client) FleetResults(ctx context.Context, id string) (api.FleetResultsResponse, error) {
	var out api.FleetResultsResponse
	err := c.callJSON(ctx, http.MethodGet, "/v1/fleet/"+url.PathEscape(id)+"/results", nil, &out)
	return out, err
}

// FleetList lists every retained job.
func (c *Client) FleetList(ctx context.Context) (api.FleetJobList, error) {
	var out api.FleetJobList
	err := c.callJSON(ctx, http.MethodGet, "/v1/fleet", nil, &out)
	return out, err
}

// FleetScenarios lists the server's registered workload scenarios.
func (c *Client) FleetScenarios(ctx context.Context) (api.FleetScenarioList, error) {
	var out api.FleetScenarioList
	err := c.callJSON(ctx, http.MethodGet, "/v1/fleet/scenarios", nil, &out)
	return out, err
}

// FleetDelete cancels a running job (partial results stay fetchable)
// or deletes a finished one.
func (c *Client) FleetDelete(ctx context.Context, id string) error {
	return c.callJSON(ctx, http.MethodDelete, "/v1/fleet/"+url.PathEscape(id), nil, nil)
}

// Metrics fetches the node's flat counter/gauge snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]uint64, error) {
	out := make(map[string]uint64)
	err := c.callJSON(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}
