package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"protemp/api"
)

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not-a-url", "127.0.0.1:8080"} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) accepted", bad)
		}
	}
	c, err := New("http://127.0.0.1:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://127.0.0.1:8080" {
		t.Fatalf("base %q", c.BaseURL())
	}
}

func TestSentinelMapping(t *testing.T) {
	cases := []struct {
		status   int
		sentinel error
	}{
		{http.StatusNotFound, ErrNotFound},
		{http.StatusBadRequest, ErrBadRequest},
		{http.StatusConflict, ErrConflict},
		{http.StatusTooManyRequests, ErrOverloaded},
		{http.StatusServiceUnavailable, ErrUnavailable},
		{http.StatusBadGateway, ErrServer},
	}
	for _, tc := range cases {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(tc.status)
			fmt.Fprint(w, `{"error":"deliberate"}`)
		}))
		c, err := New(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Session(context.Background(), "feed")
		if !errors.Is(err, tc.sentinel) {
			t.Fatalf("status %d mapped to %v, want %v", tc.status, err, tc.sentinel)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("status %d: no APIError in chain: %v", tc.status, err)
		}
		if apiErr.Status != tc.status || apiErr.Message != "deliberate" {
			t.Fatalf("APIError %+v", apiErr)
		}
		if apiErr.RetryAfter != 7*time.Second {
			t.Fatalf("retry-after %v", apiErr.RetryAfter)
		}
		srv.Close()
	}
}

// TestRetryIdempotentOnly: GETs retry through transient 5xx; a POST
// that failed must never be resent (it may have advanced a session).
func TestRetryIdempotentOnly(t *testing.T) {
	var gets, posts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			gets++
			if gets < 3 {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			fmt.Fprint(w, `{"id":"feed","mode":"table"}`)
		case http.MethodPost:
			posts++
			w.WriteHeader(http.StatusBadGateway)
		}
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Session(context.Background(), "feed")
	if err != nil {
		t.Fatalf("GET with retries: %v", err)
	}
	if info.ID != "feed" || gets != 3 {
		t.Fatalf("info %+v after %d GETs", info, gets)
	}

	if _, err := c.CreateSession(context.Background(), api.SessionCreateRequest{}); !errors.Is(err, ErrServer) {
		t.Fatalf("POST error: %v", err)
	}
	if posts != 1 {
		t.Fatalf("POST sent %d times", posts)
	}
}

func TestForwardedHeader(t *testing.T) {
	var sawPlain, sawForwarded string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(api.HeaderForwarded) != "" {
			sawForwarded = r.Header.Get(api.HeaderForwarded)
		} else {
			sawPlain = "yes"
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	plain, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	fwd, err := New(srv.URL, WithForwarded())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fwd.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sawPlain != "yes" || sawForwarded != "1" {
		t.Fatalf("plain=%q forwarded=%q", sawPlain, sawForwarded)
	}
}

func TestStreamDecode(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"window":0,"time_s":0.1,"throughput_hz":8e8}`)
		fmt.Fprintln(w, ``)
		fmt.Fprintln(w, `{"window":1,"time_s":0.2,"throughput_hz":9e8}`)
		fmt.Fprintln(w, `{"summary":{"windows":2,"violations":0}}`)
	}))
	defer srv.Close()

	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var windows []api.StreamWindow
	sum, err := c.Stream(context.Background(), "feed", api.StreamRequest{}, func(w api.StreamWindow) error {
		windows = append(windows, w)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 || windows[1].Window != 1 {
		t.Fatalf("windows %+v", windows)
	}
	if sum.Windows != 2 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestStreamInBandError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"window":0}`)
		fmt.Fprintln(w, `{"error":"solver exploded"}`)
	}))
	defer srv.Close()

	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Stream(context.Background(), "feed", api.StreamRequest{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Message != "solver exploded" {
		t.Fatalf("in-band error surfaced as %v", err)
	}
}

func TestStreamCallbackAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 100; i++ {
			fmt.Fprintf(w, `{"window":%d}`+"\n", i)
		}
		fmt.Fprintln(w, `{"summary":{"windows":100}}`)
	}))
	defer srv.Close()

	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("enough")
	n := 0
	_, err = c.Stream(context.Background(), "feed", api.StreamRequest{}, func(api.StreamWindow) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("callback error surfaced as %v", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times", n)
	}
}

func TestStreamMissingSummary(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"window":0}`)
	}))
	defer srv.Close()

	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(context.Background(), "feed", api.StreamRequest{}, nil); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
