package protemp

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"protemp/internal/core"
	"protemp/internal/linalg"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

// coldStepDecide replicates the online session's decision rule with
// per-window cold solves — a fresh problem build and the cold start
// ladder every time, exactly what Step did before warm state existed.
// It is the reference the golden test compares the warm path against.
func coldStepDecide(t *testing.T, e *Engine, v core.Variant, st sim.WindowState) []float64 {
	t.Helper()
	fmax := e.Chip().FMax()
	required := st.RequiredFreq
	if math.IsNaN(required) || required < 0 {
		required = 0
	}
	if required > fmax {
		required = fmax
	}
	if required > 0 && required < 0.1*fmax {
		required = 0.1 * fmax
	}
	spec := &core.Spec{
		Chip:    e.Chip(),
		Window:  e.Window(),
		TMax:    e.TMax(),
		TStart:  st.MaxCoreTemp,
		FTarget: required,
		Variant: v,
		T0:      st.BlockTemps,
	}
	a, err := core.Solve(spec)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if a.Feasible {
		return a.Freqs
	}
	maxF, _, err := core.SolveUniformBisect(spec)
	if err != nil {
		t.Fatalf("cold bisect: %v", err)
	}
	idle := make([]float64, e.Chip().NumCores())
	if maxF <= 0 {
		return idle
	}
	spec.FTarget = math.Min(required, 0.98*maxF)
	a, err = core.Solve(spec)
	if err != nil {
		t.Fatalf("cold re-solve: %v", err)
	}
	if !a.Feasible {
		return idle
	}
	return a.Freqs
}

// TestOnlineSessionWarmMatchesColdTrajectory is the golden warm-vs-cold
// test: a warm-started online session drives a full sim.Stepper run,
// and at every window its decision is checked against a cold
// per-window solve from the identical observed state, for all three
// model variants. Comparing decisions window-by-window from shared
// state (then advancing on the warm decision) keeps solver-tolerance
// differences from compounding through the thermal trajectory.
func TestOnlineSessionWarmMatchesColdTrajectory(t *testing.T) {
	for _, v := range []core.Variant{core.VariantVariable, core.VariantUniform, core.VariantGradient} {
		t.Run(v.String(), func(t *testing.T) {
			e, err := New(fastOpts(WithVariant(v))...)
			if err != nil {
				t.Fatal(err)
			}
			s, err := e.NewOnlineSession()
			if err != nil {
				t.Fatal(err)
			}
			trace, err := workload.Mixed(3, e.Chip().NumCores(), 2).Generate()
			if err != nil {
				t.Fatal(err)
			}
			stepper, err := sim.NewStepper(sim.Config{
				Chip:    e.Chip(),
				Disc:    e.Disc(),
				Policy:  s.Policy(context.Background()),
				Trace:   trace,
				Window:  e.WindowSeconds(),
				TMax:    e.TMax(),
				MaxTime: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			fmax := e.Chip().FMax()
			windows := 0
			for !stepper.Done() && windows < 30 {
				st := stepper.State()
				warmFreqs, err := s.Step(context.Background(), State{
					MaxCoreTemp:  st.MaxCoreTemp,
					RequiredFreq: st.RequiredFreq,
					BlockTemps:   st.BlockTemps,
				})
				if err != nil {
					t.Fatalf("window %d: %v", windows, err)
				}
				coldFreqs := coldStepDecide(t, e, v, st)
				for j := range warmFreqs {
					if d := math.Abs(warmFreqs[j] - coldFreqs[j]); d > 1e-4*fmax {
						t.Fatalf("window %d core %d: warm %.0f vs cold %.0f Hz (Δ %.0f)",
							windows, j, warmFreqs[j], coldFreqs[j], d)
					}
				}
				if err := stepper.StepWith(linalg.VectorOf(warmFreqs...)); err != nil {
					t.Fatal(err)
				}
				windows++
			}
			if windows < 10 {
				t.Fatalf("trajectory too short to be meaningful: %d windows", windows)
			}
			res := stepper.Result()
			if res.MaxCoreTemp > e.TMax()+0.01 {
				t.Fatalf("warm trajectory broke the guarantee: peak %.2f", res.MaxCoreTemp)
			}
			// The warm chain must actually carry the steady-state windows,
			// or this test is comparing cold against cold.
			if hits, _ := s.WarmStats(); hits == 0 {
				t.Fatal("no warm hits across the trajectory")
			}
		})
	}
}

// stepCancelCtx is a context whose Err() flips to Canceled after a
// fixed number of polls, landing a cancellation deterministically
// inside a solve (the barrier polls once per Newton iteration).
type stepCancelCtx struct {
	context.Context
	calls atomic.Int32
	after int32
}

func (c *stepCancelCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestOnlineSessionCancelDoesNotPoisonWarmState is the regression test
// for the invalidate-on-error contract at the session level: a Step
// cancelled mid-solve must not leave a half-written warm state — the
// next Step under a live context must match a cold solve of the same
// observed state.
func TestOnlineSessionCancelDoesNotPoisonWarmState(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	fmax := e.Chip().FMax()
	nb := e.Floorplan().NumBlocks()
	warmUp := make([]float64, nb)
	for i := range warmUp {
		warmUp[i] = 58 + 2*math.Sin(float64(i))
	}

	// Build warm state with a successful Step.
	if _, err := s.Step(context.Background(), State{MaxCoreTemp: 60, RequiredFreq: 0.5 * fmax, BlockTemps: warmUp}); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.WarmStats(); hits != 0 {
		t.Fatalf("first step claims %d warm hits", hits)
	}

	// Cancel a few Newton iterations into the next Step, at several
	// depths so different runs land in different phases of the solve.
	next := make([]float64, nb)
	for i := range next {
		next[i] = 63 + 2*math.Sin(float64(i))
	}
	st := State{MaxCoreTemp: 65, RequiredFreq: 0.55 * fmax, BlockTemps: next}
	for _, after := range []int32{1, 3, 7} {
		ctx := &stepCancelCtx{Context: context.Background(), after: after}
		if _, err := s.Step(ctx, st); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel after %d polls returned %v, want context.Canceled", after, err)
		}
	}

	// The next Step under a live context must match a from-scratch cold
	// solve of the identical state.
	got, err := s.Step(context.Background(), st)
	if err != nil {
		t.Fatalf("step after cancellations: %v", err)
	}
	cold, err := core.Solve(&core.Spec{
		Chip: e.Chip(), Window: e.Window(), TMax: e.TMax(),
		FTarget: 0.55 * fmax, T0: next,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible {
		t.Fatal("reference state unexpectedly infeasible")
	}
	for j := range got {
		if d := math.Abs(got[j] - cold.Freqs[j]); d > 1e-4*fmax {
			t.Fatalf("core %d: post-cancel %.0f vs cold %.0f Hz (Δ %.0f)", j, got[j], cold.Freqs[j], d)
		}
	}
	// And the session keeps working — warm state rebuilds on top.
	if _, err := s.Step(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.WarmStats(); hits == 0 {
		t.Fatal("warm chain did not rebuild after cancellation")
	}
}
