package protemp

import (
	"math"
	"testing"

	"protemp/internal/core"
	"protemp/internal/workload"
)

// fastSystem uses a coarser step so facade tests stay quick.
func fastSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(SystemConfig{Dt: 1e-3, WindowSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewNiagaraSystemDefaults(t *testing.T) {
	s, err := NewNiagaraSystem()
	if err != nil {
		t.Fatal(err)
	}
	if s.Chip.NumCores() != 8 {
		t.Fatalf("cores = %d", s.Chip.NumCores())
	}
	if s.Config.TMax != 100 || s.Config.Dt != 0.4e-3 || s.Config.WindowSteps != 250 {
		t.Fatalf("defaults wrong: %+v", s.Config)
	}
	if s.Window.Steps() != 250 {
		t.Fatalf("window steps = %d", s.Window.Steps())
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	s := fastSystem(t)
	a, err := s.Optimize(60, 500e6, core.VariantVariable)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("expected feasible point")
	}
	if a.PeakTemp > 100.01 {
		t.Fatalf("peak %.2f", a.PeakTemp)
	}
	if math.Abs(a.AvgFreq-500e6) > 15e6 {
		t.Fatalf("avg freq %.0f MHz, want ≈500", a.AvgFreq/1e6)
	}
}

func TestTableControllerSimulatePipeline(t *testing.T) {
	s := fastSystem(t)
	table, err := s.GenerateTable(
		[]float64{47, 67, 87, 100},
		[]float64{250e6, 500e6, 750e6, 1000e6},
		core.VariantVariable,
	)
	if err != nil {
		t.Fatal(err)
	}
	pro, err := s.ProTempPolicy(table)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.Mixed(5, s.Chip.NumCores(), 3).Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(pro, trace, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoreTemp > 100.01 {
		t.Fatalf("guarantee broken through the facade: %.2f", res.MaxCoreTemp)
	}
	if res.Series["P1"].Len() == 0 {
		t.Fatal("series not recorded")
	}
	ctrl, err := s.Controller(table)
	if err != nil {
		t.Fatal(err)
	}
	if d := ctrl.Decide(60, 400e6); d.Idle {
		t.Fatal("controller idled unexpectedly")
	}
}

func TestPolicyConstructors(t *testing.T) {
	s := fastSystem(t)
	if _, err := s.BasicDFSPolicy(0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := s.BasicDFSPolicy(150); err == nil {
		t.Error("threshold above tmax accepted")
	}
	b, err := s.BasicDFSPolicy(90)
	if err != nil || b.Name() != "Basic-DFS" {
		t.Fatalf("BasicDFSPolicy: %v, %v", b, err)
	}
	if s.NoTCPolicy().Name() != "No-TC" {
		t.Fatal("NoTCPolicy name")
	}
	if _, err := s.ProTempPolicy(&core.Table{}); err == nil {
		t.Error("invalid table accepted")
	}
}

func TestNewSystemPropagatesErrors(t *testing.T) {
	bad := SystemConfig{Dt: 10} // unstable Euler step
	if _, err := NewSystem(bad); err == nil {
		t.Fatal("unstable step accepted")
	}
}
