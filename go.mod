module protemp

go 1.24
