package protemp

import (
	"context"
	"testing"
)

// TestStepDisabledRecorderAllocations pins the tentpole's overhead
// contract: an engine without WithFlightRecorder must pay nothing for
// the tracing layer's existence. The warm Step path on a fixed
// repeated state is allocation-deterministic, so any increase over
// the pinned ceiling means tracing leaked into the disabled hot path
// (the classic culprit is a deferred closure capturing a named
// return, which heap-allocates whether or not the recorder is nil).
func TestStepDisabledRecorderAllocations(t *testing.T) {
	ctx := context.Background()
	step := func(t *testing.T, opts ...Option) float64 {
		t.Helper()
		e, err := New(append([]Option{WithWindow(1e-3, 100)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.NewOnlineSession()
		if err != nil {
			t.Fatal(err)
		}
		st := stepBenchState(e, 3)
		if _, err := s.Step(ctx, st); err != nil {
			t.Fatal(err) // prime the warm chain
		}
		return testing.AllocsPerRun(30, func() {
			if _, err := s.Step(ctx, st); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Measured 216 allocs/op for the warm solve itself; the ceiling
	// leaves no headroom for the disabled recorder on purpose.
	disabled := step(t)
	if disabled > 216 {
		t.Errorf("disabled-recorder warm Step = %.0f allocs/op, want <= 216 (tracing leaked into the hot path?)", disabled)
	}

	// Sanity: with the flight recorder on, the same step records — the
	// extra allocations are the trace being built.
	enabled := step(t, WithFlightRecorder(4, 2))
	if enabled <= disabled {
		t.Errorf("enabled recorder adds no allocations (disabled %.0f, enabled %.0f) — is it recording?", disabled, enabled)
	}
}

// TestEngineFlightRecorderCapturesStep pins the facade wiring: a
// flight-recorder engine captures online Step anatomy end to end.
func TestEngineFlightRecorderCapturesStep(t *testing.T) {
	e, err := New(WithWindow(1e-3, 100), WithFlightRecorder(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Step(ctx, stepBenchState(e, i)); err != nil {
			t.Fatal(err)
		}
	}
	fr := e.FlightRecorder()
	if fr == nil {
		t.Fatal("FlightRecorder() = nil on a WithFlightRecorder engine")
	}
	traces := fr.Traces()
	if len(traces) != 3 {
		t.Fatalf("captured %d traces, want 3", len(traces))
	}
	tr := traces[0]
	if tr.Mode != "online" || len(tr.Solves) == 0 || tr.ElapsedNs <= 0 {
		t.Fatalf("trace %+v lacks online solve anatomy", tr)
	}
	sp := tr.Solves[0]
	if sp.Rung == "" || len(sp.Centerings) == 0 {
		t.Fatalf("span %+v lacks rung/centering detail", sp)
	}

	// Default engines stay dark.
	plain, err := New(WithWindow(1e-3, 100))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FlightRecorder() != nil {
		t.Fatal("default engine has a flight recorder")
	}
}
