package protemp

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// storeOpts builds a fast engine backed by a table store in dir.
func storeOpts(dir string) []Option {
	return fastOpts(smallGrid(), WithTableStoreDir(dir))
}

// TestTableStoreWriteThrough is the restart-warm property at the
// engine level: generate on one engine, load from the store (no
// Phase-1 sweep) on a fresh engine sharing the directory.
func TestTableStoreWriteThrough(t *testing.T) {
	dir := t.TempDir()

	e1, err := New(storeOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl1, err := e1.GenerateTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := e1.CacheStats()
	if st.Generations != 1 || st.StoreWrites != 1 || st.StoreMisses != 1 {
		t.Fatalf("cold engine stats %+v", st)
	}

	e2, err := New(storeOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := e2.GenerateTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st2 := e2.CacheStats()
	if st2.Generations != 0 || st2.StoreHits != 1 {
		t.Fatalf("warm engine stats %+v: expected a store hit, no sweep", st2)
	}
	if len(tbl2.Entries) != len(tbl1.Entries) || tbl2.NumCores != tbl1.NumCores {
		t.Fatalf("stored table differs: %d rows vs %d", len(tbl2.Entries), len(tbl1.Entries))
	}

	// Second lookup on the warm engine is an in-memory hit, not
	// another store read.
	if _, err := e2.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st3 := e2.CacheStats(); st3.Hits != 1 || st3.StoreHits != 1 {
		t.Fatalf("stats after repeat %+v", st3)
	}
}

// TestTableStoreWithCacheDisabled: the persistent tier works even when
// the in-memory LRU is off.
func TestTableStoreWithCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	e, err := New(append(storeOpts(dir), WithTableCacheSize(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Generations != 1 || st.StoreHits != 1 || st.StoreWrites != 1 {
		t.Fatalf("stats %+v: second call should hit the store, not re-sweep", st)
	}
}

// TestTableStoreConcurrentWarmup: concurrent sessions on a warm store
// share one store load through the singleflight path.
func TestTableStoreConcurrentWarmup(t *testing.T) {
	dir := t.TempDir()
	e1, err := New(storeOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}

	e2, err := New(storeOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e2.NewSession(context.Background()); err != nil {
				t.Errorf("session: %v", err)
			}
		}()
	}
	wg.Wait()
	st := e2.CacheStats()
	if st.Generations != 0 || st.StoreHits != 1 {
		t.Fatalf("stats %+v: %d concurrent sessions should share one store load", st, callers)
	}
}

// TestWriteReadTableFormats: ReadTable accepts both the versioned
// store format and the legacy JSON.
func TestWriteReadTableFormats(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.GenerateTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var versioned, legacy bytes.Buffer
	if err := WriteTable(&versioned, tbl); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteJSON(&legacy); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"versioned": &versioned, "legacy": &legacy} {
		got, err := ReadTable(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumCores != tbl.NumCores || len(got.Entries) != len(tbl.Entries) {
			t.Fatalf("%s: table mismatch", name)
		}
	}
}

// TestTableKeyMatchesStoreFile: the key the engine reports is the key
// the write-through tier files the table under.
func TestTableKeyMatchesStoreFile(t *testing.T) {
	dir := t.TempDir()
	e, err := New(storeOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	key := e.TableKey(nil, nil, e.Variant())
	store, err := OpenTableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok, err := store.Load(key)
	if err != nil || !ok {
		t.Fatalf("store.Load(%s) = %v, %v", key, ok, err)
	}
	if tbl.NumCores != e.Chip().NumCores() {
		t.Fatalf("stored table has %d cores", tbl.NumCores)
	}
}

// TestSessionStepCancelledMidStepIsReusable is the session-lifecycle
// regression test: cancelling a context while Step is in flight (at
// any point — during the main solve, the bisection fallback, or the
// re-solve) must return promptly without deadlock and leave the
// session fully usable under a live context.
func TestSessionStepCancelledMidStepIsReusable(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}

	// A hot start with a near-fmax target forces the expensive path:
	// infeasible main solve, bisection fallback, downgraded re-solve.
	hot := State{MaxCoreTemp: 97, RequiredFreq: 0.95 * e.Chip().FMax()}

	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := s.Step(ctx, hot)
			done <- err
		}()
		// Cancel at staggered offsets so different iterations land in
		// different phases of the step.
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iteration %d: Step deadlocked after cancellation", i)
		}
	}

	// The session must still work, repeatedly, on a live context.
	for i := 0; i < 3; i++ {
		freqs, err := s.Step(context.Background(), State{MaxCoreTemp: 50, RequiredFreq: 5e8})
		if err != nil {
			t.Fatalf("post-cancel step %d: %v", i, err)
		}
		if len(freqs) != e.Chip().NumCores() {
			t.Fatalf("post-cancel step %d: %d freqs", i, len(freqs))
		}
	}
	// Every recorded online step pairs with at least one solve; an
	// early-cancelled Step records neither (the entry check), so only
	// the invariant — not an exact count — is assertable.
	steps, _, _, solves := s.Stats()
	if steps < 3 || solves < steps {
		t.Fatalf("counters inconsistent after cancellations: steps=%d solves=%d", steps, solves)
	}
}

// TestSessionNewAfterCancelledGeneration: a table session whose
// Phase-1 generation was cancelled can be recreated on the same engine.
func TestSessionNewAfterCancelledGeneration(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.NewSession(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled NewSession: %v", err)
	}
	sess, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if _, err := sess.Step(context.Background(), State{MaxCoreTemp: 47, RequiredFreq: 2.5e8}); err != nil {
		t.Fatal(err)
	}
}
