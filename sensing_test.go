package protemp

import (
	"context"
	"testing"
)

// Simulate with the sensing options attaches a SenseSummary and runs
// the estimator over the degraded readings.
func TestSimulateWithSensingOptions(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Simulate(context.Background(), e.NoTCPolicy(), mustTrace(t, e),
		WithSensors(11, DefaultNoisySensor()),
		WithEstimator("kalman"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sense == nil {
		t.Fatal("sensed simulate returned no SenseSummary")
	}
	if res.Sense.Estimator != "kalman" {
		t.Fatalf("estimator %q, want kalman", res.Sense.Estimator)
	}
	if res.Sense.EstimateRMSC <= 0 || res.Sense.EstimateRMSC > 5 {
		t.Fatalf("estimate RMS %.3f °C outside (0, 5]", res.Sense.EstimateRMSC)
	}

	// Without sensing options the result carries no summary at all —
	// the decorator is not even in the loop.
	plain, err := e.Simulate(context.Background(), e.NoTCPolicy(), mustTrace(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sense != nil {
		t.Fatal("plain simulate grew a SenseSummary")
	}
}

// A bad estimator name surfaces as a Simulate error, not a panic.
func TestSimulateSensingValidation(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Simulate(context.Background(), e.NoTCPolicy(), mustTrace(t, e),
		WithEstimator("bogus")); err == nil {
		t.Fatal("bogus estimator accepted")
	}
	if _, err := e.Simulate(context.Background(), e.NoTCPolicy(), mustTrace(t, e),
		WithSensors(1, SensorConfig{NoiseSigma: -1})); err == nil {
		t.Fatal("negative noise sigma accepted")
	}
}

// A dropout burst mid-session invalidates the online session's warm
// solver state without erroring: the degraded windows still produce
// commands, but neither the blind window's optimum nor its
// predecessor's ever seeds a later real solve.
func TestSessionDropoutBurstInvalidatesWarm(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	good := State{MaxCoreTemp: 60, RequiredFreq: 5e8}
	burst := State{MaxCoreTemp: 60, RequiredFreq: 5e8, SensingDegraded: true}

	step := func(st State) {
		t.Helper()
		freqs, err := s.Step(ctx, st)
		if err != nil {
			t.Fatalf("step errored under degraded sensing: %v", err)
		}
		if len(freqs) != e.Chip().NumCores() {
			t.Fatalf("got %d freqs for %d cores", len(freqs), e.Chip().NumCores())
		}
	}

	step(good) // cold: first solve of the session
	step(good) // warm
	step(good) // warm
	step(burst) // cold: invalidated on entry, and again on exit
	step(good) // cold: the blind optimum must not have survived
	step(good) // warm again

	_, _, _, solves := s.Stats()
	hits, _ := s.WarmStats()
	if hits < 2 {
		t.Fatalf("warm hits %d, want >= 2", hits)
	}
	if cold := solves - hits; cold < 3 {
		t.Fatalf("cold solves %d, want >= 3 (initial + burst + post-burst)", cold)
	}
}

// InvalidateWarm is the out-of-band spelling: it forces the next solve
// cold on an online session and is a no-op on a table session.
func TestInvalidateWarm(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := State{MaxCoreTemp: 60, RequiredFreq: 5e8}
	for i := 0; i < 2; i++ {
		if _, err := s.Step(ctx, st); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore, _ := s.WarmStats()
	if hitsBefore == 0 {
		t.Fatal("no warm hit after two steps")
	}
	s.InvalidateWarm()
	if _, err := s.Step(ctx, st); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := s.WarmStats()
	if hitsAfter != hitsBefore {
		t.Fatalf("solve after InvalidateWarm was warm (%d -> %d)", hitsBefore, hitsAfter)
	}

	ts, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	table, err := ts.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	table.InvalidateWarm() // must not panic
}

// The session policy adapter forwards the degraded flag end to end: a
// full-dropout sensed run driven by an online session completes with
// zero warm hits — every window's state was flagged and no optimum
// carried over.
func TestSessionPolicyForwardsDegraded(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := e.Simulate(ctx, s.Policy(ctx), mustTrace(t, e),
		WithSensing(&Sensing{
			Sensors:   UniformSensors(e.Chip().NumCores(), SensorConfig{DropoutProb: 1}),
			Seed:      5,
			Estimator: "kalman",
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sense == nil || res.Sense.DegradedWindows == 0 {
		t.Fatalf("full dropout produced no degraded windows: %+v", res.Sense)
	}
	if hits, _ := s.WarmStats(); hits != 0 {
		t.Fatalf("warm hits %d across all-degraded run, want 0", hits)
	}
	_, _, _, solves := s.Stats()
	if solves == 0 {
		t.Fatal("online session never solved")
	}
}
