// Package api defines the versioned HTTP wire types of the protemp
// control plane (the /v1 surface plus the metrics/debug endpoints).
// The server, the typed client and the cluster proxy all marshal
// through these structs, so the three cannot drift apart. The package
// depends only on the standard library: deep engine payloads (the
// Phase-1 table, fleet batch results, sensing configuration) travel as
// json.RawMessage, keeping their schemas owned by the packages that
// produce them while this package pins the envelope.
//
// Compatibility: fields are only ever added, never renamed or
// repurposed, within a major API version. The deprecated session
// create field `online` is intentionally absent here — servers still
// accept it from old clients, but new code selects the session kind
// with Mode.
package api

import (
	"encoding/json"
	"time"
)

// Version is the API version every route in this package is prefixed
// with.
const Version = "v1"

// Headers the control plane defines beyond the standard set.
const (
	// HeaderForwarded marks a request already proxied once by a cluster
	// peer. A receiving node always serves a forwarded request locally
	// (never re-proxies), so routing is single-hop by construction.
	HeaderForwarded = "X-Protemp-Forwarded"
	// HeaderRequestID echoes the server's serving id for one request;
	// quote it when reporting a problem.
	HeaderRequestID = "X-Request-Id"
)

// Error is the uniform error body every non-2xx JSON response carries.
type Error struct {
	Message string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// OptimizeRequest is the POST /v1/optimize body: one Phase-2 design
// point (starting temperature, required average frequency).
type OptimizeRequest struct {
	TStartC   float64 `json:"tstart_c"`
	FTargetHz float64 `json:"ftarget_hz"`
	Variant   string  `json:"variant,omitempty"`
}

// Assignment is the POST /v1/optimize response: the optimal per-core
// frequency assignment, or Feasible == false when the design point
// admits no solution.
type Assignment struct {
	Feasible    bool      `json:"feasible"`
	FreqsHz     []float64 `json:"freqs_hz,omitempty"`
	PowersW     []float64 `json:"powers_w,omitempty"`
	AvgFreqHz   float64   `json:"avg_freq_hz,omitempty"`
	TotalPowerW float64   `json:"total_power_w,omitempty"`
	PeakTempC   float64   `json:"peak_temp_c,omitempty"`
	TGradC      float64   `json:"tgrad_c,omitempty"`
	NewtonIters int       `json:"newton_iters,omitempty"`
}

// TablesRequest is the POST /v1/tables body: an explicit Phase-1 grid,
// or empty grids to select the server's defaults.
type TablesRequest struct {
	TStartsC   []float64 `json:"tstarts_c,omitempty"`
	FTargetsHz []float64 `json:"ftargets_hz,omitempty"`
	Variant    string    `json:"variant,omitempty"`
	// KeyOnly skips the table payload in the response — useful to warm
	// the cache/store or discover the store filename without shipping
	// the grid back.
	KeyOnly bool `json:"key_only,omitempty"`
}

// TablesResponse is the POST /v1/tables response. Table is the
// core.Table JSON document (absent when KeyOnly was set); Key is the
// content-addressed cache/store key, also the path segment of the
// binary peer endpoint GET /v1/tables/{key}.
type TablesResponse struct {
	Key   string          `json:"key"`
	Table json.RawMessage `json:"table,omitempty"`
}

// SessionCreateRequest is the POST /v1/sessions body.
type SessionCreateRequest struct {
	// Mode selects the session kind: "table" (default), "online" (one
	// convex solve per step on the full thermal map) or "dmpc" (the
	// chip partitioned into clusters solved in parallel under ADMM
	// boundary consensus — the many-core mode).
	Mode string `json:"mode,omitempty"`
	// ID preassigns the session id. It is honored only on requests
	// carrying HeaderForwarded: the node that accepted the original
	// create generates the id, ring-hashes it, and forwards the create
	// to the owner with the id pinned so both sides agree on it.
	// Non-forwarded requests must leave it empty.
	ID string `json:"id,omitempty"`
}

// SessionInfo describes one live session: the POST /v1/sessions and
// GET /v1/sessions/{id} response.
type SessionInfo struct {
	ID   string `json:"id"`
	Mode string `json:"mode"`
	// Degraded reports that an online/dmpc create was admitted under
	// overload and downgraded to the table-driven policy: the session
	// serves decisions, but from the Phase-1 table rather than live
	// solves.
	Degraded bool `json:"degraded,omitempty"`
	// Node names the cluster node that owns the session (empty on a
	// single-node server).
	Node       string  `json:"node,omitempty"`
	NumCores   int     `json:"num_cores"`
	WindowS    float64 `json:"window_s"`
	Steps      uint64  `json:"steps"`
	Downgrades uint64  `json:"downgrades"`
	Idles      uint64  `json:"idles"`
	Solves     uint64  `json:"solves"`
	// WarmHits / WarmRejects report an online or dmpc session's
	// warm-start effectiveness (always zero for table sessions).
	WarmHits    uint64 `json:"warm_hits"`
	WarmRejects uint64 `json:"warm_rejects"`
	// Consensus-layer accounting of a dmpc session (zero otherwise):
	// partition size, total ADMM outer iterations and windows that
	// walked the fallback ladder.
	Clusters   int    `json:"clusters,omitempty"`
	OuterIters uint64 `json:"outer_iters,omitempty"`
	Fallbacks  uint64 `json:"fallbacks,omitempty"`
}

// StepRequest is the POST /v1/sessions/{id}/step body: one DFS-window
// thermal state.
type StepRequest struct {
	MaxCoreTempC   float64   `json:"max_core_temp_c"`
	RequiredFreqHz float64   `json:"required_freq_hz"`
	BlockTempsC    []float64 `json:"block_temps_c,omitempty"`
	// SensingDegraded marks the observed state as pure prediction or
	// held-over readings (a fully blind sensor window): an online
	// session drops its warm solver state so the blind window's optimum
	// never seeds the next real solve.
	SensingDegraded bool `json:"sensing_degraded,omitempty"`
}

// StepResponse is the POST /v1/sessions/{id}/step response: the
// per-core frequency decision for the window.
type StepResponse struct {
	FreqsHz []float64 `json:"freqs_hz"`
	Steps   uint64    `json:"steps"`
}

// StreamRequest is the POST /v1/sessions/{id}/stream body: a
// co-simulated control loop driven server-side, one NDJSON StreamWindow
// per DFS window, closed by a StreamSummary line.
type StreamRequest struct {
	// Windows bounds how many DFS windows to drive (default: until the
	// workload drains, capped by the server's StreamWindowCap).
	Windows int `json:"windows,omitempty"`
	// Tasks is an explicit workload (arrival-ordered). When empty a
	// synthetic mixed trace is generated from Seed/DurationS/Utilization.
	Tasks []StreamTask `json:"tasks,omitempty"`
	// Seed / DurationS / Utilization parameterize the synthetic trace
	// (defaults 1 / one window per requested step / 0.7).
	Seed        int64   `json:"seed,omitempty"`
	DurationS   float64 `json:"duration_s,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	// T0C is the uniform initial temperature (default model ambient).
	T0C float64 `json:"t0_c,omitempty"`
	// Sensing, when present, interposes the imperfect measurement path
	// (a sim.Sensing JSON document): the session observes degraded
	// sensor readings instead of the true temperatures, and the closing
	// summary reports the sense counters.
	Sensing json.RawMessage `json:"sensing,omitempty"`
}

// StreamTask is one explicit workload task of a StreamRequest.
type StreamTask struct {
	ArrivalS float64 `json:"arrival_s"`
	WorkS    float64 `json:"work_s"`
}

// StreamWindow is one NDJSON line of a stream response.
type StreamWindow struct {
	Window         int       `json:"window"`
	TimeS          float64   `json:"t_s"`
	MaxCoreTempC   float64   `json:"max_core_temp_c"`
	RequiredFreqHz float64   `json:"required_freq_hz"`
	FreqsHz        []float64 `json:"freqs_hz"`
	QueueLen       int       `json:"queue_len"`
	// SensingDegraded marks a fully blind sensor window (sensed streams
	// only): the reported temperatures are predictions or held-over
	// readings, and the session's warm solver state was invalidated.
	SensingDegraded bool `json:"sensing_degraded,omitempty"`
	Done            bool `json:"done"`
}

// StreamSummary is the final NDJSON line of a stream response.
type StreamSummary struct {
	Summary StreamSummaryBody `json:"summary"`
}

// StreamSummaryBody carries the closed-loop result of one stream.
type StreamSummaryBody struct {
	Windows       int     `json:"windows"`
	SimTimeS      float64 `json:"sim_time_s"`
	Completed     int     `json:"completed"`
	Unfinished    int     `json:"unfinished"`
	MaxCoreTempC  float64 `json:"max_core_temp_c"`
	ViolationFrac float64 `json:"violation_frac"`
	EnergyJ       float64 `json:"energy_j"`
	// Sense carries the imperfect-sensing counters and estimator
	// accuracy of a sensed stream (a sim.SenseSummary JSON document;
	// absent otherwise).
	Sense json.RawMessage `json:"sense,omitempty"`
}

// FleetSubmitRequest is the POST /v1/fleet body. It mirrors
// fleet.BatchSpec with wire-friendly seconds instead of a Go duration.
type FleetSubmitRequest struct {
	Scenarios   []string      `json:"scenarios"`
	Policies    []FleetPolicy `json:"policies"`
	Seeds       []int64       `json:"seeds,omitempty"`
	Workers     int           `json:"workers,omitempty"`
	HorizonS    float64       `json:"horizon_s,omitempty"`
	RunTimeoutS float64       `json:"run_timeout_s,omitempty"`
	MaxSimTimeS float64       `json:"max_sim_time_s,omitempty"`
}

// FleetPolicy names one control policy of a fleet batch.
type FleetPolicy struct {
	// Kind is "protemp", "protemp-online", "protemp-dmpc", "basic-dfs"
	// or "no-tc".
	Kind string `json:"kind"`
	// Clusters is the protemp-dmpc partition size; zero selects the
	// engine default.
	Clusters int `json:"clusters,omitempty"`
	// ThresholdC is the Basic-DFS shutdown trigger in °C; zero derives
	// the paper's margin.
	ThresholdC float64 `json:"threshold_c,omitempty"`
	// Variant selects the model variant ("variable", "uniform" or
	// "gradient"; empty = engine default).
	Variant string `json:"variant,omitempty"`
	// Estimator equips the policy with a state observer ("kalman" or
	// "luenberger") for degraded-sensing scenarios.
	Estimator string `json:"estimator,omitempty"`
}

// FleetJobStatus is one fleet job's progress snapshot: the POST
// /v1/fleet and GET /v1/fleet/{id} response, and the rows of GET
// /v1/fleet.
type FleetJobStatus struct {
	ID       string  `json:"id"`
	Status   string  `json:"status"`
	Total    int     `json:"total"`
	Done     int     `json:"done"`
	Failed   int     `json:"failed"`
	ElapsedS float64 `json:"elapsed_s"`
	Error    string  `json:"error,omitempty"`
}

// Fleet job states FleetJobStatus.Status takes.
const (
	FleetJobRunning   = "running"
	FleetJobDone      = "done"
	FleetJobFailed    = "failed"
	FleetJobCancelled = "cancelled"
)

// FleetJobList is the GET /v1/fleet response.
type FleetJobList struct {
	Jobs []FleetJobStatus `json:"jobs"`
}

// FleetResultsResponse is the GET /v1/fleet/{id}/results response.
// Result is the full fleet.BatchResult JSON document; Ranked and
// Leaderboard are the server-computed orderings ([]fleet.RunResult and
// []fleet.LeaderboardRow).
type FleetResultsResponse struct {
	FleetJobStatus
	Result      json.RawMessage `json:"result"`
	Ranked      json.RawMessage `json:"ranked,omitempty"`
	Leaderboard json.RawMessage `json:"leaderboard,omitempty"`
}

// FleetScenario describes one registered workload scenario: a row of
// GET /v1/fleet/scenarios.
type FleetScenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	HorizonS    float64 `json:"horizon_s"`
	T0C         float64 `json:"t0_c,omitempty"`
	TMaxC       float64 `json:"tmax_c,omitempty"`
}

// FleetScenarioList is the GET /v1/fleet/scenarios response.
type FleetScenarioList struct {
	Scenarios []FleetScenario `json:"scenarios"`
}

// TraceSummary is one row of the GET /debug/traces listing; the full
// span tree of a trace hangs off GET /debug/traces/{id} (an
// obs.Trace JSON document).
type TraceSummary struct {
	ID        uint64    `json:"id"`
	Mode      string    `json:"mode"`
	Start     time.Time `json:"start"`
	ElapsedMs float64   `json:"elapsed_ms"`
	Solves    int       `json:"solves"`
	Err       string    `json:"err,omitempty"`
	Fallback  string    `json:"fallback,omitempty"`
}

// TraceList is the GET /debug/traces response.
type TraceList struct {
	Traces []TraceSummary `json:"traces"`
}

// Health is the GET /healthz response.
type Health struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	// Node and Peers describe cluster membership (absent on a
	// single-node server).
	Node  string `json:"node,omitempty"`
	Peers int    `json:"peers,omitempty"`
}
