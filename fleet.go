package protemp

import (
	"context"

	"protemp/internal/fleet"
)

// Fleet evaluation: named workload scenarios batched across policies
// and seeds on one shared Engine. The heavy lifting lives in
// internal/fleet (scenario registry, bounded worker pool, ranked
// reports); these aliases re-export the spec/result types so callers
// of the public facade can build batches without reaching into
// internal packages.
type (
	// FleetSpec describes one batch: scenarios × policies × seeds.
	FleetSpec = fleet.BatchSpec
	// FleetPolicy names one policy cell ("protemp", "protemp-online",
	// "basic-dfs", "no-tc") with its parameters.
	FleetPolicy = fleet.PolicySpec
	// FleetResult aggregates a batch; FleetResult.Runs is in
	// deterministic scenario-major order.
	FleetResult = fleet.BatchResult
	// FleetRun is one (scenario, policy, seed) outcome.
	FleetRun = fleet.RunResult
	// FleetScenario is one named workload regime; register custom ones
	// on a FleetRegistry.
	FleetScenario = fleet.Scenario
	// FleetRegistry maps scenario names to scenarios.
	FleetRegistry = fleet.Registry
)

// FleetScenarios returns the built-in scenario registry: the
// paper-style mixed and compute regimes plus the production stressors
// (diurnal load curve, bursty on/off traffic, thermally adversarial
// all-cores-hot, ambient sweep). Each call returns an independent
// registry, so callers may Register their own scenarios freely.
func FleetScenarios() *FleetRegistry { return fleet.Builtin() }

// RunFleet evaluates the batch on the engine with the built-in
// scenarios: every (scenario, policy, seed) cell is simulated across a
// bounded worker pool, Phase-1 tables are generated at most once per
// distinct table spec through the engine's cache/singleflight/store
// tiers, and the progress instruments land in the engine's metrics
// registry (fleet_runs_inflight and the fleet_* counters appear in
// MetricsSnapshot). Cancelling ctx aborts in-flight runs and returns
// the partial result together with ctx.Err().
func (e *Engine) RunFleet(ctx context.Context, spec FleetSpec) (*FleetResult, error) {
	return e.RunFleetScenarios(ctx, spec, nil)
}

// RunFleetScenarios is RunFleet with an explicit scenario registry
// (nil selects the built-ins).
func (e *Engine) RunFleetScenarios(ctx context.Context, spec FleetSpec, scenarios *FleetRegistry) (*FleetResult, error) {
	return fleet.NewRunner(e, scenarios, e.reg).Run(ctx, spec)
}

// RunFleet evaluates the batch on the engine with the built-in
// scenarios — the package-level spelling of Engine.RunFleet.
func RunFleet(ctx context.Context, e *Engine, spec FleetSpec) (*FleetResult, error) {
	return e.RunFleet(ctx, spec)
}
