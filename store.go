package protemp

import (
	"errors"
	"io"

	"protemp/internal/core"
	"protemp/internal/tablestore"
)

// WriteTable serializes a Phase-1 table in the versioned table-store
// format (magic + version + checksum + compressed payload). Files
// written this way drop directly into a server's store directory and
// are readable by ReadTable and every protemp daemon.
func WriteTable(w io.Writer, t *core.Table) error {
	return tablestore.Encode(w, t)
}

// ReadTable deserializes a Phase-1 table from either supported format:
// the versioned table-store envelope or the legacy bare-JSON emitted
// by earlier protemp-table builds. The table is validated before it is
// returned.
func ReadTable(r io.Reader) (*core.Table, error) {
	return tablestore.Decode(r)
}

// OpenTableStore opens (creating if needed) a directory-backed
// persistent table store usable with WithTableStore. Tables are stored
// one file per cache key, written atomically, so multiple processes
// can share one directory.
func OpenTableStore(dir string) (TableStore, error) {
	s, err := tablestore.Open(dir)
	if err != nil {
		return nil, err
	}
	return dirStore{s}, nil
}

// dirStore adapts tablestore.Store's ErrNotFound convention to the
// TableStore (table, ok, err) contract.
type dirStore struct {
	s *tablestore.Store
}

func (d dirStore) Load(key string) (*core.Table, bool, error) {
	t, err := d.s.Load(key)
	if errors.Is(err, tablestore.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

func (d dirStore) Save(key string, t *core.Table) error {
	return d.s.Save(key, t)
}
