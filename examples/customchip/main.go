// Custom chip: Pro-Temp on a user-defined platform — a 4x4 tiled mesh
// (in the spirit of the Tilera part the paper's introduction cites)
// with smaller, lower-power cores. Everything the paper's flow needs —
// RC model synthesis, Phase-1 table, run-time control — comes from the
// same public API as the Niagara build.
package main

import (
	"fmt"
	"log"

	"protemp"
	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/workload"
)

func main() {
	log.SetFlags(0)

	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: 4, Cols: 4,
		CoreW: 2e-3, CoreH: 2e-3, // 2x2 mm tiles
		CacheH: 1.5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := protemp.NewSystem(protemp.SystemConfig{
		Floorplan: fp,
		CoreModel: power.CoreModel{FMax: 750e6, PMax: 1.8},
		Dt:        1e-3,
		// 100-step window = 100 ms, as in the paper.
		WindowSteps: 100,
		TMax:        95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom platform: %d cores on a %dx%d mesh, fmax %.0f MHz, tmax %.0f °C\n",
		sys.Chip.NumCores(), 4, 4, sys.Chip.FMax()/1e6, sys.Config.TMax)

	table, err := sys.GenerateTable(
		[]float64{47, 67, 87, 95},
		[]float64{93.75e6, 187.5e6, 281.25e6, 375e6, 468.75e6, 562.5e6, 656.25e6, 750e6},
		core.VariantVariable,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("supported average frequency by starting temperature:")
	for _, ts := range table.TStarts {
		fmt.Printf("  %5.0f °C -> %6.0f MHz\n", ts, table.MaxSupportedFreq(ts)/1e6)
	}

	// Corner tiles sit next to the cache strips; the optimizer exploits
	// that the same way it exploits Niagara's periphery cores.
	a, err := sys.Optimize(65, 0.45*sys.Chip.FMax(), core.VariantVariable)
	if err != nil {
		log.Fatal(err)
	}
	if !a.Feasible {
		log.Fatal("expected design point to be feasible")
	}
	{
		fmt.Println("\nper-tile frequencies (MHz) at tstart 65 °C, 45% load:")
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				fmt.Printf(" %5.0f", a.Freqs[r*4+c]/1e6)
			}
			fmt.Println()
		}
		fmt.Printf("peak predicted temperature: %.2f °C\n", a.PeakTemp)
	}

	// Close the loop on a short trace.
	pro, err := sys.ProTempPolicy(table)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := workload.Mixed(3, sys.Chip.NumCores(), 3).Generate()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Simulate(pro, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed loop over %d tasks: max %.2f °C (limit %.0f), violations %.1f%%, %d completed\n",
		len(trace.Tasks), res.MaxCoreTemp, sys.Config.TMax, 100*res.ViolationFrac, res.Completed)
}
