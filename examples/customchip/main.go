// Custom chip: Pro-Temp on a user-defined platform — a 4x4 tiled mesh
// (in the spirit of the Tilera part the paper's introduction cites)
// with smaller, lower-power cores. Everything the paper's flow needs —
// RC model synthesis, Phase-1 table, run-time control — comes from the
// same Engine options as the Niagara build, and the run-time side is
// driven through a control Session.
package main

import (
	"context"
	"fmt"
	"log"

	"protemp"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: 4, Cols: 4,
		CoreW: 2e-3, CoreH: 2e-3, // 2x2 mm tiles
		CacheH: 1.5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := protemp.New(
		protemp.WithFloorplan(fp),
		protemp.WithCoreModel(power.CoreModel{FMax: 750e6, PMax: 1.8}),
		// 100 × 1 ms window = 100 ms, as in the paper.
		protemp.WithWindow(1e-3, 100),
		protemp.WithTMax(95),
		protemp.WithTableGrid(
			[]float64{47, 67, 87, 95},
			[]float64{93.75e6, 187.5e6, 281.25e6, 375e6, 468.75e6, 562.5e6, 656.25e6, 750e6},
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	chip := engine.Chip()
	fmt.Printf("custom platform: %d cores on a %dx%d mesh, fmax %.0f MHz, tmax %.0f °C\n",
		chip.NumCores(), 4, 4, chip.FMax()/1e6, engine.TMax())

	// A Session bundles Phase-1 generation (cached on the engine) with
	// the run-time controller.
	session, err := engine.NewSession(ctx)
	if err != nil {
		log.Fatal(err)
	}
	table := session.Table()
	fmt.Println("supported average frequency by starting temperature:")
	for _, ts := range table.TStarts {
		fmt.Printf("  %5.0f °C -> %6.0f MHz\n", ts, table.MaxSupportedFreq(ts)/1e6)
	}

	// Corner tiles sit next to the cache strips; the optimizer exploits
	// that the same way it exploits Niagara's periphery cores.
	a, err := engine.Optimize(ctx, 65, 0.45*chip.FMax())
	if err != nil {
		log.Fatal(err)
	}
	if !a.Feasible {
		log.Fatal("expected design point to be feasible")
	}
	fmt.Println("\nper-tile frequencies (MHz) at tstart 65 °C, 45% load:")
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			fmt.Printf(" %5.0f", a.Freqs[r*4+c]/1e6)
		}
		fmt.Println()
	}
	fmt.Printf("peak predicted temperature: %.2f °C\n", a.PeakTemp)

	// One manual control step — what a deployment would do per window.
	freqs, err := session.Step(ctx, protemp.State{MaxCoreTemp: 82, RequiredFreq: 0.4 * chip.FMax()})
	if err != nil {
		log.Fatal(err)
	}
	avg := 0.0
	for _, f := range freqs {
		avg += f / float64(len(freqs))
	}
	fmt.Printf("\nsession step at 82 °C, 40%% load: average command %.0f MHz\n", avg/1e6)

	// Close the loop on a short trace, driving the simulator with the
	// same session.
	trace, err := workload.Mixed(3, chip.NumCores(), 3).Generate()
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Simulate(ctx, session.Policy(ctx), trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed loop over %d tasks: max %.2f °C (limit %.0f), violations %.1f%%, %d completed\n",
		len(trace.Tasks), res.MaxCoreTemp, engine.TMax(), 100*res.ViolationFrac, res.Completed)
}
