// Gradient shaping: compares the paper's three model variants at one
// design point — per-core (variable) assignment, the uniform-frequency
// restriction of Section 5.3, and the gradient-minimizing extension of
// Eqs. 4-5 — showing how the variable assignment buys workload capacity
// and the gradient variant buys spatial uniformity.
package main

import (
	"context"
	"fmt"
	"log"

	"protemp"
	"protemp/internal/core"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	engine, err := protemp.New(protemp.WithWindow(1e-3, 100))
	if err != nil {
		log.Fatal(err)
	}
	const (
		tstart = 85.0
		target = 550e6
	)
	fmt.Printf("design point: tstart %.0f °C, target %.0f MHz average, tmax %.0f °C\n\n",
		tstart, target/1e6, engine.TMax())

	for _, v := range []core.Variant{core.VariantVariable, core.VariantUniform, core.VariantGradient} {
		a, err := engine.OptimizeVariant(ctx, tstart, target, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s variant: ", v)
		if !a.Feasible {
			fmt.Println("infeasible")
			continue
		}
		fmt.Printf("avg %.0f MHz, power %.2f W, peak %.2f °C",
			a.AvgFreq/1e6, a.TotalPower, a.PeakTemp)
		if v == core.VariantGradient {
			fmt.Printf(", gradient bound %.2f °C", a.TGrad)
		}
		fmt.Println()
		fmt.Print("  per-core MHz:")
		for _, f := range a.Freqs {
			fmt.Printf(" %4.0f", f/1e6)
		}
		fmt.Println()
	}

	// Section 5.3's capacity argument: sweep the starting temperature
	// and compare the highest supportable average frequency.
	fmt.Println("\nsupported average frequency, uniform vs variable (Fig. 9's claim):")
	fmt.Printf("%8s %10s %10s\n", "tstart", "uniform", "variable")
	for _, ts := range []float64{47, 67, 87, 97} {
		uni, _, err := core.SolveUniformBisect(&core.Spec{
			Chip: engine.Chip(), Window: engine.Window(), TStart: ts,
			TMax: engine.TMax(), Variant: core.VariantUniform,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The variable assignment can always match the uniform optimum;
		// probe a few percent above it to expose strict dominance.
		probe := uni * 1.04
		if probe > engine.Chip().FMax() {
			probe = engine.Chip().FMax()
		}
		a, err := engine.OptimizeVariant(ctx, ts, probe, core.VariantVariable)
		if err != nil {
			log.Fatal(err)
		}
		varSupport := uni
		if a.Feasible {
			varSupport = a.AvgFreq
		}
		fmt.Printf("%8.0f %9.0fM %9.0fM\n", ts, uni/1e6, varSupport/1e6)
	}
}
