// Quickstart: build the paper's Niagara-8 platform and ask Pro-Temp for
// one optimal frequency assignment — cores starting at 80 °C, workload
// requiring a 600 MHz average, limit 100 °C.
package main

import (
	"context"
	"fmt"
	"log"

	"protemp"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The zero-option engine is the paper's evaluation platform.
	engine, err := protemp.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d cores at %.0f MHz / %.0f W max, tmax %.0f °C\n",
		engine.Chip().NumCores(), engine.Chip().FMax()/1e6, 4.0, engine.TMax())

	a, err := engine.Optimize(ctx, 80, 600e6)
	if err != nil {
		log.Fatal(err)
	}
	if !a.Feasible {
		log.Fatal("design point infeasible — lower the target or cool the chip")
	}

	fmt.Printf("\noptimal assignment for tstart=80 °C, target 600 MHz average:\n")
	for j, f := range a.Freqs {
		fmt.Printf("  core P%d: %7.1f MHz  (%.2f W)\n", j+1, f/1e6, a.Powers[j])
	}
	fmt.Printf("\naverage %.1f MHz, total core power %.2f W\n", a.AvgFreq/1e6, a.TotalPower)
	fmt.Printf("worst-case temperature over the next 100 ms window: %.2f °C (limit %.0f)\n",
		a.PeakTemp, engine.TMax())
}
