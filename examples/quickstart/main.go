// Quickstart: build the paper's Niagara-8 platform and ask Pro-Temp for
// one optimal frequency assignment — cores starting at 80 °C, workload
// requiring a 600 MHz average, limit 100 °C.
package main

import (
	"fmt"
	"log"

	"protemp"
	"protemp/internal/core"
)

func main() {
	log.SetFlags(0)

	sys, err := protemp.NewNiagaraSystem()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d cores at %.0f MHz / %.0f W max, tmax %.0f °C\n",
		sys.Chip.NumCores(), sys.Chip.FMax()/1e6, 4.0, sys.Config.TMax)

	a, err := sys.Optimize(80, 600e6, core.VariantVariable)
	if err != nil {
		log.Fatal(err)
	}
	if !a.Feasible {
		log.Fatal("design point infeasible — lower the target or cool the chip")
	}

	fmt.Printf("\noptimal assignment for tstart=80 °C, target 600 MHz average:\n")
	for j, f := range a.Freqs {
		fmt.Printf("  core P%d: %7.1f MHz  (%.2f W)\n", j+1, f/1e6, a.Powers[j])
	}
	fmt.Printf("\naverage %.1f MHz, total core power %.2f W\n", a.AvgFreq/1e6, a.TotalPower)
	fmt.Printf("worst-case temperature over the next 100 ms window: %.2f °C (limit %.0f)\n",
		a.PeakTemp, sys.Config.TMax)
}
