// Niagara pipeline: the full Pro-Temp flow on the paper's evaluation
// platform — generate the Phase-1 table, wrap it in a run-time control
// session, and race the three policies (No-TC, Basic-DFS, Pro-Temp)
// over a bursty compute-intensive trace, reporting the paper's Fig. 6/7
// metrics.
//
// Uses a 1 ms thermal step so the whole example runs in well under a
// minute; pass the paper's 0.4 ms via cmd/protemp-sim for full fidelity.
package main

import (
	"context"
	"fmt"
	"log"

	"protemp"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	engine, err := protemp.New(
		protemp.WithWindow(1e-3, 100),
		protemp.WithTableGrid(
			[]float64{47, 57, 67, 77, 87, 97, 100},
			[]float64{125e6, 250e6, 375e6, 500e6, 625e6, 750e6, 875e6, 1000e6},
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	chip := engine.Chip()

	fmt.Println("phase 1: generating the frequency table ...")
	session, err := engine.NewSession(ctx)
	if err != nil {
		log.Fatal(err)
	}
	table := session.Table()
	fmt.Printf("  %d grid points, %d feasible\n", table.Stats.Solves, table.Stats.Feasible)
	fmt.Println("  supported average frequency by starting temperature:")
	for _, ts := range table.TStarts {
		fmt.Printf("    %5.0f °C -> %6.0f MHz\n", ts, table.MaxSupportedFreq(ts)/1e6)
	}

	trace, err := workload.ComputeIntensive(7, chip.NumCores(), 6).Generate()
	if err != nil {
		log.Fatal(err)
	}
	st := workload.Summarize(trace, chip.NumCores())
	fmt.Printf("\nphase 2: %d tasks over %.1f s (offered load %.2f)\n", st.Tasks, st.Duration, st.OfferedLoad)

	basic, err := engine.BasicDFSPolicy(90)
	if err != nil {
		log.Fatal(err)
	}
	policies := []sim.Policy{engine.NoTCPolicy(), basic, session.Policy(ctx)}

	fmt.Printf("\n%-18s %9s %9s %9s %9s\n", "policy", "maxT(°C)", ">100(%)", "wait(s)", "grad(°C)")
	for _, p := range policies {
		res, err := engine.Simulate(ctx, p, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.1f %9.1f %9.3f %9.2f\n",
			res.Policy, res.MaxCoreTemp, 100*res.ViolationFrac, res.Wait.Mean(), res.Gradient.Mean())
	}
	fmt.Println("\nPro-Temp keeps every core below the limit at every sub-step —")
	fmt.Println("the guarantee the paper's Figure 2 illustrates.")
}
