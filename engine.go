package protemp

import (
	"context"
	"fmt"
	"time"

	"protemp/internal/core"
	"protemp/internal/dmpc"
	"protemp/internal/floorplan"
	"protemp/internal/metrics"
	"protemp/internal/obs"
	"protemp/internal/power"
	"protemp/internal/sim"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// Version identifies this build of the library in protemp_build_info
// and CLI -version output.
const Version = "0.8.0"

// Engine is the concurrency-safe entry point of the Pro-Temp
// reproduction: one modeled chip (floorplan, power law, RC thermal
// model, precomputed window response) serving any number of concurrent
// optimizations, Phase-1 table generations, closed-loop simulations
// and control sessions. Long-running methods take a context.Context
// and honor cancellation down to the interior-point solver's Newton
// iterations. Generated tables are cached in an engine-level LRU keyed
// by (chip, grid, variant), so concurrent callers on one configuration
// share a single Phase-1 sweep.
//
// An Engine is immutable after New and safe for use from multiple
// goroutines.
type Engine struct {
	cfg    engineConfig
	chip   *power.Chip
	model  *thermal.RCModel
	disc   *thermal.Discrete
	window *thermal.WindowResponse
	cache  *tableCache
	reg    *metrics.Registry
	flight *obs.FlightRecorder // nil unless WithFlightRecorder
	start  time.Time
}

// New builds an Engine; options override the paper's defaults.
func New(opts ...Option) (*Engine, error) {
	cfg := defaultEngineConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	chip, err := power.NewChip(cfg.fp, cfg.coreModel, cfg.uncoreShare)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewRC(cfg.fp, cfg.thermalParams)
	if err != nil {
		return nil, err
	}
	disc, err := model.Discretize(cfg.dt)
	if err != nil {
		return nil, err
	}
	window, err := disc.Window(cfg.windowSteps)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	e := &Engine{
		cfg:    cfg,
		chip:   chip,
		model:  model,
		disc:   disc,
		window: window,
		cache:  newTableCache(cfg.cacheSize, cfg.store, cfg.fetcher, reg),
		reg:    reg,
		start:  time.Now(),
	}
	if cfg.flightLastN != 0 {
		e.flight = obs.NewFlightRecorder(cfg.flightLastN, cfg.flightSlowN)
	}
	// Identity instruments: the build-info constant-1 gauge (labeled
	// with version/goversion in the Prometheus exposition) and the
	// uptime gauge MetricsSnapshot refreshes on every scrape.
	e.reg.Gauge("protemp_build_info").Set(1)
	e.reg.Gauge("uptime_seconds")
	// Pre-register the sweep counters by folding in an empty ledger, so
	// a scrape of a fresh engine sees the full key set at zero and the
	// name list cannot drift from what generations record.
	e.recordSweep(core.TableStats{})
	// Likewise the online-step instruments, registered (not observed) so
	// /metrics exposes the step_* schema at zero before the first Step.
	e.reg.Histogram("step_solve_nanos")
	e.reg.Histogram("solve_assemble_nanos")
	e.reg.Histogram("solve_factor_nanos")
	for _, name := range []string{"step_solves", "step_warm_hits", "step_warm_rejects", "step_solve_errors"} {
		e.reg.Counter(name)
	}
	// And the distributed-MPC instruments, so a scrape sees the dmpc_*
	// schema at zero before the first distributed window.
	e.reg.Histogram("dmpc_step_solve_nanos")
	e.reg.Histogram("dmpc_cluster_solve_nanos")
	e.reg.Histogram("dmpc_outer_iters")
	e.reg.Histogram("dmpc_primal_residual_milli_c")
	for _, name := range []string{"dmpc_steps", "dmpc_cluster_solves", "dmpc_converged",
		"dmpc_fallbacks", "dmpc_downgrades", "dmpc_idles",
		"dmpc_warm_hits", "dmpc_warm_rejects", "dmpc_solve_errors"} {
		e.reg.Counter(name)
	}
	return e, nil
}

// Chip returns the modeled chip (floorplan plus power models).
func (e *Engine) Chip() *power.Chip { return e.chip }

// Floorplan returns the chip floorplan.
func (e *Engine) Floorplan() *floorplan.Floorplan { return e.cfg.fp }

// Model returns the continuous RC thermal model.
func (e *Engine) Model() *thermal.RCModel { return e.model }

// Disc returns the discretized thermal stepper at the engine's dt.
func (e *Engine) Disc() *thermal.Discrete { return e.disc }

// Window returns the precomputed thermal window response the optimizer
// consumes.
func (e *Engine) Window() *thermal.WindowResponse { return e.window }

// TMax returns the temperature limit in °C.
func (e *Engine) TMax() float64 { return e.cfg.tmax }

// Dt returns the thermal co-simulation step in seconds.
func (e *Engine) Dt() float64 { return e.cfg.dt }

// WindowSteps returns the DFS horizon in thermal steps.
func (e *Engine) WindowSteps() int { return e.cfg.windowSteps }

// WindowSeconds returns the DFS control period dt·steps.
func (e *Engine) WindowSeconds() float64 { return e.cfg.dt * float64(e.cfg.windowSteps) }

// Variant returns the engine's default optimization model variant.
func (e *Engine) Variant() core.Variant { return e.cfg.variant }

// TableGrid returns copies of the engine's default Phase-1 grids: the
// starting temperatures (°C) and target frequencies (Hz) GenerateTable
// sweeps.
func (e *Engine) TableGrid() (tstarts, ftargets []float64) {
	return append([]float64(nil), e.cfg.tstarts...),
		append([]float64(nil), e.ftargets()...)
}

// CacheStats returns a snapshot of the table-cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// MetricsSnapshot returns the current value of every engine-level
// instrument — table cache and store counters, Phase-1 sweep cost, and
// the online-step latency histogram (step_solve_nanos_p50/p95/p99 with
// step_warm_hits/step_warm_rejects) — keyed by instrument name: the
// payload a serving layer merges into its metrics endpoint.
func (e *Engine) MetricsSnapshot() map[string]uint64 {
	e.reg.Gauge("uptime_seconds").Set(int64(time.Since(e.start).Seconds()))
	return e.reg.Snapshot()
}

// MetricsKinds returns the Prometheus metric kind ("counter" or
// "gauge") of every key MetricsSnapshot emits — the typing half of a
// text-exposition scrape (see metrics.WritePrometheus).
func (e *Engine) MetricsKinds() map[string]string { return e.reg.Kinds() }

// FlightRecorder returns the engine's solve-trace flight recorder, or
// nil when the engine was built without WithFlightRecorder. The
// recorder is safe for concurrent use; traces it returns are finished
// and immutable.
func (e *Engine) FlightRecorder() *obs.FlightRecorder { return e.flight }

// TableKey returns the cache/store key for the table the given grids
// and variant would generate on this engine — the filename (plus
// ".ptbl") a pre-generated table must carry to be picked up from a
// server's store directory. Nil grids select the engine defaults.
func (e *Engine) TableKey(tstarts, ftargets []float64, v core.Variant) string {
	return e.TableKeyOverride(tstarts, ftargets, v, 0)
}

// TableKeyOverride is TableKey with an additional temperature-limit
// override; tmax <= 0 selects the engine default.
func (e *Engine) TableKeyOverride(tstarts, ftargets []float64, v core.Variant, tmax float64) string {
	spec := e.tableSpec(tstarts, ftargets, v, tmax)
	return spec.CacheKey()
}

// LookupTable returns the table stored under a cache key only if it is
// already materialized on this node — in the in-memory LRU or the
// persistent store. It never generates, never consults the network
// tier, and never joins an in-flight generation: this is the read side
// a cluster node serves to its peers, and answering only from local
// tiers keeps peer fetches from cascading around the ring.
func (e *Engine) LookupTable(key string) (*core.Table, bool) {
	return e.cache.lookup(key)
}

// StepLatencyQuantile returns the given quantile of the live
// step_solve_nanos histogram (in nanoseconds) together with its
// observation count — the signal admission control keys off. With no
// observations both return zero.
func (e *Engine) StepLatencyQuantile(p float64) (nanos, count uint64) {
	h := e.reg.Histogram("step_solve_nanos")
	return h.Quantile(p), h.Count()
}

// tableSpec assembles a Phase-1 table spec against this engine,
// defaulting nil grids and non-positive tmax to the engine
// configuration.
func (e *Engine) tableSpec(tstarts, ftargets []float64, v core.Variant, tmax float64) core.TableSpec {
	if tstarts == nil {
		tstarts = e.cfg.tstarts
	}
	if ftargets == nil {
		ftargets = e.ftargets()
	}
	if tmax <= 0 {
		tmax = e.cfg.tmax
	}
	return core.TableSpec{
		Chip:     e.chip,
		Window:   e.window,
		TMax:     tmax,
		TStarts:  tstarts,
		FTargets: ftargets,
		Variant:  v,
		Workers:  e.cfg.workers,
		Observer: e.cfg.observer,
	}
}

// ftargets returns the configured frequency grid, defaulting to the 5%
// grid of the chip's fmax.
func (e *Engine) ftargets() []float64 {
	if e.cfg.ftargets != nil {
		return e.cfg.ftargets
	}
	return core.DefaultFTargets(e.chip.FMax())
}

// spec assembles a single-point solve spec against this engine.
func (e *Engine) spec(tstart, ftarget float64, v core.Variant) *core.Spec {
	return &core.Spec{
		Chip:    e.chip,
		Window:  e.window,
		TStart:  tstart,
		TMax:    e.cfg.tmax,
		FTarget: ftarget,
		Variant: v,
	}
}

// Optimize solves one design point with the engine's default variant:
// the optimal per-core frequency assignment for cores starting at
// tstart °C under a required average frequency of ftarget Hz.
// Cancelling ctx aborts the solve at its next Newton iteration.
func (e *Engine) Optimize(ctx context.Context, tstart, ftarget float64) (*core.Assignment, error) {
	return e.OptimizeVariant(ctx, tstart, ftarget, e.cfg.variant)
}

// OptimizeVariant is Optimize with an explicit model variant.
func (e *Engine) OptimizeVariant(ctx context.Context, tstart, ftarget float64, v core.Variant) (*core.Assignment, error) {
	return core.SolveContext(ctx, e.spec(tstart, ftarget, v))
}

// GenerateTable runs (or retrieves from cache) the Phase-1 sweep over
// the engine's configured grids and default variant. Concurrent
// callers with an equal configuration share one generation; a
// cancelled ctx returns ctx.Err() without completing the sweep.
func (e *Engine) GenerateTable(ctx context.Context) (*core.Table, error) {
	return e.GenerateTableGrid(ctx, e.cfg.tstarts, e.ftargets(), e.cfg.variant)
}

// GenerateTableGrid is GenerateTable with explicit grids and variant,
// for callers that need several tables from one engine (many policies
// on one chip). Results are cached under the same LRU.
func (e *Engine) GenerateTableGrid(ctx context.Context, tstarts, ftargets []float64, v core.Variant) (*core.Table, error) {
	return e.GenerateTableOverride(ctx, tstarts, ftargets, v, 0)
}

// GenerateTableOverride is GenerateTableGrid with an additional
// temperature-limit override, for callers evaluating several thermal
// limits on one chip (the fleet runner sweeping per-scenario TMax).
// Nil grids select the engine defaults; tmax <= 0 selects the engine
// default limit. Results share the same LRU/singleflight/store tiers,
// keyed by the full TableSpec, so distinct limits coexist without
// re-sweeping each other out.
func (e *Engine) GenerateTableOverride(ctx context.Context, tstarts, ftargets []float64, v core.Variant, tmax float64) (*core.Table, error) {
	spec := e.tableSpec(tstarts, ftargets, v, tmax)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return e.cache.get(ctx, spec.CacheKey(), func() (*core.Table, error) {
		t, err := core.GenerateTable(ctx, spec)
		if err == nil {
			e.recordSweep(t.Stats)
		}
		return t, err
	})
}

// recordSweep folds one completed Phase-1 generation's cost accounting
// (the paper's §5.1 numbers plus the warm-start counters) into the
// engine registry, so MetricsSnapshot — and through it a server's
// /metrics endpoint — exposes the aggregate sweep cost of the process.
func (e *Engine) recordSweep(s core.TableStats) {
	e.reg.Counter("sweep_points_solved").Add(uint64(s.Solves))
	e.reg.Counter("sweep_points_feasible").Add(uint64(s.Feasible))
	e.reg.Counter("sweep_newton_iters").Add(uint64(s.NewtonIters))
	e.reg.Counter("sweep_warm_hits").Add(uint64(s.WarmHits))
	e.reg.Counter("sweep_newton_iters_saved").Add(uint64(s.IterationsSaved()))
	e.reg.Counter("sweep_solve_nanos").Add(uint64(s.WallNanos))
}

// observeStepSolve folds one online Step solve into the engine
// registry: its wall time into the step_solve_nanos histogram (whose
// p50/p95/p99 are the serving-latency SLO signals) and its warm-start
// outcome into the step_* counters. Sessions call it once per solve.
func (e *Engine) observeStepSolve(d time.Duration, st core.OnlineStepStats, err error) {
	e.reg.Histogram("step_solve_nanos").ObserveDuration(d.Nanoseconds())
	// Assembly/factorization split (only for solves that actually entered
	// the barrier — degenerate full-speed steps report zeros and would
	// skew the distributions toward 0).
	if st.NewtonIters > 0 {
		e.reg.Histogram("solve_assemble_nanos").ObserveDuration(st.AssembleNanos)
		e.reg.Histogram("solve_factor_nanos").ObserveDuration(st.FactorNanos)
	}
	e.reg.Counter("step_solves").Inc()
	if st.Warm {
		e.reg.Counter("step_warm_hits").Inc()
	}
	if st.WarmRejected {
		e.reg.Counter("step_warm_rejects").Inc()
	}
	if err != nil {
		e.reg.Counter("step_solve_errors").Inc()
	}
}

// newDMPCSolver assembles a distributed solver against this engine's
// chip and thermal configuration. clusters <= 0 selects the engine's
// configured (or default) cluster count; tmax <= 0 the engine limit.
// The solver's per-cluster latency histogram is wired into the engine
// registry (dmpc_cluster_solve_nanos).
func (e *Engine) newDMPCSolver(clusters int, v core.Variant, tmax float64) (*dmpc.Solver, error) {
	if clusters <= 0 {
		clusters = e.cfg.clusters
	}
	if tmax <= 0 {
		tmax = e.cfg.tmax
	}
	workers := e.cfg.admmWorkers
	if workers == 0 {
		workers = e.cfg.workers
	}
	sol, err := dmpc.New(dmpc.Config{
		Chip:    e.chip,
		Params:  e.cfg.thermalParams,
		Dt:      e.cfg.dt,
		Steps:   e.cfg.windowSteps,
		TMax:    tmax,
		Variant: v,
		Opts: dmpc.Options{
			Clusters:   clusters,
			MaxOuter:   e.cfg.admmMaxOuter,
			PrimalTolC: e.cfg.admmTolC,
			AcceptTolC: e.cfg.admmAcceptTolC,
			Workers:    workers,
		},
	})
	if err != nil {
		return nil, err
	}
	sol.ClusterNanos = e.reg.Histogram("dmpc_cluster_solve_nanos")
	return sol, nil
}

// DMPCPolicy builds the distributed-MPC simulation policy: the chip
// partitioned into the given cluster count (<= 0 selects the engine's
// configured or default count), each cluster's subproblem solved in
// parallel per window under ADMM-style boundary consensus. tmax <= 0
// selects the engine limit. The policy's per-window latency histogram
// feeds the engine's dmpc_step_solve_nanos instrument.
func (e *Engine) DMPCPolicy(clusters int, v core.Variant, tmax float64) (*sim.ProTempDMPC, error) {
	sol, err := e.newDMPCSolver(clusters, v, tmax)
	if err != nil {
		return nil, err
	}
	return &sim.ProTempDMPC{Solver: sol, SolveNanos: e.reg.Histogram("dmpc_step_solve_nanos")}, nil
}

// observeDMPCStep folds one distributed window solve into the engine
// registry: wall time into dmpc_step_solve_nanos, consensus progress
// into dmpc_outer_iters and dmpc_primal_residual_milli_c, and the
// cluster/warm/fallback outcomes into the dmpc_* counters. Sessions
// call it once per Step.
func (e *Engine) observeDMPCStep(d time.Duration, stats dmpc.StepStats, err error) {
	e.reg.Histogram("dmpc_step_solve_nanos").ObserveDuration(d.Nanoseconds())
	e.reg.Histogram("dmpc_outer_iters").Observe(uint64(stats.OuterIters))
	e.reg.Histogram("dmpc_primal_residual_milli_c").Observe(uint64(stats.PrimalResidC * 1000))
	e.reg.Counter("dmpc_steps").Inc()
	e.reg.Counter("dmpc_cluster_solves").Add(uint64(stats.ClusterSolves))
	e.reg.Counter("dmpc_warm_hits").Add(uint64(stats.WarmHits))
	e.reg.Counter("dmpc_warm_rejects").Add(uint64(stats.WarmRejects))
	e.reg.Counter("dmpc_downgrades").Add(uint64(stats.Downgrades))
	e.reg.Counter("dmpc_idles").Add(uint64(stats.Idles))
	if stats.Converged {
		e.reg.Counter("dmpc_converged").Inc()
	}
	if stats.Fallback {
		e.reg.Counter("dmpc_fallbacks").Inc()
	}
	if err != nil {
		e.reg.Counter("dmpc_solve_errors").Inc()
	}
}

// Controller wraps a Phase-1 table into the run-time controller.
func (e *Engine) Controller(table *core.Table) (*core.Controller, error) {
	return core.NewController(table)
}

// SimOption adjusts one Simulate call.
type SimOption func(*sim.Config)

// RecordBlocks samples the named floorplan blocks' temperatures once
// per window (for trace figures).
func RecordBlocks(names ...string) SimOption {
	return func(c *sim.Config) { c.RecordBlocks = append(c.RecordBlocks, names...) }
}

// WithAssigner selects the task-to-core assignment policy (default
// first-idle; see sim.NewCoolestFirst for the §5.4 alternative).
func WithAssigner(a sim.Assigner) SimOption {
	return func(c *sim.Config) { c.Assigner = a }
}

// WithInitialTemp sets the uniform initial temperature in °C (default
// the thermal model's ambient).
func WithInitialTemp(t0 float64) SimOption {
	return func(c *sim.Config) { c.T0 = t0 }
}

// WithMaxTime caps the simulated time in seconds.
func WithMaxTime(seconds float64) SimOption {
	return func(c *sim.Config) { c.MaxTime = seconds }
}

// WithSimTMax overrides the temperature limit used for violation
// accounting in one Simulate call (default the engine's TMax) — for
// evaluating a policy against a limit other than the one it was
// configured for, as the fleet scenarios do.
func WithSimTMax(tmax float64) SimOption {
	return func(c *sim.Config) { c.TMax = tmax }
}

// Simulate runs a closed-loop simulation of the policy over the trace
// on this engine's chip and thermal model. The context is checked at
// every DFS window boundary.
func (e *Engine) Simulate(ctx context.Context, policy sim.Policy, trace *workload.Trace, opts ...SimOption) (*sim.Result, error) {
	cfg := sim.Config{
		Chip:   e.chip,
		Disc:   e.disc,
		Policy: policy,
		Trace:  trace,
		Window: e.WindowSeconds(),
		TMax:   e.cfg.tmax,
	}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return sim.Run(ctx, cfg)
}

// ProTempPolicy builds the table-driven Pro-Temp policy from a table.
func (e *Engine) ProTempPolicy(table *core.Table) (sim.Policy, error) {
	ctrl, err := core.NewController(table)
	if err != nil {
		return nil, err
	}
	return &sim.ProTemp{Controller: ctrl}, nil
}

// BasicDFSPolicy builds the reactive baseline at the given threshold.
func (e *Engine) BasicDFSPolicy(threshold float64) (sim.Policy, error) {
	if threshold <= 0 || threshold > e.cfg.tmax {
		return nil, fmt.Errorf("protemp: threshold %g outside (0, %g]", threshold, e.cfg.tmax)
	}
	return &sim.BasicDFS{NumCores: e.chip.NumCores(), FMax: e.chip.FMax(), Threshold: threshold}, nil
}

// NoTCPolicy builds the no-temperature-control reference.
func (e *Engine) NoTCPolicy() sim.Policy {
	return &sim.NoTC{NumCores: e.chip.NumCores(), FMax: e.chip.FMax()}
}
