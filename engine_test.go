package protemp

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"protemp/internal/core"
	"protemp/internal/workload"
)

// mustTrace generates a short mixed trace sized for the engine's chip.
func mustTrace(t *testing.T, e *Engine) *workload.Trace {
	t.Helper()
	tr, err := workload.Mixed(5, e.Chip().NumCores(), 2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// fastOpts keeps engine tests quick: 1 ms steps, 100 ms windows.
func fastOpts(extra ...Option) []Option {
	return append([]Option{WithWindow(1e-3, 100)}, extra...)
}

// smallGrid is a cheap 2x3 Phase-1 grid for cache and session tests.
func smallGrid() Option {
	return WithTableGrid([]float64{47, 100}, []float64{250e6, 500e6, 750e6})
}

func TestEngineDefaults(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if e.Chip().NumCores() != 8 {
		t.Fatalf("cores = %d", e.Chip().NumCores())
	}
	if e.TMax() != 100 || e.Dt() != 0.4e-3 || e.WindowSteps() != 250 {
		t.Fatalf("defaults wrong: tmax=%g dt=%g steps=%d", e.TMax(), e.Dt(), e.WindowSteps())
	}
	if e.Window().Steps() != 250 {
		t.Fatalf("window steps = %d", e.Window().Steps())
	}
	if e.Variant() != core.VariantVariable {
		t.Fatalf("default variant = %v", e.Variant())
	}
	if math.Abs(e.WindowSeconds()-0.1) > 1e-12 {
		t.Fatalf("window seconds = %v", e.WindowSeconds())
	}
}

// The redesign's reason-to-exist: explicit zero values that the legacy
// SystemConfig silently replaced with defaults are now representable.
func TestExplicitZeroUncoreShare(t *testing.T) {
	e, err := New(fastOpts(WithUncoreShare(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Chip().TotalUncorePower(); got != 0 {
		t.Fatalf("WithUncoreShare(0) gave %g W uncore", got)
	}
	// The legacy shim keeps the old zero-means-default contract.
	s, err := NewSystem(SystemConfig{UncoreShare: 0, Dt: 1e-3, WindowSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Chip.TotalUncorePower(); got == 0 {
		t.Fatal("legacy SystemConfig{UncoreShare: 0} should default to 30%, got 0")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithFloorplan(nil)},
		{WithTMax(0)},
		{WithTMax(-10)},
		{WithWindow(0, 100)},
		{WithWindow(1e-3, 0)},
		{WithUncoreShare(-0.1)},
		{WithTableGrid(nil, []float64{1e8})},
		{WithVariant(core.Variant(99))},
		{WithWorkers(-1)},
		{WithTableCacheSize(-1)},
	}
	for i, opts := range bad {
		if _, err := New(opts...); err == nil {
			t.Errorf("case %d: invalid option accepted", i)
		}
	}
}

func TestGenerateTableCancelledBeforeStart(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.GenerateTable(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.CacheStats(); st.Generations != 1 || st.Size != 0 {
		// The generation slot was claimed but must not be cached.
		t.Fatalf("failed generation left cache state %+v", st)
	}
}

func TestGenerateTableCancelledMidSweep(t *testing.T) {
	// A deliberately large grid so cancellation lands mid-sweep.
	e, err := New(fastOpts(WithTableGrid(
		core.DefaultTStarts(),
		core.DefaultFTargets(1e9),
	))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.GenerateTable(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full 9x20 sweep takes many seconds; a prompt abort does not.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — sweep was not interrupted", elapsed)
	}
	// A later call with a live context must regenerate, not see a
	// poisoned cache entry.
	e2, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.GenerateTable(context.Background()); err != nil {
		t.Fatalf("fresh generation after cancellation: %v", err)
	}
}

// Acceptance: two concurrent sessions on the same configuration
// trigger exactly one Phase-1 generation, observable via CacheStats.
func TestConcurrentSessionsShareOneGeneration(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const callers = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		sessions []*Session
		failures []error
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := e.NewSession(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures = append(failures, err)
				return
			}
			sessions = append(sessions, s)
		}()
	}
	wg.Wait()
	for _, err := range failures {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Generations != 1 {
		t.Fatalf("%d concurrent sessions ran %d generations, want 1 (stats %+v)", callers, st.Generations, st)
	}
	if st.Hits+st.Shared != callers-1 {
		t.Fatalf("expected %d shared/cached lookups, got stats %+v", callers-1, st)
	}

	// All sessions answer identically, concurrently.
	state := State{MaxCoreTemp: 60, RequiredFreq: 400e6}
	results := make([][]float64, len(sessions))
	wg = sync.WaitGroup{}
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			freqs, err := s.Step(ctx, state)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = freqs
		}(i, s)
	}
	wg.Wait()
	for i, freqs := range results {
		if len(freqs) != e.Chip().NumCores() {
			t.Fatalf("session %d returned %d freqs", i, len(freqs))
		}
		for j, f := range freqs {
			if f != results[0][j] { // same table, same state => same command
				t.Fatalf("session %d diverged at core %d: %g vs %g", i, j, f, results[0][j])
			}
		}
	}
	steps, _, idles, _ := sessions[0].Stats()
	if steps != 1 || idles != 0 {
		t.Fatalf("session stats: steps=%d idles=%d", steps, idles)
	}
}

func TestSessionStepHonorsCancelledContext(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Step(ctx, State{MaxCoreTemp: 60, RequiredFreq: 400e6}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	e, err := New(fastOpts(smallGrid(), WithTableCacheSize(1))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tiny := func(tstart float64) ([]float64, []float64) {
		return []float64{tstart}, []float64{250e6}
	}
	ta, fa := tiny(47)
	tb, fb := tiny(67)
	if _, err := e.GenerateTableGrid(ctx, ta, fa, core.VariantVariable); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GenerateTableGrid(ctx, tb, fb, core.VariantVariable); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GenerateTableGrid(ctx, ta, fa, core.VariantVariable); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Generations != 3 || st.Evictions < 2 || st.Size != 1 {
		t.Fatalf("cache size 1 should evict and regenerate: %+v", st)
	}
	// And a repeat of the resident key is a pure hit.
	if _, err := e.GenerateTableGrid(ctx, ta, fa, core.VariantVariable); err != nil {
		t.Fatal(err)
	}
	if st2 := e.CacheStats(); st2.Generations != 3 || st2.Hits != st.Hits+1 {
		t.Fatalf("resident key regenerated: %+v", st2)
	}
}

func TestOnlineSessionStep(t *testing.T) {
	e, err := New(fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewOnlineSession()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Online() || s.Table() != nil {
		t.Fatal("online session misreports itself")
	}
	freqs, err := s.Step(context.Background(), State{MaxCoreTemp: 60, RequiredFreq: 400e6})
	if err != nil {
		t.Fatal(err)
	}
	avg := 0.0
	for _, f := range freqs {
		avg += f / float64(len(freqs))
	}
	if avg < 400e6-20e6 {
		t.Fatalf("online step average %.0f MHz below requirement", avg/1e6)
	}
	_, _, _, solves := s.Stats()
	if solves == 0 {
		t.Fatal("online session recorded no solves")
	}
}

func TestEngineSimulateWithSessionPolicy(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := e.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	trace := mustTrace(t, e)
	res, err := e.Simulate(ctx, s.Policy(ctx), trace, RecordBlocks("P1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoreTemp > e.TMax()+0.01 {
		t.Fatalf("session-driven simulation broke the guarantee: %.2f", res.MaxCoreTemp)
	}
	if res.Series["P1"].Len() == 0 {
		t.Fatal("series not recorded")
	}
	if steps, _, _, _ := s.Stats(); steps == 0 {
		t.Fatal("session saw no windows")
	}
}

func TestEngineSimulateCancelled(t *testing.T) {
	e, err := New(fastOpts(smallGrid())...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Simulate(ctx, s.Policy(ctx), mustTrace(t, e)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepMetricsAndObserver checks the facade observability of the
// sweep pipeline: the sweep counters pre-register at zero, fold in one
// generation's §5.1 accounting after GenerateTable, and do not move on
// a cache hit; the engine-level observer sees every grid point of an
// actual generation and nothing on a hit.
func TestSweepMetricsAndObserver(t *testing.T) {
	var calls int
	var mu sync.Mutex
	e, err := New(fastOpts(smallGrid(), WithSweepObserver(func(p core.SweepProgress) {
		mu.Lock()
		calls++
		mu.Unlock()
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	snap := e.MetricsSnapshot()
	for _, name := range []string{
		"sweep_points_solved", "sweep_points_feasible", "sweep_newton_iters",
		"sweep_warm_hits", "sweep_newton_iters_saved", "sweep_solve_nanos",
	} {
		if v, ok := snap[name]; !ok || v != 0 {
			t.Errorf("fresh engine: %s = %d, %v; want present at 0", name, v, ok)
		}
	}

	tbl, err := e.GenerateTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("observer saw %d points, want 6", calls)
	}
	snap = e.MetricsSnapshot()
	if got := snap["sweep_points_solved"]; got != uint64(tbl.Stats.Solves) {
		t.Errorf("sweep_points_solved = %d, want %d", got, tbl.Stats.Solves)
	}
	if got := snap["sweep_newton_iters"]; got != uint64(tbl.Stats.NewtonIters) {
		t.Errorf("sweep_newton_iters = %d, want %d", got, tbl.Stats.NewtonIters)
	}
	if snap["sweep_solve_nanos"] == 0 {
		t.Error("sweep_solve_nanos did not accumulate")
	}

	// A cache hit reruns nothing: counters and observer stay put.
	if _, err := e.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("observer fired on a cache hit (%d calls)", calls)
	}
	after := e.MetricsSnapshot()
	if after["sweep_points_solved"] != snap["sweep_points_solved"] {
		t.Error("sweep counters moved on a cache hit")
	}
}
