// Command protemp-trace generates and inspects benchmark task traces.
//
// Usage:
//
//	protemp-trace gen  [-workload mixed|compute|assign|paper] [-seconds 60]
//	                   [-seed 1] [-cores 8] [-o trace.csv]
//	protemp-trace info [-cores 8] trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"protemp/internal/cli"
	"protemp/internal/workload"
)

func main() {
	cli.Init("protemp-trace")
	if len(os.Args) < 2 {
		log.Fatal("usage: protemp-trace gen|info [flags]")
	}
	switch os.Args[1] {
	case "gen":
		generate(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want gen or info)", os.Args[1])
	}
}

func generate(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		kind    = fs.String("workload", "mixed", "mixed, compute, assign or paper")
		seconds = fs.Float64("seconds", 60, "arrival horizon in seconds (ignored for paper)")
		seed    = fs.Int64("seed", 1, "generator seed")
		cores   = fs.Int("cores", 8, "core count the load is sized for")
		out     = fs.String("o", "-", "output CSV path ('-' for stdout)")
	)
	fs.Parse(args)

	var gen *workload.Generator
	switch *kind {
	case "mixed":
		gen = workload.Mixed(*seed, *cores, *seconds)
	case "compute":
		gen = workload.ComputeIntensive(*seed, *cores, *seconds)
	case "assign":
		gen = workload.AssignStudy(*seed, *cores, *seconds)
	case "paper":
		gen = workload.PaperScale(*seed, *cores)
	default:
		log.Fatalf("unknown workload %q", *kind)
	}
	tr, err := gen.Generate()
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteCSV(w, tr); err != nil {
		log.Fatal(err)
	}
	printStats(tr, *cores)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	cores := fs.Int("cores", 8, "core count for the offered-load figure")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: protemp-trace info [-cores N] trace.csv")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.ReadCSV(f)
	if err != nil {
		log.Fatal(err)
	}
	printStats(tr, *cores)
}

func printStats(tr *workload.Trace, cores int) {
	st := workload.Summarize(tr, cores)
	fmt.Fprintf(os.Stderr, "tasks        %d\n", st.Tasks)
	fmt.Fprintf(os.Stderr, "duration     %.2f s\n", st.Duration)
	fmt.Fprintf(os.Stderr, "total work   %.2f core-s\n", st.TotalWork)
	fmt.Fprintf(os.Stderr, "task length  %.2f-%.2f ms (mean %.2f)\n",
		st.MinWork*1e3, st.MaxWork*1e3, st.MeanWork*1e3)
	fmt.Fprintf(os.Stderr, "offered load %.3f of %d cores\n", st.OfferedLoad, cores)
	fmt.Fprintf(os.Stderr, "burstiness   %.2f (index of dispersion, 1 = Poisson)\n", st.Burstiness)
}
