// Command protemp-table runs Phase 1 of the Pro-Temp method: it sweeps
// starting temperatures and target frequencies, solves the convex
// program at every grid point, and writes the resulting frequency table
// for the run-time controller. Ctrl-C cancels the sweep.
//
// Output formats: legacy JSON (-format json, the default for .json
// paths) or the versioned table-store envelope (-format store, the
// default for .ptbl paths) that protemp-serve and every reader of
// protemp.ReadTable accept. With -store DIR the table is additionally
// written into a store directory under its cache key, so a running
// server picks it up without re-sweeping.
//
// Usage:
//
//	protemp-table [-o table.json] [-format auto|json|store] [-store DIR]
//	              [-tmax 100] [-dt 0.0004] [-steps 250]
//	              [-tstarts 27,37,...] [-ftargets-mhz 50,100,...]
//	              [-variant variable|uniform|gradient] [-floorplan file]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"protemp"
	"protemp/internal/cli"
	"protemp/internal/core"
	"protemp/internal/floorplan"
)

func main() {
	cli.Init("protemp-table")

	var (
		out      = flag.String("o", "table.json", "output path ('-' for stdout)")
		format   = flag.String("format", "auto", "output format: auto (by extension), json (legacy) or store (versioned)")
		storeDir = flag.String("store", "", "also save into this table-store directory under the table's cache key")
		tmax     = flag.Float64("tmax", 100, "maximum temperature in °C")
		dt       = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		steps    = flag.Int("steps", 250, "DFS window horizon in steps")
		tstarts  = flag.String("tstarts", "", "comma-separated starting temperatures in °C (default paper grid)")
		ftargets = flag.String("ftargets-mhz", "", "comma-separated target frequencies in MHz (default 5% grid)")
		variant  = flag.String("variant", "variable", "model variant: variable, uniform or gradient")
		fpPath   = flag.String("floorplan", "", "floorplan file (default built-in Niagara-8)")
		workers  = flag.Int("workers", 0, "parallel solves (default GOMAXPROCS)")
		progress = flag.Bool("progress", false, "log per-point sweep progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []protemp.Option{
		protemp.WithTMax(*tmax),
		protemp.WithWindow(*dt, *steps),
		protemp.WithWorkers(*workers),
	}
	if *storeDir != "" {
		// The engine's write-through tier persists the generated table
		// under its cache key — the layout protemp-serve loads from.
		opts = append(opts, protemp.WithTableStoreDir(*storeDir))
	}
	if *progress {
		sweepStart := time.Now()
		opts = append(opts, protemp.WithSweepObserver(func(p core.SweepProgress) {
			state := "cold"
			if p.Warm {
				state = "warm"
			}
			feas := "feasible"
			if !p.Feasible {
				feas = "infeasible"
			}
			log.Printf("progress %d/%d: (%.0f°C, %.0f MHz) %s %s, %d Newton iters, %v (total %v)",
				p.Done, p.Total, p.TStart, p.FTarget/1e6, state, feas,
				p.NewtonIters, p.Elapsed.Round(time.Millisecond),
				time.Since(sweepStart).Round(time.Millisecond))
		}))
	}
	if *fpPath != "" {
		f, err := os.Open(*fpPath)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := floorplan.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, protemp.WithFloorplan(fp))
	}
	switch *variant {
	case "variable":
		opts = append(opts, protemp.WithVariant(core.VariantVariable))
	case "uniform":
		opts = append(opts, protemp.WithVariant(core.VariantUniform))
	case "gradient":
		opts = append(opts, protemp.WithVariant(core.VariantGradient))
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	engine, err := protemp.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	ts := core.DefaultTStarts()
	if *tstarts != "" {
		if ts, err = parseFloats(*tstarts, 1); err != nil {
			log.Fatalf("-tstarts: %v", err)
		}
	}
	fs := core.DefaultFTargets(engine.Chip().FMax())
	if *ftargets != "" {
		if fs, err = parseFloats(*ftargets, 1e6); err != nil {
			log.Fatalf("-ftargets-mhz: %v", err)
		}
	}

	// Validate the output format before paying for the sweep.
	versioned := false
	switch *format {
	case "auto":
		versioned = strings.HasSuffix(*out, ".ptbl") || strings.HasSuffix(*out, ".bin")
	case "json":
	case "store":
		versioned = true
	default:
		log.Fatalf("unknown format %q (want auto, json or store)", *format)
	}

	start := time.Now()
	table, err := engine.GenerateTableGrid(ctx, ts, fs, engine.Variant())
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted before the sweep completed")
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if versioned {
		err = protemp.WriteTable(w, table)
	} else {
		err = table.WriteJSON(w)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%d points (%d feasible) in %v -> %s",
		table.Stats.Solves, table.Stats.Feasible, elapsed.Round(time.Millisecond), *out)
	// The paper's §5.1 cost accounting: aggregate solve wall time plus
	// the sweep pipeline's warm-start ledger.
	log.Printf("cost: %v solve wall, %d Newton iters, %d warm starts (~%d iters saved)",
		time.Duration(table.Stats.WallNanos).Round(time.Millisecond),
		table.Stats.NewtonIters, table.Stats.WarmHits, table.Stats.IterationsSaved())
	if *storeDir != "" {
		log.Printf("stored under key %s in %s", engine.TableKey(ts, fs, engine.Variant()), *storeDir)
	}
}

func parseFloats(s string, scale float64) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		out = append(out, v*scale)
	}
	return out, nil
}
