// Command protemp-serve runs the thermal control plane as an HTTP
// daemon: Phase-1 tables are generated (or loaded from a persistent
// store directory) on demand, and any number of remote control loops
// drive Phase-2 decisions through sessions.
//
// Endpoints:
//
//	POST   /v1/optimize              single-shot convex solve
//	POST   /v1/tables                generate-or-fetch a Phase-1 table
//	POST   /v1/sessions              open a control session
//	GET    /v1/sessions/{id}         session stats
//	POST   /v1/sessions/{id}/step    one DFS-window decision
//	POST   /v1/sessions/{id}/stream  NDJSON co-simulated control loop
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/fleet                 submit an async batch evaluation job
//	GET    /v1/fleet                 list fleet jobs
//	GET    /v1/fleet/scenarios       list registered workload scenarios
//	GET    /v1/fleet/{id}            job status and progress
//	GET    /v1/fleet/{id}/results    ranked results once finished
//	DELETE /v1/fleet/{id}            cancel (partial results kept) or delete
//	GET    /metrics                  counters + gauges (JSON, or Prometheus text via Accept)
//	GET    /healthz                  liveness
//	GET    /debug/traces             flight-recorder solve traces (list)
//	GET    /debug/traces/{id}        one solve trace, full span tree
//
// Usage:
//
//	protemp-serve [-addr :8080] [-store DIR] [-session-ttl 15m]
//	              [-shards 16] [-tmax 100] [-dt 0.0004] [-steps 250]
//	              [-variant variable|uniform|gradient] [-floorplan file]
//	              [-cache 8] [-workers N] [-flight 32] [-log text]
//	              [-ops-addr :6060] [-mutex-profile-fraction N] [-block-profile-rate N]
//	              [-self URL -peers URL,URL,...]
//	              [-step-p95-budget 0] [-max-steps 0] [-step-queue 0]
//	              [-breaker-trip 3] [-breaker-cooldown 5s]
//
// With -self and -peers the daemon joins a static-membership cluster:
// sessions are consistent-hash routed (any node accepts any request
// and transparently proxies to the owner), and each node serves its
// stored Phase-1 tables to the others over GET /v1/tables/{key}.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"protemp"
	"protemp/internal/cli"
	"protemp/internal/cluster"
	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/server"
)

// splitPeers parses the comma-separated -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	cli.Init("protemp-serve")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", "", "persistent table-store directory (empty = memory only)")
		sessionTTL = flag.Duration("session-ttl", 15*time.Minute, "idle session expiry (0 disables)")
		shards     = flag.Int("shards", 16, "session-manager shards")
		tmax       = flag.Float64("tmax", 100, "maximum temperature in °C")
		dt         = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		steps      = flag.Int("steps", 250, "DFS window horizon in steps")
		variant    = flag.String("variant", "variable", "model variant: variable, uniform or gradient")
		fpPath     = flag.String("floorplan", "", "floorplan file (default built-in Niagara-8)")
		cacheSize  = flag.Int("cache", 8, "in-memory table cache capacity")
		workers    = flag.Int("workers", 0, "parallel Phase-1 solves (default GOMAXPROCS)")
		drainWait  = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		flightN    = flag.Int("flight", 32, "solve traces retained by the flight recorder (0 disables tracing)")
		logFormat  = flag.String("log", "text", "request log format: text, json or off")
		opsAddr    = flag.String("ops-addr", "", "opt-in ops listener serving net/http/pprof (empty = off)")
		mutexFrac  = flag.Int("mutex-profile-fraction", 0, "runtime mutex profile sampling fraction (0 = off)")
		blockRate  = flag.Int("block-profile-rate", 0, "runtime block profile sampling rate in ns (0 = off)")

		selfURL  = flag.String("self", "", "this node's advertised URL (required with -peers)")
		peersCSV = flag.String("peers", "", "comma-separated cluster member URLs (empty = single node)")
		trip     = flag.Int("breaker-trip", 3, "consecutive peer failures that open its circuit breaker")
		cooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker interval before a half-open probe")

		p95Budget = flag.Duration("step-p95-budget", 0, "step-solve p95 budget; above it new online/dmpc sessions degrade to table mode (0 = off)")
		maxSteps  = flag.Int("max-steps", 0, "concurrent solver-backed steps admitted (0 = unbounded)")
		stepQueue = flag.Int("step-queue", 0, "steps queued beyond -max-steps before 429 (with -max-steps)")
	)
	flag.Parse()

	opts := []protemp.Option{
		protemp.WithTMax(*tmax),
		protemp.WithWindow(*dt, *steps),
		protemp.WithWorkers(*workers),
		protemp.WithTableCacheSize(*cacheSize),
	}
	if *storeDir != "" {
		opts = append(opts, protemp.WithTableStoreDir(*storeDir))
	}
	if *flightN > 0 {
		opts = append(opts, protemp.WithFlightRecorder(*flightN, 0))
	}
	if *fpPath != "" {
		f, err := os.Open(*fpPath)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := floorplan.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, protemp.WithFloorplan(fp))
	}
	switch *variant {
	case "variable":
		opts = append(opts, protemp.WithVariant(core.VariantVariable))
	case "uniform":
		opts = append(opts, protemp.WithVariant(core.VariantUniform))
	case "gradient":
		opts = append(opts, protemp.WithVariant(core.VariantGradient))
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = nil
	default:
		log.Fatalf("unknown log format %q (want text, json or off)", *logFormat)
	}

	// The cluster is built before the engine so the peer table tier can
	// be wired under the engine's cache (store miss → peer fetch →
	// Phase-1 generation).
	var clu *cluster.Cluster
	if *peersCSV != "" {
		if *selfURL == "" {
			log.Fatal("-peers requires -self (this node's advertised URL)")
		}
		var err error
		clu, err = cluster.New(cluster.Config{
			Self:             *selfURL,
			Peers:            splitPeers(*peersCSV),
			BreakerThreshold: *trip,
			BreakerCooldown:  *cooldown,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, protemp.WithTableFetcher(clu.TableFetcher()))
	}

	engine, err := protemp.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	ttl := *sessionTTL
	if ttl <= 0 {
		ttl = -1 // server.Config treats 0 as "default"; negative disables
	}
	srv, err := server.New(server.Config{
		Engine:     engine,
		Cluster:    clu,
		Shards:     *shards,
		SessionTTL: ttl,
		Logger:     logger,
		Admission: cluster.AdmissionConfig{
			StepP95Budget:      *p95Budget,
			MaxConcurrentSteps: *maxSteps,
			StepQueueDepth:     *stepQueue,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ops listener is a second, usually firewalled, address carrying
	// the profiling surface — pprof never shares a port with the API.
	if *opsAddr != "" {
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		opsSrv := &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("ops listener on %s (pprof; mutex fraction %d, block rate %d)",
				*opsAddr, *mutexFrac, *blockRate)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ops listener: %v", err)
			}
		}()
		defer opsSrv.Close()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if clu != nil {
			log.Printf("listening on %s (%d cores, %s variant, store=%q, cluster node %s of %d)",
				*addr, engine.Chip().NumCores(), engine.Variant(), *storeDir, clu.Self(), clu.Size())
		} else {
			log.Printf("listening on %s (%d cores, %s variant, store=%q)",
				*addr, engine.Chip().NumCores(), engine.Variant(), *storeDir)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (draining up to %v)", *drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("session drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}
