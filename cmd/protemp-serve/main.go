// Command protemp-serve runs the thermal control plane as an HTTP
// daemon: Phase-1 tables are generated (or loaded from a persistent
// store directory) on demand, and any number of remote control loops
// drive Phase-2 decisions through sessions.
//
// Endpoints:
//
//	POST   /v1/optimize              single-shot convex solve
//	POST   /v1/tables                generate-or-fetch a Phase-1 table
//	POST   /v1/sessions              open a control session
//	GET    /v1/sessions/{id}         session stats
//	POST   /v1/sessions/{id}/step    one DFS-window decision
//	POST   /v1/sessions/{id}/stream  NDJSON co-simulated control loop
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/fleet                 submit an async batch evaluation job
//	GET    /v1/fleet                 list fleet jobs
//	GET    /v1/fleet/scenarios       list registered workload scenarios
//	GET    /v1/fleet/{id}            job status and progress
//	GET    /v1/fleet/{id}/results    ranked results once finished
//	DELETE /v1/fleet/{id}            cancel (partial results kept) or delete
//	GET    /metrics                  counters + gauges (cache, store, sessions, fleet)
//	GET    /healthz                  liveness
//
// Usage:
//
//	protemp-serve [-addr :8080] [-store DIR] [-session-ttl 15m]
//	              [-shards 16] [-tmax 100] [-dt 0.0004] [-steps 250]
//	              [-variant variable|uniform|gradient] [-floorplan file]
//	              [-cache 8] [-workers N]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"protemp"
	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("protemp-serve: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", "", "persistent table-store directory (empty = memory only)")
		sessionTTL = flag.Duration("session-ttl", 15*time.Minute, "idle session expiry (0 disables)")
		shards     = flag.Int("shards", 16, "session-manager shards")
		tmax       = flag.Float64("tmax", 100, "maximum temperature in °C")
		dt         = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		steps      = flag.Int("steps", 250, "DFS window horizon in steps")
		variant    = flag.String("variant", "variable", "model variant: variable, uniform or gradient")
		fpPath     = flag.String("floorplan", "", "floorplan file (default built-in Niagara-8)")
		cacheSize  = flag.Int("cache", 8, "in-memory table cache capacity")
		workers    = flag.Int("workers", 0, "parallel Phase-1 solves (default GOMAXPROCS)")
		drainWait  = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	opts := []protemp.Option{
		protemp.WithTMax(*tmax),
		protemp.WithWindow(*dt, *steps),
		protemp.WithWorkers(*workers),
		protemp.WithTableCacheSize(*cacheSize),
	}
	if *storeDir != "" {
		opts = append(opts, protemp.WithTableStoreDir(*storeDir))
	}
	if *fpPath != "" {
		f, err := os.Open(*fpPath)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := floorplan.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, protemp.WithFloorplan(fp))
	}
	switch *variant {
	case "variable":
		opts = append(opts, protemp.WithVariant(core.VariantVariable))
	case "uniform":
		opts = append(opts, protemp.WithVariant(core.VariantUniform))
	case "gradient":
		opts = append(opts, protemp.WithVariant(core.VariantGradient))
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	engine, err := protemp.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	ttl := *sessionTTL
	if ttl <= 0 {
		ttl = -1 // server.Config treats 0 as "default"; negative disables
	}
	srv, err := server.New(server.Config{
		Engine:     engine,
		Shards:     *shards,
		SessionTTL: ttl,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d cores, %s variant, store=%q)",
			*addr, engine.Chip().NumCores(), engine.Variant(), *storeDir)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (draining up to %v)", *drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("session drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}
