// Command protemp-sim runs closed-loop policy comparisons on the
// Niagara-8 model: No-TC, Basic-DFS and Pro-Temp over a synthetic
// benchmark trace (or a trace loaded from CSV), printing the paper's
// headline metrics — time in temperature bands, violations, waiting
// times and spatial gradients. Ctrl-C cancels mid-run.
//
// Usage:
//
//	protemp-sim [-workload mixed|compute] [-seconds 10] [-seed 1]
//	            [-policies notc,basic,protemp,online,dmpc] [-assign first-idle|coolest]
//	            [-table table.json] [-trace trace.csv] [-dt 0.0004]
//	            [-trace-dump traces.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"protemp"
	"protemp/internal/cli"
	"protemp/internal/obs"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

func main() {
	cli.Init("protemp-sim")

	var (
		kind      = flag.String("workload", "mixed", "synthetic workload: mixed or compute")
		seconds   = flag.Float64("seconds", 10, "trace arrival horizon in seconds")
		seed      = flag.Int64("seed", 1, "trace seed")
		tracePath = flag.String("trace", "", "load trace from CSV instead of generating")
		policies  = flag.String("policies", "notc,basic,protemp", "comma-separated policies to run")
		assign    = flag.String("assign", "first-idle", "task assignment: first-idle or coolest")
		tablePath = flag.String("table", "", "Phase-1 table JSON (generated on the fly if empty)")
		dt        = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		steps     = flag.Int("steps", 250, "DFS window horizon in steps")
		threshold = flag.Float64("threshold", 90, "Basic-DFS shutdown threshold in °C")
		tmax      = flag.Float64("tmax", 100, "maximum temperature in °C")
		traceDump = flag.String("trace-dump", "", "write captured solve traces (online/dmpc policies) to this JSON file")
	)
	flag.Parse()

	// The flight recorder only captures online and dmpc solves — table
	// lookups have no solve anatomy to trace.
	var flight *obs.FlightRecorder
	if *traceDump != "" {
		flight = obs.NewFlightRecorder(32, 8)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine, err := protemp.New(
		protemp.WithWindow(*dt, *steps),
		protemp.WithTMax(*tmax),
	)
	if err != nil {
		log.Fatal(err)
	}
	chip := engine.Chip()

	// Trace.
	var trace *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var gen *workload.Generator
		switch *kind {
		case "mixed":
			gen = workload.Mixed(*seed, chip.NumCores(), *seconds)
		case "compute":
			gen = workload.ComputeIntensive(*seed, chip.NumCores(), *seconds)
		default:
			log.Fatalf("unknown workload %q", *kind)
		}
		if trace, err = gen.Generate(); err != nil {
			log.Fatal(err)
		}
	}
	st := workload.Summarize(trace, chip.NumCores())
	fmt.Printf("trace: %d tasks, %.1f s, offered load %.2f, burstiness %.2f\n\n",
		st.Tasks, st.Duration, st.OfferedLoad, st.Burstiness)

	// Assignment policy.
	var simOpts []protemp.SimOption
	switch *assign {
	case "first-idle":
		// The simulator's default.
	case "coolest":
		blocks := make([]int, chip.NumCores())
		for i := range blocks {
			blocks[i] = chip.CoreBlockIndex(i)
		}
		simOpts = append(simOpts, protemp.WithAssigner(sim.NewCoolestFirst(engine.Floorplan(), blocks, 0.5)))
	default:
		log.Fatalf("unknown assignment %q", *assign)
	}

	// Policies.
	var runs []sim.Policy
	needTable := false
	for _, p := range strings.Split(*policies, ",") {
		switch strings.TrimSpace(p) {
		case "notc":
			runs = append(runs, engine.NoTCPolicy())
		case "basic":
			basic, err := engine.BasicDFSPolicy(*threshold)
			if err != nil {
				log.Fatal(err)
			}
			runs = append(runs, basic)
		case "protemp":
			needTable = true
			runs = append(runs, nil) // placeholder, filled below
		case "online":
			runs = append(runs, &sim.ProTempOnline{
				Chip:    chip,
				Window:  engine.Window(),
				TMax:    *tmax,
				Variant: engine.Variant(),
				Flight:  flight,
			})
		case "dmpc":
			pd, err := engine.DMPCPolicy(0, engine.Variant(), *tmax)
			if err != nil {
				log.Fatal(err)
			}
			pd.Flight = flight
			runs = append(runs, pd)
		default:
			log.Fatalf("unknown policy %q", p)
		}
	}
	if needTable {
		var pro sim.Policy
		if *tablePath != "" {
			f, err := os.Open(*tablePath)
			if err != nil {
				log.Fatal(err)
			}
			// ReadTable accepts both the versioned store format and
			// the legacy bare JSON.
			table, err := protemp.ReadTable(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			session, err := engine.NewSessionFromTable(table)
			if err != nil {
				log.Fatal(err)
			}
			pro = session.Policy(ctx)
		} else {
			log.Printf("generating Phase-1 table (pass -table to reuse one) ...")
			session, err := engine.NewSession(ctx)
			if err != nil {
				log.Fatal(err)
			}
			pro = session.Policy(ctx)
		}
		for i, p := range runs {
			if p == nil {
				runs[i] = pro
			}
		}
	}

	// Run and report.
	fmt.Printf("%-18s %8s %8s %8s %8s %9s %9s %8s %8s\n",
		"policy", "<80", "80-90", "90-100", ">100", "maxT(°C)", "wait(s)", "grad(°C)", "done")
	for _, p := range runs {
		res, err := engine.Simulate(ctx, p, trace, simOpts...)
		if err != nil {
			log.Fatal(err)
		}
		fr := res.AvgBands.Fractions()
		fmt.Printf("%-18s %8.3f %8.3f %8.3f %8.3f %9.1f %9.4f %8.2f %8d\n",
			res.Policy, fr[0], fr[1], fr[2], fr[3],
			res.MaxCoreTemp, res.Wait.Mean(), res.Gradient.Mean(), res.Completed)
	}

	if *traceDump != "" {
		traces := flight.Traces()
		raw, err := json.MarshalIndent(traces, "", " ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceDump, raw, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d solve traces to %s", len(traces), *traceDump)
	}
}
