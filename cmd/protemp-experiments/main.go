// Command protemp-experiments regenerates every figure of the paper's
// evaluation section and prints the series/tables; optionally it also
// writes plottable CSVs.
//
// Usage:
//
//	protemp-experiments [-fidelity paper|quick] [-csv out/] [-only fig9]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"protemp/internal/cli"
	"protemp/internal/experiments"
)

func main() {
	cli.Init("protemp-experiments")

	var (
		fidelity = flag.String("fidelity", "quick", "paper (0.4 ms, full grids) or quick (1 ms, reduced)")
		csvDir   = flag.String("csv", "", "directory for plottable CSV output (skipped if empty)")
		only     = flag.String("only", "", "run a single experiment: fig1,fig2,fig6a,fig6b,fig7,fig8,fig9,fig10,fig11,cost")
	)
	flag.Parse()

	// Ctrl-C cancels the run; the cancellation reaches down into the
	// per-grid-point solver workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var fid experiments.Fidelity
	switch *fidelity {
	case "paper":
		fid = experiments.Paper()
	case "quick":
		fid = experiments.Quick()
	default:
		log.Fatalf("unknown fidelity %q", *fidelity)
	}

	start := time.Now()
	log.Printf("building setup (%s fidelity; includes Phase-1 table generation) ...", *fidelity)
	setup, err := experiments.NewSetup(ctx, fid)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
	log.Printf("setup ready in %v (table: %d solves, %d feasible)",
		time.Since(start).Round(time.Millisecond), setup.Table.Stats.Solves, setup.Table.Stats.Feasible)

	if *only != "" {
		if err := runOne(ctx, setup, *only); err != nil {
			log.Fatal(err)
		}
		return
	}

	report, err := setup.RunAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout)
	if *csvDir != "" {
		if err := report.WriteCSVs(*csvDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("CSV series written to %s", *csvDir)
	}
	log.Printf("total %v", time.Since(start).Round(time.Millisecond))
}

func runOne(ctx context.Context, setup *experiments.Setup, name string) error {
	type renderer interface{ Render(w *os.File) }
	_ = renderer(nil)
	switch name {
	case "fig1":
		r, err := setup.Fig1(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig2":
		r, err := setup.Fig2(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig6a":
		r, err := setup.Fig6a(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig6b":
		r, err := setup.Fig6b(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig7":
		r, err := setup.Fig7(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig8":
		r, err := setup.Fig8(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig9":
		r, err := setup.Fig9(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig10":
		r, err := setup.Fig10(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "fig11":
		r, err := setup.Fig11(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	case "cost":
		r, err := setup.Section51(ctx)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
