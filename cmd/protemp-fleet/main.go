// Command protemp-fleet runs a batch fleet evaluation: named workload
// scenarios × control policies × seeds, fanned across a worker pool on
// one shared engine (Phase-1 tables are generated once per distinct
// spec and shared), then prints a ranked comparison table and the
// cross-scenario policy leaderboard. Ctrl-C cancels mid-batch and
// still reports the partial results.
//
// Usage:
//
//	protemp-fleet [-scenarios mixed,bursty,adversarial,diurnal]
//	              [-policies protemp,protemp-online,basic-dfs,no-tc] [-seeds 1,2]
//	              [-scenarios sensor-dropout -policies protemp-online,protemp-online+kalman]
//	              [-floorplan grid:16x16 -scenarios manycore-mixed -policies protemp-dmpc@32]
//	              [-workers 0] [-horizon 0] [-max-sim 0] [-run-timeout 0]
//	              [-grid paper|coarse] [-dt 0.0004] [-steps 250]
//	              [-tmax 100] [-store DIR] [-json FILE] [-csv FILE]
//	              [-server URL] [-list]
//
// With -server the batch is submitted to a running protemp-serve
// daemon (or cluster node) over the fleet API instead of a local
// engine: the job runs remotely, progress is polled, and the same
// ranked report is printed from the fetched results. Engine-shaping
// flags (-grid, -dt, -steps, -tmax, -floorplan, -store) are ignored in
// this mode — the server's engine configuration governs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"protemp"
	"protemp/api"
	"protemp/client"
	"protemp/internal/cli"
	"protemp/internal/fleet"
	"protemp/internal/floorplan"
	"protemp/internal/sim"
)

func main() {
	cli.Init("protemp-fleet")

	var (
		scenarios  = flag.String("scenarios", "mixed,bursty,adversarial,diurnal", "comma-separated scenario names (see -list)")
		policies   = flag.String("policies", "protemp,basic-dfs,no-tc", "comma-separated policies: protemp[/variant], protemp-online[/variant], protemp-dmpc[/variant][@clusters], basic-dfs[@°C], no-tc; append +kalman or +luenberger to run behind a state estimator")
		plan       = flag.String("floorplan", "niagara", "chip floorplan: niagara (the paper's 8-core plan) or grid:RxC (synthetic many-core mesh, e.g. grid:16x16)")
		seeds      = flag.String("seeds", "1", "comma-separated workload seeds")
		workers    = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		horizon    = flag.Float64("horizon", 0, "override scenario arrival horizons in seconds (0 = defaults)")
		maxSim     = flag.Float64("max-sim", 0, "cap simulated seconds per run (0 = simulator default)")
		runTimeout = flag.Duration("run-timeout", 0, "wall-clock cap per run (0 = none)")
		grid       = flag.String("grid", "paper", "Phase-1 grid fidelity: paper (9×20) or coarse (4×5)")
		dt         = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		steps      = flag.Int("steps", 250, "DFS window horizon in steps")
		tmax       = flag.Float64("tmax", 100, "default maximum temperature in °C")
		storeDir   = flag.String("store", "", "persistent table-store directory (tables survive across invocations)")
		jsonPath   = flag.String("json", "", "write the full batch result as JSON to this file")
		csvPath    = flag.String("csv", "", "write per-run summary rows as CSV to this file")
		serverURL  = flag.String("server", "", "submit the batch to a running protemp-serve daemon at this URL instead of a local engine")
		list       = flag.Bool("list", false, "list the built-in scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range fleet.Builtin().All() {
			fmt.Printf("%-14s %s (horizon %gs", sc.Name, sc.Description, sc.Horizon)
			if sc.T0C != 0 {
				fmt.Printf(", T0 %g°C", sc.T0C)
			}
			if sc.TMaxC != 0 {
				fmt.Printf(", TMax %g°C", sc.TMaxC)
			}
			if d := sensingDesc(sc.Sensing); d != "" {
				fmt.Printf(", sensing: %s", d)
			}
			fmt.Println(")")
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := protemp.FleetSpec{
		Scenarios:  splitCSV(*scenarios),
		Workers:    *workers,
		Horizon:    *horizon,
		MaxSimTime: *maxSim,
		RunTimeout: *runTimeout,
	}
	for _, p := range splitCSV(*policies) {
		pol, err := parsePolicy(p)
		if err != nil {
			log.Fatal(err)
		}
		spec.Policies = append(spec.Policies, pol)
	}
	for _, s := range splitCSV(*seeds) {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", s, err)
		}
		spec.Seeds = append(spec.Seeds, seed)
	}

	if *serverURL != "" {
		runRemote(ctx, *serverURL, spec, *jsonPath, *csvPath)
		return
	}

	opts := []protemp.Option{
		protemp.WithWindow(*dt, *steps),
		protemp.WithTMax(*tmax),
	}
	if fp, err := parseFloorplan(*plan); err != nil {
		log.Fatal(err)
	} else if fp != nil {
		opts = append(opts, protemp.WithFloorplan(fp))
	}
	switch *grid {
	case "paper":
	case "coarse":
		opts = append(opts, protemp.WithTableGrid(
			[]float64{40, 60, 80, 100},
			[]float64{200e6, 400e6, 600e6, 800e6, 1000e6},
		))
	default:
		log.Fatalf("unknown grid fidelity %q (want paper or coarse)", *grid)
	}
	if *storeDir != "" {
		opts = append(opts, protemp.WithTableStoreDir(*storeDir))
	}
	engine, err := protemp.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	runner := fleet.NewRunner(engine, nil, nil)
	total := len(spec.Scenarios) * len(spec.Policies) * len(spec.Seeds)
	log.Printf("running %d cells (%d scenarios × %d policies × %d seeds) on a %d-core chip",
		total, len(spec.Scenarios), len(spec.Policies), len(spec.Seeds),
		engine.Chip().NumCores())

	start := time.Now()
	res, err := runner.RunWithProgress(ctx, spec, func(done, failed, total int) {
		log.Printf("  %d/%d done (%d failed)", done, total, failed)
	})
	if err != nil && res == nil {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("batch interrupted (%v); reporting partial results", err)
	}

	fmt.Println()
	if werr := fleet.WriteReportTable(os.Stdout, res); werr != nil {
		log.Fatal(werr)
	}
	stats := engine.CacheStats()
	log.Printf("tables: %d generated, %d cache hits, %d singleflight-shared, %d store hits (%.1fs wall)",
		stats.Generations, stats.Hits, stats.Shared, stats.StoreHits, time.Since(start).Seconds())

	if *jsonPath != "" {
		writeFile(*jsonPath, func(f *os.File) error { return fleet.WriteJSON(f, res) })
	}
	if *csvPath != "" {
		writeFile(*csvPath, func(f *os.File) error { return fleet.WriteCSV(f, res) })
	}
	if err != nil || res.Failed > 0 {
		os.Exit(1)
	}
}

// runRemote submits the batch over the fleet API, polls the job until
// it settles, and prints the same ranked report from the fetched
// results. Ctrl-C cancels the remote job (partial results are kept and
// reported, matching local-mode semantics).
func runRemote(ctx context.Context, url string, spec protemp.FleetSpec, jsonPath, csvPath string) {
	req := api.FleetSubmitRequest{
		Scenarios:   spec.Scenarios,
		Seeds:       spec.Seeds,
		Workers:     spec.Workers,
		HorizonS:    spec.Horizon,
		MaxSimTimeS: spec.MaxSimTime,
		RunTimeoutS: spec.RunTimeout.Seconds(),
	}
	for _, p := range spec.Policies {
		req.Policies = append(req.Policies, api.FleetPolicy{
			Kind:       p.Kind,
			Clusters:   p.Clusters,
			ThresholdC: p.ThresholdC,
			Variant:    p.Variant,
			Estimator:  p.Estimator,
		})
	}

	c, err := client.New(url)
	if err != nil {
		log.Fatal(err)
	}
	job, err := c.FleetSubmit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted job %s to %s (%d cells)", job.ID, url, job.Total)

	canceled := false
	for job.Status == api.FleetJobRunning {
		select {
		case <-ctx.Done():
			if !canceled {
				log.Print("interrupt: canceling remote job (partial results kept)")
				// The signal context is done; cancel and poll on a fresh one.
				dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := c.FleetDelete(dctx, job.ID); err != nil {
					cancel()
					log.Fatal(err)
				}
				cancel()
				canceled = true
			}
		case <-time.After(500 * time.Millisecond):
		}
		pctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		job, err = c.FleetStatus(pctx, job.ID)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("  %d/%d done (%d failed)", job.Done, job.Total, job.Failed)
	}

	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.FleetResults(rctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	var res fleet.BatchResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		log.Fatalf("decoding remote results: %v", err)
	}

	fmt.Println()
	if err := fleet.WriteReportTable(os.Stdout, &res); err != nil {
		log.Fatal(err)
	}
	if jsonPath != "" {
		writeFile(jsonPath, func(f *os.File) error { return fleet.WriteJSON(f, &res) })
	}
	if csvPath != "" {
		writeFile(csvPath, func(f *os.File) error { return fleet.WriteCSV(f, &res) })
	}
	if job.Status != api.FleetJobDone || res.Failed > 0 {
		os.Exit(1)
	}
}

// sensingDesc renders a scenario's measurement-path defects for -list:
// which sensor faults are injected and which observer (if any) the
// scenario itself mandates. Policies may still bring their own
// estimator via the +kalman / +luenberger suffix.
func sensingDesc(sn *sim.Sensing) string {
	if sn == nil {
		return ""
	}
	var parts []string
	for i, c := range sn.Sensors {
		var defects []string
		if c.NoiseSigma > 0 {
			defects = append(defects, fmt.Sprintf("±%g°C noise", c.NoiseSigma))
		}
		if c.QuantStep > 0 {
			defects = append(defects, fmt.Sprintf("%g°C ADC", c.QuantStep))
		}
		if c.DelayWindows > 0 {
			defects = append(defects, fmt.Sprintf("%d-window delay", c.DelayWindows))
		}
		if c.DropoutProb > 0 {
			defects = append(defects, fmt.Sprintf("%g%% dropout", c.DropoutProb*100))
		}
		if c.StuckProb > 0 {
			defects = append(defects, fmt.Sprintf("%g%% stuck", c.StuckProb*100))
		}
		if c.DriftRate != 0 {
			defects = append(defects, fmt.Sprintf("%+g°C/s drift", c.DriftRate))
		}
		if len(defects) == 0 {
			continue
		}
		d := strings.Join(defects, " + ")
		if len(sn.Sensors) > 1 {
			d = fmt.Sprintf("core%d %s", i, d)
		}
		parts = append(parts, d)
	}
	if len(parts) == 0 {
		parts = append(parts, "perfect sensors")
	}
	if sn.Estimator != "" && sn.Estimator != "none" {
		parts = append(parts, sn.Estimator+" observer")
	}
	if sn.ModelErr != 0 && sn.ModelErr != 1 {
		parts = append(parts, fmt.Sprintf("observer model ×%g", sn.ModelErr))
	}
	return strings.Join(parts, ", ")
}

// parseFloorplan parses the -floorplan syntax: "niagara" (nil, keep
// the engine default) or "grid:RxC" for the synthetic many-core mesh.
func parseFloorplan(s string) (*floorplan.Floorplan, error) {
	if s == "" || s == "niagara" {
		return nil, nil
	}
	dims, ok := strings.CutPrefix(s, "grid:")
	if !ok {
		return nil, fmt.Errorf("unknown floorplan %q (want niagara or grid:RxC)", s)
	}
	r, c, ok := strings.Cut(dims, "x")
	if !ok {
		return nil, fmt.Errorf("bad grid dimensions %q (want RxC, e.g. 16x16)", dims)
	}
	rows, err1 := strconv.Atoi(r)
	cols, err2 := strconv.Atoi(c)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("bad grid dimensions %q (want RxC, e.g. 16x16)", dims)
	}
	return floorplan.ManyCore(rows, cols)
}

// parsePolicy parses the CLI policy syntax: "protemp",
// "protemp/uniform", "protemp-online", "protemp-online/gradient",
// "protemp-dmpc", "protemp-dmpc/uniform@32", "basic-dfs",
// "basic-dfs@92.5", "no-tc". Any policy may carry a "+kalman" or
// "+luenberger" suffix to run it behind that state estimator on
// sensing scenarios (e.g. "protemp-online+kalman").
func parsePolicy(s string) (protemp.FleetPolicy, error) {
	var estimator string
	if i := strings.LastIndex(s, "+"); i >= 0 {
		estimator = s[i+1:]
		s = s[:i]
	}
	pol, err := parseBasePolicy(s)
	if err != nil {
		return pol, err
	}
	pol.Estimator = estimator
	if err := pol.Validate(); err != nil {
		return protemp.FleetPolicy{}, err
	}
	return pol, nil
}

func parseBasePolicy(s string) (protemp.FleetPolicy, error) {
	switch {
	case s == "protemp" || s == "protemp-online" || s == "protemp-dmpc" || s == "basic-dfs" || s == "no-tc":
		return protemp.FleetPolicy{Kind: s}, nil
	case strings.HasPrefix(s, "protemp-dmpc"):
		rest := strings.TrimPrefix(s, "protemp-dmpc")
		pol := protemp.FleetPolicy{Kind: "protemp-dmpc"}
		if variant, clusters, ok := strings.Cut(rest, "@"); ok {
			k, err := strconv.Atoi(clusters)
			if err != nil {
				return protemp.FleetPolicy{}, fmt.Errorf("bad cluster count in %q: %v", s, err)
			}
			pol.Clusters = k
			rest = variant
		}
		pol.Variant = strings.TrimPrefix(rest, "/")
		return pol, nil
	case strings.HasPrefix(s, "protemp-online/"):
		return protemp.FleetPolicy{Kind: "protemp-online", Variant: strings.TrimPrefix(s, "protemp-online/")}, nil
	case strings.HasPrefix(s, "protemp/"):
		return protemp.FleetPolicy{Kind: "protemp", Variant: strings.TrimPrefix(s, "protemp/")}, nil
	case strings.HasPrefix(s, "basic-dfs@"):
		threshold, err := strconv.ParseFloat(strings.TrimPrefix(s, "basic-dfs@"), 64)
		if err != nil {
			return protemp.FleetPolicy{}, fmt.Errorf("bad basic-dfs threshold in %q: %v", s, err)
		}
		return protemp.FleetPolicy{Kind: "basic-dfs", ThresholdC: threshold}, nil
	default:
		return protemp.FleetPolicy{}, fmt.Errorf("unknown policy %q (want protemp[/variant], protemp-online[/variant], protemp-dmpc[/variant][@clusters], basic-dfs[@°C] or no-tc)", s)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}
