package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeBench writes a minimal go test -json stream containing the
// given benchmark result lines.
func writeBench(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var body []byte
	for _, l := range lines {
		body = append(body, []byte(`{"Action":"output","Output":"`+l+`\n"}`+"\n")...)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	dir := t.TempDir()
	path := writeBench(t, dir, "b.json",
		`BenchmarkSessionStep/warm/sessions1-8         \t     100\t   6471399 ns/op\t   33704 B/op\t     217 allocs/op`,
		`BenchmarkGenerateTable-4 \t 1\t1010000000 ns/op`,
		`some unrelated output`,
	)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkSessionStep/warm/sessions1"] != 6471399 {
		t.Fatalf("warm ns/op = %v", got["BenchmarkSessionStep/warm/sessions1"])
	}
	if got["BenchmarkGenerateTable"] != 1010000000 {
		t.Fatalf("table ns/op = %v", got["BenchmarkGenerateTable"])
	}
}

// TestParseBenchFragmentedOutput mirrors the real test2json stream
// shape: the benchmark name flushes as its own output event before the
// iteration counts arrive in a second one, so the parser must
// reassemble fragments into lines before matching.
func TestParseBenchFragmentedOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frag.json")
	content := `{"Action":"start"}
{"Action":"output","Output":"BenchmarkSolveSinglePoint \t"}
{"Action":"output","Output":"       1\t   7958316 ns/op\n"}
{"Action":"output","Output":"BenchmarkSessionStep/warm/sessions1-8 \t"}
{"Action":"output","Output":"     100\t   6471399 ns/op\t   33704 B/op\n"}
{"Action":"output","Output":"PASS\n"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkSolveSinglePoint"] != 7958316 {
		t.Fatalf("single point ns/op = %v", got["BenchmarkSolveSinglePoint"])
	}
	if got["BenchmarkSessionStep/warm/sessions1"] != 6471399 {
		t.Fatalf("warm ns/op = %v", got["BenchmarkSessionStep/warm/sessions1"])
	}
}

// TestParseBenchAveragesRepeatedRuns checks -count > 1 streams report
// the mean, which is what makes the CI gate robust to single-run
// noise.
func TestParseBenchAveragesRepeatedRuns(t *testing.T) {
	dir := t.TempDir()
	path := writeBench(t, dir, "rep.json",
		`BenchmarkX-8 \t 10\t 400 ns/op`,
		`BenchmarkX-8 \t 10\t 600 ns/op`,
	)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 500 {
		t.Fatalf("mean ns/op = %v, want 500", got["BenchmarkX"])
	}
}

func TestParseBenchToleratesGarbageLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "noisy.json")
	content := `{"Action":"output","Output":"BenchmarkX-8 \t 10\t 500 ns/op\n"}
this line is not json at all
{"Action":"run","Test":"TestY"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 500 {
		t.Fatalf("got %v", got)
	}
}
