// Command protemp-benchdiff compares two `go test -json` benchmark
// outputs and fails when any benchmark shared by both regresses in
// ns/op beyond a threshold — the CI guard that keeps the warm-started
// hot paths from quietly getting slower.
//
// Usage:
//
//	protemp-benchdiff -base BENCH_main.json -head BENCH_head.json [-max-regress 25]
//
// Benchmarks present in only one file are reported and skipped (new
// benchmarks must not fail the build that introduces them). The exit
// status is 1 only for a regression beyond the threshold; unreadable
// inputs are an error (exit 2) so a broken pipeline cannot pass as
// "no regressions".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"protemp/internal/cli"
)

// testEvent is the subset of the test2json stream the parser consumes.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a gotest benchmark result line, e.g.
// "BenchmarkSessionStep/warm-8     100     6471399 ns/op    33704 B/op".
// The -NN GOMAXPROCS suffix is stripped so results compare across
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts benchmark name → ns/op from a `go test -json`
// stream. test2json splits one terminal line across several output
// events (the benchmark name flushes as its own fragment before the
// iteration counts arrive), so the fragments are reassembled into
// lines before matching. A benchmark that appears several times
// (-count > 1) reports the mean of its runs.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (panic traces, tee artifacts)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		sums[m[1]] += ns
		counts[m[1]]++
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

func main() {
	cli.Init("protemp-benchdiff")
	var (
		basePath   = flag.String("base", "", "baseline go test -json output (required)")
		headPath   = flag.String("head", "", "candidate go test -json output (required)")
		maxRegress = flag.Float64("max-regress", 25, "maximum allowed ns/op regression in percent")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		cli.Fatalf(2, "-base and -head are required")
	}
	base, err := parseBench(*basePath)
	if err != nil {
		cli.Fatalf(2, "%v", err)
	}
	head, err := parseBench(*headPath)
	if err != nil {
		cli.Fatalf(2, "%v", err)
	}
	if len(base) == 0 {
		// An empty baseline is a skip, not a pass/fail: first run on a
		// fresh branch, or the artifact expired.
		fmt.Printf("no baseline benchmarks in %s; skipping comparison\n", *basePath)
		return
	}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		hv := head[name]
		bv, ok := base[name]
		if !ok {
			fmt.Printf("NEW   %-60s %14.0f ns/op\n", name, hv)
			continue
		}
		delta := (hv - bv) / bv * 100
		mark := "ok   "
		if delta > *maxRegress {
			mark = "FAIL "
			failed = true
		}
		fmt.Printf("%s %-60s %14.0f -> %14.0f ns/op  (%+.1f%%)\n", mark, name, bv, hv, delta)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Printf("GONE  %-60s (present only in baseline)\n", name)
		}
	}
	if failed {
		cli.Fatalf(1, "ns/op regression beyond %.0f%%", *maxRegress)
	}
}
