// Command protemp-thermal inspects the RC thermal model: block list and
// adjacency, the paper's Eq. 1 coefficients, steady-state temperatures
// at a chosen operating point, and a step-response simulation.
//
// Usage:
//
//	protemp-thermal [-floorplan file] [-freq-mhz 1000] [-t0 45]
//	                [-seconds 1] [-dt 0.0004] [-coeffs]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"protemp"
	"protemp/internal/cli"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/thermal"
)

func main() {
	cli.Init("protemp-thermal")

	var (
		fpPath  = flag.String("floorplan", "", "floorplan file (default built-in Niagara-8)")
		freqMHz = flag.Float64("freq-mhz", 1000, "uniform core frequency for the operating point")
		t0      = flag.Float64("t0", 45, "initial temperature in °C for the step response")
		seconds = flag.Float64("seconds", 1, "step-response horizon")
		dt      = flag.Float64("dt", 0.4e-3, "thermal step in seconds")
		coeffs  = flag.Bool("coeffs", false, "print the paper's Eq. 1 coefficients per block")
	)
	flag.Parse()

	// The window horizon is irrelevant for model inspection; one step
	// keeps the engine build cheap.
	opts := []protemp.Option{protemp.WithWindow(*dt, 1)}
	if *fpPath != "" {
		f, err := os.Open(*fpPath)
		if err != nil {
			log.Fatal(err)
		}
		fp2, err := floorplan.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, protemp.WithFloorplan(fp2))
	}
	engine, err := protemp.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	fp := engine.Floorplan()
	chip := engine.Chip()
	model := engine.Model()

	fmt.Printf("floorplan: %d blocks, %d cores, die %.1f x %.1f mm\n",
		fp.NumBlocks(), len(fp.CoreIndices()), dieMM(fp, true), dieMM(fp, false))
	fmt.Println("adjacency (shared edges):")
	for _, adj := range fp.Adjacencies() {
		fmt.Printf("  %-5s - %-5s %.2f mm\n",
			fp.Block(adj.I).Name, fp.Block(adj.J).Name, adj.SharedLength*1e3)
	}

	freqs := linalg.Constant(chip.NumCores(), *freqMHz*1e6)
	p, err := chip.PowerVector(freqs)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := model.SteadyState(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsteady state at %.0f MHz on all cores (%.1f W total):\n", *freqMHz, p.Sum())
	printTemps(fp, ss)

	disc := engine.Disc()
	fmt.Printf("\ndiscretization: dt = %.4g s, spectral radius ≈ %.5f\n", *dt, disc.SpectralRadiusEstimate())

	if *coeffs {
		fmt.Println("\nEq. 1 coefficients (a_ij to neighbours, a_amb, b_i per watt):")
		for i := 0; i < fp.NumBlocks(); i++ {
			aAdj, aAmb, b := disc.Coefficients(i)
			fmt.Printf("  %-5s b=%.3e a_amb=%.3e", fp.Block(i).Name, b, aAmb)
			keys := make([]int, 0, len(aAdj))
			for j := range aAdj {
				keys = append(keys, j)
			}
			sort.Ints(keys)
			for _, j := range keys {
				fmt.Printf(" a[%s]=%.3e", fp.Block(j).Name, aAdj[j])
			}
			fmt.Println()
		}
	}

	simulator, err := thermal.NewSimulator(disc, model.UniformStart(*t0))
	if err != nil {
		log.Fatal(err)
	}
	steps := int(*seconds / *dt)
	fmt.Printf("\nstep response from %.0f °C over %.2f s:\n", *t0, *seconds)
	fmt.Printf("%8s %10s %10s\n", "t(ms)", "hottest", "coolest")
	report := steps / 10
	if report == 0 {
		report = 1
	}
	for k := 0; k <= steps; k++ {
		if k%report == 0 {
			temps := simulator.Temps()
			fmt.Printf("%8.1f %10.2f %10.2f\n", float64(k)**dt*1e3, temps.Max(), temps.Min())
		}
		simulator.Step(p)
	}
}

func dieMM(fp *floorplan.Floorplan, width bool) float64 {
	_, _, w, h := fp.BoundingBox()
	if width {
		return w * 1e3
	}
	return h * 1e3
}

func printTemps(fp *floorplan.Floorplan, t linalg.Vector) {
	for i := 0; i < fp.NumBlocks(); i++ {
		fmt.Printf("  %-5s %7.2f °C\n", fp.Block(i).Name, t[i])
	}
}
