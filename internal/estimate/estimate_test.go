package estimate_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"protemp/internal/estimate"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/thermal"
)

// rig bundles one truth model + observer test bench: the Niagara RC
// network at a 1 ms sub-step and 100-step (100 ms) control windows.
type rig struct {
	disc    *thermal.Discrete
	spw     int
	sensors []int
	truth   *thermal.Simulator
	power   linalg.Vector
}

func newRig(t *testing.T, t0 float64) *rig {
	t.Helper()
	fp := floorplan.Niagara()
	m, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	disc, err := m.Discretize(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := thermal.NewSimulator(disc, m.UniformStart(t0))
	if err != nil {
		t.Fatal(err)
	}
	// A mildly uneven power pattern: half the cores hot, uncore fixed.
	p := linalg.NewVector(disc.NumNodes())
	for k, bi := range fp.CoreIndices() {
		if k%2 == 0 {
			p[bi] = 4
		} else {
			p[bi] = 1
		}
	}
	return &rig{disc: disc, spw: 100, sensors: fp.CoreIndices(), truth: truth, power: p}
}

func (r *rig) window() { r.truth.Run(r.power, r.spw) }

func (r *rig) readPerfect() ([]float64, []bool) {
	temps := r.truth.Temps()
	z := make([]float64, len(r.sensors))
	valid := make([]bool, len(r.sensors))
	for i, bi := range r.sensors {
		z[i] = temps[bi]
		valid[i] = true
	}
	return z, valid
}

func maxErr(est, truth linalg.Vector) float64 {
	var m float64
	for i := range est {
		if d := math.Abs(est[i] - truth[i]); d > m {
			m = d
		}
	}
	return m
}

func newEstimator(t *testing.T, r *rig, cfg estimate.Config) *estimate.Estimator {
	t.Helper()
	cfg.Disc = r.disc
	cfg.StepsPerWindow = r.spw
	cfg.SensorBlocks = r.sensors
	e, err := estimate.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Zero-noise readings: from a deliberately wrong initial state, both
// observers must converge onto the true full-block map — including the
// unmeasured uncore blocks — to a tight tolerance.
func TestConvergesOnTruthZeroNoise(t *testing.T) {
	for _, kind := range []estimate.Kind{estimate.Kalman, estimate.Luenberger} {
		t.Run(kind.String(), func(t *testing.T) {
			r := newRig(t, 70)
			e := newEstimator(t, r, estimate.Config{Kind: kind, MeasSigma: []float64{0.1}})
			// Start the observer 25 °C off.
			if err := e.Reset(linalg.Constant(e.NumBlocks(), 45)); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < 120; w++ {
				r.window()
				if err := e.Predict(r.power); err != nil {
					t.Fatal(err)
				}
				z, valid := r.readPerfect()
				if err := e.Correct(z, valid); err != nil {
					t.Fatal(err)
				}
			}
			if err := maxErr(e.Estimate(), r.truth.Temps()); err > 0.05 {
				t.Fatalf("%s: steady-state error %.4f °C, want < 0.05", kind, err)
			}
		})
	}
}

// Bounded measurement noise ⇒ bounded steady-state estimate error,
// well below the raw noise floor for the Kalman filter.
func TestBoundedNoiseBoundedError(t *testing.T) {
	const sigma = 2.0
	r := newRig(t, 60)
	e := newEstimator(t, r, estimate.Config{Kind: estimate.Kalman, MeasSigma: []float64{sigma}})
	if err := e.Reset(r.truth.Temps()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 17))
	var worst, sum float64
	var n int
	for w := 0; w < 200; w++ {
		r.window()
		if err := e.Predict(r.power); err != nil {
			t.Fatal(err)
		}
		z, valid := r.readPerfect()
		for i := range z {
			z[i] += sigma * rng.NormFloat64()
		}
		if err := e.Correct(z, valid); err != nil {
			t.Fatal(err)
		}
		if w >= 50 { // steady state only
			err := maxErr(e.Estimate(), r.truth.Temps())
			sum += err
			n++
			if err > worst {
				worst = err
			}
		}
	}
	mean := sum / float64(n)
	if mean > sigma/2 {
		t.Fatalf("mean steady-state error %.3f °C not below half the %.1f °C noise floor", mean, sigma)
	}
	if worst > 3*sigma {
		t.Fatalf("worst error %.3f °C unbounded vs sigma %.1f", worst, sigma)
	}
	if e.CovTrace() <= 0 {
		t.Fatal("Kalman steady-state covariance trace not positive")
	}
}

// Sensor dropout degrades to prediction: corrections skip invalid rows
// and a full outage window is a pure predict — the estimate keeps
// tracking through the outage and re-converges after it.
func TestDropoutDegradesToPrediction(t *testing.T) {
	r := newRig(t, 70)
	e := newEstimator(t, r, estimate.Config{Kind: estimate.Kalman, MeasSigma: []float64{0.1}})
	if err := e.Reset(r.truth.Temps()); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 100; w++ {
		r.window()
		if err := e.Predict(r.power); err != nil {
			t.Fatal(err)
		}
		z, valid := r.readPerfect()
		switch {
		case w >= 30 && w < 50: // full outage burst
			for i := range valid {
				valid[i] = false
			}
		case w%3 == 0: // scattered single-sensor dropouts
			valid[w%len(valid)] = false
		}
		if err := e.Correct(z, valid); err != nil {
			t.Fatal(err)
		}
		if err := maxErr(e.Estimate(), r.truth.Temps()); err > 1.0 {
			t.Fatalf("window %d: error %.3f °C through dropout, want < 1.0", w, err)
		}
	}
}

// An estimator that was never Reset seeds itself from the first valid
// readings.
func TestSelfSeedsFromFirstReadings(t *testing.T) {
	r := newRig(t, 80)
	e := newEstimator(t, r, estimate.Config{})
	if e.Ready() {
		t.Fatal("fresh estimator claims ready")
	}
	z, valid := r.readPerfect()
	if err := e.Correct(z, valid); err != nil {
		t.Fatal(err)
	}
	if !e.Ready() {
		t.Fatal("estimator not ready after first correct")
	}
	if err := maxErr(e.Estimate(), r.truth.Temps()); err > 1e-9 {
		t.Fatalf("uniform-start self-seed error %.4f", err)
	}
	if err := e.Predict(r.power); err != nil {
		t.Fatal(err)
	}
}

// A model-mismatched Kalman filter (wrong-RC dynamics) stays stable
// and keeps its error bounded — worse than the exact-model filter, but
// the measurements keep pulling it back.
func TestModelMismatchStaysBounded(t *testing.T) {
	r := newRig(t, 70)
	wrong, err := r.disc.WithGainError(1.4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := estimate.New(estimate.Config{
		Disc: wrong, StepsPerWindow: r.spw, SensorBlocks: r.sensors,
		MeasSigma: []float64{0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(r.truth.Temps()); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 150; w++ {
		r.window()
		if err := e.Predict(r.power); err != nil {
			t.Fatal(err)
		}
		z, valid := r.readPerfect()
		if err := e.Correct(z, valid); err != nil {
			t.Fatal(err)
		}
	}
	if got := maxErr(e.Estimate(), r.truth.Temps()); got > 5 {
		t.Fatalf("mismatched-model error %.3f °C diverged", got)
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, 70)
	bad := []estimate.Config{
		{},                          // nil model
		{Disc: r.disc},              // no steps
		{Disc: r.disc, StepsPerWindow: 10},                                            // no sensors
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{-1}},                   // bad block
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{1, 1}},                 // duplicate
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{1}, ProcessSigma: -1},  // bad q
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{1}, MeasSigma: []float64{1, 2}}, // shape
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{1}, MeasSigma: []float64{-1}},   // bad r
		{Disc: r.disc, StepsPerWindow: 10, SensorBlocks: []int{1}, Kind: estimate.Luenberger, Gain: 2},
	}
	for i, cfg := range bad {
		if _, err := estimate.New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}

	e := newEstimator(t, r, estimate.Config{})
	if err := e.Reset(linalg.NewVector(1)); err == nil {
		t.Error("short Reset accepted")
	}
	if err := e.Predict(linalg.NewVector(e.NumBlocks())); err == nil {
		t.Error("Predict before Reset accepted")
	}
	if err := e.Correct([]float64{1}, []bool{true}); err == nil {
		t.Error("short Correct accepted")
	}
}

func TestParseKind(t *testing.T) {
	if k, err := estimate.ParseKind("", estimate.Luenberger); err != nil || k != estimate.Luenberger {
		t.Fatalf("empty parse: %v %v", k, err)
	}
	if k, err := estimate.ParseKind("kalman", estimate.Luenberger); err != nil || k != estimate.Kalman {
		t.Fatalf("kalman parse: %v %v", k, err)
	}
	if k, err := estimate.ParseKind("luenberger", estimate.Kalman); err != nil || k != estimate.Luenberger {
		t.Fatalf("luenberger parse: %v %v", k, err)
	}
	if _, err := estimate.ParseKind("bogus", estimate.Kalman); err == nil {
		t.Fatal("bogus kind parsed")
	}
}
