// Package estimate reconstructs the full per-block thermal state from
// imperfect core-sensor readings — the observer between the sensor
// bank (internal/sense) and the controller. It runs at control-window
// granularity on the same discrete thermal model the controller
// optimizes against:
//
//	x_{k+1} = A_w·x_k + B_w·p_k + d_w          (predict, commanded power)
//	    y_k = H·x_k + v_k,   v_k ~ N(0, R)     (correct, core sensors)
//
// where A_w = A^m, B_w = Σ_{j<m} A^j·B and d_w = Σ_{j<m} A^j·d
// compose m thermal sub-steps into one control window, and H selects
// the sensor-instrumented blocks. Two observers are provided:
//
//   - Kalman: the steady-state filter. The Riccati recursion is
//     iterated to convergence at construction, so the per-window cost
//     is one predict plus one fixed-gain correct — no run-time matrix
//     factorization on the hot path.
//   - Luenberger: a cheaper fixed-gain observer that corrects only the
//     measured blocks; unmeasured blocks re-converge through the
//     (stable) dynamics. No Riccati solve, no covariance.
//
// Missing measurements (sensor dropout) zero the corresponding
// innovation row, degrading gracefully toward pure prediction; a
// full-outage window is exactly a predict.
package estimate

import (
	"fmt"
	"math"

	"protemp/internal/linalg"
	"protemp/internal/thermal"
)

// Kind selects the observer algorithm.
type Kind int

const (
	// Kalman is the steady-state Kalman filter (default).
	Kalman Kind = iota
	// Luenberger is the fixed-gain output-injection observer.
	Luenberger
)

// String returns the lower-case name.
func (k Kind) String() string {
	switch k {
	case Kalman:
		return "kalman"
	case Luenberger:
		return "luenberger"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a wire name ("kalman", "luenberger") to a Kind; the
// empty string selects def.
func ParseKind(name string, def Kind) (Kind, error) {
	switch name {
	case "":
		return def, nil
	case "kalman":
		return Kalman, nil
	case "luenberger":
		return Luenberger, nil
	default:
		return 0, fmt.Errorf("estimate: unknown estimator kind %q (want kalman or luenberger)", name)
	}
}

// Config assembles an estimator.
type Config struct {
	// Disc is the thermal model the observer predicts with. For
	// model-mismatch studies this is deliberately NOT the simulator's
	// model (see thermal.Discrete.WithGainError).
	Disc *thermal.Discrete
	// StepsPerWindow composes this many Disc sub-steps into one
	// control window.
	StepsPerWindow int
	// SensorBlocks maps sensor i to the block index it measures.
	SensorBlocks []int
	// ProcessSigma is the per-window process-noise standard deviation
	// in °C (model error per window); default 0.05.
	ProcessSigma float64
	// MeasSigma is the per-sensor measurement-noise standard deviation
	// in °C; a single entry is broadcast to every sensor. Default 0.5.
	// Quantization adds q²/12 variance on top internally when callers
	// fold it in; pass the effective sigma.
	MeasSigma []float64
	// Kind selects Kalman (zero value) or Luenberger.
	Kind Kind
	// Gain is the Luenberger output-injection gain in (0, 1]; default
	// 0.6. Ignored by the Kalman filter.
	Gain float64
}

// Estimator is the run-time observer state. It is single-goroutine
// state, like the sim.Stepper it serves.
type Estimator struct {
	kind   Kind
	nb     int
	sensor []int

	aw *linalg.Matrix // A^m
	bw *linalg.Matrix // Σ A^j B
	dw linalg.Vector  // Σ A^j d

	gain *linalg.Matrix // Kalman K (nb × m); nil for Luenberger
	lGain float64
	covTrace float64 // steady-state trace(P), Kalman only

	x     linalg.Vector // current estimate
	xPred linalg.Vector
	innov linalg.Vector // last innovation (m)
	buf   linalg.Vector
	ready bool

	lastInnovInf float64
	corrections  uint64
	predictions  uint64
}

// New validates the config, composes the window dynamics and — for the
// Kalman kind — iterates the Riccati recursion to its steady state.
func New(cfg Config) (*Estimator, error) {
	if cfg.Disc == nil {
		return nil, fmt.Errorf("estimate: nil thermal model")
	}
	if cfg.StepsPerWindow < 1 {
		return nil, fmt.Errorf("estimate: %d steps per window, want >= 1", cfg.StepsPerWindow)
	}
	nb := cfg.Disc.NumNodes()
	if len(cfg.SensorBlocks) == 0 {
		return nil, fmt.Errorf("estimate: no sensor blocks")
	}
	seen := make(map[int]bool, len(cfg.SensorBlocks))
	for _, b := range cfg.SensorBlocks {
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("estimate: sensor block %d outside [0,%d)", b, nb)
		}
		if seen[b] {
			return nil, fmt.Errorf("estimate: duplicate sensor block %d", b)
		}
		seen[b] = true
	}
	m := len(cfg.SensorBlocks)
	qSigma := cfg.ProcessSigma
	if qSigma == 0 {
		qSigma = 0.05
	}
	if !(qSigma > 0) || math.IsInf(qSigma, 0) {
		return nil, fmt.Errorf("estimate: invalid process sigma %g", cfg.ProcessSigma)
	}
	rSigma := make([]float64, m)
	switch len(cfg.MeasSigma) {
	case 0:
		for i := range rSigma {
			rSigma[i] = 0.5
		}
	case 1:
		for i := range rSigma {
			rSigma[i] = cfg.MeasSigma[0]
		}
	case m:
		copy(rSigma, cfg.MeasSigma)
	default:
		return nil, fmt.Errorf("estimate: %d measurement sigmas for %d sensors", len(cfg.MeasSigma), m)
	}
	for i, s := range rSigma {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("estimate: invalid measurement sigma %g for sensor %d", s, i)
		}
	}

	e := &Estimator{
		kind:   cfg.Kind,
		nb:     nb,
		sensor: append([]int(nil), cfg.SensorBlocks...),
		x:      linalg.NewVector(nb),
		xPred:  linalg.NewVector(nb),
		innov:  linalg.NewVector(m),
		buf:    linalg.NewVector(nb),
	}
	e.composeWindow(cfg.Disc, cfg.StepsPerWindow)

	switch cfg.Kind {
	case Kalman:
		if err := e.solveRiccati(qSigma, rSigma); err != nil {
			return nil, err
		}
	case Luenberger:
		g := cfg.Gain
		if g == 0 {
			g = 0.6
		}
		if !(g > 0) || g > 1 {
			return nil, fmt.Errorf("estimate: luenberger gain %g outside (0, 1]", cfg.Gain)
		}
		e.lGain = g
	default:
		return nil, fmt.Errorf("estimate: unknown kind %d", cfg.Kind)
	}
	return e, nil
}

// composeWindow folds m sub-steps into the window-level affine map.
func (e *Estimator) composeWindow(d *thermal.Discrete, m int) {
	n := e.nb
	aw := linalg.Identity(n)
	bw := linalg.NewMatrix(n, n)
	dw := linalg.NewVector(n)
	tmpM := linalg.NewMatrix(n, n)
	tmpV := linalg.NewVector(n)
	for k := 0; k < m; k++ {
		// bw ← A·bw + B; dw ← A·dw + d; aw ← A·aw.
		tmpM.Mul(d.A, bw)
		bw, tmpM = tmpM, bw
		bw.Add(bw, d.B)
		d.A.MulVec(tmpV, dw)
		dw, tmpV = tmpV, dw
		dw.Add(dw, d.D)
		tmpM.Mul(d.A, aw)
		aw, tmpM = tmpM, aw
	}
	e.aw, e.bw, e.dw = aw, bw, dw
}

// solveRiccati iterates the discrete Riccati recursion to the
// steady-state gain: P⁻ = APA' + Q; S = HP⁻H' + R; K = P⁻H'S⁻¹;
// P = (I − KH)P⁻, symmetrized each pass for numerical hygiene.
func (e *Estimator) solveRiccati(qSigma float64, rSigma []float64) error {
	n, m := e.nb, len(e.sensor)
	q := qSigma * qSigma
	p := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 1) // generous initial uncertainty, 1 °C²
	}
	pPred := linalg.NewMatrix(n, n)
	tmp := linalg.NewMatrix(n, n)
	s := linalg.NewMatrix(m, m)
	k := linalg.NewMatrix(n, m)
	kPrev := linalg.NewMatrix(n, m)
	rhs := linalg.NewVector(m)

	const maxIters = 1000
	for iter := 0; iter < maxIters; iter++ {
		// P⁻ = A P A' + Q.
		tmp.Mul(e.aw, p)
		pPred.Mul(tmp, e.aw.T())
		for i := 0; i < n; i++ {
			pPred.AddAt(i, i, q)
		}
		// S = H P⁻ H' + R (the sensor-block submatrix of P⁻ plus R).
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				s.Set(a, b, pPred.At(e.sensor[a], e.sensor[b]))
			}
			s.AddAt(a, a, rSigma[a]*rSigma[a])
		}
		lu, err := linalg.LU(s)
		if err != nil {
			return fmt.Errorf("estimate: riccati innovation covariance singular: %w", err)
		}
		// K = P⁻ H' S⁻¹, row by row: K[i,:] solves S·k = (P⁻H')[i,:]ᵀ
		// (S is symmetric, so solving against S is solving against Sᵀ).
		for i := 0; i < n; i++ {
			for a := 0; a < m; a++ {
				rhs[a] = pPred.At(i, e.sensor[a])
			}
			row, err := lu.Solve(rhs)
			if err != nil {
				return fmt.Errorf("estimate: riccati gain solve: %w", err)
			}
			copy(k.Row(i), row)
		}
		// P = (I − K H) P⁻, then symmetrize.
		tmp.CopyFrom(pPred)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var kh float64
				for a := 0; a < m; a++ {
					kh += k.At(i, a) * pPred.At(e.sensor[a], j)
				}
				tmp.AddAt(i, j, -kh)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				avg := 0.5 * (tmp.At(i, j) + tmp.At(j, i))
				tmp.Set(i, j, avg)
				tmp.Set(j, i, avg)
			}
		}
		p.CopyFrom(tmp)

		if iter > 0 && maxAbsDiff(k, kPrev) < 1e-12 {
			break
		}
		kPrev.CopyFrom(k)
	}
	e.gain = k
	var tr float64
	for i := 0; i < n; i++ {
		tr += p.At(i, i)
	}
	e.covTrace = tr
	return nil
}

func maxAbsDiff(a, b *linalg.Matrix) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > m {
				m = d
			}
		}
	}
	return m
}

// Kind returns the observer algorithm.
func (e *Estimator) Kind() Kind { return e.kind }

// NumBlocks returns the state dimension.
func (e *Estimator) NumBlocks() int { return e.nb }

// Ready reports whether the state has been initialized (by Reset or a
// first Correct).
func (e *Estimator) Ready() bool { return e.ready }

// Reset initializes the state estimate. Callers typically seed it from
// the ambient temperature or the first readings.
func (e *Estimator) Reset(x0 linalg.Vector) error {
	if len(x0) != e.nb {
		return fmt.Errorf("estimate: state length %d, want %d", len(x0), e.nb)
	}
	copy(e.x, x0)
	e.ready = true
	return nil
}

// Predict advances the estimate one control window under the per-block
// power vector applied during that window.
func (e *Estimator) Predict(power linalg.Vector) error {
	if len(power) != e.nb {
		return fmt.Errorf("estimate: power length %d, want %d", len(power), e.nb)
	}
	if !e.ready {
		return fmt.Errorf("estimate: Predict before Reset")
	}
	e.aw.MulVec(e.xPred, e.x)
	e.bw.MulVec(e.buf, power)
	e.xPred.Add(e.xPred, e.buf)
	e.xPred.Add(e.xPred, e.dw)
	copy(e.x, e.xPred)
	e.predictions++
	return nil
}

// Correct folds one window's sensor readings into the estimate. z
// holds one reading per sensor; valid[i] false marks a dropout, whose
// innovation row is skipped. A window with no valid reading leaves the
// prediction untouched.
func (e *Estimator) Correct(z []float64, valid []bool) error {
	m := len(e.sensor)
	if len(z) != m || len(valid) != m {
		return fmt.Errorf("estimate: %d readings / %d valid flags for %d sensors", len(z), len(valid), m)
	}
	if !e.ready {
		// First contact: seed the whole state from the readings (every
		// block at the mean valid reading, measured blocks exactly).
		var sum float64
		var n int
		for i, ok := range valid {
			if ok {
				sum += z[i]
				n++
			}
		}
		if n == 0 {
			return nil // still nothing to go on
		}
		e.x.Fill(sum / float64(n))
		for i, ok := range valid {
			if ok {
				e.x[e.sensor[i]] = z[i]
			}
		}
		e.ready = true
		return nil
	}

	e.lastInnovInf = 0
	for i := range e.innov {
		e.innov[i] = 0
		if valid[i] {
			e.innov[i] = z[i] - e.x[e.sensor[i]]
			if a := math.Abs(e.innov[i]); a > e.lastInnovInf {
				e.lastInnovInf = a
			}
		}
	}
	switch e.kind {
	case Kalman:
		// x += K·innov (dropped rows contribute zero).
		for i := 0; i < e.nb; i++ {
			row := e.gain.Row(i)
			var s float64
			for a, nu := range e.innov {
				if nu != 0 {
					s += row[a] * nu
				}
			}
			e.x[i] += s
		}
	case Luenberger:
		for a, nu := range e.innov {
			if nu != 0 {
				e.x[e.sensor[a]] += e.lGain * nu
			}
		}
	}
	e.corrections++
	return nil
}

// Estimate returns the current per-block estimate. The returned vector
// aliases internal state and is only valid until the next Predict or
// Correct; callers keeping it must Clone.
func (e *Estimator) Estimate() linalg.Vector { return e.x }

// LastInnovation returns the ∞-norm of the most recent correction's
// innovation — the residual magnitude an operator alarms on.
func (e *Estimator) LastInnovation() float64 { return e.lastInnovInf }

// CovTrace returns the steady-state error-covariance trace in °C²
// (zero for Luenberger, which carries no covariance).
func (e *Estimator) CovTrace() float64 { return e.covTrace }

// Counts reports predict/correct activity.
func (e *Estimator) Counts() (predictions, corrections uint64) {
	return e.predictions, e.corrections
}
