package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGeneratorValidate(t *testing.T) {
	good := Mixed(1, 8, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("standard generator invalid: %v", err)
	}
	mutations := []func(*Generator){
		func(g *Generator) { g.Duration = 0 },
		func(g *Generator) { g.NumCores = 0 },
		func(g *Generator) { g.Utilization = 0 },
		func(g *Generator) { g.Utilization = 2 },
		func(g *Generator) { g.Mix = nil },
		func(g *Generator) { g.BurstFactor = 0.5 },
		func(g *Generator) { g.HighFrac = 0 },
		func(g *Generator) { g.HighFrac = 1.2 },
		func(g *Generator) { g.BurstFactor = 3; g.HighFrac = 0.5 },
		func(g *Generator) { g.MeanBurst = 0 },
		func(g *Generator) { g.Mix = []Class{{Name: "x", MinWork: 0, MaxWork: 1, Weight: 1}} },
		func(g *Generator) { g.Mix = []Class{{Name: "x", MinWork: 2, MaxWork: 1, Weight: 1}} },
		func(g *Generator) { g.Mix = []Class{{Name: "x", MinWork: 1e-3, MaxWork: 2e-3, Weight: 0}} },
		func(g *Generator) { g.Mix = []Class{{Name: "x", MinWork: 1e-3, MaxWork: 2e-3, Weight: -1}} },
	}
	for i, mutate := range mutations {
		g := Mixed(1, 8, 10)
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := g.Generate(); err == nil {
			t.Errorf("mutation %d generated", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Mixed(42, 8, 20).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mixed(42, 8, 20).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	c, err := Mixed(43, 8, 20).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tasks) == len(a.Tasks) && len(a.Tasks) > 0 && c.Tasks[0] == a.Tasks[0] {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMeetsPaperProperties(t *testing.T) {
	tr, err := Mixed(7, 8, 60).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Summarize(tr, 8)
	// Task lengths within the paper's 1-10 ms.
	if st.MinWork < 1e-3-1e-12 || st.MaxWork > 10e-3+1e-12 {
		t.Fatalf("work range [%g, %g] outside paper's 1-10 ms", st.MinWork, st.MaxWork)
	}
	// Offered load near the 0.55 target.
	if st.OfferedLoad < 0.4 || st.OfferedLoad > 0.7 {
		t.Fatalf("offered load %.3f far from 0.55 target", st.OfferedLoad)
	}
	// Bursty: index of dispersion clearly above Poisson.
	if st.Burstiness < 1.2 {
		t.Fatalf("burstiness %.2f too low for the bursty generator", st.Burstiness)
	}
}

func TestComputeIntensiveHeavier(t *testing.T) {
	mixed, err := Mixed(7, 8, 60).Generate()
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := ComputeIntensive(7, 8, 60).Generate()
	if err != nil {
		t.Fatal(err)
	}
	lm := Summarize(mixed, 8)
	lh := Summarize(heavy, 8)
	if lh.OfferedLoad <= lm.OfferedLoad {
		t.Fatalf("compute-intensive load %.3f not above mixed %.3f", lh.OfferedLoad, lm.OfferedLoad)
	}
	if lh.MeanWork <= lm.MeanWork {
		t.Fatalf("compute-intensive mean work %.4f not above mixed %.4f", lh.MeanWork, lm.MeanWork)
	}
	if lh.MinWork < 5e-3-1e-12 {
		t.Fatalf("compute-intensive has short task %.4f", lh.MinWork)
	}
}

// The paper's headline trace scale: around 60,000 tasks.
func TestSixtyThousandTaskScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large trace in -short mode")
	}
	tr, err := PaperScale(1, 8).Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Tasks)
	if n < 45000 || n > 80000 {
		t.Fatalf("paper-scale trace has %d tasks, want ≈60k", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Mixed(3, 8, 5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != len(tr.Tasks) {
		t.Fatalf("round trip count %d != %d", len(back.Tasks), len(tr.Tasks))
	}
	for i := range tr.Tasks {
		a, b := tr.Tasks[i], back.Tasks[i]
		if a.ID != b.ID || a.Class != b.Class ||
			math.Abs(a.Arrival-b.Arrival) > 1e-9 || math.Abs(a.Work-b.Work) > 1e-9 {
			t.Fatalf("task %d drifted: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing fields": "id,arrival_s,work_s,class\n0,0.5,0.001\n",
		"bad id":         "id,arrival_s,work_s,class\nx,0.5,0.001,web\n",
		"bad arrival":    "id,arrival_s,work_s,class\n0,x,0.001,web\n",
		"bad work":       "id,arrival_s,work_s,class\n0,0.5,x,web\n",
		"unsorted":       "id,arrival_s,work_s,class\n0,1.0,0.001,web\n1,0.5,0.001,web\n",
		"zero work":      "id,arrival_s,work_s,class\n0,0.5,0,web\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceAccessorsEmpty(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 || tr.TotalWork() != 0 || tr.OfferedLoad(8) != 0 {
		t.Fatal("empty trace accessors nonzero")
	}
	st := Summarize(tr, 8)
	if st.Tasks != 0 || st.MinWork != 0 {
		t.Fatalf("empty summary: %+v", st)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	bad := []*Trace{
		{Tasks: []Task{{Arrival: 1, Work: 1e-3}, {Arrival: 0.5, Work: 1e-3}}},
		{Tasks: []Task{{Arrival: -1, Work: 1e-3}}},
		{Tasks: []Task{{Arrival: 0, Work: 0}}},
		{Tasks: []Task{{Arrival: 0, Work: math.NaN()}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPlainPoissonDegenerate(t *testing.T) {
	// HighFrac = 1 with BurstFactor = 1 is plain Poisson; dispersion ~ 1.
	g := &Generator{
		Seed: 5, Duration: 120, NumCores: 8, Utilization: 0.5,
		Mix: StandardMix(), BurstFactor: 1, HighFrac: 1, MeanBurst: 1,
	}
	tr, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(tr, 8)
	if st.Burstiness > 1.35 || st.Burstiness < 0.7 {
		t.Fatalf("Poisson trace dispersion %.3f not near 1", st.Burstiness)
	}
}
