package workload

import "fmt"

// Phase is one stationary segment of a piecewise workload: the
// building block of load curves whose intensity changes over the day
// (a diurnal cycle: quiet overnight, a morning ramp, a sustained peak,
// an evening tail). Zero-valued burst parameters take mild defaults
// (BurstFactor 1.5, HighFrac 0.3, MeanBurst 1 s); a nil Mix takes
// StandardMix.
type Phase struct {
	// Duration is the phase's arrival horizon in seconds.
	Duration float64
	// Utilization is the offered load relative to chip capacity.
	Utilization float64
	Mix         []Class
	BurstFactor float64
	HighFrac    float64
	MeanBurst   float64
}

// GeneratePhases synthesizes one trace whose offered load follows the
// phases in order: each phase runs its own bursty generator and the
// segments are concatenated with arrivals offset by the preceding
// horizons. The result is deterministic under seed — each phase derives
// its own sub-seed, so inserting a phase does not perturb the ones
// before it.
func GeneratePhases(seed int64, nCores int, phases []Phase) (*Trace, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	out := &Trace{}
	offset := 0.0
	for i, ph := range phases {
		g := &Generator{
			Seed:        seed + int64(i+1)*7919, // distinct prime-strided sub-seed per phase
			Duration:    ph.Duration,
			NumCores:    nCores,
			Utilization: ph.Utilization,
			Mix:         ph.Mix,
			BurstFactor: ph.BurstFactor,
			HighFrac:    ph.HighFrac,
			MeanBurst:   ph.MeanBurst,
		}
		if g.Mix == nil {
			g.Mix = StandardMix()
		}
		if g.BurstFactor == 0 {
			g.BurstFactor = 1.5
		}
		if g.HighFrac == 0 {
			g.HighFrac = 0.3
		}
		if g.MeanBurst == 0 {
			g.MeanBurst = 1
		}
		seg, err := g.Generate()
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		for _, t := range seg.Tasks {
			t.ID = len(out.Tasks)
			t.Arrival += offset
			out.Tasks = append(out.Tasks, t)
		}
		offset += ph.Duration
	}
	return out, nil
}

// Diurnal returns the canonical day-shaped phase list over the given
// horizon: a quiet start, a ramp, a saturated peak and a medium tail,
// in equal quarters. The peak deliberately exceeds what the chip can
// clear in real time (utilization 0.95), so backlog builds and the
// thermal controller has real work during the hottest phase.
func Diurnal(horizon float64) []Phase {
	q := horizon / 4
	return []Phase{
		{Duration: q, Utilization: 0.15},
		{Duration: q, Utilization: 0.55},
		{Duration: q, Utilization: 0.95, Mix: ComputeMix()},
		{Duration: q, Utilization: 0.45},
	}
}
