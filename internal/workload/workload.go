// Package workload synthesizes the task traces the paper evaluates on:
// mixes of benchmark tasks "ranging from web-accessing to playing
// multi-media files" (their ref. [26]) with task lengths of 1-10 ms at
// the maximum frequency, bursty arrivals, and around 60,000 tasks
// modeling several hundred seconds of execution.
//
// The originals are proprietary characterizations; these generators are
// the documented substitution (see DESIGN.md): they reproduce the
// properties the evaluation depends on — task length range, offered
// load relative to chip capacity, burstiness — and are deterministic
// under a seed.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Task is one unit of work. The paper defines workload as "the total
// amount of time required for running the task at the highest operating
// frequency", so Work is in seconds-at-fmax.
type Task struct {
	ID      int
	Arrival float64 // seconds since trace start
	Work    float64 // seconds of execution at fmax
	Class   string  // benchmark class label
}

// Trace is a time-ordered task sequence.
type Trace struct {
	Tasks []Task
}

// Validate checks ordering and positivity.
func (tr *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, t := range tr.Tasks {
		if t.Arrival < prev {
			return fmt.Errorf("workload: task %d arrives at %g before predecessor %g", i, t.Arrival, prev)
		}
		if t.Work <= 0 || math.IsNaN(t.Work) || math.IsInf(t.Work, 0) {
			return fmt.Errorf("workload: task %d has invalid work %g", i, t.Work)
		}
		if t.Arrival < 0 || math.IsNaN(t.Arrival) {
			return fmt.Errorf("workload: task %d has invalid arrival %g", i, t.Arrival)
		}
		prev = t.Arrival
	}
	return nil
}

// Duration returns the last arrival time (0 for an empty trace).
func (tr *Trace) Duration() float64 {
	if len(tr.Tasks) == 0 {
		return 0
	}
	return tr.Tasks[len(tr.Tasks)-1].Arrival
}

// TotalWork returns the summed work in core-seconds at fmax.
func (tr *Trace) TotalWork() float64 {
	var w float64
	for _, t := range tr.Tasks {
		w += t.Work
	}
	return w
}

// OfferedLoad returns TotalWork divided by the capacity of n cores over
// the trace duration — the utilization the trace asks of the chip at
// full speed.
func (tr *Trace) OfferedLoad(nCores int) float64 {
	d := tr.Duration()
	if d <= 0 || nCores <= 0 {
		return 0
	}
	return tr.TotalWork() / (d * float64(nCores))
}

// Class is one benchmark family in a mix.
type Class struct {
	Name string
	// MinWork, MaxWork bound the uniform task-length distribution
	// (seconds at fmax).
	MinWork, MaxWork float64
	// Weight is the relative share of tasks drawn from this class.
	Weight float64
}

// MeanWork returns the expected task length of the class.
func (c Class) MeanWork() float64 { return (c.MinWork + c.MaxWork) / 2 }

// Generator synthesizes bursty traces. Arrivals follow a two-state
// (on/off) modulated Poisson process: bursts alternate between a high
// rate and a low rate, with exponentially distributed burst lengths.
type Generator struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the arrival horizon in seconds.
	Duration float64
	// NumCores and Utilization size the offered load: total work ≈
	// Utilization · NumCores · Duration.
	NumCores    int
	Utilization float64
	// Mix is the benchmark composition; weights need not sum to 1.
	Mix []Class
	// BurstFactor >= 1 is the ratio of the high arrival rate to the
	// average rate (1 = plain Poisson).
	BurstFactor float64
	// HighFrac in (0, 1] is the fraction of time spent in the high
	// state. BurstFactor·HighFrac must be <= 1 so the low rate stays
	// nonnegative.
	HighFrac float64
	// MeanBurst is the mean burst (state-holding) time in seconds.
	MeanBurst float64
}

// Validate checks generator parameters.
func (g *Generator) Validate() error {
	switch {
	case g.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %g", g.Duration)
	case g.NumCores <= 0:
		return fmt.Errorf("workload: non-positive core count %d", g.NumCores)
	case g.Utilization <= 0 || g.Utilization > 1.5:
		return fmt.Errorf("workload: utilization %g outside (0, 1.5]", g.Utilization)
	case len(g.Mix) == 0:
		return fmt.Errorf("workload: empty benchmark mix")
	case g.BurstFactor < 1:
		return fmt.Errorf("workload: burst factor %g < 1", g.BurstFactor)
	case g.HighFrac <= 0 || g.HighFrac > 1:
		return fmt.Errorf("workload: high fraction %g outside (0, 1]", g.HighFrac)
	case g.BurstFactor*g.HighFrac > 1+1e-12:
		return fmt.Errorf("workload: burst factor %g × high fraction %g > 1 (negative low rate)", g.BurstFactor, g.HighFrac)
	case g.MeanBurst <= 0:
		return fmt.Errorf("workload: non-positive mean burst %g", g.MeanBurst)
	}
	var weight float64
	for i, c := range g.Mix {
		if c.MinWork <= 0 || c.MaxWork < c.MinWork {
			return fmt.Errorf("workload: class %d (%s) has invalid work range [%g, %g]", i, c.Name, c.MinWork, c.MaxWork)
		}
		if c.Weight < 0 {
			return fmt.Errorf("workload: class %d (%s) has negative weight", i, c.Name)
		}
		weight += c.Weight
	}
	if weight <= 0 {
		return fmt.Errorf("workload: mix weights sum to %g", weight)
	}
	return nil
}

// Generate synthesizes the trace.
func (g *Generator) Generate() (*Trace, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed))

	// Normalize weights and compute the mean task length of the mix.
	var totalWeight, meanWork float64
	for _, c := range g.Mix {
		totalWeight += c.Weight
	}
	cum := make([]float64, len(g.Mix))
	acc := 0.0
	for i, c := range g.Mix {
		acc += c.Weight / totalWeight
		cum[i] = acc
		meanWork += (c.Weight / totalWeight) * c.MeanWork()
	}

	// Average arrival rate to hit the utilization target.
	rateAvg := g.Utilization * float64(g.NumCores) / meanWork
	rateHigh := g.BurstFactor * rateAvg
	rateLow := rateAvg * (1 - g.BurstFactor*g.HighFrac) / (1 - g.HighFrac + 1e-300)
	if g.HighFrac >= 1-1e-12 {
		rateLow = 0 // degenerate: always-high is plain Poisson at rateHigh
	}

	tr := &Trace{}
	now := 0.0
	high := true
	stateEnd := g.drawBurst(rng, high)
	id := 0
	for now < g.Duration {
		rate := rateHigh
		if !high {
			rate = rateLow
		}
		var next float64
		if rate <= 0 {
			next = math.Inf(1)
		} else {
			next = now + rng.ExpFloat64()/rate
		}
		if next >= stateEnd {
			now = stateEnd
			high = !high
			stateEnd = now + g.drawBurst(rng, high)
			continue
		}
		now = next
		if now >= g.Duration {
			break
		}
		ci := sort.SearchFloat64s(cum, rng.Float64())
		if ci == len(cum) {
			ci = len(cum) - 1
		}
		c := g.Mix[ci]
		tr.Tasks = append(tr.Tasks, Task{
			ID:      id,
			Arrival: now,
			Work:    c.MinWork + rng.Float64()*(c.MaxWork-c.MinWork),
			Class:   c.Name,
		})
		id++
	}
	return tr, nil
}

// drawBurst samples a state-holding time. Mean durations are split so
// the long-run fraction of time in the high state equals HighFrac and a
// full high+low cycle averages MeanBurst.
func (g *Generator) drawBurst(rng *rand.Rand, high bool) float64 {
	mean := g.MeanBurst * (1 - g.HighFrac)
	if high {
		mean = g.MeanBurst * g.HighFrac
	}
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// StandardMix is the paper-style benchmark blend: short web tasks,
// medium multimedia tasks, long compute tasks, all within the 1-10 ms
// range the paper reports.
func StandardMix() []Class {
	return []Class{
		{Name: "web", MinWork: 1e-3, MaxWork: 4e-3, Weight: 0.5},
		{Name: "multimedia", MinWork: 2e-3, MaxWork: 8e-3, Weight: 0.3},
		{Name: "compute", MinWork: 5e-3, MaxWork: 10e-3, Weight: 0.2},
	}
}

// ComputeMix is the "most computation intensive benchmark" analogue:
// long tasks only.
func ComputeMix() []Class {
	return []Class{
		{Name: "compute", MinWork: 5e-3, MaxWork: 10e-3, Weight: 1},
	}
}

// Mixed returns the standard mixed-benchmark generator at the given
// horizon: moderate average utilization with pronounced bursts (the
// chip saturates during bursts and idles between them), as in the
// paper's Fig. 6a experiments.
func Mixed(seed int64, nCores int, duration float64) *Generator {
	return &Generator{
		Seed:        seed,
		Duration:    duration,
		NumCores:    nCores,
		Utilization: 0.45,
		Mix:         StandardMix(),
		BurstFactor: 2.2,
		HighFrac:    0.3,
		MeanBurst:   2.0,
	}
}

// PaperScale returns the mixed generator sized to the paper's headline
// trace: around 60,000 tasks. At 45% offered load with the standard mix
// (mean task 4.25 ms) that works out to a ~71 s arrival horizon, a few
// hundred hundred-millisecond windows as in the paper's Fig. 1/2
// snapshots; with queueing under the baseline policies the modeled
// execution stretches well beyond the arrival horizon.
func PaperScale(seed int64, nCores int) *Generator {
	return Mixed(seed, nCores, 71)
}

// AssignStudy returns the generator for the paper's Fig. 11 / §5.4
// assignment-policy study: compute-class tasks at a medium average load
// with strong bursts, so cores are sometimes idle and the assignment
// policy actually has choices to make (a fully saturated chip leaves at
// most one idle core at a time, making every assignment policy
// behave identically).
func AssignStudy(seed int64, nCores int, duration float64) *Generator {
	return &Generator{
		Seed:        seed,
		Duration:    duration,
		NumCores:    nCores,
		Utilization: 0.35,
		Mix:         ComputeMix(),
		BurstFactor: 2.6,
		HighFrac:    0.35,
		MeanBurst:   2.0,
	}
}

// ComputeIntensive returns the heavy generator behind Fig. 6b / Fig. 7:
// sustained near-capacity load of long tasks with strong bursts.
func ComputeIntensive(seed int64, nCores int, duration float64) *Generator {
	return &Generator{
		Seed:        seed,
		Duration:    duration,
		NumCores:    nCores,
		Utilization: 0.85,
		Mix:         ComputeMix(),
		BurstFactor: 1.15,
		HighFrac:    0.8,
		MeanBurst:   3.0,
	}
}

// WriteCSV serializes a trace as "id,arrival,work,class" rows.
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "id,arrival_s,work_s,class")
	for _, t := range tr.Tasks {
		fmt.Fprintf(bw, "%d,%.9f,%.9f,%s\n", t.ID, t.Arrival, t.Work, t.Class)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV and validates it.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: line %d: want 4 fields, got %d", line, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad id: %v", line, err)
		}
		arrival, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad arrival: %v", line, err)
		}
		work, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad work: %v", line, err)
		}
		tr.Tasks = append(tr.Tasks, Task{ID: id, Arrival: arrival, Work: work, Class: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Stats summarizes a trace.
type Stats struct {
	Tasks       int
	Duration    float64
	TotalWork   float64
	MeanWork    float64
	MinWork     float64
	MaxWork     float64
	OfferedLoad float64 // for the core count passed to Summarize
	// Burstiness is the index of dispersion (variance/mean) of arrival
	// counts in 100 ms bins; 1 for Poisson, larger for bursty traces.
	Burstiness float64
}

// Summarize computes trace statistics for a chip with nCores cores.
func Summarize(tr *Trace, nCores int) Stats {
	s := Stats{Tasks: len(tr.Tasks), Duration: tr.Duration(), MinWork: math.Inf(1)}
	if len(tr.Tasks) == 0 {
		s.MinWork = 0
		return s
	}
	for _, t := range tr.Tasks {
		s.TotalWork += t.Work
		s.MinWork = math.Min(s.MinWork, t.Work)
		s.MaxWork = math.Max(s.MaxWork, t.Work)
	}
	s.MeanWork = s.TotalWork / float64(s.Tasks)
	s.OfferedLoad = tr.OfferedLoad(nCores)

	const bin = 0.1
	nBins := int(s.Duration/bin) + 1
	counts := make([]float64, nBins)
	for _, t := range tr.Tasks {
		b := int(t.Arrival / bin)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	var mean, varAcc float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(nBins)
	for _, c := range counts {
		varAcc += (c - mean) * (c - mean)
	}
	varAcc /= float64(nBins)
	if mean > 0 {
		s.Burstiness = varAcc / mean
	}
	return s
}
