package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestGeneratePhasesOrderingAndLoad(t *testing.T) {
	phases := []Phase{
		{Duration: 4, Utilization: 0.1},
		{Duration: 4, Utilization: 0.9, Mix: ComputeMix()},
		{Duration: 4, Utilization: 0.3},
	}
	tr, err := GeneratePhases(7, 8, phases)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("composed trace invalid: %v", err)
	}
	if len(tr.Tasks) == 0 {
		t.Fatal("empty composed trace")
	}
	for i, task := range tr.Tasks {
		if task.ID != i {
			t.Fatalf("task %d renumbered as %d", i, task.ID)
		}
	}
	// Work should concentrate in the heavy middle phase.
	var seg [3]float64
	for _, task := range tr.Tasks {
		idx := int(task.Arrival / 4)
		if idx > 2 {
			idx = 2
		}
		seg[idx] += task.Work
	}
	if !(seg[1] > seg[0] && seg[1] > seg[2]) {
		t.Fatalf("peak phase not heaviest: %v", seg)
	}
	if d := tr.Duration(); d > 12 {
		t.Fatalf("duration %g beyond summed horizons", d)
	}
}

func TestGeneratePhasesDeterministicAndPrefixStable(t *testing.T) {
	phases := Diurnal(8)
	a, err := GeneratePhases(3, 8, phases)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePhases(3, 8, phases)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different composed traces")
	}
	c, err := GeneratePhases(4, 8, phases)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	// The first phase must be unaffected by appending more phases.
	longer, err := GeneratePhases(3, 8, append(append([]Phase(nil), phases...), Phase{Duration: 2, Utilization: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range a.Tasks {
		if task.Arrival >= 2 {
			break
		}
		if math.Abs(longer.Tasks[i].Arrival-task.Arrival) > 1e-12 || longer.Tasks[i].Work != task.Work {
			t.Fatalf("prefix task %d perturbed by appended phase", i)
		}
	}
}

func TestGeneratePhasesErrors(t *testing.T) {
	if _, err := GeneratePhases(1, 8, nil); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := GeneratePhases(1, 8, []Phase{{Duration: -1, Utilization: 0.5}}); err == nil {
		t.Fatal("negative duration accepted")
	}
}
