package floorplan

import "fmt"

// The paper's introduction motivates Pro-Temp with the commercial
// multi-core parts of the day: IBM's Cell ([1]), Sun's Niagara ([2],
// the evaluation platform) and Tilera's 64-core mesh ([4]). Cell and
// Tilera-style plans are provided alongside Niagara so the controller
// can be exercised across heterogeneous and many-core topologies.

// Cell returns a floorplan proportioned after IBM's Cell processor
// ([1]): one large PPE core plus eight SPE cores in two rows, with the
// element-interconnect-bus strip between them and the memory/IO
// controllers on the flanks, on a ~12.5 x 10 mm die:
//
//	y=10 ┌──────┬──────┬──────┬──────┬─────┐
//	     │ SPE5 │ SPE6 │ SPE7 │ SPE8 │ MIC │
//	y=6  ├──────┴──────┴──────┴──────┴─────┤
//	     │              EIB                │
//	y=4  ├──────┬──────┬──────┬──────┬─────┤
//	     │ SPE1 │ SPE2 │ SPE3 │ SPE4 │ PPE │
//	y=0  └──────┴──────┴──────┴──────┴─────┘
//	     x=0    2.5    5     7.5    10   12.5 (mm)
//
// The PPE is a full-width core block; the SPEs are the small vector
// cores. All nine are KindCore and DVFS-controlled.
func Cell() *Floorplan {
	const mm = 1e-3
	blocks := []Block{
		{Name: "EIB", Kind: KindUncore, X: 0, Y: 4 * mm, W: 12.5 * mm, H: 2 * mm},
		{Name: "PPE", Kind: KindCore, X: 10 * mm, Y: 0, W: 2.5 * mm, H: 4 * mm},
		{Name: "MIC", Kind: KindUncore, X: 10 * mm, Y: 6 * mm, W: 2.5 * mm, H: 4 * mm},
	}
	for i := 0; i < 4; i++ {
		blocks = append(blocks, Block{
			Name: fmt.Sprintf("SPE%d", i+1), Kind: KindCore,
			X: float64(i) * 2.5 * mm, Y: 0, W: 2.5 * mm, H: 4 * mm,
		})
		blocks = append(blocks, Block{
			Name: fmt.Sprintf("SPE%d", i+5), Kind: KindCore,
			X: float64(i) * 2.5 * mm, Y: 6 * mm, W: 2.5 * mm, H: 4 * mm,
		})
	}
	return MustNew(blocks)
}

// Tilera64 returns an 8x8 tiled mesh in the style of Tilera's 64-core
// part ([4]): 1.4 mm tiles with cache strips above and below the core
// array. Tiles are named C<r>_<c> by the Grid constructor.
func Tilera64() *Floorplan {
	fp, err := Grid(GridSpec{
		Rows: 8, Cols: 8,
		CoreW: 1.4e-3, CoreH: 1.4e-3,
		CacheH: 1e-3,
	})
	if err != nil {
		// The spec is a fixed literal; failure is a programming error.
		panic(err)
	}
	return fp
}
