package floorplan

import "fmt"

// Block names used by the Niagara floorplan. Experiments refer to cores
// by these names (the paper plots P1 and P2 specifically).
const (
	NiagaraCore1 = "P1"
	NiagaraCore2 = "P2"
	NiagaraXbar  = "XBAR"
)

// Niagara returns the 8-core Sun Niagara floorplan used in the paper's
// evaluation (their Fig. 5), proportioned on a 14 mm x 10 mm die:
//
//	y=10 ┌───────────────────────────────────┐
//	     │     XBAR / DRAM ctl / bridges     │
//	y=8  ├────┬──┬────┬────┬────┬────┬──┬────┤
//	     │L2B │bf│ P5 │ P6 │ P7 │ P8 │bf│L2D │
//	y=4  │────│L │────┼────┼────┼────│R │────│
//	     │L2A │  │ P1 │ P2 │ P3 │ P4 │  │L2C │
//	y=0  └────┴──┴────┴────┴────┴────┴──┴────┘
//	     x=0  2.5 3   5    7    9    11 11.5 14  (mm)
//
// The geometry reproduces the property the paper's Section 5.3 analysis
// rests on: P1, P4, P5 and P8 sit next to the cool L2 arrays, while
// P2, P3, P6 and P7 are sandwiched between hot cores.
func Niagara() *Floorplan {
	const mm = 1e-3
	blocks := []Block{
		// L2 cache banks, left and right columns.
		{Name: "L2A", Kind: KindCache, X: 0, Y: 0, W: 2.5 * mm, H: 4 * mm},
		{Name: "L2B", Kind: KindCache, X: 0, Y: 4 * mm, W: 2.5 * mm, H: 4 * mm},
		{Name: "L2C", Kind: KindCache, X: 11.5 * mm, Y: 0, W: 2.5 * mm, H: 4 * mm},
		{Name: "L2D", Kind: KindCache, X: 11.5 * mm, Y: 4 * mm, W: 2.5 * mm, H: 4 * mm},
		// L2 buffers: thin strips between the cache columns and the cores.
		{Name: "BUFL", Kind: KindCache, X: 2.5 * mm, Y: 0, W: 0.5 * mm, H: 8 * mm},
		{Name: "BUFR", Kind: KindCache, X: 11 * mm, Y: 0, W: 0.5 * mm, H: 8 * mm},
		// Crossbar, DRAM controllers and bridges: full-width top strip.
		{Name: NiagaraXbar, Kind: KindUncore, X: 0, Y: 8 * mm, W: 14 * mm, H: 2 * mm},
	}
	// Two rows of four cores, 2 mm x 4 mm each.
	for i := 0; i < 8; i++ {
		row := i / 4 // 0: P1-P4 (bottom), 1: P5-P8 (top)
		col := i % 4
		blocks = append(blocks, Block{
			Name: fmt.Sprintf("P%d", i+1),
			Kind: KindCore,
			X:    (3 + 2*float64(col)) * mm,
			Y:    4 * float64(row) * mm,
			W:    2 * mm,
			H:    4 * mm,
		})
	}
	return MustNew(blocks)
}
