package floorplan

import (
	"math"
	"testing"
)

func TestCellStructure(t *testing.T) {
	fp := Cell()
	if got := len(fp.CoreIndices()); got != 9 {
		t.Fatalf("Cell has %d cores, want 9 (PPE + 8 SPEs)", got)
	}
	// Full die coverage.
	_, _, w, h := fp.BoundingBox()
	if math.Abs(fp.TotalArea()-w*h) > 1e-12 {
		t.Fatalf("coverage gap: %v vs %v", fp.TotalArea(), w*h)
	}
	// The EIB strip touches every SPE and the PPE/MIC flank.
	eib, ok := fp.IndexOf("EIB")
	if !ok {
		t.Fatal("EIB missing")
	}
	if nb := fp.Neighbors(eib); len(nb) != 10 {
		t.Fatalf("EIB has %d neighbours, want 10", len(nb))
	}
	// The PPE is bigger than any SPE.
	ppe, _ := fp.BlockByName("PPE")
	spe, _ := fp.BlockByName("SPE1")
	if ppe.Area() <= spe.Area()*0.99 {
		t.Fatalf("PPE area %v not larger than SPE %v", ppe.Area(), spe.Area())
	}
}

func TestTilera64Structure(t *testing.T) {
	fp := Tilera64()
	if got := len(fp.CoreIndices()); got != 64 {
		t.Fatalf("Tilera64 has %d cores, want 64", got)
	}
	if fp.NumBlocks() != 66 {
		t.Fatalf("NumBlocks = %d, want 66 (64 tiles + 2 cache strips)", fp.NumBlocks())
	}
	// Interior tile has 4 core neighbours.
	i, ok := fp.IndexOf("C3_3")
	if !ok {
		t.Fatal("C3_3 missing")
	}
	coreN := 0
	for _, j := range fp.Neighbors(i) {
		if fp.Block(j).Kind == KindCore {
			coreN++
		}
	}
	if coreN != 4 {
		t.Fatalf("interior tile has %d core neighbours, want 4", coreN)
	}
}
