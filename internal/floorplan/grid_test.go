package floorplan

import (
	"fmt"
	"testing"
)

// TestManyCoreSizes exercises the 64/256/1024-core evaluation plans the
// distributed-MPC subsystem scales on: the generator must produce the
// requested core count, the interleaved L2 slices, and a connected
// mesh with realistic neighbor structure at every size.
func TestManyCoreSizes(t *testing.T) {
	cases := []struct {
		rows, cols int
		wantCores  int
		wantMid    int // interior cache strips: one after every 2 rows but the last
	}{
		{8, 8, 64, 3},
		{16, 16, 256, 7},
		{32, 32, 1024, 15},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%d", tc.rows, tc.cols), func(t *testing.T) {
			fp, err := ManyCore(tc.rows, tc.cols)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(fp.CoreIndices()); got != tc.wantCores {
				t.Fatalf("cores = %d, want %d", got, tc.wantCores)
			}
			wantBlocks := tc.wantCores + tc.wantMid + 2
			if got := fp.NumBlocks(); got != wantBlocks {
				t.Fatalf("NumBlocks = %d, want %d", got, wantBlocks)
			}
			for m := 0; m < tc.wantMid; m++ {
				i, ok := fp.IndexOf(fmt.Sprintf("L2MID%d", m))
				if !ok {
					t.Fatalf("L2MID%d missing", m)
				}
				if k := fp.Block(i).Kind; k != KindCache {
					t.Fatalf("L2MID%d kind = %v", m, k)
				}
			}
			// A non-edge tile touches exactly 4 blocks: its lateral core
			// neighbors plus, in a band-edge row like row 1, the adjacent
			// L2 slice in place of a core above.
			i, ok := fp.IndexOf("C1_1")
			if !ok {
				t.Fatal("C1_1 missing")
			}
			if nb := fp.Neighbors(i); len(nb) != 4 {
				t.Fatalf("C1_1 neighbors = %d, want 4", len(nb))
			}
			// Connectivity: BFS over the adjacency graph reaches every block,
			// so the synthesized RC network has no isolated islands.
			n := fp.NumBlocks()
			seen := make([]bool, n)
			queue := []int{0}
			seen[0] = true
			for len(queue) > 0 {
				b := queue[0]
				queue = queue[1:]
				for _, j := range fp.Neighbors(b) {
					if !seen[j] {
						seen[j] = true
						queue = append(queue, j)
					}
				}
			}
			for j, ok := range seen {
				if !ok {
					t.Fatalf("block %d (%s) unreachable", j, fp.Block(j).Name)
				}
			}
		})
	}
}

// TestGridCacheEvery pins the interleave layout: strips land between
// bands, never after the final row, and geometry stays overlap-free
// (New would reject otherwise).
func TestGridCacheEvery(t *testing.T) {
	fp, err := Grid(GridSpec{Rows: 4, Cols: 2, CoreW: 1e-3, CoreH: 1e-3, CacheH: 0.5e-3, CacheEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 8 cores + L2BOT + L2TOP + one mid strip (after row 1; none after row 3).
	if fp.NumBlocks() != 11 {
		t.Fatalf("NumBlocks = %d, want 11", fp.NumBlocks())
	}
	mid, ok := fp.IndexOf("L2MID0")
	if !ok {
		t.Fatal("L2MID0 missing")
	}
	// The mid strip separates bands: it must touch cores of row 1 below
	// and row 2 above, 4 core neighbors total.
	if nb := fp.Neighbors(mid); len(nb) != 4 {
		t.Fatalf("L2MID0 neighbors = %d, want 4", len(nb))
	}
	if _, ok := fp.IndexOf("L2MID1"); ok {
		t.Fatal("unexpected strip after the last row")
	}
}

func TestGridCacheEveryRejections(t *testing.T) {
	bad := []GridSpec{
		{Rows: 2, Cols: 2, CoreW: 1, CoreH: 1, CacheEvery: -1},
		{Rows: 2, Cols: 2, CoreW: 1, CoreH: 1, CacheEvery: 1}, // interleave without CacheH
	}
	for i, spec := range bad {
		if _, err := Grid(spec); err == nil {
			t.Errorf("case %d: Grid accepted %+v", i, spec)
		}
	}
}
