package floorplan

import "fmt"

// GridSpec parameterizes a synthetic mesh floorplan: rows x cols cores
// flanked by cache strips above and below, the usual layout of tiled
// many-core parts (e.g. Tilera's 64-core mesh cited in the paper's
// introduction).
type GridSpec struct {
	Rows, Cols int
	// CoreW, CoreH are per-core dimensions in metres.
	CoreW, CoreH float64
	// CacheH is the height of the top and bottom cache strips in metres;
	// zero omits the strips.
	CacheH float64
	// CacheEvery inserts an additional full-width cache strip of height
	// CacheH after every CacheEvery core rows (but not after the last),
	// the repeating core-band / L2-slice pattern of tiled many-core
	// parts. Zero keeps only the top and bottom strips. Requires
	// CacheH > 0 when set.
	CacheEvery int
}

// Grid builds a synthetic floorplan per the spec. Core (r, c) is named
// "C<r>_<c>"; cache strips are "L2TOP", "L2BOT" and — when CacheEvery
// is set — "L2MID<k>" between core bands.
func Grid(spec GridSpec) (*Floorplan, error) {
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs positive dimensions, got %dx%d", spec.Rows, spec.Cols)
	}
	if spec.CoreW <= 0 || spec.CoreH <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs positive core size, got %gx%g", spec.CoreW, spec.CoreH)
	}
	if spec.CacheH < 0 {
		return nil, fmt.Errorf("floorplan: negative cache height %g", spec.CacheH)
	}
	if spec.CacheEvery < 0 {
		return nil, fmt.Errorf("floorplan: negative cache interleave %d", spec.CacheEvery)
	}
	if spec.CacheEvery > 0 && spec.CacheH == 0 {
		return nil, fmt.Errorf("floorplan: cache interleave every %d rows needs a positive cache height", spec.CacheEvery)
	}
	var blocks []Block
	width := float64(spec.Cols) * spec.CoreW
	y := 0.0
	if spec.CacheH > 0 {
		blocks = append(blocks, Block{Name: "L2BOT", Kind: KindCache, X: 0, Y: 0, W: width, H: spec.CacheH})
		y = spec.CacheH
	}
	mid := 0
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			blocks = append(blocks, Block{
				Name: fmt.Sprintf("C%d_%d", r, c),
				Kind: KindCore,
				X:    float64(c) * spec.CoreW,
				Y:    y,
				W:    spec.CoreW,
				H:    spec.CoreH,
			})
		}
		y += spec.CoreH
		if spec.CacheEvery > 0 && (r+1)%spec.CacheEvery == 0 && r != spec.Rows-1 {
			blocks = append(blocks, Block{
				Name: fmt.Sprintf("L2MID%d", mid),
				Kind: KindCache,
				X:    0, Y: y, W: width, H: spec.CacheH,
			})
			mid++
			y += spec.CacheH
		}
	}
	if spec.CacheH > 0 {
		blocks = append(blocks, Block{Name: "L2TOP", Kind: KindCache, X: 0, Y: y, W: width, H: spec.CacheH})
	}
	return New(blocks)
}

// ManyCore builds the synthetic many-core mesh the distributed-MPC
// experiments scale on: rows×cols core tiles with an L2 slice after
// every 2 core rows plus the top/bottom strips, so neighbor
// conductances come out of the same geometric synthesis as the paper's
// Niagara plan rather than hand-tuned couplings. The tile and strip
// dimensions are chosen to keep Niagara's power densities when the
// tiles carry Niagara-class cores: 2.8 mm tiles put a full-speed core
// at ~0.5 W/mm² (Niagara's 4 W over 2×4 mm), and 7 mm strips spread
// the paper's 30% uncore share at ~0.11 W/mm² at every mesh size —
// dense enough that the controller must throttle, sparse enough that
// the chip is controllable at all. ManyCore(8, 8), (16, 16) and
// (32, 32) give the 64-, 256- and 1024-core evaluation points.
func ManyCore(rows, cols int) (*Floorplan, error) {
	return Grid(GridSpec{
		Rows: rows, Cols: cols,
		CoreW: 2.8e-3, CoreH: 2.8e-3,
		CacheH:     7.0e-3,
		CacheEvery: 2,
	})
}
