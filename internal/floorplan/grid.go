package floorplan

import "fmt"

// GridSpec parameterizes a synthetic mesh floorplan: rows x cols cores
// flanked by cache strips above and below, the usual layout of tiled
// many-core parts (e.g. Tilera's 64-core mesh cited in the paper's
// introduction).
type GridSpec struct {
	Rows, Cols int
	// CoreW, CoreH are per-core dimensions in metres.
	CoreW, CoreH float64
	// CacheH is the height of the top and bottom cache strips in metres;
	// zero omits the strips.
	CacheH float64
}

// Grid builds a synthetic floorplan per the spec. Core (r, c) is named
// "C<r>_<c>"; cache strips are "L2TOP" and "L2BOT".
func Grid(spec GridSpec) (*Floorplan, error) {
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs positive dimensions, got %dx%d", spec.Rows, spec.Cols)
	}
	if spec.CoreW <= 0 || spec.CoreH <= 0 {
		return nil, fmt.Errorf("floorplan: grid needs positive core size, got %gx%g", spec.CoreW, spec.CoreH)
	}
	if spec.CacheH < 0 {
		return nil, fmt.Errorf("floorplan: negative cache height %g", spec.CacheH)
	}
	var blocks []Block
	width := float64(spec.Cols) * spec.CoreW
	y0 := spec.CacheH
	if spec.CacheH > 0 {
		blocks = append(blocks,
			Block{Name: "L2BOT", Kind: KindCache, X: 0, Y: 0, W: width, H: spec.CacheH},
			Block{Name: "L2TOP", Kind: KindCache, X: 0, Y: y0 + float64(spec.Rows)*spec.CoreH, W: width, H: spec.CacheH},
		)
	}
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			blocks = append(blocks, Block{
				Name: fmt.Sprintf("C%d_%d", r, c),
				Kind: KindCore,
				X:    float64(c) * spec.CoreW,
				Y:    y0 + float64(r)*spec.CoreH,
				W:    spec.CoreW,
				H:    spec.CoreH,
			})
		}
	}
	return New(blocks)
}
