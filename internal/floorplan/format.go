package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a line-oriented flavour of HotSpot's .flp files,
// extended with a block-kind column:
//
//	# comment
//	<name> <kind> <width_m> <height_m> <left_x_m> <bottom_y_m>
//
// Fields are whitespace-separated; blank lines and #-comments are
// ignored.

// Write serializes the floorplan in the text format.
func Write(w io.Writer, fp *Floorplan) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# floorplan: %d blocks\n", fp.NumBlocks())
	fmt.Fprintf(bw, "# name kind width_m height_m left_x_m bottom_y_m\n")
	for _, b := range fp.Blocks() {
		fmt.Fprintf(bw, "%s %s %.9g %.9g %.9g %.9g\n", b.Name, b.Kind, b.W, b.H, b.X, b.Y)
	}
	return bw.Flush()
}

// Parse reads a floorplan in the text format and validates it with New.
func Parse(r io.Reader) (*Floorplan, error) {
	var blocks []Block
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 6 {
			return nil, fmt.Errorf("floorplan: line %d: want 6 fields, got %d", lineNo, len(fields))
		}
		kind, err := ParseKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("floorplan: line %d: %v", lineNo, err)
		}
		nums := make([]float64, 4)
		for i, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d: bad number %q: %v", lineNo, f, err)
			}
			nums[i] = v
		}
		blocks = append(blocks, Block{
			Name: fields[0], Kind: kind,
			W: nums[0], H: nums[1], X: nums[2], Y: nums[3],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: read: %w", err)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks in input")
	}
	return New(blocks)
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Floorplan, error) {
	return Parse(strings.NewReader(s))
}
