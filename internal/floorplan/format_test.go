package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFormatRoundTrip(t *testing.T) {
	orig := Niagara()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumBlocks() != orig.NumBlocks() {
		t.Fatalf("round trip lost blocks: %d -> %d", orig.NumBlocks(), back.NumBlocks())
	}
	for i := 0; i < orig.NumBlocks(); i++ {
		a, b := orig.Block(i), back.Block(i)
		if a.Name != b.Name || a.Kind != b.Kind {
			t.Fatalf("block %d: %+v != %+v", i, a, b)
		}
		for _, d := range []struct{ x, y float64 }{{a.X, b.X}, {a.Y, b.Y}, {a.W, b.W}, {a.H, b.H}} {
			if math.Abs(d.x-d.y) > 1e-12 {
				t.Fatalf("block %d geometry drifted: %+v != %+v", i, a, b)
			}
		}
	}
	// Adjacency is preserved through the round trip.
	if got, want := len(back.Adjacencies()), len(orig.Adjacencies()); got != want {
		t.Fatalf("adjacency count %d != %d", got, want)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	fp, err := ParseString(`
# a comment

A core 1 1 0 0
B cache 1 1 1 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", fp.NumBlocks())
	}
	if fp.Block(1).Kind != KindCache {
		t.Fatalf("kind = %v", fp.Block(1).Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"wrong field count": "A core 1 1 0\n",
		"bad kind":          "A gpu 1 1 0 0\n",
		"bad number":        "A core one 1 0 0\n",
		"empty input":       "# nothing here\n",
		"invalid geometry":  "A core 0 1 0 0\n",
		"overlapping": "A core 2 2 0 0\n" +
			"B core 2 2 1 1\n",
	}
	for name, input := range cases {
		if _, err := ParseString(input); err == nil {
			t.Errorf("%s: Parse accepted %q", name, input)
		}
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	_, err := ParseString("A core 1 1 0 0\nB core x 1 0 0\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not cite line 2", err)
	}
}
