package floorplan

import (
	"math"
	"strings"
	"testing"
)

func simplePair() []Block {
	return []Block{
		{Name: "A", Kind: KindCore, X: 0, Y: 0, W: 1, H: 1},
		{Name: "B", Kind: KindCore, X: 1, Y: 0, W: 1, H: 1},
	}
}

func TestNewValid(t *testing.T) {
	fp, err := New(simplePair())
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", fp.NumBlocks())
	}
	if i, ok := fp.IndexOf("B"); !ok || i != 1 {
		t.Fatalf("IndexOf(B) = %d, %v", i, ok)
	}
}

func TestNewRejections(t *testing.T) {
	cases := map[string][]Block{
		"empty name":    {{Name: "", W: 1, H: 1}},
		"whitespace":    {{Name: "a b", W: 1, H: 1}},
		"zero width":    {{Name: "A", W: 0, H: 1}},
		"negative size": {{Name: "A", W: 1, H: -1}},
		"nan position":  {{Name: "A", W: 1, H: 1, X: math.NaN()}},
		"duplicate": {
			{Name: "A", W: 1, H: 1},
			{Name: "A", X: 2, W: 1, H: 1},
		},
		"overlap": {
			{Name: "A", W: 2, H: 2},
			{Name: "B", X: 1, Y: 1, W: 2, H: 2},
		},
	}
	for name, blocks := range cases {
		if _, err := New(blocks); err == nil {
			t.Errorf("%s: New accepted invalid input", name)
		}
	}
}

func TestTouchingIsNotOverlap(t *testing.T) {
	if _, err := New(simplePair()); err != nil {
		t.Fatalf("edge-touching blocks rejected: %v", err)
	}
}

func TestSharedEdge(t *testing.T) {
	a := Block{Name: "a", W: 2, H: 2}
	cases := []struct {
		name string
		b    Block
		want float64
	}{
		{"right full", Block{X: 2, Y: 0, W: 1, H: 2}, 2},
		{"right partial", Block{X: 2, Y: 1, W: 1, H: 3}, 1},
		{"top full", Block{X: 0, Y: 2, W: 2, H: 1}, 2},
		{"corner only", Block{X: 2, Y: 2, W: 1, H: 1}, 0},
		{"detached", Block{X: 5, Y: 0, W: 1, H: 1}, 0},
		{"left", Block{X: -1, Y: 0.5, W: 1, H: 1}, 1},
		{"below", Block{X: 0.5, Y: -1, W: 1, H: 1}, 1},
	}
	for _, c := range cases {
		if got := SharedEdge(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: SharedEdge = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSharedEdgeSymmetry(t *testing.T) {
	fp := Niagara()
	for i := 0; i < fp.NumBlocks(); i++ {
		for j := 0; j < fp.NumBlocks(); j++ {
			ij := SharedEdge(fp.Block(i), fp.Block(j))
			ji := SharedEdge(fp.Block(j), fp.Block(i))
			if math.Abs(ij-ji) > 1e-12 {
				t.Fatalf("asymmetric shared edge between %s and %s: %v vs %v",
					fp.Block(i).Name, fp.Block(j).Name, ij, ji)
			}
		}
	}
}

func TestAdjacenciesSimple(t *testing.T) {
	fp := MustNew(simplePair())
	adj := fp.Adjacencies()
	if len(adj) != 1 {
		t.Fatalf("got %d adjacencies, want 1", len(adj))
	}
	if adj[0].I != 0 || adj[0].J != 1 || math.Abs(adj[0].SharedLength-1) > 1e-12 {
		t.Fatalf("adjacency = %+v", adj[0])
	}
}

func TestNeighbors(t *testing.T) {
	fp := MustNew([]Block{
		{Name: "L", Kind: KindCache, X: 0, Y: 0, W: 1, H: 1},
		{Name: "M", Kind: KindCore, X: 1, Y: 0, W: 1, H: 1},
		{Name: "R", Kind: KindCache, X: 2, Y: 0, W: 1, H: 1},
	})
	nb := fp.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(M) = %v", nb)
	}
	if len(fp.Neighbors(0)) != 1 {
		t.Fatalf("Neighbors(L) = %v", fp.Neighbors(0))
	}
}

func TestBoundingBoxAndArea(t *testing.T) {
	fp := MustNew(simplePair())
	x, y, w, h := fp.BoundingBox()
	if x != 0 || y != 0 || w != 2 || h != 1 {
		t.Fatalf("BoundingBox = %v %v %v %v", x, y, w, h)
	}
	if a := fp.TotalArea(); math.Abs(a-2) > 1e-12 {
		t.Fatalf("TotalArea = %v", a)
	}
	empty := &Floorplan{}
	if x, y, w, h := empty.BoundingBox(); x != 0 || y != 0 || w != 0 || h != 0 {
		t.Fatal("empty bounding box not zero")
	}
}

func TestBlockAccessors(t *testing.T) {
	b := Block{Name: "A", X: 1, Y: 2, W: 3, H: 4}
	if b.Area() != 12 {
		t.Errorf("Area = %v", b.Area())
	}
	if b.CenterX() != 2.5 || b.CenterY() != 4 {
		t.Errorf("Center = (%v, %v)", b.CenterX(), b.CenterY())
	}
}

func TestBlockByName(t *testing.T) {
	fp := MustNew(simplePair())
	b, err := fp.BlockByName("A")
	if err != nil || b.Name != "A" {
		t.Fatalf("BlockByName(A) = %+v, %v", b, err)
	}
	if _, err := fp.BlockByName("missing"); err == nil {
		t.Fatal("missing block found")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []BlockKind{KindCore, KindCache, KindUncore} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
	if s := BlockKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestBlocksReturnsCopy(t *testing.T) {
	fp := MustNew(simplePair())
	fp.Blocks()[0].Name = "mutated"
	if fp.Block(0).Name != "A" {
		t.Fatal("Blocks() leaked internal storage")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on invalid plan did not panic")
		}
	}()
	MustNew([]Block{{Name: "", W: 1, H: 1}})
}
