// Package floorplan models chip floorplans: rectangular blocks placed on
// a die, their adjacency (shared edges, which carry lateral heat flow),
// and validation. It ships the Sun Niagara-8 floorplan used throughout
// the paper's evaluation (their Fig. 5) plus synthetic grid floorplans
// for scalability studies.
//
// Dimensions are in metres; the Niagara plan is proportioned after the
// published die photo with a ~12x12 mm die.
package floorplan

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// BlockKind classifies a block's role on the die. The thermal model uses
// it for material defaults; the power model uses it to separate
// frequency-scaled cores from fixed-power infrastructure.
type BlockKind int

const (
	// KindCore is a processing core subject to DVFS.
	KindCore BlockKind = iota
	// KindCache is an SRAM block (L2 banks, buffers).
	KindCache
	// KindUncore is interconnect, memory controllers, I/O bridges.
	KindUncore
)

var kindNames = map[BlockKind]string{
	KindCore:   "core",
	KindCache:  "cache",
	KindUncore: "uncore",
}

// String returns the lower-case kind name used by the text format.
func (k BlockKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// ParseKind converts a kind name back to a BlockKind.
func ParseKind(s string) (BlockKind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("floorplan: unknown block kind %q", s)
}

// Block is an axis-aligned rectangle on the die.
type Block struct {
	Name string
	Kind BlockKind
	// X, Y locate the lower-left corner; W, H are width and height.
	// All in metres.
	X, Y, W, H float64
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// CenterX returns the x coordinate of the block centre.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the y coordinate of the block centre.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Floorplan is an ordered collection of named blocks.
type Floorplan struct {
	blocks []Block
	index  map[string]int
}

// New builds a floorplan from blocks, validating names and geometry.
// Blocks must have unique non-empty names, positive dimensions, and must
// not overlap (touching edges are fine — that is what adjacency means).
func New(blocks []Block) (*Floorplan, error) {
	fp := &Floorplan{
		blocks: make([]Block, len(blocks)),
		index:  make(map[string]int, len(blocks)),
	}
	copy(fp.blocks, blocks)
	for i, b := range fp.blocks {
		if b.Name == "" {
			return nil, fmt.Errorf("floorplan: block %d has empty name", i)
		}
		if strings.ContainsAny(b.Name, " \t\n") {
			return nil, fmt.Errorf("floorplan: block name %q contains whitespace", b.Name)
		}
		if b.W <= 0 || b.H <= 0 {
			return nil, fmt.Errorf("floorplan: block %q has non-positive size %gx%g", b.Name, b.W, b.H)
		}
		if math.IsNaN(b.X) || math.IsNaN(b.Y) || math.IsInf(b.X, 0) || math.IsInf(b.Y, 0) {
			return nil, fmt.Errorf("floorplan: block %q has non-finite position", b.Name)
		}
		if _, dup := fp.index[b.Name]; dup {
			return nil, fmt.Errorf("floorplan: duplicate block name %q", b.Name)
		}
		fp.index[b.Name] = i
	}
	for i := 0; i < len(fp.blocks); i++ {
		for j := i + 1; j < len(fp.blocks); j++ {
			if overlapArea(fp.blocks[i], fp.blocks[j]) > 0 {
				return nil, fmt.Errorf("floorplan: blocks %q and %q overlap",
					fp.blocks[i].Name, fp.blocks[j].Name)
			}
		}
	}
	return fp, nil
}

// MustNew is New that panics on error, for static floorplans.
func MustNew(blocks []Block) *Floorplan {
	fp, err := New(blocks)
	if err != nil {
		panic(err)
	}
	return fp
}

// NumBlocks returns the number of blocks.
func (fp *Floorplan) NumBlocks() int { return len(fp.blocks) }

// Block returns block i (0-based, in insertion order).
func (fp *Floorplan) Block(i int) Block { return fp.blocks[i] }

// Blocks returns a copy of the block list.
func (fp *Floorplan) Blocks() []Block {
	out := make([]Block, len(fp.blocks))
	copy(out, fp.blocks)
	return out
}

// IndexOf returns the index of the named block and whether it exists.
func (fp *Floorplan) IndexOf(name string) (int, bool) {
	i, ok := fp.index[name]
	return i, ok
}

// CoreIndices returns the indices of KindCore blocks in order.
func (fp *Floorplan) CoreIndices() []int {
	var out []int
	for i, b := range fp.blocks {
		if b.Kind == KindCore {
			out = append(out, i)
		}
	}
	return out
}

// TotalArea returns the summed block area in m².
func (fp *Floorplan) TotalArea() float64 {
	var a float64
	for _, b := range fp.blocks {
		a += b.Area()
	}
	return a
}

// BoundingBox returns the minimal axis-aligned rectangle covering all
// blocks, as (x, y, w, h). A floorplan with no blocks returns zeros.
func (fp *Floorplan) BoundingBox() (x, y, w, h float64) {
	if len(fp.blocks) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, b := range fp.blocks {
		minX = math.Min(minX, b.X)
		minY = math.Min(minY, b.Y)
		maxX = math.Max(maxX, b.X+b.W)
		maxY = math.Max(maxY, b.Y+b.H)
	}
	return minX, minY, maxX - minX, maxY - minY
}

// Adjacency describes one shared edge between two blocks.
type Adjacency struct {
	I, J int // block indices, I < J
	// SharedLength is the length of the common edge in metres.
	SharedLength float64
}

// geomTol is the relative tolerance used when deciding whether two block
// edges touch; floorplans built from parsed decimal strings carry small
// rounding errors.
const geomTol = 1e-9

// Adjacencies returns every pair of blocks that share an edge of positive
// length, sorted by (I, J). Corner touching (zero-length contact) does
// not count: no heat flows through a point.
func (fp *Floorplan) Adjacencies() []Adjacency {
	var out []Adjacency
	for i := 0; i < len(fp.blocks); i++ {
		for j := i + 1; j < len(fp.blocks); j++ {
			if l := SharedEdge(fp.blocks[i], fp.blocks[j]); l > 0 {
				out = append(out, Adjacency{I: i, J: j, SharedLength: l})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Neighbors returns the indices of blocks adjacent to block i — the
// paper's Adj_i set.
func (fp *Floorplan) Neighbors(i int) []int {
	var out []int
	for j := range fp.blocks {
		if j == i {
			continue
		}
		if SharedEdge(fp.blocks[i], fp.blocks[j]) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// SharedEdge returns the length of the edge shared by two blocks, or 0 if
// they do not touch along an edge of positive length.
func SharedEdge(a, b Block) float64 {
	tol := geomTol * (1 + math.Max(a.W+a.H, b.W+b.H))
	// Vertical contact: a's right edge meets b's left edge (either order).
	if math.Abs((a.X+a.W)-b.X) <= tol || math.Abs((b.X+b.W)-a.X) <= tol {
		if l := interval(a.Y, a.Y+a.H, b.Y, b.Y+b.H); l > tol {
			return l
		}
	}
	// Horizontal contact: a's top edge meets b's bottom edge (either order).
	if math.Abs((a.Y+a.H)-b.Y) <= tol || math.Abs((b.Y+b.H)-a.Y) <= tol {
		if l := interval(a.X, a.X+a.W, b.X, b.X+b.W); l > tol {
			return l
		}
	}
	return 0
}

// interval returns the overlap length of [a0,a1] and [b0,b1].
func interval(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func overlapArea(a, b Block) float64 {
	tol := geomTol * (1 + math.Max(a.W+a.H, b.W+b.H))
	w := interval(a.X, a.X+a.W, b.X, b.X+b.W)
	h := interval(a.Y, a.Y+a.H, b.Y, b.Y+b.H)
	if w <= tol || h <= tol {
		return 0
	}
	return w * h
}

// ErrNotFound is returned when a named block does not exist.
var ErrNotFound = errors.New("floorplan: block not found")

// BlockByName returns the named block.
func (fp *Floorplan) BlockByName(name string) (Block, error) {
	i, ok := fp.index[name]
	if !ok {
		return Block{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return fp.blocks[i], nil
}
