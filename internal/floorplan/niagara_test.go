package floorplan

import (
	"math"
	"testing"
)

func TestNiagaraStructure(t *testing.T) {
	fp := Niagara()
	if fp.NumBlocks() != 15 {
		t.Fatalf("NumBlocks = %d, want 15 (8 cores + 4 L2 + 2 buffers + xbar)", fp.NumBlocks())
	}
	cores := fp.CoreIndices()
	if len(cores) != 8 {
		t.Fatalf("core count = %d, want 8", len(cores))
	}
	for i, ci := range cores {
		want := "P" + string(rune('1'+i))
		if fp.Block(ci).Name != want {
			t.Errorf("core %d = %q, want %q", i, fp.Block(ci).Name, want)
		}
	}
}

func TestNiagaraNoGapsInCoreRows(t *testing.T) {
	fp := Niagara()
	// Die must be fully covered: total block area equals bounding box area.
	x, y, w, h := fp.BoundingBox()
	if x != 0 || y != 0 {
		t.Fatalf("bounding box origin (%v, %v)", x, y)
	}
	if math.Abs(fp.TotalArea()-w*h) > 1e-12 {
		t.Fatalf("coverage gap: blocks %v m², box %v m²", fp.TotalArea(), w*h)
	}
}

// The paper's Section 5.3 relies on this geometry: P1, P4, P5, P8 touch
// the cache/buffer column; P2, P3, P6, P7 touch cores on both sides.
func TestNiagaraPeripheryVsMiddle(t *testing.T) {
	fp := Niagara()
	touchesCache := func(name string) bool {
		i, ok := fp.IndexOf(name)
		if !ok {
			t.Fatalf("missing block %s", name)
		}
		for _, j := range fp.Neighbors(i) {
			if fp.Block(j).Kind == KindCache {
				return true
			}
		}
		return false
	}
	for _, p := range []string{"P1", "P4", "P5", "P8"} {
		if !touchesCache(p) {
			t.Errorf("periphery core %s does not touch a cache", p)
		}
	}
	for _, p := range []string{"P2", "P3", "P6", "P7"} {
		if touchesCache(p) {
			t.Errorf("middle core %s unexpectedly touches a cache", p)
		}
	}
}

func TestNiagaraMiddleCoresFlankedByCores(t *testing.T) {
	fp := Niagara()
	for _, p := range []string{"P2", "P3", "P6", "P7"} {
		i, _ := fp.IndexOf(p)
		var coreNeighbors int
		for _, j := range fp.Neighbors(i) {
			if fp.Block(j).Kind == KindCore {
				coreNeighbors++
			}
		}
		if coreNeighbors < 3 {
			t.Errorf("%s has %d core neighbours, want >= 3 (left, right, above/below)", p, coreNeighbors)
		}
	}
}

func TestNiagaraXbarSpansTop(t *testing.T) {
	fp := Niagara()
	xb, err := fp.BlockByName(NiagaraXbar)
	if err != nil {
		t.Fatal(err)
	}
	_, _, w, _ := fp.BoundingBox()
	if math.Abs(xb.W-w) > 1e-12 {
		t.Errorf("xbar width %v != die width %v", xb.W, w)
	}
	if xb.Kind != KindUncore {
		t.Errorf("xbar kind = %v", xb.Kind)
	}
}

func TestGrid(t *testing.T) {
	fp, err := Grid(GridSpec{Rows: 2, Cols: 3, CoreW: 1e-3, CoreH: 1e-3, CacheH: 0.5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 8 { // 6 cores + 2 cache strips
		t.Fatalf("NumBlocks = %d, want 8", fp.NumBlocks())
	}
	if len(fp.CoreIndices()) != 6 {
		t.Fatalf("cores = %d, want 6", len(fp.CoreIndices()))
	}
	// Interior adjacency: core (0,1) must touch 4 neighbours: two cores in
	// its row, the core above, and the bottom cache strip.
	i, ok := fp.IndexOf("C0_1")
	if !ok {
		t.Fatal("C0_1 missing")
	}
	if nb := fp.Neighbors(i); len(nb) != 4 {
		t.Fatalf("C0_1 neighbours = %d, want 4", len(nb))
	}
}

func TestGridNoCache(t *testing.T) {
	fp, err := Grid(GridSpec{Rows: 2, Cols: 2, CoreW: 1, CoreH: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", fp.NumBlocks())
	}
}

func TestGridRejections(t *testing.T) {
	bad := []GridSpec{
		{Rows: 0, Cols: 1, CoreW: 1, CoreH: 1},
		{Rows: 1, Cols: -1, CoreW: 1, CoreH: 1},
		{Rows: 1, Cols: 1, CoreW: 0, CoreH: 1},
		{Rows: 1, Cols: 1, CoreW: 1, CoreH: 1, CacheH: -1},
	}
	for i, spec := range bad {
		if _, err := Grid(spec); err == nil {
			t.Errorf("case %d: Grid accepted %+v", i, spec)
		}
	}
}
