package dmpc_test

import (
	"math/rand"
	"testing"

	"protemp/internal/dmpc"
	"protemp/internal/floorplan"
	"protemp/internal/thermal"
)

// checkPartition asserts the structural invariants every partition must
// satisfy: the clusters cover every block (and every core) exactly
// once, every cluster owns at least one core, every cross-cluster
// conductance appears in exactly one consensus constraint with the
// model's coupling value, and each cluster's halo is exactly its
// outside neighborhood.
func checkPartition(t *testing.T, fp *floorplan.Floorplan, model *thermal.RCModel, p *dmpc.Partition) {
	t.Helper()
	n := fp.NumBlocks()
	if len(p.Assign) != n {
		t.Fatalf("Assign has %d entries for %d blocks", len(p.Assign), n)
	}
	seen := make([]int, n)
	coreSeen := make(map[int]int)
	for c, cl := range p.Clusters {
		if len(cl.Cores) == 0 {
			t.Fatalf("cluster %d owns no cores", c)
		}
		for _, b := range cl.Blocks {
			seen[b]++
			if p.Assign[b] != c {
				t.Fatalf("block %d in cluster %d but Assign says %d", b, c, p.Assign[b])
			}
		}
		for _, b := range cl.Cores {
			coreSeen[b]++
			if fp.Block(b).Kind != floorplan.KindCore {
				t.Fatalf("cluster %d lists non-core block %d as core", c, b)
			}
		}
	}
	for b, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("block %d covered %d times", b, cnt)
		}
	}
	for _, b := range fp.CoreIndices() {
		if coreSeen[b] != 1 {
			t.Fatalf("core block %d covered %d times", b, coreSeen[b])
		}
	}

	// Every cross-cluster conductance in exactly one consensus
	// constraint, with the model's coupling value.
	g := model.Conductance()
	type pair struct{ i, j int }
	want := make(map[pair]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := -g.At(i, j); w > 0 && p.Assign[i] != p.Assign[j] {
				want[pair{i, j}] = w
			}
		}
	}
	got := make(map[pair]int)
	for _, e := range p.Boundary {
		if e.I >= e.J {
			t.Fatalf("boundary edge not ordered: %+v", e)
		}
		w, ok := want[pair{e.I, e.J}]
		if !ok {
			t.Fatalf("boundary edge %d-%d is not a cross-cluster conductance", e.I, e.J)
		}
		if e.G != w {
			t.Fatalf("boundary edge %d-%d has G=%g, model says %g", e.I, e.J, e.G, w)
		}
		if e.CI != p.Assign[e.I] || e.CJ != p.Assign[e.J] {
			t.Fatalf("boundary edge %d-%d cluster tags %d/%d, Assign says %d/%d",
				e.I, e.J, e.CI, e.CJ, p.Assign[e.I], p.Assign[e.J])
		}
		got[pair{e.I, e.J}]++
	}
	for pr, cnt := range got {
		if cnt != 1 {
			t.Fatalf("conductance %v appears in %d consensus constraints", pr, cnt)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d consensus constraints for %d cross-cluster conductances", len(got), len(want))
	}

	// Halo = exactly the outside neighborhood.
	for c, cl := range p.Clusters {
		wantHalo := make(map[int]bool)
		for _, b := range cl.Blocks {
			for _, j := range fp.Neighbors(b) {
				if p.Assign[j] != c {
					wantHalo[j] = true
				}
			}
		}
		if len(wantHalo) != len(cl.Halo) {
			t.Fatalf("cluster %d halo has %d blocks, want %d", c, len(cl.Halo), len(wantHalo))
		}
		for _, b := range cl.Halo {
			if !wantHalo[b] {
				t.Fatalf("cluster %d halo lists %d, not an outside neighbor", c, b)
			}
		}
	}
}

func partitionCase(t *testing.T, rows, cols, cacheEvery, k int) {
	t.Helper()
	cacheH := 1e-3
	if cacheEvery < 0 {
		cacheEvery, cacheH = 0, 0
	}
	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: rows, Cols: cols,
		CoreW: 1.4e-3, CoreH: 1.4e-3,
		CacheH: cacheH, CacheEvery: cacheEvery,
	})
	if err != nil {
		t.Fatalf("grid %dx%d: %v", rows, cols, err)
	}
	model, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p, err := dmpc.NewPartition(fp, model, k)
	if err != nil {
		t.Fatalf("partition %dx%d k=%d: %v", rows, cols, k, err)
	}
	wantK := k
	if wantK < 1 {
		wantK = 1
	}
	if nc := len(fp.CoreIndices()); wantK > nc {
		wantK = nc
	}
	if p.K != wantK {
		t.Fatalf("K = %d, want %d (requested %d)", p.K, wantK, k)
	}
	checkPartition(t, fp, model, p)
}

// TestPartitionProperty fuzzes grid sizes × cluster counts (seeded, so
// failures replay) and checks every invariant on each draw, including
// cluster counts beyond the core count (clamped) and below one.
func TestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		cacheEvery := rng.Intn(4) - 1 // -1 = no caches at all
		k := rng.Intn(rows*cols+3) - 1
		partitionCase(t, rows, cols, cacheEvery, k)
	}
}

// TestPartitionNiagara pins the paper's plan: a single cluster is the
// degenerate centralized case (no consensus constraints), and a
// multi-cluster split keeps the invariants.
func TestPartitionNiagara(t *testing.T) {
	fp := floorplan.Niagara()
	model, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := dmpc.NewPartition(fp, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.K != 1 || len(p1.Boundary) != 0 || len(p1.Clusters[0].Halo) != 0 {
		t.Fatalf("k=1 partition not degenerate: K=%d boundary=%d halo=%d",
			p1.K, len(p1.Boundary), len(p1.Clusters[0].Halo))
	}
	if got := len(p1.Clusters[0].Blocks); got != fp.NumBlocks() {
		t.Fatalf("k=1 cluster holds %d blocks, want %d", got, fp.NumBlocks())
	}
	checkPartition(t, fp, model, p1)

	p4, err := dmpc.NewPartition(fp, model, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p4.K != 4 || len(p4.Boundary) == 0 {
		t.Fatalf("k=4 partition: K=%d boundary=%d", p4.K, len(p4.Boundary))
	}
	checkPartition(t, fp, model, p4)
}

// FuzzPartition is the native-fuzz spelling of the property test.
func FuzzPartition(f *testing.F) {
	f.Add(2, 3, 0, 2)
	f.Add(4, 4, 2, 5)
	f.Add(1, 1, -1, 1)
	f.Add(8, 8, 4, 8)
	f.Fuzz(func(t *testing.T, rows, cols, cacheEvery, k int) {
		rows = 1 + abs(rows)%8
		cols = 1 + abs(cols)%8
		cacheEvery = abs(cacheEvery)%4 - 1
		k = abs(k)%(rows*cols+2) - 1
		partitionCase(t, rows, cols, cacheEvery, k)
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
