package dmpc

import (
	"context"
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/metrics"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

func niagaraSolver(t *testing.T, opts Options) *Solver {
	t.Helper()
	chip, err := power.NewChip(floorplan.Niagara(), power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Chip:   chip,
		Params: thermal.DefaultParams(),
		Dt:     1e-3,
		Steps:  100,
		TMax:   100,
		Opts:   opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveBasic(t *testing.T) {
	s := niagaraSolver(t, Options{Clusters: 2})
	hist := &metrics.Histogram{}
	s.ClusterNanos = hist
	a, stats, err := s.Solve(context.Background(), 80, nil, 0.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible || len(a.Freqs) != 8 {
		t.Fatalf("assignment: feasible=%v cores=%d", a.Feasible, len(a.Freqs))
	}
	for k, f := range a.Freqs {
		if f < 0 || f > s.Chip().FMax() {
			t.Fatalf("core %d frequency %g out of range", k, f)
		}
	}
	if stats.OuterIters < 1 || stats.ClusterSolves < 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if hist.Count() != uint64(stats.ClusterSolves) {
		t.Fatalf("cluster latency histogram has %d samples for %d solves", hist.Count(), stats.ClusterSolves)
	}
	// A second window from a mild state should ride the warm chain.
	_, stats2, err := s.Solve(context.Background(), 80, nil, 0.6e9)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.WarmHits == 0 {
		t.Fatalf("no warm hits on the second window: %+v", stats2)
	}
}

func TestInvalidateResetsWarmAndDuals(t *testing.T) {
	s := niagaraSolver(t, Options{Clusters: 2})
	if _, _, err := s.Solve(context.Background(), 85, nil, 0.7e9); err != nil {
		t.Fatal(err)
	}
	for c := range s.lambda {
		s.lambda[c][0] = 3.5 // pretend consensus state accumulated
	}
	s.Invalidate()
	for c, sub := range s.subs {
		if sub.ol.Warm() {
			t.Fatalf("cluster %d still warm after Invalidate", c)
		}
		for hi, l := range s.lambda[c] {
			if l != 0 {
				t.Fatalf("cluster %d dual %d = %g after Invalidate", c, hi, l)
			}
		}
	}
}

// TestFallbackCentralized forces the consensus loop to give up after
// one iteration with an unreachable tolerance; on a chip under the
// FallbackCores limit the centralized rung must produce the decision.
func TestFallbackCentralized(t *testing.T) {
	s := niagaraSolver(t, Options{Clusters: 2, MaxOuter: 1, PrimalTolC: 1e-12, AcceptTolC: 1e-12})
	a, stats, err := s.Solve(context.Background(), 85, nil, 0.7e9)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback || stats.Converged {
		t.Fatalf("expected fallback, got %+v", stats)
	}
	if !a.Feasible || len(a.Freqs) != 8 {
		t.Fatalf("fallback assignment: %+v", a)
	}
	if s.central == nil {
		t.Fatal("centralized rung never compiled")
	}
}

// TestFallbackWorstCase forces the conservative rung (FallbackCores
// below the chip size): every halo pinned to TMax must still yield a
// usable, in-range decision.
func TestFallbackWorstCase(t *testing.T) {
	s := niagaraSolver(t, Options{Clusters: 2, MaxOuter: 1, PrimalTolC: 1e-12, AcceptTolC: 1e-12, FallbackCores: 1})
	a, stats, err := s.Solve(context.Background(), 85, nil, 0.7e9)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Fatalf("expected fallback, got %+v", stats)
	}
	if s.central != nil {
		t.Fatal("worst-case rung should not compile the centralized solver")
	}
	for k, f := range a.Freqs {
		if f < 0 || f > s.Chip().FMax() {
			t.Fatalf("core %d frequency %g out of range", k, f)
		}
	}
}

// TestManyCoreSolve exercises the scaling target: a 64-core mesh under
// the default partition solves windows without ever compiling a dense
// full-chip problem.
func TestManyCoreSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("many-core solve in short mode")
	}
	fp, err := floorplan.ManyCore(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Chip:   chip,
		Params: thermal.DefaultParams(),
		Dt:     0.4e-3,
		Steps:  100,
		TMax:   100,
		Opts:   Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Clusters() != 8 {
		t.Fatalf("default clusters = %d, want 8", s.Clusters())
	}
	a, stats, err := s.Solve(context.Background(), 75, nil, 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Freqs) != 64 {
		t.Fatalf("%d freqs for 64 cores", len(a.Freqs))
	}
	if stats.ClusterSolves < 8 {
		t.Fatalf("stats: %+v", stats)
	}
	if s.central != nil {
		t.Fatal("dense centralized problem was compiled")
	}
	if a.AvgFreq <= 0 {
		t.Fatalf("average frequency %g", a.AvgFreq)
	}
}

func TestConfigRejections(t *testing.T) {
	chip, err := power.NewChip(floorplan.Niagara(), power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Params: thermal.DefaultParams(), Dt: 1e-3, Steps: 100, TMax: 100},
		{Chip: chip, Params: thermal.DefaultParams(), Dt: 0, Steps: 100, TMax: 100},
		{Chip: chip, Params: thermal.DefaultParams(), Dt: 1e-3, Steps: 0, TMax: 100},
		{Chip: chip, Params: thermal.DefaultParams(), Dt: 1e-3, Steps: 100, TMax: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
	if _, _, err := niagaraSolver(t, Options{}).Solve(context.Background(), 80, make([]float64, 3), 0.5e9); err == nil {
		t.Error("short t0 accepted")
	}
}
