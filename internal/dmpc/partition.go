// Package dmpc decomposes the paper's centralized per-window convex
// program into thermally-coupled cluster subproblems coordinated by
// ADMM-style dual updates on shared boundary temperatures — the layer
// that scales the online MPC path from the 8-core Niagara plan to
// synthetic 256–1024-core meshes, where one dense interior-point solve
// per window is intractable.
//
// The decomposition is spatial: the floorplan's blocks are partitioned
// into K contiguous clusters over the RC model's conductance graph, and
// each cluster solves the full Pro-Temp program on its own sub-chip —
// its member blocks plus a one-block "halo" of boundary neighbors whose
// temperatures it observes but does not control. Because the RC
// synthesis is purely geometric, every intra-cluster conductance of a
// sub-chip equals its full-chip counterpart; only the coupling across
// cluster boundaries is approximated, and that is exactly the part the
// consensus iteration repairs.
package dmpc

import (
	"fmt"
	"sort"

	"protemp/internal/floorplan"
	"protemp/internal/thermal"
)

// Cluster is one cell of a Partition: the block set a cluster
// subproblem controls, plus the halo of outside blocks it observes.
type Cluster struct {
	// Blocks holds the member block indices, ascending.
	Blocks []int
	// Cores holds the member core-block indices (a subset of Blocks),
	// ascending. Every cluster owns at least one core.
	Cores []int
	// Halo holds the non-member blocks adjacent to some member,
	// ascending — the boundary temperatures this cluster's subproblem
	// takes as (dual-adjusted) observations.
	Halo []int
}

// BoundaryEdge is one thermal conductance crossing a cluster boundary
// — one consensus constraint of the distributed program. Every
// cross-cluster adjacency appears in exactly one BoundaryEdge.
type BoundaryEdge struct {
	// I, J are the coupled block indices, I < J.
	I, J int
	// CI, CJ are the clusters owning I and J respectively.
	CI, CJ int
	// G is the coupling conductance in W/K.
	G float64
}

// Partition is a disjoint cover of a floorplan's blocks by K
// thermally-contiguous clusters, with the cross-cluster coupling
// enumerated as consensus constraints.
type Partition struct {
	// K is the number of clusters.
	K int
	// Assign maps block index to cluster index.
	Assign []int
	// Clusters holds the per-cluster block sets.
	Clusters []Cluster
	// Boundary lists every cross-cluster conductance exactly once.
	Boundary []BoundaryEdge
}

// NewPartition partitions the floorplan into k thermally-coupled
// clusters by greedy seeded region growing over the RC model's
// conductance graph: k core seeds are spread by farthest-point
// sampling on graph hops, then clusters claim their strongest-coupled
// unassigned neighbor in round-robin turns, which keeps them contiguous
// and near-balanced. k is clamped to [1, NumCores]. The result is
// deterministic for a given floorplan and model.
func NewPartition(fp *floorplan.Floorplan, model *thermal.RCModel, k int) (*Partition, error) {
	n := fp.NumBlocks()
	cores := fp.CoreIndices()
	if len(cores) == 0 {
		return nil, fmt.Errorf("dmpc: floorplan has no cores")
	}
	if k < 1 {
		k = 1
	}
	if k > len(cores) {
		k = len(cores)
	}
	g := model.Conductance()
	if g.Rows() != n {
		return nil, fmt.Errorf("dmpc: conductance is %d×%d for %d blocks", g.Rows(), g.Cols(), n)
	}
	// Adjacency with positive coupling weights: the conductance matrix
	// stores -g_ij off-diagonal.
	adj := make([][]int, n)
	weight := func(i, j int) float64 { return -g.At(i, j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && weight(i, j) > 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}

	seeds := spreadSeeds(adj, cores, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for c, s := range seeds {
		assign[s] = c
	}

	// Round-robin region growing: each turn, cluster c claims the
	// unassigned block with the strongest total conductance into c's
	// current members. One claim per cluster per round bounds the size
	// skew at one block per round.
	for remaining := n - k; remaining > 0; {
		progress := false
		for c := 0; c < k && remaining > 0; c++ {
			best, bestW := -1, 0.0
			for b := 0; b < n; b++ {
				if assign[b] != -1 {
					continue
				}
				var w float64
				for _, j := range adj[b] {
					if assign[j] == c {
						w += weight(b, j)
					}
				}
				if w > bestW {
					best, bestW = b, w
				}
			}
			if best >= 0 {
				assign[best] = c
				remaining--
				progress = true
			}
		}
		if !progress {
			// Disconnected leftovers (no coupling into any cluster):
			// deterministic catch-all.
			for b := 0; b < n; b++ {
				if assign[b] == -1 {
					assign[b] = 0
					remaining--
				}
			}
		}
	}

	p := &Partition{K: k, Assign: assign, Clusters: make([]Cluster, k)}
	for b := 0; b < n; b++ {
		c := &p.Clusters[assign[b]]
		c.Blocks = append(c.Blocks, b)
		if fp.Block(b).Kind == floorplan.KindCore {
			c.Cores = append(c.Cores, b)
		}
	}
	haloSeen := make([]map[int]bool, k)
	for c := range haloSeen {
		haloSeen[c] = make(map[int]bool)
	}
	for i := 0; i < n; i++ {
		for _, j := range adj[i] {
			if assign[i] == assign[j] {
				continue
			}
			if !haloSeen[assign[i]][j] {
				haloSeen[assign[i]][j] = true
				p.Clusters[assign[i]].Halo = append(p.Clusters[assign[i]].Halo, j)
			}
			if i < j {
				p.Boundary = append(p.Boundary, BoundaryEdge{
					I: i, J: j, CI: assign[i], CJ: assign[j], G: weight(i, j),
				})
			}
		}
	}
	for c := range p.Clusters {
		sort.Ints(p.Clusters[c].Halo)
	}
	sort.Slice(p.Boundary, func(a, b int) bool {
		if p.Boundary[a].I != p.Boundary[b].I {
			return p.Boundary[a].I < p.Boundary[b].I
		}
		return p.Boundary[a].J < p.Boundary[b].J
	})
	return p, nil
}

// spreadSeeds picks k core blocks spread over the block graph by
// farthest-point sampling on hop distance: the lowest-indexed core
// first, then repeatedly the core farthest from every chosen seed
// (lowest index breaking ties; unreachable counts as farthest).
func spreadSeeds(adj [][]int, cores []int, k int) []int {
	seeds := []int{cores[0]}
	for len(seeds) < k {
		dist := hopDistances(adj, seeds)
		best, bestD := -1, -1
		for _, c := range cores {
			if dist[c] == 0 {
				continue // already a seed
			}
			d := dist[c]
			if d < 0 { // unreachable: farthest possible
				d = len(adj) + 1
			}
			if d > bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			break // fewer distinct cores than k after clamping — cannot happen
		}
		seeds = append(seeds, best)
	}
	return seeds
}

// hopDistances returns the multi-source BFS hop distance from the seed
// set; -1 marks unreachable blocks.
func hopDistances(adj [][]int, seeds []int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(adj))
	for _, s := range seeds {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, j := range adj[b] {
			if dist[j] < 0 {
				dist[j] = dist[b] + 1
				queue = append(queue, j)
			}
		}
	}
	return dist
}
