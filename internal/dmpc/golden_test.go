package dmpc_test

import (
	"context"
	"math"
	"testing"

	"protemp/internal/core"
	"protemp/internal/dmpc"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/power"
	"protemp/internal/sense"
	"protemp/internal/sim"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

const (
	goldenDt    = 1e-3
	goldenSteps = 100
	goldenTMax  = 100.0
)

type goldenRig struct {
	chip   *power.Chip
	disc   *thermal.Discrete
	window *thermal.WindowResponse
	params thermal.Params
}

func newGoldenRig(t *testing.T) *goldenRig {
	t.Helper()
	fp := floorplan.Niagara()
	params := thermal.DefaultParams()
	chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	model, err := thermal.NewRC(fp, params)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := model.Discretize(goldenDt)
	if err != nil {
		t.Fatal(err)
	}
	window, err := disc.Window(goldenSteps)
	if err != nil {
		t.Fatal(err)
	}
	return &goldenRig{chip: chip, disc: disc, window: window, params: params}
}

func (r *goldenRig) trace(t *testing.T, seed int64) *workload.Trace {
	t.Helper()
	tr, err := workload.Mixed(seed, r.chip.NumCores(), 1.5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func (r *goldenRig) dmpcSolver(t *testing.T, v core.Variant, clusters int) *dmpc.Solver {
	t.Helper()
	sol, err := dmpc.New(dmpc.Config{
		Chip:    r.chip,
		Params:  r.params,
		Dt:      goldenDt,
		Steps:   goldenSteps,
		TMax:    goldenTMax,
		Variant: v,
		Opts:    dmpc.Options{Clusters: clusters},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// recorder captures every window decision a policy makes.
type recorder struct {
	inner     sim.Policy
	decisions []linalg.Vector
}

func (r *recorder) Name() string { return r.inner.Name() }
func (r *recorder) Decide(st sim.WindowState) linalg.Vector {
	v := r.inner.Decide(st)
	r.decisions = append(r.decisions, v.Clone())
	return v
}

func (r *goldenRig) run(t *testing.T, pol sim.Policy, seed int64, sn *sim.Sensing) (*sim.Result, *recorder) {
	t.Helper()
	rec := &recorder{inner: pol}
	res, err := sim.Run(context.Background(), sim.Config{
		Chip:    r.chip,
		Disc:    r.disc,
		Policy:  rec,
		Trace:   r.trace(t, seed),
		Window:  goldenDt * goldenSteps,
		TMax:    goldenTMax,
		T0:      82,
		MaxTime: 5,
		Sensing: sn,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// maxFreqDiff returns the largest per-core frequency difference (Hz)
// across the two decision sequences.
func maxFreqDiff(t *testing.T, a, b []linalg.Vector) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d windows", len(a), len(b))
	}
	var worst float64
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatalf("window %d: %d vs %d cores", w, len(a[w]), len(b[w]))
		}
		for k := range a[w] {
			if d := math.Abs(a[w][k] - b[w][k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestGoldenSingleClusterMatchesCentralized pins the distributed
// solver's degenerate case against the centralized online policy on
// the paper's 8-core plan, for all three model variants: with one
// cluster the sub-chip is the whole chip, so the closed-loop decision
// sequence must match the centralized solver within solver tolerance.
func TestGoldenSingleClusterMatchesCentralized(t *testing.T) {
	r := newGoldenRig(t)
	const tolHz = 1e3 // 1e-6 of fmax: well inside the duality-gap tolerance
	for _, v := range []core.Variant{core.VariantVariable, core.VariantUniform, core.VariantGradient} {
		t.Run(v.String(), func(t *testing.T) {
			central := &sim.ProTempOnline{Chip: r.chip, Window: r.window, TMax: goldenTMax, Variant: v}
			distributed := &sim.ProTempDMPC{Solver: r.dmpcSolver(t, v, 1)}
			resC, recC := r.run(t, central, 11, nil)
			resD, recD := r.run(t, distributed, 11, nil)
			if d := maxFreqDiff(t, recC.decisions, recD.decisions); d > tolHz {
				t.Fatalf("decisions diverge by %g Hz (> %g)", d, tolHz)
			}
			if d := math.Abs(resC.MaxCoreTemp - resD.MaxCoreTemp); d > 1e-6 {
				t.Fatalf("MaxCoreTemp differs by %g °C", d)
			}
			if distributed.Fallbacks != 0 {
				t.Fatalf("single-cluster run took %d fallbacks", distributed.Fallbacks)
			}
			if distributed.Solves == 0 || len(recD.decisions) == 0 {
				t.Fatal("distributed policy never solved")
			}
		})
	}
}

// TestGoldenDropoutBurst repeats the pin under a sensor-dropout burst:
// degraded windows invalidate every cluster's warm state and the
// consensus duals, and the distributed trajectory must still track the
// centralized one exactly in the single-cluster case.
func TestGoldenDropoutBurst(t *testing.T) {
	r := newGoldenRig(t)
	sn := func() *sim.Sensing {
		return &sim.Sensing{
			Sensors: []sense.Config{{DropoutProb: 0.95}},
			Seed:    3,
		}
	}
	central := &sim.ProTempOnline{Chip: r.chip, Window: r.window, TMax: goldenTMax}
	distributed := &sim.ProTempDMPC{Solver: r.dmpcSolver(t, core.VariantVariable, 1)}
	resC, recC := r.run(t, central, 12, sn())
	resD, recD := r.run(t, distributed, 12, sn())
	if resC.Sense == nil || resC.Sense.DegradedWindows == 0 {
		t.Fatalf("dropout burst produced no degraded windows (sense=%+v)", resC.Sense)
	}
	if d := maxFreqDiff(t, recC.decisions, recD.decisions); d > 1e3 {
		t.Fatalf("decisions diverge by %g Hz under dropout", d)
	}
	if d := math.Abs(resC.MaxCoreTemp - resD.MaxCoreTemp); d > 1e-6 {
		t.Fatalf("MaxCoreTemp differs by %g °C under dropout", d)
	}
}

// TestGoldenMultiClusterStaysSafe checks the genuinely distributed
// regime on the paper's plan: a 2-cluster split must stay within the
// thermal limit closed-loop and keep doing useful work, with consensus
// metrics populated.
func TestGoldenMultiClusterStaysSafe(t *testing.T) {
	r := newGoldenRig(t)
	distributed := &sim.ProTempDMPC{Solver: r.dmpcSolver(t, core.VariantVariable, 2)}
	res, rec := r.run(t, distributed, 13, nil)
	if len(rec.decisions) == 0 {
		t.Fatal("no windows decided")
	}
	if res.MaxCoreTemp > goldenTMax+0.5 {
		t.Fatalf("multi-cluster run peaked at %g °C (limit %g)", res.MaxCoreTemp, goldenTMax)
	}
	if res.Completed == 0 {
		t.Fatal("no tasks completed")
	}
	if distributed.OuterIters < distributed.Solves {
		t.Fatalf("outer iterations %d < windows %d", distributed.OuterIters, distributed.Solves)
	}
}
