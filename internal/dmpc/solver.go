package dmpc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/obs"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// Options tunes the distributed solve. The zero value selects defaults
// throughout (non-positive fields select their default).
type Options struct {
	// Clusters is the partition size K; default ceil(NumCores/8),
	// clamped to [1, NumCores].
	Clusters int
	// MaxOuter bounds the ADMM outer (consensus) iterations per window;
	// default 4.
	MaxOuter int
	// PrimalTolC is the consensus stopping tolerance: the largest
	// owner-vs-observer disagreement on a boundary block's temperature
	// at the consensus step, in °C. Default 0.25.
	PrimalTolC float64
	// AcceptTolC is the acceptance band for an unconverged iterate:
	// when the loop exhausts MaxOuter (or stalls) with the primal
	// residual at or under this bound the latest decision is still
	// used — the duals persist, so the next window resumes the
	// contraction where this one left off — and only residuals beyond
	// it trigger the fallback ladder. Default 1.0; never below
	// PrimalTolC.
	AcceptTolC float64
	// DualStep scales the dual price update. The raw update is
	// Newton-like — the boundary disagreement divided by the halo
	// block's measured initial-state gain — but a full step oscillates:
	// the observing cluster's controller reacts to a cooler boundary by
	// spending the freed thermal headroom, which heats the boundary
	// back. The damped default 0.5 absorbs that feedback.
	DualStep float64
	// StallFactor declares the iteration stalled when the primal
	// residual fails to shrink below StallFactor × previous residual,
	// triggering the fallback ladder. Default 0.9.
	StallFactor float64
	// HaloPowerFrac is the fixed power a halo core is assumed to draw,
	// as a fraction of its PMax — the observer's stand-in for a
	// neighbor's unknown DVFS decision. Default 0.5.
	HaloPowerFrac float64
	// Workers bounds the cluster solves running in parallel each
	// iteration; default GOMAXPROCS.
	Workers int
	// FallbackCores is the largest chip (in cores) the centralized
	// fallback rung will solve; bigger chips fall back to the
	// conservative worst-case-boundary rung instead, because compiling
	// the dense full-chip program is exactly the cost the decomposition
	// exists to avoid. Default 32.
	FallbackCores int
	// LambdaMaxC clamps the per-edge dual correction, in °C. Default 25.
	LambdaMaxC float64
}

func (o Options) withDefaults(nCores int) Options {
	if o.Clusters <= 0 {
		o.Clusters = (nCores + 7) / 8
	}
	if o.Clusters > nCores {
		o.Clusters = nCores
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 6
	}
	if o.PrimalTolC <= 0 {
		o.PrimalTolC = 0.25
	}
	if o.AcceptTolC <= 0 {
		o.AcceptTolC = 1.0
	}
	if o.AcceptTolC < o.PrimalTolC {
		o.AcceptTolC = o.PrimalTolC
	}
	if o.DualStep <= 0 {
		o.DualStep = 0.5
	}
	if o.StallFactor <= 0 {
		o.StallFactor = 0.9
	}
	if o.HaloPowerFrac <= 0 {
		o.HaloPowerFrac = 0.5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.FallbackCores <= 0 {
		o.FallbackCores = 32
	}
	if o.LambdaMaxC <= 0 {
		o.LambdaMaxC = 25
	}
	return o
}

// Config assembles a distributed solver: the chip being controlled and
// the thermal/window configuration its cluster subproblems are
// compiled against (the same parameters the centralized engine uses).
type Config struct {
	Chip    *power.Chip
	Params  thermal.Params
	Dt      float64
	Steps   int
	TMax    float64
	Variant core.Variant
	Opts    Options
}

// StepStats reports one distributed window solve: consensus progress,
// per-cluster solver work, and which fallback rung (if any) produced
// the decision.
type StepStats struct {
	// OuterIters is the number of consensus iterations run.
	OuterIters int
	// ClusterSolves counts cluster subproblem solves (including
	// downgrade re-solves and fallback rungs).
	ClusterSolves int
	// WarmHits / WarmRejects aggregate the cluster solvers' warm-start
	// outcomes.
	WarmHits    int
	WarmRejects int
	// Downgrades counts clusters that could not support the target and
	// re-solved at their bisected maximum; Idles counts clusters forced
	// to a zero-frequency window.
	Downgrades int
	Idles      int
	// PrimalResidC is the final max boundary-temperature disagreement
	// (°C); DualResidC the final max dual correction applied (°C).
	PrimalResidC float64
	DualResidC   float64
	// Converged reports the consensus loop met PrimalTolC (trivially
	// true with a single cluster); Fallback that a fallback rung
	// produced the decision instead. When neither is set, the window
	// accepted an unconverged iterate inside AcceptTolC and left the
	// duals to keep contracting across windows.
	Converged bool
	Fallback  bool
	// NewtonIters sums the interior-point iterations across clusters.
	NewtonIters int
}

// Solver is the distributed-MPC counterpart of core.OnlineSolver: one
// warm-startable subproblem per cluster, solved in parallel each
// window and coordinated through dual corrections on boundary
// temperatures. Like the centralized online solver it is NOT
// goroutine-safe: Solve and Invalidate must be externally serialized
// (the parallelism lives inside Solve, across clusters).
type Solver struct {
	cfg  Config
	opts Options
	part *Partition
	subs []*clusterSub

	// lambda holds the dual state: one °C correction per (cluster, halo
	// block), persisted across windows and reset by Invalidate.
	lambda [][]float64

	// kstar is the consensus step: the thermal-memory horizon at which
	// boundary predictions are compared. Measured at construction as
	// the largest step where every halo block's initial-state gain
	// (A^k diagonal) is still at least consensusGain — past its memory
	// horizon a block has forgotten its start temperature and the dual
	// (which corrects start temperatures) has no authority left.
	kstar int

	// ownEnd[b] is the owning cluster's predicted consensus-step
	// temperature of boundary block b from the latest round.
	ownEnd []float64

	centralOnce   sync.Once
	central       *core.OnlineSolver
	centralWindow *thermal.WindowResponse
	centralErr    error

	// ClusterNanos, when set, receives every cluster subproblem solve's
	// wall time (the per-cluster solve-latency histogram surfaced in
	// metrics).
	ClusterNanos *metrics.Histogram

	// rec, when set, observes the consensus loop (outer iterations,
	// fallback rung) and derives per-cluster sub-recorders for the
	// cluster solvers. nil = tracing disabled.
	rec obs.Recorder
}

// clusterSub is one cluster's compiled subproblem: a sub-chip of the
// member blocks plus a halo ring, with halo cores demoted to fixed
// uncore loads, driving a warm-startable online solver.
type clusterSub struct {
	blocks []int // member global block indices, ascending
	halo   []int // halo global block indices, ascending
	chip   *power.Chip
	window *thermal.WindowResponse
	ol     *core.OnlineSolver
	coreOf []int // local core position -> parent core position
	// haloGain[h] is the halo block's initial-state gain A^kstar[h,h]
	// — the °C its consensus-step prediction moves per °C of dual
	// correction. The dual update divides by it (a Newton-like price
	// step), so one update closes most of a boundary disagreement.
	haloGain []float64

	// Per-round scratch (touched only by the worker owning the cluster
	// during a round, then read after the barrier).
	t0c     []float64
	freqs   []float64 // local core decisions from the latest round
	haloEnd []float64 // consensus-step halo-block predictions, per halo pos
	ownTend linalg.Vector
	peak    float64
	gap     float64
	newton  int
	solves  int
	warm    int
	warmRej int
	downgr  int
	idle    bool
	err     error
}

// New builds a distributed solver: partitions the chip's floorplan
// over its thermal conductance graph and compiles one warm-startable
// subproblem per cluster through the same compile/instantiate path the
// centralized online solver uses.
func New(cfg Config) (*Solver, error) {
	if cfg.Chip == nil {
		return nil, fmt.Errorf("dmpc: nil chip")
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("dmpc: non-positive dt %g", cfg.Dt)
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("dmpc: window of %d steps", cfg.Steps)
	}
	if cfg.TMax <= 0 {
		return nil, fmt.Errorf("dmpc: non-positive tmax %g", cfg.TMax)
	}
	fp := cfg.Chip.Floorplan()
	opts := cfg.Opts.withDefaults(cfg.Chip.NumCores())
	model, err := thermal.NewRC(fp, cfg.Params)
	if err != nil {
		return nil, err
	}
	part, err := NewPartition(fp, model, opts.Clusters)
	if err != nil {
		return nil, err
	}
	s := &Solver{cfg: cfg, opts: opts, part: part,
		subs:   make([]*clusterSub, part.K),
		lambda: make([][]float64, part.K),
		ownEnd: make([]float64, fp.NumBlocks()),
	}
	for c := range s.subs {
		sub, err := s.buildCluster(&part.Clusters[c])
		if err != nil {
			return nil, fmt.Errorf("dmpc: cluster %d: %w", c, err)
		}
		s.subs[c] = sub
		s.lambda[c] = make([]float64, len(part.Clusters[c].Halo))
	}
	s.kstar, err = s.consensusStep()
	if err != nil {
		return nil, err
	}
	for _, sub := range s.subs {
		sub.haloGain = make([]float64, len(sub.halo))
		for hi := range sub.halo {
			li := len(sub.blocks) + hi
			row, _, _, err := sub.window.AffineRows(s.kstar, li)
			if err != nil {
				return nil, err
			}
			g := row[li]
			if g < minDualGain {
				g = minDualGain
			}
			sub.haloGain[hi] = g
		}
	}
	return s, nil
}

// consensusGain is the smallest initial-state authority (A^k diagonal)
// a halo block must retain at the consensus step: comparing boundary
// predictions where the start-temperature lever still has this much
// gain keeps the dual update an effective control, where end-of-window
// comparison would leave it powerless (A^m ≈ 0 for realistic windows).
const consensusGain = 0.3

// minDualGain floors the measured gain used to scale dual updates, so
// a very fast halo block cannot turn one °C of disagreement into an
// enormous price step.
const minDualGain = 0.05

// consensusStep picks the shared step k* at which boundary predictions
// are compared: the largest step where every halo block in every
// cluster still has at least consensusGain of initial-state authority.
func (s *Solver) consensusStep() (int, error) {
	kstar := s.cfg.Steps
	for _, sub := range s.subs {
		for hi := range sub.halo {
			li := len(sub.blocks) + hi
			k := 1
			for k < kstar {
				row, _, _, err := sub.window.AffineRows(k+1, li)
				if err != nil {
					return 0, err
				}
				if row[li] < consensusGain {
					break
				}
				k++
			}
			kstar = k
		}
	}
	return kstar, nil
}

// buildCluster assembles a cluster's sub-chip and compiles its online
// subproblem. Member blocks keep their full-chip geometry and fixed
// powers; halo core blocks are demoted to uncore with a fixed
// HaloPowerFrac·PMax draw (the observer's stand-in for the neighbor's
// DVFS decision), halo non-core blocks keep their fixed powers.
func (s *Solver) buildCluster(cl *Cluster) (*clusterSub, error) {
	fp := s.cfg.Chip.Floorplan()
	parentFixed := s.cfg.Chip.FixedPower()
	coreModel := s.cfg.Chip.CoreModelOf(0)
	// Parent core position by block index.
	corePosOf := make(map[int]int, s.cfg.Chip.NumCores())
	for k := 0; k < s.cfg.Chip.NumCores(); k++ {
		corePosOf[s.cfg.Chip.CoreBlockIndex(k)] = k
	}

	globals := append(append([]int(nil), cl.Blocks...), cl.Halo...)
	blocks := make([]floorplan.Block, len(globals))
	fixed := linalg.NewVector(len(globals))
	for li, b := range globals {
		blk := fp.Block(b)
		isHalo := li >= len(cl.Blocks)
		if isHalo && blk.Kind == floorplan.KindCore {
			blk.Kind = floorplan.KindUncore
			fixed[li] = s.opts.HaloPowerFrac * coreModel.PMax
		} else {
			fixed[li] = parentFixed[b]
		}
		blocks[li] = blk
	}
	sub, err := floorplan.New(blocks)
	if err != nil {
		return nil, err
	}
	chip, err := power.NewChipExplicit(sub, coreModel, fixed)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewRC(sub, s.cfg.Params)
	if err != nil {
		return nil, err
	}
	disc, err := model.Discretize(s.cfg.Dt)
	if err != nil {
		return nil, err
	}
	window, err := disc.Window(s.cfg.Steps)
	if err != nil {
		return nil, err
	}
	ol, err := core.NewOnlineSolver(core.OnlineSpec{
		Chip:    chip,
		Window:  window,
		TMax:    s.cfg.TMax,
		Variant: s.cfg.Variant,
	})
	if err != nil {
		return nil, err
	}
	cs := &clusterSub{
		blocks:  cl.Blocks,
		halo:    cl.Halo,
		chip:    chip,
		window:  window,
		ol:      ol,
		coreOf:  make([]int, chip.NumCores()),
		t0c:     make([]float64, len(globals)),
		freqs:   make([]float64, chip.NumCores()),
		haloEnd: make([]float64, len(cl.Halo)),
	}
	for lk := 0; lk < chip.NumCores(); lk++ {
		cs.coreOf[lk] = corePosOf[globals[chip.CoreBlockIndex(lk)]]
	}
	return cs, nil
}

// SetRecorder installs (or, with nil, removes) the trace recorder for
// subsequent Solve calls. Like Solve it must be externally serialized;
// the disabled state is the nil interface, never a typed-nil value.
func (s *Solver) SetRecorder(rec obs.Recorder) { s.rec = rec }

// Chip returns the chip the solver controls.
func (s *Solver) Chip() *power.Chip { return s.cfg.Chip }

// Clusters returns the partition size K.
func (s *Solver) Clusters() int { return s.part.K }

// Partition returns the underlying partition (read-only).
func (s *Solver) Partition() *Partition { return s.part }

// Invalidate drops every cluster's warm solver state and resets the
// consensus duals, so the next Solve starts cold — the distributed
// spelling of core.OnlineSolver.Invalidate, honoring the same
// invalidate-on-error contract (a SensingDegraded window's state must
// never seed the next real solve, and a failed solve leaves no stale
// warm state behind).
func (s *Solver) Invalidate() {
	for _, sub := range s.subs {
		sub.ol.Invalidate()
	}
	if s.central != nil {
		s.central.Invalidate()
	}
	for _, l := range s.lambda {
		for i := range l {
			l[i] = 0
		}
	}
}

// Solve computes the per-core frequency assignment (parent core order)
// for one window. t0 is the full per-block thermal map; nil solves the
// uniform-tstart form. It mirrors core.OnlineSolver.Solve's contract —
// including invalidate-on-error — but internally runs the consensus
// loop: parallel cluster solves, boundary-temperature residuals, dual
// updates, and the fallback ladder when residuals stall.
func (s *Solver) Solve(ctx context.Context, tstart float64, t0 []float64, ftarget float64) (*core.Assignment, StepStats, error) {
	var stats StepStats
	fp := s.cfg.Chip.Floorplan()
	n := fp.NumBlocks()
	if t0 != nil && len(t0) != n {
		return nil, stats, fmt.Errorf("dmpc: %d block temps for %d blocks", len(t0), n)
	}
	t0g := t0
	if t0g == nil {
		t0g = linalg.Constant(n, tstart)
	}

	prevPrimal := math.Inf(1)
	for it := 1; it <= s.opts.MaxOuter; it++ {
		stats.OuterIters = it
		if err := s.solveRound(ctx, tstart, t0g, ftarget, &stats, false); err != nil {
			s.Invalidate()
			return nil, stats, err
		}
		if len(s.part.Boundary) == 0 {
			stats.Converged = true
			break
		}
		primal := s.primalResidual()
		stats.PrimalResidC = primal
		if primal <= s.opts.PrimalTolC {
			stats.Converged = true
			if s.rec != nil {
				s.rec.Outer(it, primal, 0)
			}
			break
		}
		if primal > s.opts.StallFactor*prevPrimal {
			if s.rec != nil {
				s.rec.Outer(it, primal, 0)
			}
			break // stalled: stop burning iterations
		}
		prevPrimal = primal
		dual := s.updateDuals()
		stats.DualResidC = math.Max(stats.DualResidC, dual)
		if s.rec != nil {
			s.rec.Outer(it, primal, dual)
		}
	}

	// An unconverged but acceptable iterate is still the decision: the
	// duals persist, so the next window resumes the contraction from
	// here. Only a residual beyond the acceptance band walks the
	// fallback ladder.
	if !stats.Converged && stats.PrimalResidC > s.opts.AcceptTolC {
		stats.Fallback = true
		return s.fallback(ctx, tstart, t0g, ftarget, &stats)
	}
	return s.assemble(&stats), stats, nil
}

// solveRound solves every cluster subproblem once over the bounded
// worker pool, each with the same per-cluster downgrade ladder the
// centralized path applies (solve at target; if unsupportable, bisect
// the largest uniform target and re-solve just inside it; else idle).
// worstCase replaces dual-adjusted halo temperatures with TMax — the
// conservative final fallback rung.
func (s *Solver) solveRound(ctx context.Context, tstart float64, t0g []float64, ftarget float64, stats *StepStats, worstCase bool) error {
	workers := s.opts.Workers
	if workers > len(s.subs) {
		workers = len(s.subs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				s.solveCluster(ctx, c, tstart, t0g, ftarget, worstCase)
			}
		}()
	}
	for c := range s.subs {
		jobs <- c
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	for _, sub := range s.subs {
		stats.ClusterSolves += sub.solves
		stats.WarmHits += sub.warm
		stats.WarmRejects += sub.warmRej
		stats.Downgrades += sub.downgr
		stats.NewtonIters += sub.newton
		if sub.idle {
			stats.Idles++
		}
		if sub.err != nil && firstErr == nil {
			firstErr = sub.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if len(s.part.Boundary) > 0 {
		for _, sub := range s.subs {
			for li, b := range sub.blocks {
				s.ownEnd[b] = sub.ownTend[li]
			}
		}
	}
	return nil
}

// solveCluster runs one cluster's ladder for the current round and
// records its decision and end-of-window predictions in the sub's
// scratch. Only the worker owning cluster c touches its state.
func (s *Solver) solveCluster(ctx context.Context, c int, tstart float64, t0g []float64, ftarget float64, worstCase bool) {
	sub := s.subs[c]
	sub.solves, sub.warm, sub.warmRej, sub.downgr, sub.newton = 0, 0, 0, 0, 0
	sub.idle = false
	sub.err = nil
	sub.peak, sub.gap = 0, 0
	if s.rec != nil {
		sub.ol.SetRecorder(s.rec.Cluster(c))
	} else {
		sub.ol.SetRecorder(nil)
	}

	for li, b := range sub.blocks {
		sub.t0c[li] = t0g[b]
	}
	for hi, b := range sub.halo {
		t := t0g[b] + s.lambda[c][hi]
		if worstCase {
			t = s.cfg.TMax
		}
		sub.t0c[len(sub.blocks)+hi] = t
	}

	a, err := sub.solve(ctx, tstart, ftarget, s.ClusterNanos)
	if err != nil {
		sub.err = err
		return
	}
	if !a.Feasible {
		// Downgrade ladder, mirroring the centralized online path: the
		// largest supportable uniform target, re-solved just inside it.
		spec := &core.Spec{
			Chip:    sub.chip,
			Window:  sub.window,
			TStart:  tstart,
			TMax:    s.cfg.TMax,
			FTarget: ftarget,
			Variant: s.cfg.Variant,
			T0:      sub.t0c,
		}
		maxF, _, err := core.SolveUniformBisectContext(ctx, spec)
		if err != nil {
			sub.err = err
			return
		}
		if maxF <= 0 {
			sub.idle = true
		} else {
			sub.downgr++
			a, err = sub.solve(ctx, tstart, math.Min(ftarget, 0.98*maxF), s.ClusterNanos)
			if err != nil {
				sub.err = err
				return
			}
			if !a.Feasible {
				sub.idle = true
			}
		}
	}
	if sub.idle {
		for i := range sub.freqs {
			sub.freqs[i] = 0
		}
	} else {
		copy(sub.freqs, a.Freqs)
		sub.peak = a.PeakTemp
		sub.gap = a.Gap
	}
	sub.predict(c, s)
}

// solve runs one warm-capable subproblem solve, folding the warm-start
// outcome into the cluster's round scratch and the wall time into the
// solver's latency histogram (atomic, so workers observe concurrently).
func (sub *clusterSub) solve(ctx context.Context, tstart, ftarget float64, hist *metrics.Histogram) (*core.Assignment, error) {
	start := time.Now()
	a, st, err := sub.ol.Solve(ctx, tstart, sub.t0c, ftarget)
	if hist != nil {
		hist.ObserveDuration(time.Since(start).Nanoseconds())
	}
	sub.solves++
	if st.Warm {
		sub.warm++
	}
	if st.WarmRejected {
		sub.warmRej++
	}
	sub.newton += st.NewtonIters
	return a, err
}

// predict computes the cluster's consensus-step temperature forecast
// under its current decision — the quantity the consensus residual
// compares across the boundary. Skipped when there is nothing to agree
// on (a single cluster).
func (sub *clusterSub) predict(c int, s *Solver) {
	if len(s.part.Boundary) == 0 {
		return
	}
	p, err := sub.chip.PowerVector(sub.freqs)
	if err != nil {
		sub.err = err
		return
	}
	tend, err := sub.window.TempAt(s.kstar, sub.t0c, p)
	if err != nil {
		sub.err = err
		return
	}
	sub.ownTend = tend
	for hi := range sub.halo {
		sub.haloEnd[hi] = tend[len(sub.blocks)+hi]
	}
}

// primalResidual is the consensus gap: the largest disagreement (°C)
// between a boundary block's owner-predicted consensus-step
// temperature and any observing cluster's halo prediction of it.
func (s *Solver) primalResidual() float64 {
	var worst float64
	for _, sub := range s.subs {
		for hi, b := range sub.halo {
			if d := math.Abs(s.ownEnd[b] - sub.haloEnd[hi]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// updateDuals performs the ADMM-style price update: each cluster's
// halo-temperature correction moves by DualStep × (owner's prediction
// − observer's prediction) / (the halo block's initial-state gain at
// the consensus step), clamped to ±LambdaMaxC. Dividing by the
// measured gain makes this a Newton step on the price: one full update
// moves the observer's next prediction onto the owner's. Returns the
// largest correction applied (the dual residual, °C).
func (s *Solver) updateDuals() float64 {
	var worst float64
	for c, sub := range s.subs {
		for hi, b := range sub.halo {
			d := s.opts.DualStep * (s.ownEnd[b] - sub.haloEnd[hi]) / sub.haloGain[hi]
			next := s.lambda[c][hi] + d
			if next > s.opts.LambdaMaxC {
				next = s.opts.LambdaMaxC
			}
			if next < -s.opts.LambdaMaxC {
				next = -s.opts.LambdaMaxC
			}
			if step := math.Abs(next - s.lambda[c][hi]); step > worst {
				worst = step
			}
			s.lambda[c][hi] = next
		}
	}
	return worst
}

// fallback runs the ladder below the consensus loop. Rung 1: on chips
// small enough to afford it (≤ FallbackCores cores) re-solve the full
// centralized program, lazily compiling it on first use. Rung 2: on
// larger chips, one conservative round with every halo temperature
// pinned to TMax — the hottest admissible boundary, so the Euler
// update's monotonicity makes each cluster's constraint enforcement an
// upper bound on the true coupled system.
func (s *Solver) fallback(ctx context.Context, tstart float64, t0g []float64, ftarget float64, stats *StepStats) (*core.Assignment, StepStats, error) {
	if s.cfg.Chip.NumCores() <= s.opts.FallbackCores {
		if s.rec != nil {
			s.rec.Fallback("central")
		}
		a, err := s.centralSolve(ctx, tstart, t0g, ftarget, stats)
		if err != nil {
			s.Invalidate()
			return nil, *stats, err
		}
		return a, *stats, nil
	}
	if s.rec != nil {
		s.rec.Fallback("worst-case")
	}
	if err := s.solveRound(ctx, tstart, t0g, ftarget, stats, true); err != nil {
		s.Invalidate()
		return nil, *stats, err
	}
	return s.assemble(stats), *stats, nil
}

// centralSolve is the centralized fallback rung: the same program and
// ladder the engine's online session runs, compiled lazily because on
// small chips it is affordable and on a healthy consensus loop it is
// never needed.
func (s *Solver) centralSolve(ctx context.Context, tstart float64, t0g []float64, ftarget float64, stats *StepStats) (*core.Assignment, error) {
	s.centralOnce.Do(func() {
		fp := s.cfg.Chip.Floorplan()
		model, err := thermal.NewRC(fp, s.cfg.Params)
		if err != nil {
			s.centralErr = err
			return
		}
		disc, err := model.Discretize(s.cfg.Dt)
		if err != nil {
			s.centralErr = err
			return
		}
		window, err := disc.Window(s.cfg.Steps)
		if err != nil {
			s.centralErr = err
			return
		}
		s.centralWindow = window
		s.central, s.centralErr = core.NewOnlineSolver(core.OnlineSpec{
			Chip:    s.cfg.Chip,
			Window:  window,
			TMax:    s.cfg.TMax,
			Variant: s.cfg.Variant,
		})
	})
	if s.centralErr != nil {
		return nil, s.centralErr
	}
	if s.rec != nil {
		// Cluster index -1 tags the centralized fallback's spans.
		s.central.SetRecorder(s.rec.Cluster(-1))
	} else {
		s.central.SetRecorder(nil)
	}
	start := time.Now()
	a, st, err := s.central.Solve(ctx, tstart, t0g, ftarget)
	if s.ClusterNanos != nil {
		s.ClusterNanos.ObserveDuration(time.Since(start).Nanoseconds())
	}
	stats.ClusterSolves++
	if st.Warm {
		stats.WarmHits++
	}
	if st.WarmRejected {
		stats.WarmRejects++
	}
	stats.NewtonIters += st.NewtonIters
	if err != nil {
		return nil, err
	}
	if a.Feasible {
		return a, nil
	}
	spec := &core.Spec{
		Chip:    s.cfg.Chip,
		Window:  s.centralWindow,
		TStart:  tstart,
		TMax:    s.cfg.TMax,
		FTarget: ftarget,
		Variant: s.cfg.Variant,
		T0:      t0g,
	}
	maxF, _, err := core.SolveUniformBisectContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	n := s.cfg.Chip.NumCores()
	if maxF <= 0 {
		stats.Idles++
		return idleAssignment(n), nil
	}
	stats.Downgrades++
	start = time.Now()
	a, st, err = s.central.Solve(ctx, tstart, t0g, math.Min(ftarget, 0.98*maxF))
	if s.ClusterNanos != nil {
		s.ClusterNanos.ObserveDuration(time.Since(start).Nanoseconds())
	}
	stats.ClusterSolves++
	stats.NewtonIters += st.NewtonIters
	if err != nil {
		return nil, err
	}
	if !a.Feasible {
		stats.Idles++
		return idleAssignment(n), nil
	}
	return a, nil
}

// assemble stitches the clusters' latest decisions into one full-chip
// assignment in parent core order.
func (s *Solver) assemble(stats *StepStats) *core.Assignment {
	n := s.cfg.Chip.NumCores()
	a := &core.Assignment{
		Feasible: true,
		Freqs:    make([]float64, n),
		Powers:   make([]float64, n),
	}
	for _, sub := range s.subs {
		for lk, parent := range sub.coreOf {
			a.Freqs[parent] = sub.freqs[lk]
		}
		if sub.peak > a.PeakTemp {
			a.PeakTemp = sub.peak
		}
		if sub.gap > a.Gap {
			a.Gap = sub.gap
		}
	}
	for k := 0; k < n; k++ {
		a.Powers[k] = s.cfg.Chip.CoreModelOf(k).AtFrequency(a.Freqs[k])
		a.AvgFreq += a.Freqs[k]
		a.TotalPower += a.Powers[k]
	}
	a.AvgFreq /= float64(n)
	a.NewtonIters = stats.NewtonIters
	return a
}

func idleAssignment(n int) *core.Assignment {
	return &core.Assignment{
		Feasible: true,
		Freqs:    make([]float64, n),
		Powers:   make([]float64, n),
	}
}
