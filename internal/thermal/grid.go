package thermal

import (
	"fmt"
	"math"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

// GridModel is a HotSpot-style fine-grained thermal model: the die is
// tiled into a regular Rows x Cols grid of cells, each cell is an RC
// node coupled to its 4-neighbours laterally and to ambient vertically,
// and block power is spread uniformly over the cells a block covers.
// The paper validates its block-level simulator against exactly this
// kind of model ("we also verified our simulator using the thermal
// models from the Hotspot simulator [17]"); the GridValidation test
// suite reproduces that cross-check.
type GridModel struct {
	fp         *floorplan.Floorplan
	params     Params
	rows, cols int
	cellW      float64
	cellH      float64
	x0, y0     float64

	rc *RCModel // cell-level network reusing the block-level machinery

	// cellsOf[b] lists the cell indices covered by block b;
	// blockOf[c] is the covering block (-1 for uncovered cells).
	cellsOf [][]int
	blockOf []int
}

// NewGrid builds a grid model with the given resolution. Cells outside
// every block (floorplans are fully covering in this project, but
// uncovered cells are tolerated) get silicon properties and no power.
func NewGrid(fp *floorplan.Floorplan, params Params, rows, cols int) (*GridModel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("thermal: grid resolution %dx%d", rows, cols)
	}
	if fp.NumBlocks() == 0 {
		return nil, fmt.Errorf("thermal: empty floorplan")
	}
	x0, y0, w, h := fp.BoundingBox()
	g := &GridModel{
		fp: fp, params: params, rows: rows, cols: cols,
		cellW: w / float64(cols), cellH: h / float64(rows),
		x0: x0, y0: y0,
		cellsOf: make([][]int, fp.NumBlocks()),
		blockOf: make([]int, rows*cols),
	}

	// Build a synthetic floorplan of cells and reuse NewRC: the cell
	// network is exactly a block network over uniform rectangles.
	cells := make([]floorplan.Block, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cells = append(cells, floorplan.Block{
				Name: fmt.Sprintf("g%d_%d", r, c),
				Kind: floorplan.KindUncore,
				X:    x0 + float64(c)*g.cellW,
				Y:    y0 + float64(r)*g.cellH,
				W:    g.cellW,
				H:    g.cellH,
			})
		}
	}
	cellPlan, err := floorplan.New(cells)
	if err != nil {
		return nil, fmt.Errorf("thermal: grid cells: %w", err)
	}
	rc, err := NewRC(cellPlan, params)
	if err != nil {
		return nil, err
	}
	g.rc = rc

	// Map cells to blocks by cell-centre containment.
	for ci := 0; ci < rows*cols; ci++ {
		g.blockOf[ci] = -1
	}
	for bi := 0; bi < fp.NumBlocks(); bi++ {
		b := fp.Block(bi)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				cx := x0 + (float64(c)+0.5)*g.cellW
				cy := y0 + (float64(r)+0.5)*g.cellH
				if cx >= b.X && cx < b.X+b.W && cy >= b.Y && cy < b.Y+b.H {
					ci := r*cols + c
					g.cellsOf[bi] = append(g.cellsOf[bi], ci)
					g.blockOf[ci] = bi
				}
			}
		}
		if len(g.cellsOf[bi]) == 0 {
			return nil, fmt.Errorf("thermal: grid %dx%d too coarse: block %q covers no cell centre",
				rows, cols, b.Name)
		}
	}
	return g, nil
}

// NumCells returns rows*cols.
func (g *GridModel) NumCells() int { return g.rows * g.cols }

// Resolution returns (rows, cols).
func (g *GridModel) Resolution() (int, int) { return g.rows, g.cols }

// CellModel exposes the underlying cell-level RC network.
func (g *GridModel) CellModel() *RCModel { return g.rc }

// SpreadPower converts a per-block power vector into a per-cell power
// vector, spreading each block's power uniformly over its cells.
func (g *GridModel) SpreadPower(blockPower linalg.Vector) (linalg.Vector, error) {
	if len(blockPower) != g.fp.NumBlocks() {
		return nil, fmt.Errorf("thermal: power length %d, want %d blocks", len(blockPower), g.fp.NumBlocks())
	}
	p := linalg.NewVector(g.NumCells())
	for bi, cells := range g.cellsOf {
		if len(cells) == 0 {
			continue
		}
		per := blockPower[bi] / float64(len(cells))
		for _, ci := range cells {
			p[ci] += per
		}
	}
	return p, nil
}

// BlockTemps aggregates cell temperatures back to blocks, returning
// both the area mean and the maximum per block.
func (g *GridModel) BlockTemps(cellTemps linalg.Vector) (mean, max linalg.Vector, err error) {
	if len(cellTemps) != g.NumCells() {
		return nil, nil, fmt.Errorf("thermal: temps length %d, want %d cells", len(cellTemps), g.NumCells())
	}
	nb := g.fp.NumBlocks()
	mean = linalg.NewVector(nb)
	max = linalg.Constant(nb, math.Inf(-1))
	for bi, cells := range g.cellsOf {
		var sum float64
		for _, ci := range cells {
			sum += cellTemps[ci]
			if cellTemps[ci] > max[bi] {
				max[bi] = cellTemps[ci]
			}
		}
		mean[bi] = sum / float64(len(cells))
	}
	return mean, max, nil
}

// SteadyStateBlocks solves the cell-level steady state under the given
// per-block power and returns the per-block mean temperatures — the
// quantity compared against the block-level model in validation.
func (g *GridModel) SteadyStateBlocks(blockPower linalg.Vector) (linalg.Vector, error) {
	p, err := g.SpreadPower(blockPower)
	if err != nil {
		return nil, err
	}
	cellT, err := g.rc.SteadyState(p)
	if err != nil {
		return nil, err
	}
	mean, _, err := g.BlockTemps(cellT)
	return mean, err
}

// Discretize returns the cell-level Euler discretization.
func (g *GridModel) Discretize(dt float64) (*Discrete, error) {
	return g.rc.Discretize(dt)
}
