package thermal

import (
	"math"
	"testing"

	"protemp/internal/linalg"
)

func TestWindowMatchesStepByStep(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 50
	w, err := d.Window(steps)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.UniformStart(55)
	p := fullPower(m, 3)
	sim, _ := NewSimulator(d, t0)
	for k := 0; k <= steps; k++ {
		want := sim.Temps()
		got, err := w.TempAt(k, t0, p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-8) {
			t.Fatalf("step %d: window %v vs simulator %v", k, got, want)
		}
		sim.Step(p)
	}
}

func TestWindowAffineDecomposition(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Window(30)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.UniformStart(60)
	p := fullPower(m, 2.5)
	for _, k := range []int{0, 1, 15, 30} {
		full, err := w.TempAt(k, t0, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.NumNodes(); i++ {
			base, gain, err := w.Affine(k, i, t0)
			if err != nil {
				t.Fatal(err)
			}
			got := base + gain.Dot(p)
			if math.Abs(got-full[i]) > 1e-9*(1+math.Abs(full[i])) {
				t.Fatalf("k=%d node %d: affine %v vs direct %v", k, i, got, full[i])
			}
		}
	}
}

// Heat gains must be nonnegative: adding power anywhere never cools any
// node at any step. This is the property that makes the temperature
// constraints convex in frequency.
func TestWindowGainsNonnegative(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Window(100)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.UniformStart(45)
	for k := 0; k <= 100; k += 10 {
		for i := 0; i < m.NumNodes(); i++ {
			_, gain, err := w.Affine(k, i, t0)
			if err != nil {
				t.Fatal(err)
			}
			for j, g := range gain {
				if g < 0 {
					t.Fatalf("negative gain S_%d[%d,%d] = %v", k, i, j, g)
				}
			}
		}
	}
}

func TestWindowErrors(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Window(0); err == nil {
		t.Error("horizon 0 accepted")
	}
	w, err := d.Window(5)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.UniformStart(45)
	p := linalg.NewVector(m.NumNodes())
	if _, err := w.TempAt(6, t0, p); err == nil {
		t.Error("out-of-window step accepted")
	}
	if _, err := w.TempAt(-1, t0, p); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := w.TempAt(2, linalg.NewVector(1), p); err == nil {
		t.Error("bad state length accepted")
	}
	if _, _, err := w.Affine(2, 99, t0); err == nil {
		t.Error("bad node index accepted")
	}
	if _, _, err := w.Affine(2, 0, linalg.NewVector(1)); err == nil {
		t.Error("bad state length accepted in Affine")
	}
	if w.Steps() != 5 || w.Dt() != PaperDt {
		t.Errorf("Steps/Dt = %d/%v", w.Steps(), w.Dt())
	}
	if w.MaxGain() <= 0 {
		t.Error("MaxGain should be positive")
	}
}
