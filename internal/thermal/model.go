// Package thermal builds compact RC thermal models of a chip floorplan
// and exposes the discrete-time dynamics the paper's controller relies
// on (their Eq. 1):
//
//	t_{k+1,i} = t_{k,i} + Σ_{j∈Adj_i} a_ij (t_{k,j} − t_{k,i}) + b_i p_i
//
// plus an ambient leakage term a_amb,i (t_amb − t_{k,i}) that the
// published equation folds into the constants.
//
// The network follows the HotSpot construction the paper cites ([17],
// [19]): one node per floorplan block, a lateral resistance per shared
// edge computed from block geometry and silicon conductivity, a vertical
// resistance per block to ambient representing the package/heat-sink
// stack, and a heat capacity per block proportional to area. Both the
// paper's explicit-Euler discretization and the exact zero-order-hold
// discretization (via matrix exponential) are provided; tests validate
// one against the other.
package thermal

import (
	"fmt"
	"math"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

// Params holds the physical constants of the RC construction.
type Params struct {
	// Ambient is the local ambient (heat-sink boundary) temperature in °C.
	Ambient float64
	// DieThickness is the silicon thickness in metres, used for lateral
	// conduction cross-sections.
	DieThickness float64
	// Conductivity is the lateral thermal conductivity of silicon in
	// W/(m·K).
	Conductivity float64
	// VerticalRPerArea is the area-normalized thermal resistance of the
	// vertical package path in K·m²/W; a block of area A sees
	// R_v = VerticalRPerArea / A.
	VerticalRPerArea float64
	// CapacitancePerArea is the area-normalized heat capacity in
	// J/(K·m²), lumping die and attached package mass.
	CapacitancePerArea float64
}

// DefaultParams returns constants calibrated so the Niagara model
// reproduces the paper's regime: ~45 °C ambient; a full-power steady
// state far above the 100 °C limit (so No-TC and Basic-DFS violate as
// in their Figs. 1 and 6, with overshoots reaching the ~127 °C their
// Fig. 1 axis shows); core thermal time constants around 100 ms, so
// temperatures move visibly within one DFS window; and stability under
// the paper's 0.4 ms Euler step. The capacitance is die-dominated (thin
// die, little attached package mass), which is what gives the fast
// in-window transients the paper's reactive-DFS critique relies on.
func DefaultParams() Params {
	return Params{
		Ambient:            45,
		DieThickness:       0.5e-3,
		Conductivity:       110,
		VerticalRPerArea:   3.3e-4,
		CapacitancePerArea: 330,
	}
}

// Validate checks that all constants are physical.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.Ambient) || math.IsInf(p.Ambient, 0):
		return fmt.Errorf("thermal: non-finite ambient %v", p.Ambient)
	case p.DieThickness <= 0:
		return fmt.Errorf("thermal: non-positive die thickness %v", p.DieThickness)
	case p.Conductivity <= 0:
		return fmt.Errorf("thermal: non-positive conductivity %v", p.Conductivity)
	case p.VerticalRPerArea <= 0:
		return fmt.Errorf("thermal: non-positive vertical resistance %v", p.VerticalRPerArea)
	case p.CapacitancePerArea <= 0:
		return fmt.Errorf("thermal: non-positive capacitance %v", p.CapacitancePerArea)
	}
	return nil
}

// RCModel is the continuous-time network C·dT/dt = −G·T + p + gAmb·T_amb.
// G is the conductance Laplacian plus the vertical conductances on its
// diagonal, so it is symmetric positive definite.
type RCModel struct {
	fp      *floorplan.Floorplan
	params  Params
	n       int
	cap     linalg.Vector  // heat capacity per node, J/K
	g       *linalg.Matrix // conductance matrix, W/K
	gAmb    linalg.Vector  // vertical conductance to ambient per node, W/K
	ambient float64
}

// NewRC builds the RC network for a floorplan.
func NewRC(fp *floorplan.Floorplan, params Params) (*RCModel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := fp.NumBlocks()
	if n == 0 {
		return nil, fmt.Errorf("thermal: empty floorplan")
	}
	m := &RCModel{
		fp:      fp,
		params:  params,
		n:       n,
		cap:     linalg.NewVector(n),
		g:       linalg.NewMatrix(n, n),
		gAmb:    linalg.NewVector(n),
		ambient: params.Ambient,
	}
	for i := 0; i < n; i++ {
		b := fp.Block(i)
		m.cap[i] = params.CapacitancePerArea * b.Area()
		m.gAmb[i] = b.Area() / params.VerticalRPerArea
		m.g.AddAt(i, i, m.gAmb[i])
	}
	for _, adj := range fp.Adjacencies() {
		r := lateralResistance(fp.Block(adj.I), fp.Block(adj.J), adj.SharedLength, params)
		gij := 1 / r
		m.g.AddAt(adj.I, adj.J, -gij)
		m.g.AddAt(adj.J, adj.I, -gij)
		m.g.AddAt(adj.I, adj.I, gij)
		m.g.AddAt(adj.J, adj.J, gij)
	}
	return m, nil
}

// lateralResistance is the HotSpot-style series resistance between the
// centres of two blocks through their shared edge: each block contributes
// (half-extent)/(k·t·L) where the half-extent is measured perpendicular
// to the shared edge.
func lateralResistance(a, b floorplan.Block, sharedLen float64, p Params) float64 {
	cross := p.Conductivity * p.DieThickness * sharedLen
	var da, db float64
	// Decide orientation: a vertical shared edge means horizontal flow.
	if overlapsVertically(a, b) {
		da, db = a.W/2, b.W/2
	} else {
		da, db = a.H/2, b.H/2
	}
	return (da + db) / cross
}

// overlapsVertically reports whether the shared edge between a and b is
// vertical (i.e. the blocks are side by side).
func overlapsVertically(a, b floorplan.Block) bool {
	tol := 1e-9 * (1 + math.Max(a.W+a.H, b.W+b.H))
	return math.Abs((a.X+a.W)-b.X) <= tol || math.Abs((b.X+b.W)-a.X) <= tol
}

// NumNodes returns the node count (one per floorplan block).
func (m *RCModel) NumNodes() int { return m.n }

// Floorplan returns the underlying floorplan.
func (m *RCModel) Floorplan() *floorplan.Floorplan { return m.fp }

// Ambient returns the ambient temperature in °C.
func (m *RCModel) Ambient() float64 { return m.ambient }

// Capacitance returns a copy of the per-node heat capacities (J/K).
func (m *RCModel) Capacitance() linalg.Vector { return m.cap.Clone() }

// Conductance returns a copy of the conductance matrix G (W/K).
func (m *RCModel) Conductance() *linalg.Matrix { return m.g.Clone() }

// SteadyState solves G·T = p + gAmb·T_amb for the equilibrium
// temperatures under constant power p (length NumNodes, watts).
func (m *RCModel) SteadyState(p linalg.Vector) (linalg.Vector, error) {
	if len(p) != m.n {
		return nil, fmt.Errorf("thermal: power vector length %d, want %d", len(p), m.n)
	}
	rhs := linalg.NewVector(m.n)
	for i := range rhs {
		rhs[i] = p[i] + m.gAmb[i]*m.ambient
	}
	t, err := linalg.SolveSPD(m.g, rhs)
	if err != nil {
		return nil, fmt.Errorf("thermal: steady state solve: %w", err)
	}
	return t, nil
}

// UniformStart returns a temperature vector with every node at t0 °C.
func (m *RCModel) UniformStart(t0 float64) linalg.Vector {
	return linalg.Constant(m.n, t0)
}
