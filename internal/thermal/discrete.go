package thermal

import (
	"fmt"
	"math"

	"protemp/internal/linalg"
)

// Discrete is a discrete-time thermal model
//
//	T_{k+1} = A·T_k + B·p + d
//
// with p the per-node power vector held constant over the step. For the
// explicit-Euler discretization this is exactly the paper's Eq. 1 with
// a_ij = Δt/(C_i R_ij), b_i = Δt/C_i, plus the ambient drive d.
type Discrete struct {
	// A is the state-update matrix.
	A *linalg.Matrix
	// B maps the power vector into temperature increments.
	B *linalg.Matrix
	// D is the constant ambient drive per step.
	D linalg.Vector
	// Dt is the step length in seconds.
	Dt float64

	model *RCModel
}

// Discretize returns the explicit-Euler discretization with step dt —
// the form solved by the paper's convex program. It errors if dt is
// non-positive or if the step is unstable for this network (spectral
// radius of A at least 1), which is exactly the numerical-stability
// consideration that led the authors to the 0.4 ms step.
func (m *RCModel) Discretize(dt float64) (*Discrete, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive step %v", dt)
	}
	n := m.n
	a := linalg.Identity(n)
	b := linalg.NewMatrix(n, n)
	d := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		s := dt / m.cap[i]
		for j := 0; j < n; j++ {
			a.AddAt(i, j, -s*m.g.At(i, j))
		}
		b.Set(i, i, s)
		d[i] = s * m.gAmb[i] * m.ambient
	}
	disc := &Discrete{A: a, B: b, D: d, Dt: dt, model: m}
	if rho := disc.SpectralRadiusEstimate(); rho >= 1 {
		return nil, fmt.Errorf("thermal: Euler step %v s unstable (spectral radius ≈ %.4f); reduce dt", dt, rho)
	}
	return disc, nil
}

// DiscretizeExact returns the exact zero-order-hold discretization via
// the matrix exponential: A = e^{A_c dt}, [B d] = ∫ e^{A_c τ} dτ · [B_c d_c].
func (m *RCModel) DiscretizeExact(dt float64) (*Discrete, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive step %v", dt)
	}
	n := m.n
	ac := linalg.NewMatrix(n, n)
	// Continuous input matrix augmented with the ambient drive column:
	// dT/dt = A_c T + C⁻¹ p + C⁻¹ gAmb T_amb.
	bc := linalg.NewMatrix(n, n+1)
	for i := 0; i < n; i++ {
		inv := 1 / m.cap[i]
		for j := 0; j < n; j++ {
			ac.Set(i, j, -inv*m.g.At(i, j))
		}
		bc.Set(i, i, inv)
		bc.Set(i, n, inv*m.gAmb[i]*m.ambient)
	}
	phi, gamma, err := linalg.IntegralExpm(ac, bc, dt)
	if err != nil {
		return nil, fmt.Errorf("thermal: exact discretization: %w", err)
	}
	b := linalg.NewMatrix(n, n)
	d := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, gamma.At(i, j))
		}
		d[i] = gamma.At(i, n)
	}
	return &Discrete{A: phi, B: b, D: d, Dt: dt, model: m}, nil
}

// WithGainError returns a perturbed copy of the discretization whose
// thermal gains are uniformly mis-scaled by kappa:
//
//	A' = I + κ(A − I),  B' = κB,  D' = κD.
//
// For the Euler discretization every gain is Δt/C-shaped, so this is
// exactly a uniform 1/κ error in every node's heat capacity — the
// "wrong-RC" model an estimator built from datasheet constants runs
// against real silicon. κ = 1 returns an identical copy; the
// perturbed step must remain stable (spectral radius below 1).
func (d *Discrete) WithGainError(kappa float64) (*Discrete, error) {
	if !(kappa > 0) || math.IsInf(kappa, 0) {
		return nil, fmt.Errorf("thermal: gain error %v outside (0, ∞)", kappa)
	}
	n := d.NumNodes()
	a := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			delta := d.A.At(i, j)
			if i == j {
				delta -= 1
			}
			a.AddAt(i, j, kappa*delta)
		}
	}
	p := &Discrete{
		A:     a,
		B:     linalg.NewMatrix(n, n).Scale(kappa, d.B),
		D:     linalg.NewVector(n).Scale(kappa, d.D),
		Dt:    d.Dt,
		model: d.model,
	}
	if rho := p.SpectralRadiusEstimate(); rho >= 1 {
		return nil, fmt.Errorf("thermal: gain error %g makes the step unstable (spectral radius ≈ %.4f)", kappa, rho)
	}
	return p, nil
}

// NumNodes returns the state dimension.
func (d *Discrete) NumNodes() int { return d.A.Rows() }

// Model returns the continuous model this discretization came from.
func (d *Discrete) Model() *RCModel { return d.model }

// Step computes T_{k+1} into dst given T_k and the power vector p.
// dst must not alias t.
func (d *Discrete) Step(dst, t, p linalg.Vector) {
	d.A.MulVec(dst, t)
	n := d.NumNodes()
	for i := 0; i < n; i++ {
		row := d.B.Row(i)
		var s float64
		for j, bij := range row {
			if bij != 0 {
				s += bij * p[j]
			}
		}
		dst[i] += s + d.D[i]
	}
}

// SpectralRadiusEstimate estimates ρ(A) by power iteration; for these
// nonnegative, nearly-symmetric update matrices the dominant eigenvalue
// is real and positive, and 200 iterations give ~10 digits.
func (d *Discrete) SpectralRadiusEstimate() float64 {
	return linalg.PowerIteration(d.A, 200)
}

// Coefficients exposes the paper's Eq. 1 constants for node i:
// aAdj maps each neighbour j to a_ij = Δt/(C_i·R_ij), aAmb is the ambient
// coupling Δt/(C_i·R_amb,i), and b is Δt/C_i. Only meaningful for the
// Euler discretization (DiscretizeExact mixes paths).
func (d *Discrete) Coefficients(i int) (aAdj map[int]float64, aAmb, b float64) {
	m := d.model
	aAdj = make(map[int]float64)
	for j := 0; j < m.n; j++ {
		if j != i && m.g.At(i, j) != 0 {
			aAdj[j] = -d.Dt * m.g.At(i, j) / m.cap[i]
		}
	}
	aAmb = d.Dt * m.gAmb[i] / m.cap[i]
	b = d.Dt / m.cap[i]
	return aAdj, aAmb, b
}

// Simulator integrates a Discrete model forward, recording nothing by
// itself; callers sample Temps as needed.
type Simulator struct {
	disc *Discrete
	t    linalg.Vector
	next linalg.Vector
}

// NewSimulator starts a simulator at the given initial temperatures.
func NewSimulator(disc *Discrete, t0 linalg.Vector) (*Simulator, error) {
	if len(t0) != disc.NumNodes() {
		return nil, fmt.Errorf("thermal: initial state length %d, want %d", len(t0), disc.NumNodes())
	}
	return &Simulator{disc: disc, t: t0.Clone(), next: linalg.NewVector(len(t0))}, nil
}

// Step advances one Δt with constant power p.
func (s *Simulator) Step(p linalg.Vector) {
	s.disc.Step(s.next, s.t, p)
	s.t, s.next = s.next, s.t
}

// Run advances the given number of steps with constant power p.
func (s *Simulator) Run(p linalg.Vector, steps int) {
	for k := 0; k < steps; k++ {
		s.Step(p)
	}
}

// Temps returns the current temperature vector (a copy).
func (s *Simulator) Temps() linalg.Vector { return s.t.Clone() }

// Temp returns the current temperature of node i.
func (s *Simulator) Temp(i int) float64 { return s.t[i] }

// SetTemps overwrites the state.
func (s *Simulator) SetTemps(t linalg.Vector) error {
	if len(t) != len(s.t) {
		return fmt.Errorf("thermal: state length %d, want %d", len(t), len(s.t))
	}
	copy(s.t, t)
	return nil
}
