package thermal

import (
	"math"
	"strings"
	"testing"

	"protemp/internal/linalg"
)

func TestLeakageValidation(t *testing.T) {
	m := niagaraRC(t)
	if _, err := m.WithLinearLeakage(linalg.NewVector(3)); err == nil {
		t.Error("wrong-length leakage accepted")
	}
	neg := linalg.NewVector(m.NumNodes())
	neg[0] = -1
	if _, err := m.WithLinearLeakage(neg); err == nil {
		t.Error("negative leakage accepted")
	}
}

func TestLeakageRaisesSteadyState(t *testing.T) {
	m := niagaraRC(t)
	leaky, err := m.WithLinearLeakage(m.UniformLeakagePerArea(500)) // 0.5 mW/K/mm²
	if err != nil {
		t.Fatal(err)
	}
	p := fullPower(m, 3)
	base, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := leaky.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if hot[i] < base[i]-1e-9 {
			t.Fatalf("node %d: leakage cooled the chip (%.3f < %.3f)", i, hot[i], base[i])
		}
	}
	// At meaningful power, the feedback must visibly amplify the rise.
	if hot.Max() < base.Max()+1 {
		t.Fatalf("leakage effect too small: %.2f vs %.2f", hot.Max(), base.Max())
	}
	// Zero leakage is exactly the base model.
	same, err := m.WithLinearLeakage(linalg.NewVector(m.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := same.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Equal(base, 1e-9) {
		t.Fatal("zero leakage changed the model")
	}
}

func TestLeakageRunawayDetected(t *testing.T) {
	m := niagaraRC(t)
	// Absurdly strong feedback: far beyond what the vertical path can
	// remove. Must be rejected as thermal runaway, not silently built.
	_, err := m.WithLinearLeakage(m.UniformLeakagePerArea(1e7))
	if err == nil {
		t.Fatal("runaway-level leakage accepted")
	}
	if !strings.Contains(err.Error(), "runaway") {
		t.Fatalf("error %v does not name thermal runaway", err)
	}
}

func TestLeakyModelDiscretizesAndSimulates(t *testing.T) {
	m := niagaraRC(t)
	leaky, err := m.WithLinearLeakage(m.UniformLeakagePerArea(500))
	if err != nil {
		t.Fatal(err)
	}
	d, err := leaky.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	p := fullPower(m, 2)
	want, err := leaky.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(d, leaky.UniformStart(45))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(p, 60000)
	got := sim.Temps()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("node %d: simulated %.3f vs steady %.3f", i, got[i], want[i])
		}
	}
}

// The leaky model plugs into the convex pipeline unchanged: window
// gains stay nonnegative (convexity of the Pro-Temp program holds).
func TestLeakyWindowGainsNonnegative(t *testing.T) {
	m := niagaraRC(t)
	leaky, err := m.WithLinearLeakage(m.UniformLeakagePerArea(500))
	if err != nil {
		t.Fatal(err)
	}
	d, err := leaky.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Window(50)
	if err != nil {
		t.Fatal(err)
	}
	t0 := leaky.UniformStart(45)
	for _, k := range []int{1, 25, 50} {
		for i := 0; i < leaky.NumNodes(); i++ {
			_, gain, err := w.Affine(k, i, t0)
			if err != nil {
				t.Fatal(err)
			}
			for j, g := range gain {
				if g < 0 {
					t.Fatalf("negative gain S_%d[%d,%d] = %v under leakage", k, i, j, g)
				}
			}
		}
	}
}
