package thermal

import (
	"math"
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

func niagaraGrid(t *testing.T, rows, cols int) *GridModel {
	t.Helper()
	g, err := NewGrid(floorplan.Niagara(), DefaultParams(), rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	fp := floorplan.Niagara()
	if _, err := NewGrid(fp, DefaultParams(), 0, 10); err == nil {
		t.Error("zero rows accepted")
	}
	bad := DefaultParams()
	bad.Conductivity = -1
	if _, err := NewGrid(fp, bad, 10, 10); err == nil {
		t.Error("invalid params accepted")
	}
	// Too coarse: a 1x1 grid cannot give every block a cell centre.
	if _, err := NewGrid(fp, DefaultParams(), 1, 1); err == nil {
		t.Error("too-coarse grid accepted")
	}
	if _, err := NewGrid(&floorplan.Floorplan{}, DefaultParams(), 4, 4); err == nil {
		t.Error("empty floorplan accepted")
	}
}

func TestGridCellAccounting(t *testing.T) {
	g := niagaraGrid(t, 20, 28) // 0.5 mm cells on the 14x10 mm die
	if g.NumCells() != 560 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	r, c := g.Resolution()
	if r != 20 || c != 28 {
		t.Fatalf("Resolution = %dx%d", r, c)
	}
	// Every cell belongs to exactly one block (the Niagara plan covers
	// the die), and cell counts sum to the total.
	total := 0
	for bi := 0; bi < g.fp.NumBlocks(); bi++ {
		total += len(g.cellsOf[bi])
	}
	if total != g.NumCells() {
		t.Fatalf("cells assigned %d of %d", total, g.NumCells())
	}
}

func TestGridSpreadPowerConserves(t *testing.T) {
	g := niagaraGrid(t, 20, 28)
	bp := linalg.NewVector(g.fp.NumBlocks())
	for i := range bp {
		bp[i] = float64(i) * 0.3
	}
	cp, err := g.SpreadPower(bp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.Sum()-bp.Sum()) > 1e-9 {
		t.Fatalf("power not conserved: %v vs %v", cp.Sum(), bp.Sum())
	}
	if _, err := g.SpreadPower(linalg.NewVector(3)); err == nil {
		t.Error("wrong-length power accepted")
	}
}

func TestGridBlockTempsAggregation(t *testing.T) {
	g := niagaraGrid(t, 20, 28)
	cellT := linalg.Constant(g.NumCells(), 55)
	mean, max, err := g.BlockTemps(cellT)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range mean {
		if math.Abs(mean[bi]-55) > 1e-12 || math.Abs(max[bi]-55) > 1e-12 {
			t.Fatalf("uniform field not preserved: block %d mean %v max %v", bi, mean[bi], max[bi])
		}
	}
	if _, _, err := g.BlockTemps(linalg.NewVector(1)); err == nil {
		t.Error("wrong-length temps accepted")
	}
}

// The HotSpot-style cross-validation the paper describes: block-level
// and fine-grid models must agree on steady-state block temperatures.
func TestGridValidatesBlockModel(t *testing.T) {
	fp := floorplan.Niagara()
	block, err := NewRC(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	grid := niagaraGrid(t, 20, 28)

	// Full power: 4 W per core, area-shared uncore.
	bp := linalg.NewVector(fp.NumBlocks())
	var uncoreArea float64
	for i := 0; i < fp.NumBlocks(); i++ {
		if fp.Block(i).Kind != floorplan.KindCore {
			uncoreArea += fp.Block(i).Area()
		}
	}
	for i := 0; i < fp.NumBlocks(); i++ {
		if fp.Block(i).Kind == floorplan.KindCore {
			bp[i] = 4
		} else {
			bp[i] = 9.6 * fp.Block(i).Area() / uncoreArea
		}
	}
	coarse, err := block.SteadyState(bp)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := grid.SteadyStateBlocks(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coarse {
		rise := coarse[i] - DefaultParams().Ambient
		diff := math.Abs(fine[i] - coarse[i])
		// Agreement within 15% of the rise: the models differ in
		// lateral discretization, not in physics.
		if diff > 0.15*rise+0.5 {
			t.Fatalf("block %s: block-level %.2f vs grid %.2f (rise %.2f)",
				fp.Block(i).Name, coarse[i], fine[i], rise)
		}
	}
}

// Grid refinement converges: on a floorplan whose block boundaries
// align with every tested cell size (so no boundary-straddling error
// pollutes the comparison), successively halving the cells moves the
// block steady states monotonically toward the finest solution.
func TestGridRefinementConverges(t *testing.T) {
	fp, err := floorplan.Grid(floorplan.GridSpec{
		Rows: 2, Cols: 2, CoreW: 2e-3, CoreH: 2e-3, CacheH: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp := linalg.NewVector(fp.NumBlocks())
	for _, ci := range fp.CoreIndices() {
		bp[ci] = 3
	}
	// Die is 4 mm x 6 mm; cell sizes 0.5, 0.25, 0.125 mm all align.
	res := [][2]int{{12, 8}, {24, 16}, {48, 32}}
	var temps []linalg.Vector
	for _, r := range res {
		g, err := NewGrid(fp, DefaultParams(), r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		ts, err := g.SteadyStateBlocks(bp)
		if err != nil {
			t.Fatal(err)
		}
		temps = append(temps, ts)
	}
	d0 := maxAbsDiff(temps[0], temps[2])
	d1 := maxAbsDiff(temps[1], temps[2])
	if d1 > d0 {
		t.Fatalf("refinement diverging: coarse-to-fine %.3f, mid-to-fine %.3f", d0, d1)
	}
}

func maxAbsDiff(a, b linalg.Vector) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Transient cross-check: simulate one DFS window at full power on both
// models; block temperatures track within a tight band.
func TestGridTransientTracksBlockModel(t *testing.T) {
	fp := floorplan.Niagara()
	block, err := NewRC(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	grid := niagaraGrid(t, 20, 28)

	bp := linalg.NewVector(fp.NumBlocks())
	for _, ci := range fp.CoreIndices() {
		bp[ci] = 4
	}
	cellPower, err := grid.SpreadPower(bp)
	if err != nil {
		t.Fatal(err)
	}

	// 0.5 mm cells need a finer Euler step than the paper's 0.4 ms;
	// integrate both models at 0.1 ms over the same 100 ms window.
	db, err := block.Discretize(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := grid.Discretize(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := NewSimulator(db, block.UniformStart(45))
	sg, _ := NewSimulator(dg, grid.CellModel().UniformStart(45))
	sb.Run(bp, 1000)
	sg.Run(cellPower, 1000)

	mean, _, err := grid.BlockTemps(sg.Temps())
	if err != nil {
		t.Fatal(err)
	}
	coarse := sb.Temps()
	for _, ci := range fp.CoreIndices() {
		rise := coarse[ci] - 45
		if rise < 5 {
			continue
		}
		if math.Abs(mean[ci]-coarse[ci]) > 0.2*rise+0.5 {
			t.Fatalf("core %s transient: block %.2f vs grid %.2f",
				fp.Block(ci).Name, coarse[ci], mean[ci])
		}
	}
}

// The paper's 0.4 ms step is unstable on the fine 0.5 mm grid — the
// stability check must reject it rather than integrate garbage. (This
// is a regression test for the power-iteration start vector: a uniform
// start is orthogonal to the grid's unstable checkerboard mode.)
func TestGridRejectsUnstableStep(t *testing.T) {
	g := niagaraGrid(t, 20, 28)
	if _, err := g.Discretize(0.4e-3); err == nil {
		t.Fatal("unstable 0.4 ms step on 0.5 mm cells accepted")
	}
	if _, err := g.Discretize(1e-4); err != nil {
		t.Fatalf("stable 0.1 ms step rejected: %v", err)
	}
}
