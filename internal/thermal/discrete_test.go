package thermal

import (
	"math"
	"strings"
	"testing"

	"protemp/internal/linalg"
)

// PaperDt is the integration step the paper reports as required for
// numerical stability (0.4 ms).
const PaperDt = 0.4e-3

func TestDiscretizeStableAtPaperStep(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatalf("paper's 0.4 ms step rejected: %v", err)
	}
	if rho := d.SpectralRadiusEstimate(); rho >= 1 {
		t.Fatalf("spectral radius %v >= 1", rho)
	}
}

func TestDiscretizeRejectsUnstableStep(t *testing.T) {
	m := niagaraRC(t)
	_, err := m.Discretize(1.0) // 1 s explicit Euler step is far past stability
	if err == nil {
		t.Fatal("unstable step accepted")
	}
	if !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("error %v does not mention instability", err)
	}
}

func TestDiscretizeRejectsNonPositiveStep(t *testing.T) {
	m := niagaraRC(t)
	for _, dt := range []float64{0, -1} {
		if _, err := m.Discretize(dt); err == nil {
			t.Errorf("step %v accepted", dt)
		}
		if _, err := m.DiscretizeExact(dt); err == nil {
			t.Errorf("exact step %v accepted", dt)
		}
	}
}

func TestEulerMatchesPaperEquationForm(t *testing.T) {
	// One Euler step must equal the paper's Eq. 1 computed by hand from
	// the Coefficients() constants.
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	t0 := m.UniformStart(60)
	// Make the state non-uniform so neighbour terms matter.
	for i := range t0 {
		t0[i] += float64(i)
	}
	p := fullPower(m, 2)
	got := linalg.NewVector(m.NumNodes())
	d.Step(got, t0, p)
	for i := 0; i < m.NumNodes(); i++ {
		aAdj, aAmb, b := d.Coefficients(i)
		want := t0[i] + b*p[i] + aAmb*(m.Ambient()-t0[i])
		for j, aij := range aAdj {
			want += aij * (t0[j] - t0[i])
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("node %d: Step %v != Eq.1 %v", i, got[i], want)
		}
	}
}

func TestEulerAgreesWithExact(t *testing.T) {
	m := niagaraRC(t)
	euler, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.DiscretizeExact(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate 250 steps (one 100 ms DFS window) both ways.
	p := fullPower(m, 4)
	se, _ := NewSimulator(euler, m.UniformStart(45))
	sx, _ := NewSimulator(exact, m.UniformStart(45))
	se.Run(p, 250)
	sx.Run(p, 250)
	te, tx := se.Temps(), sx.Temps()
	for i := range te {
		// First-order Euler at a step ~30x under the stability limit:
		// expect sub-0.1 °C agreement over one window.
		if math.Abs(te[i]-tx[i]) > 0.1 {
			t.Fatalf("node %d: Euler %.4f vs exact %.4f", i, te[i], tx[i])
		}
	}
}

func TestSimulatorConvergesToSteadyState(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	p := fullPower(m, 3)
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(d, m.UniformStart(45))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(p, 50000) // 20 s — far beyond every time constant
	got := sim.Temps()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("node %d: simulated %.3f vs steady state %.3f", i, got[i], want[i])
		}
	}
}

func TestSimulatorCoolsTowardAmbient(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(d, m.UniformStart(100))
	if err != nil {
		t.Fatal(err)
	}
	zero := linalg.NewVector(m.NumNodes())
	prevMax := sim.Temps().Max()
	for k := 0; k < 20; k++ {
		sim.Run(zero, 250)
		curMax := sim.Temps().Max()
		if curMax > prevMax+1e-9 {
			t.Fatalf("window %d: temperature rose with zero power: %v -> %v", k, prevMax, curMax)
		}
		prevMax = curMax
	}
	if prevMax < m.Ambient()-1e-6 {
		t.Fatalf("cooled below ambient: %v", prevMax)
	}
}

// Thermal monotonicity: hotter starting state yields a hotter trajectory
// (A has nonnegative entries at a stable Euler step for this network).
func TestTrajectoryMonotoneInInitialState(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	p := fullPower(m, 2)
	cold, _ := NewSimulator(d, m.UniformStart(50))
	hot, _ := NewSimulator(d, m.UniformStart(70))
	for k := 0; k < 1000; k++ {
		cold.Step(p)
		hot.Step(p)
	}
	tc, th := cold.Temps(), hot.Temps()
	for i := range tc {
		if th[i] < tc[i]-1e-9 {
			t.Fatalf("node %d: hot start ended cooler (%.4f < %.4f)", i, th[i], tc[i])
		}
	}
}

// More power never cools any node (B >= 0 and A >= 0).
func TestTrajectoryMonotoneInPower(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	lowSim, _ := NewSimulator(d, m.UniformStart(45))
	highSim, _ := NewSimulator(d, m.UniformStart(45))
	low := fullPower(m, 1)
	high := fullPower(m, 4)
	for k := 0; k < 2000; k++ {
		lowSim.Step(low)
		highSim.Step(high)
	}
	tl, th := lowSim.Temps(), highSim.Temps()
	for i := range tl {
		if th[i] < tl[i]-1e-9 {
			t.Fatalf("node %d: more power ended cooler (%.4f < %.4f)", i, th[i], tl[i])
		}
	}
}

func TestSimulatorStateManagement(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(d, linalg.NewVector(2)); err == nil {
		t.Fatal("wrong-length initial state accepted")
	}
	sim, _ := NewSimulator(d, m.UniformStart(45))
	if err := sim.SetTemps(linalg.NewVector(1)); err == nil {
		t.Fatal("wrong-length SetTemps accepted")
	}
	want := m.UniformStart(77)
	if err := sim.SetTemps(want); err != nil {
		t.Fatal(err)
	}
	if sim.Temp(0) != 77 {
		t.Fatalf("Temp(0) = %v", sim.Temp(0))
	}
	// Temps returns a copy.
	sim.Temps()[0] = -1
	if sim.Temp(0) != 77 {
		t.Fatal("Temps leaked internal state")
	}
}

func TestCoefficientsMatchNeighbours(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Floorplan()
	i, _ := fp.IndexOf("P2")
	aAdj, aAmb, b := d.Coefficients(i)
	if len(aAdj) != len(fp.Neighbors(i)) {
		t.Fatalf("coefficient count %d != neighbour count %d", len(aAdj), len(fp.Neighbors(i)))
	}
	for j, a := range aAdj {
		if a <= 0 {
			t.Errorf("a[%d][%d] = %v, want positive", i, j, a)
		}
	}
	if aAmb <= 0 || b <= 0 {
		t.Errorf("aAmb = %v, b = %v, want positive", aAmb, b)
	}
}

// WithGainError(1) is an exact copy; other κ scale every gain by κ
// while keeping the step stable, and unstable or nonsensical κ are
// rejected.
func TestWithGainError(t *testing.T) {
	m := niagaraRC(t)
	d, err := m.Discretize(PaperDt)
	if err != nil {
		t.Fatal(err)
	}
	same, err := d.WithGainError(1)
	if err != nil {
		t.Fatal(err)
	}
	if !same.A.Equal(d.A, 0) || !same.B.Equal(d.B, 0) || !same.D.Equal(d.D, 0) {
		t.Fatal("κ=1 copy differs from the original")
	}

	p, err := d.WithGainError(1.3)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumNodes()
	for i := 0; i < n; i++ {
		if got, want := p.B.At(i, i), 1.3*d.B.At(i, i); math.Abs(got-want) > 1e-15 {
			t.Fatalf("B[%d][%d] = %v, want %v", i, i, got, want)
		}
		for j := 0; j < n; j++ {
			want := 1.3 * d.A.At(i, j)
			if i == j {
				want = 1 + 1.3*(d.A.At(i, j)-1)
			}
			if math.Abs(p.A.At(i, j)-want) > 1e-15 {
				t.Fatalf("A[%d][%d] = %v, want %v", i, j, p.A.At(i, j), want)
			}
		}
	}
	if rho := p.SpectralRadiusEstimate(); rho >= 1 {
		t.Fatalf("perturbed step unstable: ρ = %v", rho)
	}

	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := d.WithGainError(bad); err == nil {
			t.Fatalf("gain error %v accepted", bad)
		}
	}
	// A κ large enough to destabilize the explicit step must be caught.
	if _, err := d.WithGainError(1e6); err == nil {
		t.Fatal("destabilizing gain error accepted")
	}
}
