package thermal

import (
	"fmt"

	"protemp/internal/linalg"
)

// WindowResponse precomputes the affine dependence of every in-window
// temperature on the initial state and the (constant) power vector:
//
//	T_k = Ak[k]·T_0 + S[k]·p + dsum[k],   k = 0..m
//
// with Ak[k] = A^k, S[k] = Σ_{j<k} A^j·B and dsum[k] = Σ_{j<k} A^j·d.
// This is the linear map the convex program constrains: with T_0 fixed,
// each temperature is affine in p with nonnegative gains (heat only
// heats), which is what makes t ≤ tmax convex in the frequencies.
type WindowResponse struct {
	disc *Discrete
	m    int
	ak   []*linalg.Matrix
	s    []*linalg.Matrix
	dsum []linalg.Vector
}

// Window precomputes responses for horizons 0..m steps.
func (d *Discrete) Window(m int) (*WindowResponse, error) {
	if m < 1 {
		return nil, fmt.Errorf("thermal: window horizon %d, want >= 1", m)
	}
	n := d.NumNodes()
	w := &WindowResponse{
		disc: d,
		m:    m,
		ak:   make([]*linalg.Matrix, m+1),
		s:    make([]*linalg.Matrix, m+1),
		dsum: make([]linalg.Vector, m+1),
	}
	w.ak[0] = linalg.Identity(n)
	w.s[0] = linalg.NewMatrix(n, n)
	w.dsum[0] = linalg.NewVector(n)
	for k := 1; k <= m; k++ {
		// A^k = A·A^{k-1}; S_k = A·S_{k-1} + B; dsum_k = A·dsum_{k-1} + d.
		w.ak[k] = linalg.NewMatrix(n, n).Mul(d.A, w.ak[k-1])
		w.s[k] = linalg.NewMatrix(n, n).Mul(d.A, w.s[k-1])
		w.s[k].Add(w.s[k], d.B)
		w.dsum[k] = d.A.MulVec(linalg.NewVector(n), w.dsum[k-1])
		w.dsum[k].Add(w.dsum[k], d.D)
	}
	return w, nil
}

// Steps returns the horizon m.
func (w *WindowResponse) Steps() int { return w.m }

// Dt returns the step length of the underlying discretization.
func (w *WindowResponse) Dt() float64 { return w.disc.Dt }

// TempAt returns T_k for initial state t0 and constant power p.
func (w *WindowResponse) TempAt(k int, t0, p linalg.Vector) (linalg.Vector, error) {
	if k < 0 || k > w.m {
		return nil, fmt.Errorf("thermal: step %d outside window [0,%d]", k, w.m)
	}
	n := w.disc.NumNodes()
	if len(t0) != n || len(p) != n {
		return nil, fmt.Errorf("thermal: state/power length %d/%d, want %d", len(t0), len(p), n)
	}
	t := w.ak[k].MulVec(linalg.NewVector(n), t0)
	sp := w.s[k].MulVec(linalg.NewVector(n), p)
	t.Add(t, sp)
	t.Add(t, w.dsum[k])
	return t, nil
}

// Affine returns, for step k and node i, the affine decomposition
// t_{k,i} = base + gain·p, evaluated lazily:
//
//	base = (A^k·t0)_i + dsum_k[i],  gain_j = S_k[i,j].
//
// gain aliases internal storage and must not be modified.
func (w *WindowResponse) Affine(k, i int, t0 linalg.Vector) (base float64, gain linalg.Vector, err error) {
	if k < 0 || k > w.m {
		return 0, nil, fmt.Errorf("thermal: step %d outside window [0,%d]", k, w.m)
	}
	n := w.disc.NumNodes()
	if i < 0 || i >= n {
		return 0, nil, fmt.Errorf("thermal: node %d outside [0,%d)", i, n)
	}
	if len(t0) != n {
		return 0, nil, fmt.Errorf("thermal: state length %d, want %d", len(t0), n)
	}
	base = w.ak[k].Row(i).Dot(t0) + w.dsum[k][i]
	return base, w.s[k].Row(i), nil
}

// AffineRows returns, for step k and node i, the full affine
// decomposition of the temperature in both the initial state and the
// power vector:
//
//	t_{k,i} = t0Row·t0 + drive + gain·p
//
// with t0Row the i-th row of A^k, drive = dsum_k[i] the accumulated
// ambient forcing, and gain the i-th row of S_k. Unlike Affine, no
// initial state is needed: callers that re-solve the same program on a
// fresh thermal map every control window hoist t0Row and drive once
// and reduce the per-window offset rewrite to one dot product per
// constraint row. Both returned vectors alias internal storage and
// must not be modified.
func (w *WindowResponse) AffineRows(k, i int) (t0Row linalg.Vector, drive float64, gain linalg.Vector, err error) {
	if k < 0 || k > w.m {
		return nil, 0, nil, fmt.Errorf("thermal: step %d outside window [0,%d]", k, w.m)
	}
	n := w.disc.NumNodes()
	if i < 0 || i >= n {
		return nil, 0, nil, fmt.Errorf("thermal: node %d outside [0,%d)", i, n)
	}
	return w.ak[k].Row(i), w.dsum[k][i], w.s[k].Row(i), nil
}

// MaxGain returns the largest entry of any S_k — useful for scaling
// tolerances in tests and solver preconditioning.
func (w *WindowResponse) MaxGain() float64 {
	var m float64
	for k := 1; k <= w.m; k++ {
		if x := w.s[k].MaxAbs(); x > m {
			m = x
		}
	}
	return m
}
