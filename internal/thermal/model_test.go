package thermal

import (
	"math"
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

func niagaraRC(t *testing.T) *RCModel {
	t.Helper()
	m, err := NewRC(floorplan.Niagara(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fullPower returns the power vector with all cores at pc watts and
// non-core blocks at the paper's 30% aggregate share (area-weighted).
func fullPower(m *RCModel, pc float64) linalg.Vector {
	fp := m.Floorplan()
	p := linalg.NewVector(m.NumNodes())
	cores := fp.CoreIndices()
	var otherArea float64
	for i := 0; i < fp.NumBlocks(); i++ {
		if fp.Block(i).Kind != floorplan.KindCore {
			otherArea += fp.Block(i).Area()
		}
	}
	otherTotal := 0.3 * pc * float64(len(cores))
	for i := 0; i < fp.NumBlocks(); i++ {
		if fp.Block(i).Kind == floorplan.KindCore {
			p[i] = pc
		} else {
			p[i] = otherTotal * fp.Block(i).Area() / otherArea
		}
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Ambient: math.NaN(), DieThickness: 1, Conductivity: 1, VerticalRPerArea: 1, CapacitancePerArea: 1},
		{DieThickness: 0, Conductivity: 1, VerticalRPerArea: 1, CapacitancePerArea: 1},
		{DieThickness: 1, Conductivity: -1, VerticalRPerArea: 1, CapacitancePerArea: 1},
		{DieThickness: 1, Conductivity: 1, VerticalRPerArea: 0, CapacitancePerArea: 1},
		{DieThickness: 1, Conductivity: 1, VerticalRPerArea: 1, CapacitancePerArea: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if _, err := NewRC(floorplan.Niagara(), bad[1]); err == nil {
		t.Error("NewRC accepted invalid params")
	}
}

func TestConductanceStructure(t *testing.T) {
	m := niagaraRC(t)
	g := m.Conductance()
	if !g.IsSymmetric(1e-12 * g.MaxAbs()) {
		t.Fatal("G is not symmetric")
	}
	// Row i: diagonal equals vertical conductance plus the negated sum of
	// off-diagonals (Laplacian + diag structure).
	for i := 0; i < m.NumNodes(); i++ {
		var off float64
		for j := 0; j < m.NumNodes(); j++ {
			if j == i {
				continue
			}
			if g.At(i, j) > 0 {
				t.Fatalf("positive off-diagonal G[%d,%d] = %v", i, j, g.At(i, j))
			}
			off += g.At(i, j)
		}
		wantDiag := -off + m.cap[i]/m.cap[i]*m.gAmb[i] // -off + gAmb
		if math.Abs(g.At(i, i)-wantDiag) > 1e-9*g.MaxAbs() {
			t.Fatalf("diag[%d] = %v, want %v", i, g.At(i, i), wantDiag)
		}
	}
}

func TestAdjacencyMatchesFloorplan(t *testing.T) {
	m := niagaraRC(t)
	fp := m.Floorplan()
	g := m.Conductance()
	for i := 0; i < fp.NumBlocks(); i++ {
		for j := 0; j < fp.NumBlocks(); j++ {
			if i == j {
				continue
			}
			touching := floorplan.SharedEdge(fp.Block(i), fp.Block(j)) > 0
			coupled := g.At(i, j) != 0
			if touching != coupled {
				t.Fatalf("blocks %s-%s: touching=%v coupled=%v",
					fp.Block(i).Name, fp.Block(j).Name, touching, coupled)
			}
		}
	}
}

func TestSteadyStateZeroPowerIsAmbient(t *testing.T) {
	m := niagaraRC(t)
	ts, err := m.SteadyState(linalg.NewVector(m.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range ts {
		if math.Abs(temp-m.Ambient()) > 1e-9 {
			t.Fatalf("node %d steady state %v, want ambient %v", i, temp, m.Ambient())
		}
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	m := niagaraRC(t)
	low, err := m.SteadyState(fullPower(m, 1))
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.SteadyState(fullPower(m, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range low {
		if high[i] <= low[i] {
			t.Fatalf("node %d: more power not hotter: %v vs %v", i, low[i], high[i])
		}
		if low[i] < m.Ambient() {
			t.Fatalf("node %d below ambient with positive power: %v", i, low[i])
		}
	}
}

// Calibration contract for the paper's regime: at full power (4 W/core,
// 30% uncore) the hottest core must exceed the 100 °C limit by a clear
// margin (No-TC violates, Fig. 6) but stay in a physically plausible
// range; at ~35% power the chip must be able to run below 100 °C
// (Pro-Temp has feasible operating points).
func TestNiagaraCalibration(t *testing.T) {
	m := niagaraRC(t)
	full, err := m.SteadyState(fullPower(m, 4))
	if err != nil {
		t.Fatal(err)
	}
	cores := m.Floorplan().CoreIndices()
	var hottest float64
	for _, ci := range cores {
		if full[ci] > hottest {
			hottest = full[ci]
		}
	}
	if hottest < 110 || hottest > 180 {
		t.Fatalf("full-power hottest core %.1f °C, want in [110, 180]", hottest)
	}
	part, err := m.SteadyState(fullPower(m, 4*0.35*0.35)) // ~35% frequency => ~12% power
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range cores {
		if part[ci] >= 100 {
			t.Fatalf("low-power core at %.1f °C, chip has no feasible cool point", part[ci])
		}
	}
}

// The middle cores (P2) must run hotter than periphery cores (P1) at
// equal power — the asymmetry behind the paper's Fig. 9/10.
func TestNiagaraMiddleHotterThanPeriphery(t *testing.T) {
	m := niagaraRC(t)
	ts, err := m.SteadyState(fullPower(m, 4))
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Floorplan()
	p1, _ := fp.IndexOf("P1")
	p2, _ := fp.IndexOf("P2")
	if ts[p2] <= ts[p1] {
		t.Fatalf("P2 (%.2f °C) should be hotter than P1 (%.2f °C)", ts[p2], ts[p1])
	}
}

func TestSteadyStateLengthMismatch(t *testing.T) {
	m := niagaraRC(t)
	if _, err := m.SteadyState(linalg.NewVector(3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEmptyFloorplanRejected(t *testing.T) {
	if _, err := NewRC(&floorplan.Floorplan{}, DefaultParams()); err == nil {
		t.Fatal("empty floorplan accepted")
	}
}

func TestUniformStart(t *testing.T) {
	m := niagaraRC(t)
	v := m.UniformStart(27)
	if len(v) != m.NumNodes() || v[0] != 27 || v[len(v)-1] != 27 {
		t.Fatalf("UniformStart = %v", v)
	}
}
