package thermal

import (
	"fmt"

	"protemp/internal/linalg"
)

// WithLinearLeakage returns a copy of the model augmented with
// temperature-dependent leakage power, linearized around the ambient:
//
//	p_leak,i(T) = leak_i · (T_i − T_amb),   leak_i in W/K
//
// Leakage growing with temperature is the positive feedback the
// paper's reliability citations ([6], [18]) describe; because the
// dependence is linear it folds into the conductance matrix
// (G' = G − diag(leak)) and every downstream consumer — steady state,
// discretization, window responses, the convex program — works
// unchanged, with temperatures still affine in the controllable power.
//
// If the leakage feedback overwhelms the network's ability to remove
// heat (G' loses positive definiteness), the chip has no stable
// operating point at any power: thermal runaway. That condition is
// detected and reported as an error.
func (m *RCModel) WithLinearLeakage(leak linalg.Vector) (*RCModel, error) {
	if len(leak) != m.n {
		return nil, fmt.Errorf("thermal: leakage vector length %d, want %d", len(leak), m.n)
	}
	for i, l := range leak {
		if l < 0 {
			return nil, fmt.Errorf("thermal: negative leakage coefficient %v at node %d", l, i)
		}
	}
	out := &RCModel{
		fp:      m.fp,
		params:  m.params,
		n:       m.n,
		cap:     m.cap.Clone(),
		g:       m.g.Clone(),
		gAmb:    m.gAmb.Clone(),
		ambient: m.ambient,
	}
	for i, l := range leak {
		out.g.AddAt(i, i, -l)
	}
	// Stability: the effective conductance matrix must stay positive
	// definite, otherwise some temperature mode grows without bound.
	if _, err := linalg.Cholesky(out.g); err != nil {
		return nil, fmt.Errorf("thermal: leakage causes thermal runaway (effective conductance not positive definite): %w", err)
	}
	return out, nil
}

// UniformLeakagePerArea builds an area-proportional leakage vector:
// every node leaks coeffPerM2 · area watts per kelvin of rise above
// ambient.
func (m *RCModel) UniformLeakagePerArea(coeffPerM2 float64) linalg.Vector {
	leak := linalg.NewVector(m.n)
	for i := 0; i < m.n; i++ {
		leak[i] = coeffPerM2 * m.fp.Block(i).Area()
	}
	return leak
}
