package tablestore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protemp/internal/core"
)

// testTable builds a small structurally valid table by hand — no
// solver involved, so codec tests stay fast.
func testTable() *core.Table {
	return &core.Table{
		TMax:     100,
		FMax:     1e9,
		NumCores: 2,
		Variant:  "variable",
		TStarts:  []float64{47, 100},
		FTargets: []float64{2.5e8, 5e8},
		Entries: [][]core.Entry{
			{
				{Feasible: true, Freqs: []float64{2e8, 3e8}, AvgFreq: 2.5e8, TotalPower: 1.2, PeakTemp: 61},
				{Feasible: true, Freqs: []float64{5e8, 5e8}, AvgFreq: 5e8, TotalPower: 2.5, PeakTemp: 72},
			},
			{
				{Feasible: true, Freqs: []float64{1e8, 4e8}, AvgFreq: 2.5e8, TotalPower: 1.5, PeakTemp: 88},
				{},
			},
		},
		Stats: core.TableStats{Solves: 4, Feasible: 3, NewtonIters: 40},
	}
}

func tablesEqual(t *testing.T, got, want *core.Table) {
	t.Helper()
	if got.NumCores != want.NumCores || got.FMax != want.FMax || got.Variant != want.Variant {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("rows: %d vs %d", len(got.Entries), len(want.Entries))
	}
	for ti := range want.Entries {
		for fi := range want.Entries[ti] {
			g, w := got.Entries[ti][fi], want.Entries[ti][fi]
			if g.Feasible != w.Feasible || g.AvgFreq != w.AvgFreq {
				t.Fatalf("entry (%d,%d) mismatch: %+v vs %+v", ti, fi, g, w)
			}
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecGzipJSON} {
		var buf bytes.Buffer
		if err := EncodeCodec(&buf, testTable(), codec); err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		tablesEqual(t, got, testTable())
	}
}

func TestDecodeLegacyJSONFallback(t *testing.T) {
	var buf bytes.Buffer
	if err := testTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("legacy fallback: %v", err)
	}
	tablesEqual(t, got, testTable())
}

func TestDecodeDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeCodec(&buf, testTable(), CodecJSON); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-2] ^= 0xff // flip a payload byte under the checksum
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted payload decoded without error")
	}
}

// TestDecodeRejectsImplausibleLength: a corrupted length field must
// fail cleanly, not panic or OOM on the allocation.
func TestDecodeRejectsImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testTable()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Length lives after magic (8), version (4) and codec (1).
	for i := 13; i < 21; i++ {
		b[i] = 0xff
	}
	if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("want length error, got %v", err)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testTable()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // version byte
	if _, err := Decode(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestEncodeRejectsInvalidTable(t *testing.T) {
	bad := testTable()
	bad.Entries = bad.Entries[:1] // row count no longer matches TStarts
	if err := Encode(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid table encoded without error")
	}
}

func TestStoreSaveLoadKeysDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab12", 16)
	if _, err := s.Load(key); err != ErrNotFound {
		t.Fatalf("missing key: want ErrNotFound, got %v", err)
	}
	if err := s.Save(key, testTable()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, got, testTable())

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("keys = %v", keys)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(key); err != ErrNotFound {
		t.Fatalf("after delete: want ErrNotFound, got %v", err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ABCDEF1234567890", strings.Repeat("x", 64)} {
		if err := s.Save(key, testTable()); err == nil {
			t.Fatalf("key %q accepted", key)
		}
		if _, err := s.Load(key); err == nil || err == ErrNotFound {
			t.Fatalf("key %q loaded: %v", key, err)
		}
	}
}

// TestStoreLoadCorruptFile makes sure a torn or corrupted file surfaces
// as an error (counted upstream), not a bogus table.
func TestStoreLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("00ff", 16)
	if err := os.WriteFile(filepath.Join(dir, key+FileExt), []byte("PTBLSTO\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(key); err == nil || err == ErrNotFound {
		t.Fatalf("corrupt file: got %v", err)
	}
}
