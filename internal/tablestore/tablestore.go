// Package tablestore persists Phase-1 tables across process restarts:
// a versioned on-disk codec for core.Table plus a directory-backed
// store keyed by core.TableSpec.CacheKey(). The paper's split — an
// expensive offline convex sweep feeding a cheap online controller —
// only pays off in a service if the sweep survives the service: the
// store is the second tier under the engine's in-memory LRU, so a
// restarted server comes up warm and tables produced by protemp-table
// can be dropped into a serving directory.
//
// On-disk format (version 1):
//
//	magic   8 bytes  "PTBLSTO\x01"
//	version uint32   little-endian, currently 1
//	codec   uint8    0 = raw JSON, 1 = gzip-compressed JSON
//	length  uint64   little-endian payload byte count (pre-compression)
//	sum     32 bytes SHA-256 of the (uncompressed) JSON payload
//	payload          the table, core.Table JSON, possibly gzipped
//
// Decode sniffs the magic and falls back to the legacy bare-JSON
// format emitted by earlier protemp-table builds, so both generations
// of files load through one entry point.
package tablestore

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"protemp/internal/core"
)

// magic identifies a versioned table file. The trailing byte is
// deliberately non-printable so a JSON document can never collide.
var magic = [8]byte{'P', 'T', 'B', 'L', 'S', 'T', 'O', 0x01}

// Version is the current codec version.
const Version = 1

// Codec selects the payload encoding inside the versioned envelope.
type Codec uint8

const (
	// CodecJSON stores the payload as raw JSON.
	CodecJSON Codec = 0
	// CodecGzipJSON stores the payload gzip-compressed (the default:
	// tables are dense float grids that compress well).
	CodecGzipJSON Codec = 1
)

// ErrNotFound reports a key with no stored table.
var ErrNotFound = errors.New("tablestore: table not found")

// Encode writes t through the versioned envelope with the default
// gzip codec.
func Encode(w io.Writer, t *core.Table) error {
	return EncodeCodec(w, t, CodecGzipJSON)
}

// EncodeCodec writes t with an explicit payload codec.
func EncodeCodec(w io.Writer, t *core.Table, codec Codec) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("tablestore: refusing to encode invalid table: %w", err)
	}
	payload, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("tablestore: marshal table: %w", err)
	}
	sum := sha256.Sum256(payload)

	var body []byte
	switch codec {
	case CodecJSON:
		body = payload
	case CodecGzipJSON:
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			return fmt.Errorf("tablestore: gzip: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("tablestore: gzip: %w", err)
		}
		body = buf.Bytes()
	default:
		return fmt.Errorf("tablestore: unknown codec %d", codec)
	}

	var header bytes.Buffer
	header.Write(magic[:])
	binary.Write(&header, binary.LittleEndian, uint32(Version))
	header.WriteByte(byte(codec))
	binary.Write(&header, binary.LittleEndian, uint64(len(payload)))
	header.Write(sum[:])
	if _, err := w.Write(header.Bytes()); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// Decode reads a table in either format: the versioned envelope
// (checksum-verified) or, when the magic is absent, the legacy bare
// JSON emitted by earlier protemp-table builds. The decoded table is
// structurally validated before it is returned.
func Decode(r io.Reader) (*core.Table, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic))
	if err != nil || !bytes.Equal(head, magic[:]) {
		// Legacy fallback: a bare JSON document (possibly shorter than
		// the magic itself — Peek's short read still returns what it has).
		return core.ReadTableJSON(br)
	}
	if _, err := br.Discard(len(magic)); err != nil {
		return nil, err
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("tablestore: read version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("tablestore: unsupported version %d (want %d)", version, Version)
	}
	codecByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("tablestore: read codec: %w", err)
	}
	var length uint64
	if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
		return nil, fmt.Errorf("tablestore: read length: %w", err)
	}
	// Bound the allocation before trusting an on-disk length: a
	// corrupted header must degrade like any other bad file, not
	// panic or OOM the process.
	const maxPayload = 1 << 30
	if length == 0 || length > maxPayload {
		return nil, fmt.Errorf("tablestore: implausible payload length %d (corrupt header)", length)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("tablestore: read checksum: %w", err)
	}

	var payloadSrc io.Reader = br
	switch Codec(codecByte) {
	case CodecJSON:
	case CodecGzipJSON:
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tablestore: gzip: %w", err)
		}
		defer zr.Close()
		payloadSrc = zr
	default:
		return nil, fmt.Errorf("tablestore: unknown codec %d", codecByte)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(payloadSrc, payload); err != nil {
		return nil, fmt.Errorf("tablestore: read payload: %w", err)
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, fmt.Errorf("tablestore: payload checksum mismatch (corrupt file)")
	}
	var t core.Table
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, fmt.Errorf("tablestore: decode table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// FileExt is the extension stored table files carry.
const FileExt = ".ptbl"

// Store is a directory of versioned table files keyed by
// core.TableSpec.CacheKey(). Writes are atomic (temp file + rename) so
// concurrent servers sharing one directory never observe a torn file.
// A Store is safe for concurrent use; the filesystem provides the
// synchronization.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tablestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tablestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// validKey guards the key-to-filename mapping: cache keys are
// lowercase hex fingerprints, anything else (path separators, "..") is
// rejected before it can touch the filesystem.
func validKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("tablestore: key length %d outside [8, 128]", len(key))
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("tablestore: key %q is not lowercase hex", key)
		}
	}
	return nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+FileExt)
}

// Load reads, verifies and returns the table stored under key.
// A missing key returns ErrNotFound.
func (s *Store) Load(key string) (*core.Table, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("tablestore: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("tablestore: key %s: %w", key, err)
	}
	return t, nil
}

// Save writes the table under key atomically: encode to a temp file in
// the same directory, fsync, then rename over the final path.
func (s *Store) Save(key string, t *core.Table) error {
	if err := validKey(key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("tablestore: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := Encode(tmp, t); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("tablestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tablestore: %w", err)
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		return fmt.Errorf("tablestore: %w", err)
	}
	return nil
}

// Delete removes the table stored under key; a missing key is not an
// error.
func (s *Store) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("tablestore: %w", err)
	}
	return nil
}

// Keys lists the stored cache keys in sorted order.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tablestore: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, FileExt) || strings.HasPrefix(name, ".") {
			continue
		}
		key := strings.TrimSuffix(name, FileExt)
		if validKey(key) == nil {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}
