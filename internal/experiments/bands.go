package experiments

import (
	"context"
	"fmt"
	"io"

	"protemp/internal/sim"
	"protemp/internal/workload"
)

// BandsResult is the Fig. 6 experiment: per-policy fractions of time
// the cores (averaged) spend in each temperature band.
type BandsResult struct {
	Figure    string
	Workload  string
	Policies  []string
	Labels    []string    // band labels, e.g. <80, 80-90, 90-100, >100
	Fractions [][]float64 // [policy][band]
	WaitMean  []float64   // mean task waiting time per policy, seconds
}

// Fig6a runs the band comparison on the mixed-benchmark trace.
func (s *Setup) Fig6a(ctx context.Context) (*BandsResult, error) {
	return s.bands(ctx, "Fig6a", "mixed", s.Mixed)
}

// Fig6b runs it on the most computation-intensive trace, where the
// paper reports Basic-DFS spending up to 40% of the time above the
// limit.
func (s *Setup) Fig6b(ctx context.Context) (*BandsResult, error) {
	return s.bands(ctx, "Fig6b", "compute-intensive", s.Heavy)
}

func (s *Setup) bands(ctx context.Context, figure, name string, tr *workload.Trace) (*BandsResult, error) {
	n := s.Chip.NumCores()
	fmax := s.Chip.FMax()
	policies := []sim.Policy{
		&sim.NoTC{NumCores: n, FMax: fmax},
		&sim.BasicDFS{NumCores: n, FMax: fmax, Threshold: BasicThreshold},
		&sim.ProTemp{Controller: s.Ctrl},
	}
	out := &BandsResult{Figure: figure, Workload: name}
	for _, p := range policies {
		res, err := s.runTrace(ctx, p, tr, nil)
		if err != nil {
			return nil, err
		}
		if out.Labels == nil {
			out.Labels = res.AvgBands.Labels()
		}
		out.Policies = append(out.Policies, p.Name())
		out.Fractions = append(out.Fractions, res.AvgBands.Fractions())
		out.WaitMean = append(out.WaitMean, res.Wait.Mean())
	}
	return out, nil
}

// Render prints the Fig. 6-style normalized table.
func (r *BandsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (%s workload): fraction of core-time per band\n", r.Figure, r.Workload)
	fmt.Fprintf(w, "%-10s", "policy")
	for _, l := range r.Labels {
		fmt.Fprintf(w, " %8s", l)
	}
	fmt.Fprintln(w)
	for i, p := range r.Policies {
		fmt.Fprintf(w, "%-10s", p)
		for _, f := range r.Fractions[i] {
			fmt.Fprintf(w, " %8.3f", f)
		}
		fmt.Fprintln(w)
	}
}

// HotFraction returns the fraction of time above the limit for the
// named policy (-1 if unknown).
func (r *BandsResult) HotFraction(policy string) float64 {
	for i, p := range r.Policies {
		if p == policy {
			return r.Fractions[i][len(r.Fractions[i])-1]
		}
	}
	return -1
}

// WaitResult is the Fig. 7 experiment: average task waiting time of
// Pro-Temp normalized against Basic-DFS on the compute-intensive load.
type WaitResult struct {
	BasicMean float64 // seconds
	ProMean   float64 // seconds
	// Ratio is ProMean/BasicMean; the paper reports ≈0.4 (a 60%
	// reduction).
	Ratio float64
}

// Fig7 runs the waiting-time comparison.
func (s *Setup) Fig7(ctx context.Context) (*WaitResult, error) {
	n := s.Chip.NumCores()
	fmax := s.Chip.FMax()
	basic, err := s.runTrace(ctx, &sim.BasicDFS{NumCores: n, FMax: fmax, Threshold: BasicThreshold}, s.Heavy, nil)
	if err != nil {
		return nil, err
	}
	pro, err := s.runTrace(ctx, &sim.ProTemp{Controller: s.Ctrl}, s.Heavy, nil)
	if err != nil {
		return nil, err
	}
	r := &WaitResult{BasicMean: basic.Wait.Mean(), ProMean: pro.Wait.Mean()}
	if r.BasicMean > 0 {
		r.Ratio = r.ProMean / r.BasicMean
	}
	return r, nil
}

// Render prints the normalized bar pair.
func (r *WaitResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig7: normalized average task waiting time\n")
	fmt.Fprintf(w, "  Basic-DFS  1.000 (%.4f s)\n", r.BasicMean)
	fmt.Fprintf(w, "  Pro-Temp   %.3f (%.4f s)\n", r.Ratio, r.ProMean)
}

// AssignResult is the Fig. 11 / §5.4 experiment: the effect of the
// temperature-aware (coolest-first) task assignment.
type AssignResult struct {
	// BasicFirstIdle / BasicCoolest are Basic-DFS fractions of time
	// above the limit under each assignment policy.
	BasicFirstIdle, BasicCoolest float64
	// ProGradFirstIdle / ProGradCoolest are Pro-Temp mean spatial
	// gradients (°C) under each assignment policy.
	ProGradFirstIdle, ProGradCoolest float64
	// GradReductionPct is the Pro-Temp gradient reduction from the
	// assignment policy; the paper reports ≈16%.
	GradReductionPct float64
	// ProMaxTemp confirms the guarantee holds with the combined scheme.
	ProMaxTemp float64
}

// Fig11 runs the assignment-policy study on the bursty medium load
// (a fully saturated chip leaves at most one idle core at a time, so
// every assignment policy degenerates to the same choice).
func (s *Setup) Fig11(ctx context.Context) (*AssignResult, error) {
	n := s.Chip.NumCores()
	fmax := s.Chip.FMax()
	coreBlocks := make([]int, n)
	for i := range coreBlocks {
		coreBlocks[i] = s.Chip.CoreBlockIndex(i)
	}
	cool := sim.NewCoolestFirst(s.Chip.Floorplan(), coreBlocks, 0.5)

	run := func(p sim.Policy, a sim.Assigner) (*sim.Result, error) {
		return sim.Run(ctx, sim.Config{
			Chip: s.Chip, Disc: s.Disc, Policy: p, Assigner: a,
			Trace:  s.Assign,
			Window: s.Fid.Dt * float64(s.Fid.WindowSteps),
			TMax:   TMax,
		})
	}
	basicFI, err := run(&sim.BasicDFS{NumCores: n, FMax: fmax, Threshold: BasicThreshold}, nil)
	if err != nil {
		return nil, err
	}
	basicCF, err := run(&sim.BasicDFS{NumCores: n, FMax: fmax, Threshold: BasicThreshold}, cool)
	if err != nil {
		return nil, err
	}
	proFI, err := run(&sim.ProTemp{Controller: s.Ctrl}, nil)
	if err != nil {
		return nil, err
	}
	proCF, err := run(&sim.ProTemp{Controller: s.Ctrl}, cool)
	if err != nil {
		return nil, err
	}
	r := &AssignResult{
		BasicFirstIdle:   basicFI.ViolationFrac,
		BasicCoolest:     basicCF.ViolationFrac,
		ProGradFirstIdle: proFI.Gradient.Mean(),
		ProGradCoolest:   proCF.Gradient.Mean(),
		ProMaxTemp:       proCF.MaxCoreTemp,
	}
	if r.ProGradFirstIdle > 0 {
		r.GradReductionPct = 100 * (r.ProGradFirstIdle - r.ProGradCoolest) / r.ProGradFirstIdle
	}
	return r, nil
}

// Render prints the Fig. 11 bars and the §5.4 gradient claim.
func (r *AssignResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig11: Basic-DFS time above %g °C\n", float64(TMax))
	fmt.Fprintf(w, "  first-idle assignment     %.1f%%\n", 100*r.BasicFirstIdle)
	fmt.Fprintf(w, "  coolest-first assignment  %.1f%%\n", 100*r.BasicCoolest)
	fmt.Fprintf(w, "§5.4: Pro-Temp mean spatial gradient: %.2f °C -> %.2f °C (%.1f%% reduction), max temp %.2f °C\n",
		r.ProGradFirstIdle, r.ProGradCoolest, r.GradReductionPct, r.ProMaxTemp)
}
