package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"protemp/internal/core"
	"protemp/internal/solver"
)

// SweepResult is the Fig. 9 experiment: the maximum supportable average
// frequency versus starting temperature, for uniform and variable
// (per-core) frequency assignment. Variable dominates because the
// periphery cores can run faster than the sandwiched middle cores.
type SweepResult struct {
	TStarts []float64
	// UniformMHz / VariableMHz are the supported averages in MHz.
	UniformMHz, VariableMHz []float64
}

// Fig9 sweeps starting temperatures.
func (s *Setup) Fig9(ctx context.Context) (*SweepResult, error) {
	out := &SweepResult{TStarts: append([]float64(nil), s.Fid.SweepTStarts...)}
	for _, tstart := range out.TStarts {
		uni, vari, err := s.maxSupported(ctx, tstart)
		if err != nil {
			return nil, err
		}
		out.UniformMHz = append(out.UniformMHz, uni/1e6)
		out.VariableMHz = append(out.VariableMHz, vari/1e6)
	}
	return out, nil
}

// maxSupported finds the highest supportable average-frequency targets
// at the given starting temperature for the uniform and the variable
// assignment. The uniform bound comes from the dedicated scalar
// bisection; the variable bound is found by bisecting the target of the
// full program, seeded at the uniform bound — a uniform assignment is a
// feasible witness for the variable program, so the variable bound can
// never fall below it (the solver's strict-feasibility margins would
// otherwise bias the measurement near the boundary).
func (s *Setup) maxSupported(ctx context.Context, tstart float64) (uniform, variable float64, err error) {
	uniform, _, err = core.SolveUniformBisect(s.Spec(tstart, 0, core.VariantUniform))
	if err != nil {
		return 0, 0, err
	}
	fmax := s.Chip.FMax()
	var solveErr error
	feasible := func(fn float64) bool {
		if solveErr != nil {
			return false
		}
		if fn*fmax <= uniform {
			return true // uniform witness
		}
		a, err := core.SolveContext(ctx, s.Spec(tstart, fn*fmax, core.VariantVariable))
		if err != nil {
			solveErr = err
			return false
		}
		return a.Feasible
	}
	fn, ok := solver.BisectMax(uniform/fmax, 1, 1e-3, feasible)
	if solveErr != nil {
		return 0, 0, solveErr
	}
	if !ok {
		return uniform, uniform, nil
	}
	return uniform, fn * fmax, nil
}

// Render prints the two series.
func (r *SweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig9: supported average frequency vs starting temperature (MHz)")
	fmt.Fprintf(w, "%8s %10s %10s\n", "tstart", "uniform", "variable")
	for i, ts := range r.TStarts {
		fmt.Fprintf(w, "%8.0f %10.0f %10.0f\n", ts, r.UniformMHz[i], r.VariableMHz[i])
	}
}

// PerCoreResult is the Fig. 10 experiment: the per-core frequencies the
// optimizer assigns to a periphery core (P1) and a middle core (P2)
// across starting temperatures, at the highest supportable load.
type PerCoreResult struct {
	TStarts []float64
	// P1MHz / P2MHz are the assigned frequencies in MHz.
	P1MHz, P2MHz []float64
}

// Fig10 runs the per-core sweep.
func (s *Setup) Fig10(ctx context.Context) (*PerCoreResult, error) {
	p1 := s.coreIndexOf("P1")
	p2 := s.coreIndexOf("P2")
	if p1 < 0 || p2 < 0 {
		return nil, fmt.Errorf("experiments: P1/P2 not found on floorplan")
	}
	out := &PerCoreResult{TStarts: append([]float64(nil), s.Fid.SweepTStarts...)}
	for _, tstart := range out.TStarts {
		uniform, variable, err := s.maxSupported(ctx, tstart)
		if err != nil {
			return nil, err
		}
		if variable <= 0 {
			out.P1MHz = append(out.P1MHz, 0)
			out.P2MHz = append(out.P2MHz, 0)
			continue
		}
		// Probe inside the band where only a non-uniform assignment
		// works (above the uniform bound, just inside the variable
		// bound); when no such band exists, sit just inside the
		// boundary. The power-minimizing optimum is uniform whenever
		// thermal constraints leave slack, so this is where the paper's
		// P1-vs-P2 asymmetry lives.
		target := 0.995 * variable
		if variable > uniform*1.002 {
			target = uniform + 0.9*(variable-uniform)
		}
		a, err := core.SolveContext(ctx, s.Spec(tstart, target, core.VariantVariable))
		if err != nil {
			return nil, err
		}
		if !a.Feasible {
			// Boundary noise: retreat a little further.
			a, err = core.SolveContext(ctx, s.Spec(tstart, 0.98*target, core.VariantVariable))
			if err != nil {
				return nil, err
			}
		}
		if !a.Feasible {
			out.P1MHz = append(out.P1MHz, 0)
			out.P2MHz = append(out.P2MHz, 0)
			continue
		}
		out.P1MHz = append(out.P1MHz, a.Freqs[p1]/1e6)
		out.P2MHz = append(out.P2MHz, a.Freqs[p2]/1e6)
	}
	return out, nil
}

func (s *Setup) coreIndexOf(name string) int {
	bi, ok := s.Chip.Floorplan().IndexOf(name)
	if !ok {
		return -1
	}
	for j := 0; j < s.Chip.NumCores(); j++ {
		if s.Chip.CoreBlockIndex(j) == bi {
			return j
		}
	}
	return -1
}

// Render prints the two series.
func (r *PerCoreResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig10: per-core assigned frequency vs starting temperature (MHz)")
	fmt.Fprintf(w, "%8s %10s %10s\n", "tstart", "P1 (edge)", "P2 (mid)")
	for i, ts := range r.TStarts {
		fmt.Fprintf(w, "%8.0f %10.0f %10.0f\n", ts, r.P1MHz[i], r.P2MHz[i])
	}
}

// CostResult is the §5.1 design-time accounting: solver cost per point
// and for the full Phase-1 table.
type CostResult struct {
	SingleSolve time.Duration
	TablePoints int
	TableTime   time.Duration
	NewtonIters int
	Feasible    int
}

// Section51 measures a representative single solve and regenerates the
// table, timing both. (The table in the Setup was already generated;
// this measures a fresh run.)
func (s *Setup) Section51(ctx context.Context) (*CostResult, error) {
	start := time.Now()
	a, err := core.SolveContext(ctx, s.Spec(67, 500e6, core.VariantVariable))
	if err != nil {
		return nil, err
	}
	single := time.Since(start)
	_ = a

	start = time.Now()
	tbl, err := core.GenerateTable(ctx, core.TableSpec{
		Chip:     s.Chip,
		Window:   s.Window,
		TMax:     TMax,
		TStarts:  s.Fid.TableTStarts,
		FTargets: s.Fid.TableFTargets,
	})
	if err != nil {
		return nil, err
	}
	return &CostResult{
		SingleSolve: single,
		TablePoints: tbl.Stats.Solves,
		TableTime:   time.Since(start),
		NewtonIters: tbl.Stats.NewtonIters,
		Feasible:    tbl.Stats.Feasible,
	}, nil
}

// Render prints the cost summary next to the paper's reference points.
func (r *CostResult) Render(w io.Writer) {
	fmt.Fprintf(w, "§5.1: single solve %v (paper: <2 min with CVX); table of %d points in %v (paper: few hours), %d feasible, %d Newton iterations\n",
		r.SingleSolve.Round(time.Millisecond), r.TablePoints, r.TableTime.Round(time.Millisecond), r.Feasible, r.NewtonIters)
}
