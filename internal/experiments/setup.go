// Package experiments regenerates every figure of the paper's
// evaluation (Section 5) on the Niagara-8 model: the Basic-DFS and
// Pro-Temp temperature snapshots (Figs. 1-2), the time-in-band
// comparison for mixed and compute-intensive loads (Fig. 6a/b), the
// waiting-time comparison (Fig. 7), the Pro-Temp gradient trace
// (Fig. 8), the uniform-vs-variable and per-core frequency sweeps
// (Figs. 9-10), the task-assignment study (Fig. 11), and the Phase-1
// cost accounting of §5.1.
//
// Each experiment is a pure function of a Setup so the CLI, the
// benchmark harness and the tests all share one implementation.
package experiments

import (
	"context"
	"fmt"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// Fidelity controls the cost/accuracy trade of an experiment run.
type Fidelity struct {
	// Dt is the thermal co-simulation step in seconds.
	Dt float64
	// WindowSteps is the DFS-window horizon in steps (Dt·WindowSteps =
	// 100 ms in both presets).
	WindowSteps int
	// MixedSeconds / HeavySeconds / AssignSeconds are the trace arrival
	// horizons for the mixed (Fig. 6a), compute-intensive (Fig. 6b/7)
	// and assignment-study (Fig. 11) workloads.
	MixedSeconds, HeavySeconds, AssignSeconds float64
	// TableTStarts / TableFTargets are the Phase-1 grids.
	TableTStarts  []float64
	TableFTargets []float64
	// SweepTStarts is the Fig. 9/10 temperature sweep.
	SweepTStarts []float64
	// Seed drives trace generation.
	Seed int64
}

// Paper returns the full paper-resolution configuration: 0.4 ms steps,
// 250-step windows, the ~60k-task mixed trace, and the published
// temperature sweep.
func Paper() Fidelity {
	return Fidelity{
		Dt:            0.4e-3,
		WindowSteps:   250,
		MixedSeconds:  71,
		HeavySeconds:  30,
		AssignSeconds: 30,
		TableTStarts:  core.DefaultTStarts(),
		TableFTargets: core.DefaultFTargets(1e9),
		SweepTStarts:  []float64{27, 37, 47, 57, 67, 77, 87, 97},
		Seed:          1,
	}
}

// Quick returns a reduced configuration for benchmarks and tests:
// 1 ms steps, shorter traces, coarser grids. The shapes of all results
// are preserved; only resolution drops.
func Quick() Fidelity {
	return Fidelity{
		Dt:            1e-3,
		WindowSteps:   100,
		MixedSeconds:  10,
		HeavySeconds:  8,
		AssignSeconds: 10,
		TableTStarts:  []float64{47, 57, 67, 77, 87, 97, 100},
		TableFTargets: []float64{125e6, 250e6, 375e6, 500e6, 625e6, 750e6, 875e6, 1000e6},
		SweepTStarts:  []float64{27, 47, 67, 87, 97},
		Seed:          1,
	}
}

// Validate sanity-checks the fidelity.
func (f Fidelity) Validate() error {
	switch {
	case f.Dt <= 0:
		return fmt.Errorf("experiments: non-positive dt %g", f.Dt)
	case f.WindowSteps < 1:
		return fmt.Errorf("experiments: window steps %d", f.WindowSteps)
	case f.MixedSeconds <= 0 || f.HeavySeconds <= 0 || f.AssignSeconds <= 0:
		return fmt.Errorf("experiments: non-positive trace horizons")
	case len(f.TableTStarts) == 0 || len(f.TableFTargets) == 0:
		return fmt.Errorf("experiments: empty table grids")
	case len(f.SweepTStarts) == 0:
		return fmt.Errorf("experiments: empty sweep grid")
	}
	return nil
}

// Setup holds everything the experiments share: the modeled chip, the
// thermal model at the chosen step, the Phase-1 table and controller,
// and the two benchmark traces.
type Setup struct {
	Fid    Fidelity
	Chip   *power.Chip
	Model  *thermal.RCModel
	Disc   *thermal.Discrete
	Window *thermal.WindowResponse
	Table  *core.Table
	Ctrl   *core.Controller
	Mixed  *workload.Trace
	Heavy  *workload.Trace
	Assign *workload.Trace
}

// TMax is the paper's maximum temperature limit.
const TMax = 100

// BasicThreshold is the paper's Basic-DFS trigger temperature.
const BasicThreshold = 90

// NewSetup builds the evaluation rig, including Phase-1 table
// generation (the expensive part — the paper's "few hours" with CVX,
// seconds to minutes here). Cancelling ctx aborts table generation.
func NewSetup(ctx context.Context, fid Fidelity) (*Setup, error) {
	if err := fid.Validate(); err != nil {
		return nil, err
	}
	fp := floorplan.Niagara()
	chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		return nil, err
	}
	disc, err := model.Discretize(fid.Dt)
	if err != nil {
		return nil, err
	}
	window, err := disc.Window(fid.WindowSteps)
	if err != nil {
		return nil, err
	}
	table, err := core.GenerateTable(ctx, core.TableSpec{
		Chip:     chip,
		Window:   window,
		TMax:     TMax,
		TStarts:  fid.TableTStarts,
		FTargets: fid.TableFTargets,
	})
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(table)
	if err != nil {
		return nil, err
	}
	mixed, err := workload.Mixed(fid.Seed, chip.NumCores(), fid.MixedSeconds).Generate()
	if err != nil {
		return nil, err
	}
	heavy, err := workload.ComputeIntensive(fid.Seed, chip.NumCores(), fid.HeavySeconds).Generate()
	if err != nil {
		return nil, err
	}
	assign, err := workload.AssignStudy(fid.Seed, chip.NumCores(), fid.AssignSeconds).Generate()
	if err != nil {
		return nil, err
	}
	return &Setup{
		Fid: fid, Chip: chip, Model: model, Disc: disc, Window: window,
		Table: table, Ctrl: ctrl, Mixed: mixed, Heavy: heavy, Assign: assign,
	}, nil
}

// Spec returns a solve spec against this setup.
func (s *Setup) Spec(tstart, ftarget float64, variant core.Variant) *core.Spec {
	return &core.Spec{
		Chip:    s.Chip,
		Window:  s.Window,
		TStart:  tstart,
		TMax:    TMax,
		FTarget: ftarget,
		Variant: variant,
	}
}
