package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	setupOnce sync.Once
	setupV    *Setup
	setupErr  error
)

func quickSetup(t *testing.T) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		setupV, setupErr = NewSetup(context.Background(), Quick())
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupV
}

func TestFidelityValidate(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatalf("paper fidelity invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatalf("quick fidelity invalid: %v", err)
	}
	bad := Quick()
	bad.Dt = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := NewSetup(context.Background(), bad); err == nil {
		t.Error("NewSetup accepted invalid fidelity")
	}
	bad2 := Quick()
	bad2.TableTStarts = nil
	if err := bad2.Validate(); err == nil {
		t.Error("empty grid accepted")
	}
}

// Fig. 1 vs Fig. 2: Basic-DFS violates the limit, Pro-Temp does not —
// the paper's headline contrast.
func TestFig1Fig2Contrast(t *testing.T) {
	s := quickSetup(t)
	f1, err := s.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Fig2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f1.MaxTemp <= TMax {
		t.Fatalf("Fig1 Basic-DFS never exceeded the limit (max %.1f)", f1.MaxTemp)
	}
	if f2.MaxTemp > TMax+0.01 {
		t.Fatalf("Fig2 Pro-Temp exceeded the limit (max %.2f)", f2.MaxTemp)
	}
	if f2.ViolationFrac != 0 {
		t.Fatalf("Fig2 violation fraction %.4f", f2.ViolationFrac)
	}
	if len(f1.Series) != 1 || f1.Series[0].Name != "P1" {
		t.Fatalf("Fig1 series wrong: %+v", f1.Series)
	}
}

// Fig. 6: Pro-Temp's >100 band is empty; Basic-DFS's is substantial on
// the compute-intensive load (paper: up to 40%).
func TestFig6Shapes(t *testing.T) {
	s := quickSetup(t)
	a, err := s.Fig6a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fig6b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*BandsResult{a, b} {
		if hot := r.HotFraction("Pro-Temp"); hot != 0 {
			t.Fatalf("%s: Pro-Temp hot fraction %.4f", r.Figure, hot)
		}
		if r.HotFraction("nonexistent") != -1 {
			t.Fatal("unknown policy should report -1")
		}
	}
	basicHot := b.HotFraction("Basic-DFS")
	if basicHot < 0.05 {
		t.Fatalf("Fig6b Basic-DFS hot fraction %.3f too small to match the paper's shape", basicHot)
	}
	noTCHot := b.HotFraction("No-TC")
	if noTCHot <= basicHot {
		t.Fatalf("No-TC (%.3f) should be above Basic-DFS (%.3f)", noTCHot, basicHot)
	}
	// Mixed load is milder than compute-intensive for the baselines.
	if a.HotFraction("Basic-DFS") > basicHot {
		t.Fatalf("mixed hot fraction %.3f above compute-intensive %.3f",
			a.HotFraction("Basic-DFS"), basicHot)
	}
}

// Fig. 7: Pro-Temp reduces waiting substantially (paper: ~60%).
func TestFig7Shape(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.BasicMean <= 0 {
		t.Fatal("Basic-DFS waiting zero; comparison vacuous")
	}
	if r.Ratio >= 0.8 {
		t.Fatalf("waiting ratio %.3f does not reproduce a substantial reduction", r.Ratio)
	}
}

// Fig. 8: the gradient between P1 and P2 stays small under Pro-Temp.
func TestFig8Gradient(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("want P1+P2 series, got %d", len(r.Series))
	}
	if r.MaxTemp > TMax+0.01 {
		t.Fatalf("Fig8 violated the limit: %.2f", r.MaxTemp)
	}
	if r.MeanGradient > 10 {
		t.Fatalf("mean gradient %.2f °C too large for the Fig. 8 claim", r.MeanGradient)
	}
}

// Fig. 9: variable ≥ uniform everywhere; both decrease with
// temperature; variable is strictly better somewhere hot.
func TestFig9Shape(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Fig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	anyStrict := false
	for i := range r.TStarts {
		if r.VariableMHz[i] < r.UniformMHz[i]-5 {
			t.Fatalf("tstart %g: variable %.0f below uniform %.0f",
				r.TStarts[i], r.VariableMHz[i], r.UniformMHz[i])
		}
		if r.VariableMHz[i] > r.UniformMHz[i]+5 {
			anyStrict = true
		}
		if i > 0 {
			if r.UniformMHz[i] > r.UniformMHz[i-1]+5 || r.VariableMHz[i] > r.VariableMHz[i-1]+5 {
				t.Fatalf("supported frequency rose with temperature at %g °C", r.TStarts[i])
			}
		}
	}
	if !anyStrict {
		t.Fatal("variable never strictly dominated uniform — Fig. 9's contrast missing")
	}
}

// Fig. 10: the periphery core P1 runs at least as fast as the middle
// core P2, strictly faster somewhere.
func TestFig10Shape(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	anyStrict := false
	for i := range r.TStarts {
		if r.P1MHz[i] < r.P2MHz[i]-5 {
			t.Fatalf("tstart %g: P1 %.0f MHz below P2 %.0f MHz", r.TStarts[i], r.P1MHz[i], r.P2MHz[i])
		}
		if r.P1MHz[i] > r.P2MHz[i]+5 {
			anyStrict = true
		}
	}
	if !anyStrict {
		t.Fatal("P1 never strictly faster than P2 — Fig. 10's asymmetry missing")
	}
}

// Fig. 11: coolest-first reduces (but does not eliminate) Basic-DFS hot
// time; Pro-Temp's gradient shrinks and the guarantee still holds.
func TestFig11Shape(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.BasicFirstIdle <= 0 {
		t.Fatal("Basic-DFS first-idle has no violations; experiment vacuous")
	}
	if r.BasicCoolest > r.BasicFirstIdle+0.02 {
		t.Fatalf("coolest-first worsened Basic-DFS: %.3f -> %.3f", r.BasicFirstIdle, r.BasicCoolest)
	}
	if r.BasicCoolest == 0 {
		t.Fatal("coolest-first eliminated Basic-DFS violations entirely — paper says it should not")
	}
	if r.ProMaxTemp > TMax+0.01 {
		t.Fatalf("Pro-Temp + coolest-first violated: %.2f", r.ProMaxTemp)
	}
}

func TestSection51Cost(t *testing.T) {
	s := quickSetup(t)
	r, err := s.Section51(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleSolve <= 0 || r.TableTime <= 0 || r.TablePoints == 0 {
		t.Fatalf("degenerate cost result: %+v", r)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "single solve") {
		t.Fatalf("render output: %q", buf.String())
	}
}

func TestRenderAndCSVOutputs(t *testing.T) {
	s := quickSetup(t)
	f1, err := s.Fig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f1.Render(&buf)
	if !strings.Contains(buf.String(), "Fig1") {
		t.Fatalf("render: %q", buf.String())
	}
	buf.Reset()
	if err := f1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s,P1") {
		t.Fatalf("csv header: %q", buf.String()[:20])
	}

	// Report CSVs to a temp dir.
	rep := &Report{Fig1: f1, Fig2: f1, Fig8: f1,
		Fig9:  &SweepResult{TStarts: []float64{27}, UniformMHz: []float64{700}, VariableMHz: []float64{750}},
		Fig10: &PerCoreResult{TStarts: []float64{27}, P1MHz: []float64{800}, P2MHz: []float64{700}},
	}
	dir := filepath.Join(t.TempDir(), "csv")
	if err := rep.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig2.csv", "fig8.csv", "fig9.csv", "fig10.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
