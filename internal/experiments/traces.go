package experiments

import (
	"context"
	"fmt"
	"io"

	"protemp/internal/metrics"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

// TraceResult is a temperature-snapshot experiment (Figs. 1, 2, 8).
type TraceResult struct {
	Figure string
	Policy string
	// Series holds one per-window temperature series per recorded core.
	Series []*metrics.Series
	// MaxTemp is the hottest recorded core temperature.
	MaxTemp float64
	// ViolationFrac is the fraction of core-time above TMax.
	ViolationFrac float64
	// MeanGradient is the time-weighted mean core temperature spread.
	MeanGradient float64
}

// runTrace executes one policy over a trace, recording the named cores.
func (s *Setup) runTrace(ctx context.Context, policy sim.Policy, tr *workload.Trace, record []string) (*sim.Result, error) {
	return sim.Run(ctx, sim.Config{
		Chip:         s.Chip,
		Disc:         s.Disc,
		Policy:       policy,
		Trace:        tr,
		Window:       s.Fid.Dt * float64(s.Fid.WindowSteps),
		TMax:         TMax,
		RecordBlocks: record,
	})
}

// Fig1 reproduces the Basic-DFS snapshot: processor P1's temperature
// over the mixed trace, sampled once per 100 ms window. The paper's
// plot shows repeated excursions above the 100 °C limit even though
// scaling triggers at 90 °C.
func (s *Setup) Fig1(ctx context.Context) (*TraceResult, error) {
	res, err := s.runTrace(ctx,
		&sim.BasicDFS{NumCores: s.Chip.NumCores(), FMax: s.Chip.FMax(), Threshold: BasicThreshold},
		s.Heavy, []string{"P1"})
	if err != nil {
		return nil, err
	}
	return traceResult("Fig1", res), nil
}

// Fig2 reproduces the Pro-Temp snapshot of the same processor under the
// same trace: the limit is respected at every instant.
func (s *Setup) Fig2(ctx context.Context) (*TraceResult, error) {
	res, err := s.runTrace(ctx, &sim.ProTemp{Controller: s.Ctrl}, s.Heavy, []string{"P1"})
	if err != nil {
		return nil, err
	}
	return traceResult("Fig2", res), nil
}

// Fig8 reproduces the two-processor Pro-Temp trace (P1 and P2): the
// spatial gradient between a periphery and a middle core stays small.
func (s *Setup) Fig8(ctx context.Context) (*TraceResult, error) {
	res, err := s.runTrace(ctx, &sim.ProTemp{Controller: s.Ctrl}, s.Mixed, []string{"P1", "P2"})
	if err != nil {
		return nil, err
	}
	return traceResult("Fig8", res), nil
}

func traceResult(figure string, res *sim.Result) *TraceResult {
	out := &TraceResult{
		Figure:        figure,
		Policy:        res.Policy,
		MaxTemp:       res.MaxCoreTemp,
		ViolationFrac: res.ViolationFrac,
		MeanGradient:  res.Gradient.Mean(),
	}
	for _, sName := range sortedKeys(res.Series) {
		out.Series = append(out.Series, res.Series[sName])
	}
	return out
}

// WriteCSV emits the series in a plot-ready layout.
func (r *TraceResult) WriteCSV(w io.Writer) error {
	return metrics.WriteCSV(w, r.Series...)
}

// Render prints a human-readable summary and a coarse series preview.
func (r *TraceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (%s): max %.1f °C, time above %g °C: %.1f%%, mean gradient %.2f °C\n",
		r.Figure, r.Policy, r.MaxTemp, float64(TMax), 100*r.ViolationFrac, r.MeanGradient)
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %s: %d samples, min %.1f, max %.1f\n", s.Name, s.Len(), s.Min(), s.Max())
	}
}

func sortedKeys(m map[string]*metrics.Series) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
