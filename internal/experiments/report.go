package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Report bundles every experiment's result.
type Report struct {
	Fig1  *TraceResult
	Fig2  *TraceResult
	Fig6a *BandsResult
	Fig6b *BandsResult
	Fig7  *WaitResult
	Fig8  *TraceResult
	Fig9  *SweepResult
	Fig10 *PerCoreResult
	Fig11 *AssignResult
	Cost  *CostResult
}

// RunAll executes every experiment in figure order, honoring ctx
// between and within experiments.
func (s *Setup) RunAll(ctx context.Context) (*Report, error) {
	r := &Report{}
	var err error
	if r.Fig1, err = s.Fig1(ctx); err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	if r.Fig2, err = s.Fig2(ctx); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	if r.Fig6a, err = s.Fig6a(ctx); err != nil {
		return nil, fmt.Errorf("fig6a: %w", err)
	}
	if r.Fig6b, err = s.Fig6b(ctx); err != nil {
		return nil, fmt.Errorf("fig6b: %w", err)
	}
	if r.Fig7, err = s.Fig7(ctx); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	if r.Fig8, err = s.Fig8(ctx); err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	if r.Fig9, err = s.Fig9(ctx); err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	if r.Fig10, err = s.Fig10(ctx); err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	if r.Fig11, err = s.Fig11(ctx); err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	if r.Cost, err = s.Section51(ctx); err != nil {
		return nil, fmt.Errorf("section 5.1: %w", err)
	}
	return r, nil
}

// Render prints the full report.
func (r *Report) Render(w io.Writer) {
	r.Fig1.Render(w)
	r.Fig2.Render(w)
	fmt.Fprintln(w)
	r.Fig6a.Render(w)
	fmt.Fprintln(w)
	r.Fig6b.Render(w)
	fmt.Fprintln(w)
	r.Fig7.Render(w)
	fmt.Fprintln(w)
	r.Fig8.Render(w)
	fmt.Fprintln(w)
	r.Fig9.Render(w)
	fmt.Fprintln(w)
	r.Fig10.Render(w)
	fmt.Fprintln(w)
	r.Fig11.Render(w)
	fmt.Fprintln(w)
	r.Cost.Render(w)
}

// WriteCSVs writes the plottable series to dir (created if needed):
// fig1.csv, fig2.csv, fig8.csv, fig9.csv, fig10.csv.
func (r *Report) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("fig1.csv", r.Fig1.WriteCSV); err != nil {
		return err
	}
	if err := write("fig2.csv", r.Fig2.WriteCSV); err != nil {
		return err
	}
	if err := write("fig8.csv", r.Fig8.WriteCSV); err != nil {
		return err
	}
	if err := write("fig9.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "tstart_c,uniform_mhz,variable_mhz")
		for i, ts := range r.Fig9.TStarts {
			fmt.Fprintf(w, "%.0f,%.1f,%.1f\n", ts, r.Fig9.UniformMHz[i], r.Fig9.VariableMHz[i])
		}
		return nil
	}); err != nil {
		return err
	}
	return write("fig10.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "tstart_c,p1_mhz,p2_mhz")
		for i, ts := range r.Fig10.TStarts {
			fmt.Fprintf(w, "%.0f,%.1f,%.1f\n", ts, r.Fig10.P1MHz[i], r.Fig10.P2MHz[i])
		}
		return nil
	})
}
