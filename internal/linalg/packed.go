package linalg

import (
	"fmt"
	"math"
)

// PackedSym is a symmetric matrix stored as its lower triangle in
// row-major packed order: row i occupies data[i(i+1)/2 : i(i+1)/2+i+1].
// Halving the storage halves the writes of the rank-k barrier-Hessian
// accumulation that dominates Newton assembly, and keeps every row
// contiguous for the packed Cholesky's dot products.
type PackedSym struct {
	n    int
	data []float64
}

// NewPackedSym returns a zero n-by-n packed symmetric matrix.
func NewPackedSym(n int) *PackedSym {
	if n < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %d", n))
	}
	return &PackedSym{n: n, data: make([]float64, n*(n+1)/2)}
}

// N returns the dimension.
func (p *PackedSym) N() int { return p.n }

// Reset zeroes every entry.
func (p *PackedSym) Reset() {
	for i := range p.data {
		p.data[i] = 0
	}
}

// Row returns the packed lower-triangle row i — entries (i,0)..(i,i) —
// as a slice aliasing the storage.
func (p *PackedSym) Row(i int) Vector {
	off := i * (i + 1) / 2
	return Vector(p.data[off : off+i+1])
}

// At returns the entry at (i, j), honoring symmetry.
func (p *PackedSym) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	return p.data[i*(i+1)/2+j]
}

// AddAt adds x to the entry at (i, j), honoring symmetry.
func (p *PackedSym) AddAt(i, j int, x float64) {
	if j > i {
		i, j = j, i
	}
	p.data[i*(i+1)/2+j] += x
}

// AddDiag adds x to every diagonal entry.
func (p *PackedSym) AddDiag(x float64) {
	for i := 0; i < p.n; i++ {
		p.data[i*(i+1)/2+i] += x
	}
}

// CopyFrom copies a into p; dimensions must match.
func (p *PackedSym) CopyFrom(a *PackedSym) {
	if p.n != a.n {
		panic(fmt.Sprintf("linalg: packed copy %d != %d", p.n, a.n))
	}
	copy(p.data, a.data)
}

// AddScaledOuter accumulates alpha·v·vᵀ into the lower triangle.
func (p *PackedSym) AddScaledOuter(alpha float64, v Vector) {
	mustLen(len(v), p.n)
	if alpha == 0 {
		return
	}
	for i := 0; i < p.n; i++ {
		vi := alpha * v[i]
		if vi == 0 {
			continue
		}
		row := p.Row(i)
		for j, vj := range v[:i+1] {
			row[j] += vi * vj
		}
	}
}

// syrkPanel is the number of g rows accumulated per pass of AddSyrk. A
// panel of this many rows times a ~100-column dense block stays inside
// L1, so each destination row streams the panel from cache instead of
// re-reading main memory once per constraint.
const syrkPanel = 32

// AddSyrk accumulates the scaled rank-k update Σ_k alpha[k]·g_k·g_kᵀ
// over the rows g_k of g into the lower triangle — the batched form of
// the per-constraint a·aᵀ/fi² barrier terms. Rows are processed in
// panels of syrkPanel for cache reuse, four at a time so each
// destination-row element is loaded and stored once per quad instead of
// once per constraint; a zero alpha[k] skips row k.
func (p *PackedSym) AddSyrk(g *Matrix, alpha Vector) {
	if g.Cols() != p.n {
		panic(fmt.Sprintf("linalg: AddSyrk with %d cols for dimension %d", g.Cols(), p.n))
	}
	mustLen(len(alpha), g.Rows())
	m := g.Rows()
	var idx [syrkPanel]int
	for k0 := 0; k0 < m; k0 += syrkPanel {
		k1 := k0 + syrkPanel
		if k1 > m {
			k1 = m
		}
		nk := 0
		for k := k0; k < k1; k++ {
			if alpha[k] != 0 {
				idx[nk] = k
				nk++
			}
		}
		kq := 0
		for ; kq+4 <= nk; kq += 4 {
			ka, kb, kc, kd := idx[kq], idx[kq+1], idx[kq+2], idx[kq+3]
			a0, a1, a2, a3 := alpha[ka], alpha[kb], alpha[kc], alpha[kd]
			r0, r1, r2, r3 := g.Row(ka), g.Row(kb), g.Row(kc), g.Row(kd)
			for i := 0; i < p.n; i++ {
				row := p.Row(i)
				g0 := r0[: i+1 : i+1]
				g1 := r1[: i+1 : i+1]
				g2 := r2[: i+1 : i+1]
				g3 := r3[: i+1 : i+1]
				v0 := a0 * g0[i]
				v1 := a1 * g1[i]
				v2 := a2 * g2[i]
				v3 := a3 * g3[i]
				for j, gj := range g0 {
					row[j] += v0*gj + v1*g1[j] + v2*g2[j] + v3*g3[j]
				}
			}
		}
		for ; kq < nk; kq++ {
			k := idx[kq]
			gk := g.Row(k)
			a := alpha[k]
			for i := 0; i < p.n; i++ {
				row := p.Row(i)
				v := a * gk[i]
				if v == 0 {
					continue
				}
				for j, gj := range gk[:i+1] {
					row[j] += v * gj
				}
			}
		}
	}
}

// MulVec writes the symmetric matvec A·x into dst, expanding the
// packed lower triangle on the fly. dst must not alias x.
func (p *PackedSym) MulVec(dst, x Vector) {
	mustLen(len(x), p.n)
	mustLen(len(dst), p.n)
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < p.n; i++ {
		row := p.Row(i)
		xi := x[i]
		s := row[i] * xi
		for j, rj := range row[:i] {
			s += rj * x[j]
			dst[j] += rj * xi
		}
		dst[i] += s
	}
}

// MaxAbs returns the largest absolute entry.
func (p *PackedSym) MaxAbs() float64 {
	var max float64
	for _, a := range p.data {
		if x := math.Abs(a); x > max {
			max = x
		}
	}
	return max
}

// ToDense writes the full symmetric matrix into dst (n-by-n).
func (p *PackedSym) ToDense(dst *Matrix) {
	mustShape(dst, p.n, p.n)
	for i := 0; i < p.n; i++ {
		row := p.Row(i)
		for j, v := range row {
			dst.Set(i, j, v)
			dst.Set(j, i, v)
		}
	}
}

// PackedChol is a Cholesky factorization of a PackedSym, stored packed.
type PackedChol struct {
	n int
	l []float64
}

// Factor computes the Cholesky factorization A = LLᵀ of a packed
// symmetric positive definite matrix, reusing the receiver's buffer
// when the dimension matches. The input is not modified. On error the
// factor is unspecified and must be recomputed before use.
func (c *PackedChol) Factor(a *PackedSym) error {
	n := a.n
	if c.n != n || c.l == nil {
		c.n = n
		c.l = make([]float64, len(a.data))
	}
	copy(c.l, a.data)
	l := c.l
	for i := 0; i < n; i++ {
		off := i * (i + 1) / 2
		ri := l[off : off+i+1]
		for j := 0; j <= i; j++ {
			joff := j * (j + 1) / 2
			rj := l[joff : joff+j+1]
			s := ri[j]
			for k := 0; k < j; k++ {
				s -= ri[k] * rj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return fmt.Errorf("%w: leading minor %d", ErrNotPositiveDefinite, i+1)
				}
				ri[j] = math.Sqrt(s)
			} else {
				ri[j] = s / rj[j]
			}
		}
	}
	return nil
}

// SolveInto solves Ax = b into the caller-owned x, allocating nothing.
// x may alias b.
func (c *PackedChol) SolveInto(x, b Vector) error {
	n := c.n
	if len(b) != n {
		return fmt.Errorf("%w: rhs length %d, want %d", ErrDimension, len(b), n)
	}
	if len(x) != n {
		return fmt.Errorf("%w: solution length %d, want %d", ErrDimension, len(x), n)
	}
	if n > 0 && &x[0] != &b[0] {
		copy(x, b)
	}
	l := c.l
	// Ly = b: forward substitution over contiguous packed rows.
	for i := 0; i < n; i++ {
		off := i * (i + 1) / 2
		ri := l[off : off+i+1]
		s := x[i]
		for k := 0; k < i; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s / ri[i]
	}
	// Lᵀx = y: backward substitution walking column i of L.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= l[j*(j+1)/2+i] * x[j]
		}
		x[i] = s / l[i*(i+1)/2+i]
	}
	return nil
}
