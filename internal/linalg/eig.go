package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes all eigenvalues (ascending) and an orthonormal set of
// eigenvectors of a symmetric matrix using the cyclic Jacobi method.
// Column j of the returned matrix is the eigenvector for eigenvalue j.
//
// The thermal package uses SymEig to bound the spectral radius of the
// discrete-time update (stability of the paper's 0.4 ms Euler step).
func SymEig(a *Matrix) (Vector, *Matrix, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("%w: SymEig of %dx%d matrix", ErrDimension, a.Rows(), a.Cols())
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: SymEig requires a symmetric matrix")
	}
	w := a.Clone()
	// Symmetrize exactly to avoid drift from tiny asymmetries.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (w.At(i, j) + w.At(j, i))
			w.Set(i, j, m)
			w.Set(j, i, m)
		}
	}
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that zeroes (p,q).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}

	// Extract eigenvalues and sort ascending, permuting eigenvectors.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := range pairs {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })
	vals := make(Vector, n)
	vecs := NewMatrix(n, n)
	for j, p := range pairs {
		vals[j] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v.At(i, p.idx))
		}
	}
	return vals, vecs, nil
}

// applyJacobi applies the rotation G(p,q,c,s) as W <- GᵀWG and V <- VG.
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// SpectralRadiusUpperBound returns a cheap upper bound on the spectral
// radius of a general square matrix: min(‖A‖_inf, ‖Aᵀ‖_inf).
func SpectralRadiusUpperBound(a *Matrix) float64 {
	return math.Min(a.NormInf(), a.T().NormInf())
}

// PowerIteration estimates the dominant eigenvalue magnitude of a square
// matrix by power iteration with the given number of steps, returning
// the norm-growth estimate |λmax|.
//
// The start vector is filled from a fixed linear congruential sequence
// rather than a constant: a constant start is exactly orthogonal to the
// oscillatory (checkerboard) modes of grid-structured matrices, which
// are precisely the modes that go unstable first under explicit Euler —
// a uniform start would certify an unstable discretization as stable.
func PowerIteration(a *Matrix, iters int) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	x := NewVector(n)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range x {
		seed = seed*6364136223846793005 + 1442695040888963407
		// Entries in [0.5, 1.5) with pseudo-random signs: overlaps every
		// eigenvector with overwhelming probability, deterministically.
		x[i] = 0.5 + float64(seed>>40)/float64(1<<24)
		if seed&(1<<39) != 0 {
			x[i] = -x[i]
		}
	}
	x.Scale(1/x.Norm2(), x)
	y := NewVector(n)
	var lambda float64
	for k := 0; k < iters; k++ {
		a.MulVec(y, x)
		norm := y.Norm2()
		if norm == 0 {
			return 0
		}
		lambda = norm
		x.Scale(1/norm, y)
	}
	return lambda
}
