package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky on matrices that are not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// LUFactor holds an LU factorization with partial pivoting: PA = LU.
type LUFactor struct {
	lu   *Matrix
	piv  []int
	sign int
}

// LU computes the LU factorization of a square matrix with partial
// pivoting. The input is not modified.
func LU(a *Matrix) (*LUFactor, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrDimension, a.Rows(), a.Cols())
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			swapRows(lu, p, k)
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.AddAt(i, j, -m*lu.At(k, j))
			}
		}
	}
	return &LUFactor{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves Ax = b for a single right-hand side.
func (f *LUFactor) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrDimension, len(b), n)
	}
	x := make(Vector, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}

// SolveMatrix solves AX = B column by column.
func (f *LUFactor) SolveMatrix(b *Matrix) (*Matrix, error) {
	n := f.lu.Rows()
	if b.Rows() != n {
		return nil, fmt.Errorf("%w: rhs has %d rows, want %d", ErrDimension, b.Rows(), n)
	}
	x := NewMatrix(n, b.Cols())
	col := make(Vector, n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LUFactor) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU is a convenience wrapper: factor a and solve ax = b.
func SolveLU(a *Matrix, b Vector) (Vector, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns a⁻¹ computed via LU. Intended for small matrices and
// diagnostics; prefer Solve for linear systems.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Identity(a.Rows()))
}

// CholFactor holds a Cholesky factorization A = LLᵀ.
type CholFactor struct {
	l *Matrix
}

// Cholesky factors a symmetric positive definite matrix. Only the lower
// triangle of a is read; the input is not modified.
func Cholesky(a *Matrix) (*CholFactor, error) {
	f := &CholFactor{}
	if err := CholeskyInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// CholeskyInto factors a into dst, reusing dst's factor buffer when its
// shape already matches (the hot path of an iterative solver that
// factors one Hessian per Newton step). A fresh or mismatched dst is
// (re)allocated. On error dst's contents are unspecified and dst must
// be refactored before use. Only the lower triangle of a is read; the
// input is not modified.
func CholeskyInto(dst *CholFactor, a *Matrix) error {
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("%w: Cholesky of %dx%d matrix", ErrDimension, a.Rows(), a.Cols())
	}
	l := dst.l
	if l == nil || l.rows != n || l.cols != n {
		l = NewMatrix(n, n)
		dst.l = l
	} else {
		for i := range l.data {
			l.data[i] = 0
		}
	}
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: leading minor %d", ErrNotPositiveDefinite, j+1)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return nil
}

// Solve solves Ax = b using the factorization.
func (c *CholFactor) Solve(b Vector) (Vector, error) {
	x := NewVector(c.l.Rows())
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves Ax = b into the caller-owned x, allocating nothing.
// x may alias b (the solve is then in place); otherwise b is not
// modified.
func (c *CholFactor) SolveInto(x, b Vector) error {
	n := c.l.Rows()
	if len(b) != n {
		return fmt.Errorf("%w: rhs length %d, want %d", ErrDimension, len(b), n)
	}
	if len(x) != n {
		return fmt.Errorf("%w: solution length %d, want %d", ErrDimension, len(x), n)
	}
	if n > 0 && &x[0] != &b[0] {
		copy(x, b)
	}
	// Ly = b.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += c.l.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / c.l.At(i, i)
	}
	// Lᵀx = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += c.l.At(j, i) * x[j]
		}
		x[i] = (x[i] - s) / c.l.At(i, i)
	}
	return nil
}

// L returns the lower-triangular factor (aliasing internal storage).
func (c *CholFactor) L() *Matrix { return c.l }

// SolveSPD factors a symmetric positive definite matrix and solves ax = b.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	f, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
