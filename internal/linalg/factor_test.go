package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLUSolveKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	b := VectorOf(5, -2, 9)
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := VectorOf(1, 1, 2)
	if !x.Equal(want, 1e-12) {
		t.Fatalf("x = %v, want %v", x, want)
	}
}

func TestLUSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	_, err := LU(a)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	_, err := LU(NewMatrix(2, 3))
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0}, {0, 2}})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-6) > 1e-12 {
		t.Fatalf("Det = %v, want 6", d)
	}
	// Permutation sign: swapping rows flips determinant sign.
	b := MatrixFromRows([][]float64{{0, 2}, {3, 0}})
	fb, err := LU(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := fb.Det(); math.Abs(d+6) > 1e-12 {
		t.Fatalf("Det = %v, want -6", d)
	}
}

func TestLUSolveRhsLengthMismatch(t *testing.T) {
	f, err := LU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(VectorOf(1, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestInverse(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := NewMatrix(2, 2).Mul(a, inv)
	if !prod.Equal(Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ =\n%v", prod)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	f, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	wantL := MatrixFromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !f.L().Equal(wantL, 1e-12) {
		t.Fatalf("L =\n%v\nwant\n%v", f.L(), wantL)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	_, err := Cholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	x, err := SolveSPD(a, VectorOf(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VectorOf(1, 1), 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	g := randomMatrix(rng, n)
	spd := NewMatrix(n, n).Mul(g, g.T())
	for i := 0; i < n; i++ {
		spd.AddAt(i, i, float64(n)) // ensure well-conditioned
	}
	return spd
}

// Property: LU solve residual is tiny for random well-conditioned systems.
func TestLUSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(9)
		a := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.AddAt(i, i, 5) // diagonal dominance for conditioning
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := NewVector(n).Sub(a.MulVec(NewVector(n), x), b)
		if r.NormInf() > 1e-9*(1+b.NormInf()) {
			t.Fatalf("trial %d: residual %v", trial, r.NormInf())
		}
	}
}

// Property: Cholesky round-trips, L·Lᵀ = A, for random SPD matrices.
func TestCholeskyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(9)
		a := randomSPD(rng, n)
		f, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		l := f.L()
		back := NewMatrix(n, n).Mul(l, l.T())
		if !back.Equal(a, 1e-9*(1+a.MaxAbs())) {
			t.Fatalf("trial %d: LLᵀ != A", trial)
		}
	}
}

// Property: Cholesky-based solve agrees with LU-based solve on SPD systems.
func TestCholeskyLUAgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := SolveLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !x1.Equal(x2, 1e-8*(1+x2.NormInf())) {
			t.Fatalf("trial %d: Cholesky %v vs LU %v", trial, x1, x2)
		}
	}
}

func TestSolveMatrixShapeMismatch(t *testing.T) {
	f, err := LU(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveMatrix(NewMatrix(3, 1)); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

// TestCholeskyIntoReusesBuffer factors a sequence of same-shaped SPD
// matrices into one CholFactor and checks every factorization matches a
// fresh Cholesky — the workspace path the Newton solver hammers.
func TestCholeskyIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var f CholFactor
	for trial := 0; trial < 20; trial++ {
		a := randomSPD(rng, 6)
		if err := CholeskyInto(&f, a); err != nil {
			t.Fatal(err)
		}
		fresh, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !f.L().Equal(fresh.L(), 0) {
			t.Fatalf("trial %d: reused factor differs from fresh", trial)
		}
	}
	// A shape change reallocates transparently.
	if err := CholeskyInto(&f, randomSPD(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if f.L().Rows() != 3 {
		t.Fatalf("factor not resized: %d rows", f.L().Rows())
	}
}

// TestCholeskyIntoFailureThenReuse: a failed factorization leaves the
// buffer reusable for the next matrix.
func TestCholeskyIntoFailureThenReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var f CholFactor
	notSPD := Diag(VectorOf(1, -1, 1))
	if err := CholeskyInto(&f, notSPD); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	a := randomSPD(rng, 3)
	if err := CholeskyInto(&f, a); err != nil {
		t.Fatal(err)
	}
	fresh, _ := Cholesky(a)
	if !f.L().Equal(fresh.L(), 0) {
		t.Fatal("factor after failure differs from fresh")
	}
}

// TestCholeskySolveInto checks the allocation-free solve, including the
// aliased (in-place) form.
func TestCholeskySolveInto(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(7)
		a := randomSPD(rng, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		x := NewVector(n)
		if err := f.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		if !x.Equal(want, 0) {
			t.Fatalf("trial %d: SolveInto %v != Solve %v", trial, x, want)
		}
		// Aliased: solve in place over the right-hand side.
		inPlace := b.Clone()
		if err := f.SolveInto(inPlace, inPlace); err != nil {
			t.Fatal(err)
		}
		if !inPlace.Equal(want, 0) {
			t.Fatalf("trial %d: aliased SolveInto %v != %v", trial, inPlace, want)
		}
	}
	f, _ := Cholesky(Identity(2))
	if err := f.SolveInto(NewVector(3), NewVector(2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad dst err = %v, want ErrDimension", err)
	}
	if err := f.SolveInto(NewVector(2), NewVector(3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad rhs err = %v, want ErrDimension", err)
	}
}
