package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d Vector) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// MatrixFromRows builds a matrix from row slices, which must all share a
// length. The data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores x at (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.data[i*m.cols+j] = x }

// AddAt adds x to the entry at (i, j).
func (m *Matrix) AddAt(i, j int, x float64) { m.data[i*m.cols+j] += x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// Clone returns an independent deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies a into m; shapes must match.
func (m *Matrix) CopyFrom(a *Matrix) {
	mustShape(m, a.rows, a.cols)
	copy(m.data, a.data)
}

// T returns a newly allocated transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add stores a+b into m and returns m.
func (m *Matrix) Add(a, b *Matrix) *Matrix {
	mustShape(a, b.rows, b.cols)
	mustShape(m, a.rows, a.cols)
	for i := range m.data {
		m.data[i] = a.data[i] + b.data[i]
	}
	return m
}

// Sub stores a-b into m and returns m.
func (m *Matrix) Sub(a, b *Matrix) *Matrix {
	mustShape(a, b.rows, b.cols)
	mustShape(m, a.rows, a.cols)
	for i := range m.data {
		m.data[i] = a.data[i] - b.data[i]
	}
	return m
}

// Scale stores s*a into m and returns m.
func (m *Matrix) Scale(s float64, a *Matrix) *Matrix {
	mustShape(m, a.rows, a.cols)
	for i := range m.data {
		m.data[i] = s * a.data[i]
	}
	return m
}

// Mul stores a*b into m and returns m. m must not alias a or b.
func (m *Matrix) Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch: %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustShape(m, a.rows, b.cols)
	if sameStorage(m, a) || sameStorage(m, b) {
		panic("linalg: Mul destination aliases an operand")
	}
	for i := 0; i < a.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		for k := range mrow {
			mrow[k] = 0
		}
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				mrow[j] += aik * bkj
			}
		}
	}
	return m
}

// MulVec stores A*x into dst and returns dst. dst must not alias x.
func (m *Matrix) MulVec(dst, x Vector) Vector {
	mustLen(len(x), m.cols)
	mustLen(len(dst), m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT stores Aᵀ*x into dst and returns dst.
func (m *Matrix) MulVecT(dst, x Vector) Vector {
	mustLen(len(x), m.rows)
	mustLen(len(dst), m.cols)
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			dst[j] += a * xi
		}
	}
	return dst
}

// NormInf returns the maximum absolute row sum.
func (m *Matrix) NormInf() float64 {
	var max float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, a := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(a)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, a := range m.data {
		if x := math.Abs(a); x > max {
			max = x
		}
	}
	return max
}

// IsSymmetric reports whether |m - mᵀ| <= tol entrywise (square only).
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether the shapes match and entries agree within tol.
func (m *Matrix) Equal(a *Matrix, tol float64) bool {
	if m.rows != a.rows || m.cols != a.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-a.data[i]) > tol {
			return false
		}
	}
	return true
}

// AllFinite reports whether every entry is finite.
func (m *Matrix) AllFinite() bool {
	for _, a := range m.data {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix row by row, for debugging and test failures.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%v", []float64(m.Row(i)))
	}
	return b.String()
}

func mustShape(m *Matrix, rows, cols int) {
	if m.rows != rows || m.cols != cols {
		panic(fmt.Sprintf("linalg: shape mismatch: %dx%d, want %dx%d", m.rows, m.cols, rows, cols))
	}
}

func sameStorage(a, b *Matrix) bool {
	return len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}
