package linalg

import (
	"fmt"
	"math"
)

// Expm computes the matrix exponential e^A using scaling-and-squaring with
// a degree-13 Padé approximant (Higham's method, without the norm-based
// degree selection: our matrices are small and well scaled, so the highest
// degree is always used).
//
// The thermal package uses Expm for the exact zero-order-hold
// discretization of the continuous RC dynamics, against which the paper's
// explicit-Euler step (Eq. 1) is validated.
func Expm(a *Matrix) (*Matrix, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("%w: Expm of %dx%d matrix", ErrDimension, a.Rows(), a.Cols())
	}
	if !a.AllFinite() {
		return nil, fmt.Errorf("linalg: Expm of non-finite matrix")
	}
	if n == 0 {
		return NewMatrix(0, 0), nil
	}

	// Scale A by 2^-s so that ||A/2^s||_inf <= theta13 ~ 5.37.
	const theta13 = 5.371920351148152
	norm := a.NormInf()
	s := 0
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
	}
	scaled := a.Clone()
	if s > 0 {
		scaled.Scale(math.Ldexp(1, -s), a)
	}

	// Degree-13 Padé: r(A) = q(A)^{-1} p(A) with
	// p = U + V, q = -U + V where U = A*(even polynomial), V = even polynomial.
	b := [...]float64{
		64764752532480000, 32382376266240000, 7771770303897600,
		1187353796428800, 129060195264000, 10559470521600,
		670442572800, 33522128640, 1323241920,
		40840800, 960960, 16380, 182, 1,
	}

	a2 := NewMatrix(n, n).Mul(scaled, scaled)
	a4 := NewMatrix(n, n).Mul(a2, a2)
	a6 := NewMatrix(n, n).Mul(a4, a2)

	// W1 = b13*A6 + b11*A4 + b9*A2
	w1 := NewMatrix(n, n)
	accumulate3(w1, b[13], a6, b[11], a4, b[9], a2)
	// W2 = b7*A6 + b5*A4 + b3*A2 + b1*I
	w2 := NewMatrix(n, n)
	accumulate3(w2, b[7], a6, b[5], a4, b[3], a2)
	addDiag(w2, b[1])
	// U = A * (A6*W1 + W2)
	tmp := NewMatrix(n, n).Mul(a6, w1)
	tmp.Add(tmp, w2)
	u := NewMatrix(n, n).Mul(scaled, tmp)

	// Z1 = b12*A6 + b10*A4 + b8*A2
	z1 := NewMatrix(n, n)
	accumulate3(z1, b[12], a6, b[10], a4, b[8], a2)
	// V = A6*Z1 + b6*A6 + b4*A4 + b2*A2 + b0*I
	v := NewMatrix(n, n).Mul(a6, z1)
	w3 := NewMatrix(n, n)
	accumulate3(w3, b[6], a6, b[4], a4, b[2], a2)
	v.Add(v, w3)
	addDiag(v, b[0])

	// Solve (V - U) R = (V + U).
	p := NewMatrix(n, n).Add(v, u)
	q := NewMatrix(n, n).Sub(v, u)
	f, err := LU(q)
	if err != nil {
		return nil, fmt.Errorf("linalg: Expm Padé solve: %w", err)
	}
	r, err := f.SolveMatrix(p)
	if err != nil {
		return nil, fmt.Errorf("linalg: Expm Padé solve: %w", err)
	}

	// Undo scaling: square s times.
	for i := 0; i < s; i++ {
		r = NewMatrix(n, n).Mul(r, r)
	}
	return r, nil
}

// accumulate3 stores c1*m1 + c2*m2 + c3*m3 into dst.
func accumulate3(dst *Matrix, c1 float64, m1 *Matrix, c2 float64, m2 *Matrix, c3 float64, m3 *Matrix) {
	for i := range dst.data {
		dst.data[i] = c1*m1.data[i] + c2*m2.data[i] + c3*m3.data[i]
	}
}

func addDiag(m *Matrix, c float64) {
	for i := 0; i < m.rows; i++ {
		m.AddAt(i, i, c)
	}
}

// IntegralExpm computes Φ = e^{A h} and Γ = ∫₀ʰ e^{A τ} dτ · B using the
// Van Loan block-matrix trick:
//
//	exp( [A B; 0 0] h ) = [Φ Γ; 0 I].
//
// This yields the exact zero-order-hold discretization x⁺ = Φx + Γu of
// ẋ = Ax + Bu without requiring A to be invertible.
func IntegralExpm(a, b *Matrix, h float64) (phi, gamma *Matrix, err error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, fmt.Errorf("%w: IntegralExpm A is %dx%d", ErrDimension, a.Rows(), a.Cols())
	}
	if b.Rows() != n {
		return nil, nil, fmt.Errorf("%w: IntegralExpm B has %d rows, want %d", ErrDimension, b.Rows(), n)
	}
	m := b.Cols()
	blk := NewMatrix(n+m, n+m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			blk.Set(i, j, a.At(i, j)*h)
		}
		for j := 0; j < m; j++ {
			blk.Set(i, n+j, b.At(i, j)*h)
		}
	}
	e, err := Expm(blk)
	if err != nil {
		return nil, nil, err
	}
	phi = NewMatrix(n, n)
	gamma = NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			phi.Set(i, j, e.At(i, j))
		}
		for j := 0; j < m; j++ {
			gamma.Set(i, j, e.At(i, n+j))
		}
	}
	return phi, gamma, nil
}
