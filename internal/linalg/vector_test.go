package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOfCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := VectorOf(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("VectorOf aliases input: v[0] = %v", v[0])
	}
}

func TestVectorConstantAndFill(t *testing.T) {
	v := Constant(4, 2.5)
	for i, x := range v {
		if x != 2.5 {
			t.Fatalf("Constant[%d] = %v, want 2.5", i, x)
		}
	}
	v.Fill(-1)
	if v.Sum() != -4 {
		t.Fatalf("after Fill(-1), Sum = %v, want -4", v.Sum())
	}
}

func TestVectorArithmetic(t *testing.T) {
	a := VectorOf(1, 2, 3)
	b := VectorOf(4, 5, 6)
	got := NewVector(3).Add(a, b)
	if !got.Equal(VectorOf(5, 7, 9), 0) {
		t.Errorf("Add = %v", got)
	}
	got = NewVector(3).Sub(b, a)
	if !got.Equal(VectorOf(3, 3, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
	got = NewVector(3).AddScaled(a, 2, b)
	if !got.Equal(VectorOf(9, 12, 15), 0) {
		t.Errorf("AddScaled = %v", got)
	}
	got = NewVector(3).Scale(-1, a)
	if !got.Equal(VectorOf(-1, -2, -3), 0) {
		t.Errorf("Scale = %v", got)
	}
	if d := a.Dot(b); d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
}

func TestVectorAddInPlace(t *testing.T) {
	// Using the destination as an operand must be safe for entrywise ops.
	a := VectorOf(1, 2, 3)
	a.Add(a, a)
	if !a.Equal(VectorOf(2, 4, 6), 0) {
		t.Fatalf("in-place Add = %v", a)
	}
}

func TestVectorNorms(t *testing.T) {
	v := VectorOf(3, -4)
	if n := v.Norm2(); math.Abs(n-5) > 1e-15 {
		t.Errorf("Norm2 = %v, want 5", n)
	}
	if n := v.NormInf(); n != 4 {
		t.Errorf("NormInf = %v, want 4", n)
	}
	if n := (Vector{}).Norm2(); n != 0 {
		t.Errorf("empty Norm2 = %v, want 0", n)
	}
	// Norm2 must not overflow on huge entries.
	huge := VectorOf(1e300, 1e300)
	if n := huge.Norm2(); math.IsInf(n, 0) {
		t.Errorf("Norm2 overflowed: %v", n)
	}
}

func TestVectorStats(t *testing.T) {
	v := VectorOf(2, -7, 5, 5)
	if v.Max() != 5 {
		t.Errorf("Max = %v", v.Max())
	}
	if v.Min() != -7 {
		t.Errorf("Min = %v", v.Min())
	}
	if v.ArgMax() != 2 {
		t.Errorf("ArgMax = %v, want 2 (first of ties)", v.ArgMax())
	}
	if v.Mean() != 1.25 {
		t.Errorf("Mean = %v", v.Mean())
	}
	if (Vector{}).Mean() != 0 {
		t.Errorf("empty Mean should be 0")
	}
}

func TestVectorEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Max":    func() { (Vector{}).Max() },
		"Min":    func() { (Vector{}).Min() },
		"ArgMax": func() { (Vector{}).ArgMax() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty vector did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVectorAllFinite(t *testing.T) {
	if !VectorOf(1, 2).AllFinite() {
		t.Error("finite vector reported non-finite")
	}
	if VectorOf(1, math.NaN()).AllFinite() {
		t.Error("NaN not detected")
	}
	if VectorOf(math.Inf(1)).AllFinite() {
		t.Error("Inf not detected")
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	NewVector(2).Add(VectorOf(1), VectorOf(1, 2))
}

func TestVectorCloneIndependence(t *testing.T) {
	a := VectorOf(1, 2)
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: the triangle inequality holds for Norm2.
func TestVectorNormTriangleProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		va, vb := VectorOf(a[:]...), VectorOf(b[:]...)
		if !va.AllFinite() || !vb.AllFinite() || va.NormInf() > 1e150 || vb.NormInf() > 1e150 {
			return true // avoid float64 overflow; not the property under test
		}
		sum := NewVector(6).Add(va, vb)
		return sum.Norm2() <= va.Norm2()+vb.Norm2()+1e-9*(1+va.Norm2()+vb.Norm2())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |a·b| <= ‖a‖‖b‖.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		va, vb := VectorOf(a[:]...), VectorOf(b[:]...)
		if !va.AllFinite() || !vb.AllFinite() || va.NormInf() > 1e150 || vb.NormInf() > 1e150 {
			return true // avoid float64 overflow; not the property under test
		}
		lhs := math.Abs(va.Dot(vb))
		rhs := va.Norm2() * vb.Norm2()
		if math.IsInf(lhs, 0) || math.IsInf(rhs, 0) {
			return true
		}
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
