// Package linalg provides the dense linear-algebra substrate used by the
// thermal model and the convex solver: vectors, matrices, LU and Cholesky
// factorizations, a matrix exponential, and a symmetric eigensolver.
//
// Everything is implemented from scratch on float64 slices; sizes in this
// project are small (tens of rows), so the implementations favour clarity
// and numerical robustness over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned (or wrapped) when operand shapes do not match.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf returns a vector holding a copy of the given values.
func VectorOf(vals ...float64) Vector {
	v := make(Vector, len(vals))
	copy(v, vals)
	return v
}

// Constant returns a length-n vector with every entry set to c.
func Constant(n int, c float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Len returns the number of entries.
func (v Vector) Len() int { return len(v) }

// Fill sets every entry of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add stores a+b into v and returns v. All three must share length.
func (v Vector) Add(a, b Vector) Vector {
	mustLen(len(v), len(a))
	mustLen(len(v), len(b))
	for i := range v {
		v[i] = a[i] + b[i]
	}
	return v
}

// Sub stores a-b into v and returns v.
func (v Vector) Sub(a, b Vector) Vector {
	mustLen(len(v), len(a))
	mustLen(len(v), len(b))
	for i := range v {
		v[i] = a[i] - b[i]
	}
	return v
}

// AddScaled stores a + s*b into v and returns v.
func (v Vector) AddScaled(a Vector, s float64, b Vector) Vector {
	mustLen(len(v), len(a))
	mustLen(len(v), len(b))
	for i := range v {
		v[i] = a[i] + s*b[i]
	}
	return v
}

// Scale stores s*a into v and returns v.
func (v Vector) Scale(s float64, a Vector) Vector {
	mustLen(len(v), len(a))
	for i := range v {
		v[i] = s * a[i]
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	mustLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm, guarding against overflow.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry, or 0 for an empty vector.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the largest entry. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest entry. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the largest entry (first on ties).
// It panics on an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("linalg: ArgMax of empty vector")
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// AllFinite reports whether every entry is finite (no NaN or Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have the same length and entries within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func (v Vector) String() string {
	return fmt.Sprintf("%v", []float64(v))
}

func mustLen(got, want int) {
	if got != want {
		panic(fmt.Sprintf("linalg: length mismatch: %d vs %d", got, want))
	}
}
