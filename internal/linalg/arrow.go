package linalg

import (
	"fmt"
	"math"
)

// ArrowKKT is a symmetric positive definite system with the arrow
// (bordered block) structure of the Pro-Temp Newton/KKT matrix over the
// variable split x = [f (nf entries) | d (dense block)]:
//
//	H = | diag(DF) + VF·VFᵀ   Cᵀ |
//	    | C                    S  |
//
// where C couples each f variable i to at most one dense column Col[i]
// with coefficient CF[i] (the per-core power-frequency barrier), VF is
// the single rank-one border the workload constraint contributes (all
// zero when absent), and S is the dense block the temperature rows
// accumulate. Factoring eliminates the cheap f block first, so the
// dense Cholesky is |d|×|d| instead of (nf+|d|)×(nf+|d|).
type ArrowKKT struct {
	DF  Vector     // f-block diagonal, length nf
	VF  Vector     // rank-one border over f (zero vector when absent)
	CF  Vector     // coupling coefficient of f i into dense column Col[i]
	Col []int      // dense column coupled to f i, or -1 for none
	S   *PackedSym // dense block (lower triangle)
}

// MaxAbs returns the largest absolute entry of the assembled H, used to
// scale the regularization ladder exactly like the dense path's
// Matrix.MaxAbs.
func (k *ArrowKKT) MaxAbs() float64 {
	max := k.S.MaxAbs()
	for i, d := range k.DF {
		v := math.Abs(d + k.VF[i]*k.VF[i])
		if v > max {
			max = v
		}
		if c := math.Abs(k.CF[i]); c > max {
			max = c
		}
	}
	return max
}

// MulVec writes (H + reg·I)·x into dst for the assembled system, the
// residual operator iterative refinement needs. dst must not alias x.
func (k *ArrowKKT) MulVec(dst, x Vector, reg float64) {
	nf := len(k.DF)
	xf, xd := x[:nf], x[nf:]
	df, dd := dst[:nf], dst[nf:]
	vx := 0.0
	for i, v := range k.VF {
		vx += v * xf[i]
	}
	for i, d := range k.DF {
		df[i] = (d+reg)*xf[i] + k.VF[i]*vx
	}
	k.S.MulVec(dd, xd)
	if reg != 0 {
		for i, xi := range xd {
			dd[i] += reg * xi
		}
	}
	for i, c := range k.CF {
		if col := k.Col[i]; col >= 0 && c != 0 {
			df[i] += c * xd[col]
			dd[col] += c * xf[i]
		}
	}
}

// ArrowFactor factors an ArrowKKT by block elimination: the f block
// D̃ = diag(DF+reg) + VF·VFᵀ inverts in closed form (Sherman–Morrison),
// and the dense block factors its Schur complement
//
//	Ŝ = (S + reg·I) − C·D̃⁻¹·Cᵀ
//	  = (S + reg·I) − Σ_i (CF_i²/dfr_i)·e_{Col_i}e_{Col_i}ᵀ + β·t·tᵀ
//
// with dfr = DF+reg, w = VF/dfr, β = 1/(1+VF·w) and t = C·w — a
// diagonal correction plus one rank-one update, then a packed Cholesky.
// Factoring with reg > 0 is exactly the dense path's H + reg·I.
type ArrowFactor struct {
	nf, nd int
	dfr    Vector // DF + reg
	w      Vector // VF / dfr
	cf     Vector // CF at factor time
	col    []int
	beta   float64
	hasV   bool
	schur  *PackedSym
	chol   PackedChol
	tvec   Vector // C·w, reused as dense-block scratch in SolveInto
	yf     Vector // f-block scratch
	yd     Vector // dense-block scratch
}

// ensure sizes the factor buffers for an nf/nd split.
func (f *ArrowFactor) ensure(nf, nd int) {
	if f.nf == nf && f.nd == nd && f.schur != nil {
		return
	}
	f.nf, f.nd = nf, nd
	f.dfr = NewVector(nf)
	f.w = NewVector(nf)
	f.cf = NewVector(nf)
	f.col = make([]int, nf)
	f.schur = NewPackedSym(nd)
	f.tvec = NewVector(nd)
	f.yf = NewVector(nf)
	f.yd = NewVector(nd)
	f.chol = PackedChol{}
}

// Factor computes the block-elimination factorization of k + reg·I,
// reusing all buffers. The input is not modified. Returns
// ErrNotPositiveDefinite when the f diagonal or the Schur complement
// fails positive definiteness; the factor is then unspecified.
func (f *ArrowFactor) Factor(k *ArrowKKT, reg float64) error {
	nf, nd := len(k.DF), k.S.N()
	f.ensure(nf, nd)
	copy(f.cf, k.CF)
	copy(f.col, k.Col)

	vDotW := 0.0
	f.hasV = false
	for i, d := range k.DF {
		dfr := d + reg
		if dfr <= 0 || math.IsNaN(dfr) {
			return fmt.Errorf("%w: f diagonal %d", ErrNotPositiveDefinite, i)
		}
		f.dfr[i] = dfr
		v := k.VF[i]
		if v != 0 {
			f.hasV = true
		}
		f.w[i] = v / dfr
		vDotW += v * f.w[i]
	}
	f.beta = 1 / (1 + vDotW)

	f.schur.CopyFrom(k.S)
	if reg > 0 {
		f.schur.AddDiag(reg)
	}
	for i := range f.tvec {
		f.tvec[i] = 0
	}
	for i, c := range f.cf {
		if col := f.col[i]; col >= 0 && c != 0 {
			f.schur.AddAt(col, col, -c*c/f.dfr[i])
			f.tvec[col] += c * f.w[i]
		}
	}
	if f.hasV {
		f.schur.AddScaledOuter(f.beta, f.tvec)
	}
	return f.chol.Factor(f.schur)
}

// applyFInv writes D̃⁻¹·r over the f block: dst = r/dfr − β·w·(w·r).
// dst may alias r.
func (f *ArrowFactor) applyFInv(dst, r Vector) {
	if f.hasV {
		wr := 0.0
		for i, ri := range r {
			wr += f.w[i] * ri
		}
		bwr := f.beta * wr
		for i, ri := range r {
			dst[i] = ri/f.dfr[i] - bwr*f.w[i]
		}
		return
	}
	for i, ri := range r {
		dst[i] = ri / f.dfr[i]
	}
}

// SolveInto solves H x = b (with H the factored system) into the
// caller-owned x, allocating nothing. x may alias b.
func (f *ArrowFactor) SolveInto(x, b Vector) error {
	n := f.nf + f.nd
	if len(b) != n {
		return fmt.Errorf("%w: rhs length %d, want %d", ErrDimension, len(b), n)
	}
	if len(x) != n {
		return fmt.Errorf("%w: solution length %d, want %d", ErrDimension, len(x), n)
	}
	bf, bd := b[:f.nf], b[f.nf:]

	// yf = D̃⁻¹ bf; yd = bd − C yf; xd = Ŝ⁻¹ yd.
	f.applyFInv(f.yf, bf)
	copy(f.yd, bd)
	for i, c := range f.cf {
		if col := f.col[i]; col >= 0 && c != 0 {
			f.yd[col] -= c * f.yf[i]
		}
	}
	if err := f.chol.SolveInto(f.yd, f.yd); err != nil {
		return err
	}
	// xf = D̃⁻¹ (bf − Cᵀ xd).
	for i := range f.yf {
		t := bf[i]
		if col := f.col[i]; col >= 0 {
			t -= f.cf[i] * f.yd[col]
		}
		f.yf[i] = t
	}
	f.applyFInv(f.yf, f.yf)
	copy(x[:f.nf], f.yf)
	copy(x[f.nf:], f.yd)
	return nil
}
