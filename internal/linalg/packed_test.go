package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomPackedAndDense builds the same symmetric matrix twice — packed
// and dense — through the packed accumulation API, so the packed
// operators are validated against straightforward dense arithmetic.
func randomPackedAndDense(rng *rand.Rand, n, rows int) (*PackedSym, *Matrix) {
	p := NewPackedSym(n)
	d := NewMatrix(n, n)

	g := NewMatrix(rows, n)
	alpha := NewVector(rows)
	for k := 0; k < rows; k++ {
		alpha[k] = rng.Float64() * 2
		if k%7 == 0 {
			alpha[k] = 0 // exercise the skip path
		}
		for j := 0; j < n; j++ {
			g.Set(k, j, rng.NormFloat64())
		}
	}
	p.AddSyrk(g, alpha)
	for k := 0; k < rows; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d.AddAt(i, j, alpha[k]*g.At(k, i)*g.At(k, j))
			}
		}
	}

	v := NewVector(n)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	p.AddScaledOuter(0.5, v)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.AddAt(i, j, 0.5*v[i]*v[j])
		}
	}

	for i := 0; i < n; i++ {
		x := 1 + rng.Float64()
		p.AddAt(i, i, x)
		d.AddAt(i, i, x)
	}
	return p, d
}

func TestPackedSymMatchesDenseAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 17, 40} {
		p, d := randomPackedAndDense(rng, n, 2*n+3)
		dense := NewMatrix(n, n)
		p.ToDense(dense)
		if !dense.Equal(d, 1e-9*(1+d.MaxAbs())) {
			t.Fatalf("n=%d: packed accumulation diverges from dense:\n%v\nvs\n%v", n, dense, d)
		}
		if got, want := p.MaxAbs(), d.MaxAbs(); math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("n=%d: MaxAbs %v != %v", n, got, want)
		}
	}
}

func TestPackedCholMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 8, 25, 60} {
		p, d := randomPackedAndDense(rng, n, 2*n+3)

		var pc PackedChol
		if err := pc.Factor(p); err != nil {
			t.Fatalf("n=%d: packed factor: %v", n, err)
		}
		var dc CholFactor
		if err := CholeskyInto(&dc, d); err != nil {
			t.Fatalf("n=%d: dense factor: %v", n, err)
		}

		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xp, xd := NewVector(n), NewVector(n)
		if err := pc.SolveInto(xp, b); err != nil {
			t.Fatal(err)
		}
		if err := dc.SolveInto(xd, b); err != nil {
			t.Fatal(err)
		}
		if !xp.Equal(xd, 1e-8*(1+xd.NormInf())) {
			t.Fatalf("n=%d: packed solve %v != dense %v", n, xp, xd)
		}

		// In-place solve must agree with the out-of-place one.
		inPlace := b.Clone()
		if err := pc.SolveInto(inPlace, inPlace); err != nil {
			t.Fatal(err)
		}
		if !inPlace.Equal(xp, 0) {
			t.Fatalf("n=%d: in-place solve diverges", n)
		}
	}
}

func TestPackedCholRejectsIndefinite(t *testing.T) {
	p := NewPackedSym(3)
	p.AddAt(0, 0, 1)
	p.AddAt(1, 1, -2) // indefinite
	p.AddAt(2, 2, 1)
	var pc PackedChol
	if err := pc.Factor(p); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("factor of indefinite matrix: %v, want ErrNotPositiveDefinite", err)
	}
}
