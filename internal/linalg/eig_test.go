package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigDiagonal(t *testing.T) {
	a := Diag(VectorOf(3, 1, 2))
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.Equal(VectorOf(1, 2, 3), 1e-12) {
		t.Fatalf("eigenvalues = %v, want [1 2 3]", vals)
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.Equal(VectorOf(1, 3), 1e-12) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Check A v = λ v for each column.
	for j := 0; j < 2; j++ {
		v := VectorOf(vecs.At(0, j), vecs.At(1, j))
		av := a.MulVec(NewVector(2), v)
		lv := NewVector(2).Scale(vals[j], v)
		if !av.Equal(lv, 1e-12) {
			t.Errorf("column %d: Av = %v, λv = %v", j, av, lv)
		}
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestSymEigRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

// Property: for random symmetric matrices, eigenpairs satisfy Av = λv,
// eigenvectors are orthonormal, and trace equals eigenvalue sum.
func TestSymEigInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				a.Set(i, j, x)
				a.Set(j, i, x)
			}
		}
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Av = λv.
		for j := 0; j < n; j++ {
			v := NewVector(n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, j)
			}
			av := a.MulVec(NewVector(n), v)
			lv := NewVector(n).Scale(vals[j], v)
			if !av.Equal(lv, 1e-8*(1+math.Abs(vals[j]))) {
				t.Fatalf("trial %d col %d: residual too large", trial, j)
			}
		}
		// Orthonormality: VᵀV = I.
		vtv := NewMatrix(n, n).Mul(vecs.T(), vecs)
		if !vtv.Equal(Identity(n), 1e-10) {
			t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
		}
		// Trace check.
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		if math.Abs(trace-vals.Sum()) > 1e-9*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: trace %v != Σλ %v", trial, trace, vals.Sum())
		}
		// Ascending order.
		for j := 1; j < n; j++ {
			if vals[j] < vals[j-1]-1e-12 {
				t.Fatalf("trial %d: eigenvalues not ascending: %v", trial, vals)
			}
		}
	}
}

func TestPowerIteration(t *testing.T) {
	a := Diag(VectorOf(0.5, 0.9, 0.2))
	got := PowerIteration(a, 200)
	if math.Abs(got-0.9) > 1e-6 {
		t.Fatalf("PowerIteration = %v, want 0.9", got)
	}
	if PowerIteration(NewMatrix(0, 0), 10) != 0 {
		t.Fatal("empty matrix should give 0")
	}
	if PowerIteration(NewMatrix(3, 3), 10) != 0 {
		t.Fatal("zero matrix should give 0")
	}
}

func TestSpectralRadiusUpperBound(t *testing.T) {
	a := MatrixFromRows([][]float64{{0.5, 0.1}, {0, 0.5}})
	ub := SpectralRadiusUpperBound(a)
	if ub < 0.5 {
		t.Fatalf("upper bound %v below actual spectral radius 0.5", ub)
	}
	if ub > 0.61 {
		t.Fatalf("upper bound %v too loose for this matrix", ub)
	}
}
