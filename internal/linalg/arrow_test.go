package linalg

import (
	"errors"
	"math/rand"
	"testing"
)

// randomArrow draws a random SPD system with the compiled f/p arrow
// pattern: positive f diagonal, an optional rank-one border (the
// workload constraint), per-f coupling into one dense column (the
// power-frequency constraints; some columns unset to exercise Col=-1)
// and a diagonally dominant dense block (temperature rows).
func randomArrow(rng *rand.Rand, nf, nd int, withV bool) *ArrowKKT {
	k := &ArrowKKT{
		DF:  NewVector(nf),
		VF:  NewVector(nf),
		CF:  NewVector(nf),
		Col: make([]int, nf),
		S:   NewPackedSym(nd),
	}
	for i := 0; i < nf; i++ {
		k.DF[i] = 0.5 + 2*rng.Float64()
		if withV {
			k.VF[i] = rng.NormFloat64()
		}
		if nd > 0 && i%5 != 4 {
			k.Col[i] = i % nd
			k.CF[i] = rng.NormFloat64() * 0.4
		} else {
			k.Col[i] = -1
		}
	}
	g := NewMatrix(nd+3, nd)
	alpha := NewVector(nd + 3)
	for r := 0; r < g.Rows(); r++ {
		alpha[r] = rng.Float64()
		for c := 0; c < nd; c++ {
			g.Set(r, c, rng.NormFloat64())
		}
	}
	k.S.AddSyrk(g, alpha)
	// Dominance keeps H (not just S) positive definite despite the
	// coupling off-diagonals.
	k.S.AddDiag(2 + float64(nf))
	return k
}

// denseFromArrow materializes the full (nf+nd)² matrix.
func denseFromArrow(k *ArrowKKT) *Matrix {
	nf, nd := len(k.DF), k.S.N()
	h := NewMatrix(nf+nd, nf+nd)
	for i := 0; i < nf; i++ {
		h.AddAt(i, i, k.DF[i])
		for j := 0; j < nf; j++ {
			h.AddAt(i, j, k.VF[i]*k.VF[j])
		}
		if col := k.Col[i]; col >= 0 {
			h.AddAt(i, nf+col, k.CF[i])
			h.AddAt(nf+col, i, k.CF[i])
		}
	}
	for i := 0; i < nd; i++ {
		for j := 0; j <= i; j++ {
			v := k.S.At(i, j)
			h.Set(nf+i, nf+j, v)
			h.Set(nf+j, nf+i, v)
		}
	}
	return h
}

func TestArrowFactorMatchesDenseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		nf, nd int
		withV  bool
	}{
		{1, 1, true},  // uniform variant shape
		{8, 8, true},  // variable variant shape
		{8, 9, true},  // gradient variant shape (dense block borders g)
		{8, 9, false}, // no workload border
		{17, 18, true},
		{40, 41, true},
	} {
		for trial := 0; trial < 5; trial++ {
			k := randomArrow(rng, tc.nf, tc.nd, tc.withV)
			h := denseFromArrow(k)
			n := tc.nf + tc.nd

			var reg float64
			if trial%2 == 1 {
				reg = 1e-3 // regularized-retry parity
			}
			var af ArrowFactor
			if err := af.Factor(k, reg); err != nil {
				t.Fatalf("nf=%d nd=%d: arrow factor: %v", tc.nf, tc.nd, err)
			}
			hr := h.Clone()
			for i := 0; i < n; i++ {
				hr.AddAt(i, i, reg)
			}
			var dc CholFactor
			if err := CholeskyInto(&dc, hr); err != nil {
				t.Fatalf("nf=%d nd=%d: dense factor: %v", tc.nf, tc.nd, err)
			}

			b := NewVector(n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			xa, xd := NewVector(n), NewVector(n)
			if err := af.SolveInto(xa, b); err != nil {
				t.Fatal(err)
			}
			if err := dc.SolveInto(xd, b); err != nil {
				t.Fatal(err)
			}
			if !xa.Equal(xd, 1e-7*(1+xd.NormInf())) {
				t.Fatalf("nf=%d nd=%d reg=%g: arrow solve %v\n!= dense %v", tc.nf, tc.nd, reg, xa, xd)
			}
		}
	}
}

func TestArrowFactorRejectsIndefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	// Negative f diagonal (no border, so the dense matrix is indefinite
	// too): both paths must refuse.
	k := randomArrow(rng, 4, 4, false)
	k.DF[2] = -1
	var af ArrowFactor
	if err := af.Factor(k, 0); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("negative f diagonal: %v, want ErrNotPositiveDefinite", err)
	}
	var dc CholFactor
	if err := CholeskyInto(&dc, denseFromArrow(k)); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("dense accepts what arrow rejects: %v", err)
	}

	// A coupling strong enough to break the Schur complement: the full
	// matrix is indefinite even though DF and S alone are fine.
	k = randomArrow(rng, 3, 3, false)
	k.S.Reset()
	k.S.AddDiag(0.1)
	k.Col[0], k.CF[0] = 0, 10 // CF²/DF >> S diag
	if err := af.Factor(k, 0); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("indefinite Schur: %v, want ErrNotPositiveDefinite", err)
	}
	if err := CholeskyInto(&dc, denseFromArrow(k)); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("dense accepts indefinite Schur case: %v", err)
	}
}
