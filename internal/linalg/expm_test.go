package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpmZero(t *testing.T) {
	e, err := Expm(NewMatrix(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equal(Identity(3), 1e-14) {
		t.Fatalf("e^0 =\n%v, want I", e)
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := Diag(VectorOf(1, -2, 0.5))
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, lam := range []float64{1, -2, 0.5} {
		if got, want := e.At(i, i), math.Exp(lam); math.Abs(got-want) > 1e-12*want {
			t.Errorf("e^A[%d,%d] = %v, want %v", i, i, got, want)
		}
	}
	// Off-diagonals stay zero.
	if math.Abs(e.At(0, 1)) > 1e-13 {
		t.Errorf("off-diagonal = %v", e.At(0, 1))
	}
}

func TestExpmNilpotent(t *testing.T) {
	// A = [[0,1],[0,0]] => e^A = [[1,1],[0,1]] exactly.
	a := MatrixFromRows([][]float64{{0, 1}, {0, 0}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := MatrixFromRows([][]float64{{1, 1}, {0, 1}})
	if !e.Equal(want, 1e-14) {
		t.Fatalf("e^A =\n%v\nwant\n%v", e, want)
	}
}

func TestExpmRotation(t *testing.T) {
	// A = [[0,-θ],[θ,0]] => e^A is rotation by θ.
	theta := 0.7
	a := MatrixFromRows([][]float64{{0, -theta}, {theta, 0}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := MatrixFromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if !e.Equal(want, 1e-13) {
		t.Fatalf("e^A =\n%v\nwant\n%v", e, want)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Force the scaling-and-squaring path with a large-norm matrix.
	a := Diag(VectorOf(-50, -100))
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.At(0, 0), math.Exp(-50); math.Abs(got-want) > 1e-10*want {
		t.Errorf("e^-50 = %v, want %v", got, want)
	}
}

func TestExpmNonFinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, math.NaN())
	if _, err := Expm(a); err == nil {
		t.Fatal("Expm of NaN matrix succeeded")
	}
}

func TestExpmNonSquare(t *testing.T) {
	if _, err := Expm(NewMatrix(2, 3)); err == nil {
		t.Fatal("Expm of non-square matrix succeeded")
	}
}

// Property: e^(A)·e^(-A) = I for random stable matrices.
func TestExpmInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n)
		neg := NewMatrix(n, n).Scale(-1, a)
		ea, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		ena, err := Expm(neg)
		if err != nil {
			t.Fatal(err)
		}
		prod := NewMatrix(n, n).Mul(ea, ena)
		if !prod.Equal(Identity(n), 1e-9*(1+ea.MaxAbs())) {
			t.Fatalf("trial %d: e^A e^-A != I", trial)
		}
	}
}

// Property: semigroup e^(2A) = (e^A)² for random matrices.
func TestExpmSemigroupProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		a := randomMatrix(rng, n)
		two := NewMatrix(n, n).Scale(2, a)
		e2a, err := Expm(two)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		sq := NewMatrix(n, n).Mul(ea, ea)
		if !sq.Equal(e2a, 1e-8*(1+e2a.MaxAbs())) {
			t.Fatalf("trial %d: (e^A)² != e^2A", trial)
		}
	}
}

func TestIntegralExpmAgainstAnalytic(t *testing.T) {
	// Scalar system: ẋ = -a x + b u. Φ = e^{-a h}, Γ = (1-e^{-a h}) b / a.
	a := MatrixFromRows([][]float64{{-2}})
	b := MatrixFromRows([][]float64{{3}})
	h := 0.25
	phi, gamma, err := IntegralExpm(a, b, h)
	if err != nil {
		t.Fatal(err)
	}
	wantPhi := math.Exp(-2 * h)
	wantGamma := (1 - math.Exp(-2*h)) * 3 / 2
	if math.Abs(phi.At(0, 0)-wantPhi) > 1e-12 {
		t.Errorf("Φ = %v, want %v", phi.At(0, 0), wantPhi)
	}
	if math.Abs(gamma.At(0, 0)-wantGamma) > 1e-12 {
		t.Errorf("Γ = %v, want %v", gamma.At(0, 0), wantGamma)
	}
}

func TestIntegralExpmSingularA(t *testing.T) {
	// A = 0 (pure integrator): Φ = I, Γ = B·h. The Van Loan construction
	// must handle singular A, which the A⁻¹(Φ-I)B formula cannot.
	a := NewMatrix(2, 2)
	b := MatrixFromRows([][]float64{{1, 0}, {0, 2}})
	phi, gamma, err := IntegralExpm(a, b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !phi.Equal(Identity(2), 1e-13) {
		t.Errorf("Φ =\n%v, want I", phi)
	}
	want := NewMatrix(2, 2).Scale(0.5, b)
	if !gamma.Equal(want, 1e-13) {
		t.Errorf("Γ =\n%v, want\n%v", gamma, want)
	}
}

func TestIntegralExpmShapeErrors(t *testing.T) {
	if _, _, err := IntegralExpm(NewMatrix(2, 3), NewMatrix(2, 1), 1); err == nil {
		t.Error("non-square A accepted")
	}
	if _, _, err := IntegralExpm(NewMatrix(2, 2), NewMatrix(3, 1), 1); err == nil {
		t.Error("mismatched B accepted")
	}
}
