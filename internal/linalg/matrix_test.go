package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v", r, c, i3.At(r, c))
			}
		}
	}
	d := Diag(VectorOf(1, 2, 3))
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d)
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1}, {1, 2}})
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2).Mul(a, b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 0) {
		t.Fatalf("Mul =\n%v\nwant\n%v", c, want)
	}
}

func TestMatrixMulAliasPanics(t *testing.T) {
	a := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased Mul did not panic")
		}
	}()
	a.Mul(a, Identity(2))
}

func TestMatrixMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := VectorOf(1, 0, -1)
	y := a.MulVec(NewVector(2), x)
	if !y.Equal(VectorOf(-2, -2), 0) {
		t.Fatalf("MulVec = %v", y)
	}
	z := a.MulVecT(NewVector(3), VectorOf(1, 1))
	if !z.Equal(VectorOf(5, 7, 9), 0) {
		t.Fatalf("MulVecT = %v", z)
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Fatalf("T[2,1] = %v", at.At(2, 1))
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := Identity(2)
	c := NewMatrix(2, 2).Add(a, b)
	if c.At(0, 0) != 2 || c.At(1, 1) != 5 {
		t.Fatalf("Add wrong: %v", c)
	}
	c.Sub(c, b)
	if !c.Equal(a, 0) {
		t.Fatalf("Sub wrong: %v", c)
	}
	c.Scale(2, a)
	if c.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %v", c)
	}
}

func TestMatrixNorms(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, -2}, {-3, 4}})
	if n := a.NormInf(); n != 7 {
		t.Errorf("NormInf = %v, want 7", n)
	}
	if n := a.MaxAbs(); n != 4 {
		t.Errorf("MaxAbs = %v, want 4", n)
	}
}

func TestMatrixIsSymmetric(t *testing.T) {
	if !MatrixFromRows([][]float64{{1, 2}, {2, 1}}).IsSymmetric(0) {
		t.Error("symmetric matrix not detected")
	}
	if MatrixFromRows([][]float64{{1, 2}, {3, 1}}).IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}}).IsSymmetric(1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestMatrixRowAliases(t *testing.T) {
	a := Identity(2)
	a.Row(0)[1] = 5
	if a.At(0, 1) != 5 {
		t.Fatal("Row must alias storage")
	}
}

func TestMatrixCloneIndependence(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixAllFinite(t *testing.T) {
	a := Identity(2)
	if !a.AllFinite() {
		t.Error("finite matrix reported non-finite")
	}
	a.Set(0, 1, math.NaN())
	if a.AllFinite() {
		t.Error("NaN not detected")
	}
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMatrixTransposeOfProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		a, b := randomMatrix(rng, n), randomMatrix(rng, n)
		ab := NewMatrix(n, n).Mul(a, b)
		lhs := ab.T()
		rhs := NewMatrix(n, n).Mul(b.T(), a.T())
		if !lhs.Equal(rhs, 1e-12) {
			t.Fatalf("trial %d: (AB)ᵀ != BᵀAᵀ", trial)
		}
	}
}

// Property: matrix-vector product is linear: A(x+y) = Ax + Ay.
func TestMatrixMulVecLinearityProperty(t *testing.T) {
	f := func(x, y [4]float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4)
		vx, vy := VectorOf(x[:]...), VectorOf(y[:]...)
		if !vx.AllFinite() || !vy.AllFinite() {
			return true
		}
		sum := NewVector(4).Add(vx, vy)
		lhs := a.MulVec(NewVector(4), sum)
		ax := a.MulVec(NewVector(4), vx)
		ay := a.MulVec(NewVector(4), vy)
		rhs := NewVector(4).Add(ax, ay)
		scale := 1 + lhs.NormInf() + rhs.NormInf()
		return lhs.Equal(rhs, 1e-9*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// naiveMulIJK is the textbook i-j-k triple loop: the inner k walks a
// COLUMN of b (stride b.cols), missing cache on every step once b
// outgrows L1. It exists only as the benchmark baseline for the
// shipped Mul, whose i-k-j ordering streams rows of b contiguously.
func naiveMulIJK(m, a, b *Matrix) *Matrix {
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			m.Set(i, j, s)
		}
	}
	return m
}

func TestNaiveMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randomMatrix(rng, 23), randomMatrix(rng, 23)
	got := NewMatrix(23, 23).Mul(a, b)
	want := naiveMulIJK(NewMatrix(23, 23), a, b)
	if !got.Equal(want, 1e-10*(1+want.MaxAbs())) {
		t.Fatal("i-k-j Mul diverges from naive i-j-k reference")
	}
}

// BenchmarkMatrixMul pins the loop-ordering win: the naive lane is the
// i-j-k reference, the ikj lane is the shipped kernel. Run both to see
// the before/after of the cache-friendly ordering.
func BenchmarkMatrixMul(bm *testing.B) {
	for _, n := range []int{64, 256} {
		rng := rand.New(rand.NewSource(11))
		a, b := randomMatrix(rng, n), randomMatrix(rng, n)
		dst := NewMatrix(n, n)
		bm.Run(fmt.Sprintf("naive_ijk/n%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				naiveMulIJK(dst, a, b)
			}
		})
		bm.Run(fmt.Sprintf("ikj/n%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				dst.Mul(a, b)
			}
		})
	}
}

// BenchmarkMulVecT exercises the transposed matvec's row walk (the
// structured assembly's gradient accumulation path).
func BenchmarkMulVecT(bm *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 256)
	x, dst := NewVector(256), NewVector(256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		a.MulVecT(dst, x)
	}
}
