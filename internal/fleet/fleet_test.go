package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"protemp"
	"protemp/internal/fleet"
	"protemp/internal/metrics"
	"protemp/internal/workload"
)

// fastEngine builds a cheap shared engine: 1 ms steps, 100 ms windows,
// a 2×3 Phase-1 grid (6 solves per table).
func fastEngine(t testing.TB) *protemp.Engine {
	t.Helper()
	e, err := protemp.New(
		protemp.WithWindow(1e-3, 100),
		protemp.WithTableGrid([]float64{47, 100}, []float64{250e6, 500e6, 750e6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// quickSpec keeps batches CI-sized: short horizons, capped sim time.
func quickSpec(scenarios []string, policies []fleet.PolicySpec, seeds ...int64) fleet.BatchSpec {
	return fleet.BatchSpec{
		Scenarios:  scenarios,
		Policies:   policies,
		Seeds:      seeds,
		Horizon:    2,
		MaxSimTime: 6,
	}
}

// TestFleetSmoke is the CI smoke batch: 3 scenarios × 2 policies run
// end-to-end on one engine and every cell completes with a summary.
func TestFleetSmoke(t *testing.T) {
	eng := fastEngine(t)
	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"mixed", "bursty", "adversarial"},
		[]fleet.PolicySpec{{Kind: "protemp"}, {Kind: "no-tc"}},
		1,
	)
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 6/0/0", res.Completed, res.Failed, res.Skipped)
	}
	for _, rr := range res.Runs {
		if rr.Summary == nil {
			t.Fatalf("run %s/%s has no summary (err %q)", rr.Scenario, rr.Policy, rr.Error)
		}
		if rr.Summary.Completed == 0 {
			t.Fatalf("run %s/%s completed zero tasks", rr.Scenario, rr.Policy)
		}
		if rr.Policy == "protemp" && rr.Summary.TableKey == "" {
			t.Fatalf("protemp run carries no table key")
		}
	}
	// All protemp cells share one engine TMax → exactly one Phase-1
	// generation across the whole batch.
	if gen := eng.CacheStats().Generations; gen != 1 {
		t.Fatalf("generations = %d, want 1 (shared table)", gen)
	}
	// The adversarial scenario must actually stress the chip harder
	// than the mixed one under no-tc.
	peak := map[string]float64{}
	for _, rr := range res.Runs {
		if rr.Policy == "no-tc" {
			peak[rr.Scenario] = rr.Summary.PeakTempC
		}
	}
	if peak["adversarial"] <= peak["mixed"] {
		t.Fatalf("adversarial peak %.1f not above mixed peak %.1f", peak["adversarial"], peak["mixed"])
	}
}

// TestFleetOnlinePolicy runs the warm-started online MPC policy as a
// fleet cell: no Phase-1 table is generated, the Summary carries the
// per-window solve accounting, and warm starts actually engage over
// the run.
func TestFleetOnlinePolicy(t *testing.T) {
	eng := fastEngine(t)
	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"mixed"},
		[]fleet.PolicySpec{{Kind: "protemp-online"}},
		1,
	)
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed %d of 1 (failed %d)", res.Completed, res.Failed)
	}
	s := res.Runs[0].Summary
	if s == nil {
		t.Fatalf("no summary: %q", res.Runs[0].Error)
	}
	if res.Runs[0].Policy != "protemp-online" {
		t.Fatalf("policy label %q", res.Runs[0].Policy)
	}
	if s.TableKey != "" {
		t.Fatalf("online run carries table key %q, want none", s.TableKey)
	}
	if gen := eng.CacheStats().Generations; gen != 0 {
		t.Fatalf("online policy triggered %d Phase-1 generations, want 0", gen)
	}
	if s.PeakTempC > s.TMaxC+0.01 {
		t.Fatalf("online policy violated the guarantee: peak %.2f > tmax %.2f", s.PeakTempC, s.TMaxC)
	}
	if s.StepSolves == 0 {
		t.Fatal("summary records no online solves")
	}
	if s.StepWarmHits == 0 {
		t.Fatal("no warm hits across the run — the warm chain never engaged")
	}
	if s.StepSolveP50Ns == 0 || s.StepSolveP99Ns < s.StepSolveP50Ns {
		t.Fatalf("implausible latency quantiles: p50=%d p99=%d", s.StepSolveP50Ns, s.StepSolveP99Ns)
	}
}

// TestFleetDMPCPolicy runs the distributed-MPC policy as a fleet cell
// on the many-core scenario family: the Summary carries the
// consensus-layer accounting and the label encodes the partition.
func TestFleetDMPCPolicy(t *testing.T) {
	eng := fastEngine(t)
	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"manycore-mixed"},
		[]fleet.PolicySpec{{Kind: "protemp-dmpc", Clusters: 2}},
		1,
	)
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed %d of 1: %q", res.Completed, res.Runs[0].Error)
	}
	if res.Runs[0].Policy != "protemp-dmpc@2" {
		t.Fatalf("policy label %q", res.Runs[0].Policy)
	}
	s := res.Runs[0].Summary
	if s.TableKey != "" {
		t.Fatalf("dmpc run carries table key %q, want none", s.TableKey)
	}
	if gen := eng.CacheStats().Generations; gen != 0 {
		t.Fatalf("dmpc policy triggered %d Phase-1 generations, want 0", gen)
	}
	if s.PeakTempC > s.TMaxC+0.01 {
		t.Fatalf("dmpc policy violated the guarantee: peak %.2f > tmax %.2f", s.PeakTempC, s.TMaxC)
	}
	if s.DMPCClusters != 2 {
		t.Fatalf("summary clusters = %d, want 2", s.DMPCClusters)
	}
	if s.StepSolves == 0 || s.DMPCOuterIters == 0 {
		t.Fatalf("no consensus accounting: %+v", s)
	}
	if s.StepSolveP50Ns == 0 || s.StepSolveP99Ns < s.StepSolveP50Ns {
		t.Fatalf("implausible latency quantiles: p50=%d p99=%d", s.StepSolveP50Ns, s.StepSolveP99Ns)
	}
}

// TestFleetDMPCValidation pins the spec rules for the new kind.
func TestFleetDMPCValidation(t *testing.T) {
	if err := (fleet.PolicySpec{Kind: "protemp-dmpc", Clusters: -1}).Validate(); err == nil {
		t.Error("negative cluster count accepted")
	}
	if err := (fleet.PolicySpec{Kind: "protemp-online", Clusters: 2}).Validate(); err == nil {
		t.Error("clusters on a non-dmpc kind accepted")
	}
	if err := (fleet.PolicySpec{Kind: "protemp-dmpc", Variant: "gradient", Clusters: 4}).Validate(); err != nil {
		t.Errorf("valid dmpc spec rejected: %v", err)
	}
	if got := (fleet.PolicySpec{Kind: "protemp-dmpc", Variant: "uniform", Clusters: 4, Estimator: "kalman"}).Label(); got != "protemp-dmpc/uniform@4+kalman" {
		t.Errorf("label %q", got)
	}
}

// TestFleetCancellation checks the ISSUE's cancellation semantics:
// cancel mid-batch returns the partial results accumulated so far,
// marks the rest skipped/failed, and leaks no goroutines.
func TestFleetCancellation(t *testing.T) {
	eng := fastEngine(t)
	// Warm the table so the first run completes quickly.
	if _, err := eng.GenerateTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"mixed", "bursty", "diurnal"},
		[]fleet.PolicySpec{{Kind: "protemp"}, {Kind: "basic-dfs"}, {Kind: "no-tc"}},
		1, 2,
	)
	spec.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	res, err := r.RunWithProgress(ctx, spec, func(done, failed, total int) {
		if done == 1 {
			cancel() // first cell finished: stop the batch
		}
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled batch returned nil partial result")
	}
	if len(res.Runs) != 18 {
		t.Fatalf("runs = %d, want 18", len(res.Runs))
	}
	if res.Completed < 1 {
		t.Fatalf("no partial results survived cancellation: %+v", res)
	}
	if res.Skipped == 0 {
		t.Fatal("cancellation skipped nothing — batch ran to completion before cancel took effect")
	}
	if got := res.Completed + res.Failed + res.Skipped; got != len(res.Runs) {
		t.Fatalf("tallies %d+%d+%d don't cover %d runs", res.Completed, res.Failed, res.Skipped, len(res.Runs))
	}
	for _, rr := range res.Runs {
		if rr.Scenario == "" {
			t.Fatal("run left unlabeled after cancellation")
		}
		if rr.Summary == nil && rr.Error == "" && !rr.Skipped {
			t.Fatalf("run %s/%s/%d in impossible state", rr.Scenario, rr.Policy, rr.Seed)
		}
	}

	// No goroutine leaks once the batch returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetDeterminism: identical specs with parallel workers produce
// bit-identical summaries, run order notwithstanding.
func TestFleetDeterminism(t *testing.T) {
	eng := fastEngine(t)
	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"mixed", "ambient-hot"},
		[]fleet.PolicySpec{{Kind: "protemp"}, {Kind: "basic-dfs", ThresholdC: 92}},
		3, 4,
	)
	spec.Workers = 4
	a, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatalf("same spec, different results:\n%+v\nvs\n%+v", a.Runs, b.Runs)
	}
}

// TestFleetScenarioOverrides: a hot ambient start raises the observed
// peak, and a scenario TMax override flows into both the table spec
// (a second generation) and violation accounting.
func TestFleetScenarioOverrides(t *testing.T) {
	eng := fastEngine(t)
	reg := fleet.Builtin()
	if err := reg.Register(fleet.Scenario{
		Name:        "mixed-cool-limit",
		Description: "mixed load under a tightened 90 °C limit",
		Horizon:     2,
		TMaxC:       90,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			return workload.Mixed(seed, nCores, horizon).Generate()
		},
	}); err != nil {
		t.Fatal(err)
	}
	r := fleet.NewRunner(eng, reg, nil)
	spec := quickSpec(
		[]string{"mixed", "mixed-cool-limit", "ambient-cool", "ambient-hot"},
		[]fleet.PolicySpec{{Kind: "protemp"}},
		1,
	)
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed = %d (%+v)", res.Completed, res.Runs)
	}
	byScenario := map[string]*fleet.Summary{}
	for _, rr := range res.Runs {
		byScenario[rr.Scenario] = rr.Summary
	}
	if byScenario["ambient-hot"].PeakTempC <= byScenario["ambient-cool"].PeakTempC {
		t.Fatalf("hot ambient peak %.1f not above cool %.1f",
			byScenario["ambient-hot"].PeakTempC, byScenario["ambient-cool"].PeakTempC)
	}
	if got := byScenario["mixed-cool-limit"].TMaxC; got != 90 {
		t.Fatalf("override TMax = %g, want 90", got)
	}
	if byScenario["mixed-cool-limit"].TableKey == byScenario["mixed"].TableKey {
		t.Fatal("TMax override did not change the table key")
	}
	// Two distinct table specs → exactly two generations.
	if gen := eng.CacheStats().Generations; gen != 2 {
		t.Fatalf("generations = %d, want 2", gen)
	}
}

func TestPlanValidation(t *testing.T) {
	r := fleet.NewRunner(fastEngine(t), nil, nil)
	pp := []fleet.PolicySpec{{Kind: "protemp"}}
	cases := []fleet.BatchSpec{
		{},
		{Scenarios: []string{"mixed"}},
		{Scenarios: []string{"no-such"}, Policies: pp},
		{Scenarios: []string{"mixed", "mixed"}, Policies: pp},
		{Scenarios: []string{"mixed"}, Policies: []fleet.PolicySpec{{Kind: "nope"}}},
		{Scenarios: []string{"mixed"}, Policies: []fleet.PolicySpec{{Kind: "protemp", Variant: "nope"}}},
		{Scenarios: []string{"mixed"}, Policies: pp, Workers: -1},
		{Scenarios: []string{"mixed"}, Policies: pp, RunTimeout: -time.Second},
		{Scenarios: []string{"mixed"}, Policies: []fleet.PolicySpec{{Kind: "basic-dfs", ThresholdC: math.NaN()}}},
		{Scenarios: []string{"mixed"}, Policies: []fleet.PolicySpec{{Kind: "basic-dfs", ThresholdC: math.Inf(1)}}},
		{Scenarios: []string{"mixed"}, Policies: pp, Horizon: math.NaN()},
		{Scenarios: []string{"mixed"}, Policies: pp, MaxSimTime: math.Inf(1)},
		{Scenarios: []string{"mixed"}, Policies: []fleet.PolicySpec{{Kind: "protemp"}, {Kind: "protemp"}}},
		{Scenarios: []string{"mixed"}, Policies: pp, Seeds: []int64{3, 3}},
	}
	for i, spec := range cases {
		if _, err := r.Plan(spec); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, spec)
		}
	}
	runs, err := r.Plan(fleet.BatchSpec{
		Scenarios: []string{"mixed", "bursty"},
		Policies:  []fleet.PolicySpec{{Kind: "protemp"}, {Kind: "no-tc"}},
		Seeds:     []int64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 12 {
		t.Fatalf("expanded %d runs, want 12", len(runs))
	}
	if runs[0].Scenario != "mixed" || runs[0].Policy.Kind != "protemp" || runs[0].Seed != 1 {
		t.Fatalf("unexpected first run %+v", runs[0])
	}
}

func TestRunnerMetricsInstruments(t *testing.T) {
	reg := metrics.NewRegistry()
	r := fleet.NewRunner(fastEngine(t), nil, reg)
	spec := quickSpec([]string{"mixed"}, []fleet.PolicySpec{{Kind: "no-tc"}}, 1)
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["fleet_batches"] != 1 || snap["fleet_runs_started"] != 1 || snap["fleet_runs_completed"] != 1 {
		t.Fatalf("counters %v", snap)
	}
	if snap["fleet_runs_inflight"] != 0 {
		t.Fatalf("inflight gauge stuck at %d", snap["fleet_runs_inflight"])
	}
}

func TestRegistry(t *testing.T) {
	reg := fleet.Builtin()
	names := reg.Names()
	for _, want := range []string{"mixed", "bursty", "compute", "adversarial", "diurnal", "ambient-cool", "ambient-hot"} {
		if _, ok := reg.Get(want); !ok {
			t.Errorf("builtin %q missing (have %v)", want, names)
		}
	}
	if err := reg.Register(fleet.Scenario{Name: "mixed", Horizon: 1, Build: reg.All()[0].Build}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register(fleet.Scenario{Name: "", Horizon: 1, Build: reg.All()[0].Build}); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register(fleet.Scenario{Name: "x", Horizon: 1}); err == nil {
		t.Error("nil Build accepted")
	}
	// Builtin registries are independent.
	other := fleet.Builtin()
	if err := other.Register(fleet.Scenario{Name: "own", Horizon: 1, Build: reg.All()[0].Build}); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("own"); ok {
		t.Error("registration leaked across Builtin() instances")
	}
}

func TestReports(t *testing.T) {
	eng := fastEngine(t)
	r := fleet.NewRunner(eng, nil, nil)
	spec := quickSpec(
		[]string{"mixed", "adversarial"},
		[]fleet.PolicySpec{{Kind: "protemp"}, {Kind: "no-tc"}},
		1,
	)
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ranked := fleet.Rank(res)
	if len(ranked) != 4 {
		t.Fatalf("ranked %d runs, want 4", len(ranked))
	}
	// Within the adversarial scenario the temperature-controlled policy
	// must rank above no-tc (fewer violation core-seconds).
	for i, rr := range ranked {
		if rr.Scenario == "adversarial" {
			if rr.Policy != "protemp" {
				t.Fatalf("adversarial rank 1 is %s, want protemp (ranked: %+v)", rr.Policy, ranked)
			}
			_ = i
			break
		}
	}
	board := fleet.Leaderboard(res)
	if len(board) != 2 {
		t.Fatalf("leaderboard rows = %d, want 2", len(board))
	}
	if board[0].Policy != "protemp" {
		t.Fatalf("leaderboard winner %q, want protemp", board[0].Policy)
	}

	var table, csv strings.Builder
	if err := fleet.WriteReportTable(&table, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "protemp") || !strings.Contains(table.String(), "adversarial") {
		t.Fatalf("report table incomplete:\n%s", table.String())
	}
	if err := fleet.WriteCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 5 { // header + 4 rows
		t.Fatalf("CSV has %d lines, want 5:\n%s", got, csv.String())
	}
	var js strings.Builder
	if err := fleet.WriteJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	var back fleet.BatchResult
	if err := json.Unmarshal([]byte(js.String()), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Completed != res.Completed || len(back.Runs) != len(res.Runs) {
		t.Fatal("JSON round-trip lost runs")
	}
}
