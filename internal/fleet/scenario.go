// Package fleet is the multi-scenario evaluation layer: a registry of
// named, parameterized workload scenarios and a parallel batch runner
// that fans scenario × policy × seed runs across a bounded worker
// pool, all sharing one Engine so Phase-1 tables are generated exactly
// once per distinct table spec.
//
// The paper evaluates Pro-Temp against its baselines one trace at a
// time; this package is the production counterpart — stress the
// controller under a diurnal load curve, a bursty on/off stream, a
// thermally adversarial all-cores-hot regime and an ambient sweep in
// one batch, and get back comparable summaries (throughput, wait-time
// percentiles, thermal violations, peak temperature, frequency
// switches) ranked per scenario.
package fleet

import (
	"fmt"
	"sort"
	"sync"

	"protemp/internal/sense"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

// Scenario is one named, parameterized workload regime. Build
// synthesizes its trace; the overrides adapt the platform per
// scenario without rebuilding the engine (the thermal model and chip
// stay shared, so Phase-1 tables are too).
type Scenario struct {
	Name        string
	Description string
	// Horizon is the default arrival horizon in seconds (a BatchSpec
	// may override it for quicker or longer sweeps).
	Horizon float64
	// T0C overrides the uniform initial temperature in °C — the
	// ambient-condition knob of the ambient sweep. Zero keeps the
	// thermal model's ambient.
	T0C float64
	// TMaxC overrides the temperature limit in °C for both the
	// Pro-Temp table and violation accounting. Zero keeps the engine
	// default.
	TMaxC float64
	// Sensing, when non-nil, degrades the measurement path: policies
	// observe sensor readings with these defects instead of the true
	// temperatures. The runner overrides its Seed with the cell's
	// workload seed so runs replay bit-identically, and a policy's
	// Estimator choice overrides the scenario's (the scenario is the
	// fault environment, the policy brings its own observer).
	Sensing *sim.Sensing
	// Build synthesizes the trace for a seed, core count and horizon
	// (horizon <= 0 selects the scenario's default). It must be
	// deterministic under seed.
	Build func(seed int64, nCores int, horizon float64) (*workload.Trace, error)
}

// trace runs Build with the horizon defaulting rule applied.
func (s Scenario) trace(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
	if horizon <= 0 {
		horizon = s.Horizon
	}
	return s.Build(seed, nCores, horizon)
}

// Registry is a concurrency-safe name → Scenario map.
type Registry struct {
	mu        sync.RWMutex
	scenarios map[string]Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scenarios: make(map[string]Scenario)}
}

// Register adds a scenario; a duplicate name, empty name, nil Build or
// non-positive default horizon is an error.
func (r *Registry) Register(s Scenario) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("fleet: scenario with empty name")
	case s.Build == nil:
		return fmt.Errorf("fleet: scenario %q has nil Build", s.Name)
	case s.Horizon <= 0:
		return fmt.Errorf("fleet: scenario %q has non-positive horizon %g", s.Name, s.Horizon)
	case s.TMaxC < 0:
		return fmt.Errorf("fleet: scenario %q has negative TMax %g", s.Name, s.TMaxC)
	}
	if err := s.Sensing.Validate(); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.scenarios[s.Name]; ok {
		return fmt.Errorf("fleet: scenario %q already registered", s.Name)
	}
	r.scenarios[s.Name] = s
	return nil
}

// Get looks a scenario up by name.
func (r *Registry) Get(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scenarios[name]
	return s, ok
}

// Names returns the registered scenario names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scenarios))
	for name := range r.scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered scenarios sorted by name.
func (r *Registry) All() []Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Scenario, 0, len(r.scenarios))
	for _, s := range r.scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// mustRegister is the builtin-population helper: the builtins are
// statically correct, so a failure is a programming error.
func (r *Registry) mustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Builtin returns a fresh registry populated with the built-in
// scenarios. Each call returns an independent registry, so callers may
// Register their own scenarios without leaking into others.
func Builtin() *Registry {
	r := NewRegistry()
	r.mustRegister(Scenario{
		Name:        "mixed",
		Description: "paper-style mixed benchmark blend, moderate load with pronounced bursts (Fig. 6a regime)",
		Horizon:     20,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			return workload.Mixed(seed, nCores, horizon).Generate()
		},
	})
	r.mustRegister(Scenario{
		Name:        "bursty",
		Description: "on/off traffic: long idle valleys broken by saturating bursts",
		Horizon:     20,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			g := workload.Mixed(seed, nCores, horizon)
			g.Utilization = 0.4
			g.BurstFactor = 4
			g.HighFrac = 0.2
			g.MeanBurst = 1.5
			return g.Generate()
		},
	})
	r.mustRegister(Scenario{
		Name:        "compute",
		Description: "sustained near-capacity compute-class load (Fig. 6b regime)",
		Horizon:     20,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			return workload.ComputeIntensive(seed, nCores, horizon).Generate()
		},
	})
	r.mustRegister(Scenario{
		Name:        "adversarial",
		Description: "thermally adversarial: all cores hot from the start, overcommitted steady compute load",
		Horizon:     20,
		T0C:         95,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			g := workload.ComputeIntensive(seed, nCores, horizon)
			g.Utilization = 1.2 // overcommitted: backlog grows while the chip is hot
			g.BurstFactor = 1   // no relief valleys
			g.HighFrac = 1
			return g.Generate()
		},
	})
	r.mustRegister(Scenario{
		Name:        "diurnal",
		Description: "day-shaped load curve: quiet start, ramp, saturated peak, medium tail",
		Horizon:     20,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			return workload.GeneratePhases(seed, nCores, workload.Diurnal(horizon))
		},
	})
	mixedAt := func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
		return workload.Mixed(seed, nCores, horizon).Generate()
	}
	r.mustRegister(Scenario{
		Name:        "ambient-cool",
		Description: "ambient sweep, cool point: mixed load starting from 45 °C",
		Horizon:     20,
		T0C:         45,
		Build:       mixedAt,
	})
	r.mustRegister(Scenario{
		Name:        "ambient-hot",
		Description: "ambient sweep, hot point: mixed load starting from 85 °C",
		Horizon:     20,
		T0C:         85,
		Build:       mixedAt,
	})
	// Many-core family: load regimes sized for engines built on the
	// synthetic grid floorplans (floorplan.ManyCore / -floorplan grid:RxC
	// on the CLI), where a dense centralized solve is intractable and the
	// protemp-dmpc policy is the interesting contender. The scenarios
	// themselves scale with the engine's core count, so they also run on
	// the 8-core default — just without the point.
	r.mustRegister(Scenario{
		Name:        "manycore-mixed",
		Description: "mixed blend scaled to a grid floorplan: moderate utilization with bursts across hundreds of cores",
		Horizon:     10,
		T0C:         70,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			return workload.Mixed(seed, nCores, horizon).Generate()
		},
	})
	r.mustRegister(Scenario{
		Name:        "manycore-hot",
		Description: "grid floorplan under sustained near-capacity compute from a hot start: cluster boundaries carry real heat",
		Horizon:     10,
		T0C:         85,
		Build: func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
			g := workload.ComputeIntensive(seed, nCores, horizon)
			g.Utilization = 0.85
			return g.Generate()
		},
	})
	// Imperfect-sensing families: same thermal stress as ambient-hot
	// (controllers must actually work near the limit for sensing quality
	// to matter) with progressively nastier measurement paths. Policies
	// race raw against estimator-assisted by setting PolicySpec.Estimator.
	r.mustRegister(Scenario{
		Name:        "noisy-sensors",
		Description: "hot-start mixed load read through the reference noisy diode (0.5 °C noise, 0.25 °C ADC, 1% dropout)",
		Horizon:     20,
		T0C:         85,
		Sensing:     &sim.Sensing{Sensors: []sense.Config{sense.DefaultNoisy()}},
		Build:       mixedAt,
	})
	r.mustRegister(Scenario{
		Name:        "sensor-dropout",
		Description: "hot-start mixed load with unreliable sensors: 30% per-window dropouts, occasional fully blind windows",
		Horizon:     20,
		T0C:         85,
		Sensing: &sim.Sensing{Sensors: []sense.Config{{
			NoiseSigma: 0.5, QuantStep: 0.25, DropoutProb: 0.3,
		}}},
		Build: mixedAt,
	})
	r.mustRegister(Scenario{
		Name:        "ambient-drift",
		Description: "hot-start mixed load with under-reporting sensors: −0.5 °C/s calibration drift on top of read noise",
		Horizon:     20,
		T0C:         85,
		Sensing: &sim.Sensing{Sensors: []sense.Config{{
			NoiseSigma: 0.25, DriftRate: -0.5,
		}}},
		Build: mixedAt,
	})
	r.mustRegister(Scenario{
		Name:        "model-mismatch",
		Description: "noisy sensors plus a wrong-RC observer: the estimator's thermal model carries a 40% gain error",
		Horizon:     20,
		T0C:         85,
		Sensing: &sim.Sensing{
			Sensors:  []sense.Config{sense.DefaultNoisy()},
			ModelErr: 1.4,
		},
		Build: mixedAt,
	})
	return r
}
