package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// better reports whether summary a beats summary b: fewest thermal
// violation core-seconds first (the controller's contract), then
// coolest peak, then lowest p95 wait, then highest throughput, then
// least energy. Ties at every level preserve input order.
func better(a, b *Summary) bool {
	if a.ViolationCoreS != b.ViolationCoreS {
		return a.ViolationCoreS < b.ViolationCoreS
	}
	if a.PeakTempC != b.PeakTempC {
		return a.PeakTempC < b.PeakTempC
	}
	if a.WaitP95S != b.WaitP95S {
		return a.WaitP95S < b.WaitP95S
	}
	if a.ThroughputTPS != b.ThroughputTPS {
		return a.ThroughputTPS > b.ThroughputTPS
	}
	return a.EnergyJ < b.EnergyJ
}

// Rank returns the completed runs best-first (see better), grouped by
// scenario name so the comparison reads per regime.
func Rank(res *BatchResult) []RunResult {
	out := make([]RunResult, 0, len(res.Runs))
	for _, rr := range res.Runs {
		if rr.Summary != nil {
			out = append(out, rr)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Scenario != out[j].Scenario {
			return out[i].Scenario < out[j].Scenario
		}
		return better(out[i].Summary, out[j].Summary)
	})
	return out
}

// LeaderboardRow is one policy's cross-scenario standing.
type LeaderboardRow struct {
	Policy string  `json:"policy"`
	Runs   int     `json:"runs"`
	Wins   int     `json:"wins"`     // scenario×seed groups won
	Groups int     `json:"groups"`   // groups the policy competed in
	AvgPos float64 `json:"avg_rank"` // mean 1-based rank within its groups
}

// Leaderboard ranks policies across the whole batch: within every
// (scenario, seed) group the completed policies are ordered by better,
// and each policy accumulates its position. Policies are returned by
// ascending mean position (wins break ties).
func Leaderboard(res *BatchResult) []LeaderboardRow {
	type groupKey struct {
		scenario string
		seed     int64
	}
	groups := make(map[groupKey][]RunResult)
	for _, rr := range res.Runs {
		if rr.Summary == nil {
			continue
		}
		k := groupKey{rr.Scenario, rr.Seed}
		groups[k] = append(groups[k], rr)
	}
	acc := make(map[string]*LeaderboardRow)
	for _, members := range groups {
		sort.SliceStable(members, func(i, j int) bool { return better(members[i].Summary, members[j].Summary) })
		for pos, rr := range members {
			row := acc[rr.Policy]
			if row == nil {
				row = &LeaderboardRow{Policy: rr.Policy}
				acc[rr.Policy] = row
			}
			row.Runs++
			row.Groups++
			row.AvgPos += float64(pos + 1)
			if pos == 0 {
				row.Wins++
			}
		}
	}
	out := make([]LeaderboardRow, 0, len(acc))
	for _, row := range acc {
		row.AvgPos /= float64(row.Groups)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgPos != out[j].AvgPos {
			return out[i].AvgPos < out[j].AvgPos
		}
		if out[i].Wins != out[j].Wins {
			return out[i].Wins > out[j].Wins
		}
		return out[i].Policy < out[j].Policy
	})
	return out
}

// WriteReportTable renders the human-readable comparison: per-scenario
// ranked rows, failures/skips, and the cross-scenario leaderboard.
func WriteReportTable(w io.Writer, res *BatchResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tpolicy\tseed\tthroughput/s\twait_p95_ms\tpeak_°C\tviol_core_s\tswitches\tenergy_J")
	for _, rr := range Rank(res) {
		s := rr.Summary
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.2f\t%.2f\t%.4f\t%d\t%.1f\n",
			rr.Scenario, rr.Policy, rr.Seed,
			s.ThroughputTPS, s.WaitP95S*1e3, s.PeakTempC, s.ViolationCoreS, s.FreqSwitches, s.EnergyJ)
	}
	for _, rr := range res.Runs {
		switch {
		case rr.Error != "":
			fmt.Fprintf(tw, "%s\t%s\t%d\tFAILED: %s\n", rr.Scenario, rr.Policy, rr.Seed, rr.Error)
		case rr.Skipped:
			fmt.Fprintf(tw, "%s\t%s\t%d\tskipped\n", rr.Scenario, rr.Policy, rr.Seed)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	board := Leaderboard(res)
	if len(board) > 1 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "policy\tavg_rank\twins\tgroups")
		for _, row := range board {
			fmt.Fprintf(tw, "%s\t%.2f\t%d\t%d\n", row.Policy, row.AvgPos, row.Wins, row.Groups)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\n%d completed, %d failed, %d skipped in %.1fs\n",
		res.Completed, res.Failed, res.Skipped, res.ElapsedS)
	return nil
}

// WriteJSON emits the full batch result as indented JSON.
func WriteJSON(w io.Writer, res *BatchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteCSV emits one row per run (completed or not) with the summary
// columns, machine-readable for downstream analysis.
func WriteCSV(w io.Writer, res *BatchResult) error {
	if _, err := fmt.Fprintln(w, "scenario,policy,seed,status,sim_time_s,tasks,completed,unfinished,throughput_tps,wait_mean_s,wait_p50_s,wait_p95_s,wait_p99_s,wait_max_s,peak_temp_c,tmax_c,violation_frac,violation_core_s,freq_switches,energy_j"); err != nil {
		return err
	}
	for _, rr := range res.Runs {
		status := "ok"
		if rr.Error != "" {
			status = "failed"
		} else if rr.Skipped {
			status = "skipped"
		}
		s := rr.Summary
		if s == nil {
			s = &Summary{}
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%.6f,%d,%d,%d,%.6f,%.9f,%.9f,%.9f,%.9f,%.9f,%.4f,%.4f,%.9f,%.9f,%d,%.6f\n",
			rr.Scenario, rr.Policy, rr.Seed, status,
			s.SimTimeS, s.Tasks, s.Completed, s.Unfinished, s.ThroughputTPS,
			s.WaitMeanS, s.WaitP50S, s.WaitP95S, s.WaitP99S, s.WaitMaxS,
			s.PeakTempC, s.TMaxC, s.ViolationFrac, s.ViolationCoreS,
			s.FreqSwitches, s.EnergyJ); err != nil {
			return err
		}
	}
	return nil
}
