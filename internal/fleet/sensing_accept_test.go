package fleet_test

import (
	"context"
	"testing"

	"protemp"
	"protemp/internal/fleet"
	"protemp/internal/sense"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

// sensingAcceptRegistry holds the acceptance pair: one overcommitted
// hot regime evaluated under perfect sensing and under the reference
// noisy diode with under-reporting calibration drift — the dangerous
// direction, because a controller fed low readings plans past the
// limit. TMax sits below the chip's flat-out equilibrium so control
// quality, not physics, decides the violation account.
func sensingAcceptRegistry(t *testing.T) *fleet.Registry {
	t.Helper()
	reg := fleet.NewRegistry()
	hot := func(seed int64, nCores int, horizon float64) (*workload.Trace, error) {
		g := workload.ComputeIntensive(seed, nCores, horizon)
		g.Utilization = 1.2
		g.BurstFactor = 1
		g.HighFrac = 1
		return g.Generate()
	}
	noisy := &sim.Sensing{Sensors: []sense.Config{{
		NoiseSigma:  0.5,
		QuantStep:   0.25,
		DropoutProb: 0.1,
		DriftRate:   -1,
	}}}
	for _, sc := range []fleet.Scenario{
		{Name: "accept-perfect", Description: "acceptance baseline: perfect sensing", Horizon: 6, T0C: 90, TMaxC: 96, Build: hot},
		{Name: "accept-noisy", Description: "acceptance: noisy under-reporting sensors", Horizon: 6, T0C: 90, TMaxC: 96, Sensing: noisy, Build: hot},
	} {
		if err := reg.Register(sc); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestSensingAcceptance is the PR's acceptance criterion, on the
// paper's chip and Phase-1 grid with fixed seeds: the
// estimator-assisted MPC policy's violation core-seconds stay within
// 10% of the perfect-sensing baseline, while the same policy fed the
// raw noisy readings is measurably worse. The table-driven paper
// policy rides along so the leaderboard races all three controller
// families under degraded sensing.
func TestSensingAcceptance(t *testing.T) {
	e, err := protemp.New(protemp.WithWindow(1e-3, 100)) // paper grid, fast windows
	if err != nil {
		t.Fatal(err)
	}
	r := fleet.NewRunner(e, sensingAcceptRegistry(t), nil)
	res, err := r.Run(context.Background(), fleet.BatchSpec{
		Scenarios: []string{"accept-perfect", "accept-noisy"},
		Policies: []fleet.PolicySpec{
			{Kind: "protemp"},
			{Kind: "protemp-online"},
			{Kind: "protemp-online", Estimator: "kalman"},
		},
		Seeds:      []int64{1},
		Horizon:    6,
		MaxSimTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	viol := map[string]float64{}
	var noisyKalman *fleet.Summary
	for _, rr := range res.Runs {
		if rr.Summary == nil {
			t.Fatalf("run %s/%s failed: %s", rr.Scenario, rr.Policy, rr.Error)
		}
		viol[rr.Scenario+"/"+rr.Policy] = rr.Summary.ViolationCoreS
		t.Logf("%-16s %-24s viol=%.4f core-s peak=%.2f rms=%.3f",
			rr.Scenario, rr.Policy, rr.Summary.ViolationCoreS, rr.Summary.PeakTempC, rr.Summary.EstimateRMSC)
		if rr.Scenario == "accept-noisy" && rr.Policy == "protemp-online+kalman" {
			noisyKalman = rr.Summary
		}
	}

	baseline := viol["accept-perfect/protemp-online"]
	est := viol["accept-noisy/protemp-online+kalman"]
	raw := viol["accept-noisy/protemp-online"]

	// Estimator-assisted within 10% of the perfect baseline (absolute
	// epsilon for the near-zero case: 0.02 core-s over an 80 core-second
	// run is 0.025%).
	if est > baseline*1.10+0.02 {
		t.Errorf("estimator-assisted violations %.4f exceed baseline %.4f by more than 10%%", est, baseline)
	}
	// The same policy on raw readings is measurably worse than both.
	if raw < est+0.05 || raw < baseline*1.10+0.05 {
		t.Errorf("raw-readings violations %.4f not measurably worse (baseline %.4f, estimator %.4f)", raw, baseline, est)
	}

	// The sensed cell's summary carries the observability slice.
	if noisyKalman == nil {
		t.Fatal("no noisy kalman cell")
	}
	if noisyKalman.SenseWindows == 0 || noisyKalman.SenseDropouts == 0 {
		t.Errorf("sense counters empty: %+v", noisyKalman)
	}
	if noisyKalman.Estimator != "kalman" {
		t.Errorf("estimator label %q", noisyKalman.Estimator)
	}
	if noisyKalman.EstimateRMSC <= 0 || noisyKalman.EstimateRMSC > 4 {
		t.Errorf("estimate RMS %.3f outside (0, 4]", noisyKalman.EstimateRMSC)
	}
	if noisyKalman.InnovP95C <= 0 {
		t.Errorf("innovation p95 %.4f not recorded", noisyKalman.InnovP95C)
	}
}
