package fleet

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"protemp/internal/core"
	"protemp/internal/estimate"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/obs"
	"protemp/internal/power"
	"protemp/internal/sim"
	"protemp/internal/thermal"
)

// Engine is the slice of the protemp.Engine facade the runner needs:
// the shared modeled chip plus cached Phase-1 table generation. Every
// run in a batch goes through one Engine, so the engine's
// LRU/singleflight/store tiers guarantee at most one Phase-1 sweep per
// distinct table spec no matter how many runs request it concurrently.
type Engine interface {
	Chip() *power.Chip
	Disc() *thermal.Discrete
	Window() *thermal.WindowResponse
	WindowSeconds() float64
	TMax() float64
	Variant() core.Variant
	GenerateTableOverride(ctx context.Context, tstarts, ftargets []float64, v core.Variant, tmax float64) (*core.Table, error)
	TableKeyOverride(tstarts, ftargets []float64, v core.Variant, tmax float64) string
	// DMPCPolicy builds the distributed-MPC policy: the chip
	// partitioned into clusters (<= 0 selects the engine default),
	// solved in parallel per window under ADMM boundary consensus.
	DMPCPolicy(clusters int, v core.Variant, tmax float64) (*sim.ProTempDMPC, error)
}

// PolicySpec names one control policy of a batch.
type PolicySpec struct {
	// Kind is "protemp", "protemp-online", "protemp-dmpc", "basic-dfs"
	// or "no-tc".
	Kind string `json:"kind"`
	// Clusters is the protemp-dmpc partition size; zero selects the
	// engine default (one cluster per 8 cores).
	Clusters int `json:"clusters,omitempty"`
	// ThresholdC is the Basic-DFS shutdown trigger in °C; zero derives
	// the paper's margin (TMax − 10).
	ThresholdC float64 `json:"threshold_c,omitempty"`
	// Variant selects the Pro-Temp model variant ("variable", "uniform"
	// or "gradient"; empty = engine default). Applies to both the
	// table-driven and the online kinds.
	Variant string `json:"variant,omitempty"`
	// Estimator equips the policy with a state observer for scenarios
	// with degraded sensing: "kalman" or "luenberger" reconstructs the
	// thermal map from the readings, "" or "none" consumes them raw.
	// On a perfect-sensing scenario a non-empty value still routes the
	// run through the sensed path (perfect readings into the observer).
	Estimator string `json:"estimator,omitempty"`
}

// Validate checks the spec against the engine-independent rules.
func (p PolicySpec) Validate() error {
	switch p.Kind {
	case "protemp", "protemp-online", "protemp-dmpc":
		if _, err := core.ParseVariant(p.Variant, core.VariantVariable); err != nil {
			return err
		}
	case "basic-dfs", "no-tc":
	default:
		return fmt.Errorf("fleet: unknown policy kind %q (want protemp, protemp-online, protemp-dmpc, basic-dfs or no-tc)", p.Kind)
	}
	if p.Clusters < 0 {
		return fmt.Errorf("fleet: negative cluster count %d", p.Clusters)
	}
	if p.Clusters > 0 && p.Kind != "protemp-dmpc" {
		return fmt.Errorf("fleet: clusters set on policy kind %q (only protemp-dmpc partitions)", p.Kind)
	}
	// The negated comparison also rejects NaN, which would otherwise
	// slip through every range check and disable throttling entirely.
	if !(p.ThresholdC >= 0) || math.IsInf(p.ThresholdC, 0) {
		return fmt.Errorf("fleet: invalid threshold %g", p.ThresholdC)
	}
	if p.Estimator != "" && p.Estimator != "none" {
		if _, err := estimate.ParseKind(p.Estimator, estimate.Kalman); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	return nil
}

// Label returns the display/report name, e.g. "protemp/gradient",
// "protemp-online+kalman", "protemp-dmpc@8" or "basic-dfs@90".
func (p PolicySpec) Label() string {
	var base string
	switch p.Kind {
	case "protemp", "protemp-online", "protemp-dmpc":
		base = p.Kind
		if p.Variant != "" {
			base += "/" + p.Variant
		}
		if p.Clusters > 0 {
			base += fmt.Sprintf("@%d", p.Clusters)
		}
	case "basic-dfs":
		base = "basic-dfs"
		if p.ThresholdC > 0 {
			base = fmt.Sprintf("basic-dfs@%g", p.ThresholdC)
		}
	default:
		base = p.Kind
	}
	if p.Estimator != "" && p.Estimator != "none" {
		base += "+" + p.Estimator
	}
	return base
}

// BatchSpec describes one fleet evaluation: the cross product of
// scenarios × policies × seeds. It is pure data (JSON-serializable for
// the server's async job API).
type BatchSpec struct {
	// Scenarios are registry names; at least one is required.
	Scenarios []string `json:"scenarios"`
	// Policies to compare; at least one is required.
	Policies []PolicySpec `json:"policies"`
	// Seeds for the workload generators (default {1}).
	Seeds []int64 `json:"seeds,omitempty"`
	// Workers bounds the parallel runs (default min(GOMAXPROCS, runs)).
	Workers int `json:"workers,omitempty"`
	// RunTimeout caps each individual run (0 = no per-run cap).
	RunTimeout time.Duration `json:"run_timeout,omitempty"`
	// Horizon overrides every scenario's arrival horizon in seconds
	// (0 = scenario defaults). Short CI batches set this low.
	Horizon float64 `json:"horizon_s,omitempty"`
	// MaxSimTime caps each run's simulated seconds (0 = simulator
	// default, which is generous for overcommitted scenarios).
	MaxSimTime float64 `json:"max_sim_time_s,omitempty"`
}

// Run is one expanded (scenario, policy, seed) cell.
type Run struct {
	Scenario string     `json:"scenario"`
	Policy   PolicySpec `json:"policy"`
	Seed     int64      `json:"seed"`
}

// Summary aggregates one run into the comparable quantities the
// paper's evaluation reports, plus serving-oriented ones.
type Summary struct {
	SimTimeS       float64 `json:"sim_time_s"`
	Tasks          int     `json:"tasks"`
	Completed      int     `json:"completed"`
	Unfinished     int     `json:"unfinished"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	WaitMeanS      float64 `json:"wait_mean_s"`
	WaitP50S       float64 `json:"wait_p50_s"`
	WaitP95S       float64 `json:"wait_p95_s"`
	WaitP99S       float64 `json:"wait_p99_s"`
	WaitMaxS       float64 `json:"wait_max_s"`
	PeakTempC      float64 `json:"peak_temp_c"`
	TMaxC          float64 `json:"tmax_c"`
	ViolationFrac  float64 `json:"violation_frac"`
	ViolationCoreS float64 `json:"violation_core_s"`
	FreqSwitches   uint64  `json:"freq_switches"`
	EnergyJ        float64 `json:"energy_j"`
	TableKey       string  `json:"table_key,omitempty"`

	// Online-policy solve accounting (protemp-online only; zero
	// otherwise): per-window convex-solve count, warm-start outcomes
	// and solve-latency quantiles in nanoseconds — the serving-latency
	// view of the run.
	StepSolves      uint64 `json:"step_solves,omitempty"`
	StepWarmHits    uint64 `json:"step_warm_hits,omitempty"`
	StepWarmRejects uint64 `json:"step_warm_rejects,omitempty"`
	StepSolveP50Ns  uint64 `json:"step_solve_p50_ns,omitempty"`
	StepSolveP95Ns  uint64 `json:"step_solve_p95_ns,omitempty"`
	StepSolveP99Ns  uint64 `json:"step_solve_p99_ns,omitempty"`

	// Distributed-MPC accounting (protemp-dmpc only; zero otherwise).
	// StepSolves above counts cluster subproblem solves for this kind;
	// the fields here carry the consensus-layer view: partition size,
	// total ADMM outer iterations, windows that walked the fallback
	// ladder, and the worst boundary disagreement seen (°C).
	DMPCClusters   int     `json:"dmpc_clusters,omitempty"`
	DMPCOuterIters uint64  `json:"dmpc_outer_iters,omitempty"`
	DMPCFallbacks  uint64  `json:"dmpc_fallbacks,omitempty"`
	DMPCMaxPrimalC float64 `json:"dmpc_max_primal_c,omitempty"`

	// Imperfect-sensing accounting (sensed runs only; zero otherwise):
	// injected-defect counters, the observer used, its estimate-vs-truth
	// RMS error and innovation-magnitude quantiles in °C.
	SenseWindows  uint64  `json:"sense_windows,omitempty"`
	SenseDropouts uint64  `json:"sense_dropouts,omitempty"`
	SenseStuck    uint64  `json:"sense_stuck_sensors,omitempty"`
	SenseDegraded uint64  `json:"sense_degraded_windows,omitempty"`
	Estimator     string  `json:"estimator,omitempty"`
	EstimateRMSC  float64 `json:"estimate_rms_c,omitempty"`
	InnovP50C     float64 `json:"innov_p50_c,omitempty"`
	InnovP95C     float64 `json:"innov_p95_c,omitempty"`
	InnovP99C     float64 `json:"innov_p99_c,omitempty"`

	// SlowestTrace is the slowest window's full solve trace of an
	// online or dmpc run — captured automatically by a small per-cell
	// flight recorder so a batch's worst latency cell comes with its
	// anatomy attached. JSON results only; the CSV report ignores it.
	SlowestTrace *obs.Trace `json:"slowest_trace,omitempty"`
}

// RunResult is one run's outcome: a summary, an error, or a skip mark
// for runs never started because the batch was cancelled first.
type RunResult struct {
	Scenario string   `json:"scenario"`
	Policy   string   `json:"policy"`
	Seed     int64    `json:"seed"`
	Error    string   `json:"error,omitempty"`
	Skipped  bool     `json:"skipped,omitempty"`
	Summary  *Summary `json:"summary,omitempty"`
}

// BatchResult aggregates a batch. Runs holds one entry per expanded
// cell in deterministic (scenario-major) input order regardless of
// completion order.
type BatchResult struct {
	Runs      []RunResult `json:"runs"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Skipped   int         `json:"skipped"`
	ElapsedS  float64     `json:"elapsed_s"`
}

// Runner executes batches against one shared engine. Its progress
// instruments live in the provided metrics registry (a private one
// when nil), so a serving layer creating one Runner surfaces
// fleet_runs_inflight and the run counters on its /metrics endpoint.
type Runner struct {
	eng       Engine
	scenarios *Registry

	batches   *metrics.Counter
	started   *metrics.Counter
	completed *metrics.Counter
	failed    *metrics.Counter
	inflight  *metrics.Gauge

	// Imperfect-sensing aggregates across all sensed runs: injected
	// dropouts, latched stuck-at faults, fully blind windows, and the
	// per-window estimator innovation ∞-norm in milli-°C — the fleet's
	// sensor-health view on a server's /metrics endpoint.
	senseDropouts *metrics.Counter
	senseStuck    *metrics.Counter
	senseDegraded *metrics.Counter
	senseInnov    *metrics.Histogram
}

// NewRunner builds a Runner. scenarios nil selects the builtin
// registry; reg nil keeps the progress instruments private.
func NewRunner(eng Engine, scenarios *Registry, reg *metrics.Registry) *Runner {
	if scenarios == nil {
		scenarios = Builtin()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Runner{
		eng:           eng,
		scenarios:     scenarios,
		batches:       reg.Counter("fleet_batches"),
		started:       reg.Counter("fleet_runs_started"),
		completed:     reg.Counter("fleet_runs_completed"),
		failed:        reg.Counter("fleet_runs_failed"),
		inflight:      reg.Gauge("fleet_runs_inflight"),
		senseDropouts: reg.Counter("fleet_sense_dropouts"),
		senseStuck:    reg.Counter("fleet_sense_stuck_sensors"),
		senseDegraded: reg.Counter("fleet_sense_degraded_windows"),
		senseInnov:    reg.Histogram("fleet_sense_innov_milli_c"),
	}
}

// Scenarios returns the runner's scenario registry.
func (r *Runner) Scenarios() *Registry { return r.scenarios }

// Plan validates the spec and expands it into the run list the batch
// would execute, scenario-major: for each scenario, each policy, each
// seed. Servers use it to reject bad specs (and bound run counts)
// before committing a job id.
func (r *Runner) Plan(spec BatchSpec) ([]Run, error) {
	if len(spec.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet: no scenarios")
	}
	if len(spec.Policies) == 0 {
		return nil, fmt.Errorf("fleet: no policies")
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("fleet: negative worker count %d", spec.Workers)
	}
	if spec.RunTimeout < 0 {
		return nil, fmt.Errorf("fleet: negative run timeout %v", spec.RunTimeout)
	}
	// Negated comparisons so NaN is rejected too: a NaN horizon slides
	// past every generator bound and yields empty "completed" runs.
	if !(spec.Horizon >= 0) || math.IsInf(spec.Horizon, 0) {
		return nil, fmt.Errorf("fleet: invalid horizon %g", spec.Horizon)
	}
	if !(spec.MaxSimTime >= 0) || math.IsInf(spec.MaxSimTime, 0) {
		return nil, fmt.Errorf("fleet: invalid sim-time cap %g", spec.MaxSimTime)
	}
	seen := make(map[string]bool, len(spec.Scenarios))
	for _, name := range spec.Scenarios {
		if _, ok := r.scenarios.Get(name); !ok {
			return nil, fmt.Errorf("fleet: unknown scenario %q (have %v)", name, r.scenarios.Names())
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate scenario %q", name)
		}
		seen[name] = true
	}
	// Duplicate policies or seeds would run identical cells twice and
	// let one policy occupy several leaderboard ranks of its own group,
	// so they are errors just like duplicate scenarios.
	seenPolicy := make(map[string]bool, len(spec.Policies))
	for _, p := range spec.Policies {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		label := p.Label()
		if seenPolicy[label] {
			return nil, fmt.Errorf("fleet: duplicate policy %q", label)
		}
		seenPolicy[label] = true
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	seenSeed := make(map[int64]bool, len(seeds))
	for _, seed := range seeds {
		if seenSeed[seed] {
			return nil, fmt.Errorf("fleet: duplicate seed %d", seed)
		}
		seenSeed[seed] = true
	}
	runs := make([]Run, 0, len(spec.Scenarios)*len(spec.Policies)*len(seeds))
	for _, name := range spec.Scenarios {
		for _, p := range spec.Policies {
			for _, seed := range seeds {
				runs = append(runs, Run{Scenario: name, Policy: p, Seed: seed})
			}
		}
	}
	return runs, nil
}

// Run executes the batch: every (scenario, policy, seed) cell is
// simulated on the shared engine, fanned across a bounded worker pool.
// Cancelling ctx stops dispatch, aborts in-flight runs at their next
// DFS window (and table generations at their next Newton iteration),
// and returns the partial BatchResult accumulated so far together with
// ctx.Err() — completed cells keep their summaries, undispatched cells
// are marked Skipped.
func (r *Runner) Run(ctx context.Context, spec BatchSpec) (*BatchResult, error) {
	return r.RunWithProgress(ctx, spec, nil)
}

// RunWithProgress is Run with a progress callback invoked (serialized)
// after every finished cell.
func (r *Runner) RunWithProgress(ctx context.Context, spec BatchSpec, progress func(done, failed, total int)) (*BatchResult, error) {
	runs, err := r.Plan(spec)
	if err != nil {
		return nil, err
	}
	r.batches.Inc()
	start := time.Now()

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}

	res := &BatchResult{Runs: make([]RunResult, len(runs))}
	var (
		mu   sync.Mutex // guards res tallies and the progress callback
		wg   sync.WaitGroup
		idx  = make(chan int)
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rr := r.runOne(ctx, spec, runs[i])
				mu.Lock()
				res.Runs[i] = rr
				done++
				switch {
				case rr.Error != "":
					res.Failed++
				case rr.Skipped:
					res.Skipped++
				default:
					res.Completed++
				}
				if progress != nil {
					progress(done, res.Failed, len(runs))
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range runs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	// Cells never handed to a worker keep zero values; mark them.
	for i := range res.Runs {
		if res.Runs[i].Scenario == "" {
			res.Runs[i] = RunResult{
				Scenario: runs[i].Scenario,
				Policy:   runs[i].Policy.Label(),
				Seed:     runs[i].Seed,
				Skipped:  true,
			}
			res.Skipped++
		}
	}
	res.ElapsedS = time.Since(start).Seconds()
	return res, ctx.Err()
}

// runOne executes a single cell under the per-run timeout.
func (r *Runner) runOne(ctx context.Context, spec BatchSpec, run Run) RunResult {
	rr := RunResult{Scenario: run.Scenario, Policy: run.Policy.Label(), Seed: run.Seed}
	if err := ctx.Err(); err != nil {
		rr.Skipped = true
		return rr
	}
	if spec.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.RunTimeout)
		defer cancel()
	}
	r.started.Inc()
	r.inflight.Inc()
	defer r.inflight.Dec()

	summary, err := r.simulate(ctx, spec, run)
	if err != nil {
		rr.Error = err.Error()
		r.failed.Inc()
		return rr
	}
	rr.Summary = summary
	r.completed.Inc()
	return rr
}

// simulate builds the cell's trace and policy and drives the
// closed-loop simulation.
func (r *Runner) simulate(ctx context.Context, spec BatchSpec, run Run) (*Summary, error) {
	sc, ok := r.scenarios.Get(run.Scenario)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown scenario %q", run.Scenario) // registry mutated after Plan
	}
	tmax := sc.TMaxC
	if tmax <= 0 {
		tmax = r.eng.TMax()
	}
	trace, err := sc.trace(run.Seed, r.eng.Chip().NumCores(), spec.Horizon)
	if err != nil {
		return nil, err
	}
	policy, tableKey, err := r.buildPolicy(ctx, run.Policy, tmax)
	if err != nil {
		return nil, err
	}
	counted := &switchCounter{inner: policy}
	simRes, err := sim.Run(ctx, sim.Config{
		Chip:    r.eng.Chip(),
		Disc:    r.eng.Disc(),
		Policy:  counted,
		Trace:   trace,
		Window:  r.eng.WindowSeconds(),
		TMax:    tmax,
		T0:      sc.T0C,
		MaxTime: spec.MaxSimTime,
		Sensing: cellSensing(sc, run),
	})
	if err != nil {
		return nil, err
	}

	s := &Summary{
		SimTimeS:      simRes.SimTime,
		Tasks:         len(trace.Tasks),
		Completed:     simRes.Completed,
		Unfinished:    simRes.Unfinished,
		WaitMeanS:     simRes.Wait.Mean(),
		WaitP50S:      simRes.Wait.Percentile(50),
		WaitP95S:      simRes.Wait.Percentile(95),
		WaitP99S:      simRes.Wait.Percentile(99),
		WaitMaxS:      simRes.Wait.Max(),
		PeakTempC:     simRes.MaxCoreTemp,
		TMaxC:         tmax,
		ViolationFrac: simRes.ViolationFrac,
		FreqSwitches:  counted.switches,
		EnergyJ:       simRes.EnergyJ,
		TableKey:      tableKey,
	}
	if simRes.SimTime > 0 {
		s.ThroughputTPS = float64(simRes.Completed) / simRes.SimTime
	}
	// ViolationFrac is violation core-time over total core-time;
	// multiplying back by cores × sim-time recovers the absolute
	// violation duration in core-seconds.
	s.ViolationCoreS = simRes.ViolationFrac * simRes.SimTime * float64(r.eng.Chip().NumCores())
	if po, ok := policy.(*sim.ProTempOnline); ok {
		s.StepSolves = uint64(po.Solves)
		s.StepWarmHits = uint64(po.WarmHits)
		s.StepWarmRejects = uint64(po.WarmRejects)
		if po.SolveNanos != nil {
			s.StepSolveP50Ns = po.SolveNanos.Quantile(50)
			s.StepSolveP95Ns = po.SolveNanos.Quantile(95)
			s.StepSolveP99Ns = po.SolveNanos.Quantile(99)
		}
		s.SlowestTrace = po.Flight.Slowest()
	}
	if pd, ok := policy.(*sim.ProTempDMPC); ok {
		s.StepSolves = uint64(pd.Solves)
		s.StepWarmHits = uint64(pd.WarmHits)
		s.StepWarmRejects = uint64(pd.WarmRejects)
		s.DMPCClusters = pd.Solver.Clusters()
		s.DMPCOuterIters = uint64(pd.OuterIters)
		s.DMPCFallbacks = uint64(pd.Fallbacks)
		s.DMPCMaxPrimalC = pd.MaxPrimalResidC
		if pd.SolveNanos != nil {
			s.StepSolveP50Ns = pd.SolveNanos.Quantile(50)
			s.StepSolveP95Ns = pd.SolveNanos.Quantile(95)
			s.StepSolveP99Ns = pd.SolveNanos.Quantile(99)
		}
		s.SlowestTrace = pd.Flight.Slowest()
	}
	if sr := simRes.Sense; sr != nil {
		s.SenseWindows = sr.Windows
		s.SenseDropouts = sr.Dropouts
		s.SenseStuck = sr.StuckSensors
		s.SenseDegraded = sr.DegradedWindows
		s.Estimator = sr.Estimator
		s.EstimateRMSC = sr.EstimateRMSC
		if h := sr.Innovation; h != nil && h.Count() > 0 {
			s.InnovP50C = float64(h.Quantile(50)) / 1000
			s.InnovP95C = float64(h.Quantile(95)) / 1000
			s.InnovP99C = float64(h.Quantile(99)) / 1000
			r.senseInnov.Merge(h)
		}
		r.senseDropouts.Add(sr.Dropouts)
		r.senseStuck.Add(sr.StuckSensors)
		r.senseDegraded.Add(sr.DegradedWindows)
	}
	return s, nil
}

// cellSensing resolves one cell's measurement path: the scenario
// supplies the fault environment, the policy its observer, the cell's
// workload seed the defect sequence. A perfect-sensing scenario with a
// raw policy bypasses the sensed path entirely.
func cellSensing(sc Scenario, run Run) *sim.Sensing {
	est := run.Policy.Estimator
	if sc.Sensing == nil && (est == "" || est == "none") {
		return nil
	}
	sn := &sim.Sensing{}
	if sc.Sensing != nil {
		*sn = *sc.Sensing
	}
	sn.Seed = run.Seed
	if est != "" {
		sn.Estimator = est
	}
	return sn
}

// buildPolicy instantiates the control policy for one run. Pro-Temp
// goes through the engine's cached table generation: concurrent runs
// needing one table spec share a single Phase-1 sweep.
func (r *Runner) buildPolicy(ctx context.Context, p PolicySpec, tmax float64) (sim.Policy, string, error) {
	chip := r.eng.Chip()
	switch p.Kind {
	case "no-tc":
		return &sim.NoTC{NumCores: chip.NumCores(), FMax: chip.FMax()}, "", nil
	case "basic-dfs":
		threshold := p.ThresholdC
		if threshold == 0 {
			threshold = tmax - 10 // the paper's 90-against-100 margin
		}
		if !(threshold > 0) || threshold > tmax { // negated form rejects NaN too
			return nil, "", fmt.Errorf("fleet: basic-dfs threshold %g outside (0, %g]", threshold, tmax)
		}
		return &sim.BasicDFS{NumCores: chip.NumCores(), FMax: chip.FMax(), Threshold: threshold}, "", nil
	case "protemp-online":
		v, err := core.ParseVariant(p.Variant, r.eng.Variant())
		if err != nil {
			return nil, "", err
		}
		// No Phase-1 table: the policy compiles its problem once on
		// first Decide and warm-starts every window's solve from the
		// previous optimum; the histogram feeds the Summary's latency
		// quantiles.
		// The one-deep flight recorder keeps exactly the slowest
		// window's trace for the Summary.
		return &sim.ProTempOnline{
			Chip:       chip,
			Window:     r.eng.Window(),
			TMax:       tmax,
			Variant:    v,
			SolveNanos: &metrics.Histogram{},
			Flight:     obs.NewFlightRecorder(1, 1),
		}, "", nil
	case "protemp-dmpc":
		v, err := core.ParseVariant(p.Variant, r.eng.Variant())
		if err != nil {
			return nil, "", err
		}
		// No Phase-1 table either: the engine partitions its chip into
		// clusters, each with its own warm-startable subproblem, and the
		// windows run ADMM boundary consensus across them.
		pd, err := r.eng.DMPCPolicy(p.Clusters, v, tmax)
		if err != nil {
			return nil, "", err
		}
		if pd.SolveNanos == nil {
			pd.SolveNanos = &metrics.Histogram{}
		}
		pd.Flight = obs.NewFlightRecorder(1, 1)
		return pd, "", nil
	case "protemp":
		v, err := core.ParseVariant(p.Variant, r.eng.Variant())
		if err != nil {
			return nil, "", err
		}
		table, err := r.eng.GenerateTableOverride(ctx, nil, nil, v, tmax)
		if err != nil {
			return nil, "", err
		}
		ctrl, err := core.NewController(table)
		if err != nil {
			return nil, "", err
		}
		return &sim.ProTemp{Controller: ctrl}, r.eng.TableKeyOverride(nil, nil, v, tmax), nil
	default:
		return nil, "", fmt.Errorf("fleet: unknown policy kind %q", p.Kind)
	}
}

// switchCounter wraps a policy and counts per-core frequency command
// changes between consecutive windows — the DVFS actuation cost a
// hardware platform pays in PLL relocks and voltage ramps.
type switchCounter struct {
	inner    sim.Policy
	prev     linalg.Vector
	switches uint64
}

// Name implements sim.Policy.
func (p *switchCounter) Name() string { return p.inner.Name() }

// Decide implements sim.Policy.
func (p *switchCounter) Decide(st sim.WindowState) linalg.Vector {
	out := p.inner.Decide(st)
	if p.prev != nil && len(p.prev) == len(out) {
		for i := range out {
			if out[i] != p.prev[i] {
				p.switches++
			}
		}
	}
	p.prev = append(p.prev[:0], out...)
	return out
}
