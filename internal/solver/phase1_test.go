package solver

import (
	"math"
	"testing"

	"protemp/internal/linalg"
)

func TestPhaseIFindsInterior(t *testing.T) {
	// Feasible set: 1 <= x <= 3 per coordinate, start far outside.
	n := 3
	p := &Problem{Objective: &Affine{A: linalg.Constant(n, 1)}}
	for j := 0; j < n; j++ {
		lo := linalg.NewVector(n)
		lo[j] = -1
		hi := linalg.NewVector(n)
		hi[j] = 1
		p.Constraints = append(p.Constraints,
			&Affine{A: lo, B: 1},
			&Affine{A: hi, B: -3},
		)
	}
	x, err := PhaseI(p, linalg.Constant(n, -10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsStrictlyFeasible(x) {
		t.Fatalf("PhaseI point %v not strictly feasible", x)
	}
}

func TestPhaseIReturnsStartIfFeasible(t *testing.T) {
	p := boxProblem(t, linalg.VectorOf(0.5, 0.5))
	start := linalg.VectorOf(0.25, 0.75)
	x, err := PhaseI(p, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(start, 0) {
		t.Fatalf("PhaseI moved an already-feasible start: %v", x)
	}
}

func TestPhaseIQuadraticConstraints(t *testing.T) {
	// Feasible set: x² + y² <= 1 (split into two diag quadratics is not
	// needed — one works), plus x >= 0.3 making the naive origin start
	// infeasible.
	ball, err := NewDiagQuadratic(linalg.VectorOf(1, 1), linalg.NewVector(2), -1)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Objective: &Affine{A: linalg.VectorOf(0, 1)},
		Constraints: []Func{
			ball,
			&Affine{A: linalg.VectorOf(-1, 0), B: 0.3},
		},
	}
	x, err := PhaseI(p, linalg.VectorOf(-5, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsStrictlyFeasible(x) {
		t.Fatalf("point %v infeasible", x)
	}
}

func TestSolveEndToEndFromInfeasibleStart(t *testing.T) {
	c := linalg.VectorOf(0.2, 0.9)
	p := boxProblem(t, c)
	res, err := Solve(p, linalg.VectorOf(-7, 12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(c, 1e-5) {
		t.Fatalf("X = %v, want %v", res.X, c)
	}
}

func TestSolveNoConstraints(t *testing.T) {
	obj, _ := NewDiagQuadratic(linalg.VectorOf(1), linalg.VectorOf(-4), 0)
	p := &Problem{Objective: obj}
	res, err := Solve(p, linalg.VectorOf(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Fatalf("X = %v, want 2", res.X)
	}
}

func TestPhaseIDimensionMismatch(t *testing.T) {
	p := boxProblem(t, linalg.VectorOf(0.5))
	if _, err := PhaseI(p, linalg.VectorOf(1, 2), Options{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestPhaseINoConstraints(t *testing.T) {
	p := &Problem{Objective: &Affine{A: linalg.VectorOf(1)}}
	x, err := PhaseI(p, linalg.VectorOf(42), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 42 {
		t.Fatalf("x = %v", x)
	}
}

// Near-infeasible: the box [0.499, 0.501] is tiny but nonempty; Phase I
// must still find it from far away.
func TestPhaseITightBox(t *testing.T) {
	n := 2
	p := &Problem{Objective: &Affine{A: linalg.Constant(n, 1)}}
	for j := 0; j < n; j++ {
		lo := linalg.NewVector(n)
		lo[j] = -1
		hi := linalg.NewVector(n)
		hi[j] = 1
		p.Constraints = append(p.Constraints,
			&Affine{A: lo, B: 0.499},
			&Affine{A: hi, B: -0.501},
		)
	}
	x, err := PhaseI(p, linalg.Constant(n, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsStrictlyFeasible(x) {
		t.Fatalf("point %v infeasible", x)
	}
}
