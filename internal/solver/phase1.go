package solver

import (
	"fmt"

	"protemp/internal/linalg"
)

// PhaseI finds a strictly feasible point of p's constraint set, or
// returns ErrInfeasible. It solves the standard auxiliary program
//
//	minimize    s
//	subject to  fi(x) − s <= 0
//
// over (x, s), starting from any x0 (the fi must be defined everywhere,
// which holds for the affine/quadratic constraints used here), and
// stops as soon as an iterate has s < −margin. The constraint set
// should bound x for bounded s (Pro-Temp's frequency box constraints
// do), otherwise the auxiliary problem may wander.
func PhaseI(p *Problem, x0 linalg.Vector, opts Options) (linalg.Vector, error) {
	return PhaseIWS(p, x0, opts, nil)
}

// PhaseIWS is PhaseI with a caller-owned Workspace. The auxiliary
// problem has one extra slack dimension, so the workspace is resized on
// entry; a sweep that rarely needs Phase I still amortizes everything
// else.
func PhaseIWS(p *Problem, x0 linalg.Vector, opts Options, ws *Workspace) (linalg.Vector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Dim()
	if len(x0) != n {
		return nil, fmt.Errorf("solver: start has dim %d, want %d", len(x0), n)
	}
	if len(p.Constraints) == 0 {
		return x0.Clone(), nil
	}
	if p.IsStrictlyFeasible(x0) {
		return x0.Clone(), nil
	}

	// Build the augmented problem over (x, s).
	aug := &Problem{
		Objective:   &Affine{A: unitVector(n+1, n)},
		Constraints: make([]Func, len(p.Constraints)),
	}
	for i, c := range p.Constraints {
		aug.Constraints[i] = &slackShifted{inner: c, scratch: linalg.NewMatrix(n, n)}
	}

	// Strictly feasible start for the augmented problem.
	viol := p.MaxViolation(x0)
	z0 := make(linalg.Vector, n+1)
	copy(z0, x0)
	z0[n] = viol + 1 + 0.1*abs(viol)

	margin := opts.Tol
	if margin <= 0 {
		margin = 1e-9
	}
	o := opts
	o.StopEarly = func(z linalg.Vector) bool { return z[len(z)-1] < -margin }

	res, err := BarrierWS(aug, z0, o, ws)
	if err != nil {
		return nil, fmt.Errorf("solver: phase I: %w", err)
	}
	x := res.X[:n].Clone()
	if res.X[n] >= 0 || !p.IsStrictlyFeasible(x) {
		return nil, fmt.Errorf("%w: phase I optimum s = %v", ErrInfeasible, res.X[n])
	}
	return x, nil
}

// Solve runs PhaseI if needed, then Barrier.
func Solve(p *Problem, x0 linalg.Vector, opts Options) (*Result, error) {
	return SolveWS(p, x0, opts, nil)
}

// SolveWS is Solve with a caller-owned Workspace threaded through both
// the Phase-I detour and the main barrier solve.
func SolveWS(p *Problem, x0 linalg.Vector, opts Options, ws *Workspace) (*Result, error) {
	start := x0
	if !p.IsStrictlyFeasible(x0) {
		feasible, err := PhaseIWS(p, x0, opts, ws)
		if err != nil {
			return nil, err
		}
		start = feasible
	}
	return BarrierWS(p, start, opts, ws)
}

// slackShifted wraps f(x) as g(x, s) = f(x) − s for Phase I.
type slackShifted struct {
	inner   Func
	scratch *linalg.Matrix
}

func (f *slackShifted) Dim() int { return f.inner.Dim() + 1 }

func (f *slackShifted) Value(z linalg.Vector) float64 {
	n := f.inner.Dim()
	return f.inner.Value(z[:n]) - z[n]
}

func (f *slackShifted) Gradient(g, z linalg.Vector) {
	n := f.inner.Dim()
	f.inner.Gradient(g[:n], z[:n])
	g[n] = -1
}

func (f *slackShifted) AddHessian(h *linalg.Matrix, w float64, z linalg.Vector) {
	n := f.inner.Dim()
	for i := 0; i < n; i++ {
		row := f.scratch.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	f.inner.AddHessian(f.scratch, w, z[:n])
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := f.scratch.At(i, j); v != 0 {
				h.AddAt(i, j, v)
			}
		}
	}
}

func unitVector(n, i int) linalg.Vector {
	v := linalg.NewVector(n)
	v[i] = 1
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
