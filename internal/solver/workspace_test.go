package solver

import (
	"errors"
	"math"
	"testing"

	"protemp/internal/linalg"
)

// wsBoxProblem is a small LP over the unit box with known optimum:
// minimize cᵀx subject to 0 <= x <= 1, solved at the vertex selected
// by the signs of c.
func wsBoxProblem(t *testing.T, c linalg.Vector) *Problem {
	t.Helper()
	n := len(c)
	p := &Problem{Objective: &Affine{A: c}}
	for j := 0; j < n; j++ {
		lo := linalg.NewVector(n)
		lo[j] = -1
		hi := linalg.NewVector(n)
		hi[j] = 1
		p.Constraints = append(p.Constraints,
			NewSparseAffine(lo, 0),
			NewSparseAffine(hi, -1),
		)
	}
	return p
}

func wsBoxOptimum(c linalg.Vector) linalg.Vector {
	x := linalg.NewVector(len(c))
	for j, cj := range c {
		if cj < 0 {
			x[j] = 1
		}
	}
	return x
}

// TestWorkspaceReuseMatchesFresh solves a family of problems twice —
// once with a single shared workspace, once allocating per solve — and
// requires bitwise-equal trajectories: the workspace is pure scratch
// and must never leak state between solves.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	costs := []linalg.Vector{
		linalg.VectorOf(1, -2, 3),
		linalg.VectorOf(-1, -1, -1),
		linalg.VectorOf(2, 0.5, -0.25),
	}
	ws := NewWorkspace(3)
	for _, c := range costs {
		p := wsBoxProblem(t, c)
		x0 := linalg.Constant(3, 0.5)
		shared, err := BarrierWS(p, x0, Options{}, ws)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Barrier(p, x0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !shared.X.Equal(fresh.X, 0) {
			t.Errorf("c=%v: shared-workspace X %v != fresh X %v", c, shared.X, fresh.X)
		}
		if shared.NewtonIters != fresh.NewtonIters {
			t.Errorf("c=%v: shared %d iters, fresh %d", c, shared.NewtonIters, fresh.NewtonIters)
		}
		if !shared.X.Equal(wsBoxOptimum(c), 1e-5) {
			t.Errorf("c=%v: optimum %v, want %v", c, shared.X, wsBoxOptimum(c))
		}
	}
}

// TestWorkspaceResizes runs problems of different dimensions through
// one workspace — the Phase-I slack dimension in miniature.
func TestWorkspaceResizes(t *testing.T) {
	ws := NewWorkspace(2)
	for _, n := range []int{2, 4, 2, 3} {
		c := linalg.Constant(n, 1)
		res, err := BarrierWS(wsBoxProblem(t, c), linalg.Constant(n, 0.5), Options{}, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !res.X.Equal(linalg.NewVector(n), 1e-5) {
			t.Errorf("n=%d: X = %v, want origin", n, res.X)
		}
	}
}

// TestWarmStartFromNeighborOptimum replays the sweep pattern: solve one
// problem cold, shift the objective slightly, and warm-start the
// neighbor from the previous optimum. The warm solve must reach the
// same optimum as a cold solve of the shifted problem, in fewer
// iterations given an honest gap estimate.
func TestWarmStartFromNeighborOptimum(t *testing.T) {
	p1 := wsBoxProblem(t, linalg.VectorOf(1, 1, -1))
	ws := NewWorkspace(3)
	res1, err := BarrierWS(p1, linalg.Constant(3, 0.5), Options{}, ws)
	if err != nil {
		t.Fatal(err)
	}

	p2 := wsBoxProblem(t, linalg.VectorOf(1.05, 0.95, -1.02))
	cold, err := Barrier(p2, linalg.Constant(3, 0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The previous optimum sits on the boundary, so re-centering must
	// blend toward the supplied interior anchor.
	anchor := linalg.Constant(3, 0.5)
	gapEst := math.Abs(p2.Objective.Value(res1.X)-p2.Objective.Value(cold.X)) + 1e-6
	warm, err := WarmStart(p2, res1.X, anchor, gapEst, Options{}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.X.Equal(cold.X, 1e-4) {
		t.Errorf("warm optimum %v != cold optimum %v", warm.X, cold.X)
	}
	if warm.NewtonIters >= cold.NewtonIters {
		t.Errorf("warm start took %d iters, cold %d — no saving", warm.NewtonIters, cold.NewtonIters)
	}
}

// TestWarmStartRejectsHopelessSeed: a seed outside the feasible set
// with no anchor must return ErrWarmStart (fall back cold), not solve
// or fail numerically.
func TestWarmStartRejectsHopelessSeed(t *testing.T) {
	p := wsBoxProblem(t, linalg.VectorOf(1, 1))
	_, err := WarmStart(p, linalg.VectorOf(5, 5), nil, 1, Options{}, nil)
	if !errors.Is(err, ErrWarmStart) {
		t.Fatalf("err = %v, want ErrWarmStart", err)
	}
	// With an interior anchor the same seed re-centers and solves.
	res, err := WarmStart(p, linalg.VectorOf(5, 5), linalg.Constant(2, 0.5), 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(linalg.NewVector(2), 1e-4) {
		t.Errorf("X = %v, want origin", res.X)
	}
}

// TestOptionsValidation pins the loud-rejection contract: zero always
// selects defaults, legitimate unusual tunings are kept verbatim, and
// nonsensical ones error out of Barrier instead of being silently
// replaced.
func TestOptionsValidation(t *testing.T) {
	p := wsBoxProblem(t, linalg.VectorOf(1, 1))
	x0 := linalg.Constant(2, 0.5)

	// A barely-above-one Mu is slow but legitimate: it must be honored,
	// which shows up as far more outer iterations than the default 20.
	slow, err := Barrier(p, x0, Options{Mu: 1.5, MaxOuter: 200})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Barrier(p, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.OuterIters <= def.OuterIters {
		t.Errorf("Mu=1.5 ran %d outer iters, default %d — custom Mu was not honored",
			slow.OuterIters, def.OuterIters)
	}

	bad := []Options{
		{Mu: 1},
		{Mu: 0.5},
		{Mu: math.NaN()},
		{Tol: -1},
		{Tol: math.Inf(1)},
		{NewtonTol: -1},
		{MaxNewton: -1},
		{MaxOuter: -1},
		{Alpha: 0.7},
		{Alpha: -0.1},
		{Beta: 1.5},
		{T0: -2},
		{T0: math.NaN()},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Options %+v passed Validate", o)
		}
		if _, err := Barrier(p, x0, o); err == nil {
			t.Errorf("Barrier accepted invalid Options %+v", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
	if err := (Options{Mu: 1.0001}).Validate(); err != nil {
		t.Errorf("legitimate Mu=1.0001 rejected: %v", err)
	}
}
