package solver

import (
	"fmt"
	"math"
)

// BisectMax finds (to absolute tolerance tol) the largest v in [lo, hi]
// for which feasible(v) holds, assuming feasibility is monotone
// downward: feasible(v) implies feasible(u) for every u in [lo, v].
//
// It returns ok=false when even lo is infeasible. The uniform-frequency
// variant of Pro-Temp is exactly this problem — "the highest common
// frequency whose thermal trajectory stays below tmax" — and serves as
// an independent cross-check of the barrier solver.
func BisectMax(lo, hi, tol float64, feasible func(float64) bool) (float64, bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return 0, false
	}
	if tol <= 0 {
		tol = 1e-12 * (1 + math.Abs(hi))
	}
	if !feasible(lo) {
		return 0, false
	}
	if feasible(hi) {
		return hi, true
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// BisectRoot finds a root of the continuous monotone function f on
// [lo, hi] to tolerance tol. f(lo) and f(hi) must bracket zero.
func BisectRoot(lo, hi, tol float64, f func(float64) float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("solver: root not bracketed: f(%v)=%v, f(%v)=%v", lo, flo, hi, fhi)
	}
	if tol <= 0 {
		tol = 1e-12 * (1 + math.Abs(hi))
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}
