package solver

import (
	"errors"
	"fmt"

	"protemp/internal/linalg"
)

// ErrWarmStart is returned by WarmStart when the supplied previous
// optimum (and anchor blend) cannot be re-centered into strict
// feasibility. It signals "fall back to the cold start ladder", not
// infeasibility of the problem itself.
var ErrWarmStart = errors.New("solver: warm start is not strictly feasible")

// warmMargin is the strict-feasibility margin a warm-start point must
// clear: a point closer to the boundary than this makes the first
// centering's line search crawl, defeating the purpose of warm
// starting.
const warmMargin = 1e-9

// WarmStart minimizes the problem seeded from xPrev, a (near-)optimum
// of a neighboring problem instance — the Phase-1 sweep's previous grid
// point, a re-solve after a small parameter change. Because such points
// sit on or near the active constraint boundary, WarmStart first
// re-centers: it uses xPrev directly when strictly feasible with
// margin, otherwise it blends toward anchor (a strictly feasible
// interior point supplied by the caller; nil disables blending) until a
// blend clears the margin.
//
// gapEst is the caller's upper bound on the seed's suboptimality
// f0(xPrev) − p*, in objective units. The barrier then starts at
// t0 = m/gapEst — the textbook warm-start weight (Boyd & Vandenberghe
// §11.3.1): the first centering costs about one ordinary outer stage
// while every stage the cold solve would spend closing the gap from
// m/T0 down to gapEst is skipped outright. A non-positive gapEst
// disables the elevation and only the re-centering and start-ladder
// shortcut remain.
//
// A seed that cannot be re-centered returns ErrWarmStart; the caller
// falls back to its cold-start path. Results are interchangeable with
// Barrier's — same optimum within the duality-gap tolerance — only the
// iteration count changes.
func WarmStart(p *Problem, xPrev, anchor linalg.Vector, gapEst float64, opts Options, ws *Workspace) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := p.Dim()
	if len(xPrev) != n {
		return nil, fmt.Errorf("solver: warm start has dim %d, want %d", len(xPrev), n)
	}
	if anchor != nil && len(anchor) != n {
		return nil, fmt.Errorf("solver: warm anchor has dim %d, want %d", len(anchor), n)
	}

	// The blend point draws on the workspace when one is supplied, so a
	// hot loop re-solving every control window warm-starts without
	// allocating; BarrierWS clones its start before using any buffer.
	var blend linalg.Vector
	if ws != nil {
		ws.ensure(n)
		blend = ws.warm
	}
	start := recenter(p, xPrev, anchor, blend)
	if start == nil {
		return nil, fmt.Errorf("%w (max violation %v)", ErrWarmStart, p.MaxViolation(xPrev))
	}

	o := opts.withDefaults()
	if m := len(p.Constraints); m > 0 && gapEst > 0 {
		t0 := float64(m) / gapEst
		// Never start past the final weight (at least one centering must
		// run at a weight that certifies the target gap), and never
		// below the cold start.
		if tFinal := float64(m) / o.Tol; t0 > tFinal {
			t0 = tFinal
		}
		if t0 > o.T0 {
			o.T0 = t0
		}
	}
	return BarrierWS(p, start, o, ws)
}

// recenter returns a strictly feasible (with margin) point on the
// segment from anchor to xPrev, as close to xPrev as the margin allows,
// or nil when no blend qualifies. theta = 1 is xPrev itself. A non-nil
// scratch vector (same length as xPrev) is used for the blend point;
// nil allocates.
func recenter(p *Problem, xPrev, anchor, blend linalg.Vector) linalg.Vector {
	if p.MaxViolation(xPrev) < -warmMargin {
		return xPrev
	}
	if anchor == nil {
		return nil
	}
	if blend == nil {
		blend = linalg.NewVector(len(xPrev))
	}
	for _, theta := range []float64{0.995, 0.95, 0.8, 0.5, 0.2, 0} {
		for i := range blend {
			blend[i] = anchor[i] + theta*(xPrev[i]-anchor[i])
		}
		if p.MaxViolation(blend) < -warmMargin {
			return blend
		}
	}
	return nil
}
