package solver

import "protemp/internal/linalg"

// Workspace holds every scratch buffer a barrier solve needs: the
// gradient, per-constraint gradient, Newton direction, line search
// trial point, right-hand side, and the backend state — dense Hessian,
// regularized copy and Cholesky factor for the dense path, or the
// ArrowKKT and block-elimination factor for the structured path. A
// sweep that solves thousands of same-shaped problems allocates one
// Workspace per worker and threads it through BarrierWS/WarmStart,
// turning the per-Newton-iteration clone+factor of the naive path into
// in-place work on caller-owned memory.
//
// The dense Hessian buffers are allocated lazily on first dense
// assembly, so a solve that stays on the structured path never pays
// for the (dim)² dense storage. A Workspace is resized on demand, so
// one instance can serve problems of different dimensions (a Phase-I
// detour adds a slack variable); resizing reallocates, matching stays
// allocation-free. It must not be used from more than one solve at a
// time.
type Workspace struct {
	n      int
	grad   linalg.Vector
	gi     linalg.Vector
	dx     linalg.Vector
	xTrial linalg.Vector
	rhs    linalg.Vector
	warm   linalg.Vector // WarmStart's re-centering blend point
	hess   *linalg.Matrix
	reg    *linalg.Matrix // regularized Hessian for factorization retries
	chol   linalg.CholFactor

	// Backend selections live in the workspace so BarrierWS hands center
	// a kktOps without allocating.
	dops denseOps
	aops arrowOps
	ast  arrowState
}

// arrowState is the structured backend's scratch, sized per compiled
// pattern: the ArrowKKT being assembled, its factor, and the row-batch
// buffers (values/inverses, SYRK scales, dense-block gradient).
type arrowState struct {
	pat   *HessianPattern
	kkt   linalg.ArrowKKT
	fac   linalg.ArrowFactor
	fi    linalg.Vector // row-constraint values, then their −1/fi
	alpha linalg.Vector // row-constraint 1/fi² SYRK scales
	gd    linalg.Vector // dense-block gradient scratch
	lu    linalg.Vector // line search: row values g·x_d at the search origin
	lv    linalg.Vector // line search: row directional values g·dx_d
	rr    linalg.Vector // full-dimension residual for iterative refinement
}

// NewWorkspace returns a workspace pre-sized for dimension-n problems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure sizes the buffers for dimension n, reallocating only when the
// dimension actually changes.
func (w *Workspace) ensure(n int) {
	if w.n == n && w.grad != nil {
		return
	}
	w.n = n
	w.grad = linalg.NewVector(n)
	w.gi = linalg.NewVector(n)
	w.dx = linalg.NewVector(n)
	w.xTrial = linalg.NewVector(n)
	w.rhs = linalg.NewVector(n)
	w.warm = linalg.NewVector(n)
	w.hess = nil
	w.reg = nil
	w.chol = linalg.CholFactor{}
	w.ast = arrowState{}
}

// hessM returns the dense Hessian buffer, allocating it (and the
// regularization copy) on first use.
func (w *Workspace) hessM() *linalg.Matrix {
	if w.hess == nil {
		w.hess = linalg.NewMatrix(w.n, w.n)
		w.reg = linalg.NewMatrix(w.n, w.n)
	}
	return w.hess
}

// ensureArrow sizes the structured-backend state for the given compiled
// pattern; re-entry with the same pattern is free.
func (w *Workspace) ensureArrow(pat *HessianPattern) {
	if w.ast.pat == pat {
		return
	}
	w.ast = arrowState{
		pat: pat,
		kkt: linalg.ArrowKKT{
			DF:  linalg.NewVector(pat.nf),
			VF:  linalg.NewVector(pat.nf),
			CF:  linalg.NewVector(pat.nf),
			Col: pat.coupleCol, // read-only, shared with the pattern
			S:   linalg.NewPackedSym(pat.nd),
		},
		fi:    linalg.NewVector(len(pat.rows)),
		alpha: linalg.NewVector(len(pat.rows)),
		gd:    linalg.NewVector(pat.nd),
		lu:    linalg.NewVector(len(pat.rows)),
		lv:    linalg.NewVector(len(pat.rows)),
		rr:    linalg.NewVector(pat.nf + pat.nd),
	}
}
