package solver

import "protemp/internal/linalg"

// Workspace holds every scratch buffer a barrier solve needs: the
// gradient, per-constraint gradient, Hessian, Newton direction, line
// search trial point, regularized-Hessian copy, right-hand side and
// Cholesky factor. A sweep that solves thousands of same-shaped
// problems allocates one Workspace per worker and threads it through
// BarrierWS/WarmStart, turning the per-Newton-iteration clone+factor
// of the naive path into in-place work on caller-owned memory.
//
// A Workspace is resized on demand, so one instance can serve problems
// of different dimensions (a Phase-I detour adds a slack variable);
// resizing reallocates, matching stays allocation-free. It must not be
// used from more than one solve at a time.
type Workspace struct {
	n      int
	grad   linalg.Vector
	gi     linalg.Vector
	dx     linalg.Vector
	xTrial linalg.Vector
	rhs    linalg.Vector
	warm   linalg.Vector // WarmStart's re-centering blend point
	hess   *linalg.Matrix
	reg    *linalg.Matrix // regularized Hessian for factorization retries
	chol   linalg.CholFactor
}

// NewWorkspace returns a workspace pre-sized for dimension-n problems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure sizes the buffers for dimension n, reallocating only when the
// dimension actually changes.
func (w *Workspace) ensure(n int) {
	if w.n == n && w.hess != nil {
		return
	}
	w.n = n
	w.grad = linalg.NewVector(n)
	w.gi = linalg.NewVector(n)
	w.dx = linalg.NewVector(n)
	w.xTrial = linalg.NewVector(n)
	w.rhs = linalg.NewVector(n)
	w.warm = linalg.NewVector(n)
	w.hess = linalg.NewMatrix(n, n)
	w.reg = linalg.NewMatrix(n, n)
	w.chol = linalg.CholFactor{}
}
