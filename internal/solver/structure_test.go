package solver

import (
	"math"
	"math/rand"
	"testing"

	"protemp/internal/linalg"
)

// randomArrowProblem builds a random strictly feasible program with the
// Pro-Temp arrow shape over x = [f (n) | p (n)]: per-f box rows, per-p
// upper-box rows, quadratic f→p couplings, optionally the rank-one
// workload border and a batch of dense-block row constraints. The
// returned start point is strictly interior by construction.
func randomArrowProblem(rng *rand.Rand, n int, withRank1, withRows bool) (*Problem, linalg.Vector) {
	dim := 2 * n
	od := linalg.NewVector(dim)
	oa := linalg.NewVector(dim)
	for i := 0; i < n; i++ {
		oa[n+i] = 1
		if rng.Intn(2) == 0 {
			od[n+i] = 0.1 * rng.Float64()
		}
	}
	obj, err := NewDiagQuadratic(od, oa, 0)
	if err != nil {
		panic(err)
	}

	var cons []Func
	// f boxes: 0.1 <= f_i <= 1.
	for i := 0; i < n; i++ {
		lo := linalg.NewVector(dim)
		lo[i] = -1
		cons = append(cons, NewSparseAffine(lo, 0.1))
		hi := linalg.NewVector(dim)
		hi[i] = 1
		cons = append(cons, NewSparseAffine(hi, -1))
	}
	// p upper boxes: p_i <= 10.
	for i := 0; i < n; i++ {
		up := linalg.NewVector(dim)
		up[n+i] = 1
		cons = append(cons, NewSparseAffine(up, -10))
	}
	// Couplings: c_i·f_i² − p_i <= 0.
	for i := 0; i < n; i++ {
		d := linalg.NewVector(dim)
		a := linalg.NewVector(dim)
		d[i] = 0.5 + rng.Float64()
		a[n+i] = -1
		q, err := NewDiagQuadratic(d, a, 0)
		if err != nil {
			panic(err)
		}
		cons = append(cons, q)
	}
	if withRank1 {
		// Workload border: Σ f_i >= 0.25·n.
		a := linalg.NewVector(dim)
		for i := 0; i < n; i++ {
			a[i] = -1
		}
		cons = append(cons, NewSparseAffine(a, 0.25*float64(n)))
	}
	if withRows {
		// Dense-block rows: Σ_j g_rj·p_j <= cap, caps sized so p <= 3
		// is strictly interior.
		for r := 0; r < n+2; r++ {
			a := linalg.NewVector(dim)
			sum := 0.0
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					a[n+i] = 0.1 + rng.Float64()
				}
			}
			a[n+r%n] = 0.2 + rng.Float64()
			a[n+(r+1)%n] = 0.2 + rng.Float64()
			for i := 0; i < n; i++ {
				sum += a[n+i]
			}
			cons = append(cons, NewSparseAffine(a, -(3*sum+0.5)))
		}
	}

	x0 := linalg.NewVector(dim)
	for i := 0; i < n; i++ {
		x0[i] = 0.35 + 0.2*rng.Float64()
		x0[n+i] = 2 + rng.Float64()
	}
	return &Problem{Objective: obj, Constraints: cons}, x0
}

// TestStructuredBarrierMatchesDense is the randomized property test of
// the tentpole: for random arrow-shaped programs, BarrierWS on the
// compiled structured path and on the dense path must agree — same
// solution within the duality-gap tolerance, same objective, same
// convergence verdict. The structured backend is forced via the
// pattern hint; the dense lane runs the identical problem with the
// hint stripped.
func TestStructuredBarrierMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		n                  int
		withRank1, withRow bool
	}{
		{1, true, true}, // uniform-like: nf border degenerate
		{2, true, false},
		{5, false, true},
		{8, true, true},
		{13, true, true},
	}
	for _, tc := range cases {
		for trial := 0; trial < 3; trial++ {
			p, x0 := randomArrowProblem(rng, tc.n, tc.withRank1, tc.withRow)
			pat, err := CompileHessianPattern(p, tc.n)
			if err != nil {
				t.Fatalf("n=%d rank1=%v rows=%v: compile: %v", tc.n, tc.withRank1, tc.withRow, err)
			}

			p.Pattern = pat
			if !pat.matches(p) {
				t.Fatalf("n=%d: fresh pattern does not match its own problem", tc.n)
			}
			sres, serr := Barrier(p, x0, Options{})

			p.Pattern = nil
			dres, derr := Barrier(p, x0, Options{})

			if (serr == nil) != (derr == nil) {
				t.Fatalf("n=%d trial %d: structured err=%v dense err=%v", tc.n, trial, serr, derr)
			}
			if serr != nil {
				continue
			}
			if sres.Centered != dres.Centered || sres.StoppedEarly != dres.StoppedEarly {
				t.Fatalf("n=%d trial %d: verdicts differ: structured %+v dense %+v", tc.n, trial, sres, dres)
			}
			if d := math.Abs(sres.Objective - dres.Objective); d > 1e-6*(1+math.Abs(dres.Objective)) {
				t.Fatalf("n=%d trial %d: objective %v vs %v", tc.n, trial, sres.Objective, dres.Objective)
			}
			for j := range sres.X {
				if d := math.Abs(sres.X[j] - dres.X[j]); d > 1e-5 {
					t.Fatalf("n=%d trial %d: x[%d] = %v vs %v (Δ %v)", tc.n, trial, j, sres.X[j], dres.X[j], d)
				}
			}
			if r := sres.KKTResidual(p); r > 1e-4 {
				t.Fatalf("n=%d trial %d: structured KKT residual %v", tc.n, trial, r)
			}
		}
	}
}

// TestStructuredBarrierFailureParity checks the failure surface is
// identical across backends: an infeasible start is rejected the same
// way, and a centering budget too small to converge yields the same
// not-centered verdict on both paths.
func TestStructuredBarrierFailureParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, x0 := randomArrowProblem(rng, 6, true, true)
	pat, err := CompileHessianPattern(p, 6)
	if err != nil {
		t.Fatal(err)
	}

	// Infeasible start: f below its lower box.
	bad := x0.Clone()
	bad[0] = 0.05
	p.Pattern = pat
	_, serr := Barrier(p, bad, Options{})
	p.Pattern = nil
	_, derr := Barrier(p, bad, Options{})
	if serr == nil || derr == nil {
		t.Fatalf("infeasible start accepted: structured err=%v dense err=%v", serr, derr)
	}

	// Starved Newton budget: neither backend may claim a centered
	// result.
	tight := Options{MaxNewton: 1, MaxOuter: 2}
	p.Pattern = pat
	sres, serr := Barrier(p, x0, tight)
	p.Pattern = nil
	dres, derr := Barrier(p, x0, tight)
	if serr != nil || derr != nil {
		t.Fatalf("starved solve errored: structured %v dense %v", serr, derr)
	}
	if sres.Centered || dres.Centered {
		t.Fatalf("starved solve claims centered: structured %v dense %v", sres.Centered, dres.Centered)
	}
	if sres.NewtonIters != dres.NewtonIters {
		t.Fatalf("starved NewtonIters differ: structured %d dense %d", sres.NewtonIters, dres.NewtonIters)
	}
}

// TestPatternMatchRejectsDrift pins the fallback rule: a pattern
// compiled against one problem must not match a problem whose
// constraint storage was swapped (the Phase-I augmentation case), so
// such solves silently take the dense path instead of reading stale
// coefficients.
func TestPatternMatchRejectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := randomArrowProblem(rng, 4, true, true)
	pat, err := CompileHessianPattern(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pat.matches(p) {
		t.Fatal("pattern does not match its own problem")
	}

	// Extra constraint: shape drift.
	extra := linalg.NewVector(p.Dim())
	extra[p.Dim()-1] = 1
	q := &Problem{Objective: p.Objective, Constraints: append(append([]Func{}, p.Constraints...), NewSparseAffine(extra, -100))}
	if pat.matches(q) {
		t.Fatal("pattern matches a problem with an extra constraint")
	}

	// Same shape, reallocated coefficients: pointer identity must fail.
	swapped := append([]Func{}, p.Constraints...)
	if a, ok := swapped[0].(*Affine); ok {
		swapped[0] = NewSparseAffine(a.A.Clone(), a.B)
	}
	r := &Problem{Objective: p.Objective, Constraints: swapped}
	if pat.matches(r) {
		t.Fatal("pattern matches a problem with reallocated coefficient storage")
	}

	// B offsets are read live, not compiled: mutating them must NOT
	// invalidate the pattern (the per-window rewrite depends on this).
	if a, ok := p.Constraints[0].(*Affine); ok {
		a.B += 0.01
	}
	if !pat.matches(p) {
		t.Fatal("pattern invalidated by an offset rewrite")
	}
}
