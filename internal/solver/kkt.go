package solver

import (
	"math"

	"protemp/internal/linalg"
)

// kktOps abstracts the Newton-KKT backend of one centering: assembling
// the barrier gradient/Hessian, solving for the Newton direction, and
// evaluating the barrier value and strict feasibility of trial points.
// The dense backend is the historical path; the arrow backend exploits
// a compiled HessianPattern. Both live inside the Workspace, so
// selecting one allocates nothing.
type kktOps interface {
	// assemble computes value and gradient (into ws.grad) of t·f0 + φ at
	// x and builds the backend's Hessian representation. ok=false when x
	// is outside the barrier domain.
	assemble(x linalg.Vector, t float64) (float64, bool)
	// direction solves H dx = −grad for the assembled system, with the
	// shared regularized-retry ladder. Returns false when even heavy
	// regularization fails.
	direction(dx linalg.Vector) bool
	// refine applies one step of iterative refinement to dx against the
	// most recently assembled system and its factor, reporting whether a
	// correction was applied. Called only after a failed line search:
	// near the boundary the Hessian carries 1e18-range curvatures, where
	// a single factor+solve can lose enough digits that the direction
	// yields no Armijo decrease. The successful path never refines, so
	// healthy solves keep their direction bit-for-bit.
	refine(dx linalg.Vector) bool
	// value computes t·f0 + φ at x; ok=false outside the domain.
	value(x linalg.Vector, t float64) (float64, bool)
	// lineStart caches direction-dependent state for trial evaluations
	// along x + s·dx; every trial between here and the next lineStart
	// uses the same x and dx.
	lineStart(x, dx linalg.Vector)
	// trial writes x + step·dx into xTrial and returns its barrier value
	// (as value does), using any state cached by lineStart.
	trial(xTrial, x, dx linalg.Vector, step, t float64) (float64, bool)
	// feasible reports strict feasibility of x.
	feasible(x linalg.Vector) bool
}

// denseOps is the dense backend: full-matrix assembly and Cholesky.
type denseOps struct {
	p  *Problem
	ws *Workspace
}

func (d *denseOps) assemble(x linalg.Vector, t float64) (float64, bool) {
	return assemble(d.p, x, t, d.ws.grad, d.ws.gi, d.ws.hessM())
}

func (d *denseOps) direction(dx linalg.Vector) bool {
	return newtonDirection(d.ws, d.ws.grad, dx)
}

// refine corrects dx by the residual of the unregularized Newton
// system, reusing the factor newtonDirection left in the workspace as
// the solver for the correction.
func (d *denseOps) refine(dx linalg.Vector) bool {
	ws := d.ws
	r := ws.gi
	ws.hessM().MulVec(r, dx)
	rhs := ws.rhs // still −grad from direction
	for i, bi := range rhs {
		r[i] = bi - r[i]
	}
	if err := ws.chol.SolveInto(r, r); err != nil || !r.AllFinite() {
		return false
	}
	dx.Add(dx, r)
	return dx.AllFinite()
}

func (d *denseOps) value(x linalg.Vector, t float64) (float64, bool) {
	return barrierValue(d.p, x, t)
}

func (d *denseOps) lineStart(x, dx linalg.Vector) {}

func (d *denseOps) trial(xTrial, x, dx linalg.Vector, step, t float64) (float64, bool) {
	xTrial.AddScaled(x, step, dx)
	return barrierValue(d.p, xTrial, t)
}

func (d *denseOps) feasible(x linalg.Vector) bool {
	return d.p.IsStrictlyFeasible(x)
}

// arrowOps is the structured backend over a compiled HessianPattern:
// per-shape scatter into an ArrowKKT, batched SYRK accumulation of the
// row constraints, batched matvec evaluation of their values, and
// block-elimination factorization. Shares the regularized-retry ladder
// and failure semantics with the dense path.
type arrowOps struct {
	p   *Problem
	pat *HessianPattern
	ws  *Workspace
}

// logFlush folds the running slack product into val once it leaves the
// range where another factor could drift toward double-precision
// under/overflow, returning the (possibly reset) product. Batching the
// barrier's Σ −log(−fi) as the log of a running product replaces one
// Log call per row constraint with one per few dozen rows.
func logFlush(prod float64, val *float64) float64 {
	if prod > 1e-120 && prod < 1e120 {
		return prod
	}
	*val -= math.Log(prod)
	return 1
}

// rowB returns the live offset of row constraint ci (offsets are what
// the per-window rewrite mutates, so they are never compiled).
func (a *arrowOps) rowB(ci int) float64 {
	return a.p.Constraints[ci].(*Affine).B
}

func (a *arrowOps) assemble(x linalg.Vector, t float64) (float64, bool) {
	pat, st := a.pat, &a.ws.ast
	nf := pat.nf
	grad := a.ws.grad

	// The barrier log terms accumulate in acc — a small-magnitude
	// accumulator added to the t·f0 term once at the end — in the same
	// class order as value/trial. At large t the value is ~1e12 with an
	// ulp far above the per-term rounding, so assemble and the line
	// search evaluations must round identically or the Armijo test
	// compares noise (the dense path gets this for free by sharing one
	// evaluation routine).
	tf0 := t * a.p.Objective.Value(x)
	acc := 0.0
	a.p.Objective.Gradient(grad, x)
	grad.Scale(t, grad)

	kkt := &st.kkt
	kkt.DF.Fill(0)
	kkt.VF.Fill(0)
	kkt.CF.Fill(0)
	kkt.S.Reset()
	if pat.objDiag != nil {
		for j, dj := range pat.objDiag {
			if dj == 0 {
				continue
			}
			if j < nf {
				kkt.DF[j] += 2 * t * dj
			} else {
				kkt.S.AddAt(j-nf, j-nf, 2*t*dj)
			}
		}
	}

	// Row constraints: one matvec for all values, one transposed matvec
	// for the gradient, one blocked SYRK for the Hessian block. The raw
	// matvec values are kept in lu so a following lineStart at this x
	// skips its origin matvec.
	if len(pat.rows) > 0 {
		xd := x[nf:]
		pat.g.MulVec(st.fi, xd)
		prod := 1.0
		for r := range pat.rows {
			st.lu[r] = st.fi[r]
			fi := st.fi[r] + a.rowB(pat.rows[r].ci)
			if fi >= 0 {
				return 0, false
			}
			prod = logFlush(prod*-fi, &acc)
			st.fi[r] = -1 / fi // inv, consumed by the gradient matvec
			st.alpha[r] = 1 / (fi * fi)
		}
		acc -= math.Log(prod)
		pat.g.MulVecT(st.gd, st.fi)
		gd := grad[nf:]
		gd.Add(gd, st.gd)
		kkt.S.AddSyrk(pat.g, st.alpha)
	}

	for i := range pat.fDiag {
		c := &pat.fDiag[i]
		fi := c.a*x[c.idx] + a.rowB(c.ci)
		if fi >= 0 {
			return 0, false
		}
		acc -= math.Log(-fi)
		grad[c.idx] += -1 / fi * c.a
		kkt.DF[c.idx] += c.a * c.a / (fi * fi)
	}
	for i := range pat.dDiag {
		c := &pat.dDiag[i]
		fi := c.a*x[nf+c.idx] + a.rowB(c.ci)
		if fi >= 0 {
			return 0, false
		}
		acc -= math.Log(-fi)
		grad[nf+c.idx] += -1 / fi * c.a
		kkt.S.AddAt(c.idx, c.idx, c.a*c.a/(fi*fi))
	}
	if r1 := pat.rank1; r1 != nil {
		fi := a.rowB(r1.ci)
		for _, j := range r1.nz {
			fi += r1.a[j] * x[j]
		}
		if fi >= 0 {
			return 0, false
		}
		acc -= math.Log(-fi)
		inv := -1 / fi
		for _, j := range r1.nz {
			grad[j] += inv * r1.a[j]
			kkt.VF[j] = inv * r1.a[j] // VFᵀVF = a·aᵀ/fi²
		}
	}
	for i := range pat.couples {
		c := &pat.couples[i]
		var q, gf, gdv float64
		q = c.b
		if c.fi >= 0 {
			xf := x[c.fi]
			q += c.df*xf*xf + c.af*xf
			gf = 2*c.df*xf + c.af
		}
		if c.dcol >= 0 {
			xd := x[nf+c.dcol]
			q += c.dd*xd*xd + c.ad*xd
			gdv = 2*c.dd*xd + c.ad
		}
		if q >= 0 {
			return 0, false
		}
		acc -= math.Log(-q)
		inv := -1 / q
		sc := 1 / (q * q)
		if c.fi >= 0 {
			grad[c.fi] += inv * gf
			kkt.DF[c.fi] += gf*gf*sc + inv*2*c.df
		}
		if c.dcol >= 0 {
			grad[nf+c.dcol] += inv * gdv
			kkt.S.AddAt(c.dcol, c.dcol, gdv*gdv*sc+inv*2*c.dd)
		}
		if c.fi >= 0 && c.dcol >= 0 {
			kkt.CF[c.fi] += gf * gdv * sc
		}
	}
	return tf0 + acc, true
}

func (a *arrowOps) direction(dx linalg.Vector) bool {
	st := &a.ws.ast
	rhs := a.ws.rhs.Scale(-1, a.ws.grad)
	reg, scale := 0.0, 0.0
	for attempt := 0; attempt < 8; attempt++ {
		if st.fac.Factor(&st.kkt, reg) == nil {
			if st.fac.SolveInto(dx, rhs) == nil && dx.AllFinite() {
				return true
			}
		}
		if reg == 0 {
			if scale == 0 {
				scale = 1 + st.kkt.MaxAbs()
			}
			reg = 1e-12 * scale
		} else {
			reg *= 1e3
		}
	}
	return false
}

// refine corrects dx by the residual of the unregularized arrow
// system, reusing the block-elimination factor direction left behind
// as the solver for the correction.
func (a *arrowOps) refine(dx linalg.Vector) bool {
	st := &a.ws.ast
	st.kkt.MulVec(st.rr, dx, 0)
	rhs := a.ws.rhs // still −grad from direction
	for i, bi := range rhs {
		st.rr[i] = bi - st.rr[i]
	}
	if st.fac.SolveInto(st.rr, st.rr) != nil || !st.rr.AllFinite() {
		return false
	}
	dx.Add(dx, st.rr)
	return dx.AllFinite()
}

func (a *arrowOps) value(x linalg.Vector, t float64) (float64, bool) {
	pat, st := a.pat, &a.ws.ast
	nf := pat.nf
	tf0 := t * a.p.Objective.Value(x)
	acc := 0.0
	if len(pat.rows) > 0 {
		pat.g.MulVec(st.fi, x[nf:])
		prod := 1.0
		for r := range pat.rows {
			fi := st.fi[r] + a.rowB(pat.rows[r].ci)
			if fi >= 0 {
				return 0, false
			}
			prod = logFlush(prod*-fi, &acc)
		}
		acc -= math.Log(prod)
	}
	acc, ok := a.scalarLogSum(x, acc)
	if !ok {
		return 0, false
	}
	return tf0 + acc, true
}

// lineStart caches the row-batch directional matvec v = g·dx_d. The
// origin values u = g·x_d were already stowed in lu by the assemble
// call at this same x (center always assembles before searching), so
// every trial point x + s·dx evaluates all row constraints as
// u[r] + s·v[r] + B in O(rows) instead of a full matvec per candidate
// step.
func (a *arrowOps) lineStart(x, dx linalg.Vector) {
	pat, st := a.pat, &a.ws.ast
	if len(pat.rows) == 0 {
		return
	}
	pat.g.MulVec(st.lv, dx[pat.nf:])
}

func (a *arrowOps) trial(xTrial, x, dx linalg.Vector, step, t float64) (float64, bool) {
	pat, st := a.pat, &a.ws.ast
	xTrial.AddScaled(x, step, dx)
	tf0 := t * a.p.Objective.Value(xTrial)
	acc := 0.0
	if len(pat.rows) > 0 {
		prod := 1.0
		for r := range pat.rows {
			fi := st.lu[r] + step*st.lv[r] + a.rowB(pat.rows[r].ci)
			if fi >= 0 {
				return 0, false
			}
			prod = logFlush(prod*-fi, &acc)
		}
		acc -= math.Log(prod)
	}
	acc, ok := a.scalarLogSum(xTrial, acc)
	if !ok {
		return 0, false
	}
	return tf0 + acc, true
}

func (a *arrowOps) feasible(x linalg.Vector) bool {
	pat, st := a.pat, &a.ws.ast
	nf := pat.nf
	if len(pat.rows) > 0 {
		pat.g.MulVec(st.fi, x[nf:])
		for r := range pat.rows {
			if st.fi[r]+a.rowB(pat.rows[r].ci) >= 0 {
				return false
			}
		}
	}
	_, ok := a.scalarLogSum(x, 0)
	return ok
}

// scalarLogSum accumulates Σ −log(−fi) over every non-row constraint
// at x (each evaluated over its compiled support, so O(support) not
// O(dim)) into the running accumulator sum, with ok=false as soon as
// any value leaves the barrier domain. Starting from the caller's
// accumulator keeps the rounding order identical across assemble,
// value and trial — a requirement, not a convenience: at large t the
// Armijo test resolves differences near the value's ulp.
func (a *arrowOps) scalarLogSum(x linalg.Vector, sum float64) (float64, bool) {
	pat := a.pat
	nf := pat.nf
	for i := range pat.fDiag {
		c := &pat.fDiag[i]
		fi := c.a*x[c.idx] + a.rowB(c.ci)
		if fi >= 0 {
			return 0, false
		}
		sum -= math.Log(-fi)
	}
	for i := range pat.dDiag {
		c := &pat.dDiag[i]
		fi := c.a*x[nf+c.idx] + a.rowB(c.ci)
		if fi >= 0 {
			return 0, false
		}
		sum -= math.Log(-fi)
	}
	if r1 := pat.rank1; r1 != nil {
		fi := a.rowB(r1.ci)
		for _, j := range r1.nz {
			fi += r1.a[j] * x[j]
		}
		if fi >= 0 {
			return 0, false
		}
		sum -= math.Log(-fi)
	}
	for i := range pat.couples {
		c := &pat.couples[i]
		q := c.b
		if c.fi >= 0 {
			xf := x[c.fi]
			q += c.df*xf*xf + c.af*xf
		}
		if c.dcol >= 0 {
			xd := x[nf+c.dcol]
			q += c.dd*xd*xd + c.ad*xd
		}
		if q >= 0 {
			return 0, false
		}
		sum -= math.Log(-q)
	}
	return sum, true
}
