package solver

import (
	"fmt"
	"math"
	"time"

	"protemp/internal/linalg"
)

// Options tunes the barrier method. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// Mu is the barrier parameter multiplier per outer iteration.
	Mu float64
	// Tol is the target duality gap m/t.
	Tol float64
	// NewtonTol is the Newton decrement threshold (λ²/2) that ends a
	// centering step.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per centering step.
	MaxNewton int
	// MaxOuter bounds outer (barrier) iterations.
	MaxOuter int
	// Alpha and Beta are the backtracking line-search constants.
	Alpha, Beta float64
	// T0 is the initial barrier weight.
	T0 float64
	// StopEarly, if non-nil, aborts the solve successfully as soon as a
	// centering iterate satisfies it. Phase I uses this to stop once a
	// strictly feasible point is found.
	StopEarly func(x linalg.Vector) bool
	// Interrupt, if non-nil, is polled once per Newton iteration; a
	// non-nil return aborts the solve with that error. Context
	// cancellation plumbs through here so a caller's deadline reaches
	// into the innermost centering loop.
	Interrupt func() error
	// Centering, if non-nil, is invoked after every centering stage
	// with the barrier weight t, the Newton iterations spent, whether
	// the stage converged, and the stage's wall time split into its
	// three phases: Hessian assembly, factorization+solve, and line
	// search (nanoseconds). Tracing plumbs through here; the hot path
	// pays only a nil check when unset.
	Centering func(t float64, newtonIters int, converged bool, assembleNs, factorNs, linesearchNs int64)
}

// DefaultOptions returns the tuning used throughout the project.
func DefaultOptions() Options {
	return Options{
		Mu:        20,
		Tol:       1e-8,
		NewtonTol: 1e-10,
		MaxNewton: 200,
		MaxOuter:  100,
		Alpha:     0.1,
		Beta:      0.5,
		T0:        1,
	}
}

// Validate rejects nonsensical tunings loudly. A zero field always
// selects the default; any explicitly set field must be usable as
// given — an unusual-but-legitimate tuning such as Mu = 1.0001 is
// accepted verbatim, never silently replaced.
func (o Options) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Mu", o.Mu}, {"Tol", o.Tol}, {"NewtonTol", o.NewtonTol},
		{"Alpha", o.Alpha}, {"Beta", o.Beta}, {"T0", o.T0},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("solver: non-finite %s = %v", f.name, f.v)
		}
	}
	switch {
	case o.Mu != 0 && o.Mu <= 1:
		return fmt.Errorf("solver: barrier multiplier Mu = %v must exceed 1 (zero selects the default %v)", o.Mu, DefaultOptions().Mu)
	case o.Tol < 0:
		return fmt.Errorf("solver: negative duality-gap tolerance %v", o.Tol)
	case o.NewtonTol < 0:
		return fmt.Errorf("solver: negative Newton tolerance %v", o.NewtonTol)
	case o.MaxNewton < 0:
		return fmt.Errorf("solver: negative MaxNewton %d", o.MaxNewton)
	case o.MaxOuter < 0:
		return fmt.Errorf("solver: negative MaxOuter %d", o.MaxOuter)
	case o.Alpha != 0 && (o.Alpha <= 0 || o.Alpha >= 0.5):
		return fmt.Errorf("solver: line-search Alpha = %v outside (0, 0.5) (zero selects the default)", o.Alpha)
	case o.Beta != 0 && (o.Beta <= 0 || o.Beta >= 1):
		return fmt.Errorf("solver: line-search Beta = %v outside (0, 1) (zero selects the default)", o.Beta)
	case o.T0 < 0:
		return fmt.Errorf("solver: negative initial barrier weight %v", o.T0)
	}
	return nil
}

// withDefaults fills zero fields with DefaultOptions. It assumes the
// options passed Validate, so non-zero fields are kept verbatim.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Mu == 0 {
		o.Mu = d.Mu
	}
	if o.Tol == 0 {
		o.Tol = d.Tol
	}
	if o.NewtonTol == 0 {
		o.NewtonTol = d.NewtonTol
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = d.MaxNewton
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = d.MaxOuter
	}
	if o.Alpha == 0 {
		o.Alpha = d.Alpha
	}
	if o.Beta == 0 {
		o.Beta = d.Beta
	}
	if o.T0 == 0 {
		o.T0 = d.T0
	}
	return o
}

// Result reports a barrier solve.
type Result struct {
	// X is the final (approximately optimal) point.
	X linalg.Vector
	// Objective is f0(X).
	Objective float64
	// Gap is the final duality-gap bound m/t.
	Gap float64
	// Lambda holds the recovered dual variables λ_i = −1/(t·fi(X)).
	Lambda linalg.Vector
	// NewtonIters counts total Newton iterations across all centerings.
	NewtonIters int
	// OuterIters counts barrier (centering) stages.
	OuterIters int
	// StoppedEarly reports whether Options.StopEarly ended the solve.
	StoppedEarly bool
	// Centered reports whether the final centering stage actually
	// reached its Newton-decrement (or round-off polish) exit. When
	// false the stage exhausted MaxNewton and X may sit far from the
	// central path, so Gap is not a trustworthy certificate — warm-start
	// callers treat such a result as a miss and re-solve cold.
	Centered bool
	// AssembleNanos, FactorNanos and LinesearchNanos split the solve's
	// wall time across its three phases — Hessian assembly, KKT
	// factorization+solve, and backtracking line search — summed over
	// all centerings, so callers can see which phase a structural
	// optimization actually moved.
	AssembleNanos   int64
	FactorNanos     int64
	LinesearchNanos int64
}

// KKTResidual returns ‖∇f0(X) + Σ λ_i ∇fi(X)‖∞, the stationarity
// residual of the recovered primal-dual pair.
func (r *Result) KKTResidual(p *Problem) float64 {
	n := p.Dim()
	g := linalg.NewVector(n)
	total := linalg.NewVector(n)
	p.Objective.Gradient(total, r.X)
	for i, c := range p.Constraints {
		c.Gradient(g, r.X)
		total.AddScaled(total, r.Lambda[i], g)
	}
	return total.NormInf()
}

// Barrier minimizes the problem from the strictly feasible start x0
// using the log-barrier interior-point method (Boyd & Vandenberghe,
// Algorithm 11.1). It returns ErrNumerical if centering stalls and a
// plain error for options that fail Validate.
func Barrier(p *Problem, x0 linalg.Vector, opts Options) (*Result, error) {
	return BarrierWS(p, x0, opts, nil)
}

// BarrierWS is Barrier with a caller-owned Workspace: all per-iteration
// scratch (gradient, Hessian, Newton direction, factorization) lives in
// ws, so a caller solving many same-shaped problems amortizes every
// allocation. A nil ws allocates a private workspace.
func BarrierWS(p *Problem, x0 linalg.Vector, opts Options, ws *Workspace) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	n := p.Dim()
	if len(x0) != n {
		return nil, fmt.Errorf("solver: start has dim %d, want %d", len(x0), n)
	}
	if !p.IsStrictlyFeasible(x0) {
		return nil, fmt.Errorf("solver: start is not strictly feasible (max violation %v); run PhaseI first", p.MaxViolation(x0))
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.ensure(n)
	}

	x := x0.Clone()
	t := o.T0
	m := float64(len(p.Constraints))
	res := &Result{}

	// Backend selection: the structured path needs a compiled pattern
	// that still describes this problem instance (a pointer walk);
	// anything else — no pattern, a Phase-I augmentation, a hand-built
	// problem — stays dense. Both backends live in the workspace, so
	// neither branch allocates.
	var ops kktOps
	if p.Pattern != nil && p.Pattern.matches(p) {
		ws.ensureArrow(p.Pattern)
		ws.aops = arrowOps{p: p, pat: p.Pattern, ws: ws}
		ops = &ws.aops
	} else {
		ws.dops = denseOps{p: p, ws: ws}
		ops = &ws.dops
	}

	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIters++
		cs, err := center(x, t, o, ws, ops)
		res.NewtonIters += cs.iters
		res.Centered = cs.converged
		res.AssembleNanos += cs.assembleNs
		res.FactorNanos += cs.factorNs
		res.LinesearchNanos += cs.linesearchNs
		if o.Centering != nil {
			o.Centering(t, cs.iters, cs.converged && err == nil, cs.assembleNs, cs.factorNs, cs.linesearchNs)
		}
		if err != nil {
			return nil, err
		}
		if cs.stopped {
			res.StoppedEarly = true
			break
		}
		if len(p.Constraints) == 0 || m/t < o.Tol {
			break
		}
		t *= o.Mu
	}

	res.X = x
	res.Objective = p.Objective.Value(x)
	if len(p.Constraints) > 0 {
		res.Gap = m / t
	}
	res.Lambda = linalg.NewVector(len(p.Constraints))
	for i, c := range p.Constraints {
		if v := c.Value(x); v < 0 {
			res.Lambda[i] = -1 / (t * v)
		}
	}
	return res, nil
}

// machEps is the double-precision unit round-off.
const machEps = 2.220446049250313e-16

// maxPolish bounds the consecutive pure-Newton polish steps a centering
// takes once the predicted decrement drops below the barrier value's
// round-off resolution (see center); quadratic convergence makes more
// than a few pointless.
const maxPolish = 6

// centerStats reports one centering stage: iteration count, whether
// StopEarly fired, whether the stage converged (reached a
// decrement/polish/descent exit rather than exhausting MaxNewton — the
// condition under which the iterate certifiably sits near the central
// path), and the stage's wall time split by phase.
type centerStats struct {
	iters                              int
	stopped, converged                 bool
	assembleNs, factorNs, linesearchNs int64
}

// center minimizes t·f0(x) + φ(x) over the strictly feasible set by
// damped Newton, updating x in place. All problem evaluation and linear
// algebra goes through ops (dense or structured backend), which draws
// its scratch from ws; the two backends produce equivalent iterates.
func center(x linalg.Vector, t float64, o Options, ws *Workspace, ops kktOps) (centerStats, error) {
	grad := ws.grad
	dx, xTrial := ws.dx, ws.xTrial
	polish, lastPolish := 0, math.Inf(1)
	var cs centerStats

	for iter := 1; iter <= o.MaxNewton; iter++ {
		cs.iters = iter
		if o.Interrupt != nil {
			if err := o.Interrupt(); err != nil {
				cs.iters = iter - 1
				return cs, err
			}
		}
		if o.StopEarly != nil && o.StopEarly(x) {
			cs.iters = iter - 1
			cs.stopped, cs.converged = true, true
			return cs, nil
		}
		// Assemble gradient and Hessian of t·f0 + φ.
		tMark := time.Now()
		val, ok := ops.assemble(x, t)
		cs.assembleNs += time.Since(tMark).Nanoseconds()
		if !ok {
			return cs, fmt.Errorf("%w: iterate left the domain", ErrNumerical)
		}

		// Newton direction: solve H dx = -grad, regularizing if needed.
		tMark = time.Now()
		solved := ops.direction(dx)
		cs.factorNs += time.Since(tMark).Nanoseconds()
		if !solved {
			return cs, fmt.Errorf("%w: KKT system unsolvable", ErrNumerical)
		}

		// Newton decrement: λ² = -gradᵀdx (dx solves H dx = -grad).
		lambda2 := -grad.Dot(dx)
		if lambda2 < 0 {
			// Indefiniteness from regularization round-off; treat as done.
			lambda2 = 0
		}
		if lambda2/2 <= o.NewtonTol {
			cs.converged = true
			return cs, nil
		}
		// Below the barrier value's double-precision resolution the
		// Armijo test compares round-off noise: at large t the value is
		// t·f0 ~ 1e10 while the predicted decrement is ~1e-6, and the
		// backtracking loop would grind to MaxNewton without converging.
		// In that regime the decrement is far inside the quadratic
		// region, so take pure (undamped) Newton steps while they stay
		// strictly feasible and keep shrinking the decrement; a handful
		// suffices for the decrement to collapse below NewtonTol.
		if floor := 16 * machEps * math.Abs(val); lambda2/2 <= floor {
			if polish >= maxPolish || lambda2 >= lastPolish {
				cs.converged = true
				return cs, nil
			}
			polish++
			lastPolish = lambda2
			xTrial.Add(x, dx)
			tMark = time.Now()
			feasible := ops.feasible(xTrial)
			cs.linesearchNs += time.Since(tMark).Nanoseconds()
			if !feasible {
				cs.converged = true
				return cs, nil
			}
			copy(x, xTrial)
			continue
		}
		polish, lastPolish = 0, math.Inf(1)

		// Backtracking line search on t·f0 + φ, keeping strict
		// feasibility (ops.trial reports ok=false on any fi >= 0, which
		// subsumes the feasibility check). A failed search gets one
		// retry with an iteratively refined direction before giving up:
		// 1e18-range boundary curvatures can cost the factor+solve
		// enough digits that the raw direction yields no decrease.
		tMark = time.Now()
		improved := false
		for round := 0; round < 2 && !improved; round++ {
			if round == 1 {
				if !ops.refine(dx) {
					break
				}
				lambda2 = -grad.Dot(dx)
				if lambda2 < 0 {
					lambda2 = 0
				}
			}
			step := 1.0
			ops.lineStart(x, dx)
			for ls := 0; ls < 60; ls++ {
				if vt, okT := ops.trial(xTrial, x, dx, step, t); okT && vt <= val-o.Alpha*step*lambda2 {
					// Damped phase (λ²/2 > 1): the unit Newton step can stop
					// far short of the minimum along dx — on barrier valleys
					// with many near-parallel constraints (the gradient
					// variant's pairwise rows) this degrades Newton to a
					// constant-decrement crawl, hundreds of iterations per
					// centering. Forward-track: keep doubling the step while
					// the value strictly improves and the iterate stays in
					// the domain. Each probe is one value evaluation; in the
					// quadratic phase (λ small) the extension is skipped and
					// the unit step stands.
					if ls == 0 && lambda2/2 > 1 {
						best := vt
						for ext := 2 * step; ext <= 1024; ext *= 2 {
							ve, okE := ops.trial(xTrial, x, dx, ext, t)
							if !okE || ve >= best {
								break
							}
							best, step = ve, ext
						}
						xTrial.AddScaled(x, step, dx)
					}
					copy(x, xTrial)
					improved = true
					break
				}
				step *= o.Beta
			}
		}
		cs.linesearchNs += time.Since(tMark).Nanoseconds()
		if !improved {
			// No descent at the smallest step: declare convergence if the
			// decrement is already tiny, otherwise report failure.
			if lambda2/2 <= math.Sqrt(o.NewtonTol) {
				cs.converged = true
				return cs, nil
			}
			return cs, fmt.Errorf("%w: line search failed (decrement %v)", ErrNumerical, lambda2/2)
		}
	}
	cs.iters = o.MaxNewton
	return cs, nil
}

// assemble computes value, gradient and Hessian of t·f0 + φ at x.
// It returns ok=false if x is outside the barrier domain.
func assemble(p *Problem, x linalg.Vector, t float64, grad, gi linalg.Vector, hess *linalg.Matrix) (float64, bool) {
	n := p.Dim()
	val := t * p.Objective.Value(x)
	p.Objective.Gradient(grad, x)
	grad.Scale(t, grad)
	for i := 0; i < n; i++ {
		row := hess.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	p.Objective.AddHessian(hess, t, x)

	for _, c := range p.Constraints {
		fi := c.Value(x)
		if fi >= 0 {
			return 0, false
		}
		val -= math.Log(-fi)
		inv := -1 / fi // positive
		scale := 1 / (fi * fi)

		// Sparse fast path: an Affine with a nonzero index list only
		// contributes to those rows/columns.
		if a, ok := c.(*Affine); ok && a.NZ != nil {
			for _, r := range a.NZ {
				grad[r] += inv * a.A[r]
				gr := scale * a.A[r]
				row := hess.Row(r)
				for _, cc := range a.NZ {
					row[cc] += gr * a.A[cc]
				}
			}
			continue
		}

		c.Gradient(gi, x)
		grad.AddScaled(grad, inv, gi)
		// Hessian: (∇fi ∇fiᵀ)/fi² − ∇²fi/fi.
		for r := 0; r < n; r++ {
			gr := gi[r]
			if gr == 0 {
				continue
			}
			row := hess.Row(r)
			for cIdx := 0; cIdx < n; cIdx++ {
				row[cIdx] += scale * gr * gi[cIdx]
			}
		}
		c.AddHessian(hess, inv, x)
	}
	return val, true
}

// barrierValue computes t·f0 + φ at x, with ok=false outside the domain.
func barrierValue(p *Problem, x linalg.Vector, t float64) (float64, bool) {
	val := t * p.Objective.Value(x)
	for _, c := range p.Constraints {
		fi := c.Value(x)
		if fi >= 0 {
			return 0, false
		}
		val -= math.Log(-fi)
	}
	return val, true
}

// newtonDirection solves H dx = -g by Cholesky, retrying with a growing
// diagonal regularizer when H is numerically singular. All scratch —
// the right-hand side, the regularized copy and the factor — lives in
// ws, so the hot path (no regularization needed) factors straight into
// the reused buffer without allocating. Returns false only if even
// heavy regularization fails.
func newtonDirection(ws *Workspace, g, dx linalg.Vector) bool {
	h := ws.hessM()
	n := len(g)
	rhs := ws.rhs.Scale(-1, g)
	reg := 0.0
	scale := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		trial := h
		if reg > 0 {
			trial = ws.reg
			trial.CopyFrom(h)
			for i := 0; i < n; i++ {
				trial.AddAt(i, i, reg)
			}
		}
		if err := linalg.CholeskyInto(&ws.chol, trial); err == nil {
			if err := ws.chol.SolveInto(dx, rhs); err == nil && dx.AllFinite() {
				return true
			}
		}
		if reg == 0 {
			// The O(n²) magnitude scan only runs when the unregularized
			// factorization actually failed — the hot path (success on
			// the first attempt) never pays for it.
			if scale == 0 {
				scale = 1 + h.MaxAbs()
			}
			reg = 1e-12 * scale
		} else {
			reg *= 1e3
		}
	}
	return false
}
