package solver

import (
	"fmt"
	"math"

	"protemp/internal/linalg"
)

// Options tunes the barrier method. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// Mu is the barrier parameter multiplier per outer iteration.
	Mu float64
	// Tol is the target duality gap m/t.
	Tol float64
	// NewtonTol is the Newton decrement threshold (λ²/2) that ends a
	// centering step.
	NewtonTol float64
	// MaxNewton bounds Newton iterations per centering step.
	MaxNewton int
	// MaxOuter bounds outer (barrier) iterations.
	MaxOuter int
	// Alpha and Beta are the backtracking line-search constants.
	Alpha, Beta float64
	// T0 is the initial barrier weight.
	T0 float64
	// StopEarly, if non-nil, aborts the solve successfully as soon as a
	// centering iterate satisfies it. Phase I uses this to stop once a
	// strictly feasible point is found.
	StopEarly func(x linalg.Vector) bool
	// Interrupt, if non-nil, is polled once per Newton iteration; a
	// non-nil return aborts the solve with that error. Context
	// cancellation plumbs through here so a caller's deadline reaches
	// into the innermost centering loop.
	Interrupt func() error
}

// DefaultOptions returns the tuning used throughout the project.
func DefaultOptions() Options {
	return Options{
		Mu:        20,
		Tol:       1e-8,
		NewtonTol: 1e-10,
		MaxNewton: 200,
		MaxOuter:  100,
		Alpha:     0.1,
		Beta:      0.5,
		T0:        1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Mu <= 1 {
		o.Mu = d.Mu
	}
	if o.Tol <= 0 {
		o.Tol = d.Tol
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = d.NewtonTol
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = d.MaxNewton
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = d.MaxOuter
	}
	if o.Alpha <= 0 || o.Alpha >= 0.5 {
		o.Alpha = d.Alpha
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = d.Beta
	}
	if o.T0 <= 0 {
		o.T0 = d.T0
	}
	return o
}

// Result reports a barrier solve.
type Result struct {
	// X is the final (approximately optimal) point.
	X linalg.Vector
	// Objective is f0(X).
	Objective float64
	// Gap is the final duality-gap bound m/t.
	Gap float64
	// Lambda holds the recovered dual variables λ_i = −1/(t·fi(X)).
	Lambda linalg.Vector
	// NewtonIters counts total Newton iterations across all centerings.
	NewtonIters int
	// OuterIters counts barrier (centering) stages.
	OuterIters int
	// StoppedEarly reports whether Options.StopEarly ended the solve.
	StoppedEarly bool
}

// KKTResidual returns ‖∇f0(X) + Σ λ_i ∇fi(X)‖∞, the stationarity
// residual of the recovered primal-dual pair.
func (r *Result) KKTResidual(p *Problem) float64 {
	n := p.Dim()
	g := linalg.NewVector(n)
	total := linalg.NewVector(n)
	p.Objective.Gradient(total, r.X)
	for i, c := range p.Constraints {
		c.Gradient(g, r.X)
		total.AddScaled(total, r.Lambda[i], g)
	}
	return total.NormInf()
}

// Barrier minimizes the problem from the strictly feasible start x0
// using the log-barrier interior-point method (Boyd & Vandenberghe,
// Algorithm 11.1). It returns ErrNumerical if centering stalls.
func Barrier(p *Problem, x0 linalg.Vector, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	n := p.Dim()
	if len(x0) != n {
		return nil, fmt.Errorf("solver: start has dim %d, want %d", len(x0), n)
	}
	if !p.IsStrictlyFeasible(x0) {
		return nil, fmt.Errorf("solver: start is not strictly feasible (max violation %v); run PhaseI first", p.MaxViolation(x0))
	}

	x := x0.Clone()
	t := o.T0
	m := float64(len(p.Constraints))
	res := &Result{}

	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIters++
		iters, stopped, err := center(p, x, t, o)
		res.NewtonIters += iters
		if err != nil {
			return nil, err
		}
		if stopped {
			res.StoppedEarly = true
			break
		}
		if len(p.Constraints) == 0 || m/t < o.Tol {
			break
		}
		t *= o.Mu
	}

	res.X = x
	res.Objective = p.Objective.Value(x)
	if len(p.Constraints) > 0 {
		res.Gap = m / t
	}
	res.Lambda = linalg.NewVector(len(p.Constraints))
	for i, c := range p.Constraints {
		if v := c.Value(x); v < 0 {
			res.Lambda[i] = -1 / (t * v)
		}
	}
	return res, nil
}

// center minimizes t·f0(x) + φ(x) over the strictly feasible set by
// damped Newton, updating x in place. It returns the iteration count
// and whether StopEarly fired.
func center(p *Problem, x linalg.Vector, t float64, o Options) (int, bool, error) {
	n := p.Dim()
	grad := linalg.NewVector(n)
	gi := linalg.NewVector(n)
	hess := linalg.NewMatrix(n, n)
	dx := linalg.NewVector(n)
	xTrial := linalg.NewVector(n)

	for iter := 1; iter <= o.MaxNewton; iter++ {
		if o.Interrupt != nil {
			if err := o.Interrupt(); err != nil {
				return iter - 1, false, err
			}
		}
		if o.StopEarly != nil && o.StopEarly(x) {
			return iter - 1, true, nil
		}
		// Assemble gradient and Hessian of t·f0 + φ.
		val, ok := assemble(p, x, t, grad, gi, hess)
		if !ok {
			return iter, false, fmt.Errorf("%w: iterate left the domain", ErrNumerical)
		}

		// Newton direction: solve H dx = -grad, regularizing if needed.
		if !newtonDirection(hess, grad, dx) {
			return iter, false, fmt.Errorf("%w: KKT system unsolvable", ErrNumerical)
		}

		// Newton decrement: λ² = -gradᵀdx (dx solves H dx = -grad).
		lambda2 := -grad.Dot(dx)
		if lambda2 < 0 {
			// Indefiniteness from regularization round-off; treat as done.
			lambda2 = 0
		}
		if lambda2/2 <= o.NewtonTol {
			return iter, false, nil
		}

		// Backtracking line search on t·f0 + φ, keeping strict feasibility.
		step := 1.0
		improved := false
		for ls := 0; ls < 60; ls++ {
			xTrial.AddScaled(x, step, dx)
			if p.IsStrictlyFeasible(xTrial) {
				if vt, okT := barrierValue(p, xTrial, t); okT && vt <= val-o.Alpha*step*lambda2 {
					copy(x, xTrial)
					improved = true
					break
				}
			}
			step *= o.Beta
		}
		if !improved {
			// No descent at the smallest step: declare convergence if the
			// decrement is already tiny, otherwise report failure.
			if lambda2/2 <= math.Sqrt(o.NewtonTol) {
				return iter, false, nil
			}
			return iter, false, fmt.Errorf("%w: line search failed (decrement %v)", ErrNumerical, lambda2/2)
		}
	}
	return o.MaxNewton, false, nil
}

// assemble computes value, gradient and Hessian of t·f0 + φ at x.
// It returns ok=false if x is outside the barrier domain.
func assemble(p *Problem, x linalg.Vector, t float64, grad, gi linalg.Vector, hess *linalg.Matrix) (float64, bool) {
	n := p.Dim()
	val := t * p.Objective.Value(x)
	p.Objective.Gradient(grad, x)
	grad.Scale(t, grad)
	for i := 0; i < n; i++ {
		row := hess.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	p.Objective.AddHessian(hess, t, x)

	for _, c := range p.Constraints {
		fi := c.Value(x)
		if fi >= 0 {
			return 0, false
		}
		val -= math.Log(-fi)
		inv := -1 / fi // positive
		scale := 1 / (fi * fi)

		// Sparse fast path: an Affine with a nonzero index list only
		// contributes to those rows/columns.
		if a, ok := c.(*Affine); ok && a.NZ != nil {
			for _, r := range a.NZ {
				grad[r] += inv * a.A[r]
				gr := scale * a.A[r]
				row := hess.Row(r)
				for _, cc := range a.NZ {
					row[cc] += gr * a.A[cc]
				}
			}
			continue
		}

		c.Gradient(gi, x)
		grad.AddScaled(grad, inv, gi)
		// Hessian: (∇fi ∇fiᵀ)/fi² − ∇²fi/fi.
		for r := 0; r < n; r++ {
			gr := gi[r]
			if gr == 0 {
				continue
			}
			row := hess.Row(r)
			for cIdx := 0; cIdx < n; cIdx++ {
				row[cIdx] += scale * gr * gi[cIdx]
			}
		}
		c.AddHessian(hess, inv, x)
	}
	return val, true
}

// barrierValue computes t·f0 + φ at x, with ok=false outside the domain.
func barrierValue(p *Problem, x linalg.Vector, t float64) (float64, bool) {
	val := t * p.Objective.Value(x)
	for _, c := range p.Constraints {
		fi := c.Value(x)
		if fi >= 0 {
			return 0, false
		}
		val -= math.Log(-fi)
	}
	return val, true
}

// newtonDirection solves H dx = -g by Cholesky, retrying with a growing
// diagonal regularizer when H is numerically singular. Returns false
// only if even heavy regularization fails.
func newtonDirection(h *linalg.Matrix, g, dx linalg.Vector) bool {
	n := len(g)
	rhs := linalg.NewVector(n).Scale(-1, g)
	reg := 0.0
	scale := 1 + h.MaxAbs()
	for attempt := 0; attempt < 8; attempt++ {
		trial := h
		if reg > 0 {
			trial = h.Clone()
			for i := 0; i < n; i++ {
				trial.AddAt(i, i, reg)
			}
		}
		if f, err := linalg.Cholesky(trial); err == nil {
			if sol, err := f.Solve(rhs); err == nil && sol.AllFinite() {
				copy(dx, sol)
				return true
			}
		}
		if reg == 0 {
			reg = 1e-12 * scale
		} else {
			reg *= 1e3
		}
	}
	return false
}
