package solver

import (
	"fmt"

	"protemp/internal/linalg"
)

// HessianPattern is the compiled arrow-structure hint of a Problem over
// the variable split x = [f (nf entries) | dense block (nd entries)]:
// every constraint is classified once, at plan-compile time, into one
// of five shapes whose barrier Hessian contributions land in closed
// positions of a linalg.ArrowKKT —
//
//   - fDiag:    affine with one nonzero in f (frequency box rows) → f diagonal
//   - rank1:    affine with several nonzeros, all in f (the workload
//     constraint) → the single rank-one border; at most one allowed
//   - couple:   diagonal quadratic touching at most one f and one dense
//     variable (the power-frequency couplings) → f diagonal, dense
//     diagonal and one off-diagonal coefficient
//   - dDiag:    affine with one nonzero in the dense block (power box
//     rows) → dense diagonal
//   - row:      affine with several nonzeros, all in the dense block
//     (temperature rows, gradient pairs) → one row of the shared G
//     matrix, accumulated into the dense block by blocked SYRK
//
// Anything else fails compilation and the solver stays on the dense
// path. A pattern is compiled against one materialized Problem but is
// valid for every sibling instance of the same plan: the coefficient
// vectors are shared (matches verifies data-pointer identity) while the
// offsets B are read live from the instance's constraints, which is
// exactly what the per-window rewrite mutates.
type HessianPattern struct {
	dim, nf, nd int
	m           int // constraint count the pattern was compiled for

	objective Func          // compiled-against objective (identity-checked)
	objDiag   linalg.Vector // objective curvature (aliases the objective's D), nil when affine

	fDiag   []patScalar
	dDiag   []patScalar
	rank1   *patRank1
	couples []patCouple
	rows    []patRow

	// g holds the dense-block coefficients of the row constraints,
	// aligned with rows; shared read-only by every workspace.
	g *linalg.Matrix

	// coupleCol maps each f variable to its coupled dense column (−1
	// when uncoupled) — the ArrowKKT Col vector, shared read-only.
	coupleCol []int
}

// patScalar is a single-nonzero affine constraint: index within its
// block, coefficient, and the identity of the compiled A vector.
type patScalar struct {
	ci   int
	idx  int
	a    float64
	aPtr *float64
}

// patRank1 is the all-f multi-nonzero affine (workload) constraint.
type patRank1 struct {
	ci   int
	nz   []int
	a    linalg.Vector
	aPtr *float64
}

// patCouple is a diagonal quadratic with at most one f and one dense
// support variable.
type patCouple struct {
	ci       int
	fi, dcol int // f index and dense-local column, −1 when absent
	df, dd   float64
	af, ad   float64
	b        float64
	dPtr     *float64
	aPtr     *float64
}

// patRow is one dense-block row constraint, aligned with a row of g.
type patRow struct {
	ci   int
	aPtr *float64
}

// NumRows reports the number of SYRK-batched row constraints, for
// sizing diagnostics.
func (hp *HessianPattern) NumRows() int { return len(hp.rows) }

// CompileHessianPattern classifies p's constraints against the f/dense
// split [0,nf) | [nf,dim). It returns an error when any constraint (or
// the objective) falls outside the arrow shapes above; callers treat
// that as "stay dense", not as a solve failure.
func CompileHessianPattern(p *Problem, nf int) (*HessianPattern, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dim := p.Dim()
	if nf < 0 || nf > dim {
		return nil, fmt.Errorf("solver: f block size %d outside [0, %d]", nf, dim)
	}
	hp := &HessianPattern{
		dim: dim, nf: nf, nd: dim - nf,
		m:         len(p.Constraints),
		objective: p.Objective,
	}
	switch o := p.Objective.(type) {
	case *Affine:
		// No curvature.
	case *DiagQuadratic:
		hp.objDiag = o.D
	default:
		return nil, fmt.Errorf("solver: objective %T has no compiled Hessian shape", p.Objective)
	}
	hp.coupleCol = make([]int, nf)
	for i := range hp.coupleCol {
		hp.coupleCol[i] = -1
	}

	for ci, c := range p.Constraints {
		switch c := c.(type) {
		case *Affine:
			nz := c.NZ
			if nz == nil {
				for i, v := range c.A {
					if v != 0 {
						nz = append(nz, i)
					}
				}
			}
			if len(nz) == 0 {
				return nil, fmt.Errorf("solver: constraint %d is constant", ci)
			}
			nF := 0
			for _, i := range nz {
				if i < nf {
					nF++
				}
			}
			switch {
			case nF == len(nz) && len(nz) == 1:
				hp.fDiag = append(hp.fDiag, patScalar{ci: ci, idx: nz[0], a: c.A[nz[0]], aPtr: &c.A[0]})
			case nF == len(nz):
				if hp.rank1 != nil {
					return nil, fmt.Errorf("solver: constraint %d is a second f-block rank-one (only one border supported)", ci)
				}
				hp.rank1 = &patRank1{ci: ci, nz: nz, a: c.A, aPtr: &c.A[0]}
			case nF == 0 && len(nz) == 1:
				hp.dDiag = append(hp.dDiag, patScalar{ci: ci, idx: nz[0] - nf, a: c.A[nz[0]], aPtr: &c.A[0]})
			case nF == 0:
				hp.rows = append(hp.rows, patRow{ci: ci, aPtr: &c.A[0]})
			default:
				return nil, fmt.Errorf("solver: constraint %d mixes f and dense nonzeros", ci)
			}
		case *DiagQuadratic:
			fi, dcol := -1, -1
			for i := range c.A {
				if c.D[i] == 0 && c.A[i] == 0 {
					continue
				}
				if i < nf {
					if fi >= 0 {
						return nil, fmt.Errorf("solver: constraint %d touches two f variables", ci)
					}
					fi = i
				} else {
					if dcol >= 0 {
						return nil, fmt.Errorf("solver: constraint %d touches two dense variables", ci)
					}
					dcol = i - nf
				}
			}
			pc := patCouple{ci: ci, fi: fi, dcol: dcol, b: c.B, dPtr: &c.D[0], aPtr: &c.A[0]}
			if fi >= 0 {
				pc.df, pc.af = c.D[fi], c.A[fi]
			}
			if dcol >= 0 {
				pc.dd, pc.ad = c.D[nf+dcol], c.A[nf+dcol]
			}
			if fi >= 0 && dcol >= 0 {
				if prev := hp.coupleCol[fi]; prev >= 0 && prev != dcol {
					return nil, fmt.Errorf("solver: f variable %d couples to two dense columns", fi)
				}
				hp.coupleCol[fi] = dcol
			}
			hp.couples = append(hp.couples, pc)
		default:
			return nil, fmt.Errorf("solver: constraint %d (%T) has no compiled Hessian shape", ci, c)
		}
	}

	hp.g = linalg.NewMatrix(len(hp.rows), hp.nd)
	for r, pr := range hp.rows {
		a := p.Constraints[pr.ci].(*Affine).A
		copy(hp.g.Row(r), a[nf:])
	}
	return hp, nil
}

// Matches reports whether the pattern still describes p — the same
// check BarrierWS runs before selecting the structured backend.
// Callers compiling a pattern once and reusing it across problem
// instances can assert the hint is still live (a false return means
// every solve silently takes the dense path).
func (hp *HessianPattern) Matches(p *Problem) bool { return hp.matches(p) }

// matches reports whether the pattern still describes p: same shape,
// same objective, and every classified constraint at its compiled index
// with the identical coefficient storage. Sibling instances of one
// compiled plan share coefficient vectors, so the check is a pointer
// walk — O(m) with no arithmetic — done once per solve, and any drift
// (a Phase-I augmentation, a hand-built problem) falls back to dense.
func (hp *HessianPattern) matches(p *Problem) bool {
	if p.Dim() != hp.dim || len(p.Constraints) != hp.m || p.Objective != hp.objective {
		return false
	}
	affineAt := func(ci int, aPtr *float64) bool {
		c, ok := p.Constraints[ci].(*Affine)
		return ok && len(c.A) > 0 && &c.A[0] == aPtr
	}
	for i := range hp.fDiag {
		if !affineAt(hp.fDiag[i].ci, hp.fDiag[i].aPtr) {
			return false
		}
	}
	for i := range hp.dDiag {
		if !affineAt(hp.dDiag[i].ci, hp.dDiag[i].aPtr) {
			return false
		}
	}
	if hp.rank1 != nil && !affineAt(hp.rank1.ci, hp.rank1.aPtr) {
		return false
	}
	for i := range hp.rows {
		if !affineAt(hp.rows[i].ci, hp.rows[i].aPtr) {
			return false
		}
	}
	for i := range hp.couples {
		pc := &hp.couples[i]
		c, ok := p.Constraints[pc.ci].(*DiagQuadratic)
		if !ok || &c.D[0] != pc.dPtr || &c.A[0] != pc.aPtr || c.B != pc.b {
			return false
		}
	}
	return true
}
