package solver

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectMaxBasic(t *testing.T) {
	// Feasible iff v <= π.
	v, ok := BisectMax(0, 10, 1e-9, func(x float64) bool { return x <= math.Pi })
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(v-math.Pi) > 1e-8 {
		t.Fatalf("v = %v, want π", v)
	}
}

func TestBisectMaxAllFeasible(t *testing.T) {
	v, ok := BisectMax(0, 5, 1e-9, func(x float64) bool { return true })
	if !ok || v != 5 {
		t.Fatalf("v = %v, ok = %v", v, ok)
	}
}

func TestBisectMaxNoneFeasible(t *testing.T) {
	if _, ok := BisectMax(0, 5, 1e-9, func(x float64) bool { return false }); ok {
		t.Fatal("ok on infeasible range")
	}
}

func TestBisectMaxDegenerateRange(t *testing.T) {
	if _, ok := BisectMax(5, 0, 1e-9, func(x float64) bool { return true }); ok {
		t.Fatal("ok on inverted range")
	}
	if _, ok := BisectMax(math.NaN(), 1, 1e-9, func(x float64) bool { return true }); ok {
		t.Fatal("ok on NaN bound")
	}
	v, ok := BisectMax(2, 2, 1e-9, func(x float64) bool { return true })
	if !ok || v != 2 {
		t.Fatalf("point range: v = %v, ok = %v", v, ok)
	}
}

func TestBisectMaxDefaultTol(t *testing.T) {
	v, ok := BisectMax(0, 1, 0, func(x float64) bool { return x <= 0.5 })
	if !ok || math.Abs(v-0.5) > 1e-9 {
		t.Fatalf("v = %v", v)
	}
}

// Property: the returned value is feasible and v+2·tol is not (for
// thresholds strictly inside the range).
func TestBisectMaxProperty(t *testing.T) {
	f := func(raw float64) bool {
		thr := math.Mod(math.Abs(raw), 0.98) + 0.01 // in (0.01, 0.99)
		const tol = 1e-9
		feasible := func(x float64) bool { return x <= thr }
		v, ok := BisectMax(0, 1, tol, feasible)
		if !ok {
			return false
		}
		return feasible(v) && !feasible(v+2*tol+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectRoot(t *testing.T) {
	r, err := BisectRoot(0, 4, 1e-12, func(x float64) float64 { return x*x - 2 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %v, want √2", r)
	}
}

func TestBisectRootEndpoints(t *testing.T) {
	r, err := BisectRoot(0, 1, 1e-12, func(x float64) float64 { return x })
	if err != nil || r != 0 {
		t.Fatalf("r = %v, err = %v", r, err)
	}
	r, err = BisectRoot(-1, 0, 1e-12, func(x float64) float64 { return x })
	if err != nil || r != 0 {
		t.Fatalf("r = %v, err = %v", r, err)
	}
}

func TestBisectRootNotBracketed(t *testing.T) {
	if _, err := BisectRoot(1, 2, 1e-12, func(x float64) float64 { return x }); err == nil {
		t.Fatal("unbracketed root accepted")
	}
}

func TestBisectRootDecreasing(t *testing.T) {
	r, err := BisectRoot(0, 2, 1e-12, func(x float64) float64 { return 1 - x })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Fatalf("root = %v, want 1", r)
	}
}
