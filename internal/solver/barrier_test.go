package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"protemp/internal/linalg"
)

// boxProblem: minimize Σ (x_j − c_j)² subject to 0 <= x <= 1.
// Analytic optimum: x_j = clamp(c_j, 0, 1).
func boxProblem(t *testing.T, c linalg.Vector) *Problem {
	t.Helper()
	n := len(c)
	obj, err := NewDiagQuadratic(
		linalg.Constant(n, 1),
		linalg.NewVector(n).Scale(-2, c),
		c.Dot(c),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{Objective: obj}
	for j := 0; j < n; j++ {
		lo := linalg.NewVector(n)
		lo[j] = -1 // -x_j <= 0
		hi := linalg.NewVector(n)
		hi[j] = 1 // x_j - 1 <= 0
		p.Constraints = append(p.Constraints,
			&Affine{A: lo},
			&Affine{A: hi, B: -1},
		)
	}
	return p
}

func TestBarrierUnconstrainedQuadratic(t *testing.T) {
	c := linalg.VectorOf(1, -2, 3)
	obj, _ := NewDiagQuadratic(linalg.Constant(3, 1), linalg.NewVector(3).Scale(-2, c), 0)
	p := &Problem{Objective: obj}
	res, err := Barrier(p, linalg.NewVector(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(c, 1e-6) {
		t.Fatalf("X = %v, want %v", res.X, c)
	}
}

func TestBarrierBoxInteriorOptimum(t *testing.T) {
	c := linalg.VectorOf(0.3, 0.6)
	p := boxProblem(t, c)
	res, err := Barrier(p, linalg.Constant(2, 0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(c, 1e-5) {
		t.Fatalf("X = %v, want %v", res.X, c)
	}
	if res.Gap > 1e-7 {
		t.Fatalf("gap = %v", res.Gap)
	}
}

func TestBarrierBoxActiveConstraint(t *testing.T) {
	// Optimum clamps to the boundary: c outside the box.
	c := linalg.VectorOf(2, -1, 0.5)
	p := boxProblem(t, c)
	res, err := Barrier(p, linalg.Constant(3, 0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.VectorOf(1, 0, 0.5)
	if !res.X.Equal(want, 1e-4) {
		t.Fatalf("X = %v, want %v", res.X, want)
	}
}

func TestBarrierLinearObjectiveOnBox(t *testing.T) {
	// minimize Σ x subject to x >= 1 (per coordinate), x <= 3.
	n := 4
	p := &Problem{Objective: &Affine{A: linalg.Constant(n, 1)}}
	for j := 0; j < n; j++ {
		lo := linalg.NewVector(n)
		lo[j] = -1
		hi := linalg.NewVector(n)
		hi[j] = 1
		p.Constraints = append(p.Constraints,
			&Affine{A: lo, B: 1},  // 1 - x_j <= 0
			&Affine{A: hi, B: -3}, // x_j - 3 <= 0
		)
	}
	res, err := Barrier(p, linalg.Constant(n, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(linalg.Constant(n, 1), 1e-5) {
		t.Fatalf("X = %v, want all ones", res.X)
	}
	if math.Abs(res.Objective-4) > 1e-4 {
		t.Fatalf("objective = %v, want 4", res.Objective)
	}
}

func TestBarrierQuadraticConstraint(t *testing.T) {
	// minimize -x - y ... rewritten convex: maximize x+y inside the
	// parabola region y + x² <= 1 with y >= 0, x >= 0.
	// At the optimum x solves max x + (1 - x²): derivative 1 - 2x = 0 =>
	// x = 0.5, y = 0.75.
	obj := &Affine{A: linalg.VectorOf(-1, -1)}
	quad, err := NewDiagQuadratic(linalg.VectorOf(1, 0), linalg.VectorOf(0, 1), -1)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Objective: obj,
		Constraints: []Func{
			quad, // x² + y - 1 <= 0
			&Affine{A: linalg.VectorOf(-1, 0)},
			&Affine{A: linalg.VectorOf(0, -1)},
		},
	}
	res, err := Barrier(p, linalg.VectorOf(0.1, 0.1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(linalg.VectorOf(0.5, 0.75), 1e-5) {
		t.Fatalf("X = %v, want (0.5, 0.75)", res.X)
	}
}

func TestBarrierKKTResidual(t *testing.T) {
	c := linalg.VectorOf(2, -1)
	p := boxProblem(t, c)
	res, err := Barrier(p, linalg.Constant(2, 0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.KKTResidual(p); r > 1e-4 {
		t.Fatalf("KKT residual %v", r)
	}
	// Duals of inactive constraints vanish; actives are positive.
	// Constraint order: (-x0<=0, x0-1<=0, -x1<=0, x1-1<=0).
	if res.Lambda[1] < 1e-3 {
		t.Errorf("active upper bound on x0 has tiny dual %v", res.Lambda[1])
	}
	if res.Lambda[0] > 1e-3 {
		t.Errorf("inactive lower bound on x0 has large dual %v", res.Lambda[0])
	}
}

func TestBarrierRejectsInfeasibleStart(t *testing.T) {
	p := boxProblem(t, linalg.VectorOf(0.5))
	if _, err := Barrier(p, linalg.VectorOf(2), Options{}); err == nil {
		t.Fatal("infeasible start accepted")
	}
}

func TestBarrierRejectsBadProblem(t *testing.T) {
	if _, err := Barrier(&Problem{}, linalg.VectorOf(1), Options{}); err == nil {
		t.Fatal("nil objective accepted")
	}
	p := &Problem{
		Objective:   &Affine{A: linalg.VectorOf(1, 1)},
		Constraints: []Func{&Affine{A: linalg.VectorOf(1)}},
	}
	if _, err := Barrier(p, linalg.VectorOf(0, 0), Options{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	good := boxProblem(t, linalg.VectorOf(0.5))
	if _, err := Barrier(good, linalg.VectorOf(0.5, 0.5), Options{}); err == nil {
		t.Fatal("start dimension mismatch accepted")
	}
}

func TestNewDiagQuadraticRejectsNonConvex(t *testing.T) {
	if _, err := NewDiagQuadratic(linalg.VectorOf(-1), linalg.VectorOf(0), 0); err == nil {
		t.Fatal("negative curvature accepted")
	}
	if _, err := NewDiagQuadratic(linalg.VectorOf(1, 1), linalg.VectorOf(0), 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

// Property: no random feasible perturbation of the reported optimum
// achieves a lower objective (first-order optimality, sampled).
func TestBarrierOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(3)
		c := linalg.NewVector(n)
		for j := range c {
			c[j] = rng.Float64()*3 - 1 // may fall outside the box
		}
		p := boxProblem(t, c)
		res, err := Barrier(p, linalg.Constant(n, 0.5), Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 200; probe++ {
			y := res.X.Clone()
			for j := range y {
				y[j] += rng.NormFloat64() * 0.05
			}
			if !p.IsStrictlyFeasible(y) {
				continue
			}
			if p.Objective.Value(y) < res.Objective-1e-6 {
				t.Fatalf("trial %d: feasible point beats optimum: %v < %v",
					trial, p.Objective.Value(y), res.Objective)
			}
		}
	}
}

func TestMaxViolation(t *testing.T) {
	p := boxProblem(t, linalg.VectorOf(0.5))
	if v := p.MaxViolation(linalg.VectorOf(0.5)); v >= 0 {
		t.Errorf("interior point has violation %v", v)
	}
	if v := p.MaxViolation(linalg.VectorOf(2)); math.Abs(v-1) > 1e-12 {
		t.Errorf("violation = %v, want 1", v)
	}
	empty := &Problem{Objective: &Affine{A: linalg.VectorOf(1)}}
	if empty.MaxViolation(linalg.VectorOf(5)) != 0 {
		t.Error("no-constraint violation should be 0")
	}
}

func TestErrInfeasibleSentinel(t *testing.T) {
	err := PhaseIInfeasibleError(t)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error %v not ErrInfeasible", err)
	}
}

// PhaseIInfeasibleError builds an infeasible system (x <= -1, x >= 1)
// and returns PhaseI's error; shared with the sentinel test above.
func PhaseIInfeasibleError(t *testing.T) error {
	t.Helper()
	p := &Problem{
		Objective: &Affine{A: linalg.VectorOf(1)},
		Constraints: []Func{
			&Affine{A: linalg.VectorOf(1), B: 1},  // x + 1 <= 0
			&Affine{A: linalg.VectorOf(-1), B: 1}, // 1 - x <= 0
		},
	}
	_, err := PhaseI(p, linalg.VectorOf(0), Options{})
	if err == nil {
		t.Fatal("infeasible system accepted by PhaseI")
	}
	return err
}
