// Package solver implements the convex optimization machinery the paper
// delegates to CVX ([25], [27]): a log-barrier interior-point method
// with damped Newton centering and backtracking line search, a Phase-I
// stage that either finds a strictly feasible point or certifies
// infeasibility, and a monotone bisection used to cross-check the
// scalar (uniform-frequency) problems.
//
// Problems are smooth convex programs
//
//	minimize    f0(x)
//	subject to  fi(x) <= 0,  i = 1..m
//
// where every fi exposes value, gradient and Hessian. The Pro-Temp
// formulation only needs affine and diagonal-quadratic functions, both
// provided here, but the solver accepts any smooth convex Func.
package solver

import (
	"errors"
	"fmt"

	"protemp/internal/linalg"
)

// Func is a smooth convex function R^n -> R.
type Func interface {
	// Dim returns the input dimension n.
	Dim() int
	// Value returns f(x).
	Value(x linalg.Vector) float64
	// Gradient writes ∇f(x) into g (overwriting it).
	Gradient(g, x linalg.Vector)
	// AddHessian accumulates w·∇²f(x) into h.
	AddHessian(h *linalg.Matrix, w float64, x linalg.Vector)
}

// Affine is f(x) = aᵀx + b.
//
// NZ optionally lists the indices of the nonzero entries of A. When
// set, the barrier solver evaluates the function and accumulates its
// rank-one barrier Hessian over those indices only — Pro-Temp's
// temperature constraints touch just the power half of the variables,
// which makes the Newton assembly several times cheaper on many-core
// problems. A nil NZ means dense.
type Affine struct {
	A  linalg.Vector
	B  float64
	NZ []int
}

// NewSparseAffine builds an Affine with NZ computed from A.
func NewSparseAffine(a linalg.Vector, b float64) *Affine {
	f := &Affine{A: a, B: b}
	for i, v := range a {
		if v != 0 {
			f.NZ = append(f.NZ, i)
		}
	}
	return f
}

// Dim implements Func.
func (f *Affine) Dim() int { return len(f.A) }

// Value implements Func.
func (f *Affine) Value(x linalg.Vector) float64 {
	if f.NZ != nil {
		s := f.B
		for _, i := range f.NZ {
			s += f.A[i] * x[i]
		}
		return s
	}
	return f.A.Dot(x) + f.B
}

// Gradient implements Func.
func (f *Affine) Gradient(g, x linalg.Vector) { copy(g, f.A) }

// AddHessian implements Func (the Hessian of an affine map is zero).
func (f *Affine) AddHessian(h *linalg.Matrix, w float64, x linalg.Vector) {}

// DiagQuadratic is f(x) = Σ_j d_j·x_j² + aᵀx + b with d >= 0, the shape
// of every Pro-Temp temperature constraint (temperature is affine in
// power, power is a nonnegative multiple of frequency squared) and of
// the power objective.
type DiagQuadratic struct {
	D linalg.Vector // nonnegative curvature per coordinate
	A linalg.Vector
	B float64
}

// NewDiagQuadratic validates curvature nonnegativity (convexity).
func NewDiagQuadratic(d, a linalg.Vector, b float64) (*DiagQuadratic, error) {
	if len(d) != len(a) {
		return nil, fmt.Errorf("solver: curvature dim %d != linear dim %d", len(d), len(a))
	}
	for j, dj := range d {
		if dj < 0 {
			return nil, fmt.Errorf("solver: negative curvature d[%d] = %v makes the problem non-convex", j, dj)
		}
	}
	return &DiagQuadratic{D: d, A: a, B: b}, nil
}

// Dim implements Func.
func (f *DiagQuadratic) Dim() int { return len(f.A) }

// Value implements Func.
func (f *DiagQuadratic) Value(x linalg.Vector) float64 {
	s := f.B
	for j, xj := range x {
		s += f.D[j]*xj*xj + f.A[j]*xj
	}
	return s
}

// Gradient implements Func.
func (f *DiagQuadratic) Gradient(g, x linalg.Vector) {
	for j, xj := range x {
		g[j] = 2*f.D[j]*xj + f.A[j]
	}
}

// AddHessian implements Func.
func (f *DiagQuadratic) AddHessian(h *linalg.Matrix, w float64, x linalg.Vector) {
	for j, dj := range f.D {
		if dj != 0 {
			h.AddAt(j, j, 2*w*dj)
		}
	}
}

// Problem is a smooth convex program: minimize Objective subject to
// every Constraints[i](x) <= 0.
//
// Pattern, when non-nil, is a structure hint: the compiled arrow shape
// of the barrier Hessian (see CompileHessianPattern). The solver
// verifies it against the problem at solve start and takes the
// block-elimination fast path on a match, falling back to dense
// assembly and Cholesky otherwise — results are equivalent either way,
// only the cost changes.
type Problem struct {
	Objective   Func
	Constraints []Func
	Pattern     *HessianPattern
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	if p.Objective == nil {
		return errors.New("solver: nil objective")
	}
	n := p.Objective.Dim()
	if n <= 0 {
		return fmt.Errorf("solver: objective dimension %d", n)
	}
	for i, c := range p.Constraints {
		if c == nil {
			return fmt.Errorf("solver: nil constraint %d", i)
		}
		if c.Dim() != n {
			return fmt.Errorf("solver: constraint %d has dim %d, want %d", i, c.Dim(), n)
		}
	}
	return nil
}

// Dim returns the variable dimension.
func (p *Problem) Dim() int { return p.Objective.Dim() }

// MaxViolation returns max_i fi(x) — negative iff x is strictly feasible.
func (p *Problem) MaxViolation(x linalg.Vector) float64 {
	if len(p.Constraints) == 0 {
		return 0
	}
	worst := p.Constraints[0].Value(x)
	for _, c := range p.Constraints[1:] {
		if v := c.Value(x); v > worst {
			worst = v
		}
	}
	return worst
}

// IsStrictlyFeasible reports whether all constraints are strictly
// satisfied at x.
func (p *Problem) IsStrictlyFeasible(x linalg.Vector) bool {
	for _, c := range p.Constraints {
		if c.Value(x) >= 0 {
			return false
		}
	}
	return true
}

// ErrInfeasible is returned when Phase I certifies that no strictly
// feasible point exists. The paper's design flow depends on this
// signal: "If the required frequency point cannot be supported, the
// optimization notifies an infeasible solution."
var ErrInfeasible = errors.New("solver: problem is infeasible")

// ErrNumerical is returned when Newton centering cannot make progress
// (singular KKT system beyond repair, line search collapse).
var ErrNumerical = errors.New("solver: numerical failure")
