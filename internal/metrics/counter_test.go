package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	c.Add(5)
	if got := c.Value(); got != workers*perWorker+5 {
		t.Fatalf("after Add: %d", got)
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("a")
	if reg.Counter("a") != a {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(3)
	reg.Counter("b").Inc()
	snap := reg.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 || len(snap) != 2 {
		t.Fatalf("snapshot %v", snap)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]uint64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["a"] != 3 || decoded["b"] != 1 {
		t.Fatalf("json %v", decoded)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter("shared").Inc()
				reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 800 {
		t.Fatalf("shared = %d", got)
	}
}
