// Package metrics accumulates the quantities the paper's evaluation
// reports: time spent in temperature bands (<80, 80-90, 90-100,
// >100 °C — their Fig. 6), task waiting times (Fig. 7), temperature
// time series (Figs. 1, 2, 8), spatial gradients (Fig. 8, §5.4) and
// violation fractions (Fig. 11).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// DefaultBandEdges are the paper's Fig. 6 band boundaries in °C.
var DefaultBandEdges = []float64{80, 90, 100}

// Bands accumulates occupancy time per temperature band.
type Bands struct {
	Edges []float64 // ascending; len(Edges)+1 bands
	Time  []float64 // seconds accumulated per band
}

// NewBands returns an accumulator over the given ascending edges
// (DefaultBandEdges if nil).
func NewBands(edges []float64) *Bands {
	if edges == nil {
		edges = DefaultBandEdges
	}
	cp := append([]float64(nil), edges...)
	return &Bands{Edges: cp, Time: make([]float64, len(cp)+1)}
}

// Add records dt seconds at the given temperature.
func (b *Bands) Add(temp, dt float64) {
	b.Time[sort.SearchFloat64s(b.Edges, temp)] += dt
}

// Total returns the accumulated time.
func (b *Bands) Total() float64 {
	var s float64
	for _, t := range b.Time {
		s += t
	}
	return s
}

// Fractions returns per-band occupancy normalized to the total time
// (all zeros if nothing was recorded).
func (b *Bands) Fractions() []float64 {
	out := make([]float64, len(b.Time))
	total := b.Total()
	if total == 0 {
		return out
	}
	for i, t := range b.Time {
		out[i] = t / total
	}
	return out
}

// FractionAbove returns the fraction of time spent strictly above the
// given edge (which must be one of the accumulator's edges).
func (b *Bands) FractionAbove(edge float64) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	var s float64
	for i, e := range b.Edges {
		if e >= edge {
			s += sum(b.Time[i+1:])
			break
		}
	}
	return s / total
}

// Merge adds another accumulator's time (edges must match).
func (b *Bands) Merge(o *Bands) error {
	if len(o.Edges) != len(b.Edges) {
		return fmt.Errorf("metrics: merging bands with %d vs %d edges", len(o.Edges), len(b.Edges))
	}
	for i, e := range o.Edges {
		if e != b.Edges[i] {
			return fmt.Errorf("metrics: band edge mismatch at %d: %g vs %g", i, e, b.Edges[i])
		}
	}
	for i, t := range o.Time {
		b.Time[i] += t
	}
	return nil
}

// Labels names the bands, e.g. "<80", "80-90", "90-100", ">100".
func (b *Bands) Labels() []string {
	n := len(b.Edges)
	out := make([]string, n+1)
	for i := 0; i <= n; i++ {
		switch {
		case i == 0:
			out[i] = fmt.Sprintf("<%g", b.Edges[0])
		case i == n:
			out[i] = fmt.Sprintf(">%g", b.Edges[n-1])
		default:
			out[i] = fmt.Sprintf("%g-%g", b.Edges[i-1], b.Edges[i])
		}
	}
	return out
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// WaitStats accumulates task waiting times.
type WaitStats struct {
	n     int
	total float64
	max   float64
	all   []float64
}

// Add records one waiting time (negative values are clamped to zero).
func (w *WaitStats) Add(wait float64) {
	if wait < 0 || math.IsNaN(wait) {
		wait = 0
	}
	w.n++
	w.total += wait
	if wait > w.max {
		w.max = wait
	}
	w.all = append(w.all, wait)
}

// Count returns the number of recorded waits.
func (w *WaitStats) Count() int { return w.n }

// Mean returns the average waiting time (0 when empty).
func (w *WaitStats) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.total / float64(w.n)
}

// Max returns the largest waiting time.
func (w *WaitStats) Max() float64 { return w.max }

// Percentile returns the p-th percentile (p in [0, 100]).
func (w *WaitStats) Percentile(p float64) float64 {
	if w.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), w.all...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GradientStats accumulates the spatial temperature spread across cores.
type GradientStats struct {
	n            int
	totalSpread  float64
	maxSpread    float64
	totalWeights float64
}

// Add records one sample of the core temperature spread (max − min)
// observed for dt seconds.
func (g *GradientStats) Add(spread, dt float64) {
	if spread < 0 || math.IsNaN(spread) {
		return
	}
	g.n++
	g.totalSpread += spread * dt
	g.totalWeights += dt
	if spread > g.maxSpread {
		g.maxSpread = spread
	}
}

// Mean returns the time-weighted mean spread.
func (g *GradientStats) Mean() float64 {
	if g.totalWeights == 0 {
		return 0
	}
	return g.totalSpread / g.totalWeights
}

// Max returns the largest observed spread.
func (g *GradientStats) Max() float64 { return g.maxSpread }

// Series is a sampled time series (for the temperature-trace figures).
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Times) }

// Max returns the largest value (NaN-free assumed), or -Inf when empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest value, or +Inf when empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// WriteCSV emits "time,value" rows for one or more aligned series.
// All series must share their time base.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: no series")
	}
	n := series[0].Len()
	for _, s := range series[1:] {
		if s.Len() != n {
			return fmt.Errorf("metrics: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
	}
	var b strings.Builder
	b.WriteString("time_s")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		b.Reset()
		fmt.Fprintf(&b, "%.6f", series[0].Times[i])
		for _, s := range series {
			fmt.Fprintf(&b, ",%.4f", s.Values[i])
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
