package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("zero-value histogram not empty: count=%d sum=%d mean=%g", h.Count(), h.Sum(), h.Mean())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if q := h.Quantile(p); q != 0 {
			t.Fatalf("empty histogram p%g = %d, want 0", p, q)
		}
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	var h Histogram
	var want uint64
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
		want += v
	}
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	if h.Sum() != want {
		t.Fatalf("sum %d, want %d", h.Sum(), want)
	}
	if got := h.Mean(); math.Abs(got-float64(want)/100) > 1e-9 {
		t.Fatalf("mean %g, want %g", got, float64(want)/100)
	}
}

// TestHistogramQuantileAccuracy checks quantile estimates against the
// exact order statistics of a known distribution: with power-of-two
// buckets and in-bucket interpolation, an estimate must land within
// one octave of the true value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// 1000 samples uniform on [1, 1000].
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{50, 500}, {95, 950}, {99, 990}, {100, 1000},
	} {
		got := float64(h.Quantile(tc.p))
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("p%g = %g, want within an octave of %g", tc.p, got, tc.want)
		}
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(4096)
	}
	// Every sample sits in the [4096, 8191] bucket; any quantile must
	// resolve inside it.
	for _, p := range []float64{1, 50, 99} {
		if q := h.Quantile(p); q < 4096 || q > 8191 {
			t.Fatalf("p%g = %d outside the sample's bucket [4096, 8191]", p, q)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(7)
	if q := h.Quantile(math.NaN()); q > 7 {
		t.Fatalf("NaN percentile = %d, want a clamped in-range answer", q)
	}
	if q := h.Quantile(-5); q != 0 {
		t.Fatalf("p<0 = %d, want the minimum bucket (0)", q)
	}
	if q := h.Quantile(200); q < 4 || q > 7 {
		t.Fatalf("p>100 = %d, want inside the top sample's bucket [4, 7]", q)
	}
}

func TestHistogramObserveDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-42)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative duration observed as sum=%d count=%d, want 0/1", h.Sum(), h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(uint64(g*each + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("count %d, want %d", h.Count(), goroutines*each)
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("step_solve_nanos")
	if r.Histogram("step_solve_nanos") != h {
		t.Fatal("histogram registration not idempotent")
	}
	// A fresh histogram must still export its full key set at zero, so
	// scrapers see a stable schema.
	snap := r.Snapshot()
	for _, k := range []string{
		"step_solve_nanos_count", "step_solve_nanos_sum",
		"step_solve_nanos_p50", "step_solve_nanos_p95", "step_solve_nanos_p99",
	} {
		if v, ok := snap[k]; !ok || v != 0 {
			t.Fatalf("fresh snapshot %s = %d, %v; want 0, true", k, v, ok)
		}
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20) // ~1 ms in nanos
	}
	snap = r.Snapshot()
	if snap["step_solve_nanos_count"] != 100 {
		t.Fatalf("count key %d, want 100", snap["step_solve_nanos_count"])
	}
	if p50 := snap["step_solve_nanos_p50"]; p50 < 1<<20 || p50 > 1<<21 {
		t.Fatalf("p50 key %d outside the observed bucket", p50)
	}
}
