package metrics

import (
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("step_solves").Add(42)
	r.Gauge("uptime_seconds").Set(7)
	r.Gauge("protemp_build_info").Set(1)
	h := r.Histogram("step_solve_nanos")
	h.Observe(1000)
	h.Observe(2000)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot(), r.Kinds(), BuildInfo{Version: "0.8.0", GoVersion: "go1.24"}); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	// Every line must be valid text exposition: a # TYPE comment or a
	// sample `name{labels} value`.
	sample := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9]+$`)
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge)$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if typeLine.MatchString(line) || sample.MatchString(line) {
			continue
		}
		t.Errorf("invalid exposition line: %q", line)
	}

	for _, want := range []string{
		"step_solves 42\n",
		"uptime_seconds 7\n",
		`protemp_build_info{version="0.8.0",goversion="go1.24"} 1` + "\n",
		"# TYPE step_solve_nanos_count counter\n",
		"step_solve_nanos_count 2\n",
		"step_solve_nanos_sum 3000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sorted, so TYPE lines precede their sample and output is stable.
	if strings.Index(out, "# TYPE step_solves counter\n") > strings.Index(out, "step_solves 42\n") {
		t.Errorf("TYPE line does not precede its sample:\n%s", out)
	}
	var sb2 strings.Builder
	if err := WritePrometheus(&sb2, r.Snapshot(), r.Kinds(), BuildInfo{Version: "0.8.0", GoVersion: "go1.24"}); err != nil {
		t.Fatalf("WritePrometheus (second): %v", err)
	}
	if sb2.String() != out {
		t.Errorf("exposition not stable across identical snapshots")
	}
}

func TestWritePrometheusBareBuildInfoWithoutVersion(t *testing.T) {
	snap := map[string]uint64{"protemp_build_info": 1}
	var sb strings.Builder
	if err := WritePrometheus(&sb, snap, nil, BuildInfo{}); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(sb.String(), "protemp_build_info 1\n") {
		t.Errorf("expected bare sample without labels, got:\n%s", sb.String())
	}
}
