package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBandsBasic(t *testing.T) {
	b := NewBands(nil)
	b.Add(75, 1)   // <80
	b.Add(85, 2)   // 80-90
	b.Add(95, 3)   // 90-100
	b.Add(105, 4)  // >100
	b.Add(80, 0.5) // boundary: SearchFloat64s puts 80 into band ">=80"
	if got := b.Total(); math.Abs(got-10.5) > 1e-12 {
		t.Fatalf("Total = %v", got)
	}
	fr := b.Fractions()
	if len(fr) != 4 {
		t.Fatalf("bands = %d, want 4", len(fr))
	}
	if math.Abs(fr[3]-4/10.5) > 1e-12 {
		t.Fatalf("hot fraction = %v", fr[3])
	}
	if math.Abs(b.FractionAbove(100)-4/10.5) > 1e-12 {
		t.Fatalf("FractionAbove(100) = %v", b.FractionAbove(100))
	}
	if math.Abs(b.FractionAbove(90)-7/10.5) > 1e-12 {
		t.Fatalf("FractionAbove(90) = %v", b.FractionAbove(90))
	}
}

func TestBandsEmpty(t *testing.T) {
	b := NewBands(nil)
	for _, f := range b.Fractions() {
		if f != 0 {
			t.Fatal("empty fractions nonzero")
		}
	}
	if b.FractionAbove(100) != 0 {
		t.Fatal("empty FractionAbove nonzero")
	}
}

func TestBandsLabels(t *testing.T) {
	b := NewBands(nil)
	got := b.Labels()
	want := []string{"<80", "80-90", "90-100", ">100"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v", got)
		}
	}
}

func TestBandsMerge(t *testing.T) {
	a := NewBands(nil)
	a.Add(75, 1)
	b := NewBands(nil)
	b.Add(105, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Time[3] != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
	odd := NewBands([]float64{50})
	if err := a.Merge(odd); err == nil {
		t.Fatal("mismatched edges merged")
	}
	shifted := NewBands([]float64{81, 90, 100})
	if err := a.Merge(shifted); err == nil {
		t.Fatal("different edge values merged")
	}
}

func TestBandsCustomEdgesCopied(t *testing.T) {
	edges := []float64{50, 60}
	b := NewBands(edges)
	edges[0] = 99
	if b.Edges[0] != 50 {
		t.Fatal("NewBands aliases caller slice")
	}
}

func TestWaitStats(t *testing.T) {
	var w WaitStats
	if w.Mean() != 0 || w.Max() != 0 || w.Percentile(50) != 0 {
		t.Fatal("empty stats nonzero")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		w.Add(x)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d", w.Count())
	}
	if w.Mean() != 2.5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if w.Max() != 4 {
		t.Fatalf("Max = %v", w.Max())
	}
	if got := w.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := w.Percentile(100); got != 4 {
		t.Fatalf("P100 = %v", got)
	}
	if got := w.Percentile(50); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("P50 = %v", got)
	}
	w.Add(-5) // clamps to 0
	if w.Mean() != 2 {
		t.Fatalf("after clamp Mean = %v", w.Mean())
	}
	w.Add(math.NaN())
	if math.IsNaN(w.Mean()) {
		t.Fatal("NaN leaked into stats")
	}
}

func TestGradientStats(t *testing.T) {
	var g GradientStats
	if g.Mean() != 0 || g.Max() != 0 {
		t.Fatal("empty gradient stats nonzero")
	}
	g.Add(2, 1)
	g.Add(4, 3)
	if math.Abs(g.Mean()-(2+12)/4.0) > 1e-12 {
		t.Fatalf("Mean = %v", g.Mean())
	}
	if g.Max() != 4 {
		t.Fatalf("Max = %v", g.Max())
	}
	g.Add(-1, 1) // ignored
	g.Add(math.NaN(), 1)
	if g.Max() != 4 {
		t.Fatal("invalid samples not ignored")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Fatal("empty series extrema wrong")
	}
	s.Name = "P1"
	s.Append(0, 45)
	s.Append(0.1, 97)
	s.Append(0.2, 63)
	if s.Len() != 3 || s.Max() != 97 || s.Min() != 45 {
		t.Fatalf("series stats wrong: %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "P1"}
	b := &Series{Name: "P2"}
	a.Append(0, 45)
	a.Append(0.1, 50)
	b.Append(0, 46)
	b.Append(0.1, 51)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "time_s,P1,P2" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000000,45.0000,46.0000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf); err == nil {
		t.Fatal("no series accepted")
	}
	a := &Series{Name: "a"}
	a.Append(0, 1)
	b := &Series{Name: "b"}
	if err := WriteCSV(&buf, a, b); err == nil {
		t.Fatal("misaligned series accepted")
	}
}
