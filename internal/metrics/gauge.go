package metrics

import "sync/atomic"

// Gauge is an instantaneous level — a value that moves both ways, in
// contrast to the monotonic Counter: active sessions, in-flight fleet
// runs, queue depths. The zero value is ready to use; a Gauge must not
// be copied after first use. Negative levels are representable (Dec
// below zero is not clamped) but are reported as zero by Registry
// snapshots, whose wire format is unsigned.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the level by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge returns the gauge registered under name, creating it on first
// use. Gauges and counters share the registry's snapshot namespace, so
// a name must not be used for both.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}
