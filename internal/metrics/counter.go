package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter, the building
// block of the service-side observability surface (cache hits, request
// counts, session lifecycle events). The zero value is ready to use; a
// Counter must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry is a named set of counters, gauges and histograms:
// components register instruments once and a metrics endpoint snapshots
// them all. Safe for concurrent use; registration is idempotent per
// name.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it
// on first use. Histograms share the registry's snapshot namespace
// with counters and gauges (a histogram named h exports h_count, h_sum
// and h_p50/p95/p99), so a name must not be reused across kinds.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns the current value of every registered counter,
// gauge and histogram. Gauge levels below zero are reported as zero:
// the snapshot's wire format is unsigned. Each histogram h contributes
// h_count, h_sum and the latency quantiles h_p50 / h_p95 / h_p99.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		if v := g.Value(); v > 0 {
			out[name] = uint64(v)
		} else {
			out[name] = 0
		}
	}
	for name, h := range r.histograms {
		out[name+"_count"] = h.Count()
		out[name+"_sum"] = h.Sum()
		out[name+"_p50"] = h.Quantile(50)
		out[name+"_p95"] = h.Quantile(95)
		out[name+"_p99"] = h.Quantile(99)
	}
	return out
}

// WriteJSON emits the snapshot as a single JSON object with keys in
// sorted order — encoding/json sorts map keys itself, so the output is
// stable for scraping and tests.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}
