package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrometheusContentType is the content type of the text exposition
// format version 0.0.4 that WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// BuildInfo labels the constant-1 protemp_build_info sample in the
// Prometheus exposition, the convention dashboards use to tell nodes
// (and rollout waves) apart.
type BuildInfo struct {
	Version   string
	GoVersion string
}

// Kinds returns the Prometheus metric kind ("counter" or "gauge") of
// every key Snapshot emits: registered counters, gauges, and each
// histogram's derived keys (its _count/_sum accumulators are counters,
// its quantiles are gauges). A metrics endpoint merges the Kinds of
// every registry it scrapes and hands the result to WritePrometheus.
func (r *Registry) Kinds() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for name := range r.counters {
		out[name] = "counter"
	}
	for name := range r.gauges {
		out[name] = "gauge"
	}
	for name := range r.histograms {
		out[name+"_count"] = "counter"
		out[name+"_sum"] = "counter"
		out[name+"_p50"] = "gauge"
		out[name+"_p95"] = "gauge"
		out[name+"_p99"] = "gauge"
	}
	return out
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line and one sample per metric,
// keys in sorted order so scrapes and tests see stable output. Metric
// names in the registry are already valid Prometheus names (snake_case
// identifiers); values are the same unsigned integers the JSON
// exposition reports, so the two formats never disagree. kinds (see
// Registry.Kinds) types each sample; names it omits fall back to a
// suffix heuristic. When info has a non-empty Version, the
// protemp_build_info sample carries version/goversion labels instead
// of a bare name.
func WritePrometheus(w io.Writer, snap map[string]uint64, kinds map[string]string, info BuildInfo) error {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		typ := kinds[name]
		if typ == "" {
			typ = "gauge"
			if strings.HasSuffix(name, "_count") || strings.HasSuffix(name, "_sum") {
				// Histogram accumulators only grow; anything else unknown
				// is untyped and gauge is the safe default.
				typ = "counter"
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		if name == "protemp_build_info" && info.Version != "" {
			if _, err := fmt.Fprintf(w, "protemp_build_info{version=%q,goversion=%q} %d\n",
				info.Version, info.GoVersion, snap[name]); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap[name]); err != nil {
			return err
		}
	}
	return nil
}
