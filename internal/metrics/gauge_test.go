package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %d", g.Value())
	}
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("after Inc,Inc,Dec: %d", g.Value())
	}
	g.Add(5)
	if g.Value() != 6 {
		t.Fatalf("after Add(5): %d", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("after Set(-3): %d", g.Value())
	}
}

func TestRegistryGaugeIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	if r.Gauge("depth") != r.Gauge("depth") {
		t.Fatal("Gauge not idempotent per name")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Gauge("depth").Inc()
				r.Gauge("depth").Dec()
			}
			r.Gauge("depth").Inc()
		}()
	}
	wg.Wait()
	if got := r.Gauge("depth").Value(); got != 8 {
		t.Fatalf("concurrent gauge = %d, want 8", got)
	}
}

func TestSnapshotIncludesGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("active").Set(2)
	r.Gauge("below").Set(-7)
	snap := r.Snapshot()
	if snap["hits"] != 3 {
		t.Fatalf("hits = %d", snap["hits"])
	}
	if snap["active"] != 2 {
		t.Fatalf("active = %d", snap["active"])
	}
	if snap["below"] != 0 {
		t.Fatalf("negative gauge should snapshot as 0, got %d", snap["below"])
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"hits": 3`, `"active": 2`, `"below": 0`} {
		if !strings.Contains(sb.String(), key) {
			t.Fatalf("WriteJSON output missing %s:\n%s", key, sb.String())
		}
	}
}
