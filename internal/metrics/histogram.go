package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is one bucket per power of two of the observed value
// (bits.Len64 of the sample), plus bucket 0 for exact zeros. 64-bit
// values span 64 octaves.
const histBuckets = 65

// Histogram is a lock-free, fixed-bucket distribution accumulator for
// the latency-style quantities a serving layer reports as quantiles —
// per-window solve times, request durations. Values land in
// power-of-two buckets (one per octave), and quantiles interpolate
// linearly within the winning bucket, so estimates are exact at octave
// boundaries and within the octave's width inside. That resolution is
// the point: a p99 that answers "hundreds of microseconds or tens of
// milliseconds?" without the unbounded memory of exact percentile
// tracking (contrast WaitStats, which records every sample for the
// paper's offline figures).
//
// The zero value is ready to use; a Histogram must not be copied after
// first use. All methods are safe for concurrent use. Snapshots taken
// while observations are in flight are not atomic across buckets — a
// scrape may see a count the sum does not include yet — which is the
// standard monitoring trade-off, not data corruption.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration-like sample, clamping negatives to
// zero so a clock step backwards cannot wrap to a 2^64-scale outlier.
func (h *Histogram) ObserveDuration(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	h.Observe(uint64(nanos))
}

// Merge folds another histogram's observations into h — how per-run
// distributions (a fleet cell's innovation magnitudes) roll up into a
// process-wide instrument. Like a scrape, a merge concurrent with
// observations on o is not atomic across buckets.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for b := range o.buckets {
		if c := o.buckets[b].Load(); c != 0 {
			h.buckets[b].Add(c)
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the p-th percentile (p in [0, 100]) of the
// observed distribution: the target rank's bucket is found by
// cumulative count and the value interpolated linearly across the
// bucket's range. Returns 0 when nothing was observed.
func (h *Histogram) Quantile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank in [1, total]: the k-th smallest observation.
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		c := h.buckets[b].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketBounds(b)
		// Position of the target rank inside this bucket, in (0, 1].
		frac := float64(rank-cum) / float64(c)
		return lo + uint64(frac*float64(hi-lo))
	}
	// Racing observations moved counts between loads; report the top.
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns the value range [lo, hi] covered by bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<b - 1
}
