package metrics

import (
	"sync"
	"testing"
)

// TestRegistryUnderContention drives concurrent Histogram.Observe,
// Registry.Snapshot, Histogram.Merge, counter/gauge traffic and lazy
// registration from many goroutines at once. Run under -race it pins
// that the registry's locking and the histogram's lock-free buckets
// hold up, and it checks the aggregate counts survive the storm.
func TestRegistryUnderContention(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	const (
		writers   = 8
		observers = 4
		perWriter = 2000
	)
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(uint64(i%1000 + 1))
				r.Counter("hits").Inc()
				r.Gauge("level").Set(int64(i))
			}
		}(w)
	}

	// Mergers fold private histograms into the shared one mid-storm.
	for m := 0; m < observers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Histogram
			for i := 0; i < perWriter; i++ {
				local.Observe(uint64(i + 1))
			}
			h.Merge(&local)
		}()
	}

	// Scrapers snapshot (and lazily register) while writers run.
	for s := 0; s < observers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				if snap["lat_count"] > uint64(writers*perWriter+observers*perWriter) {
					t.Errorf("snapshot count %d exceeds total observations", snap["lat_count"])
				}
				_ = r.Kinds()
				r.Histogram("lat").Quantile(99)
				r.Counter("hits").Value()
			}
		}(s)
	}

	wg.Wait()

	want := uint64(writers*perWriter + observers*perWriter)
	if got := h.Count(); got != want {
		t.Errorf("final histogram count = %d, want %d", got, want)
	}
	if got := r.Counter("hits").Value(); got != uint64(writers*perWriter) {
		t.Errorf("final hits = %d, want %d", got, writers*perWriter)
	}
	snap := r.Snapshot()
	if snap["lat_count"] != want {
		t.Errorf("snapshot lat_count = %d, want %d", snap["lat_count"], want)
	}
	if snap["lat_p50"] == 0 {
		t.Errorf("snapshot lat_p50 = 0, want nonzero")
	}
}
