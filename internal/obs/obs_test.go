package obs

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilFlightRecorderIsDisabled(t *testing.T) {
	var f *FlightRecorder
	tr := f.StartStep("online")
	if tr != nil {
		t.Fatalf("nil recorder StartStep = %v, want nil", tr)
	}
	f.EndStep(tr, nil) // must not panic
	if got := f.Traces(); got != nil {
		t.Fatalf("nil recorder Traces = %v, want nil", got)
	}
	if got := f.Trace(1); got != nil {
		t.Fatalf("nil recorder Trace = %v, want nil", got)
	}
	if got := f.Slowest(); got != nil {
		t.Fatalf("nil recorder Slowest = %v, want nil", got)
	}
}

func TestNilPathZeroAllocs(t *testing.T) {
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(100, func() {
		tr := f.StartStep("online")
		f.EndStep(tr, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled flight recorder allocates %.1f per step, want 0", allocs)
	}
}

func TestTraceRecordsSolveAnatomy(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	tr := f.StartStep("online")
	if tr == nil || tr.ID == 0 {
		t.Fatalf("StartStep = %+v, want trace with nonzero ID", tr)
	}

	tr.SolveStart(2.0e9)
	tr.WarmDecision(true, false, "uncentered")
	tr.Centering(10, 7, false, 1000, 2000, 500)
	tr.Centering(100, 5, true, 1100, 2100, 600)
	tr.Rung("heuristic")
	tr.SolveEnd(true, nil)

	tr.SolveStart(1.5e9)
	tr.Rung("bisect")
	tr.SolveEnd(false, errors.New("boom"))
	tr.Fallback("bisect-downgrade")

	f.EndStep(tr, nil)

	if len(tr.Solves) != 2 {
		t.Fatalf("len(Solves) = %d, want 2", len(tr.Solves))
	}
	s0 := tr.Solves[0]
	if s0.Cluster != -1 || !s0.WarmHad || s0.WarmAccepted || s0.WarmReason != "uncentered" {
		t.Errorf("span 0 warm decision = %+v", s0)
	}
	if s0.Rung != "heuristic" || s0.NewtonIters != 12 || len(s0.Centerings) != 2 {
		t.Errorf("span 0 ladder = %+v", s0)
	}
	if s0.Centerings[1].T != 100 || s0.Centerings[1].Newton != 5 || !s0.Centerings[1].Converged {
		t.Errorf("span 0 centering[1] = %+v", s0.Centerings[1])
	}
	if c := s0.Centerings[1]; c.AssembleNs != 1100 || c.FactorNs != 2100 || c.LinesearchNs != 600 {
		t.Errorf("span 0 centering[1] timing = %+v", c)
	}
	if s1 := tr.Solves[1]; s1.Err != "boom" || s1.Feasible {
		t.Errorf("span 1 = %+v", s1)
	}
	if tr.FallbackRung != "bisect-downgrade" {
		t.Errorf("FallbackRung = %q", tr.FallbackRung)
	}
	if tr.ElapsedNs <= 0 {
		t.Errorf("ElapsedNs = %d, want > 0", tr.ElapsedNs)
	}

	// Fallback steps are retained even after the last-N ring cycles.
	if got := f.Trace(tr.ID); got != tr {
		t.Fatalf("Trace(%d) = %v, want the filed trace", tr.ID, got)
	}
}

func TestClusterSubRecordersAppendConcurrently(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	tr := f.StartStep("dmpc")
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		rec := tr.Cluster(c)
		wg.Add(1)
		go func(c int, rec Recorder) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				rec.SolveStart(1e9)
				rec.Centering(10, 3, true, 0, 0, 0)
				rec.Rung("warm")
				rec.SolveEnd(true, nil)
			}
		}(c, rec)
	}
	wg.Wait()
	tr.Outer(1, 0.4, 0.1)
	tr.Outer(2, 0.05, 0.02)
	f.EndStep(tr, nil)

	if len(tr.Solves) != 24 {
		t.Fatalf("len(Solves) = %d, want 24", len(tr.Solves))
	}
	seen := map[int]int{}
	for _, s := range tr.Solves {
		seen[s.Cluster]++
	}
	for c := 0; c < 8; c++ {
		if seen[c] != 3 {
			t.Errorf("cluster %d spans = %d, want 3", c, seen[c])
		}
	}
	if len(tr.Outers) != 2 || tr.Outers[1].Iter != 2 || tr.Outers[1].PrimalC != 0.05 {
		t.Errorf("Outers = %+v", tr.Outers)
	}
}

func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(3, 2)
	var slow, errored *Trace
	for i := 0; i < 10; i++ {
		tr := f.StartStep("online")
		switch i {
		case 2:
			// Make one early trace decisively the slowest.
			tr.Start = tr.Start.Add(-time.Second)
			slow = tr
			f.EndStep(tr, nil)
		case 4:
			errored = tr
			f.EndStep(tr, errors.New("solver exploded"))
		default:
			f.EndStep(tr, nil)
		}
	}

	all := f.Traces()
	ids := map[uint64]bool{}
	for _, tr := range all {
		ids[tr.ID] = true
	}
	// Last-3 ring holds the newest three.
	for _, want := range []uint64{8, 9, 10} {
		if !ids[want] {
			t.Errorf("Traces missing recent id %d (got %v)", want, ids)
		}
	}
	if !ids[slow.ID] {
		t.Errorf("Traces dropped the slowest trace %d", slow.ID)
	}
	if !ids[errored.ID] {
		t.Errorf("Traces dropped the errored trace %d", errored.ID)
	}
	if got := f.Slowest(); got != slow {
		t.Errorf("Slowest = %v, want trace %d", got, slow.ID)
	}
	if got := f.Trace(errored.ID); got == nil || got.Err != "solver exploded" {
		t.Errorf("Trace(%d) = %+v", errored.ID, got)
	}
	if got := f.Trace(99); got != nil {
		t.Errorf("Trace(99) = %v, want nil", got)
	}
	// Newest first.
	for i := 1; i < len(all); i++ {
		if all[i-1].ID <= all[i].ID {
			t.Errorf("Traces not sorted newest-first: %d before %d", all[i-1].ID, all[i].ID)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(2, 1)
	tr := f.StartStep("dmpc")
	rec := tr.Cluster(1)
	rec.SolveStart(1e9)
	rec.WarmDecision(true, true, "")
	rec.Centering(50, 4, true, 0, 0, 0)
	rec.Rung("warm")
	rec.SolveEnd(true, nil)
	tr.Outer(1, 0.2, 0.05)
	tr.Fallback("central")
	f.EndStep(tr, nil)

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ID != tr.ID || back.Mode != "dmpc" || back.FallbackRung != "central" {
		t.Errorf("round trip lost header: id=%d mode=%q fallback=%q", back.ID, back.Mode, back.FallbackRung)
	}
	if len(back.Solves) != 1 || back.Solves[0].Cluster != 1 || back.Solves[0].Rung != "warm" {
		t.Errorf("round trip lost spans: %+v", back.Solves)
	}
	if len(back.Outers) != 1 || back.Outers[0].PrimalC != 0.2 {
		t.Errorf("round trip lost outers: %+v", back.Outers)
	}
}
