// Package obs is a lightweight, allocation-conscious tracing layer for
// the per-window solve path. A Recorder observes the anatomy of one
// Session.Step — the warm-seed decision, the ladder rung that produced
// the assignment, every barrier centering (t schedule + Newton
// iterations), and for distributed sessions the per-cluster solve spans
// and the ADMM outer-iteration/primal-residual timeline.
//
// The disabled path is a nil check: engines without a FlightRecorder
// pass a nil Recorder down the stack and the hot path performs zero
// additional allocations. Enabled traces are written once by the step
// that owns them and become immutable when EndStep files them into the
// FlightRecorder, so readers (HTTP handlers, CLI dumps) may marshal
// them without copying.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder observes one window solve. Implementations must tolerate
// being driven concurrently only through Cluster sub-recorders: the
// root recorder itself is driven by a single goroutine, while each
// Cluster(c) recorder is driven by the one worker solving cluster c.
//
// Callers hold a concrete non-nil implementation; a disabled trace is
// represented by a nil interface, never a typed-nil pointer.
type Recorder interface {
	// SolveStart opens a solve span for one solver invocation at the
	// given frequency target. Spans do not nest.
	SolveStart(ftargetHz float64)
	// WarmDecision records whether a warm seed existed and whether it
	// was accepted; reason explains a rejection ("uncentered", error
	// text) and is empty on acceptance.
	WarmDecision(had, accepted bool, reason string)
	// Rung names the ladder rung that produced the open span's result:
	// "warm", "heuristic", "rebalance", "phase1", "full-speed",
	// "bisect", ...
	Rung(name string)
	// Centering records one barrier centering: the barrier parameter t,
	// the Newton iterations spent, whether the centering converged, and
	// the centering's wall time split into Hessian assembly, KKT
	// factorization+solve, and line search (nanoseconds).
	Centering(t float64, newtonIters int, converged bool, assembleNs, factorNs, linesearchNs int64)
	// SolveEnd closes the open span with the solver verdict.
	SolveEnd(feasible bool, err error)
	// Outer records one ADMM consensus round with its residuals (°C).
	Outer(iter int, primalC, dualC float64)
	// Fallback marks the whole step as having taken a fallback rung
	// ("central", "worst-case", "bisect-downgrade", ...).
	Fallback(rung string)
	// Cluster derives a sub-recorder whose spans are tagged with the
	// given cluster index (-1 denotes the centralized solver).
	Cluster(c int) Recorder
}

// CenteringStep is one barrier centering inside a solve span. The
// *Ns fields split the centering's wall time by phase, so a trace
// shows whether a slow solve spent its budget assembling Hessians,
// factoring them, or backtracking.
type CenteringStep struct {
	T            float64 `json:"t"`
	Newton       int     `json:"newton"`
	Converged    bool    `json:"converged"`
	AssembleNs   int64   `json:"assemble_ns,omitempty"`
	FactorNs     int64   `json:"factor_ns,omitempty"`
	LinesearchNs int64   `json:"linesearch_ns,omitempty"`
}

// SolveSpan is one solver invocation: a monolithic window solve, one
// cluster subproblem round, or the centralized fallback (Cluster -1).
type SolveSpan struct {
	Cluster      int             `json:"cluster"`
	FTargetHz    float64         `json:"ftarget_hz"`
	WarmHad      bool            `json:"warm_had"`
	WarmAccepted bool            `json:"warm_accepted"`
	WarmReason   string          `json:"warm_reason,omitempty"`
	Rung         string          `json:"rung,omitempty"`
	Centerings   []CenteringStep `json:"centerings,omitempty"`
	NewtonIters  int             `json:"newton_iters"`
	Feasible     bool            `json:"feasible"`
	Err          string          `json:"err,omitempty"`
	ElapsedNs    int64           `json:"elapsed_ns"`
}

// OuterRound is one ADMM consensus iteration.
type OuterRound struct {
	Iter    int     `json:"iter"`
	PrimalC float64 `json:"primal_c"`
	DualC   float64 `json:"dual_c"`
}

// Trace is the full record of one Session.Step. It implements Recorder
// for the root (single-goroutine) solve path; cluster workers write
// through Cluster sub-recorders that append finished spans under the
// trace mutex. A Trace is mutable until FlightRecorder.EndStep files
// it, immutable afterwards.
type Trace struct {
	ID           uint64       `json:"id"`
	Mode         string       `json:"mode"`
	Start        time.Time    `json:"start"`
	ElapsedNs    int64        `json:"elapsed_ns"`
	Err          string       `json:"err,omitempty"`
	FallbackRung string       `json:"fallback,omitempty"`
	Solves       []SolveSpan  `json:"solves"`
	Outers       []OuterRound `json:"outers,omitempty"`

	mu    sync.Mutex
	cur   SolveSpan
	curT0 time.Time
}

// SolveStart implements Recorder.
func (t *Trace) SolveStart(ftargetHz float64) {
	t.mu.Lock()
	t.cur = SolveSpan{Cluster: -1, FTargetHz: ftargetHz}
	t.curT0 = time.Now()
	t.mu.Unlock()
}

// WarmDecision implements Recorder.
func (t *Trace) WarmDecision(had, accepted bool, reason string) {
	t.mu.Lock()
	t.cur.WarmHad = had
	t.cur.WarmAccepted = accepted
	t.cur.WarmReason = reason
	t.mu.Unlock()
}

// Rung implements Recorder.
func (t *Trace) Rung(name string) {
	t.mu.Lock()
	t.cur.Rung = name
	t.mu.Unlock()
}

// Centering implements Recorder.
func (t *Trace) Centering(tval float64, newtonIters int, converged bool, assembleNs, factorNs, linesearchNs int64) {
	t.mu.Lock()
	t.cur.Centerings = append(t.cur.Centerings, CenteringStep{
		T: tval, Newton: newtonIters, Converged: converged,
		AssembleNs: assembleNs, FactorNs: factorNs, LinesearchNs: linesearchNs,
	})
	t.cur.NewtonIters += newtonIters
	t.mu.Unlock()
}

// SolveEnd implements Recorder.
func (t *Trace) SolveEnd(feasible bool, err error) {
	t.mu.Lock()
	span := t.cur
	span.Feasible = feasible
	if err != nil {
		span.Err = err.Error()
	}
	span.ElapsedNs = time.Since(t.curT0).Nanoseconds()
	t.Solves = append(t.Solves, span)
	t.cur = SolveSpan{}
	t.mu.Unlock()
}

// Outer implements Recorder.
func (t *Trace) Outer(iter int, primalC, dualC float64) {
	t.mu.Lock()
	t.Outers = append(t.Outers, OuterRound{Iter: iter, PrimalC: primalC, DualC: dualC})
	t.mu.Unlock()
}

// Fallback implements Recorder.
func (t *Trace) Fallback(rung string) {
	t.mu.Lock()
	t.FallbackRung = rung
	t.mu.Unlock()
}

// Cluster implements Recorder.
func (t *Trace) Cluster(c int) Recorder {
	return &clusterRecorder{parent: t, cluster: c}
}

// clusterRecorder tags spans with a cluster index and appends them to
// the parent trace. One is created per cluster per step and driven by
// exactly one worker goroutine, so its scratch span needs no lock; only
// the append into the parent synchronizes.
type clusterRecorder struct {
	parent  *Trace
	cluster int
	cur     SolveSpan
	t0      time.Time
}

func (c *clusterRecorder) SolveStart(ftargetHz float64) {
	c.cur = SolveSpan{Cluster: c.cluster, FTargetHz: ftargetHz}
	c.t0 = time.Now()
}

func (c *clusterRecorder) WarmDecision(had, accepted bool, reason string) {
	c.cur.WarmHad = had
	c.cur.WarmAccepted = accepted
	c.cur.WarmReason = reason
}

func (c *clusterRecorder) Rung(name string) { c.cur.Rung = name }

func (c *clusterRecorder) Centering(tval float64, newtonIters int, converged bool, assembleNs, factorNs, linesearchNs int64) {
	c.cur.Centerings = append(c.cur.Centerings, CenteringStep{
		T: tval, Newton: newtonIters, Converged: converged,
		AssembleNs: assembleNs, FactorNs: factorNs, LinesearchNs: linesearchNs,
	})
	c.cur.NewtonIters += newtonIters
}

func (c *clusterRecorder) SolveEnd(feasible bool, err error) {
	span := c.cur
	span.Feasible = feasible
	if err != nil {
		span.Err = err.Error()
	}
	span.ElapsedNs = time.Since(c.t0).Nanoseconds()
	c.cur = SolveSpan{}
	c.parent.mu.Lock()
	c.parent.Solves = append(c.parent.Solves, span)
	c.parent.mu.Unlock()
}

func (c *clusterRecorder) Outer(iter int, primalC, dualC float64) {
	c.parent.Outer(iter, primalC, dualC)
}

func (c *clusterRecorder) Fallback(rung string) { c.parent.Fallback(rung) }

func (c *clusterRecorder) Cluster(n int) Recorder { return c.parent.Cluster(n) }

// FlightRecorder keeps a bounded in-memory record of recent window
// traces: a ring of the last N, the slowest N seen so far, and a ring
// of every errored or fallback step. A nil *FlightRecorder is the
// disabled state: StartStep returns nil and EndStep is a no-op, so the
// hot path pays exactly one pointer comparison.
type FlightRecorder struct {
	seq atomic.Uint64

	mu      sync.Mutex
	lastN   int
	slowN   int
	last    []*Trace
	lastPos int
	slow    []*Trace
	errs    []*Trace
	errPos  int
}

// DefaultLastN and DefaultSlowN size NewFlightRecorder when callers
// pass non-positive capacities.
const (
	DefaultLastN = 32
	DefaultSlowN = 8
)

// NewFlightRecorder builds a recorder keeping the last lastN and the
// slowest slowN traces (non-positive values take the defaults).
// Errored/fallback traces are retained in a separate ring sized lastN.
func NewFlightRecorder(lastN, slowN int) *FlightRecorder {
	if lastN <= 0 {
		lastN = DefaultLastN
	}
	if slowN <= 0 {
		slowN = DefaultSlowN
	}
	return &FlightRecorder{lastN: lastN, slowN: slowN}
}

// StartStep opens a trace for one window step. On a nil receiver it
// returns nil, which callers must not hand to a Recorder-typed
// variable (a typed-nil interface would defeat downstream nil checks).
func (f *FlightRecorder) StartStep(mode string) *Trace {
	if f == nil {
		return nil
	}
	return &Trace{ID: f.seq.Add(1), Mode: mode, Start: time.Now()}
}

// EndStep stamps the trace's elapsed time and step error, then files it
// into the retention rings. After EndStep the trace is immutable.
func (f *FlightRecorder) EndStep(tr *Trace, err error) {
	if f == nil || tr == nil {
		return
	}
	tr.ElapsedNs = time.Since(tr.Start).Nanoseconds()
	if err != nil {
		tr.Err = err.Error()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.last) < f.lastN {
		f.last = append(f.last, tr)
	} else {
		f.last[f.lastPos] = tr
		f.lastPos = (f.lastPos + 1) % f.lastN
	}
	if len(f.slow) < f.slowN {
		f.slow = append(f.slow, tr)
	} else {
		minIdx, minNs := 0, f.slow[0].ElapsedNs
		for i, s := range f.slow[1:] {
			if s.ElapsedNs < minNs {
				minIdx, minNs = i+1, s.ElapsedNs
			}
		}
		if tr.ElapsedNs > minNs {
			f.slow[minIdx] = tr
		}
	}
	if tr.Err != "" || tr.FallbackRung != "" {
		if len(f.errs) < f.lastN {
			f.errs = append(f.errs, tr)
		} else {
			f.errs[f.errPos] = tr
			f.errPos = (f.errPos + 1) % f.lastN
		}
	}
}

// Traces returns every retained trace (last + slowest + errored,
// deduplicated), newest first. The traces are finished and immutable;
// the slice is a fresh snapshot.
func (f *FlightRecorder) Traces() []*Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[uint64]bool, len(f.last)+len(f.slow)+len(f.errs))
	out := make([]*Trace, 0, len(f.last)+len(f.slow)+len(f.errs))
	for _, ring := range [][]*Trace{f.last, f.slow, f.errs} {
		for _, tr := range ring {
			if !seen[tr.ID] {
				seen[tr.ID] = true
				out = append(out, tr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// Trace returns the retained trace with the given ID, or nil.
func (f *FlightRecorder) Trace(id uint64) *Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ring := range [][]*Trace{f.last, f.slow, f.errs} {
		for _, tr := range ring {
			if tr.ID == id {
				return tr
			}
		}
	}
	return nil
}

// Slowest returns the slowest retained trace, or nil when empty.
func (f *FlightRecorder) Slowest() *Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var worst *Trace
	for _, tr := range f.slow {
		if worst == nil || tr.ElapsedNs > worst.ElapsedNs {
			worst = tr
		}
	}
	return worst
}
