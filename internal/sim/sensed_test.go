package sim

import (
	"context"
	"math"
	"testing"

	"protemp/internal/linalg"
	"protemp/internal/sense"
	"protemp/internal/thermal"
)

func sensedConfig(t *testing.T, p Policy, sn *Sensing) Config {
	t.Helper()
	r := testRig(t)
	return Config{
		Chip:    r.chip,
		Disc:    r.disc,
		Policy:  p,
		Trace:   mixedTrace(t, 2),
		Sensing: sn,
	}
}

// Perfect sensors through the decorator reproduce the plain Stepper's
// run exactly: the chain is an identity when nothing is degraded.
func TestSensedPerfectMatchesPlain(t *testing.T) {
	r := testRig(t)
	plain := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, mixedTrace(t, 2))
	sensed, err := Run(context.Background(), sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, &Sensing{}))
	if err != nil {
		t.Fatal(err)
	}
	if sensed.Sense == nil {
		t.Fatal("sensed run has no SenseSummary")
	}
	if sensed.MaxCoreTemp != plain.MaxCoreTemp || sensed.EnergyJ != plain.EnergyJ ||
		sensed.Completed != plain.Completed || sensed.SimTime != plain.SimTime {
		t.Fatalf("perfect sensed run diverged from plain: %+v vs %+v", sensed, plain)
	}
	if s := sensed.Sense; s.Dropouts != 0 || s.StuckSensors != 0 || s.DegradedWindows != 0 {
		t.Fatalf("perfect sensors injected defects: %+v", s)
	}
}

// Same config and seed ⇒ bit-identical noisy runs (the fleet's
// reproducibility contract through the whole chain).
func TestSensedDeterministicUnderSeed(t *testing.T) {
	run := func() *Result {
		res, err := Run(context.Background(), sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, &Sensing{
			Sensors:   []sense.Config{sense.DefaultNoisy()},
			Seed:      42,
			Estimator: "kalman",
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MaxCoreTemp != b.MaxCoreTemp || a.EnergyJ != b.EnergyJ || a.ViolationFrac != b.ViolationFrac {
		t.Fatalf("seeded runs diverged: %+v vs %+v", a, b)
	}
	if a.Sense.Dropouts != b.Sense.Dropouts || a.Sense.EstimateRMSC != b.Sense.EstimateRMSC {
		t.Fatalf("seeded sense summaries diverged: %+v vs %+v", a.Sense, b.Sense)
	}
}

// The estimator keeps the observed state close to the truth under the
// reference noisy sensors, and the summary reports it.
func TestSensedEstimatorTracksTruth(t *testing.T) {
	ss, err := NewSensedStepper(sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, &Sensing{
		Sensors:   []sense.Config{sense.DefaultNoisy()},
		Seed:      7,
		Estimator: "kalman",
	}))
	if err != nil {
		t.Fatal(err)
	}
	for !ss.Done() {
		st := ss.State()
		if st.BlockTemps == nil {
			t.Fatal("estimator mode produced no block map")
		}
		truth := ss.Temps()
		for i := range st.BlockTemps {
			if d := math.Abs(st.BlockTemps[i] - truth[i]); d > 6 {
				t.Fatalf("t=%.1f block %d: estimate %.2f vs truth %.2f", st.Time, i, st.BlockTemps[i], truth[i])
			}
		}
		if err := ss.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := ss.Result()
	if res.Sense.Estimator != "kalman" {
		t.Fatalf("summary estimator %q", res.Sense.Estimator)
	}
	if res.Sense.EstimateRMSC <= 0 || res.Sense.EstimateRMSC > 1 {
		t.Fatalf("estimate RMS %.3f °C outside (0, 1]", res.Sense.EstimateRMSC)
	}
	if res.Sense.Innovation == nil || res.Sense.Innovation.Count() == 0 {
		t.Fatal("no innovation observations recorded")
	}
}

// Raw mode (no estimator) withholds the block map and holds the last
// valid reading through dropouts.
func TestSensedRawModeHoldsLastValid(t *testing.T) {
	ss, err := NewSensedStepper(sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, &Sensing{
		Sensors: []sense.Config{{DropoutProb: 0.5}},
		Seed:    3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 10 && !ss.Done(); w++ {
		st := ss.State()
		if st.BlockTemps != nil {
			t.Fatal("raw mode leaked a block map")
		}
		for i, v := range st.CoreTemps {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("core %d reading %v with dropouts", i, v)
			}
		}
		if err := ss.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if ss.SenseStats().Dropouts == 0 {
		t.Fatal("no dropouts injected at p=0.5")
	}
}

// A certain-dropout bank flags every window as degraded, and State is
// idempotent within a window (the bank advances once per window).
func TestSensedDegradedFlagAndIdempotentState(t *testing.T) {
	ss, err := NewSensedStepper(sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, &Sensing{
		Sensors: []sense.Config{{DropoutProb: 1}},
		Seed:    1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	st1 := ss.State()
	st2 := ss.State()
	if !st1.SensingDegraded || !st2.SensingDegraded {
		t.Fatal("full dropout not flagged as degraded")
	}
	if st1.CoreTemps[0] != st2.CoreTemps[0] || ss.SenseStats().Windows != 1 {
		t.Fatalf("repeated State advanced the bank: windows=%d", ss.SenseStats().Windows)
	}
	if err := ss.Step(); err != nil {
		t.Fatal(err)
	}
	ss.State() // observation is lazy: the next window samples here
	if got := ss.SenseStats().Windows; got != 2 {
		t.Fatalf("windows after Step + State = %d, want 2", got)
	}
}

// A degraded window makes the warm-started online policy invalidate
// its solver state: after the blind window the next solve is cold.
func TestSensedDegradedInvalidatesWarmSolver(t *testing.T) {
	r := testRig(t)
	p := &ProTempOnline{Chip: r.chip, Window: mustWindow(t, r), TMax: 100}
	st := WindowState{
		Time:         0,
		CoreTemps:    linalg.Constant(8, 60),
		MaxCoreTemp:  60,
		RequiredFreq: 5e8,
		Utilization:  linalg.NewVector(8),
	}
	p.Decide(st)
	p.Decide(st)
	if p.ol == nil || !p.ol.Warm() {
		t.Fatal("online solver not warm after two solves")
	}
	st.SensingDegraded = true
	p.Decide(st)
	st.SensingDegraded = false
	p.Decide(st)
	if p.WarmHits < 1 {
		t.Fatal("no warm hits recorded at all")
	}
	// The degraded window forced at least one extra cold solve: solves
	// minus warm hits must exceed the single cold start.
	if cold := p.Solves - p.WarmHits; cold < 2 {
		t.Fatalf("cold solves %d, want >= 2 (initial + post-degraded)", cold)
	}
}

func mustWindow(t *testing.T, r rig) *thermal.WindowResponse {
	t.Helper()
	w, err := r.disc.Window(100)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSensingValidation(t *testing.T) {
	r := testRig(t)
	base := sensedConfig(t, &NoTC{NumCores: 8, FMax: 1e9}, nil)
	_ = r
	bad := []*Sensing{
		{Sensors: []sense.Config{{NoiseSigma: -1}}},
		{Sensors: sense.Uniform(3, sense.Config{})}, // 3 configs for 8 cores
		{Estimator: "bogus"},
		{Estimator: "kalman", ModelErr: -2},
		{Estimator: "kalman", ModelErr: math.Inf(1)},
	}
	for i, sn := range bad {
		cfg := base
		cfg.Sensing = sn
		if _, err := NewSensedStepper(cfg); err == nil {
			t.Errorf("sensing config %d accepted: %+v", i, sn)
		}
	}
	// "none" is the explicit raw-readings spelling.
	cfg := base
	cfg.Sensing = &Sensing{Estimator: "none"}
	ss, err := NewSensedStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Estimator() != nil {
		t.Fatal(`estimator "none" built an estimator`)
	}
}
