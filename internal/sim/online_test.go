package sim

import (
	"context"
	"testing"

	"protemp/internal/workload"
)

// The online-solving extension keeps the guarantee and completes work.
func TestProTempOnlineNeverViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("online solves in -short mode")
	}
	r := testRig(t)
	window, err := r.disc.Window(100)
	if err != nil {
		t.Fatal(err)
	}
	online := &ProTempOnline{Chip: r.chip, Window: window, TMax: 100}
	tr, err := workload.ComputeIntensive(11, 8, 2.5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc, Policy: online, Trace: tr, TMax: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxCoreTemp > 100.01 {
		t.Fatalf("online policy reached %.2f °C", res.MaxCoreTemp)
	}
	if res.ViolationFrac != 0 {
		t.Fatalf("violation fraction %.4f", res.ViolationFrac)
	}
	if res.Completed == 0 {
		t.Fatal("no work completed")
	}
	if online.Solves == 0 {
		t.Fatal("online policy never solved")
	}
}

// With full-map knowledge the online policy completes at least as much
// work per unit time as the table policy on the same trace (it can only
// gain headroom from seeing the true map instead of the rounded-up max).
func TestProTempOnlineAtLeastAsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("online solves in -short mode")
	}
	r := testRig(t)
	window, err := r.disc.Window(100)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ComputeIntensive(3, 8, 2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	table, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc, Policy: &ProTemp{Controller: r.ctrl}, Trace: tr, TMax: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	online, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc,
		Policy: &ProTempOnline{Chip: r.chip, Window: window, TMax: 100},
		Trace:  tr, TMax: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Allow 15% slack: the coarse table can occasionally get lucky on
	// quantization, but the online policy must be in the same class.
	if online.SimTime > table.SimTime*1.15 {
		t.Fatalf("online makespan %.2f s much worse than table %.2f s",
			online.SimTime, table.SimTime)
	}
}
