package sim

import (
	"math"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

// Assigner picks which idle core receives the next queued task.
type Assigner interface {
	Name() string
	// Pick returns the index (into cores) of the chosen idle core, or
	// -1 to leave the task queued. idle lists candidate core indices.
	Pick(idle []int, coreTemps linalg.Vector) int
}

// FirstIdle is the paper's simple control-unit rule: "when a task
// arrives, the control unit assigns the task to any idle processor" —
// deterministically, the lowest-numbered one.
type FirstIdle struct{}

// Name implements Assigner.
func (FirstIdle) Name() string { return "first-idle" }

// Pick implements Assigner.
func (FirstIdle) Pick(idle []int, coreTemps linalg.Vector) int {
	if len(idle) == 0 {
		return -1
	}
	best := idle[0]
	for _, c := range idle[1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// CoolestFirst is the temperature-aware assignment of the paper's
// Section 5.4 (after Coskun et al., their ref. [26]): the task goes to
// the idle core with the lowest effective temperature, where the
// effective temperature mixes the core's own sensor with the average of
// its core neighbours — placing work away from evolving hot spots. In
// addition, idle cores already hotter than AvoidAbove are passed over
// while any cooler candidate exists: feeding a near-threshold core is
// what pushes it across, so the scheduler lets it drain heat instead.
type CoolestFirst struct {
	// NeighborWeight in [0, 1] scales the neighbour-average term;
	// 0 degenerates to pure coolest-core. Default 0.5 via NewCoolestFirst.
	NeighborWeight float64
	// AvoidAbove is the placement-avoidance temperature in °C; zero
	// disables avoidance.
	AvoidAbove float64
	neighbors  [][]int // per core, indices of neighbouring cores
}

// NewCoolestFirst precomputes core-to-core adjacency from the floorplan
// and enables placement avoidance at 96 °C (between the 90 °C Basic-DFS
// trigger and the 100 °C limit, so hot-but-running cores are avoided
// without starving the queue). coreBlocks maps core index -> floorplan
// block index.
func NewCoolestFirst(fp *floorplan.Floorplan, coreBlocks []int, neighborWeight float64) *CoolestFirst {
	blockToCore := make(map[int]int, len(coreBlocks))
	for ci, bi := range coreBlocks {
		blockToCore[bi] = ci
	}
	nb := make([][]int, len(coreBlocks))
	for ci, bi := range coreBlocks {
		for _, nbi := range fp.Neighbors(bi) {
			if nci, ok := blockToCore[nbi]; ok {
				nb[ci] = append(nb[ci], nci)
			}
		}
	}
	if neighborWeight < 0 {
		neighborWeight = 0
	}
	if neighborWeight > 1 {
		neighborWeight = 1
	}
	return &CoolestFirst{NeighborWeight: neighborWeight, AvoidAbove: 96, neighbors: nb}
}

// Name implements Assigner.
func (c *CoolestFirst) Name() string { return "coolest-first" }

// Pick implements Assigner.
func (c *CoolestFirst) Pick(idle []int, coreTemps linalg.Vector) int {
	if len(idle) == 0 {
		return -1
	}
	candidates := idle
	if c.AvoidAbove > 0 {
		var cool []int
		for _, ci := range idle {
			if coreTemps[ci] < c.AvoidAbove {
				cool = append(cool, ci)
			}
		}
		if len(cool) > 0 {
			candidates = cool
		} else {
			// Every idle core is hot: defer placement and let the chip
			// drain heat; the task stays queued.
			return -1
		}
	}
	best, bestScore := -1, math.Inf(1)
	for _, ci := range candidates {
		score := coreTemps[ci]
		if c.neighbors != nil && len(c.neighbors[ci]) > 0 {
			var avg float64
			for _, ni := range c.neighbors[ci] {
				avg += coreTemps[ni]
			}
			avg /= float64(len(c.neighbors[ci]))
			score += c.NeighborWeight * avg
		}
		if score < bestScore || (score == bestScore && ci < best) {
			best, bestScore = ci, score
		}
	}
	return best
}
