package sim

import (
	"context"
	"math"
	"time"

	"protemp/internal/core"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/obs"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// ProTempOnline is the model-predictive extension the paper's §3.2
// simplification deliberately avoids: instead of a design-time table
// keyed by the single maximum core temperature, it solves the convex
// program at every DFS boundary on the **full per-block thermal map**
// (the Spec.T0 extension in internal/core). It carries the same
// guarantee — the solved trajectory respects tmax at every sub-step —
// while recovering the headroom the conservative max-temperature
// rounding gives away, at the cost of run-time compute.
//
// That run-time compute is warm-started: the policy compiles its
// problem structure once on first Decide and seeds each window's
// barrier from the previous window's optimum (core.OnlineSolver), so
// the steady-state per-window cost is an offset rewrite plus a short
// warm centering, not a full problem assembly plus the cold start
// ladder. A policy is not safe for concurrent use (sim drives one
// policy per run).
type ProTempOnline struct {
	Chip   *power.Chip
	Window *thermal.WindowResponse
	TMax   float64
	// Variant selects the optimization model; the zero value is the
	// paper's per-core VariantVariable.
	Variant core.Variant

	// Solves and Infeasible count run-time optimizer activity.
	Solves     int
	Infeasible int
	// WarmHits / WarmRejects count warm-start outcomes across solves;
	// SolveNanosTotal accumulates solve wall time.
	WarmHits        int
	WarmRejects     int
	SolveNanosTotal int64
	// SolveNanos, when non-nil, additionally receives every solve's
	// wall time — callers wanting p50/p95/p99 (the fleet runner) supply
	// a histogram; nil skips the per-solve observation.
	SolveNanos *metrics.Histogram
	// Flight, when non-nil, records one solve trace per window — the
	// sim/fleet analogue of the engine's flight recorder. Nil (the
	// default) adds nothing to the window path.
	Flight *obs.FlightRecorder

	ol       *core.OnlineSolver
	compiled bool // compile attempted; ol == nil afterwards means solve cold
	tr       *obs.Trace
}

// Name implements Policy.
func (p *ProTempOnline) Name() string { return "Pro-Temp-Online" }

// Decide implements Policy. On any solver failure it falls back to an
// idle window, which is always thermally safe.
func (p *ProTempOnline) Decide(st WindowState) linalg.Vector {
	if p.Flight == nil {
		freqs, _ := p.decide(st, nil)
		return freqs
	}
	tr := p.Flight.StartStep("online")
	p.tr = tr
	freqs, err := p.decide(st, tr)
	p.tr = nil
	if p.ol != nil {
		p.ol.SetRecorder(nil)
	}
	p.Flight.EndStep(tr, err)
	return freqs
}

// decide is the window decision rule; tr, when non-nil, receives the
// solve anatomy. The returned error reports why a window idled (nil
// when the decision is a real assignment) — Decide's trace filing
// uses it, the policy API swallows it.
func (p *ProTempOnline) decide(st WindowState, tr *obs.Trace) (linalg.Vector, error) {
	n := p.Chip.NumCores()
	// A full-dropout sensing window means this state is pure prediction:
	// drop the warm optimum so the blind window's solution never seeds
	// the next real one (PR 5's invalidate-on-error contract).
	if st.SensingDegraded && p.ol != nil {
		p.ol.Invalidate()
	}
	required := clampFreq(st.RequiredFreq, p.Chip.FMax())
	// Floor nonzero demand at 10% of fmax: solving at exactly the
	// required average lets the final tasks crawl (the pending-work
	// metric decays geometrically as they shrink), whereas the paper's
	// table policy inherently floors at its lowest stored column.
	if required > 0 && required < 0.1*p.Chip.FMax() {
		required = 0.1 * p.Chip.FMax()
	}

	a, err := p.solve(st.MaxCoreTemp, st.BlockTemps, required)
	if err == nil && a.Feasible {
		return linalg.VectorOf(a.Freqs...), nil
	}
	p.Infeasible++

	// The required target is unsupportable from this map: find the
	// largest supportable uniform target cheaply, then re-solve the full
	// program just inside it (the run-time analogue of the paper's
	// "next lower frequency point" fallback).
	if tr != nil {
		tr.Fallback("bisect-downgrade")
		tr.SolveStart(required)
		tr.Rung("bisect")
	}
	spec := &core.Spec{
		Chip:    p.Chip,
		Window:  p.Window,
		TMax:    p.TMax,
		TStart:  st.MaxCoreTemp,
		FTarget: required,
		Variant: p.Variant,
		T0:      st.BlockTemps,
	}
	maxF, _, err := core.SolveUniformBisect(spec)
	if tr != nil {
		tr.SolveEnd(maxF > 0, err)
	}
	if err != nil || maxF <= 0 {
		return linalg.NewVector(n), err
	}
	a, err = p.solve(st.MaxCoreTemp, st.BlockTemps, math.Min(required, 0.98*maxF))
	if err != nil || !a.Feasible {
		return linalg.NewVector(n), err
	}
	return linalg.VectorOf(a.Freqs...), nil
}

// solve runs one timed, warm-capable solve, compiling the online
// problem on first use. If the compile ever fails (a structurally
// invalid configuration) the policy degrades to per-window cold solves
// rather than panicking mid-simulation.
func (p *ProTempOnline) solve(tstart float64, t0 []float64, ftarget float64) (*core.Assignment, error) {
	if !p.compiled {
		p.compiled = true
		p.ol, _ = core.NewOnlineSolver(core.OnlineSpec{
			Chip: p.Chip, Window: p.Window, TMax: p.TMax, Variant: p.Variant,
		})
	}
	p.Solves++
	start := time.Now()
	var (
		a     *core.Assignment
		stats core.OnlineStepStats
		err   error
	)
	if p.ol != nil {
		if p.tr != nil {
			p.ol.SetRecorder(p.tr)
		}
		a, stats, err = p.ol.Solve(context.Background(), tstart, t0, ftarget)
	} else {
		a, err = core.Solve(&core.Spec{
			Chip: p.Chip, Window: p.Window, TMax: p.TMax,
			TStart: tstart, FTarget: ftarget, Variant: p.Variant, T0: t0,
		})
	}
	elapsed := time.Since(start).Nanoseconds()
	p.SolveNanosTotal += elapsed
	if p.SolveNanos != nil {
		p.SolveNanos.ObserveDuration(elapsed)
	}
	if stats.Warm {
		p.WarmHits++
	}
	if stats.WarmRejected {
		p.WarmRejects++
	}
	return a, err
}
