package sim

import (
	"math"

	"protemp/internal/core"
	"protemp/internal/linalg"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// ProTempOnline is the model-predictive extension the paper's §3.2
// simplification deliberately avoids: instead of a design-time table
// keyed by the single maximum core temperature, it solves the convex
// program at every DFS boundary on the **full per-block thermal map**
// (the Spec.T0 extension in internal/core). It carries the same
// guarantee — the solved trajectory respects tmax at every sub-step —
// while recovering the headroom the conservative max-temperature
// rounding gives away, at the cost of run-time compute (one
// interior-point solve per 100 ms window; the paper's table lookup is
// O(log n)).
type ProTempOnline struct {
	Chip   *power.Chip
	Window *thermal.WindowResponse
	TMax   float64

	// Solves and Infeasible count run-time optimizer activity.
	Solves     int
	Infeasible int
}

// Name implements Policy.
func (p *ProTempOnline) Name() string { return "Pro-Temp-Online" }

// Decide implements Policy. On any solver failure it falls back to an
// idle window, which is always thermally safe.
func (p *ProTempOnline) Decide(st WindowState) linalg.Vector {
	n := p.Chip.NumCores()
	required := clampFreq(st.RequiredFreq, p.Chip.FMax())
	// Floor nonzero demand at 10% of fmax: solving at exactly the
	// required average lets the final tasks crawl (the pending-work
	// metric decays geometrically as they shrink), whereas the paper's
	// table policy inherently floors at its lowest stored column.
	if required > 0 && required < 0.1*p.Chip.FMax() {
		required = 0.1 * p.Chip.FMax()
	}

	spec := &core.Spec{
		Chip:    p.Chip,
		Window:  p.Window,
		TMax:    p.TMax,
		FTarget: required,
		T0:      st.BlockTemps,
	}
	p.Solves++
	a, err := core.Solve(spec)
	if err == nil && a.Feasible {
		return linalg.VectorOf(a.Freqs...)
	}
	p.Infeasible++

	// The required target is unsupportable from this map: find the
	// largest supportable uniform target cheaply, then re-solve the full
	// program just inside it (the run-time analogue of the paper's
	// "next lower frequency point" fallback).
	maxF, _, err := core.SolveUniformBisect(spec)
	if err != nil || maxF <= 0 {
		return linalg.NewVector(n)
	}
	spec.FTarget = math.Min(required, 0.98*maxF)
	a, err = core.Solve(spec)
	if err != nil || !a.Feasible {
		return linalg.NewVector(n)
	}
	return linalg.VectorOf(a.Freqs...)
}
