package sim

import (
	"context"
	"fmt"
	"time"

	"protemp/internal/dmpc"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/obs"
)

// ProTempDMPC is the distributed counterpart of ProTempOnline: the
// same per-window MPC decision, but produced by dmpc.Solver's cluster
// decomposition — parallel per-cluster solves coordinated by dual
// updates on boundary temperatures — instead of one dense centralized
// program. On the paper's 8-core plan with a single cluster it
// degenerates to exactly the centralized decision sequence; its reason
// to exist is the many-core regime where the dense solve is
// intractable. Like every policy, it is not safe for concurrent use.
type ProTempDMPC struct {
	// Solver is the compiled distributed solver (required).
	Solver *dmpc.Solver

	// Solves counts windows solved; Downgrades and Idles aggregate the
	// clusters that bisected down or idled across all windows.
	Solves     int
	Downgrades int
	Idles      int
	// WarmHits / WarmRejects aggregate cluster warm-start outcomes;
	// OuterIters and Fallbacks accumulate consensus work.
	WarmHits    int
	WarmRejects int
	OuterIters  int
	Fallbacks   int
	// MaxPrimalResidC is the worst final consensus residual seen (°C).
	MaxPrimalResidC float64
	// SolveNanosTotal accumulates whole-window solve wall time;
	// SolveNanos, when non-nil, additionally receives each window's
	// wall time (callers wanting quantiles supply a histogram).
	SolveNanosTotal int64
	SolveNanos      *metrics.Histogram
	// Flight, when non-nil, records one solve trace per window (cluster
	// spans plus the ADMM outer-iteration timeline). Nil adds nothing.
	Flight *obs.FlightRecorder
}

// Name implements Policy.
func (p *ProTempDMPC) Name() string {
	return fmt.Sprintf("Pro-Temp-DMPC(%d)", p.Solver.Clusters())
}

// Decide implements Policy. The downgrade ladder (bisect the largest
// supportable uniform target, else idle) runs per cluster inside the
// solver; on any solver failure the window idles, which is always
// thermally safe.
func (p *ProTempDMPC) Decide(st WindowState) linalg.Vector {
	chip := p.Solver.Chip()
	n := chip.NumCores()
	// A full-dropout sensing window means this state is pure prediction:
	// drop every cluster's warm optimum and the consensus duals so the
	// blind window's solution never seeds the next real one.
	if st.SensingDegraded {
		p.Solver.Invalidate()
	}
	required := clampFreq(st.RequiredFreq, chip.FMax())
	if required > 0 && required < 0.1*chip.FMax() {
		required = 0.1 * chip.FMax()
	}

	tr := p.Flight.StartStep("dmpc")
	if tr != nil {
		p.Solver.SetRecorder(tr)
	}
	start := time.Now()
	a, stats, err := p.Solver.Solve(context.Background(), st.MaxCoreTemp, st.BlockTemps, required)
	if tr != nil {
		p.Solver.SetRecorder(nil)
		p.Flight.EndStep(tr, err)
	}
	elapsed := time.Since(start).Nanoseconds()
	p.SolveNanosTotal += elapsed
	if p.SolveNanos != nil {
		p.SolveNanos.ObserveDuration(elapsed)
	}
	p.Solves++
	p.WarmHits += stats.WarmHits
	p.WarmRejects += stats.WarmRejects
	p.OuterIters += stats.OuterIters
	p.Downgrades += stats.Downgrades
	p.Idles += stats.Idles
	if stats.Fallback {
		p.Fallbacks++
	}
	if stats.PrimalResidC > p.MaxPrimalResidC {
		p.MaxPrimalResidC = stats.PrimalResidC
	}
	if err != nil {
		return linalg.NewVector(n)
	}
	return linalg.VectorOf(a.Freqs...)
}
