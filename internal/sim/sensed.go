package sim

import (
	"fmt"
	"math"

	"protemp/internal/estimate"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/sense"
	"protemp/internal/thermal"
)

// Sensing configures the imperfect measurement path of a run: the
// per-core sensor defect models and, optionally, the state estimator
// that reconstructs the full thermal map from the degraded readings.
// The zero value (or a nil pointer in Config) means perfect sensing —
// policies observe the true temperatures directly. It is pure data,
// JSON-serializable for the server's session API.
type Sensing struct {
	// Sensors holds one defect config per core; a single entry is
	// broadcast to every core, nil models perfect sensors (useful to
	// exercise the estimator path alone).
	Sensors []sense.Config `json:"sensors,omitempty"`
	// Seed fixes the sensor defect sequence; fleet runs reuse the
	// workload seed so a cell replays bit-identically.
	Seed int64 `json:"seed,omitempty"`
	// Estimator selects the observer: "" or "none" feeds policies the
	// raw readings (core temps only, no block map — the online policy
	// degrades to its conservative uniform-start mode), "kalman" or
	// "luenberger" reconstructs the full map via internal/estimate.
	Estimator string `json:"estimator,omitempty"`
	// ModelErr mis-scales the estimator's thermal model by this gain
	// factor (thermal.Discrete.WithGainError) — the wrong-RC mismatch
	// study. Zero or one keeps the exact model. The simulator always
	// integrates the true model; only the observer is wrong.
	ModelErr float64 `json:"model_err,omitempty"`
	// ProcessSigma / MeasSigma / Gain tune the estimator (see
	// estimate.Config); zero selects its defaults, with MeasSigma
	// additionally defaulting to each sensor's effective noise
	// sqrt(sigma² + quant²/12) when defects are configured.
	ProcessSigma float64 `json:"process_sigma_c,omitempty"`
	MeasSigma    float64 `json:"meas_sigma_c,omitempty"`
	Gain         float64 `json:"gain,omitempty"`
}

// wantsEstimator reports whether an observer is configured.
func (sn *Sensing) wantsEstimator() bool {
	return sn != nil && sn.Estimator != "" && sn.Estimator != "none"
}

// Validate checks the engine-independent rules.
func (sn *Sensing) Validate() error {
	if sn == nil {
		return nil
	}
	for i, c := range sn.Sensors {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("sim: sensor %d: %w", i, err)
		}
	}
	if sn.wantsEstimator() {
		if _, err := estimate.ParseKind(sn.Estimator, estimate.Kalman); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if sn.ModelErr != 0 && (!(sn.ModelErr > 0) || math.IsInf(sn.ModelErr, 0)) {
		return fmt.Errorf("sim: invalid sensing model error %g", sn.ModelErr)
	}
	return nil
}

// SenseSummary is the observability slice of a sensed run's Result:
// injected-defect counters plus estimator accuracy, the quantities the
// fleet leaderboard reports per cell.
type SenseSummary struct {
	// Windows / Dropouts / StuckSensors / DegradedWindows mirror
	// sense.Stats at the end of the run.
	Windows         uint64 `json:"windows"`
	Dropouts        uint64 `json:"dropouts"`
	StuckSensors    uint64 `json:"stuck_sensors"`
	DegradedWindows uint64 `json:"degraded_windows"`
	// Estimator names the observer ("" for raw readings).
	Estimator string `json:"estimator,omitempty"`
	// EstimateRMSC is the estimate-vs-truth RMS error in °C across all
	// blocks and windows — how well the observer tracked reality.
	EstimateRMSC float64 `json:"estimate_rms_c,omitempty"`
	// CovTraceC2 is the Kalman steady-state covariance trace in °C².
	CovTraceC2 float64 `json:"cov_trace_c2,omitempty"`
	// Innovation is the per-window innovation ∞-norm histogram in
	// milli-°C (the residual magnitude an operator alarms on).
	Innovation *metrics.Histogram `json:"-"`
}

// SensedStepper decorates a Stepper with the sense→estimate chain:
// before each policy decision the true core temperatures pass through
// the sensor bank, and (when configured) the estimator folds the
// readings into a reconstructed per-block map. Policies observe only
// the degraded view; the underlying simulation always integrates the
// truth. Like Stepper it is single-goroutine state.
type SensedStepper struct {
	inner *Stepper
	bank  *sense.Bank
	est   *estimate.Estimator
	kind  string

	readings []sense.Reading
	z        []float64
	valid    []bool
	lastVal  []float64 // hold-last-valid raw readings per core
	haveVal  []bool

	// lastPower is the mean applied power over the window just
	// simulated — what a platform's energy counters report per DFS
	// period, and what the estimator's predict consumes.
	lastPower linalg.Vector
	havePower bool

	window    int // windows committed so far
	cachedFor int // window index the cached state belongs to
	cached    WindowState
	haveCache bool

	innov    *metrics.Histogram
	sumSqErr float64
	errN     int
}

// NewSensedStepper builds the decorated stepper from a Config whose
// Sensing field is set (a nil Sensing yields a perfect sensor bank, so
// the decorator is then an identity wrapper plus bookkeeping).
func NewSensedStepper(cfg Config) (*SensedStepper, error) {
	if err := cfg.Sensing.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewStepper(cfg)
	if err != nil {
		return nil, err
	}
	inner.trackPower = true
	inner.winPower = linalg.NewVector(inner.cfg.Disc.NumNodes())
	sn := cfg.Sensing
	if sn == nil {
		sn = &Sensing{}
	}
	n := inner.n

	sensors := sn.Sensors
	switch len(sensors) {
	case 0:
		sensors = sense.Uniform(n, sense.Config{})
	case 1:
		sensors = sense.Uniform(n, sensors[0])
	case n:
	default:
		return nil, fmt.Errorf("sim: %d sensor configs for %d cores (want 0, 1 or %d)", len(sensors), n, n)
	}
	bank, err := sense.NewBank(sensors, sn.Seed)
	if err != nil {
		return nil, err
	}

	ss := &SensedStepper{
		inner:     inner,
		bank:      bank,
		z:         make([]float64, n),
		valid:     make([]bool, n),
		lastVal:   make([]float64, n),
		haveVal:   make([]bool, n),
		lastPower: linalg.NewVector(inner.cfg.Disc.NumNodes()),
	}
	if sn.wantsEstimator() {
		kind, err := estimate.ParseKind(sn.Estimator, estimate.Kalman)
		if err != nil {
			return nil, err
		}
		disc, err := estimatorModel(cfg.Disc, sn.ModelErr)
		if err != nil {
			return nil, err
		}
		blocks := make([]int, n)
		for i := range blocks {
			blocks[i] = inner.chip.CoreBlockIndex(i)
		}
		// The predict step runs on a busy-fraction power proxy, not the
		// sub-step power sequence, so per-window model error is larger
		// than the estimate package's raw default: lean on measurements.
		qSigma := sn.ProcessSigma
		if qSigma == 0 {
			qSigma = 0.5
		}
		ss.est, err = estimate.New(estimate.Config{
			Disc:           disc,
			StepsPerWindow: inner.spw,
			SensorBlocks:   blocks,
			ProcessSigma:   qSigma,
			MeasSigma:      measSigmas(sn, sensors),
			Kind:           kind,
			Gain:           sn.Gain,
		})
		if err != nil {
			return nil, err
		}
		// Seed from the known uniform start so the very first window
		// already has a full-map estimate.
		if err := ss.est.Reset(linalg.Constant(disc.NumNodes(), inner.cfg.T0)); err != nil {
			return nil, err
		}
		ss.kind = kind.String()
		ss.innov = &metrics.Histogram{}
	}
	return ss, nil
}

// measSigmas derives the estimator's measurement-noise sigmas: an
// explicit override broadcasts, otherwise each sensor's effective
// noise sqrt(sigma² + quant²/12), floored so a perfect sensor still
// yields a well-conditioned Riccati solve.
func measSigmas(sn *Sensing, sensors []sense.Config) []float64 {
	if sn.MeasSigma > 0 {
		return []float64{sn.MeasSigma}
	}
	out := make([]float64, len(sensors))
	for i, c := range sensors {
		s := math.Sqrt(c.NoiseSigma*c.NoiseSigma + c.QuantStep*c.QuantStep/12)
		if s < 0.05 {
			s = 0.05
		}
		out[i] = s
	}
	return out
}

// Done reports whether the underlying simulation has terminated.
func (ss *SensedStepper) Done() bool { return ss.inner.Done() }

// Time returns the simulated time at the next DFS boundary.
func (ss *SensedStepper) Time() float64 { return ss.inner.Time() }

// Temps returns the TRUE per-node temperatures — ground truth for
// estimate-vs-truth comparisons, never shown to policies.
func (ss *SensedStepper) Temps() linalg.Vector { return ss.inner.Temps() }

// Estimator exposes the observer (nil when raw readings are served).
func (ss *SensedStepper) Estimator() *estimate.Estimator { return ss.est }

// SenseStats snapshots the injected-defect counters.
func (ss *SensedStepper) SenseStats() sense.Stats { return ss.bank.Stats() }

// State returns the WindowState a policy observes at the current DFS
// boundary: sensor readings in place of true core temperatures, and
// the estimator's reconstructed map (or no map at all) in place of the
// true block temperatures. The sensor bank and estimator advance
// exactly once per window no matter how often State is called, so the
// defect sequence stays deterministic under a fixed seed.
func (ss *SensedStepper) State() WindowState {
	if ss.haveCache && ss.cachedFor == ss.window {
		return copyState(ss.cached)
	}
	truth := ss.inner.State()

	var err error
	ss.readings, err = ss.bank.Observe(ss.readings, truth.Time, truth.CoreTemps)
	if err != nil {
		// Shapes were validated at construction; an error here is a
		// programming bug, not a run-time condition.
		panic(err)
	}
	degraded := true
	for i, r := range ss.readings {
		ss.z[i] = r.Value
		ss.valid[i] = r.Valid
		if r.Valid {
			degraded = false
			ss.lastVal[i] = r.Value
			ss.haveVal[i] = true
		}
	}

	st := truth
	st.SensingDegraded = degraded
	if ss.est != nil {
		if ss.havePower {
			if err := ss.est.Predict(ss.lastPower); err != nil {
				panic(err)
			}
		}
		if err := ss.est.Correct(ss.z, ss.valid); err != nil {
			panic(err)
		}
		est := ss.est.Estimate()
		st.BlockTemps = est.Clone()
		for i := range st.CoreTemps {
			st.CoreTemps[i] = est[ss.inner.chip.CoreBlockIndex(i)]
		}
		ss.innov.Observe(uint64(ss.est.LastInnovation() * 1000))
		for i, v := range est {
			d := v - truth.BlockTemps[i]
			ss.sumSqErr += d * d
		}
		ss.errN += len(est)
	} else {
		// Raw mode: hold the last valid reading through dropouts (the
		// uniform start is the prior before any reading lands), and
		// withhold the block map — the online policy then falls back to
		// its conservative uniform-start formulation.
		for i := range st.CoreTemps {
			switch {
			case ss.valid[i]:
				st.CoreTemps[i] = ss.z[i]
			case ss.haveVal[i]:
				st.CoreTemps[i] = ss.lastVal[i]
			default:
				st.CoreTemps[i] = ss.inner.cfg.T0
			}
		}
		st.BlockTemps = nil
	}
	st.MaxCoreTemp = st.CoreTemps.Max()

	ss.cached = st
	ss.cachedFor = ss.window
	ss.haveCache = true
	return copyState(st)
}

// copyState deep-copies the vectors so cached state survives policy
// mutation.
func copyState(st WindowState) WindowState {
	st.CoreTemps = st.CoreTemps.Clone()
	if st.BlockTemps != nil {
		st.BlockTemps = st.BlockTemps.Clone()
	}
	st.Utilization = st.Utilization.Clone()
	return st
}

// Step runs one window under the configured policy, which observes the
// sensed state rather than the truth.
func (ss *SensedStepper) Step() error {
	st := ss.State()
	cmd, err := validatePolicyOutput(ss.inner.cfg.Policy.Decide(st), ss.inner.n, ss.inner.fmax)
	if err != nil {
		return err
	}
	ss.commit(cmd)
	return nil
}

// StepWith runs one window under externally supplied frequency
// commands — the session-driven path.
func (ss *SensedStepper) StepWith(cmd linalg.Vector) error {
	out, err := validatePolicyOutput(cmd, ss.inner.n, ss.inner.fmax)
	if err != nil {
		return err
	}
	ss.commit(out)
	return nil
}

// commit advances the simulation one window and refreshes the
// estimator's applied-power reading from what actually ran.
func (ss *SensedStepper) commit(cmd linalg.Vector) {
	ss.State() // force this window's observation before truth advances
	ss.inner.advance(cmd)
	copy(ss.lastPower, ss.inner.winPower)
	ss.havePower = true
	ss.window++
	ss.haveCache = false
}

// Result finalizes the run metrics and attaches the SenseSummary.
func (ss *SensedStepper) Result() *Result {
	res := ss.inner.Result()
	s := ss.bank.Stats()
	sum := &SenseSummary{
		Windows:         s.Windows,
		Dropouts:        s.Dropouts,
		StuckSensors:    s.StuckSensors,
		DegradedWindows: s.DegradedWindows,
		Estimator:       ss.kind,
	}
	if ss.est != nil {
		sum.Innovation = ss.innov
		sum.CovTraceC2 = ss.est.CovTrace()
		if ss.errN > 0 {
			sum.EstimateRMSC = math.Sqrt(ss.sumSqErr / float64(ss.errN))
		}
	}
	res.Sense = sum
	return res
}

// WindowStepper is the per-window driving surface shared by Stepper
// and SensedStepper — what sessions and the server stream against.
type WindowStepper interface {
	Done() bool
	Time() float64
	State() WindowState
	Step() error
	StepWith(cmd linalg.Vector) error
	Result() *Result
	Temps() linalg.Vector
}

var (
	_ WindowStepper = (*Stepper)(nil)
	_ WindowStepper = (*SensedStepper)(nil)
)

// NewWindowStepper returns a SensedStepper when cfg.Sensing is set and
// a plain Stepper otherwise.
func NewWindowStepper(cfg Config) (WindowStepper, error) {
	if cfg.Sensing != nil {
		return NewSensedStepper(cfg)
	}
	return NewStepper(cfg)
}

// estimatorModel resolves the observer's (possibly mis-scaled) model —
// shared with the facade so Session-side estimators match sim-side
// ones exactly.
func estimatorModel(disc *thermal.Discrete, modelErr float64) (*thermal.Discrete, error) {
	if modelErr != 0 && modelErr != 1 {
		return disc.WithGainError(modelErr)
	}
	return disc, nil
}
