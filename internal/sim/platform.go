package sim

import (
	"fmt"
	"math"

	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/power"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Chip *power.Chip
	// Disc is the thermal stepper; its Dt is the co-simulation sub-step
	// (the paper's 0.4 ms).
	Disc   *thermal.Discrete
	Policy Policy
	// Assigner defaults to FirstIdle.
	Assigner Assigner
	Trace    *workload.Trace
	// Window is the DFS period in seconds (default 0.1, the paper's
	// 100 ms); it must be an integer multiple of Disc.Dt.
	Window float64
	// TMax is the limit used for violation accounting (default 100).
	TMax float64
	// T0 is the uniform initial temperature (default the model ambient).
	T0 float64
	// RecordBlocks lists floorplan block names whose temperatures are
	// sampled once per window (for the trace figures).
	RecordBlocks []string
	// MaxTime caps the simulation; zero derives a generous cap from the
	// trace duration.
	MaxTime float64
}

// Result aggregates a run's metrics.
type Result struct {
	Policy     string
	Assigner   string
	SimTime    float64
	Completed  int
	Unfinished int
	// CoreBands holds per-core temperature-band occupancy.
	CoreBands []*metrics.Bands
	// AvgBands merges all cores — the paper's "averaged across all the
	// processors" Fig. 6 quantity.
	AvgBands *metrics.Bands
	Wait     *metrics.WaitStats
	Gradient *metrics.GradientStats
	// Series holds per-window temperature samples for RecordBlocks.
	Series map[string]*metrics.Series
	// MaxCoreTemp is the hottest core temperature ever reached.
	MaxCoreTemp float64
	// ViolationFrac is the fraction of core-time above TMax.
	ViolationFrac float64
	// EnergyJ is the integrated chip energy.
	EnergyJ float64
}

type coreState struct {
	busy      bool
	remaining float64 // work left, seconds at fmax
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Chip == nil || cfg.Disc == nil || cfg.Policy == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("sim: Chip, Disc, Policy and Trace are required")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window == 0 {
		cfg.Window = 0.1
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("sim: non-positive window %g", cfg.Window)
	}
	dt := cfg.Disc.Dt
	spw := int(math.Round(cfg.Window / dt))
	if spw < 1 || math.Abs(float64(spw)*dt-cfg.Window) > 1e-9*cfg.Window {
		return nil, fmt.Errorf("sim: window %g not an integer multiple of thermal step %g", cfg.Window, dt)
	}
	if cfg.TMax == 0 {
		cfg.TMax = 100
	}
	if cfg.T0 == 0 {
		cfg.T0 = cfg.Disc.Model().Ambient()
	}
	if cfg.Assigner == nil {
		cfg.Assigner = FirstIdle{}
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = cfg.Trace.Duration()*10 + 30
	}

	chip := cfg.Chip
	fp := chip.Floorplan()
	n := chip.NumCores()
	nb := fp.NumBlocks()
	if cfg.Disc.NumNodes() != nb {
		return nil, fmt.Errorf("sim: thermal model has %d nodes, floorplan %d blocks", cfg.Disc.NumNodes(), nb)
	}
	fmax := chip.FMax()

	res := &Result{
		Policy:    cfg.Policy.Name(),
		Assigner:  cfg.Assigner.Name(),
		CoreBands: make([]*metrics.Bands, n),
		AvgBands:  metrics.NewBands(nil),
		Wait:      &metrics.WaitStats{},
		Gradient:  &metrics.GradientStats{},
		Series:    make(map[string]*metrics.Series),
	}
	for i := range res.CoreBands {
		res.CoreBands[i] = metrics.NewBands(nil)
	}
	recordIdx := make(map[string]int, len(cfg.RecordBlocks))
	for _, name := range cfg.RecordBlocks {
		bi, ok := fp.IndexOf(name)
		if !ok {
			return nil, fmt.Errorf("sim: unknown record block %q", name)
		}
		recordIdx[name] = bi
		res.Series[name] = &metrics.Series{Name: name}
	}

	temps := linalg.Constant(nb, cfg.T0)
	next := linalg.NewVector(nb)
	pvec := linalg.NewVector(nb)
	fixed := chip.FixedPower()
	cores := make([]coreState, n)
	coreTemps := linalg.NewVector(n)
	freqs := linalg.NewVector(n)
	busySteps := make([]int, n)
	utilization := linalg.NewVector(n)

	var queue []workload.Task
	tasks := cfg.Trace.Tasks
	nextArrival := 0
	t := 0.0
	var coreTime, violTime float64
	res.MaxCoreTemp = cfg.T0

	for {
		// ----- DFS boundary: sense, account, decide -----
		for i := 0; i < n; i++ {
			coreTemps[i] = temps[chip.CoreBlockIndex(i)]
		}
		pending := 0.0
		for _, c := range cores {
			if c.busy {
				pending += c.remaining
			}
		}
		for _, task := range queue {
			pending += task.Work
		}
		required := 0.0
		if pending > 0 {
			required = pending / (float64(n) * cfg.Window) * fmax
		}
		st := WindowState{
			Time:         t,
			CoreTemps:    coreTemps.Clone(),
			BlockTemps:   temps.Clone(),
			MaxCoreTemp:  coreTemps.Max(),
			RequiredFreq: required,
			Utilization:  utilization.Clone(),
			QueueLen:     len(queue),
		}
		cmd, err := validatePolicyOutput(cfg.Policy.Decide(st), n, fmax)
		if err != nil {
			return nil, err
		}
		copy(freqs, cmd)

		for name, bi := range recordIdx {
			res.Series[name].Append(t, temps[bi])
		}

		// ----- simulate the window at thermal sub-steps -----
		for s := 0; s < spw; s++ {
			for nextArrival < len(tasks) && tasks[nextArrival].Arrival <= t {
				queue = append(queue, tasks[nextArrival])
				nextArrival++
			}
			// Assign queued tasks to idle cores that can actually run.
			for len(queue) > 0 {
				var idle []int
				for i := range cores {
					if !cores[i].busy && freqs[i] > 0 {
						idle = append(idle, i)
					}
				}
				for i := 0; i < n; i++ {
					coreTemps[i] = temps[chip.CoreBlockIndex(i)]
				}
				pick := cfg.Assigner.Pick(idle, coreTemps)
				if pick < 0 {
					break
				}
				task := queue[0]
				queue = queue[1:]
				cores[pick].busy = true
				cores[pick].remaining = task.Work
				res.Wait.Add(t - task.Arrival)
			}
			// Execute.
			for i := range cores {
				if cores[i].busy {
					busySteps[i]++
					if freqs[i] > 0 {
						cores[i].remaining -= freqs[i] / fmax * dt
						if cores[i].remaining <= 1e-12 {
							cores[i].busy = false
							cores[i].remaining = 0
							res.Completed++
						}
					}
				}
			}
			// Power: busy cores draw at their commanded frequency, idle
			// cores are clock-gated to zero; uncore power is constant.
			copy(pvec, fixed)
			for i := range cores {
				bi := chip.CoreBlockIndex(i)
				if cores[i].busy {
					pvec[bi] = chip.CoreModelOf(i).AtFrequency(freqs[i])
				} else {
					pvec[bi] = 0
				}
			}
			res.EnergyJ += pvec.Sum() * dt
			// Thermal step.
			cfg.Disc.Step(next, temps, pvec)
			temps, next = next, temps
			// Metrics.
			minT, maxT := math.Inf(1), math.Inf(-1)
			for i := 0; i < n; i++ {
				ct := temps[chip.CoreBlockIndex(i)]
				res.CoreBands[i].Add(ct, dt)
				res.AvgBands.Add(ct, dt)
				if ct < minT {
					minT = ct
				}
				if ct > maxT {
					maxT = ct
				}
			}
			res.Gradient.Add(maxT-minT, dt)
			if maxT > res.MaxCoreTemp {
				res.MaxCoreTemp = maxT
			}
			for i := 0; i < n; i++ {
				coreTime += dt
				if temps[chip.CoreBlockIndex(i)] > cfg.TMax {
					violTime += dt
				}
			}
			t += dt
		}

		// Per-core utilization observed over the window just simulated.
		for i := range busySteps {
			utilization[i] = float64(busySteps[i]) / float64(spw)
			busySteps[i] = 0
		}

		// ----- termination -----
		done := nextArrival == len(tasks) && len(queue) == 0
		if done {
			for _, c := range cores {
				if c.busy {
					done = false
					break
				}
			}
		}
		if done || t >= cfg.MaxTime {
			res.Unfinished = len(queue) + (len(tasks) - nextArrival)
			for _, c := range cores {
				if c.busy {
					res.Unfinished++
				}
			}
			break
		}
	}

	res.SimTime = t
	if coreTime > 0 {
		res.ViolationFrac = violTime / coreTime
	}
	return res, nil
}
