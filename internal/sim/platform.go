package sim

import (
	"context"
	"fmt"
	"math"

	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/power"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Chip *power.Chip
	// Disc is the thermal stepper; its Dt is the co-simulation sub-step
	// (the paper's 0.4 ms).
	Disc   *thermal.Discrete
	Policy Policy
	// Assigner defaults to FirstIdle.
	Assigner Assigner
	Trace    *workload.Trace
	// Window is the DFS period in seconds (default 0.1, the paper's
	// 100 ms); it must be an integer multiple of Disc.Dt.
	Window float64
	// TMax is the limit used for violation accounting (default 100).
	TMax float64
	// T0 is the uniform initial temperature (default the model ambient).
	T0 float64
	// RecordBlocks lists floorplan block names whose temperatures are
	// sampled once per window (for the trace figures).
	RecordBlocks []string
	// MaxTime caps the simulation; zero derives a generous cap from the
	// trace duration.
	MaxTime float64
	// Sensing, when non-nil, interposes the imperfect measurement path
	// (sensor defects + optional state estimator) between the simulated
	// temperatures and the policy. Run then drives a SensedStepper.
	Sensing *Sensing
}

// Result aggregates a run's metrics.
type Result struct {
	Policy     string
	Assigner   string
	SimTime    float64
	Completed  int
	Unfinished int
	// CoreBands holds per-core temperature-band occupancy.
	CoreBands []*metrics.Bands
	// AvgBands merges all cores — the paper's "averaged across all the
	// processors" Fig. 6 quantity.
	AvgBands *metrics.Bands
	Wait     *metrics.WaitStats
	Gradient *metrics.GradientStats
	// Series holds per-window temperature samples for RecordBlocks.
	Series map[string]*metrics.Series
	// MaxCoreTemp is the hottest core temperature ever reached.
	MaxCoreTemp float64
	// ViolationFrac is the fraction of core-time above TMax.
	ViolationFrac float64
	// EnergyJ is the integrated chip energy.
	EnergyJ float64
	// Sense reports the injected sensor defects and estimator accuracy;
	// nil for runs with perfect sensing.
	Sense *SenseSummary
}

type coreState struct {
	busy      bool
	remaining float64 // work left, seconds at fmax
}

// Stepper advances a simulation one DFS window at a time — the
// session-driven counterpart of the batch Run. A control session (or
// any external driver) can interleave its own work between windows,
// inspect temperatures mid-run, and stop whenever it likes; Run is the
// thin loop over a Stepper. A Stepper is single-goroutine state: it
// must not be stepped concurrently.
type Stepper struct {
	cfg  Config
	chip *power.Chip
	n    int
	fmax float64
	spw  int // thermal sub-steps per window
	dt   float64

	res       *Result
	recordIdx map[string]int

	temps       linalg.Vector
	next        linalg.Vector
	pvec        linalg.Vector
	fixed       linalg.Vector
	cores       []coreState
	coreTemps   linalg.Vector
	freqs       linalg.Vector
	busySteps   []int
	utilization linalg.Vector

	queue       []workload.Task
	tasks       []workload.Task
	nextArrival int
	t           float64
	coreTime    float64
	violTime    float64
	done        bool

	// winPower accumulates the window's mean applied power per block
	// when trackPower is set (the SensedStepper's estimator predicts
	// with it; plain runs skip the bookkeeping).
	winPower   linalg.Vector
	trackPower bool
}

// NewStepper validates the configuration, applies the paper's defaults
// and returns a Stepper positioned before the first DFS window.
func NewStepper(cfg Config) (*Stepper, error) {
	if cfg.Chip == nil || cfg.Disc == nil || cfg.Policy == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("sim: Chip, Disc, Policy and Trace are required")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window == 0 {
		cfg.Window = 0.1
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("sim: non-positive window %g", cfg.Window)
	}
	dt := cfg.Disc.Dt
	spw := int(math.Round(cfg.Window / dt))
	if spw < 1 || math.Abs(float64(spw)*dt-cfg.Window) > 1e-9*cfg.Window {
		return nil, fmt.Errorf("sim: window %g not an integer multiple of thermal step %g", cfg.Window, dt)
	}
	if cfg.TMax == 0 {
		cfg.TMax = 100
	}
	if cfg.T0 == 0 {
		cfg.T0 = cfg.Disc.Model().Ambient()
	}
	if cfg.Assigner == nil {
		cfg.Assigner = FirstIdle{}
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = cfg.Trace.Duration()*10 + 30
	}

	chip := cfg.Chip
	fp := chip.Floorplan()
	n := chip.NumCores()
	nb := fp.NumBlocks()
	if cfg.Disc.NumNodes() != nb {
		return nil, fmt.Errorf("sim: thermal model has %d nodes, floorplan %d blocks", cfg.Disc.NumNodes(), nb)
	}

	res := &Result{
		Policy:    cfg.Policy.Name(),
		Assigner:  cfg.Assigner.Name(),
		CoreBands: make([]*metrics.Bands, n),
		AvgBands:  metrics.NewBands(nil),
		Wait:      &metrics.WaitStats{},
		Gradient:  &metrics.GradientStats{},
		Series:    make(map[string]*metrics.Series),
	}
	for i := range res.CoreBands {
		res.CoreBands[i] = metrics.NewBands(nil)
	}
	recordIdx := make(map[string]int, len(cfg.RecordBlocks))
	for _, name := range cfg.RecordBlocks {
		bi, ok := fp.IndexOf(name)
		if !ok {
			return nil, fmt.Errorf("sim: unknown record block %q", name)
		}
		recordIdx[name] = bi
		res.Series[name] = &metrics.Series{Name: name}
	}
	res.MaxCoreTemp = cfg.T0

	return &Stepper{
		cfg:         cfg,
		chip:        chip,
		n:           n,
		fmax:        chip.FMax(),
		spw:         spw,
		dt:          dt,
		res:         res,
		recordIdx:   recordIdx,
		temps:       linalg.Constant(nb, cfg.T0),
		next:        linalg.NewVector(nb),
		pvec:        linalg.NewVector(nb),
		fixed:       chip.FixedPower(),
		cores:       make([]coreState, n),
		coreTemps:   linalg.NewVector(n),
		freqs:       linalg.NewVector(n),
		busySteps:   make([]int, n),
		utilization: linalg.NewVector(n),
		tasks:       cfg.Trace.Tasks,
	}, nil
}

// Done reports whether the simulation has terminated (all work drained
// or the MaxTime cap reached). Step is a no-op once Done returns true.
func (s *Stepper) Done() bool { return s.done }

// Time returns the simulated time in seconds at the next DFS boundary.
func (s *Stepper) Time() float64 { return s.t }

// Temps returns the full per-node temperature vector (a copy) at the
// current DFS boundary — the ground truth, regardless of any sensing
// decoration, so estimators and tests can compare estimate vs truth
// without reaching into internals.
func (s *Stepper) Temps() linalg.Vector { return s.temps.Clone() }

// State returns the WindowState the policy would observe at the current
// DFS boundary — the sensing half of a window without committing to a
// frequency decision. External sessions use it to drive their own
// controllers.
func (s *Stepper) State() WindowState {
	for i := 0; i < s.n; i++ {
		s.coreTemps[i] = s.temps[s.chip.CoreBlockIndex(i)]
	}
	pending := 0.0
	for _, c := range s.cores {
		if c.busy {
			pending += c.remaining
		}
	}
	for _, task := range s.queue {
		pending += task.Work
	}
	required := 0.0
	if pending > 0 {
		required = pending / (float64(s.n) * s.cfg.Window) * s.fmax
	}
	return WindowState{
		Time:         s.t,
		CoreTemps:    s.coreTemps.Clone(),
		BlockTemps:   s.temps.Clone(),
		MaxCoreTemp:  s.coreTemps.Max(),
		RequiredFreq: required,
		Utilization:  s.utilization.Clone(),
		QueueLen:     len(s.queue),
	}
}

// Step simulates one DFS window: sense, ask the policy for frequency
// commands, then co-simulate the thermal sub-steps. It returns an error
// only for invalid policy output.
func (s *Stepper) Step() error {
	st := s.State()
	cmd, err := validatePolicyOutput(s.cfg.Policy.Decide(st), s.n, s.fmax)
	if err != nil {
		return err
	}
	s.advance(cmd)
	return nil
}

// StepWith simulates one DFS window under externally supplied per-core
// frequency commands (Hz, length NumCores) — the session-driven path
// where the controller lives outside the simulator. Commands are
// clamped to [0, fmax]; NaN becomes 0.
func (s *Stepper) StepWith(cmd linalg.Vector) error {
	out, err := validatePolicyOutput(cmd, s.n, s.fmax)
	if err != nil {
		return err
	}
	s.advance(out)
	return nil
}

// advance runs one window under an already-validated command vector.
func (s *Stepper) advance(cmd linalg.Vector) {
	if s.done {
		return
	}
	copy(s.freqs, cmd)
	if s.trackPower {
		s.winPower.Fill(0)
	}

	for name, bi := range s.recordIdx {
		s.res.Series[name].Append(s.t, s.temps[bi])
	}

	// ----- simulate the window at thermal sub-steps -----
	for sub := 0; sub < s.spw; sub++ {
		for s.nextArrival < len(s.tasks) && s.tasks[s.nextArrival].Arrival <= s.t {
			s.queue = append(s.queue, s.tasks[s.nextArrival])
			s.nextArrival++
		}
		// Assign queued tasks to idle cores that can actually run.
		for len(s.queue) > 0 {
			var idle []int
			for i := range s.cores {
				if !s.cores[i].busy && s.freqs[i] > 0 {
					idle = append(idle, i)
				}
			}
			for i := 0; i < s.n; i++ {
				s.coreTemps[i] = s.temps[s.chip.CoreBlockIndex(i)]
			}
			pick := s.cfg.Assigner.Pick(idle, s.coreTemps)
			if pick < 0 {
				break
			}
			task := s.queue[0]
			s.queue = s.queue[1:]
			s.cores[pick].busy = true
			s.cores[pick].remaining = task.Work
			s.res.Wait.Add(s.t - task.Arrival)
		}
		// Execute.
		for i := range s.cores {
			if s.cores[i].busy {
				s.busySteps[i]++
				if s.freqs[i] > 0 {
					s.cores[i].remaining -= s.freqs[i] / s.fmax * s.dt
					if s.cores[i].remaining <= 1e-12 {
						s.cores[i].busy = false
						s.cores[i].remaining = 0
						s.res.Completed++
					}
				}
			}
		}
		// Power: busy cores draw at their commanded frequency, idle
		// cores are clock-gated to zero; uncore power is constant.
		copy(s.pvec, s.fixed)
		for i := range s.cores {
			bi := s.chip.CoreBlockIndex(i)
			if s.cores[i].busy {
				s.pvec[bi] = s.chip.CoreModelOf(i).AtFrequency(s.freqs[i])
			} else {
				s.pvec[bi] = 0
			}
		}
		s.res.EnergyJ += s.pvec.Sum() * s.dt
		if s.trackPower {
			s.winPower.Add(s.winPower, s.pvec)
		}
		// Thermal step.
		s.cfg.Disc.Step(s.next, s.temps, s.pvec)
		s.temps, s.next = s.next, s.temps
		// Metrics.
		minT, maxT := math.Inf(1), math.Inf(-1)
		for i := 0; i < s.n; i++ {
			ct := s.temps[s.chip.CoreBlockIndex(i)]
			s.res.CoreBands[i].Add(ct, s.dt)
			s.res.AvgBands.Add(ct, s.dt)
			if ct < minT {
				minT = ct
			}
			if ct > maxT {
				maxT = ct
			}
		}
		s.res.Gradient.Add(maxT-minT, s.dt)
		if maxT > s.res.MaxCoreTemp {
			s.res.MaxCoreTemp = maxT
		}
		for i := 0; i < s.n; i++ {
			s.coreTime += s.dt
			if s.temps[s.chip.CoreBlockIndex(i)] > s.cfg.TMax {
				s.violTime += s.dt
			}
		}
		s.t += s.dt
	}

	if s.trackPower {
		s.winPower.Scale(1/float64(s.spw), s.winPower)
	}
	// Per-core utilization observed over the window just simulated.
	for i := range s.busySteps {
		s.utilization[i] = float64(s.busySteps[i]) / float64(s.spw)
		s.busySteps[i] = 0
	}

	// ----- termination -----
	done := s.nextArrival == len(s.tasks) && len(s.queue) == 0
	if done {
		for _, c := range s.cores {
			if c.busy {
				done = false
				break
			}
		}
	}
	if done || s.t >= s.cfg.MaxTime {
		s.done = true
	}
}

// Result finalizes and returns the metrics accumulated so far. It may
// be called at any boundary, including after an early stop: unfinished
// work is counted from the live queue and arrival stream.
func (s *Stepper) Result() *Result {
	s.res.SimTime = s.t
	s.res.ViolationFrac = 0
	if s.coreTime > 0 {
		s.res.ViolationFrac = s.violTime / s.coreTime
	}
	unfinished := len(s.queue) + (len(s.tasks) - s.nextArrival)
	for _, c := range s.cores {
		if c.busy {
			unfinished++
		}
	}
	s.res.Unfinished = unfinished
	return s.res
}

// Run executes the simulation to completion. The context is checked at
// every DFS boundary; cancellation returns ctx.Err() with no result.
// A non-nil cfg.Sensing routes the run through the sense→estimate
// chain.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	st, err := NewWindowStepper(cfg)
	if err != nil {
		return nil, err
	}
	for !st.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := st.Step(); err != nil {
			return nil, err
		}
	}
	return st.Result(), nil
}
