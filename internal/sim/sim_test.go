package sim

import (
	"context"
	"math"
	"sync"
	"testing"

	"protemp/internal/core"
	"protemp/internal/floorplan"
	"protemp/internal/linalg"
	"protemp/internal/power"
	"protemp/internal/thermal"
	"protemp/internal/workload"
)

// Shared rig: Niagara chip, 1 ms thermal step (fast tests; the
// experiments package runs the paper's 0.4 ms), and a Pro-Temp table.
type rig struct {
	chip *power.Chip
	disc *thermal.Discrete
	ctrl *core.Controller
}

var (
	rigOnce sync.Once
	rigV    rig
	rigErr  error
)

func testRig(t *testing.T) rig {
	t.Helper()
	rigOnce.Do(func() {
		fp := floorplan.Niagara()
		chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
		if err != nil {
			rigErr = err
			return
		}
		model, err := thermal.NewRC(fp, thermal.DefaultParams())
		if err != nil {
			rigErr = err
			return
		}
		disc, err := model.Discretize(1e-3)
		if err != nil {
			rigErr = err
			return
		}
		window, err := disc.Window(100)
		if err != nil {
			rigErr = err
			return
		}
		table, err := core.GenerateTable(context.Background(), core.TableSpec{
			Chip:     chip,
			Window:   window,
			TMax:     100,
			TStarts:  []float64{47, 57, 67, 77, 87, 97, 100},
			FTargets: []float64{125e6, 250e6, 375e6, 500e6, 625e6, 750e6, 875e6, 1000e6},
		})
		if err != nil {
			rigErr = err
			return
		}
		ctrl, err := core.NewController(table)
		if err != nil {
			rigErr = err
			return
		}
		rigV = rig{chip: chip, disc: disc, ctrl: ctrl}
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	return rigV
}

func heavyTrace(t *testing.T, seconds float64) *workload.Trace {
	t.Helper()
	tr, err := workload.ComputeIntensive(11, 8, seconds).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mixedTrace(t *testing.T, seconds float64) *workload.Trace {
	t.Helper()
	tr, err := workload.Mixed(11, 8, seconds).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runPolicy(t *testing.T, r rig, p Policy, tr *workload.Trace) *Result {
	t.Helper()
	res, err := Run(context.Background(), Config{
		Chip:         r.chip,
		Disc:         r.disc,
		Policy:       p,
		Trace:        tr,
		RecordBlocks: []string{"P1", "P2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	r := testRig(t)
	tr := mixedTrace(t, 1)
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{Chip: r.chip, Disc: r.disc, Policy: &NoTC{NumCores: 8, FMax: 1e9}, Trace: tr, Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Run(context.Background(), Config{Chip: r.chip, Disc: r.disc, Policy: &NoTC{NumCores: 8, FMax: 1e9}, Trace: tr, Window: 0.00037}); err == nil {
		t.Error("non-multiple window accepted")
	}
	if _, err := Run(context.Background(), Config{Chip: r.chip, Disc: r.disc, Policy: &NoTC{NumCores: 8, FMax: 1e9}, Trace: tr, RecordBlocks: []string{"nope"}}); err == nil {
		t.Error("unknown record block accepted")
	}
	bad := &Trace{}
	_ = bad
	if _, err := Run(context.Background(), Config{Chip: r.chip, Disc: r.disc, Policy: &NoTC{NumCores: 3, FMax: 1e9}, Trace: tr}); err == nil {
		t.Error("policy with wrong core count accepted")
	}
}

// Trace alias to keep the validation test local.
type Trace = workload.Trace

func TestAllTasksCompleteUnderNoTC(t *testing.T) {
	r := testRig(t)
	tr := mixedTrace(t, 3)
	res := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, tr)
	if res.Completed != len(tr.Tasks) {
		t.Fatalf("completed %d of %d tasks", res.Completed, len(tr.Tasks))
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished = %d", res.Unfinished)
	}
	if res.Wait.Count() != len(tr.Tasks) {
		t.Fatalf("wait samples %d != tasks %d", res.Wait.Count(), len(tr.Tasks))
	}
	if res.EnergyJ <= 0 || res.SimTime <= 0 {
		t.Fatalf("accounting wrong: %+v", res)
	}
}

// The paper's Fig. 1 setup: under sustained heavy load, No-TC and
// Basic-DFS violate the 100 °C limit; Basic-DFS overshoots despite the
// 90 °C trigger because it only reacts at window boundaries.
func TestBaselinesViolateUnderHeavyLoad(t *testing.T) {
	r := testRig(t)
	tr := heavyTrace(t, 8)

	noTC := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, tr)
	if noTC.ViolationFrac == 0 {
		t.Fatalf("No-TC never violated (max %.1f °C) — thermal stress too low", noTC.MaxCoreTemp)
	}
	basic := runPolicy(t, r, &BasicDFS{NumCores: 8, FMax: 1e9, Threshold: 90}, tr)
	if basic.MaxCoreTemp <= 100 {
		t.Fatalf("Basic-DFS never exceeded 100 °C (max %.1f) — reactivity gap not reproduced", basic.MaxCoreTemp)
	}
	if basic.ViolationFrac >= noTC.ViolationFrac {
		t.Fatalf("Basic-DFS violation %.3f not below No-TC %.3f", basic.ViolationFrac, noTC.ViolationFrac)
	}
}

// The headline guarantee, closed loop: Pro-Temp never exceeds tmax.
func TestProTempNeverViolates(t *testing.T) {
	r := testRig(t)
	for _, tr := range []*workload.Trace{heavyTrace(t, 8), mixedTrace(t, 8)} {
		res := runPolicy(t, r, &ProTemp{Controller: r.ctrl}, tr)
		if res.MaxCoreTemp > 100.01 {
			t.Fatalf("Pro-Temp reached %.2f °C", res.MaxCoreTemp)
		}
		if res.ViolationFrac != 0 {
			t.Fatalf("Pro-Temp violation fraction %.4f", res.ViolationFrac)
		}
		if res.Completed == 0 {
			t.Fatal("Pro-Temp completed no work")
		}
	}
}

// Fig. 7: Pro-Temp's task waiting times beat Basic-DFS under the
// compute-intensive load (the paper reports ~60% reduction).
func TestProTempWaitsLessThanBasicDFS(t *testing.T) {
	r := testRig(t)
	tr := heavyTrace(t, 8)
	basic := runPolicy(t, r, &BasicDFS{NumCores: 8, FMax: 1e9, Threshold: 90}, tr)
	pro := runPolicy(t, r, &ProTemp{Controller: r.ctrl}, tr)
	if basic.Wait.Mean() <= 0 {
		t.Fatal("Basic-DFS has zero waiting — load too light for the comparison")
	}
	ratio := pro.Wait.Mean() / basic.Wait.Mean()
	if ratio >= 1 {
		t.Fatalf("Pro-Temp wait %.4f s not below Basic-DFS %.4f s (ratio %.2f)",
			pro.Wait.Mean(), basic.Wait.Mean(), ratio)
	}
	t.Logf("waiting-time ratio Pro-Temp/Basic-DFS = %.3f", ratio)
}

// §5.4: the coolest-first assignment reduces Basic-DFS's time above the
// limit relative to first-idle (but does not eliminate it), and
// reduces Pro-Temp's spatial gradient.
func TestCoolestFirstImproves(t *testing.T) {
	r := testRig(t)
	tr := heavyTrace(t, 8)
	cool := NewCoolestFirst(r.chip.Floorplan(), coreBlocks(r.chip), 0.5)

	basicFI := runPolicy(t, r, &BasicDFS{NumCores: 8, FMax: 1e9, Threshold: 90}, tr)
	basicCF, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc, Trace: tr,
		Policy:   &BasicDFS{NumCores: 8, FMax: 1e9, Threshold: 90},
		Assigner: cool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if basicCF.ViolationFrac > basicFI.ViolationFrac+0.02 {
		t.Fatalf("coolest-first worsened Basic-DFS violations: %.4f vs %.4f",
			basicCF.ViolationFrac, basicFI.ViolationFrac)
	}

	proFI := runPolicy(t, r, &ProTemp{Controller: r.ctrl}, tr)
	proCF, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc, Trace: tr,
		Policy:   &ProTemp{Controller: r.ctrl},
		Assigner: cool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if proCF.MaxCoreTemp > 100.01 {
		t.Fatalf("Pro-Temp + coolest-first violated: %.2f", proCF.MaxCoreTemp)
	}
	if proCF.Gradient.Mean() > proFI.Gradient.Mean()*1.1 {
		t.Fatalf("coolest-first did not help the gradient: %.3f vs %.3f",
			proCF.Gradient.Mean(), proFI.Gradient.Mean())
	}
}

func coreBlocks(chip *power.Chip) []int {
	out := make([]int, chip.NumCores())
	for i := range out {
		out[i] = chip.CoreBlockIndex(i)
	}
	return out
}

func TestSeriesRecording(t *testing.T) {
	r := testRig(t)
	tr := mixedTrace(t, 2)
	res := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, tr)
	for _, name := range []string{"P1", "P2"} {
		s, ok := res.Series[name]
		if !ok || s.Len() == 0 {
			t.Fatalf("series %s missing", name)
		}
		// One sample per window, starting at t=0.
		if s.Times[0] != 0 {
			t.Fatalf("series starts at %v", s.Times[0])
		}
		if s.Len() > 1 && math.Abs(s.Times[1]-0.1) > 1e-9 {
			t.Fatalf("window sampling off: second sample at %v", s.Times[1])
		}
	}
}

func TestPolicyOutputs(t *testing.T) {
	st := WindowState{
		CoreTemps:    linalg.VectorOf(85, 92, 70, 95, 50, 60, 89, 91),
		MaxCoreTemp:  95,
		RequiredFreq: 2e9, // above fmax: must clamp
	}
	no := (&NoTC{NumCores: 8, FMax: 1e9}).Decide(st)
	for _, f := range no {
		if f != 1e9 {
			t.Fatalf("No-TC did not clamp: %v", no)
		}
	}
	basic := (&BasicDFS{NumCores: 8, FMax: 1e9, Threshold: 90}).Decide(st)
	wantZero := []bool{false, true, false, true, false, false, false, true}
	for i, z := range wantZero {
		if z && basic[i] != 0 {
			t.Fatalf("core %d at %.0f °C not shut down", i, st.CoreTemps[i])
		}
		if !z && basic[i] != 1e9 {
			t.Fatalf("core %d wrongly throttled to %v", i, basic[i])
		}
	}
}

func TestAssigners(t *testing.T) {
	temps := linalg.VectorOf(80, 60, 70, 90)
	if got := (FirstIdle{}).Pick([]int{2, 1, 3}, temps); got != 1 {
		t.Fatalf("FirstIdle picked %d", got)
	}
	if got := (FirstIdle{}).Pick(nil, temps); got != -1 {
		t.Fatalf("FirstIdle on empty picked %d", got)
	}
	fp := floorplan.Niagara()
	chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	cool := NewCoolestFirst(fp, coreBlocks(chip), 0.5)
	temps8 := linalg.VectorOf(95, 94, 93, 92, 91, 90, 89, 20)
	if got := cool.Pick([]int{0, 7}, temps8); got != 7 {
		t.Fatalf("CoolestFirst picked %d", got)
	}
	if got := cool.Pick(nil, temps8); got != -1 {
		t.Fatalf("CoolestFirst on empty picked %d", got)
	}
	// Weight clamping.
	c2 := NewCoolestFirst(fp, coreBlocks(chip), 7)
	if c2.NeighborWeight != 1 {
		t.Fatalf("weight not clamped: %v", c2.NeighborWeight)
	}
}

func TestRunDeterministic(t *testing.T) {
	r := testRig(t)
	tr := mixedTrace(t, 2)
	a := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, tr)
	b := runPolicy(t, r, &NoTC{NumCores: 8, FMax: 1e9}, tr)
	if a.Completed != b.Completed || a.EnergyJ != b.EnergyJ || a.MaxCoreTemp != b.MaxCoreTemp {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
}

func TestMaxTimeCapStopsStarvation(t *testing.T) {
	r := testRig(t)
	// A policy that never runs anything starves the queue; the cap must
	// end the run and report unfinished work.
	tr := mixedTrace(t, 1)
	res, err := Run(context.Background(), Config{
		Chip: r.chip, Disc: r.disc, Trace: tr,
		Policy:  &stuckPolicy{},
		MaxTime: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished == 0 {
		t.Fatal("starved run reported no unfinished tasks")
	}
	if res.SimTime < 2 {
		t.Fatalf("run ended at %v before cap", res.SimTime)
	}
}

type stuckPolicy struct{}

func (stuckPolicy) Name() string { return "stuck" }
func (stuckPolicy) Decide(st WindowState) linalg.Vector {
	return linalg.NewVector(len(st.CoreTemps))
}
