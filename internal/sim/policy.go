// Package sim is the multi-core platform simulator the paper evaluates
// with: tasks arrive, a control unit assigns them to idle cores, a
// thermal/power management unit applies DFS every 100 ms window, and
// the chip's RC thermal model is co-simulated at the paper's 0.4 ms
// sub-step. The three policies compared in Section 5 are provided:
//
//   - No-TC: frequencies track the application requirement only.
//   - Basic-DFS: No-TC plus the traditional reactive rule — a core at
//     or above the threshold temperature at DFS time shuts down for the
//     following window (the paper's Figure 1 baseline).
//   - Pro-Temp: the table-driven controller from internal/core.
//
// Sensor sampling happens at window boundaries, which is exactly the
// reactivity gap the paper's drawback (1) describes: a core can blow
// through the limit mid-window before Basic-DFS reacts.
package sim

import (
	"fmt"
	"math"

	"protemp/internal/core"
	"protemp/internal/linalg"
)

// WindowState is what the thermal/power management unit knows at a DFS
// boundary.
type WindowState struct {
	// Time is the window start in seconds.
	Time float64
	// CoreTemps holds the per-core sensor readings in °C.
	CoreTemps linalg.Vector
	// BlockTemps holds the full per-block thermal map (length
	// NumBlocks); table-driven policies ignore it, the online-solving
	// extension consumes it.
	BlockTemps linalg.Vector
	// MaxCoreTemp is the hottest reading.
	MaxCoreTemp float64
	// RequiredFreq is the average frequency (Hz) needed to clear the
	// currently pending work within one window.
	RequiredFreq float64
	// Utilization is each core's busy fraction over the previous window
	// — what a per-core DVFS governor observes.
	Utilization linalg.Vector
	// QueueLen is the number of waiting tasks.
	QueueLen int
	// SensingDegraded reports that every sensor dropped out this window
	// (imperfect-sensing runs only): the state the policy sees is pure
	// prediction or held-over readings. Warm-started online policies
	// invalidate their solver state on it so a stale optimum never seeds
	// the next real solve.
	SensingDegraded bool
}

// Policy chooses per-core frequency commands for the next window.
type Policy interface {
	Name() string
	Decide(st WindowState) linalg.Vector
}

// NoTC scales frequencies only to match the application requirement —
// the paper's no-temperature-control reference. Each core's governor
// acts independently (the paper's drawback (2)): the frequency tracks
// the core's own observed utilization plus its share of the global
// backlog, so a core fed a steady task stream runs at full speed even
// while the rest of the chip idles.
type NoTC struct {
	NumCores int
	FMax     float64
}

// Name implements Policy.
func (p *NoTC) Name() string { return "No-TC" }

// Decide implements Policy.
func (p *NoTC) Decide(st WindowState) linalg.Vector {
	return perCoreDemand(st, p.NumCores, p.FMax)
}

// perCoreDemand implements the utilization-tracking governor shared by
// the No-TC and Basic-DFS baselines: normalized demand is the core's
// busy fraction plus the backlog share implied by the required average.
func perCoreDemand(st WindowState, n int, fmax float64) linalg.Vector {
	backlog := clampFreq(st.RequiredFreq, fmax) / fmax
	out := linalg.NewVector(n)
	for i := range out {
		var busy float64
		if st.Utilization != nil {
			busy = st.Utilization[i]
		}
		out[i] = clampFreq((busy+backlog)*fmax, fmax)
	}
	return out
}

// BasicDFS is the traditional reactive scheme: per-core
// utilization-tracking DVFS as in No-TC, but any core whose
// boundary-sampled temperature has reached the threshold shuts down
// until the next DFS point.
type BasicDFS struct {
	NumCores int
	FMax     float64
	// Threshold is the shutdown trigger in °C (the paper uses 90 °C
	// against a 100 °C limit).
	Threshold float64
}

// Name implements Policy.
func (p *BasicDFS) Name() string { return "Basic-DFS" }

// Decide implements Policy.
func (p *BasicDFS) Decide(st WindowState) linalg.Vector {
	out := perCoreDemand(st, p.NumCores, p.FMax)
	for i := range out {
		if st.CoreTemps[i] >= p.Threshold {
			out[i] = 0
		}
	}
	return out
}

// ProTemp wraps the Phase-2 controller.
type ProTemp struct {
	Controller *core.Controller
}

// Name implements Policy.
func (p *ProTemp) Name() string { return "Pro-Temp" }

// Decide implements Policy.
func (p *ProTemp) Decide(st WindowState) linalg.Vector {
	d := p.Controller.Decide(st.MaxCoreTemp, st.RequiredFreq)
	return linalg.VectorOf(d.Freqs...)
}

func clampFreq(f, fmax float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > fmax {
		return fmax
	}
	return f
}

// validatePolicyOutput normalizes a policy's command vector.
func validatePolicyOutput(freqs linalg.Vector, n int, fmax float64) (linalg.Vector, error) {
	if len(freqs) != n {
		return nil, fmt.Errorf("sim: policy returned %d frequencies for %d cores", len(freqs), n)
	}
	out := freqs.Clone()
	for i, f := range out {
		out[i] = clampFreq(f, fmax)
	}
	return out, nil
}
