// Package server is the thermal control-plane daemon: it exposes a
// protemp.Engine over HTTP/JSON so remote chips (or their management
// controllers) can run the paper's two-phase scheme as a service —
// expensive Phase-1 sweeps shared and persisted centrally, cheap
// Phase-2 decisions served per window to any number of control loops.
//
// The package sits above the facade: unlike the other internal
// packages (which the facade wires together), server consumes the
// public Engine/Session API and adds the serving concerns — network
// endpoints, a sharded session manager with idle expiry and graceful
// drain, and a metrics surface.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"protemp"
	"protemp/internal/metrics"
)

// Session-manager errors, mapped to HTTP statuses by the handlers.
var (
	// ErrSessionNotFound reports an unknown (or already expired) id.
	ErrSessionNotFound = errors.New("server: session not found")
	// ErrDraining reports that the manager is shutting down and no
	// longer accepts sessions or steps.
	ErrDraining = errors.New("server: draining, not accepting work")
)

// managedSession wraps one control session with its serving state.
// lastUsed and refs are guarded by the owning shard's mutex.
type managedSession struct {
	id       string
	sess     *protemp.Session
	online   bool
	created  time.Time
	lastUsed time.Time
	refs     int // in-flight operations pinning the session
}

// shard is one lock domain of the manager.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*managedSession
}

// sessionManager spreads sessions over N independently locked shards
// so thousands of concurrent control loops don't serialize on one
// mutex. An idle-TTL reaper expires sessions nobody has stepped
// recently (never one with an operation in flight), and Drain provides
// the context-scoped graceful shutdown: new work is refused, in-flight
// steps run to completion (or the context gives up), then every
// session is dropped.
type sessionManager struct {
	shards []*shard
	ttl    time.Duration
	now    func() time.Time

	// drainMu gates the draining flag against in-flight op accounting:
	// Acquire/Add hold it shared while checking the flag and joining
	// ops, Drain holds it exclusively while setting the flag, so no op
	// can slip into the WaitGroup after Drain has begun waiting.
	drainMu  sync.RWMutex
	draining bool
	ops      sync.WaitGroup

	stopReaper chan struct{}
	reaperDone chan struct{}

	created *metrics.Counter
	expired *metrics.Counter
	removed *metrics.Counter
	steps   *metrics.Counter
	active  *metrics.Gauge
}

// newSessionManager builds the manager and starts its reaper. ttl <= 0
// disables expiry; reapEvery <= 0 derives a default from the ttl.
func newSessionManager(shards int, ttl, reapEvery time.Duration, reg *metrics.Registry, now func() time.Time) *sessionManager {
	if shards < 1 {
		shards = 1
	}
	if now == nil {
		now = time.Now
	}
	m := &sessionManager{
		shards:     make([]*shard, shards),
		ttl:        ttl,
		now:        now,
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
		created:    reg.Counter("sessions_created"),
		expired:    reg.Counter("sessions_expired"),
		removed:    reg.Counter("sessions_removed"),
		steps:      reg.Counter("session_steps"),
		active:     reg.Gauge("sessions_active"),
	}
	for i := range m.shards {
		m.shards[i] = &shard{sessions: make(map[string]*managedSession)}
	}
	if ttl > 0 {
		if reapEvery <= 0 {
			reapEvery = ttl / 4
			if reapEvery < time.Second {
				reapEvery = time.Second
			}
		}
		go m.reapLoop(reapEvery)
	} else {
		close(m.reaperDone)
	}
	return m
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (m *sessionManager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

// Add registers a session and returns its id.
func (m *sessionManager) Add(sess *protemp.Session, online bool) (string, error) {
	m.drainMu.RLock()
	defer m.drainMu.RUnlock()
	if m.draining {
		return "", ErrDraining
	}
	id, err := newSessionID()
	if err != nil {
		return "", err
	}
	now := m.now()
	ms := &managedSession{id: id, sess: sess, online: online, created: now, lastUsed: now}
	sh := m.shardFor(id)
	sh.mu.Lock()
	sh.sessions[id] = ms
	sh.mu.Unlock()
	m.created.Inc()
	m.active.Inc()
	return id, nil
}

// Acquire pins the session for one operation: the reaper will not
// expire it while pinned, and Drain waits for the returned release
// function to be called. Callers must call release exactly once.
func (m *sessionManager) Acquire(id string) (*managedSession, func(), error) {
	m.drainMu.RLock()
	if m.draining {
		m.drainMu.RUnlock()
		return nil, nil, ErrDraining
	}
	sh := m.shardFor(id)
	sh.mu.Lock()
	ms, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		m.drainMu.RUnlock()
		return nil, nil, ErrSessionNotFound
	}
	ms.refs++
	ms.lastUsed = m.now()
	sh.mu.Unlock()
	m.ops.Add(1)
	m.drainMu.RUnlock()

	var once sync.Once
	release := func() {
		once.Do(func() {
			sh.mu.Lock()
			ms.refs--
			ms.lastUsed = m.now()
			sh.mu.Unlock()
			m.ops.Done()
		})
	}
	return ms, release, nil
}

// Remove drops the session; in-flight operations holding a pin finish
// against their own reference. Reports whether the id existed.
func (m *sessionManager) Remove(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if ok {
		m.removed.Inc()
		m.active.Dec()
	}
	return ok
}

// Len counts live sessions across all shards.
func (m *sessionManager) Len() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// reapLoop expires idle sessions until stopped.
func (m *sessionManager) reapLoop(every time.Duration) {
	defer close(m.reaperDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.reap()
		case <-m.stopReaper:
			return
		}
	}
}

// reap removes sessions idle longer than the ttl. A pinned session
// (refs > 0) is never expired: a slow in-flight step refreshes
// lastUsed on release, so it gets a full ttl afterwards.
func (m *sessionManager) reap() {
	cutoff := m.now().Add(-m.ttl)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, ms := range sh.sessions {
			if ms.refs == 0 && ms.lastUsed.Before(cutoff) {
				delete(sh.sessions, id)
				m.expired.Inc()
				m.active.Dec()
			}
		}
		sh.mu.Unlock()
	}
}

// Drain gracefully shuts the manager down: refuse new work, stop the
// reaper, wait for in-flight operations to finish (bounded by ctx),
// then drop every session. It returns ctx.Err() if operations were
// still in flight when the context expired; the manager is unusable
// either way.
func (m *sessionManager) Drain(ctx context.Context) error {
	m.drainMu.Lock()
	alreadyDraining := m.draining
	m.draining = true
	m.drainMu.Unlock()

	if !alreadyDraining {
		if m.ttl > 0 {
			close(m.stopReaper)
		}
	}
	<-m.reaperDone

	done := make(chan struct{})
	go func() {
		m.ops.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		clear(sh.sessions)
		sh.mu.Unlock()
	}
	m.active.Set(0)
	return err
}
