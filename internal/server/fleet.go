package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"protemp"
	"protemp/api"
	"protemp/internal/fleet"
	"protemp/internal/metrics"
)

// Fleet job errors, mapped to HTTP statuses by the handlers.
var (
	// ErrJobNotFound reports an unknown (or already deleted) job id.
	ErrJobNotFound = errors.New("server: fleet job not found")
	// ErrJobRunning reports a results fetch on an unfinished job.
	ErrJobRunning = errors.New("server: fleet job still running")
	// ErrTooManyJobs reports that the running-job cap is reached.
	ErrTooManyJobs = errors.New("server: too many fleet jobs running")
)

// Fleet job states (the api package owns the wire spellings).
const (
	jobRunning   = api.FleetJobRunning
	jobDone      = api.FleetJobDone
	jobFailed    = api.FleetJobFailed
	jobCancelled = api.FleetJobCancelled
)

// fleetJob is one asynchronous batch evaluation: submitted over POST
// /v1/fleet, executed in a background goroutine against the shared
// engine, polled by id, and harvested once finished. Everything below
// mu is guarded by it.
type fleetJob struct {
	id      string
	created time.Time
	cancel  context.CancelFunc

	mu       sync.Mutex
	status   string
	total    int
	done     int
	failed   int
	finished time.Time
	result   *fleet.BatchResult
	errMsg   string
}

func (j *fleetJob) snapshot(now time.Time) api.FleetJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if j.status == jobRunning {
		end = now
	}
	return api.FleetJobStatus{
		ID:       j.id,
		Status:   j.status,
		Total:    j.total,
		Done:     j.done,
		Failed:   j.failed,
		ElapsedS: end.Sub(j.created).Seconds(),
		Error:    j.errMsg,
	}
}

// fleetManager owns the job table and the shared batch runner. Jobs
// survive until deleted or pruned (oldest finished first past the
// retention cap), so a poller that missed the completion can still
// fetch results later.
type fleetManager struct {
	runner  *fleet.Runner
	maxRuns int
	maxJobs int
	now     func() time.Time

	ctx    context.Context // parent of every job; cancelled on Shutdown
	cancel context.CancelFunc
	jobs   sync.WaitGroup

	mu     sync.Mutex
	byID   map[string]*fleetJob
	order  []*fleetJob // submission order, for pruning
	closed bool

	submitted *metrics.Counter
	completed *metrics.Counter
	failures  *metrics.Counter
	cancels   *metrics.Counter
	active    *metrics.Gauge
}

func newFleetManager(engine *protemp.Engine, maxRuns, maxJobs int, reg *metrics.Registry, now func() time.Time) *fleetManager {
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &fleetManager{
		runner:    fleet.NewRunner(engine, nil, reg),
		maxRuns:   maxRuns,
		maxJobs:   maxJobs,
		now:       now,
		ctx:       ctx,
		cancel:    cancel,
		byID:      make(map[string]*fleetJob),
		submitted: reg.Counter("fleet_jobs_submitted"),
		completed: reg.Counter("fleet_jobs_completed"),
		failures:  reg.Counter("fleet_jobs_failed"),
		cancels:   reg.Counter("fleet_jobs_cancelled"),
		active:    reg.Gauge("fleet_jobs_active"),
	}
}

// Submit validates the spec, registers a job and starts its runner
// goroutine. The returned snapshot carries the job id the client polls.
func (m *fleetManager) Submit(spec fleet.BatchSpec) (api.FleetJobStatus, error) {
	runs, err := m.runner.Plan(spec)
	if err != nil {
		return api.FleetJobStatus{}, err
	}
	if len(runs) > m.maxRuns {
		return api.FleetJobStatus{}, fmt.Errorf("fleet: batch of %d runs exceeds the limit of %d", len(runs), m.maxRuns)
	}
	id, err := newSessionID()
	if err != nil {
		return api.FleetJobStatus{}, err
	}
	jobCtx, jobCancel := context.WithCancel(m.ctx)
	job := &fleetJob{
		id:      id,
		created: m.now(),
		cancel:  jobCancel,
		status:  jobRunning,
		total:   len(runs),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		jobCancel()
		return api.FleetJobStatus{}, ErrDraining
	}
	m.pruneLocked()
	running := 0
	for _, j := range m.order {
		j.mu.Lock()
		if j.status == jobRunning {
			running++
		}
		j.mu.Unlock()
	}
	if running >= m.maxJobs {
		m.mu.Unlock()
		jobCancel()
		return api.FleetJobStatus{}, ErrTooManyJobs
	}
	m.byID[id] = job
	m.order = append(m.order, job)
	m.jobs.Add(1)
	m.mu.Unlock()

	m.submitted.Inc()
	m.active.Inc()
	go m.execute(jobCtx, jobCancel, job, spec)
	return job.snapshot(m.now()), nil
}

// execute runs the batch and records its outcome.
func (m *fleetManager) execute(ctx context.Context, cancel context.CancelFunc, job *fleetJob, spec fleet.BatchSpec) {
	defer m.jobs.Done()
	defer cancel()
	res, err := m.runner.RunWithProgress(ctx, spec, func(done, failed, total int) {
		job.mu.Lock()
		job.done, job.failed = done, failed
		job.mu.Unlock()
	})

	job.mu.Lock()
	job.finished = m.now()
	job.result = res
	switch {
	case err == nil && res != nil:
		job.status = jobDone
		m.completed.Inc()
	case ctx.Err() != nil:
		// Cancelled (by DELETE or shutdown): partial results retained.
		job.status = jobCancelled
		job.errMsg = ctx.Err().Error()
		m.cancels.Inc()
	default:
		job.status = jobFailed
		if err != nil {
			job.errMsg = err.Error()
		}
		m.failures.Inc()
	}
	job.mu.Unlock()
	m.active.Dec()
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap.
func (m *fleetManager) pruneLocked() {
	for len(m.order) >= m.maxJobs {
		evicted := false
		for i, j := range m.order {
			j.mu.Lock()
			finished := j.status != jobRunning
			j.mu.Unlock()
			if finished {
				delete(m.byID, j.id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // every retained job is still running; Submit enforces the cap
		}
	}
}

// Get looks a job up by id.
func (m *fleetManager) Get(id string) (*fleetJob, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.byID[id]
	if !ok {
		return nil, ErrJobNotFound
	}
	return job, nil
}

// List snapshots every retained job in submission order.
func (m *fleetManager) List() []api.FleetJobStatus {
	m.mu.Lock()
	jobs := append([]*fleetJob(nil), m.order...)
	m.mu.Unlock()
	now := m.now()
	out := make([]api.FleetJobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(now)
	}
	return out
}

// Cancel stops a running job (its partial results survive) or deletes
// a finished one. It reports whether the job was still running.
func (m *fleetManager) Cancel(id string) (bool, error) {
	m.mu.Lock()
	job, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return false, ErrJobNotFound
	}
	job.mu.Lock()
	running := job.status == jobRunning
	job.mu.Unlock()
	if !running {
		delete(m.byID, id)
		for i, j := range m.order {
			if j == job {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if running {
		job.cancel()
	}
	return running, nil
}

// Shutdown refuses new jobs, cancels the running ones and waits —
// bounded by ctx — for their goroutines to record partial results.
func (m *fleetManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ---- wire mapping ----

// maxFleetSeconds bounds every wire-supplied duration of a fleet job
// (horizon, sim-time cap, run timeout): trace generation and
// simulation cost scale linearly with them, so an absurd value is a
// CPU/memory lever, not a longer experiment.
const maxFleetSeconds = 86400

// fleetSpec maps the wire request onto the runner's BatchSpec.
func fleetSpec(r api.FleetSubmitRequest) (fleet.BatchSpec, error) {
	for name, v := range map[string]float64{
		"horizon_s": r.HorizonS, "run_timeout_s": r.RunTimeoutS, "max_sim_time_s": r.MaxSimTimeS,
	} {
		if !isFinite(v) || v < 0 || v > maxFleetSeconds {
			return fleet.BatchSpec{}, fmt.Errorf("fleet: %s %v outside [0, %d]", name, v, maxFleetSeconds)
		}
	}
	spec := fleet.BatchSpec{
		Scenarios:  r.Scenarios,
		Seeds:      r.Seeds,
		Workers:    r.Workers,
		Horizon:    r.HorizonS,
		MaxSimTime: r.MaxSimTimeS,
		RunTimeout: time.Duration(r.RunTimeoutS * float64(time.Second)),
	}
	for _, p := range r.Policies {
		spec.Policies = append(spec.Policies, fleet.PolicySpec{
			Kind: p.Kind, Clusters: p.Clusters, ThresholdC: p.ThresholdC,
			Variant: p.Variant, Estimator: p.Estimator,
		})
	}
	return spec, nil
}

// ---- handlers ----

func (s *Server) fleetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrJobNotFound):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrJobRunning):
		s.writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrTooManyJobs):
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleFleetSubmit starts an asynchronous batch evaluation: the
// request names scenarios, policies and seeds; the response carries
// the job id to poll. 202 Accepted — the batch runs in the background
// against the shared engine.
func (s *Server) handleFleetSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.FleetSubmitRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	spec, err := fleetSpec(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status, err := s.fleet.Submit(spec)
	if err != nil {
		s.fleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, status)
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	jobs := s.fleet.List()
	if jobs == nil {
		jobs = []api.FleetJobStatus{}
	}
	s.writeJSON(w, http.StatusOK, api.FleetJobList{Jobs: jobs})
}

func (s *Server) handleFleetScenarios(w http.ResponseWriter, r *http.Request) {
	all := s.fleet.runner.Scenarios().All() // already sorted by name
	infos := make([]api.FleetScenario, len(all))
	for i, sc := range all {
		infos[i] = api.FleetScenario{
			Name: sc.Name, Description: sc.Description,
			HorizonS: sc.Horizon, T0C: sc.T0C, TMaxC: sc.TMaxC,
		}
	}
	s.writeJSON(w, http.StatusOK, api.FleetScenarioList{Scenarios: infos})
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.fleet.Get(r.PathValue("id"))
	if err != nil {
		s.fleetError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, job.snapshot(s.fleet.now()))
}

// handleFleetResults returns the full batch result of a finished job
// (including the partial results of a cancelled one); polling it on a
// running job yields 409 Conflict.
func (s *Server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	job, err := s.fleet.Get(r.PathValue("id"))
	if err != nil {
		s.fleetError(w, err)
		return
	}
	snap := job.snapshot(s.fleet.now())
	if snap.Status == jobRunning {
		s.fleetError(w, ErrJobRunning)
		return
	}
	job.mu.Lock()
	res := job.result
	job.mu.Unlock()
	resp := api.FleetResultsResponse{FleetJobStatus: snap}
	if res != nil {
		resp.Result = mustMarshal(res)
		resp.Ranked = mustMarshal(fleet.Rank(res))
		resp.Leaderboard = mustMarshal(fleet.Leaderboard(res))
	} else {
		resp.Result = json.RawMessage("null")
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleFleetDelete cancels a running job (202; its partial results
// remain fetchable) or deletes a finished one (204).
func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	wasRunning, err := s.fleet.Cancel(r.PathValue("id"))
	if err != nil {
		s.fleetError(w, err)
		return
	}
	if wasRunning {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
