package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"protemp/internal/metrics"
)

func newTestManager(t *testing.T, shards int, ttl, reap time.Duration) (*sessionManager, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	m := newSessionManager(shards, ttl, reap, reg, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return m, reg
}

// addSession registers a nil session under a fresh id (the handlers
// generate ids before Add so cluster routing can pin ownership).
func addSession(t testing.TB, m *sessionManager) (string, error) {
	t.Helper()
	id, err := newSessionID()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(id, nil, "table", false); err != nil {
		return "", err
	}
	return id, nil
}

func TestManagerAddAcquireRemove(t *testing.T) {
	m, _ := newTestManager(t, 4, time.Minute, time.Minute)
	id, err := addSession(t, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(id) != 32 {
		t.Fatalf("id %q", id)
	}
	ms, release, err := m.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	if ms.id != id {
		t.Fatalf("acquired %q want %q", ms.id, id)
	}
	release()
	release() // double release must be a no-op
	if !m.Remove(id) {
		t.Fatal("remove reported missing")
	}
	if m.Remove(id) {
		t.Fatal("second remove reported present")
	}
	if _, _, err := m.Acquire(id); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("acquire after remove: %v", err)
	}
}

// TestManagerConcurrent hammers create/step/expire across shards; run
// with -race this is the regression net for the shard locking.
func TestManagerConcurrent(t *testing.T) {
	m, _ := newTestManager(t, 8, 50*time.Millisecond, 5*time.Millisecond)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ids []string
			for i := 0; i < 50; i++ {
				id, err := addSession(t, m)
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
				ids = append(ids, id)
				if ms, release, err := m.Acquire(id); err == nil {
					_ = ms.mode
					release()
				}
				if i%3 == 0 {
					m.Remove(ids[i/3])
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() == 0 {
		t.Fatal("expected surviving sessions before expiry")
	}
	// Everything idles out once the TTL passes.
	deadline := time.Now().Add(2 * time.Second)
	for m.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("%d sessions survived the idle TTL", n)
	}
}

// TestManagerReaperSkipsPinned verifies an in-flight operation shields
// its session from expiry, and that release restarts the idle clock.
func TestManagerReaperSkipsPinned(t *testing.T) {
	m, _ := newTestManager(t, 2, 40*time.Millisecond, 5*time.Millisecond)
	id, err := addSession(t, m)
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := m.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // several TTLs while pinned
	if _, r2, err := m.Acquire(id); err != nil {
		t.Fatalf("pinned session expired: %v", err)
	} else {
		r2()
	}
	release()
	deadline := time.Now().Add(2 * time.Second)
	for m.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.Len() != 0 {
		t.Fatal("released session never expired")
	}
}

func TestManagerDrainWaitsForInflight(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newSessionManager(4, time.Minute, time.Minute, reg, nil)
	id, err := addSession(t, m)
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := m.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}

	// With an operation in flight, a short drain budget times out.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with pinned op: %v", err)
	}
	cancel()

	// Draining refuses new work.
	if _, err := addSession(t, m); !errors.Is(err, ErrDraining) {
		t.Fatalf("add while draining: %v", err)
	}
	if _, _, err := m.Acquire(id); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: %v", err)
	}

	// Once the operation releases, drain completes cleanly.
	release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := m.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("sessions survived drain")
	}
}

// TestManagerDrainConcurrentOps drains while operations are still
// being launched; with -race this checks the drain gate ordering.
func TestManagerDrainConcurrentOps(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newSessionManager(8, time.Minute, time.Minute, reg, nil)
	var ids []string
	for i := 0; i < 32; i++ {
		id, err := addSession(t, m)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, release, err := m.Acquire(ids[(w*7+i)%len(ids)])
				if err != nil {
					if errors.Is(err, ErrDraining) {
						return
					}
					t.Errorf("acquire: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
				release()
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if m.Len() != 0 {
		t.Fatal("sessions survived drain")
	}
}
