package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"protemp"
	"protemp/api"
	"protemp/internal/core"
	"protemp/internal/sense"
	"protemp/internal/sim"
)

// rawJSON marshals a value into a json.RawMessage for the api types'
// passthrough fields.
func rawJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// fastEngine builds a cheap engine: 1 ms steps, 100 ms windows, a
// 2x3 Phase-1 grid (6 solves).
func fastEngine(t *testing.T, extra ...protemp.Option) *protemp.Engine {
	t.Helper()
	opts := append([]protemp.Option{
		protemp.WithWindow(1e-3, 100),
		protemp.WithTableGrid([]float64{47, 100}, []float64{250e6, 500e6, 750e6}),
	}, extra...)
	e, err := protemp.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newTestServer(t *testing.T, engine *protemp.Engine) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Engine: engine, SessionTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func createSession(t *testing.T, baseURL string) string {
	t.Helper()
	var info api.SessionInfo
	resp := postJSON(t, baseURL+"/v1/sessions", map[string]any{}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	if info.ID == "" || info.NumCores != 8 {
		t.Fatalf("session info %+v", info)
	}
	return info.ID
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))
	var a api.Assignment
	resp := postJSON(t, ts.URL+"/v1/optimize", api.OptimizeRequest{TStartC: 47, FTargetHz: 5e8}, &a)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !a.Feasible || len(a.FreqsHz) != 8 {
		t.Fatalf("assignment %+v", a)
	}
	if a.AvgFreqHz < 5e8*(1-1e-6) {
		t.Fatalf("avg %g below target", a.AvgFreqHz)
	}

	// Unknown variant is a 400 with a JSON error body.
	resp = postJSON(t, ts.URL+"/v1/optimize", api.OptimizeRequest{TStartC: 47, FTargetHz: 5e8, Variant: "bogus"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus variant: status %d", resp.StatusCode)
	}
}

func TestSessionStepAndLifecycle(t *testing.T) {
	engine := fastEngine(t)
	_, ts := newTestServer(t, engine)
	id := createSession(t, ts.URL)

	var step api.StepResponse
	resp := postJSON(t, ts.URL+"/v1/sessions/"+id+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", resp.StatusCode)
	}
	if len(step.FreqsHz) != 8 || step.Steps != 1 {
		t.Fatalf("step %+v", step)
	}

	var info api.SessionInfo
	getResp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(getResp.Body).Decode(&info)
	getResp.Body.Close()
	if info.Steps != 1 {
		t.Fatalf("info %+v", info)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("step after delete: status %d", resp.StatusCode)
	}
}

// TestSessionDMPCMode creates a distributed-MPC session via the mode
// field, steps it, and checks the consensus accounting in the info
// response.
func TestSessionDMPCMode(t *testing.T) {
	engine := fastEngine(t, protemp.WithClusters(2))
	_, ts := newTestServer(t, engine)

	var info api.SessionInfo
	resp := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"mode": "dmpc"}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create dmpc session: status %d", resp.StatusCode)
	}
	if info.Mode != "dmpc" || info.Degraded || info.Clusters != 2 {
		t.Fatalf("session info %+v", info)
	}
	// No Phase-1 table behind a dmpc session.
	if gen := engine.CacheStats().Generations; gen != 0 {
		t.Fatalf("dmpc session triggered %d Phase-1 generations", gen)
	}

	var step api.StepResponse
	resp = postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", resp.StatusCode)
	}
	if len(step.FreqsHz) != 8 {
		t.Fatalf("step %+v", step)
	}

	getResp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(getResp.Body).Decode(&info)
	getResp.Body.Close()
	if info.Steps != 1 || info.Solves < 2 || info.OuterIters == 0 {
		t.Fatalf("info after step %+v", info)
	}

	// An unknown mode is a client error.
	resp = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"mode": "bogus"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus mode: status %d", resp.StatusCode)
	}
}

// streamWindows posts a stream request and returns the parsed window
// lines plus the summary line.
func streamWindowLines(t *testing.T, baseURL, id string, req api.StreamRequest) ([]api.StreamWindow, api.StreamSummary) {
	t.Helper()
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(req)
	resp, err := http.Post(baseURL+"/v1/sessions/"+id+"/stream", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var (
		windows []api.StreamWindow
		summary api.StreamSummary
		sawSum  bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary"`)) {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatalf("summary line: %v", err)
			}
			sawSum = true
			continue
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("stream error line: %s", line)
		}
		var w api.StreamWindow
		if err := json.Unmarshal(line, &w); err != nil {
			t.Fatalf("window line %q: %v", line, err)
		}
		windows = append(windows, w)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSum {
		t.Fatal("stream ended without a summary line")
	}
	return windows, summary
}

// TestServerEndToEndWarmRestart is the acceptance scenario: a server
// on a loopback listener serves a session streaming NDJSON control
// windows; a second server started against the same table-store
// directory serves its first session from the store with no Phase-1
// re-sweep.
func TestServerEndToEndWarmRestart(t *testing.T) {
	storeDir := t.TempDir()

	// --- first server: cold start, generates and persists the table ---
	engine1 := fastEngine(t, protemp.WithTableStoreDir(storeDir))
	_, ts1 := newTestServer(t, engine1)
	id := createSession(t, ts1.URL)

	windows, summary := streamWindowLines(t, ts1.URL, id, api.StreamRequest{
		Windows:     3,
		Seed:        7,
		DurationS:   2,
		Utilization: 0.5,
	})
	if len(windows) < 3 {
		t.Fatalf("streamed %d windows, want >= 3", len(windows))
	}
	for i, w := range windows {
		if w.Window != i+1 || len(w.FreqsHz) != 8 {
			t.Fatalf("window line %d: %+v", i, w)
		}
	}
	if summary.Summary.Windows != len(windows) || summary.Summary.SimTimeS <= 0 {
		t.Fatalf("summary %+v", summary)
	}

	st1 := engine1.CacheStats()
	if st1.Generations != 1 || st1.StoreWrites != 1 {
		t.Fatalf("first server stats %+v: want 1 generation written through", st1)
	}

	// --- restart: fresh engine + server on the same store directory ---
	engine2 := fastEngine(t, protemp.WithTableStoreDir(storeDir))
	_, ts2 := newTestServer(t, engine2)
	id2 := createSession(t, ts2.URL)

	windows2, _ := streamWindowLines(t, ts2.URL, id2, api.StreamRequest{
		Windows: 3, Seed: 8, DurationS: 2, Utilization: 0.5,
	})
	if len(windows2) < 3 {
		t.Fatalf("second server streamed %d windows", len(windows2))
	}

	st2 := engine2.CacheStats()
	if st2.Generations != 0 {
		t.Fatalf("second server re-swept Phase 1: stats %+v", st2)
	}
	if st2.StoreHits != 1 {
		t.Fatalf("second server store hits = %d, want 1 (stats %+v)", st2.StoreHits, st2)
	}

	// The metrics endpoint surfaces the store hit.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metricsOut map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&metricsOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metricsOut["table_store_hits"] != 1 || metricsOut["table_cache_generations"] != 0 {
		t.Fatalf("metrics %v", metricsOut)
	}
	if metricsOut["sessions_created"] != 1 || metricsOut["stream_windows"] < 3 {
		t.Fatalf("metrics %v", metricsOut)
	}
}

func TestTablesEndpointCoalescesAndServesKey(t *testing.T) {
	engine := fastEngine(t)
	_, ts := newTestServer(t, engine)

	var resp1 api.TablesResponse
	r := postJSON(t, ts.URL+"/v1/tables", api.TablesRequest{}, &resp1)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("tables: status %d", r.StatusCode)
	}
	if resp1.Key == "" || len(resp1.Table) == 0 {
		t.Fatalf("tables response missing key/table")
	}
	var table core.Table
	if err := json.Unmarshal(resp1.Table, &table); err != nil {
		t.Fatalf("table payload: %v", err)
	}
	if got := len(table.TStarts); got != 2 {
		t.Fatalf("table rows %d", got)
	}

	var resp2 api.TablesResponse
	postJSON(t, ts.URL+"/v1/tables", api.TablesRequest{KeyOnly: true}, &resp2)
	if resp2.Key != resp1.Key || resp2.Table != nil {
		t.Fatalf("key_only response %+v", resp2)
	}
	if st := engine.CacheStats(); st.Generations != 1 {
		t.Fatalf("stats %+v: want a single shared generation", st)
	}
}

func TestStreamWithExplicitTasks(t *testing.T) {
	engine := fastEngine(t)
	_, ts := newTestServer(t, engine)
	id := createSession(t, ts.URL)
	req := api.StreamRequest{
		Windows: 4,
		Tasks: []api.StreamTask{
			{ArrivalS: 0, WorkS: 0.05},
			{ArrivalS: 0, WorkS: 0.05},
			{ArrivalS: 0.1, WorkS: 0.02},
		},
	}
	windows, summary := streamWindowLines(t, ts.URL, id, req)
	if len(windows) == 0 {
		t.Fatal("no windows streamed")
	}
	if summary.Summary.Completed+summary.Summary.Unfinished != 3 {
		t.Fatalf("summary %+v: tasks don't add up", summary)
	}
}

func TestServerRejectsWorkWhileDraining(t *testing.T) {
	engine := fastEngine(t)
	srv, ts := newTestServer(t, engine)
	id := createSession(t, ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp := postJSON(t, ts.URL+"/v1/sessions", map[string]any{}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/sessions/"+id+"/step", api.StepRequest{MaxCoreTempC: 50, RequiredFreqHz: 2.5e8}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step while draining: status %d", resp.StatusCode)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("%d sessions survived drain", srv.SessionCount())
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz %v", out)
	}
}

func TestBadRequestBodies(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))
	for _, tc := range []struct {
		url  string
		body string
	}{
		{"/v1/optimize", `{"tstart_c": "not a number"}`},
		{"/v1/optimize", `{"unknown_field": 1}`},
		{"/v1/tables", `{"tstarts_c": [100, 47]}`}, // descending grid
	} {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Message == "" {
			t.Fatalf("%s %s: status %d error %q", tc.url, tc.body, resp.StatusCode, e.Message)
		}
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	engine := fastEngine(t)
	_, ts := newTestServer(t, engine)
	postJSON(t, ts.URL+"/v1/optimize", api.OptimizeRequest{TStartC: 47, FTargetHz: 2.5e8}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"http_requests", "optimize_requests", "table_cache_hits", "table_cache_misses", "table_store_hits", "sessions_active"} {
		if _, ok := out[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, out)
		}
	}
	if out["optimize_requests"] != 1 {
		t.Fatalf("optimize_requests = %d", out["optimize_requests"])
	}
	_ = fmt.Sprintf("%v", out)
}

// TestStreamWithSensing drives a sensed stream end to end: the session
// observes degraded readings, blind windows are flagged on their
// NDJSON lines, the closing summary carries the sense counters, and
// the degraded-window alarm counter ticks on /metrics.
func TestStreamWithSensing(t *testing.T) {
	engine := fastEngine(t)
	srv, ts := newTestServer(t, engine)
	id := createSession(t, ts.URL)
	req := api.StreamRequest{
		Windows: 12,
		Seed:    7,
		Sensing: rawJSON(t, sim.Sensing{
			Sensors:   []sense.Config{{NoiseSigma: 0.5, DropoutProb: 1}},
			Seed:      7,
			Estimator: "kalman",
		}),
	}
	windows, summary := streamWindowLines(t, ts.URL, id, req)
	if len(windows) == 0 {
		t.Fatal("no windows streamed")
	}
	degraded := 0
	for _, w := range windows {
		if w.SensingDegraded {
			degraded++
		}
	}
	if degraded != len(windows) {
		t.Fatalf("%d/%d windows flagged degraded under certain dropout", degraded, len(windows))
	}
	if len(summary.Summary.Sense) == 0 {
		t.Fatal("sensed stream summary carries no sense block")
	}
	var sn sim.SenseSummary
	if err := json.Unmarshal(summary.Summary.Sense, &sn); err != nil {
		t.Fatalf("sense block: %v", err)
	}
	if sn.Estimator != "kalman" || sn.DegradedWindows == 0 || sn.Dropouts == 0 {
		t.Fatalf("sense summary %+v", sn)
	}
	if got := srv.reg.Snapshot()["stream_degraded_windows"]; got == 0 {
		t.Fatal("stream_degraded_windows never incremented")
	}

	// A malformed sensing config is a 400, not a stream.
	bad := api.StreamRequest{Windows: 2, Sensing: rawJSON(t, sim.Sensing{Estimator: "bogus"})}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(bad)
	resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/stream", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus sensing: status %d", resp.StatusCode)
	}
}
