package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"protemp"
	"protemp/api"
	"protemp/internal/metrics"
	"protemp/internal/obs"
)

// TestMetricsContentNegotiation pins the /metrics dual exposition:
// plain GETs keep the JSON object existing scrapers parse, while an
// Accept of text/plain (what Prometheus sends) switches the same
// samples to the text exposition format with a labeled build-info
// sample.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))

	// Default: JSON, as before.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	var snap map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode JSON metrics: %v", err)
	}
	resp.Body.Close()
	if _, ok := snap["protemp_build_info"]; !ok {
		t.Fatalf("JSON metrics missing protemp_build_info: %v", snap)
	}
	if _, ok := snap["http_requests"]; !ok {
		t.Fatalf("JSON metrics missing http_requests: %v", snap)
	}

	// Prometheus scrape: Accept: text/plain.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PrometheusContentType {
		t.Fatalf("negotiated content type %q, want %q", ct, metrics.PrometheusContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE http_requests counter\n",
		fmt.Sprintf("protemp_build_info{version=%q,goversion=", protemp.Version),
		"# TYPE uptime_seconds gauge\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Every sample the JSON view reports must appear in the text view
	// (same merged snapshot, two formats). http_requests differs by the
	// scrapes themselves, so compare key presence, not values.
	for name := range snap {
		if !strings.Contains(text, "\n"+name) && !strings.HasPrefix(text, name) &&
			!strings.Contains(text, "\n"+name+"{") {
			t.Errorf("exposition missing sample %q", name)
		}
	}

	// X-Request-Id is stamped on every response.
	if resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("missing X-Request-Id header")
	}
}

// TestDebugTracesDisabled pins the contract when the engine has no
// flight recorder: both endpoints 404 with a JSON error.
func TestDebugTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))
	for _, path := range []string{"/debug/traces", "/debug/traces/1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDebugTracesDMPCFallback drives a DMPC session into the
// centralized consensus fallback and asserts the flight recorder
// captured the whole anatomy end to end over HTTP: the step shows up
// in the /debug/traces listing and /debug/traces/{id} returns the full
// span tree — per-cluster solve spans, the ADMM outer-iteration
// timeline, and the "central" fallback rung with its cluster -1 spans.
func TestDebugTracesDMPCFallback(t *testing.T) {
	// One ADMM sweep against an unmeetable consensus tolerance on a
	// 2-cluster partition: the boundary disagreement cannot close in a
	// single round, and 8 cores is within the centralized-fallback
	// budget, so every window walks the "central" rung.
	engine := fastEngine(t,
		protemp.WithFlightRecorder(8, 4),
		protemp.WithClusters(2),
		protemp.WithADMMIterations(1),
		protemp.WithADMMTolerance(1e-9),
		protemp.WithADMMAcceptance(1e-9),
	)
	_, ts := newTestServer(t, engine)

	var info api.SessionInfo
	resp := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"mode": "dmpc"}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create dmpc session: status %d", resp.StatusCode)
	}
	var step api.StepResponse
	resp = postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", resp.StatusCode)
	}

	// Listing shows the traced step.
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []api.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	resp.Body.Close()
	if len(list.Traces) == 0 {
		t.Fatal("no traces listed after a traced step")
	}
	head := list.Traces[0]
	if head.Mode != "dmpc" || head.Solves == 0 || head.Fallback != "central" {
		t.Fatalf("listed trace %+v, want a dmpc trace with solves and fallback=central", head)
	}

	// Detail returns the full span tree.
	resp, err = http.Get(fmt.Sprintf("%s/debug/traces/%d", ts.URL, head.ID))
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	resp.Body.Close()
	if tr.ID != head.ID || tr.FallbackRung != "central" {
		t.Fatalf("trace header %d fallback=%q", tr.ID, tr.FallbackRung)
	}
	if len(tr.Outers) == 0 {
		t.Fatalf("trace has no ADMM outer iterations: %+v", tr.Outers)
	}
	if tr.Outers[0].PrimalC <= 1e-9 {
		t.Errorf("outer round primal residual %g should exceed the tolerance", tr.Outers[0].PrimalC)
	}
	clusters, central := map[int]bool{}, false
	for _, sp := range tr.Solves {
		if sp.Cluster >= 0 {
			clusters[sp.Cluster] = true
		} else {
			central = true
		}
		if sp.Rung == "" {
			t.Errorf("span without a ladder rung: %+v", sp)
		}
	}
	if len(clusters) != 2 {
		t.Errorf("spans cover clusters %v, want both of 2", clusters)
	}
	if !central {
		t.Errorf("no cluster -1 (centralized fallback) spans in %d spans", len(tr.Solves))
	}

	// Unknown ids are 404, junk ids are 400.
	resp, _ = http.Get(ts.URL + "/debug/traces/999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/debug/traces/bogus")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk id: status %d, want 400", resp.StatusCode)
	}
}
