package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"protemp"
	"protemp/api"
	"protemp/client"
	"protemp/internal/cluster"
)

// clientFor builds a typed client pointed at one test node.
func clientFor(nd *testNode) (*client.Client, error) {
	return client.New(nd.ts.URL)
}

// testNode is one member of a loopback test cluster: its own engine,
// server and listener, wired to the others through the real client.
type testNode struct {
	srv *Server
	ts  *httptest.Server
	eng *protemp.Engine
	clu *cluster.Cluster
}

// newTestCluster boots n nodes on loopback listeners. The listeners
// are created unstarted first so every member knows the full peer list
// before any engine exists, mirroring the -self/-peers flag flow.
func newTestCluster(t testing.TB, n int, adm cluster.AdmissionConfig) []*testNode {
	t.Helper()
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		clu, err := cluster.New(cluster.Config{
			Self:            urls[i],
			Peers:           urls,
			BreakerCooldown: 100 * time.Millisecond,
			RetryBackoff:    5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := testClusterEngine(t, protemp.WithTableFetcher(clu.TableFetcher()))
		srv, err := New(Config{Engine: eng, Cluster: clu, Admission: adm, SessionTTL: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].Config = &http.Server{Handler: srv.Handler()}
		servers[i].Start()
		nodes[i] = &testNode{srv: srv, ts: servers[i], eng: eng, clu: clu}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
		}
	})
	return nodes
}

// testClusterEngine matches fastEngine but takes a testing.TB so the
// benchmarks can share it.
func testClusterEngine(t testing.TB, extra ...protemp.Option) *protemp.Engine {
	t.Helper()
	opts := append([]protemp.Option{
		protemp.WithWindow(1e-3, 100),
		protemp.WithTableGrid([]float64{47, 100}, []float64{250e6, 500e6, 750e6}),
	}, extra...)
	e, err := protemp.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// createOwnedBy creates sessions through via until the ring lands one
// on the wanted owner node, deleting the misses. The id is random, so
// a handful of tries suffices with two or three members.
func createOwnedBy(t *testing.T, via *testNode, owner string, mode string) api.SessionInfo {
	t.Helper()
	for i := 0; i < 64; i++ {
		var info api.SessionInfo
		resp := postJSON(t, via.ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: mode}, &info)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: status %d", resp.StatusCode)
		}
		if info.Node == owner {
			return info
		}
		deleteReq(t, via.ts.URL+"/v1/sessions/"+info.ID)
	}
	t.Fatalf("no session landed on %s in 64 tries", owner)
	return api.SessionInfo{}
}

// TestClusterProxiedSessionLifecycle drives a full session lifecycle
// through the NON-owner node: the create, stat, step and delete must
// all transparently proxy to the owner, and the proxy must be a
// single hop (a forwarded request is always served locally).
func TestClusterProxiedSessionLifecycle(t *testing.T) {
	nodes := newTestCluster(t, 2, cluster.AdmissionConfig{})
	a, b := nodes[0], nodes[1]

	// A session owned by B, driven entirely through A.
	info := createOwnedBy(t, a, b.clu.Self(), "table")
	if info.Mode != "table" || info.Degraded {
		t.Fatalf("info %+v", info)
	}

	// The session lives on B, not A.
	if got := b.srv.sessions.Len(); got != 1 {
		t.Fatalf("owner holds %d sessions", got)
	}
	if got := a.srv.sessions.Len(); got != 0 {
		t.Fatalf("non-owner holds %d sessions", got)
	}

	// Stat through A: proxied to B, reports B as the node.
	var stat api.SessionInfo
	getJSON(t, a.ts.URL+"/v1/sessions/"+info.ID, &stat)
	if stat.ID != info.ID || stat.Node != b.clu.Self() {
		t.Fatalf("stat %+v", stat)
	}

	// Step through A.
	var step api.StepResponse
	resp := postJSON(t, a.ts.URL+"/v1/sessions/"+info.ID+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied step: status %d", resp.StatusCode)
	}
	if len(step.FreqsHz) == 0 {
		t.Fatalf("proxied step %+v", step)
	}
	getJSON(t, a.ts.URL+"/v1/sessions/"+info.ID, &stat)
	if stat.Steps != 1 {
		t.Fatalf("step not applied on the owner: %+v", stat)
	}

	// Single hop: a forwarded request for a B-owned session hitting A
	// must NOT be proxied again — A answers locally (404).
	req, err := http.NewRequest(http.MethodGet, a.ts.URL+"/v1/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderForwarded, "1")
	fresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusNotFound {
		t.Fatalf("forwarded request re-proxied: status %d", fresp.StatusCode)
	}

	// Delete through A removes it on B.
	if resp := deleteReq(t, a.ts.URL+"/v1/sessions/"+info.ID); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("proxied delete: status %d", resp.StatusCode)
	}
	if got := b.srv.sessions.Len(); got != 0 {
		t.Fatalf("owner still holds %d sessions after delete", got)
	}

	snap := a.clu.Registry().Snapshot()
	if snap["cluster_proxied_requests"] < 4 {
		t.Fatalf("proxied counter %d", snap["cluster_proxied_requests"])
	}
	if snap["cluster_proxy_errors"] != 0 {
		t.Fatalf("proxy errors %d", snap["cluster_proxy_errors"])
	}
}

// TestClusterProxiedStream relays a co-simulated NDJSON stream through
// the non-owner: window lines and the closing summary must arrive
// untouched.
func TestClusterProxiedStream(t *testing.T) {
	nodes := newTestCluster(t, 2, cluster.AdmissionConfig{})
	a, b := nodes[0], nodes[1]

	info := createOwnedBy(t, a, b.clu.Self(), "table")
	windows, summary := streamWindowLines(t, a.ts.URL, info.ID, api.StreamRequest{Windows: 3, Seed: 1})
	if len(windows) == 0 {
		t.Fatal("no window lines relayed")
	}
	if summary.Summary.Windows != len(windows) {
		t.Fatalf("summary %+v for %d windows", summary.Summary, len(windows))
	}
	// The windows were simulated on the owner.
	var stat api.SessionInfo
	getJSON(t, a.ts.URL+"/v1/sessions/"+info.ID, &stat)
	if stat.Steps == 0 || stat.Node != b.clu.Self() {
		t.Fatalf("owner stats %+v", stat)
	}
}

// TestClusterTableColdStartExactlyOnce hits both nodes with the same
// table spec concurrently on a cold cluster: the owner generates the
// grid exactly once and the other node fetches it over the peer tier,
// so the cluster-wide Phase-1 generation count is 1.
func TestClusterTableColdStartExactlyOnce(t *testing.T) {
	nodes := newTestCluster(t, 2, cluster.AdmissionConfig{})

	var wg sync.WaitGroup
	responses := make([]api.TablesResponse, len(nodes))
	errs := make([]int, len(nodes))
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *testNode) {
			defer wg.Done()
			resp := postJSON(t, nd.ts.URL+"/v1/tables", api.TablesRequest{Variant: "variable"}, &responses[i])
			errs[i] = resp.StatusCode
		}(i, nd)
	}
	wg.Wait()
	for i, code := range errs {
		if code != http.StatusOK {
			t.Fatalf("node %d: status %d", i, code)
		}
	}
	if responses[0].Key == "" || responses[0].Key != responses[1].Key {
		t.Fatalf("keys diverge: %q vs %q", responses[0].Key, responses[1].Key)
	}

	var generations, fetches uint64
	for _, nd := range nodes {
		stats := nd.eng.CacheStats()
		generations += stats.Generations
		fetches += stats.FetchHits
	}
	if generations != 1 {
		t.Fatalf("cluster-wide generations = %d, want exactly 1", generations)
	}
	if fetches != 1 {
		t.Fatalf("peer fetches = %d, want 1", fetches)
	}

	// The non-owner counted the peer hit; the surface the smoke test
	// scrapes must agree.
	var hits uint64
	for _, nd := range nodes {
		hits += nd.clu.Registry().Snapshot()["cluster_peer_table_hits"]
		var m map[string]uint64
		getJSON(t, nd.ts.URL+"/metrics", &m)
		if _, ok := m["cluster_peers"]; !ok {
			t.Fatal("cluster counters missing from /metrics")
		}
	}
	if hits != 1 {
		t.Fatalf("cluster_peer_table_hits = %d, want 1", hits)
	}
}

// TestClusterTableGetUnknown404 covers the peer-tier miss path: a key
// no node can regenerate answers 404, not a generation.
func TestClusterTableGetUnknown404(t *testing.T) {
	nodes := newTestCluster(t, 2, cluster.AdmissionConfig{})
	resp, err := http.Get(nodes[0].ts.URL + "/v1/tables/deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: status %d", resp.StatusCode)
	}
}

// TestClusterHealthz reports membership on both nodes.
func TestClusterHealthz(t *testing.T) {
	nodes := newTestCluster(t, 3, cluster.AdmissionConfig{})
	for _, nd := range nodes {
		var h api.Health
		getJSON(t, nd.ts.URL+"/healthz", &h)
		if h.Node != nd.clu.Self() || h.Peers != 3 {
			t.Fatalf("healthz %+v", h)
		}
	}
}

// TestOverloadDegradesCreates: with a 1 ns p95 budget and one recorded
// solve, every later online/dmpc create must be admitted degraded —
// a table-mode session flagged degraded:true — and counted.
func TestOverloadDegradesCreates(t *testing.T) {
	engine := fastEngine(t)
	srv, err := New(Config{
		Engine:     engine,
		SessionTTL: time.Minute,
		Admission: cluster.AdmissionConfig{
			StepP95Budget: time.Nanosecond,
			MinSamples:    1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The histogram is cold: the first online create is admitted whole.
	var first api.SessionInfo
	resp := postJSON(t, ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: "online"}, &first)
	if resp.StatusCode != http.StatusCreated || first.Degraded || first.Mode != "online" {
		t.Fatalf("cold create: status %d info %+v", resp.StatusCode, first)
	}

	// One real solve records a latency sample >> 1 ns.
	var step api.StepResponse
	resp = postJSON(t, ts.URL+"/v1/sessions/"+first.ID+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup step: status %d", resp.StatusCode)
	}

	// Now over budget: online and dmpc creates degrade to table mode.
	for _, mode := range []string{"online", "dmpc"} {
		var info api.SessionInfo
		resp := postJSON(t, ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: mode}, &info)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("%s create under overload: status %d", mode, resp.StatusCode)
		}
		if !info.Degraded || info.Mode != "table" {
			t.Fatalf("%s create not degraded: %+v", mode, info)
		}
	}
	// Table creates are never degraded.
	var tinfo api.SessionInfo
	postJSON(t, ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: "table"}, &tinfo)
	if tinfo.Degraded {
		t.Fatalf("table create degraded: %+v", tinfo)
	}

	var m map[string]uint64
	getJSON(t, ts.URL+"/metrics", &m)
	if m["cluster_degraded_sessions"] != 2 {
		t.Fatalf("cluster_degraded_sessions = %d", m["cluster_degraded_sessions"])
	}
	if m["cluster_shedding"] != 1 {
		t.Fatalf("cluster_shedding = %d", m["cluster_shedding"])
	}
}

// TestOverloadStepQueue429 saturates a 1-slot, 0-queue step gate with
// a burst of concurrent solver steps: the overflow must be refused
// with 429 + Retry-After, never a 5xx, and successes must still land.
func TestOverloadStepQueue429(t *testing.T) {
	engine := fastEngine(t)
	srv, err := New(Config{
		Engine:     engine,
		SessionTTL: time.Minute,
		Admission: cluster.AdmissionConfig{
			MaxConcurrentSteps: 1,
			StepQueueDepth:     0,
			RetryAfter:         2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var info api.SessionInfo
	if resp := postJSON(t, ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: "online"}, &info); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	doStep := func() *http.Response {
		body := fmt.Sprintf(`{"max_core_temp_c":60,"required_freq_hz":%g}`, 5e8)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+info.ID+"/step",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Pin the single solver slot so the next step deterministically
	// overflows the (empty) queue.
	release, err := srv.admission.AcquireStep(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	resp429 := doStep()
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("step with the gate full: status %d, want 429", resp429.StatusCode)
	}
	if got := resp429.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q", got)
	}

	// Releasing the slot turns the same request into a 200 — the
	// overload path never produced a 5xx.
	release()
	if resp := doStep(); resp.StatusCode != http.StatusOK {
		t.Fatalf("step after release: status %d", resp.StatusCode)
	}

	var m map[string]uint64
	getJSON(t, ts.URL+"/metrics", &m)
	if m["cluster_steps_rejected"] == 0 {
		t.Fatal("rejections not counted")
	}

	// Table-mode steps bypass the solver gate entirely.
	var tinfo api.SessionInfo
	postJSON(t, ts.URL+"/v1/sessions", api.SessionCreateRequest{Mode: "table"}, &tinfo)
	resp := postJSON(t, ts.URL+"/v1/sessions/"+tinfo.ID+"/step",
		api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table step throttled: status %d", resp.StatusCode)
	}
}

// BenchmarkClusterStepLocal / Proxied measure the step path on the
// owner versus one network hop through the non-owner; the delta is
// the cluster's forwarding tax.
func BenchmarkClusterStepLocal(b *testing.B)   { benchClusterStep(b, true) }
func BenchmarkClusterStepProxied(b *testing.B) { benchClusterStep(b, false) }

func benchClusterStep(b *testing.B, local bool) {
	nodes := newTestCluster(b, 2, cluster.AdmissionConfig{})
	a, bb := nodes[0], nodes[1]

	// One session owned by B; drive it from B (local) or A (proxied).
	cl, err := clientFor(bb)
	if err != nil {
		b.Fatal(err)
	}
	var owned api.SessionInfo
	for i := 0; i < 128; i++ {
		info, err := cl.CreateSession(b.Context(), api.SessionCreateRequest{Mode: "table"})
		if err != nil {
			b.Fatal(err)
		}
		if info.Node == bb.clu.Self() {
			owned = info
			break
		}
		cl.DeleteSession(b.Context(), info.ID)
	}
	if owned.ID == "" {
		b.Fatal("no B-owned session")
	}
	via := bb
	if !local {
		via = a
	}
	vcl, err := clientFor(via)
	if err != nil {
		b.Fatal(err)
	}
	req := api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}
	if _, err := vcl.Step(b.Context(), owned.ID, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vcl.Step(b.Context(), owned.ID, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSessionsPerNode2 / 3 measure create+step+delete
// throughput with every request entering through node 0 and the ring
// spreading ownership: the 2→3 node delta is the scale-out curve.
func BenchmarkClusterSessionsPerNode2(b *testing.B) { benchClusterScaleOut(b, 2) }
func BenchmarkClusterSessionsPerNode3(b *testing.B) { benchClusterScaleOut(b, 3) }

func benchClusterScaleOut(b *testing.B, n int) {
	nodes := newTestCluster(b, n, cluster.AdmissionConfig{})
	cl, err := clientFor(nodes[0])
	if err != nil {
		b.Fatal(err)
	}
	// Warm the table so session creates don't pay Phase-1 generation.
	info, err := cl.CreateSession(b.Context(), api.SessionCreateRequest{Mode: "table"})
	if err != nil {
		b.Fatal(err)
	}
	cl.DeleteSession(b.Context(), info.ID)
	req := api.StepRequest{MaxCoreTempC: 60, RequiredFreqHz: 5e8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := cl.CreateSession(b.Context(), api.SessionCreateRequest{Mode: "table"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Step(b.Context(), info.ID, req); err != nil {
			b.Fatal(err)
		}
		if err := cl.DeleteSession(b.Context(), info.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "nodes")
}
