package server

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"protemp/api"
	"protemp/internal/fleet"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func deleteReq(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// decodeBatchResult parses the RawMessage result payload of a fleet
// results response ("null" decodes to nil).
func decodeBatchResult(t *testing.T, raw json.RawMessage) *fleet.BatchResult {
	t.Helper()
	var batch *fleet.BatchResult
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatalf("batch result payload: %v", err)
	}
	return batch
}

// pollFleetJob polls the status endpoint until the job leaves the
// running state.
func pollFleetJob(t *testing.T, baseURL, id string) api.FleetJobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st api.FleetJobStatus
		resp := getJSON(t, baseURL+"/v1/fleet/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if st.Status != jobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 60s: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetJobRoundTrip is the async-API e2e: submit → job id → poll
// status → fetch ranked results, with progress counters in /metrics.
func TestFleetJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))

	req := api.FleetSubmitRequest{
		Scenarios: []string{"mixed", "bursty", "adversarial"},
		Policies: []api.FleetPolicy{
			{Kind: "protemp"},
			{Kind: "no-tc"},
		},
		Seeds:       []int64{1},
		HorizonS:    2,
		MaxSimTimeS: 6,
	}
	var submitted api.FleetJobStatus
	resp := postJSON(t, ts.URL+"/v1/fleet", req, &submitted)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if submitted.ID == "" || submitted.Total != 6 || submitted.Status != jobRunning {
		t.Fatalf("submit response %+v", submitted)
	}

	final := pollFleetJob(t, ts.URL, submitted.ID)
	if final.Status != jobDone || final.Done != 6 || final.Failed != 0 {
		t.Fatalf("final status %+v", final)
	}

	var results api.FleetResultsResponse
	resp = getJSON(t, ts.URL+"/v1/fleet/"+submitted.ID+"/results", &results)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d", resp.StatusCode)
	}
	batch := decodeBatchResult(t, results.Result)
	if batch == nil || batch.Completed != 6 {
		t.Fatalf("results payload %+v", results)
	}
	var (
		ranked      []fleet.RunResult
		leaderboard []fleet.LeaderboardRow
	)
	if err := json.Unmarshal(results.Ranked, &ranked); err != nil {
		t.Fatalf("ranked payload: %v", err)
	}
	if err := json.Unmarshal(results.Leaderboard, &leaderboard); err != nil {
		t.Fatalf("leaderboard payload: %v", err)
	}
	if len(ranked) != 6 || len(leaderboard) != 2 {
		t.Fatalf("ranked %d / leaderboard %d", len(ranked), len(leaderboard))
	}
	for _, rr := range batch.Runs {
		if rr.Summary == nil {
			t.Fatalf("run %s/%s missing summary", rr.Scenario, rr.Policy)
		}
	}

	// The job list shows it, and /metrics carries the progress
	// counters and gauges.
	var list struct {
		Jobs []api.FleetJobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/fleet", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Fatalf("job list %+v", list)
	}
	var snap map[string]uint64
	getJSON(t, ts.URL+"/metrics", &snap)
	for key, want := range map[string]uint64{
		"fleet_jobs_submitted":    1,
		"fleet_jobs_completed":    1,
		"fleet_runs_completed":    6,
		"fleet_runs_inflight":     0,
		"fleet_jobs_active":       0,
		"table_cache_generations": 1,
	} {
		if snap[key] != want {
			t.Errorf("metrics[%s] = %d, want %d (snapshot %v)", key, snap[key], want, snap)
		}
	}

	// Deleting a finished job removes it.
	if st := deleteReq(t, ts.URL+"/v1/fleet/"+submitted.ID).StatusCode; st != http.StatusNoContent {
		t.Fatalf("delete finished job: status %d", st)
	}
	if st := getJSON(t, ts.URL+"/v1/fleet/"+submitted.ID, nil).StatusCode; st != http.StatusNotFound {
		t.Fatalf("deleted job still resolvable: %d", st)
	}
}

// TestFleetJobCancel: a long job returns 409 on early results, DELETE
// cancels it, and the partial results stay fetchable.
func TestFleetJobCancel(t *testing.T) {
	_, ts := newTestServer(t, fastEngine(t))

	req := api.FleetSubmitRequest{
		Scenarios: []string{"compute", "diurnal", "mixed"},
		Policies:  []api.FleetPolicy{{Kind: "no-tc"}, {Kind: "basic-dfs"}},
		Seeds:     []int64{1, 2, 3, 4},
		Workers:   1,
		HorizonS:  30, // deliberately slow so the cancel lands mid-batch
	}
	var submitted api.FleetJobStatus
	if resp := postJSON(t, ts.URL+"/v1/fleet", req, &submitted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if st := getJSON(t, ts.URL+"/v1/fleet/"+submitted.ID+"/results", nil).StatusCode; st != http.StatusConflict {
		t.Fatalf("early results fetch: status %d, want 409", st)
	}
	if st := deleteReq(t, ts.URL+"/v1/fleet/"+submitted.ID).StatusCode; st != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", st)
	}
	final := pollFleetJob(t, ts.URL, submitted.ID)
	if final.Status != jobCancelled {
		t.Fatalf("status after cancel: %+v", final)
	}
	var results api.FleetResultsResponse
	if resp := getJSON(t, ts.URL+"/v1/fleet/"+submitted.ID+"/results", &results); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel results: status %d", resp.StatusCode)
	}
	batch := decodeBatchResult(t, results.Result)
	if batch == nil || len(batch.Runs) != 24 {
		t.Fatalf("partial results %+v", batch)
	}
	if batch.Skipped == 0 {
		t.Fatal("cancelled job skipped nothing — it ran to completion")
	}
}

func TestFleetSubmitValidation(t *testing.T) {
	srv, ts := newTestServer(t, fastEngine(t))

	cases := []api.FleetSubmitRequest{
		{},
		{Scenarios: []string{"no-such"}, Policies: []api.FleetPolicy{{Kind: "no-tc"}}},
		{Scenarios: []string{"mixed"}, Policies: []api.FleetPolicy{{Kind: "bogus"}}},
		{Scenarios: []string{"mixed"}, Policies: []api.FleetPolicy{{Kind: "no-tc"}}, RunTimeoutS: -1},
		{Scenarios: []string{"mixed"}, Policies: []api.FleetPolicy{{Kind: "no-tc"}}, HorizonS: 1e300},
		{Scenarios: []string{"mixed"}, Policies: []api.FleetPolicy{{Kind: "no-tc"}}, MaxSimTimeS: maxFleetSeconds + 1},
	}
	for i, req := range cases {
		if resp := postJSON(t, ts.URL+"/v1/fleet", req, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	// A batch beyond the run cap is refused up front.
	seeds := make([]int64, srv.cfg.MaxFleetRuns+1)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	big := api.FleetSubmitRequest{
		Scenarios: []string{"mixed"},
		Policies:  []api.FleetPolicy{{Kind: "no-tc"}},
		Seeds:     seeds,
	}
	if resp := postJSON(t, ts.URL+"/v1/fleet", big, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}

	if st := getJSON(t, ts.URL+"/v1/fleet/doesnotexist", nil).StatusCode; st != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", st)
	}

	var scen struct {
		Scenarios []api.FleetScenario `json:"scenarios"`
	}
	getJSON(t, ts.URL+"/v1/fleet/scenarios", &scen)
	if len(scen.Scenarios) != len(fleet.Builtin().Names()) {
		t.Errorf("scenario listing has %d entries, want %d", len(scen.Scenarios), len(fleet.Builtin().Names()))
	}
}

// TestGridBounds covers the request-bounding satellite: absurd grid
// sizes and non-finite values are rejected with 400 before any solve.
func TestGridBounds(t *testing.T) {
	srv, ts := newTestServer(t, fastEngine(t))

	// 100×100 = 10000 points > the 4096 default cap.
	big := api.TablesRequest{KeyOnly: true}
	for i := 0; i < 100; i++ {
		big.TStartsC = append(big.TStartsC, 40+float64(i)/2)
		big.FTargetsHz = append(big.FTargetsHz, float64(i+1)*1e7)
	}
	resp := postJSON(t, ts.URL+"/v1/tables", big, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized grid: status %d, want 400", resp.StatusCode)
	}

	// Non-finite grid values cannot arrive as JSON numbers, but the
	// server-side validation still guards other ingress paths.
	if err := srv.validateGrid([]float64{math.NaN()}, []float64{1e8}); err == nil {
		t.Fatal("NaN tstart accepted")
	}
	if err := srv.validateGrid([]float64{60}, []float64{math.Inf(1)}); err == nil {
		t.Fatal("+Inf ftarget accepted")
	}
	if err := srv.validateGrid([]float64{60}, []float64{1e8}); err != nil {
		t.Fatalf("small finite grid rejected: %v", err)
	}

	// Out-of-range JSON numbers (1e999 overflows float64) are refused
	// at decode time with 400, never 500.
	body := `{"tstarts_c":[1e999],"ftargets_hz":[5e8],"key_only":true}`
	httpResp, err := http.Post(ts.URL+"/v1/tables", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1e999 grid point: status %d, want 400", httpResp.StatusCode)
	}
	httpResp, err = http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(`{"tstart_c":1e999,"ftarget_hz":5e8}`))
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1e999 optimize point: status %d, want 400", httpResp.StatusCode)
	}

	// A valid in-bounds request still succeeds end to end.
	if resp := postJSON(t, ts.URL+"/v1/optimize", api.OptimizeRequest{TStartC: 60, FTargetHz: 5e8}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid optimize rejected: %d", resp.StatusCode)
	}

	// A stream request whose synthetic duration vastly exceeds what the
	// window cap can ever simulate is refused before trace generation.
	sid := createSession(t, ts.URL)
	if resp := postJSON(t, ts.URL+"/v1/sessions/"+sid+"/stream", map[string]any{
		"windows": 5, "duration_s": 1e12,
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("absurd stream duration: status %d, want 400", resp.StatusCode)
	}
}
