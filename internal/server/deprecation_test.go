package server

import (
	"net/http"
	"testing"

	"protemp/api"
)

// TestSessionCreateOnlineShim: the retired `online` boolean must keep
// working — mapped onto mode, counted as deprecated usage — and an
// explicit mode must win over it.
func TestSessionCreateOnlineShim(t *testing.T) {
	engine := fastEngine(t)
	_, ts := newTestServer(t, engine)

	var info api.SessionInfo
	resp := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"online": true}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy create: status %d", resp.StatusCode)
	}
	if info.Mode != "online" {
		t.Fatalf("legacy online:true mapped to mode %q", info.Mode)
	}

	resp = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"online": false}, &info)
	if resp.StatusCode != http.StatusCreated || info.Mode != "table" {
		t.Fatalf("legacy online:false: status %d mode %q", resp.StatusCode, info.Mode)
	}

	// Both fields present: mode governs.
	resp = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"online": true, "mode": "table"}, &info)
	if resp.StatusCode != http.StatusCreated || info.Mode != "table" {
		t.Fatalf("mode+online: status %d mode %q", resp.StatusCode, info.Mode)
	}

	var m map[string]uint64
	getJSON(t, ts.URL+"/metrics", &m)
	if m["deprecated_online_requests"] != 3 {
		t.Fatalf("deprecated_online_requests = %d", m["deprecated_online_requests"])
	}
}
