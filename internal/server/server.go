package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"protemp"
	"protemp/api"
	"protemp/client"
	"protemp/internal/cluster"
	"protemp/internal/core"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/sim"
	"protemp/internal/tablestore"
	"protemp/internal/workload"
)

// Config configures a Server. Engine is required; everything else has
// serving defaults.
type Config struct {
	Engine *protemp.Engine
	// Cluster, when non-nil, makes this node a member of a multi-node
	// control plane: session requests whose ring owner is a peer are
	// transparently proxied (single hop), GET /v1/tables/{key} serves
	// this node's stored tables to peers, and the cluster's proxy
	// counters merge into /metrics. Nil serves single-node.
	Cluster *cluster.Cluster
	// Admission tunes load shedding (create degradation keyed off the
	// live step-latency p95, bounded step queue). The zero value leaves
	// both gates off.
	Admission cluster.AdmissionConfig
	// Shards is the session-manager shard count (default 16).
	Shards int
	// SessionTTL expires sessions idle longer than this (default 15
	// minutes; negative disables expiry).
	SessionTTL time.Duration
	// ReapInterval is the expiry scan period (default SessionTTL/4,
	// floored at 1s). Tests shrink it to exercise expiry quickly.
	ReapInterval time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB — a full
	// explicit table grid is a few hundred KiB).
	MaxBodyBytes int64
	// StreamWindowCap bounds the windows one stream request may drive
	// (default 10000).
	StreamWindowCap int
	// MaxGridPoints bounds the Phase-1 grid one /v1/tables request may
	// ask for: len(tstarts)·len(ftargets) solves (default 4096; the
	// paper's full grid is 180).
	MaxGridPoints int
	// MaxFleetRuns bounds one fleet job's expanded scenario × policy ×
	// seed cells (default 256).
	MaxFleetRuns int
	// MaxFleetJobs bounds retained fleet jobs; finished jobs beyond the
	// cap are pruned oldest-first, and submissions are refused while
	// that many jobs are still running (default 32).
	MaxFleetJobs int
	// Logger receives one structured record per request (method, path,
	// status, bytes, elapsed, request id). Nil discards them; pass
	// slog.Default() (or any handler) to see traffic.
	Logger *slog.Logger

	// now overrides the clock in tests.
	now func() time.Time
}

// tableSpecArgs are the grid arguments behind one known table cache
// key, enough to regenerate the table on demand for a peer fetch. Nil
// grids select the engine defaults.
type tableSpecArgs struct {
	ts, fs []float64
	v      core.Variant
}

// maxKnownSpecs bounds the known-spec map: keys are content hashes, so
// the map can only grow, and a peer must not be able to balloon it
// with throwaway grids.
const maxKnownSpecs = 256

// Server serves the thermal control plane over HTTP/JSON. Create with
// New, mount via Handler (it also implements http.Handler directly),
// and call Shutdown to drain gracefully.
type Server struct {
	engine    *protemp.Engine
	cluster   *cluster.Cluster // nil = single node
	admission *cluster.Admission
	sessions  *sessionManager
	fleet     *fleetManager
	reg       *metrics.Registry
	mux       *http.ServeMux
	cfg       Config
	log       *slog.Logger
	reqID     atomic.Uint64

	// knownSpecs maps table cache keys this node can regenerate to
	// their grid arguments; handleTableGet falls back to it when the
	// local tiers miss, so a cluster-wide cold start funnels into the
	// owner's singleflight (exactly one Phase-1 sweep per spec).
	specMu     sync.Mutex
	knownSpecs map[string]tableSpecArgs

	requests      *metrics.Counter
	errorsCount   *metrics.Counter
	streamWindows *metrics.Counter
	// streamDegraded counts fully blind sensor windows served across
	// all sensed streams — the sensor-health alarm signal.
	streamDegraded *metrics.Counter
	tableRequests  *metrics.Counter
	tableServes    *metrics.Counter
	optimizes      *metrics.Counter
	// deprecatedOnline counts session creates still using the retired
	// `online` field — drop the shim when this stays zero.
	deprecatedOnline *metrics.Counter
}

// New builds a Server and starts its session reaper.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 16
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.StreamWindowCap == 0 {
		cfg.StreamWindowCap = 10000
	}
	if cfg.MaxGridPoints == 0 {
		cfg.MaxGridPoints = 4096
	}
	if cfg.MaxFleetRuns == 0 {
		cfg.MaxFleetRuns = 256
	}
	if cfg.MaxFleetJobs == 0 {
		cfg.MaxFleetJobs = 32
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	reg := metrics.NewRegistry()
	s := &Server{
		engine:           cfg.Engine,
		cluster:          cfg.Cluster,
		sessions:         newSessionManager(cfg.Shards, cfg.SessionTTL, cfg.ReapInterval, reg, cfg.now),
		fleet:            newFleetManager(cfg.Engine, cfg.MaxFleetRuns, cfg.MaxFleetJobs, reg, cfg.now),
		reg:              reg,
		mux:              http.NewServeMux(),
		cfg:              cfg,
		log:              cfg.Logger,
		knownSpecs:       make(map[string]tableSpecArgs),
		requests:         reg.Counter("http_requests"),
		errorsCount:      reg.Counter("http_errors"),
		streamWindows:    reg.Counter("stream_windows"),
		streamDegraded:   reg.Counter("stream_degraded_windows"),
		tableRequests:    reg.Counter("table_requests"),
		tableServes:      reg.Counter("table_peer_serves"),
		optimizes:        reg.Counter("optimize_requests"),
		deprecatedOnline: reg.Counter("deprecated_online_requests"),
	}
	s.admission = cluster.NewAdmission(cfg.Admission, func() (uint64, uint64) {
		return cfg.Engine.StepLatencyQuantile(0.95)
	}, reg)
	// The default-grid tables of every variant are always regenerable
	// for peers; explicit grids register as POST /v1/tables sees them.
	for _, v := range []core.Variant{core.VariantVariable, core.VariantUniform, core.VariantGradient} {
		s.registerSpec(cfg.Engine.TableKey(nil, nil, v), tableSpecArgs{v: v})
	}
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/tables/{key}", s.handleTableGet)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleSessionStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/stream", s.handleSessionStream)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/fleet", s.handleFleetSubmit)
	s.mux.HandleFunc("GET /v1/fleet", s.handleFleetList)
	s.mux.HandleFunc("GET /v1/fleet/scenarios", s.handleFleetScenarios)
	s.mux.HandleFunc("GET /v1/fleet/{id}", s.handleFleetStatus)
	s.mux.HandleFunc("GET /v1/fleet/{id}/results", s.handleFleetResults)
	s.mux.HandleFunc("DELETE /v1/fleet/{id}", s.handleFleetDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler. Every request gets a serving id
// (echoed as X-Request-Id so clients can quote it back) and one
// structured log record on completion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	id := s.reqID.Add(1)
	w.Header().Set(api.HeaderRequestID, strconv.FormatUint(id, 10))
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.Uint64("req_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// statusWriter captures the response status and size for the request
// log. It forwards Flush so the NDJSON stream handler can still push
// windows as they complete.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Shutdown gracefully drains the server: new sessions, steps and fleet
// jobs are refused, running fleet jobs are cancelled (their partial
// results survive), in-flight requests (including streams) run to
// completion bounded by ctx, then all sessions are dropped. Call it
// after (or concurrently with) http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	ferr := s.fleet.Shutdown(ctx)
	if err := s.sessions.Drain(ctx); err != nil {
		return err
	}
	return ferr
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int { return s.sessions.Len() }

// ---- helpers ----

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.errorsCount.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.Error{Message: fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeJSON parses the request body; an empty body decodes into the
// zero value so every field can default.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}

// mustMarshal renders a trusted in-process value for a RawMessage
// field; these values round-tripped through json elsewhere already, so
// a failure is a programming error worth surfacing loudly in the body.
func mustMarshal(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(map[string]string{"marshal_error": err.Error()})
	}
	return raw
}

func parseVariant(name string, def core.Variant) (core.Variant, error) {
	return core.ParseVariant(name, def)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validateGrid rejects absurd Phase-1 grid requests before they burn
// CPU: every grid point must be finite and the total solve count must
// stay within the configured bound. (Each grid point is one
// interior-point solve — an unbounded request is a denial-of-service
// lever, not a bigger table.)
func (s *Server) validateGrid(tstarts, ftargets []float64) error {
	for _, t := range tstarts {
		if !isFinite(t) {
			return fmt.Errorf("non-finite tstart %v", t)
		}
	}
	for _, f := range ftargets {
		if !isFinite(f) {
			return fmt.Errorf("non-finite ftarget %v", f)
		}
	}
	if cells := len(tstarts) * len(ftargets); cells > s.cfg.MaxGridPoints {
		return fmt.Errorf("grid of %d×%d = %d points exceeds the limit of %d",
			len(tstarts), len(ftargets), cells, s.cfg.MaxGridPoints)
	}
	return nil
}

// sessionError maps manager errors onto HTTP statuses.
func (s *Server) sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// ---- cluster routing ----

// forwarded reports whether a peer already proxied this request: it
// must be served locally (single-hop rule).
func forwarded(r *http.Request) bool {
	return r.Header.Get(api.HeaderForwarded) != ""
}

// sessionPeer resolves where a session request belongs: the peer to
// proxy to, or nil to serve locally (single node, forwarded request,
// or this node owns the id).
func (s *Server) sessionPeer(r *http.Request, id string) *cluster.Peer {
	if s.cluster == nil || forwarded(r) {
		return nil
	}
	p, remote := s.cluster.SessionOwner(id)
	if !remote {
		return nil
	}
	return p
}

// proxyError maps a failed proxied call onto this node's response: the
// owner's own API verdict (status, message, Retry-After) passes
// through untouched; breaker refusals and transport failures become
// 503 with a retry hint, since the cluster may heal.
func (s *Server) proxyError(w http.ResponseWriter, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(apiErr.RetryAfter.Seconds())))
		}
		s.writeError(w, apiErr.Status, "%s", apiErr.Message)
		return
	}
	w.Header().Set("Retry-After", "1")
	if errors.Is(err, cluster.ErrBreakerOpen) {
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.writeError(w, http.StatusServiceUnavailable, "cluster: session owner unreachable: %v", err)
}

// registerSpec remembers the grid behind a table cache key so
// handleTableGet can regenerate it for peers. The map is bounded;
// beyond the cap new specs are simply not remembered (peers then fall
// back to generating locally — correctness is unaffected).
func (s *Server) registerSpec(key string, args tableSpecArgs) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	if _, ok := s.knownSpecs[key]; ok {
		return
	}
	if len(s.knownSpecs) >= maxKnownSpecs {
		return
	}
	s.knownSpecs[key] = args
}

func (s *Server) lookupSpec(key string) (tableSpecArgs, bool) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	args, ok := s.knownSpecs[key]
	return args, ok
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := api.Health{Status: "ok", Sessions: s.sessions.Len()}
	if s.cluster != nil {
		h.Node = s.cluster.Self()
		h.Peers = s.cluster.Size()
	}
	s.writeJSON(w, http.StatusOK, h)
}

// handleMetrics merges the engine's counters (table cache and store),
// the serving counters and gauges (active sessions, in-flight fleet
// runs and jobs) and — on a cluster member — the proxy/peer-tier
// counters into one flat JSON object, or, when the Accept header asks
// for text/plain or OpenMetrics, the same samples in the Prometheus
// text exposition format, so a scrape_config needs nothing beyond the
// endpoint. JSON stays the default for existing clients.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged := s.engine.MetricsSnapshot()
	for name, v := range s.reg.Snapshot() {
		merged[name] = v
	}
	if s.cluster != nil {
		for name, v := range s.cluster.Registry().Snapshot() {
			merged[name] = v
		}
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		kinds := s.engine.MetricsKinds()
		for name, kind := range s.reg.Kinds() {
			kinds[name] = kind
		}
		if s.cluster != nil {
			for name, kind := range s.cluster.Registry().Kinds() {
				kinds[name] = kind
			}
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		metrics.WritePrometheus(w, merged, kinds, metrics.BuildInfo{
			Version:   protemp.Version,
			GoVersion: runtime.Version(),
		})
		return
	}
	// encoding/json emits map keys in sorted order — stable output
	// for scrapers and tests.
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(merged)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	fr := s.engine.FlightRecorder()
	if fr == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled (enable the engine's WithFlightRecorder option)")
		return
	}
	traces := fr.Traces()
	out := api.TraceList{Traces: make([]api.TraceSummary, 0, len(traces))}
	for _, tr := range traces {
		out.Traces = append(out.Traces, api.TraceSummary{
			ID:        tr.ID,
			Mode:      tr.Mode,
			Start:     tr.Start,
			ElapsedMs: float64(tr.ElapsedNs) / 1e6,
			Solves:    len(tr.Solves),
			Err:       tr.Err,
			Fallback:  tr.FallbackRung,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	fr := s.engine.FlightRecorder()
	if fr == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled (enable the engine's WithFlightRecorder option)")
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "trace id %q is not a number", r.PathValue("id"))
		return
	}
	tr := fr.Trace(id)
	if tr == nil {
		s.writeError(w, http.StatusNotFound, "trace %d not retained (aged out of the flight recorder or never recorded)", id)
		return
	}
	s.writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimizes.Inc()
	var req api.OptimizeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	v, err := parseVariant(req.Variant, s.engine.Variant())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !isFinite(req.TStartC) || !isFinite(req.FTargetHz) {
		s.writeError(w, http.StatusBadRequest, "non-finite design point (tstart %v, ftarget %v)", req.TStartC, req.FTargetHz)
		return
	}
	a, err := s.engine.OptimizeVariant(r.Context(), req.TStartC, req.FTargetHz, v)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing useful to write
		}
		s.writeError(w, http.StatusBadRequest, "optimize: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, api.Assignment{
		Feasible:    a.Feasible,
		FreqsHz:     a.Freqs,
		PowersW:     a.Powers,
		AvgFreqHz:   a.AvgFreq,
		TotalPowerW: a.TotalPower,
		PeakTempC:   a.PeakTemp,
		TGradC:      a.TGrad,
		NewtonIters: a.NewtonIters,
	})
}

// handleTables generates or fetches a Phase-1 table. The call funnels
// through the engine's singleflight cache and write-through store, so
// concurrent requests for one configuration cost at most one sweep and
// a restarted server serves it from disk.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.tableRequests.Inc()
	var req api.TablesRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	v, err := parseVariant(req.Variant, s.engine.Variant())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ts, fs := req.TStartsC, req.FTargetsHz
	defTS, defFS := s.engine.TableGrid()
	if len(ts) == 0 {
		ts = defTS
	}
	if len(fs) == 0 {
		fs = defFS
	}
	if err := s.validateGrid(ts, fs); err != nil {
		s.writeError(w, http.StatusBadRequest, "table: %v", err)
		return
	}
	key := s.engine.TableKey(ts, fs, v)
	// Remember the grid behind the key before generating, so a peer
	// racing the same cold start can already resolve it against us.
	s.registerSpec(key, tableSpecArgs{ts: ts, fs: fs, v: v})
	table, err := s.engine.GenerateTableGrid(r.Context(), ts, fs, v)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, http.StatusBadRequest, "table: %v", err)
		return
	}
	resp := api.TablesResponse{Key: key}
	if !req.KeyOnly {
		resp.Table = mustMarshal(table)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleTableGet serves one stored table by its content-addressed key
// in the versioned tablestore envelope — the peer tier of the cluster
// table store. Local cache/store tiers answer first; a miss on a key
// whose grid this node knows falls into the engine's singleflight
// generation (so a cluster-wide cold start runs exactly one Phase-1
// sweep, on the key's owner); anything else is 404 and the asking peer
// generates for itself.
func (s *Server) handleTableGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	table, ok := s.engine.LookupTable(key)
	if !ok {
		args, known := s.lookupSpec(key)
		if !known {
			s.writeError(w, http.StatusNotFound, "table %q not stored on this node", key)
			return
		}
		var err error
		table, err = s.engine.GenerateTableGrid(r.Context(), args.ts, args.fs, args.v)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			s.writeError(w, http.StatusInternalServerError, "table: %v", err)
			return
		}
	}
	s.tableServes.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if err := tablestore.Encode(w, table); err != nil {
		// Headers are gone; the truncated body fails the peer's
		// checksum, which is the failure mode we want.
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "table serve failed",
			slog.String("key", key), slog.String("err", err.Error()))
	}
}

// sessionCreateWire is api.SessionCreateRequest plus the deprecated
// pre-Mode `online` flag old clients still send. Only the server
// carries the shim; the public api struct no longer names the field.
type sessionCreateWire struct {
	api.SessionCreateRequest
	// Online is the deprecated spelling of mode "online"; Mode wins
	// when both are set.
	Online *bool `json:"online,omitempty"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var wire sessionCreateWire
	if err := decodeJSON(r, &wire); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	req := wire.SessionCreateRequest
	if wire.Online != nil {
		s.deprecatedOnline.Inc()
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "deprecated session create field",
			slog.String("field", "online"),
			slog.String("hint", `use "mode": "online" instead; the online field will be removed`))
		if req.Mode == "" && *wire.Online {
			req.Mode = "online"
		}
	}
	mode := req.Mode
	if mode == "" {
		mode = "table"
	}
	switch mode {
	case "table", "online", "dmpc":
	default:
		s.writeError(w, http.StatusBadRequest, "session: unknown mode %q (want table, online or dmpc)", mode)
		return
	}

	id := req.ID
	if !forwarded(r) {
		if id != "" {
			s.writeError(w, http.StatusBadRequest, "session: id is assigned by the server (the field is reserved for cluster forwarding)")
			return
		}
		var err error
		id, err = newSessionID()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if s.cluster != nil {
			if p, remote := s.cluster.SessionOwner(id); remote {
				var info api.SessionInfo
				err := s.cluster.Call(p, func(cl *client.Client) error {
					out, cerr := cl.CreateSession(r.Context(), api.SessionCreateRequest{Mode: req.Mode, ID: id})
					info = out
					return cerr
				})
				if err != nil {
					s.proxyError(w, err)
					return
				}
				s.writeJSON(w, http.StatusCreated, info)
				return
			}
		}
	} else if id == "" {
		// A forwarded create without a pinned id would land on a node
		// that does not own it; refuse rather than strand the session.
		s.writeError(w, http.StatusBadRequest, "session: forwarded create without an id")
		return
	}

	// Admission: under solve-latency overload a new solver-backed
	// session is accepted but served by the table-driven policy.
	degraded := false
	if (mode == "online" || mode == "dmpc") && s.admission.DegradeCreate() {
		degraded = true
		mode = "table"
	}
	var (
		sess *protemp.Session
		err  error
	)
	switch mode {
	case "online":
		// Compiles the session's persistent online problem; a failure
		// here is an engine-configuration problem, not a client one.
		sess, err = s.engine.NewOnlineSession()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	case "dmpc":
		// Partitions the chip and compiles one warm-startable
		// subproblem per cluster (engine-configured cluster count).
		sess, err = s.engine.NewDMPCSession()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	case "table":
		// Table generation (or cache/store/peer hit) happens here,
		// under the request context: a cancelled create aborts the
		// sweep.
		sess, err = s.engine.NewSession(r.Context())
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	}
	ms, err := s.sessions.Add(id, sess, mode, degraded)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, s.sessionInfo(ms))
}

func (s *Server) sessionInfo(ms *managedSession) api.SessionInfo {
	steps, downgrades, idles, solves := ms.sess.Stats()
	warmHits, warmRejects := ms.sess.WarmStats()
	outer, fallbacks := ms.sess.ADMMStats()
	info := api.SessionInfo{
		ID:          ms.id,
		Mode:        ms.sess.Mode(),
		Degraded:    ms.degraded,
		NumCores:    s.engine.Chip().NumCores(),
		WindowS:     s.engine.WindowSeconds(),
		Steps:       steps,
		Downgrades:  downgrades,
		Idles:       idles,
		Solves:      solves,
		WarmHits:    warmHits,
		WarmRejects: warmRejects,
		Clusters:    ms.sess.Clusters(),
		OuterIters:  outer,
		Fallbacks:   fallbacks,
	}
	if s.cluster != nil {
		info.Node = s.cluster.Self()
	}
	return info
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if p := s.sessionPeer(r, id); p != nil {
		var info api.SessionInfo
		err := s.cluster.Call(p, func(cl *client.Client) error {
			out, cerr := cl.Session(r.Context(), id)
			info = out
			return cerr
		})
		if err != nil {
			s.proxyError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, info)
		return
	}
	ms, release, err := s.sessions.Acquire(id)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()
	s.writeJSON(w, http.StatusOK, s.sessionInfo(ms))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if p := s.sessionPeer(r, id); p != nil {
		err := s.cluster.Call(p, func(cl *client.Client) error {
			return cl.DeleteSession(r.Context(), id)
		})
		if err != nil {
			s.proxyError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if !s.sessions.Remove(id) {
		s.writeError(w, http.StatusNotFound, "%v", ErrSessionNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	var req api.StepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	id := r.PathValue("id")
	if p := s.sessionPeer(r, id); p != nil {
		var out api.StepResponse
		err := s.cluster.Call(p, func(cl *client.Client) error {
			resp, cerr := cl.Step(r.Context(), id, req)
			out = resp
			return cerr
		})
		if err != nil {
			s.proxyError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	ms, release, err := s.sessions.Acquire(id)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()
	// Admission: solver-backed steps are bounded; past the queue the
	// client gets 429 + Retry-After instead of a goroutine pile-up.
	// Table lookups are a few array reads and pass unthrottled.
	if ms.mode != "table" {
		releaseStep, err := s.admission.AcquireStep(r.Context())
		if err != nil {
			if errors.Is(err, cluster.ErrOverloaded) {
				w.Header().Set("Retry-After", strconv.Itoa(int(s.admission.RetryAfter().Seconds())))
				s.writeError(w, http.StatusTooManyRequests, "step: %v", err)
				return
			}
			return // context cancelled while queued
		}
		defer releaseStep()
	}
	freqs, err := ms.sess.Step(r.Context(), protemp.State{
		MaxCoreTemp:     req.MaxCoreTempC,
		RequiredFreq:    req.RequiredFreqHz,
		BlockTemps:      req.BlockTempsC,
		SensingDegraded: req.SensingDegraded,
	})
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, http.StatusBadRequest, "step: %v", err)
		return
	}
	s.sessions.steps.Inc()
	steps, _, _, _ := ms.sess.Stats()
	s.writeJSON(w, http.StatusOK, api.StepResponse{FreqsHz: freqs, Steps: steps})
}

// handleSessionStream drives a sim.Stepper window-at-a-time under the
// session's controller and streams one NDJSON object per DFS window,
// closing with a summary line. The stream pins the session, so the
// idle reaper cannot expire it mid-run, and graceful drain waits for
// the stream to finish. On a non-owner node the stream is relayed
// byte-for-byte from the owner, flushing as lines arrive.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	var req api.StreamRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	id := r.PathValue("id")
	if p := s.sessionPeer(r, id); p != nil {
		s.proxyStream(w, r, p, id, req)
		return
	}
	sensing, err := decodeSensing(req.Sensing)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "stream: %v", err)
		return
	}
	ms, release, err := s.sessions.Acquire(id)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()

	maxWindows := req.Windows
	if maxWindows <= 0 || maxWindows > s.cfg.StreamWindowCap {
		maxWindows = s.cfg.StreamWindowCap
	}
	trace, err := s.streamTrace(req, maxWindows)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "stream: %v", err)
		return
	}
	ctx := r.Context()
	stepper, err := sim.NewWindowStepper(sim.Config{
		Chip:    s.engine.Chip(),
		Disc:    s.engine.Disc(),
		Policy:  ms.sess.Policy(ctx),
		Trace:   trace,
		Window:  s.engine.WindowSeconds(),
		TMax:    s.engine.TMax(),
		T0:      req.T0C,
		MaxTime: float64(maxWindows+1) * s.engine.WindowSeconds(),
		Sensing: sensing,
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "stream: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	windows := 0
	for windows < maxWindows && !stepper.Done() {
		if ctx.Err() != nil {
			return // client disconnected mid-stream
		}
		st := stepper.State()
		freqs, err := ms.sess.Step(ctx, protemp.State{
			MaxCoreTemp:     st.MaxCoreTemp,
			RequiredFreq:    st.RequiredFreq,
			BlockTemps:      st.BlockTemps,
			SensingDegraded: st.SensingDegraded,
		})
		if err != nil {
			// Headers are gone; report in-band and stop.
			enc.Encode(api.Error{Message: fmt.Sprintf("step: %v", err)})
			return
		}
		if err := stepper.StepWith(linalg.VectorOf(freqs...)); err != nil {
			enc.Encode(api.Error{Message: fmt.Sprintf("advance: %v", err)})
			return
		}
		windows++
		s.streamWindows.Inc()
		s.sessions.steps.Inc()
		if st.SensingDegraded {
			s.streamDegraded.Inc()
		}
		line := api.StreamWindow{
			Window:          windows,
			TimeS:           stepper.Time(),
			MaxCoreTempC:    st.MaxCoreTemp,
			RequiredFreqHz:  st.RequiredFreq,
			FreqsHz:         freqs,
			QueueLen:        st.QueueLen,
			SensingDegraded: st.SensingDegraded,
			Done:            stepper.Done(),
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	res := stepper.Result()
	var sum api.StreamSummary
	sum.Summary.Windows = windows
	sum.Summary.SimTimeS = res.SimTime
	sum.Summary.Completed = res.Completed
	sum.Summary.Unfinished = res.Unfinished
	sum.Summary.MaxCoreTempC = res.MaxCoreTemp
	sum.Summary.ViolationFrac = res.ViolationFrac
	sum.Summary.EnergyJ = res.EnergyJ
	if res.Sense != nil {
		sum.Summary.Sense = mustMarshal(res.Sense)
	}
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// proxyStream relays an NDJSON stream from the session's owner,
// flushing as bytes arrive so windows still reach the client live.
func (s *Server) proxyStream(w http.ResponseWriter, r *http.Request, p *cluster.Peer, id string, req api.StreamRequest) {
	var resp *http.Response
	err := s.cluster.Call(p, func(cl *client.Client) error {
		var cerr error
		resp, cerr = cl.StreamRaw(r.Context(), id, req)
		return cerr
	})
	if err != nil {
		s.proxyError(w, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // our client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return // EOF or the owner went away mid-stream
		}
	}
}

// decodeSensing parses the sensing document of a stream request with
// the same strictness the top-level body gets.
func decodeSensing(raw json.RawMessage) (*sim.Sensing, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	sn := new(sim.Sensing)
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sn); err != nil {
		return nil, fmt.Errorf("bad sensing: %w", err)
	}
	return sn, nil
}

// streamTrace builds the workload for a stream request: explicit tasks
// when given, otherwise a synthetic mixed trace sized to the request.
// The synthetic parameters are bounded server-side: trace generation
// cost scales with the duration, so an absurd duration_s must be
// rejected up front, not discovered at OOM.
func (s *Server) streamTrace(req api.StreamRequest, maxWindows int) (*workload.Trace, error) {
	for name, v := range map[string]float64{
		"duration_s": req.DurationS, "utilization": req.Utilization, "t0_c": req.T0C,
	} {
		if !isFinite(v) {
			return nil, fmt.Errorf("non-finite %s %v", name, v)
		}
	}
	// Arrivals past the server's hard window cap can never be served
	// by any stream; a longer duration only burns generation time.
	if maxDuration := float64(s.cfg.StreamWindowCap+1) * s.engine.WindowSeconds(); req.DurationS > maxDuration {
		return nil, fmt.Errorf("duration_s %g exceeds the %d-window stream cap (%g s)", req.DurationS, s.cfg.StreamWindowCap, maxDuration)
	}
	if len(req.Tasks) > 0 {
		tr := &workload.Trace{Tasks: make([]workload.Task, len(req.Tasks))}
		for i, t := range req.Tasks {
			tr.Tasks[i] = workload.Task{ID: i, Arrival: t.ArrivalS, Work: t.WorkS, Class: "external"}
		}
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		return tr, nil
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	duration := req.DurationS
	if duration <= 0 {
		duration = float64(maxWindows) * s.engine.WindowSeconds()
	}
	gen := workload.Mixed(seed, s.engine.Chip().NumCores(), duration)
	if req.Utilization > 0 {
		gen.Utilization = req.Utilization
	}
	return gen.Generate()
}
