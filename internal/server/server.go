package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"protemp"
	"protemp/internal/core"
	"protemp/internal/linalg"
	"protemp/internal/metrics"
	"protemp/internal/sim"
	"protemp/internal/workload"
)

// Config configures a Server. Engine is required; everything else has
// serving defaults.
type Config struct {
	Engine *protemp.Engine
	// Shards is the session-manager shard count (default 16).
	Shards int
	// SessionTTL expires sessions idle longer than this (default 15
	// minutes; negative disables expiry).
	SessionTTL time.Duration
	// ReapInterval is the expiry scan period (default SessionTTL/4,
	// floored at 1s). Tests shrink it to exercise expiry quickly.
	ReapInterval time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB — a full
	// explicit table grid is a few hundred KiB).
	MaxBodyBytes int64
	// StreamWindowCap bounds the windows one stream request may drive
	// (default 10000).
	StreamWindowCap int
	// MaxGridPoints bounds the Phase-1 grid one /v1/tables request may
	// ask for: len(tstarts)·len(ftargets) solves (default 4096; the
	// paper's full grid is 180).
	MaxGridPoints int
	// MaxFleetRuns bounds one fleet job's expanded scenario × policy ×
	// seed cells (default 256).
	MaxFleetRuns int
	// MaxFleetJobs bounds retained fleet jobs; finished jobs beyond the
	// cap are pruned oldest-first, and submissions are refused while
	// that many jobs are still running (default 32).
	MaxFleetJobs int
	// Logger receives one structured record per request (method, path,
	// status, bytes, elapsed, request id). Nil discards them; pass
	// slog.Default() (or any handler) to see traffic.
	Logger *slog.Logger

	// now overrides the clock in tests.
	now func() time.Time
}

// Server serves the thermal control plane over HTTP/JSON. Create with
// New, mount via Handler (it also implements http.Handler directly),
// and call Shutdown to drain gracefully.
type Server struct {
	engine   *protemp.Engine
	sessions *sessionManager
	fleet    *fleetManager
	reg      *metrics.Registry
	mux      *http.ServeMux
	cfg      Config
	log      *slog.Logger
	reqID    atomic.Uint64

	requests      *metrics.Counter
	errorsCount   *metrics.Counter
	streamWindows *metrics.Counter
	// streamDegraded counts fully blind sensor windows served across
	// all sensed streams — the sensor-health alarm signal.
	streamDegraded *metrics.Counter
	tableRequests  *metrics.Counter
	optimizes      *metrics.Counter
}

// New builds a Server and starts its session reaper.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 16
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.StreamWindowCap == 0 {
		cfg.StreamWindowCap = 10000
	}
	if cfg.MaxGridPoints == 0 {
		cfg.MaxGridPoints = 4096
	}
	if cfg.MaxFleetRuns == 0 {
		cfg.MaxFleetRuns = 256
	}
	if cfg.MaxFleetJobs == 0 {
		cfg.MaxFleetJobs = 32
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	reg := metrics.NewRegistry()
	s := &Server{
		engine:         cfg.Engine,
		sessions:       newSessionManager(cfg.Shards, cfg.SessionTTL, cfg.ReapInterval, reg, cfg.now),
		fleet:          newFleetManager(cfg.Engine, cfg.MaxFleetRuns, cfg.MaxFleetJobs, reg, cfg.now),
		reg:            reg,
		mux:            http.NewServeMux(),
		cfg:            cfg,
		log:            cfg.Logger,
		requests:       reg.Counter("http_requests"),
		errorsCount:    reg.Counter("http_errors"),
		streamWindows:  reg.Counter("stream_windows"),
		streamDegraded: reg.Counter("stream_degraded_windows"),
		tableRequests:  reg.Counter("table_requests"),
		optimizes:      reg.Counter("optimize_requests"),
	}
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/tables", s.handleTables)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleSessionStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/stream", s.handleSessionStream)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/fleet", s.handleFleetSubmit)
	s.mux.HandleFunc("GET /v1/fleet", s.handleFleetList)
	s.mux.HandleFunc("GET /v1/fleet/scenarios", s.handleFleetScenarios)
	s.mux.HandleFunc("GET /v1/fleet/{id}", s.handleFleetStatus)
	s.mux.HandleFunc("GET /v1/fleet/{id}/results", s.handleFleetResults)
	s.mux.HandleFunc("DELETE /v1/fleet/{id}", s.handleFleetDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler. Every request gets a serving id
// (echoed as X-Request-Id so clients can quote it back) and one
// structured log record on completion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	id := s.reqID.Add(1)
	w.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.Uint64("req_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// statusWriter captures the response status and size for the request
// log. It forwards Flush so the NDJSON stream handler can still push
// windows as they complete.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Shutdown gracefully drains the server: new sessions, steps and fleet
// jobs are refused, running fleet jobs are cancelled (their partial
// results survive), in-flight requests (including streams) run to
// completion bounded by ctx, then all sessions are dropped. Call it
// after (or concurrently with) http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	ferr := s.fleet.Shutdown(ctx)
	if err := s.sessions.Drain(ctx); err != nil {
		return err
	}
	return ferr
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int { return s.sessions.Len() }

// ---- wire types ----

type errorResponse struct {
	Error string `json:"error"`
}

type optimizeRequest struct {
	TStartC   float64 `json:"tstart_c"`
	FTargetHz float64 `json:"ftarget_hz"`
	Variant   string  `json:"variant,omitempty"`
}

type assignmentResponse struct {
	Feasible    bool      `json:"feasible"`
	FreqsHz     []float64 `json:"freqs_hz,omitempty"`
	PowersW     []float64 `json:"powers_w,omitempty"`
	AvgFreqHz   float64   `json:"avg_freq_hz,omitempty"`
	TotalPowerW float64   `json:"total_power_w,omitempty"`
	PeakTempC   float64   `json:"peak_temp_c,omitempty"`
	TGradC      float64   `json:"tgrad_c,omitempty"`
	NewtonIters int       `json:"newton_iters,omitempty"`
}

type tablesRequest struct {
	TStartsC   []float64 `json:"tstarts_c,omitempty"`
	FTargetsHz []float64 `json:"ftargets_hz,omitempty"`
	Variant    string    `json:"variant,omitempty"`
	// KeyOnly skips the table payload in the response — useful to warm
	// the cache/store or discover the store filename without shipping
	// the grid back.
	KeyOnly bool `json:"key_only,omitempty"`
}

type tablesResponse struct {
	Key   string      `json:"key"`
	Table *core.Table `json:"table,omitempty"`
}

type sessionCreateRequest struct {
	// Mode selects the session kind: "table" (default), "online" (one
	// convex solve per step on the full thermal map) or "dmpc" (the
	// chip partitioned into clusters solved in parallel under ADMM
	// boundary consensus — the many-core mode).
	Mode string `json:"mode,omitempty"`
	// Online is the pre-Mode spelling of mode "online", kept for
	// existing clients; Mode wins when both are set.
	Online bool `json:"online,omitempty"`
}

type sessionInfoResponse struct {
	ID   string `json:"id"`
	Mode string `json:"mode"`
	// Online mirrors Mode == "online" for pre-Mode clients.
	Online     bool    `json:"online"`
	NumCores   int     `json:"num_cores"`
	WindowS    float64 `json:"window_s"`
	Steps      uint64  `json:"steps"`
	Downgrades uint64  `json:"downgrades"`
	Idles      uint64  `json:"idles"`
	Solves     uint64  `json:"solves"`
	// WarmHits / WarmRejects report an online or dmpc session's
	// warm-start effectiveness (always zero for table sessions).
	WarmHits    uint64 `json:"warm_hits"`
	WarmRejects uint64 `json:"warm_rejects"`
	// Consensus-layer accounting of a dmpc session (zero otherwise):
	// partition size, total ADMM outer iterations and windows that
	// walked the fallback ladder.
	Clusters   int    `json:"clusters,omitempty"`
	OuterIters uint64 `json:"outer_iters,omitempty"`
	Fallbacks  uint64 `json:"fallbacks,omitempty"`
}

type stepRequest struct {
	MaxCoreTempC   float64   `json:"max_core_temp_c"`
	RequiredFreqHz float64   `json:"required_freq_hz"`
	BlockTempsC    []float64 `json:"block_temps_c,omitempty"`
	// SensingDegraded marks the observed state as pure prediction or
	// held-over readings (a fully blind sensor window): an online
	// session drops its warm solver state so the blind window's optimum
	// never seeds the next real solve.
	SensingDegraded bool `json:"sensing_degraded,omitempty"`
}

type stepResponse struct {
	FreqsHz []float64 `json:"freqs_hz"`
	Steps   uint64    `json:"steps"`
}

type streamRequest struct {
	// Windows bounds how many DFS windows to drive (default: until the
	// workload drains, capped by the server's StreamWindowCap).
	Windows int `json:"windows,omitempty"`
	// Tasks is an explicit workload (arrival-ordered). When empty a
	// synthetic mixed trace is generated from Seed/DurationS/Utilization.
	Tasks []streamTask `json:"tasks,omitempty"`
	// Seed / DurationS / Utilization parameterize the synthetic trace
	// (defaults 1 / one window per requested step / 0.7).
	Seed        int64   `json:"seed,omitempty"`
	DurationS   float64 `json:"duration_s,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	// T0C is the uniform initial temperature (default model ambient).
	T0C float64 `json:"t0_c,omitempty"`
	// Sensing, when present, interposes the imperfect measurement path:
	// the session observes degraded sensor readings (optionally filtered
	// through the configured estimator) instead of the true
	// temperatures, and the closing summary reports the sense counters.
	Sensing *sim.Sensing `json:"sensing,omitempty"`
}

type streamTask struct {
	ArrivalS float64 `json:"arrival_s"`
	WorkS    float64 `json:"work_s"`
}

// streamWindow is one NDJSON line of a stream response.
type streamWindow struct {
	Window         int       `json:"window"`
	TimeS          float64   `json:"t_s"`
	MaxCoreTempC   float64   `json:"max_core_temp_c"`
	RequiredFreqHz float64   `json:"required_freq_hz"`
	FreqsHz        []float64 `json:"freqs_hz"`
	QueueLen       int       `json:"queue_len"`
	// SensingDegraded marks a fully blind sensor window (sensed streams
	// only): the reported temperatures are predictions or held-over
	// readings, and the session's warm solver state was invalidated.
	SensingDegraded bool `json:"sensing_degraded,omitempty"`
	Done            bool `json:"done"`
}

// streamSummary is the final NDJSON line.
type streamSummary struct {
	Summary struct {
		Windows       int     `json:"windows"`
		SimTimeS      float64 `json:"sim_time_s"`
		Completed     int     `json:"completed"`
		Unfinished    int     `json:"unfinished"`
		MaxCoreTempC  float64 `json:"max_core_temp_c"`
		ViolationFrac float64 `json:"violation_frac"`
		EnergyJ       float64 `json:"energy_j"`
		// Sense carries the imperfect-sensing counters and estimator
		// accuracy of a sensed stream (absent otherwise).
		Sense *sim.SenseSummary `json:"sense,omitempty"`
	} `json:"summary"`
}

// ---- helpers ----

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.errorsCount.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeJSON parses the request body; an empty body decodes into the
// zero value so every field can default.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}

func parseVariant(name string, def core.Variant) (core.Variant, error) {
	return core.ParseVariant(name, def)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validateGrid rejects absurd Phase-1 grid requests before they burn
// CPU: every grid point must be finite and the total solve count must
// stay within the configured bound. (Each grid point is one
// interior-point solve — an unbounded request is a denial-of-service
// lever, not a bigger table.)
func (s *Server) validateGrid(tstarts, ftargets []float64) error {
	for _, t := range tstarts {
		if !isFinite(t) {
			return fmt.Errorf("non-finite tstart %v", t)
		}
	}
	for _, f := range ftargets {
		if !isFinite(f) {
			return fmt.Errorf("non-finite ftarget %v", f)
		}
	}
	if cells := len(tstarts) * len(ftargets); cells > s.cfg.MaxGridPoints {
		return fmt.Errorf("grid of %d×%d = %d points exceeds the limit of %d",
			len(tstarts), len(ftargets), cells, s.cfg.MaxGridPoints)
	}
	return nil
}

// sessionError maps manager errors onto HTTP statuses.
func (s *Server) sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSessionNotFound):
		s.writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.sessions.Len(),
	})
}

// handleMetrics merges the engine's counters (table cache and store)
// with the serving counters and gauges (active sessions, in-flight
// fleet runs and jobs) into one flat JSON object, or — when the Accept
// header asks for text/plain or OpenMetrics — the same samples in the
// Prometheus text exposition format, so a scrape_config needs nothing
// beyond the endpoint. JSON stays the default for existing clients.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged := s.engine.MetricsSnapshot()
	for name, v := range s.reg.Snapshot() {
		merged[name] = v
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		kinds := s.engine.MetricsKinds()
		for name, kind := range s.reg.Kinds() {
			kinds[name] = kind
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		metrics.WritePrometheus(w, merged, kinds, metrics.BuildInfo{
			Version:   protemp.Version,
			GoVersion: runtime.Version(),
		})
		return
	}
	// encoding/json emits map keys in sorted order — stable output
	// for scrapers and tests.
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(merged)
}

// traceSummary is one row of the /debug/traces listing; the full span
// tree of a trace hangs off /debug/traces/{id}.
type traceSummary struct {
	ID        uint64    `json:"id"`
	Mode      string    `json:"mode"`
	Start     time.Time `json:"start"`
	ElapsedMs float64   `json:"elapsed_ms"`
	Solves    int       `json:"solves"`
	Err       string    `json:"err,omitempty"`
	Fallback  string    `json:"fallback,omitempty"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	fr := s.engine.FlightRecorder()
	if fr == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled (enable the engine's WithFlightRecorder option)")
		return
	}
	traces := fr.Traces()
	out := make([]traceSummary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, traceSummary{
			ID:        tr.ID,
			Mode:      tr.Mode,
			Start:     tr.Start,
			ElapsedMs: float64(tr.ElapsedNs) / 1e6,
			Solves:    len(tr.Solves),
			Err:       tr.Err,
			Fallback:  tr.FallbackRung,
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	fr := s.engine.FlightRecorder()
	if fr == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder disabled (enable the engine's WithFlightRecorder option)")
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "trace id %q is not a number", r.PathValue("id"))
		return
	}
	tr := fr.Trace(id)
	if tr == nil {
		s.writeError(w, http.StatusNotFound, "trace %d not retained (aged out of the flight recorder or never recorded)", id)
		return
	}
	s.writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.optimizes.Inc()
	var req optimizeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	v, err := parseVariant(req.Variant, s.engine.Variant())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !isFinite(req.TStartC) || !isFinite(req.FTargetHz) {
		s.writeError(w, http.StatusBadRequest, "non-finite design point (tstart %v, ftarget %v)", req.TStartC, req.FTargetHz)
		return
	}
	a, err := s.engine.OptimizeVariant(r.Context(), req.TStartC, req.FTargetHz, v)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing useful to write
		}
		s.writeError(w, http.StatusBadRequest, "optimize: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, assignmentResponse{
		Feasible:    a.Feasible,
		FreqsHz:     a.Freqs,
		PowersW:     a.Powers,
		AvgFreqHz:   a.AvgFreq,
		TotalPowerW: a.TotalPower,
		PeakTempC:   a.PeakTemp,
		TGradC:      a.TGrad,
		NewtonIters: a.NewtonIters,
	})
}

// handleTables generates or fetches a Phase-1 table. The call funnels
// through the engine's singleflight cache and write-through store, so
// concurrent requests for one configuration cost at most one sweep and
// a restarted server serves it from disk.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.tableRequests.Inc()
	var req tablesRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	v, err := parseVariant(req.Variant, s.engine.Variant())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ts, fs := req.TStartsC, req.FTargetsHz
	defTS, defFS := s.engine.TableGrid()
	if len(ts) == 0 {
		ts = defTS
	}
	if len(fs) == 0 {
		fs = defFS
	}
	if err := s.validateGrid(ts, fs); err != nil {
		s.writeError(w, http.StatusBadRequest, "table: %v", err)
		return
	}
	table, err := s.engine.GenerateTableGrid(r.Context(), ts, fs, v)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, http.StatusBadRequest, "table: %v", err)
		return
	}
	resp := tablesResponse{Key: s.engine.TableKey(ts, fs, v)}
	if !req.KeyOnly {
		resp.Table = table
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode := req.Mode
	if mode == "" {
		if req.Online {
			mode = "online"
		} else {
			mode = "table"
		}
	}
	var (
		sess *protemp.Session
		err  error
	)
	switch mode {
	case "online":
		// Compiles the session's persistent online problem; a failure
		// here is an engine-configuration problem, not a client one.
		sess, err = s.engine.NewOnlineSession()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	case "dmpc":
		// Partitions the chip and compiles one warm-startable
		// subproblem per cluster (engine-configured cluster count).
		sess, err = s.engine.NewDMPCSession()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	case "table":
		// Table generation (or cache/store hit) happens here, under
		// the request context: a cancelled create aborts the sweep.
		sess, err = s.engine.NewSession(r.Context())
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			s.writeError(w, http.StatusInternalServerError, "session: %v", err)
			return
		}
	default:
		s.writeError(w, http.StatusBadRequest, "session: unknown mode %q (want table, online or dmpc)", mode)
		return
	}
	id, err := s.sessions.Add(sess, mode == "online")
	if err != nil {
		s.sessionError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, s.sessionInfo(id, sess))
}

func (s *Server) sessionInfo(id string, sess *protemp.Session) sessionInfoResponse {
	steps, downgrades, idles, solves := sess.Stats()
	warmHits, warmRejects := sess.WarmStats()
	outer, fallbacks := sess.ADMMStats()
	return sessionInfoResponse{
		ID:          id,
		Mode:        sess.Mode(),
		Online:      sess.Online(),
		NumCores:    s.engine.Chip().NumCores(),
		WindowS:     s.engine.WindowSeconds(),
		Steps:       steps,
		Downgrades:  downgrades,
		Idles:       idles,
		Solves:      solves,
		WarmHits:    warmHits,
		WarmRejects: warmRejects,
		Clusters:    sess.Clusters(),
		OuterIters:  outer,
		Fallbacks:   fallbacks,
	}
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ms, release, err := s.sessions.Acquire(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()
	s.writeJSON(w, http.StatusOK, s.sessionInfo(ms.id, ms.sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Remove(r.PathValue("id")) {
		s.writeError(w, http.StatusNotFound, "%v", ErrSessionNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ms, release, err := s.sessions.Acquire(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()
	freqs, err := ms.sess.Step(r.Context(), protemp.State{
		MaxCoreTemp:     req.MaxCoreTempC,
		RequiredFreq:    req.RequiredFreqHz,
		BlockTemps:      req.BlockTempsC,
		SensingDegraded: req.SensingDegraded,
	})
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		s.writeError(w, http.StatusBadRequest, "step: %v", err)
		return
	}
	s.sessions.steps.Inc()
	steps, _, _, _ := ms.sess.Stats()
	s.writeJSON(w, http.StatusOK, stepResponse{FreqsHz: freqs, Steps: steps})
}

// handleSessionStream drives a sim.Stepper window-at-a-time under the
// session's controller and streams one NDJSON object per DFS window,
// closing with a summary line. The stream pins the session, so the
// idle reaper cannot expire it mid-run, and graceful drain waits for
// the stream to finish.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	var req streamRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ms, release, err := s.sessions.Acquire(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	defer release()

	maxWindows := req.Windows
	if maxWindows <= 0 || maxWindows > s.cfg.StreamWindowCap {
		maxWindows = s.cfg.StreamWindowCap
	}
	trace, err := s.streamTrace(req, maxWindows)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "stream: %v", err)
		return
	}
	ctx := r.Context()
	stepper, err := sim.NewWindowStepper(sim.Config{
		Chip:    s.engine.Chip(),
		Disc:    s.engine.Disc(),
		Policy:  ms.sess.Policy(ctx),
		Trace:   trace,
		Window:  s.engine.WindowSeconds(),
		TMax:    s.engine.TMax(),
		T0:      req.T0C,
		MaxTime: float64(maxWindows+1) * s.engine.WindowSeconds(),
		Sensing: req.Sensing,
	})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "stream: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	windows := 0
	for windows < maxWindows && !stepper.Done() {
		if ctx.Err() != nil {
			return // client disconnected mid-stream
		}
		st := stepper.State()
		freqs, err := ms.sess.Step(ctx, protemp.State{
			MaxCoreTemp:     st.MaxCoreTemp,
			RequiredFreq:    st.RequiredFreq,
			BlockTemps:      st.BlockTemps,
			SensingDegraded: st.SensingDegraded,
		})
		if err != nil {
			// Headers are gone; report in-band and stop.
			enc.Encode(errorResponse{Error: fmt.Sprintf("step: %v", err)})
			return
		}
		if err := stepper.StepWith(linalg.VectorOf(freqs...)); err != nil {
			enc.Encode(errorResponse{Error: fmt.Sprintf("advance: %v", err)})
			return
		}
		windows++
		s.streamWindows.Inc()
		s.sessions.steps.Inc()
		if st.SensingDegraded {
			s.streamDegraded.Inc()
		}
		line := streamWindow{
			Window:          windows,
			TimeS:           stepper.Time(),
			MaxCoreTempC:    st.MaxCoreTemp,
			RequiredFreqHz:  st.RequiredFreq,
			FreqsHz:         freqs,
			QueueLen:        st.QueueLen,
			SensingDegraded: st.SensingDegraded,
			Done:            stepper.Done(),
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	res := stepper.Result()
	var sum streamSummary
	sum.Summary.Windows = windows
	sum.Summary.SimTimeS = res.SimTime
	sum.Summary.Completed = res.Completed
	sum.Summary.Unfinished = res.Unfinished
	sum.Summary.MaxCoreTempC = res.MaxCoreTemp
	sum.Summary.ViolationFrac = res.ViolationFrac
	sum.Summary.EnergyJ = res.EnergyJ
	sum.Summary.Sense = res.Sense
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// streamTrace builds the workload for a stream request: explicit tasks
// when given, otherwise a synthetic mixed trace sized to the request.
// The synthetic parameters are bounded server-side: trace generation
// cost scales with the duration, so an absurd duration_s must be
// rejected up front, not discovered at OOM.
func (s *Server) streamTrace(req streamRequest, maxWindows int) (*workload.Trace, error) {
	for name, v := range map[string]float64{
		"duration_s": req.DurationS, "utilization": req.Utilization, "t0_c": req.T0C,
	} {
		if !isFinite(v) {
			return nil, fmt.Errorf("non-finite %s %v", name, v)
		}
	}
	// Arrivals past the server's hard window cap can never be served
	// by any stream; a longer duration only burns generation time.
	if maxDuration := float64(s.cfg.StreamWindowCap+1) * s.engine.WindowSeconds(); req.DurationS > maxDuration {
		return nil, fmt.Errorf("duration_s %g exceeds the %d-window stream cap (%g s)", req.DurationS, s.cfg.StreamWindowCap, maxDuration)
	}
	if len(req.Tasks) > 0 {
		tr := &workload.Trace{Tasks: make([]workload.Task, len(req.Tasks))}
		for i, t := range req.Tasks {
			tr.Tasks[i] = workload.Task{ID: i, Arrival: t.ArrivalS, Work: t.WorkS, Class: "external"}
		}
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		return tr, nil
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	duration := req.DurationS
	if duration <= 0 {
		duration = float64(maxWindows) * s.engine.WindowSeconds()
	}
	gen := workload.Mixed(seed, s.engine.Chip().NumCores(), duration)
	if req.Utilization > 0 {
		gen.Utilization = req.Utilization
	}
	return gen.Generate()
}
