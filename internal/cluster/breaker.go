package cluster

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports a call refused locally because the peer's
// circuit breaker is open: the peer failed repeatedly and its cooldown
// has not elapsed.
var ErrBreakerOpen = errors.New("cluster: peer circuit breaker open")

// Breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// Breaker is a per-peer circuit breaker: consecutive failures trip it
// open, open calls are refused without touching the network, and after
// a cooldown a single half-open probe is admitted — its outcome closes
// the breaker or re-opens it for another cooldown. Safe for concurrent
// use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	fails    int       // consecutive failures while closed
	openedAt time.Time // zero while closed
	probing  bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures (min 1) and probing after cooldown. A nil now uses
// time.Now; tests inject a fake clock.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed. In the open state it
// admits exactly one probe once the cooldown has elapsed; concurrent
// callers during the probe are refused, so a sick peer sees at most
// one request per cooldown.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// Success records a completed call: it closes the breaker (ending any
// half-open probe) and resets the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.openedAt = time.Time{}
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed call: it extends the failure run, trips the
// breaker at the threshold, and re-opens it for a fresh cooldown when
// a half-open probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openedAt.IsZero() {
		// A failed probe (or a straggler from before the trip): restart
		// the cooldown.
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openedAt = b.now()
		b.probing = false
	}
}

// State returns "closed", "open" or "half-open" (open with the
// cooldown elapsed, i.e. the next Allow admits a probe).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openedAt.IsZero():
		return breakerClosed
	case !b.probing && b.now().Sub(b.openedAt) >= b.cooldown:
		return breakerHalfOpen
	default:
		return breakerOpen
	}
}
