package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"protemp/client"
	"protemp/internal/core"
	"protemp/internal/metrics"
	"protemp/internal/tablestore"
)

// Config describes one node's view of a static-membership cluster.
type Config struct {
	// Self is this node's advertised URL; it must be one of Peers (it
	// is added when absent).
	Self string
	// Peers are the member URLs, self included. Scheme defaults to
	// http://.
	Peers []string
	// BreakerThreshold trips a peer's circuit breaker after that many
	// consecutive failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is the open interval before a half-open probe
	// (default 5s).
	BreakerCooldown time.Duration
	// RetryAttempts is the extra tries on idempotent proxied calls
	// (default 2); RetryBackoff the linear backoff base (default 50ms).
	RetryAttempts int
	RetryBackoff  time.Duration
	// HTTPClient overrides the transport used toward peers (tests point
	// it at loopback listeners).
	HTTPClient *http.Client

	// now overrides the breaker clock in tests.
	now func() time.Time
}

// Peer is one remote member: a typed client behind a circuit breaker.
type Peer struct {
	name    string
	client  *client.Client
	breaker *Breaker
}

// Name returns the peer's normalized URL (its ring name).
func (p *Peer) Name() string { return p.name }

// Breaker exposes the peer's circuit breaker (for health surfaces).
func (p *Peer) Breaker() *Breaker { return p.breaker }

// Cluster is one node's routing state: the ring, the peer table and
// the proxy counters. Immutable after New and safe for concurrent use.
type Cluster struct {
	self  string
	ring  *Ring
	peers map[string]*Peer // keyed by ring name; self absent
	reg   *metrics.Registry

	proxied     *metrics.Counter
	proxyErrors *metrics.Counter
	rejected    *metrics.Counter
	tableHits   *metrics.Counter
	tableMisses *metrics.Counter
}

// normalizeNode canonicalizes a member URL into its ring name: scheme
// defaulted to http, trailing slash dropped.
func normalizeNode(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("cluster: empty peer address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("cluster: bad peer address %q: %w", s, err)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: peer address %q has no host", s)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// New builds this node's cluster view and one breaker-guarded client
// per remote peer.
func New(cfg Config) (*Cluster, error) {
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	} else if cfg.RetryAttempts == 0 {
		cfg.RetryAttempts = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	self, err := normalizeNode(cfg.Self)
	if err != nil {
		return nil, err
	}
	names := []string{self}
	seen := map[string]bool{self: true}
	for _, p := range cfg.Peers {
		n, err := normalizeNode(p)
		if err != nil {
			return nil, err
		}
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	ring, err := NewRing(names)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	c := &Cluster{
		self:        self,
		ring:        ring,
		peers:       make(map[string]*Peer, len(names)-1),
		reg:         reg,
		proxied:     reg.Counter("cluster_proxied_requests"),
		proxyErrors: reg.Counter("cluster_proxy_errors"),
		rejected:    reg.Counter("cluster_breaker_rejected"),
		tableHits:   reg.Counter("cluster_peer_table_hits"),
		tableMisses: reg.Counter("cluster_peer_table_misses"),
	}
	reg.Gauge("cluster_peers").Set(int64(len(names)))
	copts := []client.Option{
		client.WithForwarded(),
		client.WithRetry(cfg.RetryAttempts, cfg.RetryBackoff),
	}
	if cfg.HTTPClient != nil {
		copts = append(copts, client.WithHTTPClient(cfg.HTTPClient))
	}
	for _, n := range names {
		if n == self {
			continue
		}
		cl, err := client.New(n, copts...)
		if err != nil {
			return nil, err
		}
		c.peers[n] = &Peer{
			name:    n,
			client:  cl,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		}
	}
	return c, nil
}

// Self returns this node's ring name.
func (c *Cluster) Self() string { return c.self }

// Size returns the member count, self included.
func (c *Cluster) Size() int { return c.ring.Len() }

// Ring exposes the ring (for tests and health surfaces).
func (c *Cluster) Ring() *Ring { return c.ring }

// Registry exposes the cluster counters for merging into a /metrics
// surface.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// SessionOwner resolves a session id: (nil, false) when this node owns
// it, otherwise the peer to proxy to.
func (c *Cluster) SessionOwner(id string) (*Peer, bool) {
	owner := c.ring.Owner(id)
	if owner == c.self {
		return nil, false
	}
	return c.peers[owner], true
}

// TableOwner resolves a table cache key the same way.
func (c *Cluster) TableOwner(key string) (*Peer, bool) {
	owner := c.ring.Owner(key)
	if owner == c.self {
		return nil, false
	}
	return c.peers[owner], true
}

// Call runs one proxied operation against a peer under its circuit
// breaker. Peer-reported client errors (4xx) count as breaker
// successes — the peer is healthy, the request was just bad — while
// transport failures and 5xx count as failures. An open breaker
// refuses immediately with ErrBreakerOpen.
func (c *Cluster) Call(p *Peer, fn func(*client.Client) error) error {
	if !p.breaker.Allow() {
		c.rejected.Inc()
		return fmt.Errorf("%w (peer %s)", ErrBreakerOpen, p.name)
	}
	c.proxied.Inc()
	err := fn(p.client)
	var apiErr *client.APIError
	switch {
	case err == nil:
		p.breaker.Success()
	case errors.As(err, &apiErr) && apiErr.Status < 500:
		p.breaker.Success()
	default:
		p.breaker.Failure()
		c.proxyErrors.Inc()
	}
	return err
}

// TableFetcher returns the peer tier for the engine's table cache: on
// a local store miss it fetches the table from its ring owner (when
// that is a remote peer) over GET /v1/tables/{key}, decoding the
// versioned envelope. Misses of any kind — self-owned keys, open
// breakers, 404s, decode failures — report (nil, false) so the engine
// falls back to local Phase-1 generation; the network tier degrades,
// never blocks.
func (c *Cluster) TableFetcher() func(ctx context.Context, key string) (*core.Table, bool) {
	return func(ctx context.Context, key string) (*core.Table, bool) {
		p, remote := c.TableOwner(key)
		if !remote {
			return nil, false
		}
		var tbl *core.Table
		err := c.Call(p, func(cl *client.Client) error {
			body, err := cl.TableRaw(ctx, key)
			if err != nil {
				return err
			}
			defer body.Close()
			t, err := tablestore.Decode(body)
			if err != nil {
				return err
			}
			tbl = t
			return nil
		})
		if err != nil {
			c.tableMisses.Inc()
			return nil, false
		}
		c.tableHits.Inc()
		return tbl, true
	}
}
