package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"protemp/internal/metrics"
)

// ErrOverloaded reports a step refused by admission control: the
// concurrency bound and the wait queue are both full. Serve the client
// 429 with a Retry-After hint rather than piling up goroutines.
var ErrOverloaded = errors.New("cluster: overloaded, step queue full")

// AdmissionConfig tunes the load-shedding admission controller.
type AdmissionConfig struct {
	// StepP95Budget is the solve-latency budget: while the live
	// step_solve_nanos p95 exceeds it, new online/dmpc session creates
	// are degraded to the table-driven policy. Zero disables degrading.
	StepP95Budget time.Duration
	// MinSamples is the observation count below which the p95 is not
	// trusted (default 64) — a cold histogram must not degrade anybody.
	MinSamples uint64
	// MaxConcurrentSteps bounds solver steps in flight; zero leaves
	// step admission off.
	MaxConcurrentSteps int
	// StepQueueDepth bounds steps waiting for a slot beyond
	// MaxConcurrentSteps; arrivals past the queue are refused with
	// ErrOverloaded. Zero means no waiting: reject as soon as the
	// concurrency bound is hit.
	StepQueueDepth int
	// RetryAfter is the hint returned with refusals (default 1s).
	RetryAfter time.Duration
}

// Admission is the load-shedding gate in front of solver work: create
// degradation keyed off the live solve-latency histogram, and a
// bounded semaphore + wait queue for steps. Safe for concurrent use.
type Admission struct {
	cfg    AdmissionConfig
	sample func() (p95 uint64, count uint64)
	sem    chan struct{}
	queued atomic.Int64

	degraded *metrics.Counter
	rejected *metrics.Counter
	shedding *metrics.Gauge
}

// NewAdmission builds the controller. sample returns the current
// step-latency p95 (nanoseconds) and its observation count — wire it
// to Engine.StepLatencyQuantile. Counters register in reg:
// cluster_degraded_sessions, cluster_steps_rejected and the
// cluster_shedding gauge (1 while the p95 is over budget).
func NewAdmission(cfg AdmissionConfig, sample func() (uint64, uint64), reg *metrics.Registry) *Admission {
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	a := &Admission{
		cfg:      cfg,
		sample:   sample,
		degraded: reg.Counter("cluster_degraded_sessions"),
		rejected: reg.Counter("cluster_steps_rejected"),
		shedding: reg.Gauge("cluster_shedding"),
	}
	if cfg.MaxConcurrentSteps > 0 {
		a.sem = make(chan struct{}, cfg.MaxConcurrentSteps)
	}
	return a
}

// DegradeCreate reports whether a new online/dmpc session should be
// degraded to table mode: the live p95 is over budget with enough
// samples behind it. A true return is already counted in
// cluster_degraded_sessions.
func (a *Admission) DegradeCreate() bool {
	if a == nil || a.cfg.StepP95Budget <= 0 || a.sample == nil {
		return false
	}
	p95, count := a.sample()
	over := count >= a.cfg.MinSamples && p95 > uint64(a.cfg.StepP95Budget.Nanoseconds())
	if over {
		a.shedding.Set(1)
		a.degraded.Inc()
	} else {
		a.shedding.Set(0)
	}
	return over
}

// AcquireStep admits one solver step: immediately when a concurrency
// slot is free, after a bounded wait when the queue has room, and with
// ErrOverloaded otherwise. The returned release must be called exactly
// once; it is never nil.
func (a *Admission) AcquireStep(ctx context.Context) (release func(), err error) {
	if a == nil || a.sem == nil {
		return func() {}, nil
	}
	select {
	case a.sem <- struct{}{}:
		return a.releaseFunc(), nil
	default:
	}
	if int(a.queued.Add(1)) > a.cfg.StepQueueDepth {
		a.queued.Add(-1)
		a.rejected.Inc()
		return func() {}, ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return func() {}, ctx.Err()
	}
}

func (a *Admission) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			<-a.sem
		}
	}
}

// RetryAfter returns the refusal hint.
func (a *Admission) RetryAfter() time.Duration {
	if a == nil {
		return time.Second
	}
	return a.cfg.RetryAfter
}
