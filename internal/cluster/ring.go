// Package cluster turns N independent protemp-serve processes into one
// control plane: a static-membership node ring routes sessions and
// tables to owners by rendezvous hashing, non-owners proxy through
// per-peer circuit breakers, the content-addressed table store gains a
// network tier (fetch from the owner before paying for a Phase-1
// sweep), and admission control sheds load — degrading new solver
// sessions to the table policy and bounding the step queue — when the
// live solve-latency histogram crosses its budget.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a static rendezvous-hash (highest-random-weight) ring over
// the cluster's node names. Every node computes the same owner for a
// key with no coordination, and removing one node only reassigns the
// keys that node owned — the property that keeps session routing and
// table ownership stable across partial outages. A Ring is immutable
// and safe for concurrent use.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given node names (order-insensitive;
// duplicates and empties rejected).
func NewRing(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty ring")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	return &Ring{nodes: sorted}, nil
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// score is the rendezvous weight of (node, key): FNV-1a over the node
// name, a separator that cannot appear in hex keys, and the key,
// pushed through a full-avalanche finalizer. The finalizer matters:
// raw FNV states seeded with different node prefixes stay correlated
// through the byte-at-a-time mixing, which skews ownership badly on
// short look-alike member names.
func score(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0xff})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap 64-bit bijection with
// full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node owning key: the member with the highest
// rendezvous weight. Ties (astronomically unlikely with 64-bit FNV)
// break toward the lexicographically smaller name, which the sorted
// member order provides for free.
func (r *Ring) Owner(key string) string {
	best := r.nodes[0]
	bestScore := score(best, key)
	for _, n := range r.nodes[1:] {
		if s := score(n, key); s > bestScore {
			best, bestScore = n, s
		}
	}
	return best
}
