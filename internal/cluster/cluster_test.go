package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"protemp/client"
	"protemp/internal/metrics"
)

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across member orderings", key)
		}
		if a.Owner(key) != a.Owner(key) {
			t.Fatalf("owner of %q not deterministic", key)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("%032x", i))]++
	}
	for _, n := range nodes {
		got := counts[n]
		// Rendezvous hashing should land within a loose band of the
		// uniform share; a wildly skewed split means the hash is broken.
		if got < keys/6 || got > keys/2 {
			t.Fatalf("node %s owns %d of %d keys (want roughly %d)", n, got, keys, keys/3)
		}
	}
}

// TestRingMinimalReassignment is the property rendezvous hashing buys:
// removing a member only moves the keys that member owned.
func TestRingMinimalReassignment(t *testing.T) {
	full, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "c" && before != after {
			t.Fatalf("key %q moved %s→%s though its owner never left", key, before, after)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestNormalizeNode(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080":        "http://127.0.0.1:8080",
		"http://node-a:9090/":   "http://node-a:9090",
		" https://node-b:8443 ": "https://node-b:8443",
		"http://node-c:7070///": "http://node-c:7070",
	}
	for in, want := range cases {
		got, err := normalizeNode(in)
		if err != nil {
			t.Fatalf("normalizeNode(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("normalizeNode(%q) = %q want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "   ", "http://"} {
		if _, err := normalizeNode(bad); err == nil {
			t.Fatalf("normalizeNode(%q) accepted", bad)
		}
	}
}

// fakeClock is a settable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, 5*time.Second, clk.now)

	if b.State() != breakerClosed {
		t.Fatalf("initial state %s", b.State())
	}
	// Two failures stay closed; the third trips.
	b.Failure()
	b.Failure()
	if !b.Allow() || b.State() != breakerClosed {
		t.Fatal("breaker tripped before the threshold")
	}
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state after trip: %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}

	// Cooldown elapses → exactly one half-open probe.
	clk.advance(5 * time.Second)
	if b.State() != breakerHalfOpen {
		t.Fatalf("state after cooldown: %s", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// The probe succeeds → closed, failure run reset.
	b.Success()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatal("failure run survived the reset")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(1, 10*time.Second, clk.now)

	b.Failure()
	clk.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure() // probe failed → fresh cooldown
	if b.State() != breakerOpen {
		t.Fatalf("state after failed probe: %s", b.State())
	}
	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("probe admitted before the fresh cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after the fresh cooldown")
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := NewBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatal("interleaved success did not reset the failure run")
	}
}

// TestClusterCallClassification drives Call against a live peer and
// checks the error→breaker mapping: 4xx keeps the breaker closed (the
// peer is healthy), 5xx trips it, and the open breaker refuses with
// ErrBreakerOpen without touching the network.
func TestClusterCallClassification(t *testing.T) {
	var status int
	var hits int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"nope"}`)
	}))
	defer peer.Close()

	clk := &fakeClock{t: time.Unix(0, 0)}
	c, err := New(Config{
		Self:             "http://self:1",
		Peers:            []string{"http://self:1", peer.URL},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		RetryAttempts:    -1, // no retries: each Call is one request
		now:              clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("size %d", c.Size())
	}
	p := c.peers[normMust(t, peer.URL)]
	if p == nil {
		t.Fatal("peer missing from table")
	}

	get := func(cl *client.Client) error {
		_, err := cl.Session(context.Background(), "00000000000000000000000000000000")
		return err
	}

	// 4xx: error surfaces, breaker stays closed.
	status = http.StatusNotFound
	if err := c.Call(p, get); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("404 call: %v", err)
	}
	if p.Breaker().State() != breakerClosed {
		t.Fatal("4xx moved the breaker")
	}

	// Consecutive 5xx trip the breaker at the threshold.
	status = http.StatusInternalServerError
	c.Call(p, get)
	c.Call(p, get)
	if p.Breaker().State() != breakerOpen {
		t.Fatalf("breaker after two 5xx: %s", p.Breaker().State())
	}

	// Open breaker: refused locally, the peer sees nothing.
	before := hits
	if err := c.Call(p, get); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker call: %v", err)
	}
	if hits != before {
		t.Fatal("open breaker let a request through")
	}

	// After the cooldown a successful probe closes it again.
	clk.advance(time.Minute)
	status = http.StatusNotFound // 4xx counts as peer-healthy
	if err := c.Call(p, get); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("probe call: %v", err)
	}
	if p.Breaker().State() != breakerClosed {
		t.Fatalf("breaker after healthy probe: %s", p.Breaker().State())
	}

	snap := c.Registry().Snapshot()
	if snap["cluster_breaker_rejected"] == 0 {
		t.Fatal("breaker rejection not counted")
	}
	if snap["cluster_proxy_errors"] == 0 {
		t.Fatal("proxy errors not counted")
	}
}

func normMust(t *testing.T, s string) string {
	t.Helper()
	n, err := normalizeNode(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestClusterRejectsPeersWithoutSelf(t *testing.T) {
	if _, err := New(Config{Self: "", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("empty self accepted")
	}
}

func TestSessionOwnerSelfVsRemote(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	sawSelf, sawRemote := false, false
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("%032x", i)
		p, remote := c.SessionOwner(id)
		if remote {
			sawRemote = true
			if p == nil {
				t.Fatalf("remote owner of %q has no peer entry", id)
			}
			if p.Name() == c.Self() {
				t.Fatal("self returned as a remote peer")
			}
		} else {
			sawSelf = true
			if p != nil {
				t.Fatal("self-owned key returned a peer")
			}
		}
	}
	if !sawSelf || !sawRemote {
		t.Fatalf("ownership never split (self=%v remote=%v)", sawSelf, sawRemote)
	}
}

func TestAdmissionDegradeCreate(t *testing.T) {
	var p95, count uint64
	reg := metrics.NewRegistry()
	a := NewAdmission(AdmissionConfig{
		StepP95Budget: time.Millisecond,
		MinSamples:    10,
	}, func() (uint64, uint64) { return p95, count }, reg)

	// Cold histogram: never degrade, however bad the p95 looks.
	p95, count = uint64(time.Second), 5
	if a.DegradeCreate() {
		t.Fatal("degraded on a cold histogram")
	}
	// Warm and under budget: no degrade.
	p95, count = uint64(500*time.Microsecond), 100
	if a.DegradeCreate() {
		t.Fatal("degraded under budget")
	}
	// Warm and over budget: degrade and count it.
	p95 = uint64(2 * time.Millisecond)
	if !a.DegradeCreate() {
		t.Fatal("did not degrade over budget")
	}
	snap := reg.Snapshot()
	if snap["cluster_degraded_sessions"] != 1 {
		t.Fatalf("degraded counter %d", snap["cluster_degraded_sessions"])
	}
	if snap["cluster_shedding"] != 1 {
		t.Fatalf("shedding gauge %d", snap["cluster_shedding"])
	}
	// Recovery clears the gauge.
	p95 = uint64(100 * time.Microsecond)
	if a.DegradeCreate() {
		t.Fatal("degraded after recovery")
	}
	if reg.Snapshot()["cluster_shedding"] != 0 {
		t.Fatal("shedding gauge stuck")
	}
}

func TestAdmissionDisabled(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewAdmission(AdmissionConfig{}, func() (uint64, uint64) { return 1 << 60, 1 << 20 }, reg)
	if a.DegradeCreate() {
		t.Fatal("zero budget degraded a create")
	}
	release, err := a.AcquireStep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	var nilA *Admission
	if nilA.DegradeCreate() {
		t.Fatal("nil admission degraded")
	}
	if _, err := nilA.AcquireStep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if nilA.RetryAfter() != time.Second {
		t.Fatal("nil RetryAfter")
	}
}

func TestAdmissionStepQueueRejects(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewAdmission(AdmissionConfig{
		MaxConcurrentSteps: 1,
		StepQueueDepth:     1,
		RetryAfter:         3 * time.Second,
	}, nil, reg)

	// Slot taken.
	rel1, err := a.AcquireStep(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue...
	acquired := make(chan func(), 1)
	go func() {
		rel, err := a.AcquireStep(context.Background())
		if err != nil {
			return
		}
		acquired <- rel
	}()
	// Wait until the waiter is queued.
	deadline := time.Now().Add(time.Second)
	for a.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() != 1 {
		t.Fatal("waiter never queued")
	}

	// ...the next arrival overflows and is refused immediately.
	if _, err := a.AcquireStep(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow arrival: %v", err)
	}
	if reg.Snapshot()["cluster_steps_rejected"] != 1 {
		t.Fatal("rejection not counted")
	}
	if a.RetryAfter() != 3*time.Second {
		t.Fatalf("retry-after %v", a.RetryAfter())
	}

	// Releasing the slot admits the queued waiter.
	rel1()
	select {
	case rel := <-acquired:
		rel()
		rel() // double release is a no-op
	case <-time.After(time.Second):
		t.Fatal("queued waiter never admitted")
	}
}

func TestAdmissionStepContextCancel(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewAdmission(AdmissionConfig{MaxConcurrentSteps: 1, StepQueueDepth: 4}, nil, reg)
	rel, err := a.AcquireStep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.AcquireStep(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire under canceled ctx: %v", err)
	}
	if a.queued.Load() != 0 {
		t.Fatal("queue count leaked after cancel")
	}
}
