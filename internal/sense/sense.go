// Package sense models the imperfect measurement path between the
// simulated (true) chip temperatures and what a controller actually
// observes. The paper's run-time phase assumes exact knowledge of
// every node temperature; production thermal sensors are noisy,
// quantized, delayed by the sensor-network readout, occasionally
// silent, and sometimes latch a stale value permanently. A Bank
// applies those defects — per sensor, from one deterministic seeded
// RNG — so a fleet batch replays bit-identically under a fixed seed.
//
// The pipeline per sensor and control window is
//
//	y = Q( T_true(t − delay) + drift·t + ν ),  ν ~ N(0, σ²)
//
// with Q the mid-tread quantizer of step q, followed by a Bernoulli
// dropout (no reading this window) and a Bernoulli permanent stuck-at
// latch (the sensor keeps reporting its last value forever).
package sense

import (
	"fmt"
	"math"
	"math/rand/v2"

	"protemp/internal/linalg"
)

// Config describes one sensor's defect model. The zero value is a
// perfect sensor.
type Config struct {
	// NoiseSigma is the Gaussian read-noise standard deviation in °C.
	NoiseSigma float64 `json:"noise_sigma_c,omitempty"`
	// QuantStep is the ADC quantization step in °C (0 = continuous).
	QuantStep float64 `json:"quant_step_c,omitempty"`
	// DelayWindows delays readings by whole control windows: the value
	// reported at window k was sampled at window k − DelayWindows.
	DelayWindows int `json:"delay_windows,omitempty"`
	// DropoutProb is the per-window probability that the sensor
	// returns no reading at all.
	DropoutProb float64 `json:"dropout_prob,omitempty"`
	// StuckProb is the per-window probability that the sensor latches
	// its current reading permanently (a stuck-at fault). A stuck
	// sensor still "reads" — it just never changes again.
	StuckProb float64 `json:"stuck_prob,omitempty"`
	// DriftRate is a slow calibration drift in °C per simulated
	// second, added to every reading (ambient-coupled reference
	// error). Negative drift under-reports — the dangerous direction.
	DriftRate float64 `json:"drift_c_per_s,omitempty"`
}

// Validate rejects configurations no physical sensor could have.
func (c Config) Validate() error {
	for name, v := range map[string]float64{
		"noise sigma": c.NoiseSigma, "quant step": c.QuantStep,
		"dropout prob": c.DropoutProb, "stuck prob": c.StuckProb,
		"drift rate": c.DriftRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sense: non-finite %s %v", name, v)
		}
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("sense: negative noise sigma %g", c.NoiseSigma)
	}
	if c.QuantStep < 0 {
		return fmt.Errorf("sense: negative quantization step %g", c.QuantStep)
	}
	if c.DelayWindows < 0 {
		return fmt.Errorf("sense: negative delay %d windows", c.DelayWindows)
	}
	if c.DropoutProb < 0 || c.DropoutProb > 1 {
		return fmt.Errorf("sense: dropout probability %g outside [0,1]", c.DropoutProb)
	}
	if c.StuckProb < 0 || c.StuckProb > 1 {
		return fmt.Errorf("sense: stuck probability %g outside [0,1]", c.StuckProb)
	}
	return nil
}

// Perfect reports whether the config models an ideal sensor, in which
// case the whole measurement path is the identity.
func (c Config) Perfect() bool { return c == Config{} }

// Uniform replicates one config across n sensors — the common case of
// a chip instrumented with identical diodes.
func Uniform(n int, c Config) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// DefaultNoisy is the reference imperfect sensor: half-degree Gaussian
// noise on a quarter-degree ADC with a 1% chance of a missed reading —
// roughly a production on-die thermal diode.
func DefaultNoisy() Config {
	return Config{NoiseSigma: 0.5, QuantStep: 0.25, DropoutProb: 0.01}
}

// Reading is one sensor's output for one control window.
type Reading struct {
	// Value is the reported temperature in °C; meaningless when Valid
	// is false.
	Value float64
	// Valid is false when the sensor dropped out this window.
	Valid bool
	// Stuck reports a latched sensor: Value is stale and will never
	// change again. Callers that can detect stuck sensors (e.g. by
	// watching for a flatlined reading) may discount it; the Bank
	// itself keeps reporting it as a valid measurement, which is
	// exactly what makes stuck-at faults dangerous.
	Stuck bool
}

// Stats counts the defects a Bank has injected so far.
type Stats struct {
	// Windows is the number of Observe calls served.
	Windows uint64
	// Dropouts counts individual missing readings.
	Dropouts uint64
	// StuckSensors is the number of sensors currently latched.
	StuckSensors uint64
	// DegradedWindows counts windows in which every sensor dropped
	// out — the full-outage bursts that must invalidate warm solver
	// state downstream.
	DegradedWindows uint64
}

// Bank transforms true temperatures into sensor readings. One Bank
// serves one run: it owns the delay lines, the stuck latches and a
// deterministic seeded RNG, so equal (configs, seed, input sequence)
// produce equal readings. A Bank is single-goroutine state, like the
// sim.Stepper it decorates.
type Bank struct {
	cfgs []Config
	rng  *rand.Rand

	// delay[i] is sensor i's ring buffer of past true temperatures;
	// head is the slot the next sample lands in.
	delay [][]float64
	head  []int
	seen  []int // samples pushed so far, to serve the pre-fill window

	stuck    []bool
	stuckVal []float64

	stats Stats
}

// NewBank validates the per-sensor configs and builds the bank. The
// seed fixes the entire defect sequence; two banks with equal configs
// and seeds observing equal inputs produce equal readings.
func NewBank(cfgs []Config, seed int64) (*Bank, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sense: no sensors")
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("sensor %d: %w", i, err)
		}
	}
	b := &Bank{
		cfgs:     append([]Config(nil), cfgs...),
		rng:      rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15)),
		delay:    make([][]float64, len(cfgs)),
		head:     make([]int, len(cfgs)),
		seen:     make([]int, len(cfgs)),
		stuck:    make([]bool, len(cfgs)),
		stuckVal: make([]float64, len(cfgs)),
	}
	for i, c := range cfgs {
		if c.DelayWindows > 0 {
			b.delay[i] = make([]float64, c.DelayWindows+1)
		}
	}
	return b, nil
}

// NumSensors returns the number of sensors in the bank.
func (b *Bank) NumSensors() int { return len(b.cfgs) }

// Stats returns a snapshot of the defect counters.
func (b *Bank) Stats() Stats { return b.stats }

// Observe produces one window's readings from the true temperatures
// (one per sensor, °C) at simulated time t (seconds). The readings
// slice is freshly allocated per call when dst is nil; passing a
// previous result recycles it.
func (b *Bank) Observe(dst []Reading, t float64, truth linalg.Vector) ([]Reading, error) {
	if len(truth) != len(b.cfgs) {
		return nil, fmt.Errorf("sense: %d temperatures for %d sensors", len(truth), len(b.cfgs))
	}
	if cap(dst) < len(b.cfgs) {
		dst = make([]Reading, len(b.cfgs))
	}
	dst = dst[:len(b.cfgs)]
	b.stats.Windows++
	degraded := true
	for i, c := range b.cfgs {
		// One fixed draw schedule per sensor per window — noise, stuck,
		// dropout — regardless of which defects are enabled, so enabling
		// a defect on one sensor never perturbs another's sequence.
		noise := b.rng.NormFloat64()
		stuckDraw := b.rng.Float64()
		dropDraw := b.rng.Float64()

		// Delay line: push the fresh sample, read the delayed one.
		sample := truth[i]
		if ring := b.delay[i]; ring != nil {
			ring[b.head[i]] = sample
			oldest := (b.head[i] + 1) % len(ring)
			b.head[i] = oldest
			if b.seen[i] < len(ring) {
				b.seen[i]++
				// Before the line fills, report the oldest sample we
				// actually have (a sensor network warming up).
				oldest = 0
			}
			sample = ring[oldest]
		}

		v := sample + c.DriftRate*t + c.NoiseSigma*noise
		if c.QuantStep > 0 {
			v = math.Round(v/c.QuantStep) * c.QuantStep
		}

		if b.stuck[i] {
			v = b.stuckVal[i]
		} else if c.StuckProb > 0 && stuckDraw < c.StuckProb {
			b.stuck[i] = true
			b.stuckVal[i] = v
			b.stats.StuckSensors++
		}

		r := Reading{Value: v, Valid: true, Stuck: b.stuck[i]}
		if c.DropoutProb > 0 && dropDraw < c.DropoutProb {
			r = Reading{}
			b.stats.Dropouts++
		} else {
			degraded = false
		}
		dst[i] = r
	}
	if degraded {
		b.stats.DegradedWindows++
	}
	return dst, nil
}
