package sense

import (
	"math"
	"testing"

	"protemp/internal/linalg"
)

func observe(t *testing.T, b *Bank, tm float64, truth linalg.Vector) []Reading {
	t.Helper()
	r, err := b.Observe(nil, tm, truth)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NoiseSigma: -1},
		{QuantStep: -0.1},
		{DelayWindows: -2},
		{DropoutProb: 1.5},
		{DropoutProb: -0.1},
		{StuckProb: 2},
		{NoiseSigma: math.NaN()},
		{DriftRate: math.Inf(1)},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if !(Config{}).Perfect() {
		t.Error("zero config not Perfect")
	}
	if DefaultNoisy().Perfect() {
		t.Error("DefaultNoisy reported Perfect")
	}
}

// A perfect bank is the identity: readings equal the truth exactly.
func TestPerfectBankIsIdentity(t *testing.T) {
	b, err := NewBank(Uniform(3, Config{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := linalg.VectorOf(51.25, 72.5, 99.9)
	for w := 0; w < 10; w++ {
		for i, r := range observe(t, b, float64(w)*0.1, truth) {
			if !r.Valid || r.Stuck || r.Value != truth[i] {
				t.Fatalf("window %d sensor %d: %+v, want exact %g", w, i, r, truth[i])
			}
		}
	}
	if s := b.Stats(); s.Dropouts != 0 || s.StuckSensors != 0 || s.DegradedWindows != 0 || s.Windows != 10 {
		t.Fatalf("stats %+v", s)
	}
}

// Equal configs and seed must replay bit-identically — the fleet's
// reproducibility contract.
func TestDeterministicUnderSeed(t *testing.T) {
	cfg := Uniform(4, Config{NoiseSigma: 1.5, QuantStep: 0.25, DropoutProb: 0.2, StuckProb: 0.05, DriftRate: -0.1})
	mk := func(seed int64) [][]Reading {
		b, err := NewBank(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]Reading
		for w := 0; w < 50; w++ {
			truth := linalg.VectorOf(60, 70, 80, 90)
			out = append(out, append([]Reading(nil), observe(t, b, float64(w)*0.1, truth)...))
		}
		return out
	}
	a, b2 := mk(7), mk(7)
	for w := range a {
		for i := range a[w] {
			if a[w][i] != b2[w][i] {
				t.Fatalf("window %d sensor %d diverged: %+v vs %+v", w, i, a[w][i], b2[w][i])
			}
		}
	}
	c := mk(8)
	same := true
	for w := range a {
		for i := range a[w] {
			if a[w][i] != c[w][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical defect sequences")
	}
}

func TestQuantization(t *testing.T) {
	b, err := NewBank([]Config{{QuantStep: 0.5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := observe(t, b, 0, linalg.VectorOf(71.3))[0]
	if r.Value != 71.5 {
		t.Fatalf("quantized reading %g, want 71.5", r.Value)
	}
}

func TestDelayLine(t *testing.T) {
	b, err := NewBank([]Config{{DelayWindows: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Truth ramps 100, 101, 102, ...; a 2-window delay reports the
	// first sample until the line fills, then lags by exactly 2.
	want := []float64{100, 100, 100, 101, 102, 103}
	for w, exp := range want {
		r := observe(t, b, float64(w)*0.1, linalg.VectorOf(100+float64(w)))[0]
		if r.Value != exp {
			t.Fatalf("window %d: reading %g, want %g", w, r.Value, exp)
		}
	}
}

func TestDriftAccumulates(t *testing.T) {
	b, err := NewBank([]Config{{DriftRate: -0.5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r0 := observe(t, b, 0, linalg.VectorOf(80))[0]
	r1 := observe(t, b, 10, linalg.VectorOf(80))[0]
	if r0.Value != 80 || r1.Value != 75 {
		t.Fatalf("drifted readings %g, %g, want 80, 75", r0.Value, r1.Value)
	}
}

// Dropout frequency tracks the configured probability, and a
// certain-dropout sensor makes every window a degraded one.
func TestDropoutRateAndDegradedWindows(t *testing.T) {
	b, err := NewBank([]Config{{DropoutProb: 0.3}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for w := 0; w < n; w++ {
		observe(t, b, float64(w)*0.1, linalg.VectorOf(70))
	}
	frac := float64(b.Stats().Dropouts) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dropout fraction %.3f, want ≈0.30", frac)
	}

	all, err := NewBank(Uniform(2, Config{DropoutProb: 1}), 1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		for _, r := range observe(t, all, 0, linalg.VectorOf(70, 71)) {
			if r.Valid {
				t.Fatal("certain dropout produced a valid reading")
			}
		}
	}
	if got := all.Stats().DegradedWindows; got != 5 {
		t.Fatalf("degraded windows %d, want 5", got)
	}
}

// A stuck sensor latches its current reading permanently.
func TestStuckLatchesForever(t *testing.T) {
	b, err := NewBank([]Config{{StuckProb: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := observe(t, b, 0, linalg.VectorOf(66))[0]
	if !first.Stuck || first.Value != 66 {
		t.Fatalf("first reading %+v, want stuck at 66", first)
	}
	for w := 1; w < 10; w++ {
		r := observe(t, b, float64(w), linalg.VectorOf(90+float64(w)))[0]
		if !r.Stuck || r.Value != 66 {
			t.Fatalf("window %d: %+v, want stuck at 66", w, r)
		}
	}
	if s := b.Stats().StuckSensors; s != 1 {
		t.Fatalf("stuck sensors %d, want 1", s)
	}
}

func TestBankRejectsBadShapes(t *testing.T) {
	if _, err := NewBank(nil, 1); err == nil {
		t.Fatal("empty bank accepted")
	}
	if _, err := NewBank([]Config{{NoiseSigma: -1}}, 1); err == nil {
		t.Fatal("invalid sensor accepted")
	}
	b, err := NewBank(Uniform(2, Config{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(nil, 0, linalg.VectorOf(1, 2, 3)); err == nil {
		t.Fatal("mismatched truth length accepted")
	}
}

// Gaussian noise is unbiased and has roughly the configured sigma.
func TestNoiseStatistics(t *testing.T) {
	b, err := NewBank([]Config{{NoiseSigma: 2}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var sum, sumSq float64
	for w := 0; w < n; w++ {
		v := observe(t, b, 0, linalg.VectorOf(50))[0].Value - 50
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sigma := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("noise mean %.3f, want ≈0", mean)
	}
	if sigma < 1.9 || sigma > 2.1 {
		t.Fatalf("noise sigma %.3f, want ≈2", sigma)
	}
}
