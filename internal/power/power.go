// Package power models the chip's power consumption under DVFS.
//
// The paper assumes V² scales linearly with f (its ref. [23]), so
// dynamic power P = C·V²·f scales quadratically with frequency
// (their Eq. 2):
//
//	p_i = pmax_i · f_i² / fmax_i²
//
// Cores follow that law; non-core blocks (caches, buffers, crossbar,
// DRAM controllers) draw a fixed aggregate equal to 30% of the cores'
// maximum power, the figure the paper takes from the Niagara report
// ([2]), distributed over the non-core blocks by area. An optional
// linear idle/leakage floor is provided as an extension.
package power

import (
	"fmt"
	"math"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

// CoreModel is the per-core DVFS power law.
type CoreModel struct {
	// FMax is the maximum operating frequency in Hz.
	FMax float64
	// PMax is the power drawn at FMax, in watts.
	PMax float64
	// IdleFrac is the fraction of PMax drawn at f = 0 (clock-gated
	// leakage floor). The paper's model has IdleFrac = 0; the extension
	// interpolates p = PMax·(IdleFrac + (1−IdleFrac)·(f/FMax)²).
	IdleFrac float64
}

// Validate checks the model constants.
func (c CoreModel) Validate() error {
	switch {
	case c.FMax <= 0 || math.IsInf(c.FMax, 0) || math.IsNaN(c.FMax):
		return fmt.Errorf("power: invalid FMax %v", c.FMax)
	case c.PMax <= 0 || math.IsInf(c.PMax, 0) || math.IsNaN(c.PMax):
		return fmt.Errorf("power: invalid PMax %v", c.PMax)
	case c.IdleFrac < 0 || c.IdleFrac >= 1 || math.IsNaN(c.IdleFrac):
		return fmt.Errorf("power: IdleFrac %v outside [0,1)", c.IdleFrac)
	}
	return nil
}

// AtFrequency returns the power drawn at frequency f (clamped to
// [0, FMax]).
func (c CoreModel) AtFrequency(f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > c.FMax {
		f = c.FMax
	}
	r := f / c.FMax
	return c.PMax * (c.IdleFrac + (1-c.IdleFrac)*r*r)
}

// FrequencyForPower inverts AtFrequency: the frequency sustainable at
// power p. Powers below the idle floor return 0; powers above PMax
// return FMax.
func (c CoreModel) FrequencyForPower(p float64) float64 {
	if p >= c.PMax {
		return c.FMax
	}
	floor := c.PMax * c.IdleFrac
	if p <= floor {
		return 0
	}
	return c.FMax * math.Sqrt((p-floor)/(c.PMax-floor))
}

// QuadCoefficient returns the c in p = floor + c·f² (watts per Hz²).
func (c CoreModel) QuadCoefficient() float64 {
	return c.PMax * (1 - c.IdleFrac) / (c.FMax * c.FMax)
}

// NiagaraCore returns the paper's evaluation parameters: 1 GHz, 4 W.
func NiagaraCore() CoreModel {
	return CoreModel{FMax: 1e9, PMax: 4}
}

// Chip couples a floorplan with power models: one CoreModel per core
// block, and a fixed power per non-core block.
type Chip struct {
	fp       *floorplan.Floorplan
	cores    []int         // indices of core blocks
	corePos  map[int]int   // block index -> position in cores
	models   []CoreModel   // parallel to cores
	fixed    linalg.Vector // per-block fixed power (non-core)
	uncoreWa float64       // total uncore power, for reporting
}

// UncoreShare is the paper's non-core power budget as a fraction of the
// cores' total maximum power.
const UncoreShare = 0.30

// NewChip builds a Chip where every core uses the same CoreModel and
// the non-core blocks share uncoreShare·(Σ core PMax) proportionally to
// area. Passing UncoreShare reproduces the paper's setup.
func NewChip(fp *floorplan.Floorplan, core CoreModel, uncoreShare float64) (*Chip, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	if uncoreShare < 0 || math.IsNaN(uncoreShare) {
		return nil, fmt.Errorf("power: negative uncore share %v", uncoreShare)
	}
	cores := fp.CoreIndices()
	if len(cores) == 0 {
		return nil, fmt.Errorf("power: floorplan has no core blocks")
	}
	c := &Chip{
		fp:      fp,
		cores:   cores,
		corePos: make(map[int]int, len(cores)),
		models:  make([]CoreModel, len(cores)),
		fixed:   linalg.NewVector(fp.NumBlocks()),
	}
	for pos, bi := range cores {
		c.corePos[bi] = pos
		c.models[pos] = core
	}
	var uncoreArea float64
	for i := 0; i < fp.NumBlocks(); i++ {
		if fp.Block(i).Kind != floorplan.KindCore {
			uncoreArea += fp.Block(i).Area()
		}
	}
	total := uncoreShare * core.PMax * float64(len(cores))
	c.uncoreWa = total
	if uncoreArea > 0 {
		for i := 0; i < fp.NumBlocks(); i++ {
			if b := fp.Block(i); b.Kind != floorplan.KindCore {
				c.fixed[i] = total * b.Area() / uncoreArea
			}
		}
	}
	return c, nil
}

// NewChipExplicit builds a Chip with an explicit per-block fixed-power
// vector instead of the area-proportional uncore split — the form the
// distributed-MPC layer needs for cluster sub-chips, where halo blocks
// carry the (fixed) power their full-chip originals draw rather than a
// share of the sub-plan's uncore budget. fixed must have length
// NumBlocks, be finite and non-negative everywhere, and zero at core
// blocks (core power is the DVFS decision, never fixed).
func NewChipExplicit(fp *floorplan.Floorplan, core CoreModel, fixed linalg.Vector) (*Chip, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	if len(fixed) != fp.NumBlocks() {
		return nil, fmt.Errorf("power: fixed vector length %d for %d blocks", len(fixed), fp.NumBlocks())
	}
	cores := fp.CoreIndices()
	if len(cores) == 0 {
		return nil, fmt.Errorf("power: floorplan has no core blocks")
	}
	c := &Chip{
		fp:      fp,
		cores:   cores,
		corePos: make(map[int]int, len(cores)),
		models:  make([]CoreModel, len(cores)),
		fixed:   fixed.Clone(),
	}
	for pos, bi := range cores {
		c.corePos[bi] = pos
		c.models[pos] = core
	}
	for i, p := range fixed {
		if p < 0 || math.IsInf(p, 0) || math.IsNaN(p) {
			return nil, fmt.Errorf("power: invalid fixed power %v at block %d", p, i)
		}
		if _, isCore := c.corePos[i]; isCore && p != 0 {
			return nil, fmt.Errorf("power: fixed power %v on core block %d", p, i)
		}
		if fp.Block(i).Kind != floorplan.KindCore {
			c.uncoreWa += p
		}
	}
	return c, nil
}

// Floorplan returns the underlying floorplan.
func (c *Chip) Floorplan() *floorplan.Floorplan { return c.fp }

// NumCores returns the number of DVFS-controlled cores.
func (c *Chip) NumCores() int { return len(c.cores) }

// CoreBlockIndex returns the floorplan block index of core k (0-based
// in core order).
func (c *Chip) CoreBlockIndex(k int) int { return c.cores[k] }

// CoreModelOf returns the power model of core k.
func (c *Chip) CoreModelOf(k int) CoreModel { return c.models[k] }

// FMax returns the (common) maximum core frequency.
func (c *Chip) FMax() float64 { return c.models[0].FMax }

// TotalUncorePower returns the fixed non-core power in watts.
func (c *Chip) TotalUncorePower() float64 { return c.uncoreWa }

// FixedPower returns a copy of the per-block fixed power vector.
func (c *Chip) FixedPower() linalg.Vector { return c.fixed.Clone() }

// PowerVector assembles the full per-block power vector for the given
// per-core frequencies (length NumCores, in Hz).
func (c *Chip) PowerVector(freqs linalg.Vector) (linalg.Vector, error) {
	if len(freqs) != len(c.cores) {
		return nil, fmt.Errorf("power: %d frequencies for %d cores", len(freqs), len(c.cores))
	}
	p := c.fixed.Clone()
	for k, bi := range c.cores {
		p[bi] = c.models[k].AtFrequency(freqs[k])
	}
	return p, nil
}

// PowerVectorInto is PowerVector without allocation; dst must have
// length NumBlocks.
func (c *Chip) PowerVectorInto(dst, freqs linalg.Vector) error {
	if len(freqs) != len(c.cores) {
		return fmt.Errorf("power: %d frequencies for %d cores", len(freqs), len(c.cores))
	}
	if len(dst) != c.fp.NumBlocks() {
		return fmt.Errorf("power: dst length %d, want %d", len(dst), c.fp.NumBlocks())
	}
	copy(dst, c.fixed)
	for k, bi := range c.cores {
		dst[bi] = c.models[k].AtFrequency(freqs[k])
	}
	return nil
}

// TotalPower returns the chip power at the given core frequencies.
func (c *Chip) TotalPower(freqs linalg.Vector) (float64, error) {
	p, err := c.PowerVector(freqs)
	if err != nil {
		return 0, err
	}
	return p.Sum(), nil
}
