package power

import (
	"math"
	"testing"
	"testing/quick"

	"protemp/internal/floorplan"
	"protemp/internal/linalg"
)

func TestCoreModelValidate(t *testing.T) {
	if err := NiagaraCore().Validate(); err != nil {
		t.Fatalf("NiagaraCore invalid: %v", err)
	}
	bad := []CoreModel{
		{FMax: 0, PMax: 4},
		{FMax: -1, PMax: 4},
		{FMax: 1e9, PMax: 0},
		{FMax: 1e9, PMax: math.NaN()},
		{FMax: 1e9, PMax: 4, IdleFrac: -0.1},
		{FMax: 1e9, PMax: 4, IdleFrac: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestQuadraticLaw(t *testing.T) {
	m := NiagaraCore()
	// Paper's Eq. 2: p = pmax f²/fmax².
	cases := []struct{ f, want float64 }{
		{1e9, 4},
		{0.5e9, 1},
		{0.25e9, 0.25},
		{0, 0},
	}
	for _, c := range cases {
		if got := m.AtFrequency(c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AtFrequency(%g) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAtFrequencyClamps(t *testing.T) {
	m := NiagaraCore()
	if got := m.AtFrequency(2e9); got != 4 {
		t.Errorf("above-FMax power %v, want 4", got)
	}
	if got := m.AtFrequency(-1); got != 0 {
		t.Errorf("negative-frequency power %v, want 0", got)
	}
}

func TestIdleFloor(t *testing.T) {
	m := CoreModel{FMax: 1e9, PMax: 4, IdleFrac: 0.25}
	if got := m.AtFrequency(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("idle power %v, want 1", got)
	}
	if got := m.AtFrequency(1e9); math.Abs(got-4) > 1e-12 {
		t.Errorf("full power %v, want 4", got)
	}
}

func TestFrequencyForPowerInverts(t *testing.T) {
	for _, m := range []CoreModel{NiagaraCore(), {FMax: 2e9, PMax: 10, IdleFrac: 0.2}} {
		for _, f := range []float64{0, 0.1e9, 0.5e9, 0.9e9, m.FMax} {
			p := m.AtFrequency(f)
			back := m.FrequencyForPower(p)
			if math.Abs(back-f) > 1e-3*m.FMax {
				t.Errorf("model %+v: round trip f=%g -> p=%g -> f=%g", m, f, p, back)
			}
		}
		if m.FrequencyForPower(m.PMax+1) != m.FMax {
			t.Errorf("above-PMax should clamp to FMax")
		}
		if m.FrequencyForPower(-1) != 0 {
			t.Errorf("negative power should give 0")
		}
	}
}

func TestQuadCoefficient(t *testing.T) {
	m := NiagaraCore()
	c := m.QuadCoefficient()
	for _, f := range []float64{0.3e9, 0.7e9, 1e9} {
		want := m.AtFrequency(f)
		if got := c * f * f; math.Abs(got-want) > 1e-9 {
			t.Errorf("c·f² = %v, AtFrequency = %v", got, want)
		}
	}
}

// Property: power is monotone in frequency.
func TestPowerMonotoneProperty(t *testing.T) {
	m := NiagaraCore()
	f := func(a, b float64) bool {
		fa := math.Abs(math.Mod(a, 1)) * m.FMax
		fb := math.Abs(math.Mod(b, 1)) * m.FMax
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.AtFrequency(fa) <= m.AtFrequency(fb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newNiagaraChip(t *testing.T) *Chip {
	t.Helper()
	c, err := NewChip(floorplan.Niagara(), NiagaraCore(), UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChipStructure(t *testing.T) {
	c := newNiagaraChip(t)
	if c.NumCores() != 8 {
		t.Fatalf("NumCores = %d", c.NumCores())
	}
	if c.FMax() != 1e9 {
		t.Fatalf("FMax = %v", c.FMax())
	}
	// Paper: uncore = 30% of 8*4 W = 9.6 W.
	if got := c.TotalUncorePower(); math.Abs(got-9.6) > 1e-9 {
		t.Fatalf("uncore power %v, want 9.6", got)
	}
	for k := 0; k < c.NumCores(); k++ {
		bi := c.CoreBlockIndex(k)
		if c.Floorplan().Block(bi).Kind != floorplan.KindCore {
			t.Fatalf("core %d maps to non-core block %s", k, c.Floorplan().Block(bi).Name)
		}
	}
}

func TestChipRejections(t *testing.T) {
	if _, err := NewChip(floorplan.Niagara(), CoreModel{}, UncoreShare); err == nil {
		t.Error("invalid core model accepted")
	}
	if _, err := NewChip(floorplan.Niagara(), NiagaraCore(), -1); err == nil {
		t.Error("negative uncore share accepted")
	}
	noCores := floorplan.MustNew([]floorplan.Block{
		{Name: "L2", Kind: floorplan.KindCache, W: 1, H: 1},
	})
	if _, err := NewChip(noCores, NiagaraCore(), UncoreShare); err == nil {
		t.Error("core-less floorplan accepted")
	}
}

func TestPowerVector(t *testing.T) {
	c := newNiagaraChip(t)
	full := linalg.Constant(8, 1e9)
	p, err := c.PowerVector(full)
	if err != nil {
		t.Fatal(err)
	}
	// Core blocks at 4 W, non-core blocks positive, total = 32 + 9.6.
	for k := 0; k < c.NumCores(); k++ {
		if got := p[c.CoreBlockIndex(k)]; math.Abs(got-4) > 1e-12 {
			t.Fatalf("core %d power %v, want 4", k, got)
		}
	}
	if math.Abs(p.Sum()-41.6) > 1e-9 {
		t.Fatalf("total power %v, want 41.6", p.Sum())
	}
	tp, err := c.TotalPower(full)
	if err != nil || math.Abs(tp-41.6) > 1e-9 {
		t.Fatalf("TotalPower = %v, %v", tp, err)
	}
}

func TestPowerVectorHalfFrequency(t *testing.T) {
	c := newNiagaraChip(t)
	p, err := c.PowerVector(linalg.Constant(8, 0.5e9))
	if err != nil {
		t.Fatal(err)
	}
	// Cores at 1 W each (quadratic), uncore unchanged at 9.6 W.
	if math.Abs(p.Sum()-(8+9.6)) > 1e-9 {
		t.Fatalf("total power %v, want 17.6", p.Sum())
	}
}

func TestPowerVectorLengthMismatch(t *testing.T) {
	c := newNiagaraChip(t)
	if _, err := c.PowerVector(linalg.NewVector(3)); err == nil {
		t.Error("wrong frequency count accepted")
	}
	if err := c.PowerVectorInto(linalg.NewVector(2), linalg.NewVector(8)); err == nil {
		t.Error("wrong dst length accepted")
	}
	if err := c.PowerVectorInto(linalg.NewVector(15), linalg.NewVector(2)); err == nil {
		t.Error("wrong freqs length accepted in Into")
	}
}

func TestPowerVectorIntoMatches(t *testing.T) {
	c := newNiagaraChip(t)
	freqs := linalg.VectorOf(1e9, 0.9e9, 0.8e9, 0.7e9, 0.6e9, 0.5e9, 0.4e9, 0.3e9)
	want, err := c.PowerVector(freqs)
	if err != nil {
		t.Fatal(err)
	}
	got := linalg.NewVector(c.Floorplan().NumBlocks())
	if err := c.PowerVectorInto(got, freqs); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatalf("Into %v != alloc %v", got, want)
	}
	// FixedPower returns a copy.
	c.FixedPower()[0] = -5
	p2, _ := c.PowerVector(freqs)
	if !p2.Equal(want, 0) {
		t.Fatal("FixedPower leaked internal state")
	}
}

func TestNewChipExplicit(t *testing.T) {
	fp := floorplan.Niagara()
	ref := newNiagaraChip(t)
	c, err := NewChipExplicit(fp, NiagaraCore(), ref.FixedPower())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCores() != ref.NumCores() {
		t.Fatalf("NumCores = %d, want %d", c.NumCores(), ref.NumCores())
	}
	if got, want := c.TotalUncorePower(), ref.TotalUncorePower(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("uncore power %v, want %v", got, want)
	}
	full := linalg.Constant(ref.NumCores(), 1e9)
	pa, err := c.PowerVector(full)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := ref.PowerVector(full)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatalf("power[%d] = %v, want %v", i, pa[i], pb[i])
		}
	}
}

func TestNewChipExplicitRejections(t *testing.T) {
	fp := floorplan.Niagara()
	n := fp.NumBlocks()
	if _, err := NewChipExplicit(fp, NiagaraCore(), linalg.NewVector(n-1)); err == nil {
		t.Error("short fixed vector accepted")
	}
	bad := linalg.NewVector(n)
	bad[fp.CoreIndices()[0]] = 1
	if _, err := NewChipExplicit(fp, NiagaraCore(), bad); err == nil {
		t.Error("fixed power on a core block accepted")
	}
	neg := linalg.NewVector(n)
	neg[0] = -1
	if fp.Block(0).Kind == floorplan.KindCore {
		t.Skip("block 0 unexpectedly a core")
	}
	if _, err := NewChipExplicit(fp, NiagaraCore(), neg); err == nil {
		t.Error("negative fixed power accepted")
	}
}
