package core

import (
	"math"
	"testing"

	"protemp/internal/power"
)

// The per-block T0 extension: a uniform vector must agree exactly with
// the paper's scalar TStart path.
func TestT0UniformMatchesScalar(t *testing.T) {
	s1 := baseSpec(t, 70, 500)
	a1, err := Solve(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := baseSpec(t, 0, 500) // TStart ignored when T0 is set... keep 0 to prove it
	nb := s2.Chip.Floorplan().NumBlocks()
	s2.T0 = make([]float64, nb)
	for i := range s2.T0 {
		s2.T0[i] = 70
	}
	a2, err := Solve(s2)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Feasible != a2.Feasible {
		t.Fatalf("feasibility differs: %v vs %v", a1.Feasible, a2.Feasible)
	}
	for j := range a1.Freqs {
		if math.Abs(a1.Freqs[j]-a2.Freqs[j]) > 2e6 {
			t.Fatalf("core %d: scalar %v vs vector %v", j, a1.Freqs[j], a2.Freqs[j])
		}
	}
}

// A non-uniform start with one hot middle core must slow that core (or
// its neighbourhood) relative to a uniform start at the same maximum.
func TestT0NonUniformUsesSlack(t *testing.T) {
	uniform := baseSpec(t, 88, 500)
	au, err := Solve(uniform)
	if err != nil {
		t.Fatal(err)
	}
	hotP2 := baseSpec(t, 0, 500)
	fp := hotP2.Chip.Floorplan()
	nb := fp.NumBlocks()
	hotP2.T0 = make([]float64, nb)
	for i := range hotP2.T0 {
		hotP2.T0[i] = 60
	}
	p2, _ := fp.IndexOf("P2")
	hotP2.T0[p2] = 88
	ah, err := Solve(hotP2)
	if err != nil {
		t.Fatal(err)
	}
	if !ah.Feasible {
		t.Fatal("non-uniform start should be feasible")
	}
	// The true-map solve has strictly more thermal headroom than the
	// conservative uniform-at-max solve, so it never does worse on
	// power for the same workload.
	if au.Feasible && ah.TotalPower > au.TotalPower*1.05 {
		t.Fatalf("per-block start wasted power: %.3f vs %.3f", ah.TotalPower, au.TotalPower)
	}
	if ah.PeakTemp > 100.01 {
		t.Fatalf("peak %.2f", ah.PeakTemp)
	}
}

func TestT0Validation(t *testing.T) {
	s := baseSpec(t, 60, 500)
	s.T0 = []float64{1, 2, 3}
	if err := s.Validate(); err == nil {
		t.Fatal("wrong-length T0 accepted")
	}
	s.T0 = make([]float64, s.Chip.Floorplan().NumBlocks())
	s.T0[0] = math.NaN()
	if err := s.Validate(); err == nil {
		t.Fatal("NaN T0 accepted")
	}
}

// With an idle/leakage floor (IdleFrac > 0), the optimum still respects
// the limit and the floor shows up in the reported powers.
func TestSolveWithLeakageFloor(t *testing.T) {
	f := niagaraFixture(t)
	// Rebuild a chip with a 20% leakage floor on the same floorplan.
	model := power.NiagaraCore()
	model.IdleFrac = 0.2
	chip2, err := power.NewChip(f.chip.Floorplan(), model, power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	s := &Spec{Chip: chip2, Window: f.window, TStart: 60, TMax: 100, FTarget: 400e6}
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("leaky chip point should be feasible")
	}
	floor := 0.2 * 4.0
	for j, p := range a.Powers {
		if p < floor-1e-6 {
			t.Fatalf("core %d power %.3f below leakage floor %.3f", j, p, floor)
		}
	}
	if a.PeakTemp > 100.01 {
		t.Fatalf("peak %.2f", a.PeakTemp)
	}
}
