package core

import (
	"context"
	"math"
	"sync"
	"testing"
)

// sweepGrid is the grid the equivalence tests sweep: wide enough to
// cross the capacity boundary (feasible and infeasible points, warm
// chains of length > 1) while staying fast.
var (
	sweepTStarts  = []float64{47, 77, 97}
	sweepFTargets = []float64{250e6, 500e6, 750e6, 1000e6}
)

func sweepSpec(t *testing.T, v Variant) TableSpec {
	f := niagaraFixture(t)
	return TableSpec{
		Chip:     f.chip,
		Window:   f.window,
		TMax:     100,
		TStarts:  sweepTStarts,
		FTargets: sweepFTargets,
		Variant:  v,
	}
}

// TestSweepMatchesColdPath is the golden equivalence test of the
// warm-started sweep pipeline: for every variant, GenerateTable (the
// compiled, neighbor-seeded path) must produce the identical
// feasibility mask as solving each grid point independently via
// SolveContext (the cold path), with Freqs and TotalPower agreeing
// within solver tolerance.
func TestSweepMatchesColdPath(t *testing.T) {
	for _, v := range []Variant{VariantVariable, VariantUniform, VariantGradient} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			ts := sweepSpec(t, v)
			tbl, err := GenerateTable(context.Background(), ts)
			if err != nil {
				t.Fatal(err)
			}
			for ti, tstart := range ts.TStarts {
				for fi, ftarget := range ts.FTargets {
					cold, err := SolveContext(context.Background(), &Spec{
						Chip: ts.Chip, Window: ts.Window, TStart: tstart,
						TMax: ts.TMax, FTarget: ftarget, Variant: v,
					})
					if err != nil {
						t.Fatal(err)
					}
					e := tbl.Entries[ti][fi]
					if e.Feasible != cold.Feasible {
						t.Fatalf("(%g, %g): sweep feasible=%v, cold feasible=%v",
							tstart, ftarget, e.Feasible, cold.Feasible)
					}
					if !e.Feasible {
						continue
					}
					// Both paths solve to a 1e-7 W duality gap; the unique
					// optimum makes per-core frequencies agree far tighter
					// than the 10 kHz (1e-5 fmax) bound used here.
					for j := range e.Freqs {
						if d := math.Abs(e.Freqs[j] - cold.Freqs[j]); d > 1e4 {
							t.Errorf("(%g, %g) core %d: sweep %g Hz vs cold %g Hz (Δ %g)",
								tstart, ftarget, j, e.Freqs[j], cold.Freqs[j], d)
						}
					}
					if d := math.Abs(e.TotalPower - cold.TotalPower); d > 1e-3 {
						t.Errorf("(%g, %g): sweep power %g W vs cold %g W (Δ %g)",
							tstart, ftarget, e.TotalPower, cold.TotalPower, d)
					}
					if d := math.Abs(e.AvgFreq - cold.AvgFreq); d > 1e4 {
						t.Errorf("(%g, %g): sweep avg %g Hz vs cold %g Hz",
							tstart, ftarget, e.AvgFreq, cold.AvgFreq)
					}
				}
			}
		})
	}
}

// TestSweepMonotoneFeasibility is the property Phase-2 lookup relies
// on, asserted on warm-started tables: along each TStart row the
// feasible entries form a prefix (no holes as FTarget rises), and at
// each FTarget column feasibility never improves as the starting
// temperature rises.
func TestSweepMonotoneFeasibility(t *testing.T) {
	for _, v := range []Variant{VariantVariable, VariantUniform, VariantGradient} {
		ts := sweepSpec(t, v)
		tbl, err := GenerateTable(context.Background(), ts)
		if err != nil {
			t.Fatal(err)
		}
		for ti := range tbl.Entries {
			for fi := 1; fi < len(tbl.FTargets); fi++ {
				if tbl.Entries[ti][fi].Feasible && !tbl.Entries[ti][fi-1].Feasible {
					t.Errorf("%s: row %d has a feasibility hole at column %d", v, ti, fi)
				}
			}
		}
		for fi := range tbl.FTargets {
			for ti := 1; ti < len(tbl.TStarts); ti++ {
				if tbl.Entries[ti][fi].Feasible && !tbl.Entries[ti-1][fi].Feasible {
					t.Errorf("%s: column %d regains feasibility at hotter row %d", v, fi, ti)
				}
			}
		}
	}
}

// TestSweepWarmStats checks the sweep's cost ledger: warm hits happen
// (ascending-FTarget rows with more than one feasible point must chain)
// and the counters are internally consistent.
func TestSweepWarmStats(t *testing.T) {
	ts := sweepSpec(t, VariantVariable)
	tbl, err := GenerateTable(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Stats
	if s.Solves != len(ts.TStarts)*len(ts.FTargets) {
		t.Errorf("solves = %d, want %d", s.Solves, len(ts.TStarts)*len(ts.FTargets))
	}
	if s.WarmHits == 0 {
		t.Error("sweep recorded no warm hits; neighbor seeding is not engaging")
	}
	if s.WarmHits > s.Feasible {
		t.Errorf("warm hits %d exceed feasible count %d", s.WarmHits, s.Feasible)
	}
	if s.WarmIters > s.NewtonIters {
		t.Errorf("warm iters %d exceed total %d", s.WarmIters, s.NewtonIters)
	}
	if s.WallNanos <= 0 {
		t.Error("solve wall time not recorded")
	}
	if saved := s.IterationsSaved(); saved < 0 {
		t.Errorf("negative iterations saved %d", saved)
	}
}

// TestSweepObserver checks the progress callback: one serialized call
// per grid point, Done covering 1..Total exactly once.
func TestSweepObserver(t *testing.T) {
	ts := sweepSpec(t, VariantVariable)
	var mu sync.Mutex
	seen := make(map[int]SweepProgress)
	ts.Observer = func(p SweepProgress) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[p.Done]; dup {
			t.Errorf("duplicate Done value %d", p.Done)
		}
		seen[p.Done] = p
	}
	if _, err := GenerateTable(context.Background(), ts); err != nil {
		t.Fatal(err)
	}
	total := len(ts.TStarts) * len(ts.FTargets)
	if len(seen) != total {
		t.Fatalf("observer saw %d points, want %d", len(seen), total)
	}
	for done, p := range seen {
		if done < 1 || done > total {
			t.Errorf("Done = %d outside [1, %d]", done, total)
		}
		if p.Total != total {
			t.Errorf("Total = %d, want %d", p.Total, total)
		}
		if p.TStart != ts.TStarts[p.TI] || p.FTarget != ts.FTargets[p.FI] {
			t.Errorf("progress coordinates (%g, %g) disagree with indices (%d, %d)",
				p.TStart, p.FTarget, p.TI, p.FI)
		}
	}
}

// TestSweepCacheKeyIgnoresObserverAndWorkers pins the CacheKey
// compatibility promise: the sweep pipeline's new Observer field, like
// Workers, changes cost, not content.
func TestSweepCacheKeyIgnoresObserverAndWorkers(t *testing.T) {
	a := sweepSpec(t, VariantVariable)
	b := sweepSpec(t, VariantVariable)
	b.Observer = func(SweepProgress) {}
	b.Workers = 3
	if a.CacheKey() != b.CacheKey() {
		t.Error("CacheKey depends on Observer or Workers")
	}
}
