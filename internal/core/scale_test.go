package core

import (
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// Many-core scalability: the full pipeline on the Tilera-style 64-core
// mesh the paper's introduction cites — 129 optimization variables and
// thousands of constraints. Verifies the solver handles the size and
// the guarantee still holds.
func TestSolveTilera64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core solve in -short mode")
	}
	fp := floorplan.Tilera64()
	chip, err := power.NewChip(fp, power.CoreModel{FMax: 750e6, PMax: 0.9}, power.UncoreShare)
	if err != nil {
		t.Fatal(err)
	}
	model, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	disc, err := model.Discretize(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	window, err := disc.Window(100) // 50 ms horizon keeps the test quick
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Chip:    chip,
		Window:  window,
		TStart:  70,
		TMax:    95,
		FTarget: 0.4 * chip.FMax(),
	}
	a, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("64-core moderate-load point should be feasible")
	}
	if a.PeakTemp > 95.01 {
		t.Fatalf("peak %.2f exceeds limit", a.PeakTemp)
	}
	if a.AvgFreq < spec.FTarget-1e6 {
		t.Fatalf("workload target missed: %.0f MHz", a.AvgFreq/1e6)
	}
	// Corner tiles (two cool edges) must run at least as fast as the
	// centre tiles (surrounded by cores on all four sides).
	idx := func(name string) int {
		bi, ok := fp.IndexOf(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for j := 0; j < chip.NumCores(); j++ {
			if chip.CoreBlockIndex(j) == bi {
				return j
			}
		}
		t.Fatalf("%s is not a core", name)
		return -1
	}
	corner := a.Freqs[idx("C0_0")]
	centre := a.Freqs[idx("C4_4")]
	if corner < centre-1e6 {
		t.Fatalf("corner tile (%.0f MHz) slower than centre tile (%.0f MHz)",
			corner/1e6, centre/1e6)
	}
	t.Logf("64-core solve: %d Newton iterations, corner %.0f MHz vs centre %.0f MHz",
		a.NewtonIters, corner/1e6, centre/1e6)
}
