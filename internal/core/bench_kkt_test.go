package core

import (
	"context"
	"fmt"
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// kktBenchFix caches the per-size chip/window fixtures so the dense
// and arrow lanes of one size share the (expensive, setup-only)
// thermal window precompute. Benchmarks run sequentially, so a plain
// map is safe.
var kktBenchFix = map[int]fixture{}

func kktBenchFixture(b *testing.B, cores int) fixture {
	b.Helper()
	if f, ok := kktBenchFix[cores]; ok {
		return f
	}
	var (
		fp  *floorplan.Floorplan
		cm  power.CoreModel
		err error
	)
	switch cores {
	case 8:
		fp = floorplan.Niagara()
		cm = power.NiagaraCore()
	case 64:
		fp, err = floorplan.ManyCore(8, 8)
		cm = power.CoreModel{FMax: 750e6, PMax: 0.9}
	case 256:
		fp, err = floorplan.ManyCore(16, 16)
		cm = power.CoreModel{FMax: 750e6, PMax: 0.9}
	default:
		b.Fatalf("no fixture for %d cores", cores)
	}
	if err != nil {
		b.Fatal(err)
	}
	chip, err := power.NewChip(fp, cm, power.UncoreShare)
	if err != nil {
		b.Fatal(err)
	}
	model, err := thermal.NewRC(fp, thermal.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	disc, err := model.Discretize(1e-3)
	if err != nil {
		b.Fatal(err)
	}
	window, err := disc.Window(100)
	if err != nil {
		b.Fatal(err)
	}
	f := fixture{chip: chip, model: model, window: window}
	kktBenchFix[cores] = f
	return f
}

// BenchmarkNewtonDirection prices the tentpole directly: the warm
// online solve — whose cost is the Newton loop's assemble + KKT
// factor — on the dense 2n×2n Cholesky path versus the structured
// arrow (block-elimination + Schur) path, across chip sizes. The two
// lanes of each size solve the identical window sequence; only the
// backend differs. CI records this pair as BENCH_kkt.json under the
// regression gate.
func BenchmarkNewtonDirection(b *testing.B) {
	ctx := context.Background()
	for _, cores := range []int{8, 64, 256} {
		for _, mode := range []string{"dense", "arrow"} {
			b.Run(fmt.Sprintf("%s/cores%d", mode, cores), func(b *testing.B) {
				f := kktBenchFixture(b, cores)
				tmax, base := 95.0, 70.0
				if cores == 8 {
					tmax, base = 100.0, 58.0
				}
				o, err := NewOnlineSolver(OnlineSpec{Chip: f.chip, Window: f.window, TMax: tmax})
				if err != nil {
					b.Fatal(err)
				}
				switch mode {
				case "dense":
					o.plan.pattern = nil
					o.inst.prob.Pattern = nil
				case "arrow":
					if o.plan.pattern == nil {
						b.Fatal("compiled plan has no Hessian pattern")
					}
				}
				nb := f.chip.Floorplan().NumBlocks()
				maps := make([][]float64, 4)
				for k := range maps {
					m := make([]float64, nb)
					for j := range m {
						m[j] = base + float64(k) + 2*float64(j%4)
					}
					maps[k] = m
				}
				ftarget := 0.4 * f.chip.FMax()
				if _, _, err := o.Solve(ctx, 0, maps[0], ftarget); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a, _, err := o.Solve(ctx, 0, maps[i%len(maps)], ftarget)
					if err != nil {
						b.Fatal(err)
					}
					if !a.Feasible {
						b.Fatal("benchmark window unexpectedly infeasible")
					}
				}
			})
		}
	}
}
