package core

import (
	"sync"
	"testing"

	"protemp/internal/floorplan"
	"protemp/internal/power"
	"protemp/internal/thermal"
)

// Shared Niagara fixture. Most tests use a coarser 1 ms / 100-step
// window (same 100 ms horizon as the paper's 0.4 ms / 250 steps) to
// keep the suite fast; TestPaperResolution exercises the exact paper
// discretization.
type fixture struct {
	chip   *power.Chip
	model  *thermal.RCModel
	window *thermal.WindowResponse
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func niagaraFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		fp := floorplan.Niagara()
		chip, err := power.NewChip(fp, power.NiagaraCore(), power.UncoreShare)
		if err != nil {
			fixErr = err
			return
		}
		model, err := thermal.NewRC(fp, thermal.DefaultParams())
		if err != nil {
			fixErr = err
			return
		}
		disc, err := model.Discretize(1e-3)
		if err != nil {
			fixErr = err
			return
		}
		window, err := disc.Window(100)
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{chip: chip, model: model, window: window}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func baseSpec(t *testing.T, tstart, ftargetMHz float64) *Spec {
	f := niagaraFixture(t)
	return &Spec{
		Chip:    f.chip,
		Window:  f.window,
		TStart:  tstart,
		TMax:    100,
		FTarget: ftargetMHz * 1e6,
	}
}
