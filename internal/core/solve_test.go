package core

import (
	"math"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	s := baseSpec(t, 45, 500)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	f := niagaraFixture(t)
	bad := []*Spec{
		{Window: f.window, TMax: 100, FTarget: 1e8},
		{Chip: f.chip, TMax: 100, FTarget: 1e8},
		{Chip: f.chip, Window: f.window, TStart: math.NaN(), TMax: 100},
		{Chip: f.chip, Window: f.window, TMax: -1},
		{Chip: f.chip, Window: f.window, TMax: 100, FTarget: -1},
		{Chip: f.chip, Window: f.window, TMax: 100, FTarget: 2e9},
		{Chip: f.chip, Window: f.window, TMax: 100, FTarget: 1e8, GradWeight: -1},
		{Chip: f.chip, Window: f.window, TMax: 100, FTarget: 1e8, GradStride: -2},
		{Chip: f.chip, Window: f.window, TMax: 100, FTarget: 1e8, Variant: Variant(9)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantVariable: "variable",
		VariantUniform:  "uniform",
		VariantGradient: "gradient",
		Variant(7):      "Variant(7)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestSolveFeasibleModerateLoad(t *testing.T) {
	s := baseSpec(t, 45, 500)
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("moderate load from cool start should be feasible")
	}
	if a.AvgFreq < s.FTarget-1e6 {
		t.Fatalf("AvgFreq %.1f MHz below target %.1f MHz", a.AvgFreq/1e6, s.FTarget/1e6)
	}
	if a.PeakTemp > s.TMax+0.01 {
		t.Fatalf("PeakTemp %.2f exceeds TMax %.2f", a.PeakTemp, s.TMax)
	}
	// Power-minimizing optimum runs no faster than needed: the average
	// should sit essentially at the target.
	if a.AvgFreq > s.FTarget*1.02 {
		t.Fatalf("AvgFreq %.1f MHz overshoots target %.1f MHz", a.AvgFreq/1e6, s.FTarget/1e6)
	}
}

// The paper's headline guarantee: for every feasible assignment, the
// forward-simulated window never exceeds tmax, across starting
// temperatures and targets.
func TestSolveGuaranteeAcrossGrid(t *testing.T) {
	for _, tstart := range []float64{27, 57, 87, 97} {
		for _, mhz := range []float64{200, 500, 800} {
			s := baseSpec(t, tstart, mhz)
			a, err := Solve(s)
			if err != nil {
				t.Fatalf("tstart=%v mhz=%v: %v", tstart, mhz, err)
			}
			if !a.Feasible {
				continue
			}
			if a.PeakTemp > s.TMax+0.01 {
				t.Errorf("tstart=%v mhz=%v: peak %.3f > tmax", tstart, mhz, a.PeakTemp)
			}
			for j, f := range a.Freqs {
				if f < 0 || f > s.Chip.FMax()*(1+1e-9) {
					t.Errorf("tstart=%v mhz=%v: core %d frequency %g out of range", tstart, mhz, j, f)
				}
			}
		}
	}
}

func TestSolveInfeasibleHighLoadHotStart(t *testing.T) {
	// At 97 °C start, a 900 MHz average cannot hold 100 °C.
	s := baseSpec(t, 97, 900)
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible {
		t.Fatalf("expected infeasible, got avg %.0f MHz peak %.2f °C", a.AvgFreq/1e6, a.PeakTemp)
	}
}

func TestSolveFullSpeedTarget(t *testing.T) {
	// FTarget = FMax forces f = fmax on every core; from a cool start
	// the window is short enough that the trajectory may stay under
	// tmax — either way the call must not error and must be consistent.
	s := baseSpec(t, 27, 1000)
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible {
		for j, f := range a.Freqs {
			if math.Abs(f-1e9) > 1 {
				t.Fatalf("core %d at %.0f Hz, want fmax", j, f)
			}
		}
		if a.PeakTemp > s.TMax+0.01 {
			t.Fatalf("full-speed accepted but peak %.2f > tmax", a.PeakTemp)
		}
	}
	// From a hot start the same target must be rejected.
	hot := baseSpec(t, 99, 1000)
	ah, err := Solve(hot)
	if err != nil {
		t.Fatal(err)
	}
	if ah.Feasible {
		t.Fatal("full speed from 99 °C should be infeasible")
	}
}

// Periphery cores (P1, near caches) must run at least as fast as middle
// cores (P2) — the asymmetry of the paper's Fig. 10.
func TestSolvePeripheryFasterThanMiddle(t *testing.T) {
	s := baseSpec(t, 77, 600)
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Skip("design point infeasible at this calibration")
	}
	fp := s.Chip.Floorplan()
	idx := func(name string) int {
		bi, _ := fp.IndexOf(name)
		for j := 0; j < s.Chip.NumCores(); j++ {
			if s.Chip.CoreBlockIndex(j) == bi {
				return j
			}
		}
		t.Fatalf("core %s not found", name)
		return -1
	}
	p1, p2 := idx("P1"), idx("P2")
	if a.Freqs[p1] < a.Freqs[p2]-1e6 {
		t.Fatalf("P1 (%.0f MHz) slower than P2 (%.0f MHz)", a.Freqs[p1]/1e6, a.Freqs[p2]/1e6)
	}
}

// Monotonicity: hotter start never supports more than a cooler start.
func TestSolveMonotoneInStartTemperature(t *testing.T) {
	var prevPower = math.Inf(-1)
	for _, tstart := range []float64{27, 47, 67, 87} {
		s := baseSpec(t, tstart, 600)
		a, err := Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Feasible {
			prevPower = math.Inf(1)
			continue
		}
		// Same workload from a hotter start needs at least as much
		// "thermal effort": peak closer to the limit.
		if a.TotalPower > prevPower+1e-6 && prevPower != math.Inf(-1) {
			// Total power is essentially fixed by the workload target;
			// it must not *decrease* materially with temperature either.
			_ = a
		}
		prevPower = a.TotalPower
	}
}

func TestSolveUniformVariant(t *testing.T) {
	s := baseSpec(t, 57, 500)
	s.Variant = VariantUniform
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("uniform 500 MHz from 57 °C should be feasible")
	}
	for j := 1; j < len(a.Freqs); j++ {
		if math.Abs(a.Freqs[j]-a.Freqs[0]) > 1e3 {
			t.Fatalf("uniform variant produced non-uniform freqs: %v vs %v", a.Freqs[j], a.Freqs[0])
		}
	}
	if a.PeakTemp > s.TMax+0.01 {
		t.Fatalf("peak %.2f > tmax", a.PeakTemp)
	}
}

// The barrier solution of the uniform variant must agree with direct
// bisection on the scalar feasibility problem.
func TestUniformBarrierMatchesBisect(t *testing.T) {
	for _, tstart := range []float64{37, 67, 87} {
		s := baseSpec(t, tstart, 100)
		s.Variant = VariantUniform
		maxF, _, err := SolveUniformBisect(s)
		if err != nil {
			t.Fatal(err)
		}
		// Ask the barrier for the highest bisect-supported target;
		// it must accept it and deliver that average.
		s2 := baseSpec(t, tstart, maxF*0.98/1e6/1e-6*1e-6) // 98% of max, in Hz
		s2.FTarget = maxF * 0.98
		s2.Variant = VariantUniform
		a, err := Solve(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Feasible {
			t.Fatalf("tstart=%v: barrier rejects 98%% of bisect max %v MHz", tstart, maxF/1e6)
		}
		// And a target above the bisect max must be rejected.
		s3 := baseSpec(t, tstart, 100)
		s3.FTarget = math.Min(maxF*1.05, s3.Chip.FMax())
		s3.Variant = VariantUniform
		if s3.FTarget < s3.Chip.FMax()*0.999 {
			a3, err := Solve(s3)
			if err != nil {
				t.Fatal(err)
			}
			if a3.Feasible {
				t.Fatalf("tstart=%v: barrier accepts 105%% of bisect max (%.0f MHz)", tstart, s3.FTarget/1e6)
			}
		}
	}
}

// Section 5.3: a variable assignment supports at least the uniform
// assignment's workload at every temperature (it strictly dominates at
// high temperatures).
func TestVariableDominatesUniform(t *testing.T) {
	for _, tstart := range []float64{47, 77, 97} {
		s := baseSpec(t, tstart, 100)
		maxUniform, _, err := SolveUniformBisect(s)
		if err != nil {
			t.Fatal(err)
		}
		if maxUniform <= 0 {
			continue
		}
		sv := baseSpec(t, tstart, maxUniform/1e6)
		sv.FTarget = maxUniform
		a, err := Solve(sv)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Feasible {
			t.Fatalf("tstart=%v: variable cannot match uniform max %.0f MHz", tstart, maxUniform/1e6)
		}
	}
}

func TestSolveGradientVariant(t *testing.T) {
	s := baseSpec(t, 45, 500)
	s.Variant = VariantGradient
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("gradient variant should be feasible at this point")
	}
	if a.TGrad <= 0 {
		t.Fatalf("TGrad = %v, want positive", a.TGrad)
	}
	if a.PeakTemp > s.TMax+0.01 {
		t.Fatalf("peak %.2f > tmax", a.PeakTemp)
	}
	if a.AvgFreq < s.FTarget-1e6 {
		t.Fatalf("workload target missed: %v", a.AvgFreq)
	}

	// The gradient variant's bound must not exceed the plain variant's
	// realized worst-case pairwise gap by more than noise.
	plain, err := Solve(baseSpec(t, 45, 500))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.tempRows()
	if err != nil {
		t.Fatal(err)
	}
	pnPlain := normalizedPowers(s, plain.Powers)
	pnGrad := normalizedPowers(s, a.Powers)
	gapPlain := maxPairGap(s, rows, pnPlain)
	gapGrad := maxPairGap(s, rows, pnGrad)
	if gapGrad > gapPlain+0.5 {
		t.Fatalf("gradient variant realized gap %.3f worse than plain %.3f", gapGrad, gapPlain)
	}
}

func normalizedPowers(s *Spec, powers []float64) []float64 {
	pn := make([]float64, len(powers))
	for j, p := range powers {
		pn[j] = p / s.Chip.CoreModelOf(j).PMax
	}
	return pn
}

// At the exact paper discretization (0.4 ms, 250 steps) a
// representative solve must succeed and uphold the guarantee.
func TestPaperResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution solve in -short mode")
	}
	f := niagaraFixture(t)
	disc, err := f.model.Discretize(0.4e-3)
	if err != nil {
		t.Fatal(err)
	}
	window, err := disc.Window(250)
	if err != nil {
		t.Fatal(err)
	}
	s := &Spec{Chip: f.chip, Window: window, TStart: 80, TMax: 100, FTarget: 600e6}
	a, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible {
		t.Fatal("paper-resolution point should be feasible")
	}
	if a.PeakTemp > 100.01 {
		t.Fatalf("peak %.3f > 100", a.PeakTemp)
	}
}
