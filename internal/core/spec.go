// Package core implements Pro-Temp, the paper's contribution: a convex
// program that assigns per-core frequencies so that every core stays
// below the maximum temperature at every sub-step of the next DFS
// window, while total power is minimized and the workload's average
// frequency requirement is met (the paper's model (3), with the
// gradient extension (4)-(5) and the uniform-frequency restriction of
// Section 5.3); an off-line table generator sweeping starting
// temperatures and target frequencies (Phase 1, their Fig. 3-4); and
// the run-time controller that drives DVFS from that table (Phase 2).
//
// Following the paper's formulation, the decision variables are the
// frequencies f_i and the powers p_i coupled by the convex inequality
// p_i >= pmax·f_i²/fmax² (their Eq. 2 relaxed to an inequality, tight
// at the optimum of the power-minimizing objective but deliberately
// loose in the gradient variant, where a core may burn extra power to
// flatten the spatial profile). Temperatures are affine in p through
// the discrete thermal dynamics, so all constraints are affine or
// diagonal-quadratic and the program is solved by the interior-point
// method in internal/solver.
package core

import (
	"fmt"
	"math"

	"protemp/internal/power"
	"protemp/internal/thermal"
)

// Variant selects the optimization model.
type Variant int

const (
	// VariantVariable lets each core take its own frequency (the
	// paper's primary model (3)).
	VariantVariable Variant = iota
	// VariantUniform forces a single common frequency, as many
	// commercial parts require (Section 5.3).
	VariantUniform
	// VariantGradient is VariantVariable plus the spatial-gradient
	// variable tgrad bounded by every pairwise core temperature
	// difference, jointly minimized with power (their (4)-(5)).
	VariantGradient
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantVariable:
		return "variable"
	case VariantUniform:
		return "uniform"
	case VariantGradient:
		return "gradient"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant is the inverse of String for the named variants. The
// empty string selects def — callers with a configured default pass it
// through, so wire formats can omit the field.
func ParseVariant(name string, def Variant) (Variant, error) {
	switch name {
	case "":
		return def, nil
	case "variable":
		return VariantVariable, nil
	case "uniform":
		return VariantUniform, nil
	case "gradient":
		return VariantGradient, nil
	default:
		return 0, fmt.Errorf("core: unknown variant %q (want variable, uniform or gradient)", name)
	}
}

// Spec is one Phase-1 design point.
type Spec struct {
	// Chip provides the floorplan, core power models and fixed powers.
	Chip *power.Chip
	// Window is the precomputed thermal response over the DFS window
	// (horizon m steps of the paper's 0.4 ms discretization). It must be
	// built from the same floorplan as Chip.
	Window *thermal.WindowResponse
	// TStart is the uniform starting temperature in °C. The paper
	// iterates Phase 1 on this single value; at run time it corresponds
	// to the maximum temperature across the cores.
	TStart float64
	// TMax is the maximum allowed temperature in °C (100 in the paper).
	TMax float64
	// FTarget is the required average core frequency in Hz
	// (Σ f_i >= n·FTarget).
	FTarget float64
	// Variant selects the model; zero value is VariantVariable.
	Variant Variant
	// GradWeight is the objective weight on tgrad for VariantGradient.
	// The paper's Eq. 5 uses weight 1 on tgrad in °C against power in
	// watts; zero selects that default.
	GradWeight float64
	// GradStride constrains pairwise gradients every GradStride-th
	// sub-step (plus the final one) to keep the constraint count
	// manageable; zero selects 5. Temperature-limit constraints are
	// never strided — the tmax guarantee covers every sub-step.
	GradStride int
	// ConstrainAllBlocks also applies TMax to cache and uncore blocks.
	// The paper constrains the cores; non-core blocks run cooler.
	ConstrainAllBlocks bool
	// T0 optionally supplies per-block starting temperatures (length
	// NumBlocks, °C) instead of the uniform TStart. This is the
	// extension the paper's Section 3.2 sets aside ("we simplify the
	// process by only iterating on one temperature value"): a controller
	// with full sensor state can solve on the true thermal map. When T0
	// is nil the paper's single-value scheme is used.
	T0 []float64
}

// Validate checks the spec for consistency.
func (s *Spec) Validate() error {
	switch {
	case s.Chip == nil:
		return fmt.Errorf("core: nil chip")
	case s.Window == nil:
		return fmt.Errorf("core: nil thermal window")
	case math.IsNaN(s.TStart) || math.IsInf(s.TStart, 0):
		return fmt.Errorf("core: non-finite TStart %v", s.TStart)
	case math.IsNaN(s.TMax) || s.TMax <= 0:
		return fmt.Errorf("core: invalid TMax %v", s.TMax)
	case math.IsNaN(s.FTarget) || s.FTarget < 0:
		return fmt.Errorf("core: invalid FTarget %v", s.FTarget)
	case s.FTarget > s.Chip.FMax():
		return fmt.Errorf("core: FTarget %g above FMax %g", s.FTarget, s.Chip.FMax())
	case s.GradWeight < 0:
		return fmt.Errorf("core: negative GradWeight %v", s.GradWeight)
	case s.GradStride < 0:
		return fmt.Errorf("core: negative GradStride %v", s.GradStride)
	}
	if s.Variant != VariantVariable && s.Variant != VariantUniform && s.Variant != VariantGradient {
		return fmt.Errorf("core: unknown variant %v", s.Variant)
	}
	if s.T0 != nil {
		if len(s.T0) != s.Chip.Floorplan().NumBlocks() {
			return fmt.Errorf("core: T0 has %d entries for %d blocks", len(s.T0), s.Chip.Floorplan().NumBlocks())
		}
		for i, t := range s.T0 {
			if math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("core: non-finite T0[%d]", i)
			}
		}
	}
	return nil
}

func (s *Spec) gradWeight() float64 {
	if s.GradWeight > 0 {
		return s.GradWeight
	}
	return 1
}

func (s *Spec) gradStride() int {
	if s.GradStride > 0 {
		return s.GradStride
	}
	return 5
}

// Assignment is the solved frequency assignment for one design point.
type Assignment struct {
	// Feasible reports whether the design point admits any assignment.
	// When false all other fields are zero — the paper's "optimization
	// notifies an infeasible solution".
	Feasible bool
	// Freqs holds the per-core frequencies in Hz (length NumCores).
	Freqs []float64
	// Powers holds the per-core powers in watts at the optimum.
	Powers []float64
	// AvgFreq is the mean of Freqs.
	AvgFreq float64
	// TotalPower is the summed core power (objective's power term).
	TotalPower float64
	// TGrad is the optimized spatial-gradient bound in °C
	// (VariantGradient only; zero otherwise).
	TGrad float64
	// PeakTemp is the highest predicted core temperature over the
	// window under this assignment (a forward simulation check).
	PeakTemp float64
	// Gap is the solver's duality-gap bound.
	Gap float64
	// NewtonIters counts solver work, for the §5.1 cost accounting.
	NewtonIters int
	// AssembleNanos and FactorNanos split the solver's wall time into
	// Hessian assembly vs KKT factorization+solve (zero for degenerate
	// paths that never enter the barrier, e.g. full speed).
	AssembleNanos int64
	FactorNanos   int64
}
