package core

import (
	"fmt"

	"protemp/internal/linalg"
	"protemp/internal/solver"
)

// layout records the variable layout of a built problem.
//
// VariantVariable:  x = [fn_0..fn_{n-1}, pn_0..pn_{n-1}]          (dim 2n)
// VariantGradient:  x = [fn..., pn..., g]                          (dim 2n+1)
// VariantUniform:   x = [fn, pn]                                   (dim 2)
//
// fn_j = f_j / fmax_j and pn_j = p_j / pmax_j are normalized to [0, 1]
// so the Newton systems stay well-scaled; g is the gradient bound in °C.
type layout struct {
	variant Variant
	nCores  int
	dim     int
}

func newLayout(v Variant, nCores int) layout {
	switch v {
	case VariantUniform:
		return layout{variant: v, nCores: nCores, dim: 2}
	case VariantGradient:
		return layout{variant: v, nCores: nCores, dim: 2*nCores + 1}
	default:
		return layout{variant: v, nCores: nCores, dim: 2 * nCores}
	}
}

func (l layout) fIdx(j int) int {
	if l.variant == VariantUniform {
		return 0
	}
	return j
}

func (l layout) pIdx(j int) int {
	if l.variant == VariantUniform {
		return 1
	}
	return l.nCores + j
}

func (l layout) gIdx() int { return 2 * l.nCores }

// tempRow holds the affine dependence of one constrained temperature on
// the normalized core powers: t = c0 + Σ_j coef_j·pn_j.
type tempRow struct {
	step  int
	block int
	c0    float64
	coef  linalg.Vector // length nCores, nonnegative
}

// startTemps returns the initial temperature vector: the per-block T0
// extension when provided, the paper's uniform TStart otherwise.
func (s *Spec) startTemps(nb int) linalg.Vector {
	if s.T0 != nil {
		return linalg.VectorOf(s.T0...)
	}
	return linalg.Constant(nb, s.TStart)
}

// tempRows assembles the affine temperature maps for every window step
// k = 1..m and every constrained block, folding the fixed (uncore)
// power and the ambient drive into c0.
func (s *Spec) tempRows() ([]tempRow, error) {
	chip := s.Chip
	fp := chip.Floorplan()
	nb := fp.NumBlocks()
	if s.Window.Dt() <= 0 {
		return nil, fmt.Errorf("core: invalid window")
	}
	t0 := s.startTemps(nb)
	fixed := chip.FixedPower()

	var blocks []int
	if s.ConstrainAllBlocks {
		for i := 0; i < nb; i++ {
			blocks = append(blocks, i)
		}
	} else {
		blocks = fp.CoreIndices()
	}

	n := chip.NumCores()
	m := s.Window.Steps()
	rows := make([]tempRow, 0, m*len(blocks))
	for k := 1; k <= m; k++ {
		for _, bi := range blocks {
			base, gain, err := s.Window.Affine(k, bi, t0)
			if err != nil {
				return nil, err
			}
			c0 := base + gain.Dot(fixed)
			coef := linalg.NewVector(n)
			for j := 0; j < n; j++ {
				g := gain[chip.CoreBlockIndex(j)]
				if g < 0 {
					return nil, fmt.Errorf("core: negative heat gain at step %d block %d", k, bi)
				}
				coef[j] = g * chip.CoreModelOf(j).PMax
			}
			rows = append(rows, tempRow{step: k, block: bi, c0: c0, coef: coef})
		}
	}
	return rows, nil
}

// build assembles the solver.Problem for the spec.
func (s *Spec) build() (*solver.Problem, layout, []tempRow, error) {
	n := s.Chip.NumCores()
	lay := newLayout(s.Variant, n)
	rows, err := s.tempRows()
	if err != nil {
		return nil, lay, nil, err
	}

	p := &solver.Problem{}

	// Objective: Σ_j pmax_j·pn_j (+ w·g for the gradient variant) — the
	// paper's min Σ p_i (Eq. 3) and min Σ p_i + tgrad (Eq. 5).
	objA := linalg.NewVector(lay.dim)
	for j := 0; j < n; j++ {
		// In the uniform variant pIdx(j) is the single shared power
		// variable, which therefore accumulates every core's pmax.
		objA[lay.pIdx(j)] += s.Chip.CoreModelOf(j).PMax
	}
	if s.Variant == VariantGradient {
		objA[lay.gIdx()] = s.gradWeight()
	}
	p.Objective = &solver.Affine{A: objA}

	// Temperature limits at every sub-step: Σ coef_j·pn_j + c0 − tmax <= 0.
	for _, r := range rows {
		a := linalg.NewVector(lay.dim)
		if s.Variant == VariantUniform {
			a[lay.pIdx(0)] = r.coef.Sum()
		} else {
			for j := 0; j < n; j++ {
				a[lay.pIdx(j)] = r.coef[j]
			}
		}
		p.Constraints = append(p.Constraints, solver.NewSparseAffine(a, r.c0-s.TMax))
	}

	// Power-frequency coupling (their Eq. 2 as a convex inequality):
	// idle + (1−idle)·fn_j² − pn_j <= 0.
	couplings := n
	if s.Variant == VariantUniform {
		couplings = 1
	}
	for j := 0; j < couplings; j++ {
		model := s.Chip.CoreModelOf(j)
		d := linalg.NewVector(lay.dim)
		d[lay.fIdx(j)] = 1 - model.IdleFrac
		a := linalg.NewVector(lay.dim)
		a[lay.pIdx(j)] = -1
		q, err := solver.NewDiagQuadratic(d, a, model.IdleFrac)
		if err != nil {
			return nil, lay, nil, err
		}
		p.Constraints = append(p.Constraints, q)
	}

	// Workload constraint: Σ fn_j >= n·φ, φ = FTarget/fmax.
	phi := s.FTarget / s.Chip.FMax()
	{
		a := linalg.NewVector(lay.dim)
		if s.Variant == VariantUniform {
			a[lay.fIdx(0)] = -1
			p.Constraints = append(p.Constraints, solver.NewSparseAffine(a, phi))
		} else {
			for j := 0; j < n; j++ {
				a[lay.fIdx(j)] = -1
			}
			p.Constraints = append(p.Constraints, solver.NewSparseAffine(a, float64(n)*phi))
		}
	}

	// Box constraints: 0 <= fn <= 1, pn <= 1 (pn >= fn² implies pn >= 0).
	vars := 1
	if s.Variant != VariantUniform {
		vars = n
	}
	for j := 0; j < vars; j++ {
		lo := linalg.NewVector(lay.dim)
		lo[lay.fIdx(j)] = -1
		hi := linalg.NewVector(lay.dim)
		hi[lay.fIdx(j)] = 1
		pu := linalg.NewVector(lay.dim)
		pu[lay.pIdx(j)] = 1
		p.Constraints = append(p.Constraints,
			solver.NewSparseAffine(lo, 0),
			solver.NewSparseAffine(hi, -1),
			solver.NewSparseAffine(pu, -1),
		)
	}

	// Spatial-gradient bounds (their Eq. 4): t_{k,i} − t_{k,j} <= g for
	// every ordered core pair, at strided sub-steps plus the last.
	if s.Variant == VariantGradient {
		isCore := make(map[int]bool)
		for _, bi := range s.Chip.Floorplan().CoreIndices() {
			isCore[bi] = true
		}
		byStep := make(map[int][]tempRow)
		for _, r := range rows {
			if isCore[r.block] { // Eq. 4 bounds gradients across the cores
				byStep[r.step] = append(byStep[r.step], r)
			}
		}
		stride := s.gradStride()
		m := s.Window.Steps()
		for k := 1; k <= m; k++ {
			if k%stride != 0 && k != m {
				continue
			}
			stepRows := byStep[k]
			for i := 0; i < len(stepRows); i++ {
				for j := 0; j < len(stepRows); j++ {
					if i == j {
						continue
					}
					ri, rj := stepRows[i], stepRows[j]
					a := linalg.NewVector(lay.dim)
					for c := 0; c < n; c++ {
						a[lay.pIdx(c)] = ri.coef[c] - rj.coef[c]
					}
					a[lay.gIdx()] = -1
					p.Constraints = append(p.Constraints, solver.NewSparseAffine(a, ri.c0-rj.c0))
				}
			}
		}
	}

	return p, lay, rows, nil
}
