package core

import (
	"protemp/internal/linalg"
	"protemp/internal/solver"
)

// layout records the variable layout of a built problem.
//
// VariantVariable:  x = [fn_0..fn_{n-1}, pn_0..pn_{n-1}]          (dim 2n)
// VariantGradient:  x = [fn..., pn..., g]                          (dim 2n+1)
// VariantUniform:   x = [fn, pn]                                   (dim 2)
//
// fn_j = f_j / fmax_j and pn_j = p_j / pmax_j are normalized to [0, 1]
// so the Newton systems stay well-scaled; g is the gradient bound in °C.
type layout struct {
	variant Variant
	nCores  int
	dim     int
}

func newLayout(v Variant, nCores int) layout {
	switch v {
	case VariantUniform:
		return layout{variant: v, nCores: nCores, dim: 2}
	case VariantGradient:
		return layout{variant: v, nCores: nCores, dim: 2*nCores + 1}
	default:
		return layout{variant: v, nCores: nCores, dim: 2 * nCores}
	}
}

func (l layout) fIdx(j int) int {
	if l.variant == VariantUniform {
		return 0
	}
	return j
}

func (l layout) pIdx(j int) int {
	if l.variant == VariantUniform {
		return 1
	}
	return l.nCores + j
}

func (l layout) gIdx() int { return 2 * l.nCores }

// tempRow holds the affine dependence of one constrained temperature on
// the normalized core powers: t = c0 + Σ_j coef_j·pn_j.
type tempRow struct {
	step  int
	block int
	c0    float64
	coef  linalg.Vector // length nCores, nonnegative
}

// startTemps returns the initial temperature vector: the per-block T0
// extension when provided, the paper's uniform TStart otherwise.
func (s *Spec) startTemps(nb int) linalg.Vector {
	if s.T0 != nil {
		return linalg.VectorOf(s.T0...)
	}
	return linalg.Constant(nb, s.TStart)
}

// tempRows assembles the affine temperature maps for every window step
// k = 1..m and every constrained block, folding the fixed (uncore)
// power and the ambient drive into c0. It delegates to compileRows —
// the same assembly the sweep compiles — evaluated at this spec's
// exact starting temperatures.
func (s *Spec) tempRows() ([]tempRow, error) {
	nb := s.Chip.Floorplan().NumBlocks()
	compiled, err := compileRows(s.Chip, s.Window, s.ConstrainAllBlocks, s.startTemps(nb))
	if err != nil {
		return nil, err
	}
	rows := make([]tempRow, len(compiled))
	for i, r := range compiled {
		rows[i] = tempRow{step: r.step, block: r.block, c0: r.c0Base, coef: r.coef}
	}
	return rows, nil
}

// build assembles the solver.Problem for the spec by compiling a
// single-point sweep plan and instantiating it at (TStart, FTarget) —
// the same assembly GenerateTable's warm-started sweep uses, so the
// cold per-point path and the sweep cannot drift apart. See
// compileSweep for the constraint layout (the paper's Eqs. 2-5).
func (s *Spec) build() (*solver.Problem, layout, []tempRow, error) {
	lay := newLayout(s.Variant, s.Chip.NumCores())
	ts := TableSpec{
		Chip: s.Chip, Window: s.Window, TMax: s.TMax,
		TStarts: []float64{s.TStart}, FTargets: []float64{s.FTarget},
		Variant: s.Variant, GradWeight: s.GradWeight, GradStride: s.GradStride,
		ConstrainAllBlocks: s.ConstrainAllBlocks,
	}
	var t0 linalg.Vector
	if s.T0 != nil {
		t0 = linalg.VectorOf(s.T0...)
	}
	pl, err := compileSweep(ts, t0)
	if err != nil {
		return nil, lay, nil, err
	}
	in := pl.instance()
	in.set(s.TStart, s.FTarget)
	return in.prob, pl.lay, in.rows, nil
}
