package core

import (
	"context"
	"math"
	"testing"
)

// TestSweepPlanCompilesPattern pins the structured-KKT wiring: every
// variant's compiled plan must carry a non-nil arrow-structure hint.
// If the Hessian-pattern compiler ever starts rejecting the problem
// shape core emits, the solver silently falls back to the dense O(n³)
// path — this test turns that silent regression into a failure.
func TestSweepPlanCompilesPattern(t *testing.T) {
	f := niagaraFixture(t)
	for _, v := range []Variant{VariantVariable, VariantUniform, VariantGradient} {
		ts := TableSpec{Chip: f.chip, Window: f.window, TMax: 100, Variant: v}
		pl, err := compileSweep(ts, nil)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if pl.pattern == nil {
			t.Fatalf("%v: compiled plan has no Hessian pattern (structured path dead)", v)
		}
		if !pl.pattern.Matches(pl.instance().prob) {
			t.Fatalf("%v: compiled pattern does not match its own instance", v)
		}
	}
}

// TestStructuredMatchesDenseClosedLoop is the golden step_solve
// equivalence check: two online solvers — one on the structured
// (arrow/Schur) KKT path, one with the pattern stripped so every solve
// takes the dense Cholesky path — driven through the same closed-loop
// window sequence must produce the same trajectory: identical
// feasibility verdicts, frequencies within solver tolerance, and the
// same thermal guarantee.
func TestStructuredMatchesDenseClosedLoop(t *testing.T) {
	f := niagaraFixture(t)
	fmax := f.chip.FMax()
	for _, v := range []Variant{VariantVariable, VariantUniform, VariantGradient} {
		t.Run(v.String(), func(t *testing.T) {
			arrow, err := NewOnlineSolver(onlineSpec(t, v))
			if err != nil {
				t.Fatal(err)
			}
			dense, err := NewOnlineSolver(onlineSpec(t, v))
			if err != nil {
				t.Fatal(err)
			}
			if arrow.plan.pattern == nil {
				t.Fatal("structured solver has no pattern")
			}
			// Strip the hint from the dense lane: both the plan (future
			// instances) and the already-built instance.
			dense.plan.pattern = nil
			dense.inst.prob.Pattern = nil

			steps := []struct {
				base    float64
				ftarget float64
			}{
				{55, 0.5 * fmax},
				{58, 0.55 * fmax}, // warm window
				{70, 0.65 * fmax},
				{82, 0.95 * fmax}, // hot + aggressive: likely infeasible
				{60, 0.45 * fmax},
			}
			for i, st := range steps {
				m := thermalMap(t, st.base)
				aa, _, errA := arrow.Solve(context.Background(), 0, m, st.ftarget)
				ad, _, errD := dense.Solve(context.Background(), 0, m, st.ftarget)
				if (errA == nil) != (errD == nil) {
					t.Fatalf("step %d: arrow err=%v dense err=%v", i, errA, errD)
				}
				if errA != nil {
					continue
				}
				if aa.Feasible != ad.Feasible {
					t.Fatalf("step %d: arrow feasible=%v dense=%v", i, aa.Feasible, ad.Feasible)
				}
				if !aa.Feasible {
					continue
				}
				for j := range aa.Freqs {
					if d := math.Abs(aa.Freqs[j] - ad.Freqs[j]); d > 1e-4*fmax {
						t.Fatalf("step %d core %d: arrow %.0f vs dense %.0f Hz (Δ %.0f)",
							i, j, aa.Freqs[j], ad.Freqs[j], d)
					}
				}
				if d := math.Abs(aa.TotalPower - ad.TotalPower); d > 1e-3*(1+ad.TotalPower) {
					t.Fatalf("step %d: arrow power %.6f vs dense %.6f W", i, aa.TotalPower, ad.TotalPower)
				}
				if v == VariantGradient {
					if d := math.Abs(aa.TGrad - ad.TGrad); d > 1e-3*(1+math.Abs(ad.TGrad)) {
						t.Fatalf("step %d: arrow tgrad %.6f vs dense %.6f", i, aa.TGrad, ad.TGrad)
					}
				}
				if aa.PeakTemp > 100+1e-6 {
					t.Fatalf("step %d: structured assignment breaks the guarantee (peak %.3f)", i, aa.PeakTemp)
				}
			}
		})
	}
}
